(* Spill pressure study: take one register-hungry kernel and shrink the
   register file step by step, showing how the naive spiller trades
   memory traffic (and eventually II, hence performance) for registers —
   and how the non-consistent dual register file delays that cliff.

     dune exec examples/spill_pressure.exe [-- --kernel ll9-integrate] *)

open Ncdrf_machine
open Ncdrf_core

let kernel_of_args () =
  let rec scan = function
    | "--kernel" :: v :: _ -> v
    | _ :: rest -> scan rest
    | [] -> "ll9-integrate"
  in
  scan (Array.to_list Sys.argv)

let () =
  let name = kernel_of_args () in
  let ddg =
    match Ncdrf_workloads.Kernels.find name with
    | Some g -> g
    | None ->
      Printf.eprintf "unknown kernel %s\n" name;
      exit 2
  in
  let config = Config.dual ~latency:6 in
  Format.printf "kernel %s on %a@.@." name Config.pp config;
  let free = Pipeline.run ~config ~model:Model.Unified ddg in
  Format.printf "unlimited registers: II=%d, needs %d (unified)@.@." free.Pipeline.ii
    free.Pipeline.requirement;
  Format.printf "%-4s | %-28s | %-28s@." "R" "unified" "swapped dual";
  Format.printf "%-4s | %5s %7s %7s %7s | %5s %7s %7s %7s@." "" "II" "spills" "memops"
    "dens" "II" "spills" "memops" "dens";
  Format.printf "%s@." (String.make 78 '-');
  let capacities = [ 64; 48; 32; 24; 16; 12; 8 ] in
  List.iter
    (fun capacity ->
      let u = Pipeline.run ~config ~model:Model.Unified ~capacity ddg in
      let s = Pipeline.run ~config ~model:Model.Swapped ~capacity ddg in
      let cell st =
        Format.sprintf "%5d %7d %7d %7.3f" st.Pipeline.ii st.Pipeline.spilled
          st.Pipeline.memops_per_iter st.Pipeline.density
      in
      Format.printf "%-4d | %s | %s%s@." capacity (cell u) (cell s)
        (if (not u.Pipeline.fits) || not s.Pipeline.fits then "  (!unfit)" else ""))
    capacities;
  Format.printf
    "@.Reading the table: as R shrinks the spiller adds stores/reloads (memops,@.\
     density rise) until the memory ports saturate and the II climbs -- the@.\
     dual register file keeps the loop spill-free for roughly twice as long.@."
