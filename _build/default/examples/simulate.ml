(* Execution demo: actually RUN a software-pipelined loop on the
   simulated machine — rotating register files, cycle-accurate issue and
   completion, dual subfiles with global/local write policies — and
   check the results against the sequential reference interpreter.

     dune exec examples/simulate.exe [-- --kernel fft-butterfly --iterations 25] *)

open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched
open Ncdrf_core
open Ncdrf_sim

let arg name default =
  let rec scan = function
    | flag :: v :: _ when flag = "--" ^ name -> v
    | _ :: rest -> scan rest
    | [] -> default
  in
  scan (Array.to_list Sys.argv)

let () =
  let kernel = arg "kernel" "ll5-tridiag" in
  let iterations = int_of_string (arg "iterations" "24") in
  let ddg =
    match Ncdrf_workloads.Kernels.find kernel with
    | Some g -> g
    | None ->
      Printf.eprintf "unknown kernel %s\n" kernel;
      exit 2
  in
  let config = Config.dual ~latency:3 in
  let sched = Modulo.schedule config ddg in
  Format.printf "%a on %a: II=%d, %d stages@.@." Ddg.pp_stats ddg Config.pp config
    (Schedule.ii sched) (Schedule.stages sched);
  print_string (Chart.render sched);
  Format.printf "@.";

  let expected = Reference.run ~iterations ddg in
  let show tag outcome =
    Format.printf
      "%-10s %3d registers/file, %4d cycles for %d iterations, %d checked register reads@."
      tag outcome.Executor.capacity outcome.Executor.cycles iterations
      outcome.Executor.register_reads;
    if Reference.equal_stores outcome.Executor.stores expected then
      Format.printf "%-10s results match the sequential reference exactly@." ""
    else begin
      Format.printf "%-10s RESULTS DIVERGE from the reference!@." "";
      exit 1
    end
  in
  show "unified" (Executor.run_unified ~iterations sched);
  show "dual" (Executor.run_dual ~iterations sched);
  let swapped, stats = Swap.improve sched in
  Format.printf "@.after %d swap(s):@." stats.Swap.swaps;
  show "swapped" (Executor.run_dual ~iterations swapped);
  Format.printf "@.first stores computed by the pipeline:@.";
  List.iteri
    (fun i e ->
      if i < 6 then
        Format.printf "  %s[%d] = %+.6f@." e.Reference.array e.Reference.iteration
          e.Reference.value)
    expected
