(* The synthetic suite in numbers: generate the Perfect-Club-like loop
   collection, print its composition, and summarize register pressure
   per model — a miniature of the paper's Section 5 on one page.

     dune exec examples/random_suite.exe [-- --size 200] *)

open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_core

let size_of_args () =
  let rec scan = function
    | "--size" :: v :: _ -> int_of_string v
    | _ :: rest -> scan rest
    | [] -> 300
  in
  scan (Array.to_list Sys.argv)

let () =
  let size = size_of_args () in
  let suite = Ncdrf_workloads.Suite.full ~size () in
  let named = List.filter (fun e -> not e.Ncdrf_workloads.Suite.generated) suite in
  Format.printf "suite: %d loops (%d named kernels, %d generated)@." (List.length suite)
    (List.length named)
    (List.length suite - List.length named);
  let sizes = List.map (fun e -> Ddg.num_nodes e.Ncdrf_workloads.Suite.ddg) suite in
  let total_ops = List.fold_left ( + ) 0 sizes in
  Format.printf "ops per loop: min %d, max %d, mean %.1f@."
    (List.fold_left min max_int sizes)
    (List.fold_left max 0 sizes)
    (float_of_int total_ops /. float_of_int (List.length sizes));
  let with_recurrence =
    List.length
      (List.filter
         (fun e ->
           List.exists (fun edge -> edge.Ddg.distance > 0)
             (Ddg.edges e.Ncdrf_workloads.Suite.ddg))
         suite)
  in
  Format.printf "loops with recurrences: %d (%.0f%%)@." with_recurrence
    (100.0 *. float_of_int with_recurrence /. float_of_int (List.length suite));
  Format.printf "top 10%% of loops carry %.0f%% of the execution time@.@."
    (100.0 *. Ncdrf_workloads.Suite.weight_share suite ~n:(size / 10));
  (* Distribution of register requirements at latency 6, unified file. *)
  let config6 = Config.dual ~latency:6 in
  let requirements =
    List.map
      (fun e ->
        float_of_int
          (Ncdrf_core.Requirements.unified
             (Ncdrf_sched.Modulo.schedule config6 e.Ncdrf_workloads.Suite.ddg)))
      suite
  in
  (match Ncdrf_report.Stats.summarize requirements with
   | Some s -> Format.printf "register requirements (L6, unified): %a@." Ncdrf_report.Stats.pp_summary s
   | None -> ());
  let histogram = Ncdrf_report.Stats.histogram ~lo:0.0 ~width:8.0 requirements in
  print_string
    (Ncdrf_report.Stats.render_histogram
       ~label:(fun l -> Printf.sprintf "%2.0f-%2.0f" l (l +. 8.0))
       histogram);
  Format.printf "@.";
  (* Register pressure summary per model at both latencies. *)
  let loops =
    List.map
      (fun e ->
        { Suite_stats.ddg = e.Ncdrf_workloads.Suite.ddg;
          weight = e.Ncdrf_workloads.Suite.iterations })
      suite
  in
  List.iter
    (fun latency ->
      let config = Config.dual ~latency in
      Format.printf "-- latency %d: loops allocatable within 32 registers@." latency;
      List.iter
        (fun model ->
          let ms = Suite_stats.measure ~config ~model loops in
          let static, dynamic = Suite_stats.allocatable ms ~r:32 in
          Format.printf "   %-12s %5.1f%% of loops, %5.1f%% of cycles@."
            (Model.to_string model) static dynamic)
        [ Model.Unified; Model.Partitioned; Model.Swapped ])
    [ 3; 6 ]
