examples/random_suite.mli:
