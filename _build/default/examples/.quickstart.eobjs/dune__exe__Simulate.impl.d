examples/simulate.ml: Array Chart Config Ddg Executor Format List Modulo Ncdrf_core Ncdrf_ir Ncdrf_machine Ncdrf_sched Ncdrf_sim Ncdrf_workloads Printf Reference Schedule Swap Sys
