examples/kernels_tour.mli:
