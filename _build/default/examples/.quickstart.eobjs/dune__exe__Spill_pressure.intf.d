examples/spill_pressure.mli:
