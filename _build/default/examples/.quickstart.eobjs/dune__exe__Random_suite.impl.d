examples/random_suite.ml: Array Config Ddg Format List Model Ncdrf_core Ncdrf_ir Ncdrf_machine Ncdrf_report Ncdrf_sched Ncdrf_workloads Printf Suite_stats Sys
