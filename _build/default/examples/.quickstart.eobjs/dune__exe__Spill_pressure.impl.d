examples/spill_pressure.ml: Array Config Format List Model Ncdrf_core Ncdrf_machine Ncdrf_workloads Pipeline Printf String Sys
