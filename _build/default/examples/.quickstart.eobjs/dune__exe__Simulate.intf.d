examples/simulate.mli:
