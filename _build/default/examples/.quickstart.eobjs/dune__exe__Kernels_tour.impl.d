examples/kernels_tour.ml: Array Config Ddg Format List Modulo Ncdrf_core Ncdrf_ir Ncdrf_machine Ncdrf_sched Ncdrf_workloads Requirements Schedule String Swap Sys
