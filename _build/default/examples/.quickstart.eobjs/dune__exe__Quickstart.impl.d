examples/quickstart.ml: Classify Config Ddg Expr Format Kernel Lifetime List Mii Model Modulo Ncdrf_core Ncdrf_ir Ncdrf_machine Ncdrf_regalloc Ncdrf_sched Pipeline Requirements Schedule Swap
