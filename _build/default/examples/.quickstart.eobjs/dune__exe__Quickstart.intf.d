examples/quickstart.mli:
