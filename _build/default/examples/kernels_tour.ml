(* Tour of the named kernels: schedule every hand-written loop on both
   evaluation machines and print, for each, the II and the register
   requirement under the four register-file models of the paper.

     dune exec examples/kernels_tour.exe [-- --latency 6] *)

open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched
open Ncdrf_core

let latency_of_args () =
  let rec scan = function
    | "--latency" :: v :: _ -> int_of_string v
    | _ :: rest -> scan rest
    | [] -> 3
  in
  scan (Array.to_list Sys.argv)

let () =
  let latency = latency_of_args () in
  let config = Config.dual ~latency in
  Format.printf "machine: %a@.@." Config.pp config;
  Format.printf "%-20s %4s %4s | %8s %12s %8s | %6s@." "kernel" "ops" "II" "unified"
    "partitioned" "swapped" "swaps";
  Format.printf "%s@." (String.make 78 '-');
  let totals = Array.make 3 0 in
  List.iter
    (fun (ddg, _weight) ->
      let sched = Modulo.schedule config ddg in
      let unified = Requirements.unified sched in
      let part = (Requirements.partitioned sched).Requirements.requirement in
      let swapped_sched, stats = Swap.improve sched in
      let swapped = (Requirements.partitioned swapped_sched).Requirements.requirement in
      totals.(0) <- totals.(0) + unified;
      totals.(1) <- totals.(1) + part;
      totals.(2) <- totals.(2) + swapped;
      Format.printf "%-20s %4d %4d | %8d %12d %8d | %6d@." (Ddg.name ddg)
        (Ddg.num_nodes ddg) (Schedule.ii sched) unified part swapped stats.Swap.swaps)
    (Ncdrf_workloads.Kernels.all ());
  Format.printf "%s@." (String.make 78 '-');
  Format.printf "%-30s | %8d %12d %8d@." "total registers" totals.(0) totals.(1) totals.(2);
  Format.printf
    "@.partitioning saves %.1f%% of the registers; swapping another %.1f%% on top.@."
    (100.0 *. float_of_int (totals.(0) - totals.(1)) /. float_of_int totals.(0))
    (100.0 *. float_of_int (totals.(1) - totals.(2)) /. float_of_int (max 1 totals.(1)))
