(* Quickstart: compile one loop end to end with the public API.

     dune exec examples/quickstart.exe

   Walks the paper's worked example: build the loop, modulo-schedule it,
   inspect lifetimes, compare the register requirement under a unified
   register file against a non-consistent dual register file, and run
   the greedy swap pass. *)

open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched
open Ncdrf_regalloc
open Ncdrf_core

let () =
  (* 1. Describe the loop body.  This is the paper's example,
        z(i) = (x(i)*r + y(i))*t + x(i), written in the loop DSL.
        (Kernels.paper_example builds the same graph with the paper's
        exact node labels.) *)
  let loop =
    let open Expr in
    compile ~name:"quickstart"
      [ Store ("z", (((load "x" * inv "r") + load "y") * inv "t") + load "x") ]
  in
  Format.printf "loop: %a@." Ddg.pp_stats loop;

  (* 2. Pick a machine: two clusters, each with 1 adder, 1 multiplier
        and 2 load/store units; FP latency 3, memory latency 1. *)
  let config = Config.example () in
  Format.printf "machine: %a@." Config.pp config;

  (* 3. Modulo-schedule it.  The scheduler aims at the minimum
        initiation interval and ignores register pressure. *)
  let sched = Modulo.schedule config loop in
  Format.printf "@.MII = %d, achieved II = %d, %d stages@." (Mii.mii config loop)
    (Schedule.ii sched) (Schedule.stages sched);
  print_string (Kernel.render sched);

  (* 4. Lifetimes and register requirements. *)
  let lifetimes = Lifetime.of_schedule sched in
  Format.printf "@.lifetimes:@.";
  List.iter
    (fun l ->
      Format.printf "  %-4s [%d, %d)  length %d@."
        (Ddg.node loop l.Lifetime.producer).Ddg.label l.Lifetime.start l.Lifetime.stop
        (Lifetime.length l))
    lifetimes;
  Format.printf "MaxLive lower bound: %d@."
    (Lifetime.max_live ~ii:(Schedule.ii sched) lifetimes);
  Format.printf "unified register file needs: %d registers@." (Requirements.unified sched);

  (* 5. Non-consistent dual register file: classify values by consumer
        cluster, allocate globals + locals per subfile. *)
  let detail = Requirements.partitioned sched in
  Format.printf "@.non-consistent dual register file:@.";
  List.iter
    (fun (n, cls) -> Format.printf "  %-4s %a@." n.Ddg.label Classify.pp cls)
    (Classify.classify sched);
  Format.printf "per-subfile requirement: %d registers@." detail.Requirements.requirement;

  (* 6. Greedy swapping to reduce globals and balance the subfiles. *)
  let swapped, stats = Swap.improve sched in
  let after = Requirements.partitioned swapped in
  Format.printf "@.after %d swap(s): %d registers per subfile@." stats.Swap.swaps
    after.Requirements.requirement;
  print_string (Kernel.render swapped);

  (* 7. One-call pipeline: the same, plus spilling when a capacity is
        given. *)
  let tight = Pipeline.run ~config ~model:Model.Swapped ~capacity:16 loop in
  Format.printf
    "@.with 16 registers per subfile: II %d -> %d, %d value(s) spilled, %d memops added@."
    tight.Pipeline.mii tight.Pipeline.ii tight.Pipeline.spilled tight.Pipeline.added_memops
