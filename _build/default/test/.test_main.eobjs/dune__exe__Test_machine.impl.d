test/test_machine.ml: Alcotest Config Cost Ncdrf_ir Ncdrf_machine Opcode Reservation
