test/test_core.ml: Alcotest Array Classify Config Ddg Helpers List Model Modulo Ncdrf_core Ncdrf_ir Ncdrf_machine Ncdrf_sched Ncdrf_workloads Opcode Pipeline Requirements Schedule Suite_stats Swap
