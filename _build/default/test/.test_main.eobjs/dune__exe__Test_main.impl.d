test/test_main.ml: Alcotest Test_core Test_extensions Test_ir Test_machine Test_regalloc Test_sched Test_sim Test_spill Test_workloads
