test/helpers.ml: Alcotest Array Config Ddg List Ncdrf_ir Ncdrf_machine Ncdrf_regalloc Ncdrf_sched Ncdrf_workloads Schedule String
