test/test_ir.ml: Alcotest Array Ddg Dot Expr Graph_algos Helpers List Loop_lang Ncdrf_ir Opcode Spill_cleanup
