test/test_workloads.ml: Alcotest Ddg List Ncdrf_ir Ncdrf_workloads Opcode
