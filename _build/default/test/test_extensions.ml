(* Tests for the extensions beyond the paper: modulo variable expansion,
   pipelined code generation, spill-victim heuristics, cluster-aware
   scheduling and the report/CSV helpers. *)

open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched
open Ncdrf_regalloc
open Ncdrf_spill
open Ncdrf_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- MVE --- *)

let test_mve_quanta_example () =
  let sched = Helpers.paper_schedule () in
  let lifetimes = Lifetime.of_schedule sched in
  (* II = 1: quanta are the lifetimes themselves. *)
  check_int "min unroll" 13 (Mve.min_unroll ~ii:1 lifetimes);
  let q = Mve.quanta ~ii:1 lifetimes in
  check_int "sum of quanta" 42 (List.fold_left ( + ) 0 q)

let test_mve_lcm_gives_sum_of_quanta () =
  let sched = Helpers.paper_schedule () in
  let lifetimes = Lifetime.of_schedule sched in
  let u = Mve.lcm_unroll ~ii:1 lifetimes in
  (* lcm(13,7,6,6,6,4) = 1092 *)
  check_int "lcm" 1092 u;
  check_int "registers at lcm" 42 (Mve.registers ~ii:1 ~unroll:u lifetimes)

let test_mve_prime_unroll_penalty () =
  let sched = Helpers.paper_schedule () in
  let lifetimes = Lifetime.of_schedule sched in
  (* At the minimum unroll (13, prime) every multi-register value must
     cycle through a divisor of 13 that is >= its quantum: 13. *)
  check_int "registers at u=13" (6 * 13) (Mve.registers ~ii:1 ~unroll:13 lifetimes)

let test_mve_best_never_worse_than_min () =
  let sched = Helpers.paper_schedule () in
  let lifetimes = Lifetime.of_schedule sched in
  let best = Mve.best ~ii:1 lifetimes in
  check_bool "best <= min-unroll registers" true
    (best.Mve.registers <= Mve.registers ~ii:1 ~unroll:13 lifetimes);
  check_bool "best >= sum of quanta" true (best.Mve.registers >= 42)

let test_mve_rejects_small_unroll () =
  let sched = Helpers.paper_schedule () in
  let lifetimes = Lifetime.of_schedule sched in
  try
    ignore (Mve.registers ~ii:1 ~unroll:5 lifetimes);
    Alcotest.fail "unroll below minimum accepted"
  with Invalid_argument _ -> ()

let prop_mve_registers_at_least_rotating =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 30_000) in
  QCheck.Test.make ~count:40 ~name:"MVE uses at least as many registers as quanta sum" arb
    (fun seed ->
      let g =
        Ncdrf_workloads.Generator.generate Ncdrf_workloads.Generator.default ~seed
          ~name:"mve-prop"
      in
      let sched = Modulo.schedule (Config.dual ~latency:3) g in
      let ii = Schedule.ii sched in
      let lifetimes = Lifetime.of_schedule sched in
      match lifetimes with
      | [] -> true
      | _ ->
        let sum_q = List.fold_left ( + ) 0 (Mve.quanta ~ii lifetimes) in
        let best = Mve.best ~ii lifetimes in
        best.Mve.registers >= sum_q
        && best.Mve.unroll >= Mve.min_unroll ~ii lifetimes
        && best.Mve.kernel_instructions = best.Mve.unroll * ii)

(* --- Codegen --- *)

let test_codegen_phases_example () =
  let sched = Helpers.paper_schedule () in
  let rows = Codegen.generate sched in
  (* 14 stages, II 1: 13 prologue rows + 1 kernel row + 13 epilogue. *)
  let size = Codegen.size sched in
  check_int "prologue" 13 size.Codegen.prologue_rows;
  check_int "kernel" 1 size.Codegen.kernel_rows;
  check_int "epilogue" 13 size.Codegen.epilogue_rows;
  check_int "total" 27 size.Codegen.total_rows;
  check_int "rows listed" 27 (List.length rows)

let test_codegen_operation_count () =
  (* Each of the 7 ops appears once per prologue block at stages <= p,
     once in the kernel, and in epilogue blocks with stage > p.  Total
     operation slots = sum over ops of (13 - stage) + 1 + stage = 14 per
     op = 98. *)
  let sched = Helpers.paper_schedule () in
  let size = Codegen.size sched in
  check_int "operation slots" (7 * 14) size.Codegen.operations

let test_codegen_unrolled () =
  let sched = Helpers.paper_schedule () in
  let base = Codegen.size sched in
  let unrolled = Codegen.size_with_unroll sched ~unroll:4 in
  check_int "kernel rows scale" (4 * base.Codegen.kernel_rows) unrolled.Codegen.kernel_rows;
  check_int "prologue unchanged" base.Codegen.prologue_rows unrolled.Codegen.prologue_rows;
  check_bool "operations grow" true (unrolled.Codegen.operations > base.Codegen.operations)

let test_codegen_render () =
  let sched = Helpers.paper_schedule () in
  let text = Codegen.render sched in
  List.iter
    (fun s -> check_bool s true (Helpers.contains text s))
    [ "prologue[0]"; "kernel"; "epilogue[12]"; "L1"; "S7" ]

let test_codegen_stage_filter () =
  let sched = Helpers.paper_schedule () in
  let rows = Codegen.generate sched in
  let bad =
    List.exists
      (fun r ->
        match r.Codegen.phase with
        | Codegen.Prologue p -> List.exists (fun s -> s.Kernel.stage > p) r.Codegen.ops
        | Codegen.Epilogue p -> List.exists (fun s -> s.Kernel.stage <= p) r.Codegen.ops
        | Codegen.Kernel -> false)
      rows
  in
  check_bool "phase filters respected" false bad

(* --- Spill victims --- *)

let unified_requirement sched = (sched, Requirements.unified sched)

let test_spill_victims_all_fit () =
  let config = Config.example () in
  let ddg = Helpers.example_ddg () in
  List.iter
    (fun victim ->
      let outcome =
        Spiller.run ~config ~requirement:unified_requirement ~capacity:30 ~victim ddg
      in
      check_bool "fits" true outcome.Spiller.fits;
      check_bool "valid" true (Schedule.validate outcome.Spiller.schedule = Ok ()))
    [ Spiller.Longest_lifetime; Spiller.Best_ratio; Spiller.Fewest_consumers ]

let test_best_ratio_prefers_cheap_spills () =
  (* Best_ratio must never add more memops per spilled value than
     longest-lifetime when both spill the same count... weaker, checked
     on aggregate: ratio of added memops to spills is minimal among
     heuristics for a pressured kernel. *)
  let config = Config.dual ~latency:6 in
  let ddg =
    match Ncdrf_workloads.Kernels.find "ll9-integrate" with
    | Some g -> g
    | None -> Alcotest.fail "kernel missing"
  in
  let per_spill victim =
    let o = Spiller.run ~config ~requirement:unified_requirement ~capacity:20 ~victim ddg in
    if o.Spiller.spilled = 0 then 0.0
    else float_of_int o.Spiller.added_memops /. float_of_int o.Spiller.spilled
  in
  let ratio = per_spill Spiller.Best_ratio in
  check_bool "ratio heuristic keeps reload cost low" true
    (ratio <= per_spill Spiller.Longest_lifetime +. 1e-9
     || ratio <= per_spill Spiller.Fewest_consumers +. 1e-9)

(* --- Cluster policy --- *)

let test_affinity_schedules_validly () =
  List.iter
    (fun (g, _) ->
      let sched =
        Modulo.schedule ~cluster_policy:Modulo.Affinity (Config.dual ~latency:3) g
      in
      Helpers.check_valid (Ddg.name g ^ " affinity") sched)
    (Ncdrf_workloads.Kernels.all ())

let test_affinity_reduces_globals_on_average () =
  let config = Config.dual ~latency:6 in
  let totals policy =
    List.fold_left
      (fun acc (g, _) ->
        let sched = Modulo.schedule ~cluster_policy:policy config g in
        let globals, _ = Classify.counts sched in
        acc + globals)
      0
      (Ncdrf_workloads.Kernels.all ())
  in
  check_bool "affinity creates no more globals than balance" true
    (totals Modulo.Affinity <= totals Modulo.Balance)

let prop_affinity_valid_on_random_loops =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 30_000) in
  QCheck.Test.make ~count:40 ~name:"affinity scheduling stays valid" arb
    (fun seed ->
      let g =
        Ncdrf_workloads.Generator.generate Ncdrf_workloads.Generator.default ~seed
          ~name:"aff-prop"
      in
      let sched = Modulo.schedule ~cluster_policy:Modulo.Affinity (Config.dual ~latency:3) g in
      Schedule.validate sched = Ok ())

(* --- Sacks --- *)

let test_single_use_detection () =
  let sched = Helpers.paper_schedule () in
  let su = Sacks.single_use sched in
  (* Everything but L1 (consumed by M3 and A6) is single-use. *)
  check_int "five single-use values" 5 (List.length su);
  let ddg = sched.Schedule.ddg in
  let l1 = Helpers.node_by_label ddg "L1" in
  check_bool "L1 not single-use" false
    (List.exists (fun l -> l.Lifetime.producer = l1.Ddg.id) su)

let test_sacks_relieve_primary () =
  let sched = Helpers.paper_schedule () in
  let a = Sacks.assign ~config:{ Sacks.sacks = 4; read_ports = 1; write_ports = 1 } sched in
  check_int "values" 6 a.Sacks.values;
  check_int "eligible" 5 a.Sacks.eligible;
  (* II=1: each sack serves one read per cycle, so at most one value per
     sack -> 4 of the 5 eligible values placed. *)
  check_int "placed" 4 a.Sacks.placed;
  check_bool "primary shrinks below unified" true
    (a.Sacks.primary_requirement < Ncdrf_core.Requirements.unified sched);
  (* Conservation: primary + sacks together hold at least MaxLive. *)
  let total =
    a.Sacks.primary_requirement + Array.fold_left ( + ) 0 a.Sacks.sack_requirements
  in
  check_bool "total capacity at least maxlive" true
    (total >= Lifetime.max_live ~ii:1 (Lifetime.of_schedule sched))

let test_sacks_port_limits_bind () =
  let sched = Helpers.paper_schedule () in
  (* One sack, one read port, II=1: only one value can be placed. *)
  let a = Sacks.assign ~config:{ Sacks.sacks = 1; read_ports = 1; write_ports = 1 } sched in
  check_int "one value placed" 1 a.Sacks.placed;
  (* Two read ports allow two values whose writes do not collide... at
     II=1 the single write port also binds: still 1. *)
  let a2 = Sacks.assign ~config:{ Sacks.sacks = 1; read_ports = 2; write_ports = 1 } sched in
  check_int "write port binds" 1 a2.Sacks.placed;
  let a3 = Sacks.assign ~config:{ Sacks.sacks = 1; read_ports = 2; write_ports = 2 } sched in
  check_int "two ports, two values" 2 a3.Sacks.placed

let prop_sacks_account_for_all_values =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 30_000) in
  QCheck.Test.make ~count:30 ~name:"sack assignment accounts for every value" arb
    (fun seed ->
      let g =
        Ncdrf_workloads.Generator.generate Ncdrf_workloads.Generator.default ~seed
          ~name:"sack-prop"
      in
      let sched = Modulo.schedule (Config.dual ~latency:6) g in
      let a = Sacks.assign sched in
      a.Sacks.placed <= a.Sacks.eligible
      && a.Sacks.eligible <= a.Sacks.values
      && a.Sacks.primary_requirement >= 0)

(* --- Lifetime post-pass --- *)

let test_push_late_all_ops_saves_registers () =
  (* Pushing an op later shortens its own value's lifetime but extends
     the lifetimes of inputs whose last use it is, so individual kernels
     can get worse; the pass must stay valid, keep the II, and win on
     aggregate. *)
  let config = Config.dual ~latency:6 in
  let before_total = ref 0 and after_total = ref 0 in
  List.iter
    (fun (g, _) ->
      let sched = Modulo.schedule config g in
      let adjusted = Adjust.push_late sched ~eligible:(fun _ -> true) in
      Helpers.check_valid (Ddg.name g ^ " pushed") adjusted;
      check_int (Ddg.name g ^ " same II") (Schedule.ii sched) (Schedule.ii adjusted);
      before_total := !before_total + Requirements.unified sched;
      after_total := !after_total + Requirements.unified adjusted)
    (Ncdrf_workloads.Kernels.all ());
  check_bool "saves registers on aggregate" true (!after_total < !before_total)

(* --- Chart --- *)

let test_chart_render_example () =
  let sched = Helpers.paper_schedule () in
  let text = Chart.render sched in
  List.iter
    (fun s -> check_bool s true (Helpers.contains text s))
    [ "L1"; "GL"; "LO"; "RO"; "peak 42"; "len  13" ];
  (* Scaled rendering stays within the width cap. *)
  let narrow = Chart.render ~width:20 sched in
  let too_wide =
    List.exists (fun l -> String.length l > 80) (String.split_on_char '\n' narrow)
  in
  check_bool "respects width cap" false too_wide

(* --- Report helpers --- *)

let test_table_render () =
  let t = Ncdrf_report.Table.create ~columns:[ "name"; "value" ] in
  Ncdrf_report.Table.add_row t [ "a"; "1" ];
  Ncdrf_report.Table.add_row t [ "bb" ];
  check_int "rows" 2 (Ncdrf_report.Table.num_rows t);
  let text = Ncdrf_report.Table.render t in
  check_bool "has header" true (Helpers.contains text "name");
  check_bool "pads short rows" true (Helpers.contains text "bb");
  (try
     Ncdrf_report.Table.add_row t [ "x"; "y"; "z" ];
     Alcotest.fail "overlong row accepted"
   with Invalid_argument _ -> ());
  check_int "to_rows includes header" 3 (List.length (Ncdrf_report.Table.to_rows t))

let test_stats_summary () =
  let values = [ 5.0; 1.0; 3.0; 2.0; 4.0 ] in
  (match Ncdrf_report.Stats.summarize values with
   | None -> Alcotest.fail "summary of non-empty series"
   | Some s ->
     check_int "count" 5 s.Ncdrf_report.Stats.count;
     Alcotest.(check (float 1e-9)) "mean" 3.0 s.Ncdrf_report.Stats.mean;
     Alcotest.(check (float 1e-9)) "median" 3.0 s.Ncdrf_report.Stats.p50;
     Alcotest.(check (float 1e-9)) "min" 1.0 s.Ncdrf_report.Stats.min;
     Alcotest.(check (float 1e-9)) "max" 5.0 s.Ncdrf_report.Stats.max);
  check_bool "empty series" true (Ncdrf_report.Stats.summarize [] = None);
  (try
     ignore (Ncdrf_report.Stats.percentile 50.0 []);
     Alcotest.fail "empty percentile accepted"
   with Invalid_argument _ -> ())

let test_stats_histogram () =
  let values = [ 0.5; 1.5; 1.7; 3.2 ] in
  let buckets = Ncdrf_report.Stats.histogram ~lo:0.0 ~width:1.0 values in
  check_int "buckets span the data" 4 (List.length buckets);
  check_bool "counts" true (List.map snd buckets = [ 1; 2; 0; 1 ]);
  let text =
    Ncdrf_report.Stats.render_histogram ~label:(fun l -> Printf.sprintf "%.0f" l) buckets
  in
  check_bool "renders bars" true (Helpers.contains text "#")

let test_csv_escaping () =
  let check_str = Alcotest.(check string) in
  check_str "plain" "abc" (Ncdrf_report.Csv.escape "abc");
  check_str "comma" "\"a,b\"" (Ncdrf_report.Csv.escape "a,b");
  check_str "quote" "\"a\"\"b\"" (Ncdrf_report.Csv.escape "a\"b");
  check_str "line" "a,\"b,c\",d" (Ncdrf_report.Csv.line [ "a"; "b,c"; "d" ])

let test_csv_write_roundtrip () =
  let path = Filename.temp_file "ncdrf" ".csv" in
  Ncdrf_report.Csv.write path [ [ "h1"; "h2" ]; [ "1"; "x,y" ] ];
  let ic = open_in path in
  let first = input_line ic in
  let second = input_line ic in
  let lines = [ first; second ] in
  close_in ic;
  Sys.remove path;
  check_bool "header" true (List.nth lines 0 = "h1,h2");
  check_bool "escaped row" true (List.nth lines 1 = "1,\"x,y\"")

let suite =
  [
    Alcotest.test_case "mve: quanta on example" `Quick test_mve_quanta_example;
    Alcotest.test_case "mve: lcm reaches sum of quanta" `Quick test_mve_lcm_gives_sum_of_quanta;
    Alcotest.test_case "mve: prime unroll penalty" `Quick test_mve_prime_unroll_penalty;
    Alcotest.test_case "mve: best between bounds" `Quick test_mve_best_never_worse_than_min;
    Alcotest.test_case "mve: rejects small unroll" `Quick test_mve_rejects_small_unroll;
    QCheck_alcotest.to_alcotest prop_mve_registers_at_least_rotating;
    Alcotest.test_case "codegen: phases on example" `Quick test_codegen_phases_example;
    Alcotest.test_case "codegen: operation count" `Quick test_codegen_operation_count;
    Alcotest.test_case "codegen: unrolled kernel" `Quick test_codegen_unrolled;
    Alcotest.test_case "codegen: render" `Quick test_codegen_render;
    Alcotest.test_case "codegen: stage filters" `Quick test_codegen_stage_filter;
    Alcotest.test_case "spill victims all fit" `Quick test_spill_victims_all_fit;
    Alcotest.test_case "best-ratio keeps reloads cheap" `Quick
      test_best_ratio_prefers_cheap_spills;
    Alcotest.test_case "affinity schedules validly" `Quick test_affinity_schedules_validly;
    Alcotest.test_case "affinity reduces globals" `Quick
      test_affinity_reduces_globals_on_average;
    QCheck_alcotest.to_alcotest prop_affinity_valid_on_random_loops;
    Alcotest.test_case "sacks: single-use detection" `Quick test_single_use_detection;
    Alcotest.test_case "sacks: relieve the primary file" `Quick test_sacks_relieve_primary;
    Alcotest.test_case "sacks: port limits bind" `Quick test_sacks_port_limits_bind;
    QCheck_alcotest.to_alcotest prop_sacks_account_for_all_values;
    Alcotest.test_case "push-late on all ops saves registers" `Quick
      test_push_late_all_ops_saves_registers;
    Alcotest.test_case "chart renders the example" `Quick test_chart_render_example;
    Alcotest.test_case "report: table" `Quick test_table_render;
    Alcotest.test_case "report: stats summary" `Quick test_stats_summary;
    Alcotest.test_case "report: stats histogram" `Quick test_stats_histogram;
    Alcotest.test_case "report: csv escaping" `Quick test_csv_escaping;
    Alcotest.test_case "report: csv write" `Quick test_csv_write_roundtrip;
  ]
