(* Shared fixtures: the paper's worked example and its hand-built
   schedule (paper Figures 3/4, cycles normalized to start at 0). *)

open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched

let example_ddg () = Ncdrf_workloads.Kernels.paper_example ()
let example_config () = Config.example ()

let node_by_label ddg label =
  let found =
    Ddg.fold_nodes ddg ~init:None ~f:(fun acc n ->
        if String.equal n.Ddg.label label then Some n else acc)
  in
  match found with
  | Some n -> n
  | None -> Alcotest.failf "no node labelled %s in %s" label (Ddg.name ddg)

(* The paper's schedule before swapping: left cluster (0) runs L1 L2 M3
   A4, right cluster (1) runs M5 A6 S7; II = 1. *)
let paper_schedule () =
  let ddg = example_ddg () in
  let config = example_config () in
  let table =
    [
      ("L1", 0, 0);
      ("L2", 0, 0);
      ("M3", 1, 0);
      ("A4", 4, 0);
      ("M5", 7, 1);
      ("A6", 10, 1);
      ("S7", 13, 1);
    ]
  in
  let placements = Array.make (Ddg.num_nodes ddg) { Schedule.cycle = 0; cluster = 0 } in
  let fill (label, cycle, cluster) =
    let node = node_by_label ddg label in
    placements.(node.Ddg.id) <- { Schedule.cycle; cluster }
  in
  List.iter fill table;
  Schedule.make ~config ~ii:1 ~placements ddg

(* The same schedule after the paper's manual swap of A4 and A6. *)
let paper_schedule_swapped () =
  let sched = paper_schedule () in
  let ddg = sched.Schedule.ddg in
  let a4 = node_by_label ddg "A4" and a6 = node_by_label ddg "A6" in
  Schedule.swap_clusters sched a4.Ddg.id a6.Ddg.id

let lifetime_of sched label =
  let ddg = sched.Schedule.ddg in
  let node = node_by_label ddg label in
  let all = Ncdrf_regalloc.Lifetime.of_schedule sched in
  match List.find_opt (fun l -> l.Ncdrf_regalloc.Lifetime.producer = node.Ddg.id) all with
  | Some l -> l
  | None -> Alcotest.failf "no lifetime for %s" label

let check_valid what sched =
  match Schedule.validate sched with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: invalid schedule: %s" what msg

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else scan (i + 1)
  in
  nn = 0 || scan 0

(* A deterministic small machine zoo used across tests. *)
let configs () =
  [ Config.dual ~latency:3; Config.dual ~latency:6; Config.pxly ~parallelism:1 ~latency:3;
    Config.pxly ~parallelism:2 ~latency:6; Config.example () ]
