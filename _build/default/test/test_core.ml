(* Golden tests against the paper's worked example (Section 4.1,
   Tables 2-4) plus unit tests of the NCDRF classification, swapping and
   model pipeline. *)

open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched
open Ncdrf_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let class_of sched label =
  let node = Helpers.node_by_label sched.Schedule.ddg label in
  Classify.value_class sched node.Ddg.id

let test_paper_schedule_is_valid () =
  Helpers.check_valid "paper schedule" (Helpers.paper_schedule ());
  Helpers.check_valid "swapped paper schedule" (Helpers.paper_schedule_swapped ())

(* Table 3: L1 global; L2, M3 left-only; A4, M5, A6 right-only. *)
let test_table3_classification () =
  let sched = Helpers.paper_schedule () in
  let expect label cls =
    check_bool label true (Classify.equal (class_of sched label) cls)
  in
  expect "L1" Classify.Global;
  expect "L2" (Classify.Local 0);
  expect "M3" (Classify.Local 0);
  expect "A4" (Classify.Local 1);
  expect "M5" (Classify.Local 1);
  expect "A6" (Classify.Local 1)

let test_table3_register_counts () =
  let sched = Helpers.paper_schedule () in
  let detail = Requirements.partitioned sched in
  check_int "global registers" 13 detail.Requirements.global_requirement;
  check_int "left-only registers" 13 detail.Requirements.local_requirements.(0);
  check_int "right-only registers" 16 detail.Requirements.local_requirements.(1);
  check_int "left cluster total" 26 detail.Requirements.cluster_requirements.(0);
  check_int "right cluster total" 29 detail.Requirements.cluster_requirements.(1);
  check_int "registers required" 29 detail.Requirements.requirement

(* Table 4: after swapping A4 and A6 there are no global values;
   19 left-only and 23 right-only registers. *)
let test_table4_after_swap () =
  let sched = Helpers.paper_schedule_swapped () in
  let expect label cls =
    check_bool label true (Classify.equal (class_of sched label) cls)
  in
  expect "L1" (Classify.Local 0);
  expect "M5" (Classify.Local 0);
  expect "L2" (Classify.Local 1);
  expect "M3" (Classify.Local 1);
  expect "A4" (Classify.Local 1);
  expect "A6" (Classify.Local 1);
  let detail = Requirements.partitioned sched in
  check_int "global registers" 0 detail.Requirements.global_requirement;
  check_int "left-only registers" 19 detail.Requirements.local_requirements.(0);
  check_int "right-only registers" 23 detail.Requirements.local_requirements.(1);
  check_int "registers required" 23 detail.Requirements.requirement

let test_unified_requirement_is_42 () =
  let sched = Helpers.paper_schedule () in
  check_int "unified registers" 42 (Requirements.unified sched)

let test_greedy_swap_matches_paper () =
  let sched = Helpers.paper_schedule () in
  let swapped, stats = Swap.improve sched in
  Helpers.check_valid "greedy-swapped schedule" swapped;
  check_int "initial estimate" 29 stats.Swap.initial_cost;
  check_bool "estimate improved to paper level" true (stats.Swap.final_cost <= 23);
  let detail = Requirements.partitioned swapped in
  check_bool "requirement at most paper's 23" true
    (detail.Requirements.requirement <= 23);
  check_bool "at least one swap applied" true (stats.Swap.swaps >= 1)

let test_swap_candidates_same_class_and_slot () =
  let sched = Helpers.paper_schedule () in
  let ddg = sched.Schedule.ddg in
  let ok =
    List.for_all
      (fun (a, b) ->
        let na = Ddg.node ddg a and nb = Ddg.node ddg b in
        Opcode.fu_class na.Ddg.opcode = Opcode.fu_class nb.Ddg.opcode
        && Schedule.cluster sched a <> Schedule.cluster sched b
        && (Schedule.cycle sched a - Schedule.cycle sched b) mod Schedule.ii sched = 0)
      (Swap.candidates sched)
  in
  check_bool "candidate invariants" true ok;
  (* II = 1: every cross-cluster same-class pair qualifies.  adders:
     A4/A6; muls: M3/M5; memory: L1/S7, L2/S7. *)
  check_int "candidate count" 4 (List.length (Swap.candidates sched))

let test_swap_single_cluster_is_noop () =
  let config = Config.pxly ~parallelism:2 ~latency:3 in
  let sched = Modulo.schedule config (Helpers.example_ddg ()) in
  let swapped, stats = Swap.improve sched in
  check_int "no swaps" 0 stats.Swap.swaps;
  check_bool "unchanged" true (swapped == sched || Schedule.validate swapped = Ok ())

let test_model_round_trip () =
  List.iter
    (fun m ->
      match Model.of_string (Model.to_string m) with
      | Ok m' -> check_bool (Model.to_string m) true (m = m')
      | Error e -> Alcotest.fail e)
    Model.all;
  (match Model.of_string "bogus" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "bogus model accepted")

let test_pipeline_example_unlimited () =
  let config = Helpers.example_config () in
  let ddg = Helpers.example_ddg () in
  let unified = Pipeline.run ~config ~model:Model.Unified ddg in
  check_int "II" 1 unified.Pipeline.ii;
  check_int "MII" 1 unified.Pipeline.mii;
  check_int "stages" 14 unified.Pipeline.stages;
  check_int "unified requirement" 42 unified.Pipeline.requirement;
  check_bool "fits without capacity" true unified.Pipeline.fits;
  let part = Pipeline.run ~config ~model:Model.Partitioned ddg in
  check_bool "partitioned <= unified" true
    (part.Pipeline.requirement <= unified.Pipeline.requirement);
  let swapped = Pipeline.run ~config ~model:Model.Swapped ddg in
  check_bool "swapped <= partitioned" true
    (swapped.Pipeline.requirement <= part.Pipeline.requirement)

let test_pipeline_with_capacity_spills () =
  let config = Config.dual ~latency:6 in
  let ddg =
    match Ncdrf_workloads.Kernels.find "ll9-integrate" with
    | Some g -> g
    | None -> Alcotest.fail "kernel missing"
  in
  let unlimited = Pipeline.run ~config ~model:Model.Unified ddg in
  let capacity = max 4 (unlimited.Pipeline.requirement / 2) in
  let limited = Pipeline.run ~config ~model:Model.Unified ~capacity ddg in
  check_bool "fits after spilling" true limited.Pipeline.fits;
  check_bool "requirement within capacity" true
    (limited.Pipeline.requirement <= capacity);
  check_bool "spilling adds memory traffic" true
    (limited.Pipeline.spilled = 0 || limited.Pipeline.added_memops > 0);
  Helpers.check_valid "limited schedule" limited.Pipeline.schedule

let test_ideal_never_fails_to_fit () =
  let config = Config.dual ~latency:6 in
  let ddg = Helpers.example_ddg () in
  let stats = Pipeline.run ~config ~model:Model.Ideal ~capacity:1 ddg in
  check_bool "ideal fits" true stats.Pipeline.fits;
  check_int "no spills" 0 stats.Pipeline.spilled

let test_classify_counts () =
  let sched = Helpers.paper_schedule () in
  let globals, locals = Classify.counts sched in
  check_int "global values" 1 globals;
  check_int "left values" 2 locals.(0);
  check_int "right values" 3 locals.(1)

let test_suite_stats_cumulative () =
  let loops =
    List.map
      (fun (ddg, weight) -> { Suite_stats.ddg; weight })
      (Ncdrf_workloads.Kernels.all ())
  in
  let config = Config.dual ~latency:3 in
  let measurements = Suite_stats.measure ~config ~model:Model.Unified loops in
  let points = [ 8; 16; 32; 64; 128 ] in
  let static = Suite_stats.static_cumulative measurements ~points in
  let monotone =
    let rec walk = function
      | (_, a) :: ((_, b) :: _ as rest) -> a <= b +. 1e-9 && walk rest
      | _ -> true
    in
    walk static
  in
  check_bool "static cumulative is monotone" true monotone;
  (match List.rev static with
   | (_, last) :: _ -> check_bool "all loops fit in 128" true (last > 99.9)
   | [] -> Alcotest.fail "empty distribution");
  let s64, d64 = Suite_stats.allocatable measurements ~r:64 in
  check_bool "static fraction in range" true (s64 >= 0.0 && s64 <= 100.0);
  check_bool "dynamic fraction in range" true (d64 >= 0.0 && d64 <= 100.0)

let test_partitioned_beats_unified_on_suite () =
  (* The headline claim: partitioning reduces register requirements for
     a meaningful share of loops.  Per-loop strict dominance is NOT a
     theorem — first-fit on the globals+locals subsets can occasionally
     pack one register worse than first-fit on all values — so allow a
     1-register slack, but require it to be rare and the wins to be
     common. *)
  let config = Config.dual ~latency:6 in
  let improved = ref 0 and total = ref 0 and worse = ref 0 in
  let one (ddg, _) =
    let sched = Modulo.schedule config ddg in
    let unified = Requirements.unified sched in
    let part = (Requirements.partitioned sched).Requirements.requirement in
    incr total;
    if part < unified then incr improved;
    if part > unified then begin
      incr worse;
      if part > unified + 1 then
        Alcotest.failf "%s: partitioned %d far exceeds unified %d" (Ddg.name ddg) part
          unified
    end
  in
  List.iter one (Ncdrf_workloads.Kernels.all ());
  check_bool "some kernels improved" true (!improved > !total / 4);
  check_bool "regressions are rare" true (!worse * 10 <= !total)

let suite =
  [
    Alcotest.test_case "paper schedules are valid" `Quick test_paper_schedule_is_valid;
    Alcotest.test_case "Table 3: classification" `Quick test_table3_classification;
    Alcotest.test_case "Table 3: register counts" `Quick test_table3_register_counts;
    Alcotest.test_case "Table 4: after swap" `Quick test_table4_after_swap;
    Alcotest.test_case "unified requirement is 42" `Quick test_unified_requirement_is_42;
    Alcotest.test_case "greedy swap reaches paper result" `Quick
      test_greedy_swap_matches_paper;
    Alcotest.test_case "swap candidates invariants" `Quick
      test_swap_candidates_same_class_and_slot;
    Alcotest.test_case "swap on single cluster is no-op" `Quick
      test_swap_single_cluster_is_noop;
    Alcotest.test_case "model round trip" `Quick test_model_round_trip;
    Alcotest.test_case "pipeline: example, unlimited registers" `Quick
      test_pipeline_example_unlimited;
    Alcotest.test_case "pipeline: capacity forces spills" `Quick
      test_pipeline_with_capacity_spills;
    Alcotest.test_case "ideal model never fails to fit" `Quick
      test_ideal_never_fails_to_fit;
    Alcotest.test_case "classification counts" `Quick test_classify_counts;
    Alcotest.test_case "suite stats: cumulative distributions" `Quick
      test_suite_stats_cumulative;
    Alcotest.test_case "partitioned never exceeds unified" `Quick
      test_partitioned_beats_unified_on_suite;
  ]
