(* Tests for lifetimes and the cyclic (rotating register file)
   allocator, including a brute-force cross-check of the modular
   conflict predicate and qcheck properties. *)

open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched
open Ncdrf_regalloc

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Table 2 lifetimes --- *)

let test_table2_lifetimes () =
  let sched = Helpers.paper_schedule () in
  let expect label len =
    let l = Helpers.lifetime_of sched label in
    check_int label len (Lifetime.length l)
  in
  expect "L1" 13;
  expect "L2" 7;
  expect "M3" 6;
  expect "A4" 6;
  expect "M5" 6;
  expect "A6" 4

let test_lifetime_sum_is_42 () =
  let sched = Helpers.paper_schedule () in
  let total =
    List.fold_left (fun acc l -> acc + Lifetime.length l) 0 (Lifetime.of_schedule sched)
  in
  check_int "sum of lifetimes" 42 total

let test_max_live_example () =
  let sched = Helpers.paper_schedule () in
  check_int "maxlive at II=1" 42
    (Lifetime.max_live ~ii:1 (Lifetime.of_schedule sched))

let test_lifetime_of_dead_value () =
  let open Expr in
  (* r's value is dead: it lives only while the multiplier writes it. *)
  let g = compile ~name:"dead" [ Def ("r", load "x" * inv "k"); Store ("o", load "x") ] in
  let cfg = Config.dual ~latency:3 in
  let sched = Modulo.schedule cfg g in
  let mul = List.find (fun n -> n.Ddg.opcode = Opcode.Fmul) (Ddg.nodes g) in
  let l =
    List.find (fun l -> l.Lifetime.producer = mul.Ddg.id) (Lifetime.of_schedule sched)
  in
  check_int "dead value lives its latency" 3 (Lifetime.length l)

let test_loop_carried_consumer_extends_lifetime () =
  let sched =
    Modulo.schedule (Config.dual ~latency:3)
      (match Ncdrf_workloads.Kernels.find "ll5-tridiag" with
      | Some g -> g
      | None -> Alcotest.fail "kernel missing")
  in
  let ii = Schedule.ii sched in
  (* The recurrence value (mul result) is consumed one iteration later:
     its lifetime must span at least II. *)
  let ddg = sched.Schedule.ddg in
  let mul = List.find (fun n -> n.Ddg.opcode = Opcode.Fmul) (Ddg.nodes ddg) in
  let l =
    List.find (fun l -> l.Lifetime.producer = mul.Ddg.id) (Lifetime.of_schedule sched)
  in
  check_bool "spans an II" true (Lifetime.length l >= ii)

let test_live_at_slot_formula () =
  (* start 0, length 13, ii 4: instances live at slots 0..3 are
     ceil((13 - r)/4) = 4,3,3,3. *)
  let l = { Lifetime.producer = 0; start = 0; stop = 13 } in
  check_int "slot 0" 4 (Lifetime.live_at_slot l ~ii:4 ~slot:0);
  check_int "slot 1" 3 (Lifetime.live_at_slot l ~ii:4 ~slot:1);
  check_int "slot 2" 3 (Lifetime.live_at_slot l ~ii:4 ~slot:2);
  check_int "slot 3" 3 (Lifetime.live_at_slot l ~ii:4 ~slot:3);
  check_int "min registers" 4 (Lifetime.min_registers ~ii:4 l)

(* --- Conflict predicate: brute force cross-check --- *)

(* Simulate the rotating file over many iterations and check whether two
   placements ever put live instances in the same physical register. *)
let brute_force_conflict ~ii ~capacity (v, rv) (w, rw) =
  (* Physical register of instance k of a value at virtual register r is
     (r + k) mod capacity; instance k is live on
     [start + k*ii, stop + k*ii).  Scan a window of instances wide
     enough to cover every residue. *)
  let phys r k = (((r + k) mod capacity) + capacity) mod capacity in
  let span = 2 * (capacity + ii + Lifetime.length v + Lifetime.length w) in
  let clash = ref false in
  for kv = -span to span do
    for kw = -span to span do
      if not (v.Lifetime.producer = w.Lifetime.producer && kv = kw) then begin
        let vb = v.Lifetime.start + (kv * ii) in
        let wb = w.Lifetime.start + (kw * ii) in
        let overlap =
          vb < wb + Lifetime.length w && wb < vb + Lifetime.length v
        in
        if overlap && phys rv kv = phys rw kw then clash := true
      end
    done
  done;
  !clash

let prop_conflict_brute_force =
  let gen =
    QCheck.Gen.(
      let lifetime =
        map2
          (fun start len -> { Lifetime.producer = 0; start; stop = start + len })
          (int_bound 12) (int_range 1 14)
      in
      let placed cap = map2 (fun l r -> (l, r)) lifetime (int_bound (cap - 1)) in
      int_range 1 4 >>= fun ii ->
      int_range 2 10 >>= fun capacity ->
      placed capacity >>= fun a ->
      placed capacity >>= fun b -> return (ii, capacity, a, b))
  in
  let arb =
    QCheck.make
      ~print:(fun (ii, cap, ((a : Lifetime.t), ra), (b, rb)) ->
        Printf.sprintf "ii=%d cap=%d a=[%d,%d)@%d b=[%d,%d)@%d" ii cap a.Lifetime.start
          a.Lifetime.stop ra b.Lifetime.start b.Lifetime.stop rb)
      gen
  in
  QCheck.Test.make ~count:300 ~name:"conflict = brute force" arb
    (fun (ii, capacity, (a, ra), (b, rb)) ->
      (* Only meaningful when each value fits the capacity on its own. *)
      QCheck.assume (Lifetime.min_registers ~ii a <= capacity);
      QCheck.assume (Lifetime.min_registers ~ii b <= capacity);
      let fast = Alloc.conflict ~ii ~capacity (a, ra) (b, rb) in
      let slow = brute_force_conflict ~ii ~capacity ({ a with producer = 0 }, ra)
          ({ b with producer = 1 }, rb) in
      fast = slow)

let prop_allocation_is_conflict_free =
  let arb =
    QCheck.make
      ~print:(fun (seed, lat) -> Printf.sprintf "seed=%d lat=%d" seed lat)
      QCheck.Gen.(pair (int_bound 50_000) (int_range 1 8))
  in
  QCheck.Test.make ~count:60 ~name:"min_capacity allocation passes check" arb
    (fun (seed, latency) ->
      let g =
        Ncdrf_workloads.Generator.generate Ncdrf_workloads.Generator.default ~seed
          ~name:"alloc-prop"
      in
      let cfg = Config.dual ~latency in
      let sched = Modulo.schedule cfg g in
      let lifetimes = Lifetime.of_schedule sched in
      let ii = Schedule.ii sched in
      let capacity = Alloc.min_capacity ~ii lifetimes in
      match lifetimes with
      | [] -> capacity = 0
      | _ ->
        capacity >= Lifetime.max_live ~ii lifetimes
        &&
        (match Alloc.allocate ~ii ~capacity lifetimes with
        | None -> false
        | Some placements -> Alloc.check ~ii ~capacity placements = Ok ()))

let prop_strategies_all_allocate =
  let arb =
    QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 50_000)
  in
  QCheck.Test.make ~count:40 ~name:"best/end fit also produce valid allocations" arb
    (fun seed ->
      let g =
        Ncdrf_workloads.Generator.generate Ncdrf_workloads.Generator.default ~seed
          ~name:"strat-prop"
      in
      let cfg = Config.dual ~latency:3 in
      let sched = Modulo.schedule cfg g in
      let lifetimes = Lifetime.of_schedule sched in
      let ii = Schedule.ii sched in
      List.for_all
        (fun strategy ->
          let capacity = Alloc.min_capacity ~strategy ~ii lifetimes in
          match lifetimes with
          | [] -> capacity = 0
          | _ ->
            (match Alloc.allocate ~strategy ~ii ~capacity lifetimes with
            | None -> false
            | Some p -> Alloc.check ~ii ~capacity p = Ok ()))
        [ Alloc.First_fit; Alloc.Best_fit; Alloc.End_fit ])

(* Exhaustive optimal allocation for tiny instances: try every register
   assignment up to a capacity bound and find the true minimum. *)
let brute_force_min_capacity ~ii lifetimes ~upper =
  let arr = Array.of_list lifetimes in
  let n = Array.length arr in
  let feasible capacity =
    let rec assign idx regs =
      if idx >= n then true
      else begin
        let ok r =
          List.for_all
            (fun (j, rj) -> not (Alloc.conflict ~ii ~capacity (arr.(j), rj) (arr.(idx), r)))
            regs
          && Lifetime.min_registers ~ii arr.(idx) <= capacity
        in
        let rec try_reg r =
          r < capacity && ((ok r && assign (idx + 1) ((idx, r) :: regs)) || try_reg (r + 1))
        in
        try_reg 0
      end
    in
    assign 0 []
  in
  let rec search c = if c > upper then upper + 1 else if feasible c then c else search (c + 1) in
  search 1

let prop_first_fit_close_to_optimal =
  let gen =
    QCheck.Gen.(
      int_range 1 4 >>= fun ii ->
      int_range 2 4 >>= fun count ->
      list_repeat count (pair (int_bound 6) (int_range 1 9)) >>= fun raw ->
      return (ii, raw))
  in
  let arb =
    QCheck.make
      ~print:(fun (ii, raw) ->
        Printf.sprintf "ii=%d %s" ii
          (String.concat " " (List.map (fun (s, l) -> Printf.sprintf "[%d,+%d)" s l) raw)))
      gen
  in
  QCheck.Test.make ~count:80 ~name:"first-fit vs brute-force optimum" arb
    (fun (ii, raw) ->
      let lifetimes =
        List.mapi
          (fun i (start, len) -> { Lifetime.producer = i; start; stop = start + len })
          raw
      in
      let ff = Alloc.min_capacity ~ii lifetimes in
      let opt = brute_force_min_capacity ~ii lifetimes ~upper:ff in
      (* The true optimum can never beat the MaxLive lower bound, the
         heuristic can never beat the optimum, and on these tiny
         instances first-fit stays within a small constant of it
         (Rau'92 reports near-optimality; 4 bounds the worst adversarial
         case we allow). *)
      Lifetime.max_live ~ii lifetimes <= opt && opt <= ff && ff <= opt + 4)

let test_first_fit_example_is_42 () =
  let sched = Helpers.paper_schedule () in
  let lifetimes = Lifetime.of_schedule sched in
  check_int "min capacity" 42 (Alloc.min_capacity ~ii:1 lifetimes);
  match Alloc.allocate ~ii:1 ~capacity:42 lifetimes with
  | Some p ->
    check_bool "conflict free" true (Alloc.check ~ii:1 ~capacity:42 p = Ok ());
    check_bool "compact" true (Alloc.registers_used p <= 42)
  | None -> Alcotest.fail "allocation failed at the maxlive capacity"

let test_allocate_honours_preplaced () =
  let a = { Lifetime.producer = 0; start = 0; stop = 4 } in
  let b = { Lifetime.producer = 1; start = 0; stop = 4 } in
  let pre = [ { Alloc.value = a; register = 0 } ] in
  (match Alloc.allocate ~placed:pre ~ii:4 ~capacity:2 [ b ] with
   | Some [ p ] ->
     check_bool "avoids the pre-placed register" true (p.Alloc.register <> 0)
   | Some _ | None -> Alcotest.fail "allocation failed");
  (* Capacity 1 cannot hold both. *)
  check_bool "over capacity fails" true
    (Alloc.allocate ~placed:pre ~ii:4 ~capacity:1 [ b ] = None)

let test_orders_allocate_validly () =
  let sched = Helpers.paper_schedule () in
  let lifetimes = Lifetime.of_schedule sched in
  List.iter
    (fun order ->
      let c = Alloc.min_capacity ~order ~ii:1 lifetimes in
      check_bool "capacity sane" true (c >= 42))
    [ Alloc.Start_time; Alloc.Longest_first; Alloc.Node_order ]

let suite =
  [
    Alcotest.test_case "Table 2: lifetimes" `Quick test_table2_lifetimes;
    Alcotest.test_case "lifetime sum is 42" `Quick test_lifetime_sum_is_42;
    Alcotest.test_case "maxlive on example" `Quick test_max_live_example;
    Alcotest.test_case "dead value lifetime" `Quick test_lifetime_of_dead_value;
    Alcotest.test_case "loop-carried consumer extends lifetime" `Quick
      test_loop_carried_consumer_extends_lifetime;
    Alcotest.test_case "live_at_slot formula" `Quick test_live_at_slot_formula;
    Alcotest.test_case "first fit on example needs 42" `Quick test_first_fit_example_is_42;
    Alcotest.test_case "pre-placed values respected" `Quick test_allocate_honours_preplaced;
    Alcotest.test_case "alternative orders" `Quick test_orders_allocate_validly;
    QCheck_alcotest.to_alcotest prop_conflict_brute_force;
    QCheck_alcotest.to_alcotest prop_first_fit_close_to_optimal;
    QCheck_alcotest.to_alcotest prop_allocation_is_conflict_free;
    QCheck_alcotest.to_alcotest prop_strategies_all_allocate;
  ]
