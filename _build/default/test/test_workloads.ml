(* Tests for the kernel collection, the random generator and the suite. *)

open Ncdrf_ir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_all_kernels_validate () =
  let kernels = Ncdrf_workloads.Kernels.all () in
  check_bool "at least 25 kernels" true (List.length kernels >= 25);
  List.iter
    (fun (g, weight) ->
      (match Ddg.validate g with
       | Ok () -> ()
       | Error msg -> Alcotest.failf "%s: %s" (Ddg.name g) msg);
      check_bool (Ddg.name g ^ " weight positive") true (weight > 0.0))
    kernels

let test_kernel_names_unique () =
  let names = List.map (fun (g, _) -> Ddg.name g) (Ncdrf_workloads.Kernels.all ()) in
  let sorted = List.sort_uniq compare names in
  check_int "no duplicate names" (List.length names) (List.length sorted)

let test_find () =
  check_bool "finds daxpy" true (Ncdrf_workloads.Kernels.find "daxpy" <> None);
  check_bool "misses bogus" true (Ncdrf_workloads.Kernels.find "bogus" = None)

let test_paper_example_shape () =
  let g = Ncdrf_workloads.Kernels.paper_example () in
  check_int "7 ops" 7 (Ddg.num_nodes g);
  check_int "7 deps" 7 (Ddg.num_edges g);
  check_int "2 loads" 2 (Ddg.num_loads g);
  check_int "1 store" 1 (Ddg.num_stores g)

let test_generator_deterministic () =
  let params = Ncdrf_workloads.Generator.default in
  let a = Ncdrf_workloads.Generator.generate params ~seed:7 ~name:"d" in
  let b = Ncdrf_workloads.Generator.generate params ~seed:7 ~name:"d" in
  check_int "same nodes" (Ddg.num_nodes a) (Ddg.num_nodes b);
  check_int "same edges" (Ddg.num_edges a) (Ddg.num_edges b);
  let ops g = List.map (fun n -> Opcode.to_string n.Ddg.opcode) (Ddg.nodes g) in
  check_bool "same opcodes" true (ops a = ops b);
  let c = Ncdrf_workloads.Generator.generate params ~seed:8 ~name:"d" in
  check_bool "different seed differs" true
    (Ddg.num_nodes a <> Ddg.num_nodes c || ops a <> ops c)

let test_generator_respects_bounds () =
  let params = { Ncdrf_workloads.Generator.default with min_ops = 10; max_ops = 14 } in
  for seed = 0 to 40 do
    let g = Ncdrf_workloads.Generator.generate params ~seed ~name:"b" in
    (* Sink stores can push the count past max_ops, but the base ops obey
       the bounds; allow the documented slack. *)
    check_bool "lower bound" true (Ddg.num_nodes g >= 10);
    check_bool "validates" true (Ddg.validate g = Ok ())
  done

let test_generator_produces_recurrences () =
  let params = { Ncdrf_workloads.Generator.heavy with recurrence_prob = 0.5 } in
  let carried = ref 0 in
  for seed = 0 to 20 do
    let g = Ncdrf_workloads.Generator.generate params ~seed ~name:"r" in
    if List.exists (fun e -> e.Ddg.distance > 0) (Ddg.edges g) then incr carried
  done;
  check_bool "most seeds have carried deps" true (!carried >= 15)

let test_suite_size_and_determinism () =
  let s1 = Ncdrf_workloads.Suite.full ~size:100 ~seed:1 () in
  let s2 = Ncdrf_workloads.Suite.full ~size:100 ~seed:1 () in
  check_int "size" 100 (List.length s1);
  let weights e = List.map (fun x -> x.Ncdrf_workloads.Suite.iterations) e in
  check_bool "deterministic weights" true (weights s1 = weights s2);
  List.iter
    (fun e ->
      check_bool "validates" true (Ddg.validate e.Ncdrf_workloads.Suite.ddg = Ok ()))
    s1

let test_suite_heavy_tail () =
  let s = Ncdrf_workloads.Suite.full ~size:300 ~seed:42 () in
  let share = Ncdrf_workloads.Suite.weight_share s ~n:30 in
  (* Top 10% of loops should carry a disproportionate share of the
     execution time. *)
  check_bool "top 30 loops exceed 30% of time" true (share > 0.3)

let test_suite_names_unique () =
  let s = Ncdrf_workloads.Suite.full ~size:200 ~seed:3 () in
  let names = List.map (fun e -> Ddg.name e.Ncdrf_workloads.Suite.ddg) s in
  check_int "unique" (List.length names) (List.length (List.sort_uniq compare names))

let suite =
  [
    Alcotest.test_case "kernels validate" `Quick test_all_kernels_validate;
    Alcotest.test_case "kernel names unique" `Quick test_kernel_names_unique;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "paper example shape" `Quick test_paper_example_shape;
    Alcotest.test_case "generator deterministic" `Quick test_generator_deterministic;
    Alcotest.test_case "generator respects bounds" `Quick test_generator_respects_bounds;
    Alcotest.test_case "generator produces recurrences" `Quick
      test_generator_produces_recurrences;
    Alcotest.test_case "suite size and determinism" `Quick test_suite_size_and_determinism;
    Alcotest.test_case "suite heavy tail" `Quick test_suite_heavy_tail;
    Alcotest.test_case "suite names unique" `Quick test_suite_names_unique;
  ]
