(* Unit tests for the IR: opcodes, graphs, the expression DSL, the loop
   language, spill-pattern cleanup and the generic graph algorithms. *)

open Ncdrf_ir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- Opcode --- *)

let test_fu_classes () =
  check_bool "fadd is adder" true (Opcode.fu_class Opcode.Fadd = Opcode.Adder);
  check_bool "fsub is adder" true (Opcode.fu_class Opcode.Fsub = Opcode.Adder);
  check_bool "fcvt is adder" true (Opcode.fu_class Opcode.Fcvt = Opcode.Adder);
  check_bool "fmul is multiplier" true (Opcode.fu_class Opcode.Fmul = Opcode.Multiplier);
  check_bool "fdiv is multiplier" true (Opcode.fu_class Opcode.Fdiv = Opcode.Multiplier);
  check_bool "load is memory" true
    (Opcode.fu_class (Opcode.Load (Opcode.Array "x")) = Opcode.Memory);
  check_bool "store is memory" true
    (Opcode.fu_class (Opcode.Store (Opcode.Array "x")) = Opcode.Memory)

let test_opcode_predicates () =
  check_bool "store produces no value" false
    (Opcode.produces_value (Opcode.Store (Opcode.Array "x")));
  check_bool "load produces a value" true
    (Opcode.produces_value (Opcode.Load (Opcode.Array "x")));
  check_bool "spill access" true (Opcode.is_spill_access (Opcode.Load (Opcode.Spill 0)));
  check_bool "array access is not spill" false
    (Opcode.is_spill_access (Opcode.Load (Opcode.Array "x")));
  check_bool "equal spill slots" true
    (Opcode.equal (Opcode.Load (Opcode.Spill 1)) (Opcode.Load (Opcode.Spill 1)));
  check_bool "different slots differ" false
    (Opcode.equal (Opcode.Load (Opcode.Spill 1)) (Opcode.Load (Opcode.Spill 2)))

(* --- Ddg --- *)

let diamond () =
  let b = Ddg.Builder.create ~name:"diamond" in
  let n op l = Ddg.Builder.add_node b op ~label:l in
  let a = n (Opcode.Load (Opcode.Array "x")) "a" in
  let l = n Opcode.Fadd "l" in
  let r = n Opcode.Fmul "r" in
  let s = n (Opcode.Store (Opcode.Array "y")) "s" in
  let e src dst = Ddg.Builder.add_edge b ~src ~dst ~distance:0 Ddg.Flow in
  e a l;
  e a r;
  e l s;
  (* r's value is dead on purpose *)
  (b, (a, l, r, s))

let test_builder_and_accessors () =
  let b, (a, l, r, s) = diamond () in
  let g = Ddg.Builder.freeze b in
  check_int "nodes" 4 (Ddg.num_nodes g);
  check_int "edges" 3 (Ddg.num_edges g);
  check_int "succs of a" 2 (List.length (Ddg.succs g a));
  check_int "preds of s" 1 (List.length (Ddg.preds g s));
  check_int "consumers of a" 2 (List.length (Ddg.consumers g a));
  check_int "consumers of r" 0 (List.length (Ddg.consumers g r));
  check_bool "validate" true (Ddg.validate g = Ok ());
  check_int "loads" 1 (Ddg.num_loads g);
  check_int "stores" 1 (Ddg.num_stores g);
  check_int "memops" 2 (Ddg.num_memory_ops g);
  ignore l

let test_zero_distance_cycle_rejected () =
  let b = Ddg.Builder.create ~name:"cycle" in
  let n op l = Ddg.Builder.add_node b op ~label:l in
  let x = n Opcode.Fadd "x" in
  let y = n Opcode.Fmul "y" in
  Ddg.Builder.add_edge b ~src:x ~dst:y ~distance:0 Ddg.Flow;
  Ddg.Builder.add_edge b ~src:y ~dst:x ~distance:0 Ddg.Flow;
  let g = Ddg.Builder.freeze b in
  match Ddg.validate g with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "zero-distance cycle accepted"

let test_carried_cycle_accepted () =
  let b = Ddg.Builder.create ~name:"recurrence" in
  let n op l = Ddg.Builder.add_node b op ~label:l in
  let x = n Opcode.Fadd "x" in
  let y = n Opcode.Fmul "y" in
  Ddg.Builder.add_edge b ~src:x ~dst:y ~distance:0 Ddg.Flow;
  Ddg.Builder.add_edge b ~src:y ~dst:x ~distance:1 Ddg.Flow;
  check_bool "valid" true (Ddg.validate (Ddg.Builder.freeze b) = Ok ())

let test_flow_out_of_store_rejected () =
  let b = Ddg.Builder.create ~name:"bad-flow" in
  let n op l = Ddg.Builder.add_node b op ~label:l in
  let s = n (Opcode.Store (Opcode.Array "x")) "s" in
  let a = n Opcode.Fadd "a" in
  Ddg.Builder.add_edge b ~src:s ~dst:a ~distance:0 Ddg.Flow;
  match Ddg.validate (Ddg.Builder.freeze b) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "flow edge out of a store accepted"

let test_builder_rejects_bad_edges () =
  let b = Ddg.Builder.create ~name:"bad" in
  let x = Ddg.Builder.add_node b Opcode.Fadd ~label:"x" in
  (try
     Ddg.Builder.add_edge b ~src:x ~dst:99 ~distance:0 Ddg.Flow;
     Alcotest.fail "out-of-range edge accepted"
   with Invalid_argument _ -> ());
  try
    Ddg.Builder.add_edge b ~src:x ~dst:x ~distance:(-1) Ddg.Flow;
    Alcotest.fail "negative distance accepted"
  with Invalid_argument _ -> ()

let test_transform_add_and_drop () =
  let b, (a, l, _r, s) = diamond () in
  let g = Ddg.Builder.freeze b in
  (* Drop a->l, reroute a -> new node -> l. *)
  let n = Ddg.num_nodes g in
  let g' =
    Ddg.transform g
      ~drop_edge:(fun e -> e.Ddg.src = a && e.Ddg.dst = l)
      ~add_nodes:[ (Opcode.Fadd, "mid") ]
      ~add_edges:
        [
          { Ddg.src = a; dst = n; distance = 0; kind = Ddg.Flow };
          { Ddg.src = n; dst = l; distance = 0; kind = Ddg.Flow };
        ]
      ()
  in
  check_int "one more node" (n + 1) (Ddg.num_nodes g');
  check_int "one more edge" (Ddg.num_edges g + 1) (Ddg.num_edges g');
  check_bool "still valid" true (Ddg.validate g' = Ok ());
  ignore s

let test_remove_nodes_remaps () =
  let b, (a, l, r, s) = diamond () in
  let g = Ddg.Builder.freeze b in
  let keep node = node.Ddg.id <> r in
  let g', remap = Ddg.remove_nodes g ~keep () in
  check_int "one fewer node" 3 (Ddg.num_nodes g');
  check_int "dropped maps to -1" (-1) remap.(r);
  check_bool "kept nodes remapped" true (remap.(a) >= 0 && remap.(l) >= 0 && remap.(s) >= 0);
  check_int "edge to r dropped" 2 (Ddg.num_edges g');
  check_bool "still valid" true (Ddg.validate g' = Ok ())

(* --- Expr DSL --- *)

let test_expr_example_structure () =
  let open Expr in
  let g =
    compile ~name:"ex"
      [ Store ("z", ((load "x" * inv "r") + load "y") * inv "t" + load "x") ]
  in
  (* CSE must share the two x(i) loads: 2 loads + 2 muls... the outer
     expression is ((x*r + y) * t) + x: nodes = Lx, Ly, M, A, M, A, S. *)
  check_int "nodes" 7 (Ddg.num_nodes g);
  check_int "loads" 2 (Ddg.num_loads g);
  check_bool "valid" true (Ddg.validate g = Ok ())

let test_expr_cse_shares_subexpressions () =
  let open Expr in
  let g =
    compile ~name:"cse"
      [
        Store ("o1", (load "a" + load "b") * inv "k");
        Store ("o2", (load "a" + load "b") * inv "j");
      ]
  in
  (* a, b, shared add, two muls, two stores = 7 nodes. *)
  check_int "nodes" 7 (Ddg.num_nodes g)

let test_expr_recurrence_distance () =
  let open Expr in
  let g =
    compile ~name:"rec" [ Def ("s", prev ~distance:3 "s" + load "x"); Store ("o", ref_ "s") ]
  in
  let carried =
    List.filter (fun e -> e.Ddg.distance = 3) (Ddg.edges g)
  in
  check_int "one carried edge" 1 (List.length carried);
  check_bool "valid" true (Ddg.validate g = Ok ())

let test_expr_errors () =
  let open Expr in
  let expect_error name stmts =
    try
      ignore (compile ~name stmts);
      Alcotest.failf "%s: no error raised" name
    with Compile_error _ -> ()
  in
  expect_error "unknown prev" [ Store ("o", prev "nope") ];
  expect_error "bad distance" [ Def ("s", prev ~distance:0 "s" + load "x") ];
  expect_error "double def" [ Def ("s", load "x"); Def ("s", load "y") ];
  expect_error "invariant def" [ Def ("s", inv "r") ];
  expect_error "use before def" [ Store ("o", ref_ "s"); Def ("s", load "x") ]

let test_expr_select_compiles () =
  let open Expr in
  let g =
    compile ~name:"sel" [ Store ("o", select (load "p") (load "a") (load "b")) ]
  in
  (* 3 loads + 1 select + 1 store. *)
  check_int "nodes" 5 (Ddg.num_nodes g);
  let sel = List.find (fun n -> n.Ddg.opcode = Opcode.Fselect) (Ddg.nodes g) in
  check_int "three operands" 3 (List.length (Ddg.preds g sel.Ddg.id));
  check_bool "select runs on the adders" true
    (Opcode.fu_class Opcode.Fselect = Opcode.Adder);
  check_bool "valid" true (Ddg.validate g = Ok ())

(* --- Loop language --- *)

let test_loop_lang_parses_example () =
  let text =
    {|
-- the paper's worked example
loop example
  z[i] = (x[i] * $r + y[i]) * $t + x[i]
|}
  in
  let g = Loop_lang.parse_one text in
  check_string "name" "example" (Ddg.name g);
  check_int "nodes" 7 (Ddg.num_nodes g);
  check_bool "valid" true (Ddg.validate g = Ok ())

let test_loop_lang_recurrence_and_defs () =
  let text =
    {|
loop tridiag
  x = z[i] * (y[i] - prev(x, 1))
  xout[i] = x
|}
  in
  let g = Loop_lang.parse_one text in
  check_bool "has carried edge" true
    (List.exists (fun e -> e.Ddg.distance = 1) (Ddg.edges g));
  check_int "nodes" 5 (Ddg.num_nodes g)

let test_loop_lang_multiple_loops () =
  let text = "loop a\n  o[i] = x[i] + 1.0\nloop b\n  o[i] = x[i] * x[i]\n" in
  match Loop_lang.parse_string text with
  | [ ga; gb ] ->
    check_string "first" "a" (Ddg.name ga);
    check_string "second" "b" (Ddg.name gb)
  | other -> Alcotest.failf "expected 2 loops, got %d" (List.length other)

let test_loop_lang_select () =
  let g =
    Loop_lang.parse_one "loop ifconv\n  o[i] = select(x[i] - $t, x[i], 0.0 * x[i])\n"
  in
  check_bool "has a select node" true
    (List.exists (fun n -> n.Ddg.opcode = Opcode.Fselect) (Ddg.nodes g));
  check_bool "valid" true (Ddg.validate g = Ok ())

let test_loop_lang_operators_and_unary_minus () =
  let g = Loop_lang.parse_one "loop ops\n  o[i] = -x[i] / (y[i] - 2.0) + cvt(n[i])\n" in
  check_bool "valid" true (Ddg.validate g = Ok ());
  (* -x is 0-x: sub, div, sub, add, cvt + 3 loads + store = 9 *)
  check_int "nodes" 9 (Ddg.num_nodes g)

let test_loop_lang_errors () =
  let expect_error text =
    try
      ignore (Loop_lang.parse_string text);
      Alcotest.failf "no parse error for %S" text
    with Loop_lang.Parse_error _ -> ()
  in
  expect_error "o[i] = x[i]\n";
  (* statement before any loop *)
  expect_error "loop a\n  o[i] = x[i] +\n";
  expect_error "loop a\n  o[j] = x[i]\n";
  expect_error "loop a\n  o[i] = x[i] ^ 2\n";
  expect_error "loop\n"

(* --- Spill cleanup --- *)

let spilled_graph () =
  (* load a -> store spill.0; load spill.0 -> add -> store out.
     After cleanup: load a -> add -> store out. *)
  let b = Ddg.Builder.create ~name:"spilled" in
  let n op l = Ddg.Builder.add_node b op ~label:l in
  let ld = n (Opcode.Load (Opcode.Array "a")) "ld" in
  let st_sp = n (Opcode.Store (Opcode.Spill 0)) "st.sp" in
  let ld_sp = n (Opcode.Load (Opcode.Spill 0)) "ld.sp" in
  let add = n Opcode.Fadd "add" in
  let st = n (Opcode.Store (Opcode.Array "out")) "st" in
  let e ?(kind = Ddg.Flow) ?(distance = 0) src dst =
    Ddg.Builder.add_edge b ~src ~dst ~distance kind
  in
  e ld st_sp;
  e ~kind:Ddg.Mem st_sp ld_sp;
  e ld_sp add;
  e add st;
  Ddg.Builder.freeze b

let test_spill_cleanup_removes_pair () =
  let g = spilled_graph () in
  let cleaned, removed = Spill_cleanup.run g in
  check_int "removed" 2 removed;
  check_int "nodes" 3 (Ddg.num_nodes cleaned);
  check_int "no spill memops left" 0
    (Ddg.fold_nodes cleaned ~init:0 ~f:(fun acc n ->
         if Opcode.is_spill_access n.Ddg.opcode then acc + 1 else acc));
  (* The producer must now feed the add directly. *)
  let ld = Helpers.node_by_label cleaned "ld" in
  let add = Helpers.node_by_label cleaned "add" in
  check_bool "reconnected" true
    (List.exists (fun e -> e.Ddg.dst = add.Ddg.id) (Ddg.consumers cleaned ld.Ddg.id));
  check_bool "valid" true (Ddg.validate cleaned = Ok ())

let test_spill_cleanup_noop_without_spills () =
  let g = Helpers.example_ddg () in
  let cleaned, removed = Spill_cleanup.run g in
  check_int "nothing removed" 0 removed;
  check_int "same nodes" (Ddg.num_nodes g) (Ddg.num_nodes cleaned)

(* --- Dot --- *)

let test_dot_render_mentions_nodes () =
  let g = Helpers.example_ddg () in
  let dot = Dot.render g in
  List.iter (fun l -> check_bool l true (Helpers.contains dot l)) [ "L1"; "M3"; "S7"; "digraph" ]

(* --- Graph algorithms --- *)

let test_scc_triangle () =
  let succs = function 0 -> [ 1 ] | 1 -> [ 2 ] | 2 -> [ 0 ] | _ -> [] in
  let comps = Graph_algos.scc ~num_nodes:4 ~succs in
  let sizes = List.sort compare (List.map List.length comps) in
  check_bool "one scc of 3 + singleton" true (sizes = [ 1; 3 ])

let test_scc_topological_order () =
  (* {0,1} -> {2} -> {3,4}: sources must come first. *)
  let succs = function
    | 0 -> [ 1 ]
    | 1 -> [ 0; 2 ]
    | 2 -> [ 3 ]
    | 3 -> [ 4 ]
    | 4 -> [ 3 ]
    | _ -> []
  in
  let comps = Graph_algos.scc ~num_nodes:5 ~succs in
  let normalized = List.map (List.sort compare) comps in
  check_bool "topological condensation" true (normalized = [ [ 0; 1 ]; [ 2 ]; [ 3; 4 ] ])

let test_elementary_circuits () =
  (* Two triangles sharing node 0: 0-1-2 and 0-3-4, plus a self loop. *)
  let succs = function
    | 0 -> [ 1; 3 ]
    | 1 -> [ 2 ]
    | 2 -> [ 0 ]
    | 3 -> [ 4 ]
    | 4 -> [ 0; 4 ]
    | _ -> []
  in
  let circuits = Graph_algos.elementary_circuits ~num_nodes:5 ~succs () in
  check_int "three circuits" 3 (List.length circuits)

let test_longest_paths_and_positive_cycle () =
  let edges = [ (0, 1, 2); (1, 2, 3); (0, 2, 1) ] in
  (match Graph_algos.longest_paths ~num_nodes:3 ~edges ~sources:[ 0 ] with
   | Some dist ->
     check_int "dist to 2" 5 dist.(2);
     check_int "dist to 1" 2 dist.(1)
   | None -> Alcotest.fail "unexpected positive cycle");
  check_bool "positive cycle found" true
    (Graph_algos.has_positive_cycle ~num_nodes:2 ~edges:[ (0, 1, 1); (1, 0, 0) ]);
  check_bool "non-positive cycle ok" false
    (Graph_algos.has_positive_cycle ~num_nodes:2 ~edges:[ (0, 1, 1); (1, 0, -1) ])

let test_topological_order () =
  let succs = function 0 -> [ 1; 2 ] | 1 -> [ 3 ] | 2 -> [ 3 ] | _ -> [] in
  let order = Graph_algos.topological_order ~num_nodes:4 ~succs in
  let pos v = ref 0 |> fun r -> List.iteri (fun i x -> if x = v then r := i) order; !r in
  check_bool "0 before 3" true (pos 0 < pos 3);
  check_bool "1 before 3" true (pos 1 < pos 3);
  try
    ignore
      (Graph_algos.topological_order ~num_nodes:2 ~succs:(function
        | 0 -> [ 1 ]
        | _ -> [ 0 ]));
    Alcotest.fail "cyclic graph accepted"
  with Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "opcode fu classes" `Quick test_fu_classes;
    Alcotest.test_case "opcode predicates" `Quick test_opcode_predicates;
    Alcotest.test_case "builder and accessors" `Quick test_builder_and_accessors;
    Alcotest.test_case "zero-distance cycle rejected" `Quick test_zero_distance_cycle_rejected;
    Alcotest.test_case "carried cycle accepted" `Quick test_carried_cycle_accepted;
    Alcotest.test_case "flow out of store rejected" `Quick test_flow_out_of_store_rejected;
    Alcotest.test_case "builder rejects bad edges" `Quick test_builder_rejects_bad_edges;
    Alcotest.test_case "transform adds and drops" `Quick test_transform_add_and_drop;
    Alcotest.test_case "remove_nodes remaps" `Quick test_remove_nodes_remaps;
    Alcotest.test_case "expr: example structure" `Quick test_expr_example_structure;
    Alcotest.test_case "expr: CSE shares subexpressions" `Quick
      test_expr_cse_shares_subexpressions;
    Alcotest.test_case "expr: recurrence distance" `Quick test_expr_recurrence_distance;
    Alcotest.test_case "expr: errors" `Quick test_expr_errors;
    Alcotest.test_case "expr: select" `Quick test_expr_select_compiles;
    Alcotest.test_case "loop lang: select" `Quick test_loop_lang_select;
    Alcotest.test_case "loop lang: example" `Quick test_loop_lang_parses_example;
    Alcotest.test_case "loop lang: recurrences and defs" `Quick
      test_loop_lang_recurrence_and_defs;
    Alcotest.test_case "loop lang: multiple loops" `Quick test_loop_lang_multiple_loops;
    Alcotest.test_case "loop lang: operators" `Quick
      test_loop_lang_operators_and_unary_minus;
    Alcotest.test_case "loop lang: errors" `Quick test_loop_lang_errors;
    Alcotest.test_case "spill cleanup removes pair" `Quick test_spill_cleanup_removes_pair;
    Alcotest.test_case "spill cleanup no-op" `Quick test_spill_cleanup_noop_without_spills;
    Alcotest.test_case "dot render" `Quick test_dot_render_mentions_nodes;
    Alcotest.test_case "scc" `Quick test_scc_triangle;
    Alcotest.test_case "scc topological order" `Quick test_scc_topological_order;
    Alcotest.test_case "elementary circuits" `Quick test_elementary_circuits;
    Alcotest.test_case "longest paths / positive cycles" `Quick
      test_longest_paths_and_positive_cycle;
    Alcotest.test_case "topological order" `Quick test_topological_order;
  ]
