open Ncdrf_ir

type split = {
  first : Ddg.t;
  second : Ddg.t;
  cut_values : int;
  added_memops : int;
}

(* Build one piece: the member nodes, their internal edges, a store for
   every member value consumed outside, and a load for every outside
   value the members consume.  Cross-piece distances fold into the
   scratch arrays' indexing, so reconnection edges have distance 0. *)
let build_piece ~name ~suffix ddg ~member =
  let n = Ddg.num_nodes ddg in
  let b = Ddg.Builder.create ~name:(name ^ suffix) in
  let remap = Array.make n (-1) in
  Ddg.iter_nodes ddg ~f:(fun node ->
      if member node.Ddg.id then
        remap.(node.Ddg.id) <- Ddg.Builder.add_node b node.Ddg.opcode ~label:node.Ddg.label);
  let added_memops = ref 0 in
  (* Internal edges. *)
  List.iter
    (fun e ->
      if remap.(e.Ddg.src) >= 0 && remap.(e.Ddg.dst) >= 0 then
        Ddg.Builder.add_edge b ~src:remap.(e.Ddg.src) ~dst:remap.(e.Ddg.dst)
          ~distance:e.Ddg.distance e.Ddg.kind)
    (Ddg.edges ddg);
  (* Outgoing cut values: store them. *)
  Ddg.iter_nodes ddg ~f:(fun node ->
      let v = node.Ddg.id in
      if member v && Opcode.produces_value node.Ddg.opcode then begin
        let escapes =
          List.exists (fun e -> not (member e.Ddg.dst)) (Ddg.consumers ddg v)
        in
        if escapes then begin
          let array = Printf.sprintf "fis.%d" v in
          let store =
            Ddg.Builder.add_node b
              (Opcode.Store (Opcode.Array array))
              ~label:(Printf.sprintf "fS%d" v)
          in
          incr added_memops;
          Ddg.Builder.add_edge b ~src:remap.(v) ~dst:store ~distance:0 Ddg.Flow
        end
      end);
  (* Incoming cut values: one load each, feeding every member consumer. *)
  let loads = Hashtbl.create 8 in
  List.iter
    (fun e ->
      if
        e.Ddg.kind = Ddg.Flow
        && (not (member e.Ddg.src))
        && member e.Ddg.dst
      then begin
        let load =
          match Hashtbl.find_opt loads e.Ddg.src with
          | Some id -> id
          | None ->
            let array = Printf.sprintf "fis.%d" e.Ddg.src in
            let id =
              Ddg.Builder.add_node b
                (Opcode.Load (Opcode.Array array))
                ~label:(Printf.sprintf "fL%d" e.Ddg.src)
            in
            incr added_memops;
            Hashtbl.replace loads e.Ddg.src id;
            id
        in
        Ddg.Builder.add_edge b ~src:load ~dst:remap.(e.Ddg.dst) ~distance:0 Ddg.Flow
      end)
    (Ddg.edges ddg);
  (Ddg.Builder.freeze b, Hashtbl.length loads, !added_memops)

let split ddg =
  let n = Ddg.num_nodes ddg in
  if n < 2 then None
  else begin
    (* Condensation order over ALL edges: recurrences and even
       loop-carried forward dependences must not flow backwards across
       the cut, because the second loop runs entirely after the first. *)
    let succs v = List.map (fun e -> e.Ddg.dst) (Ddg.succs ddg v) in
    (* The condensation comes out in topological order (sources first),
       so any prefix is a legal first loop. *)
    let order = Graph_algos.scc ~num_nodes:n ~succs in
    if List.length order < 2 then None
    else begin
      (* Prefix whose size lands closest to half the nodes. *)
      let target = n / 2 in
      let rec choose acc size = function
        | [] | [ _ ] -> acc
        | comp :: rest ->
          let size' = size + List.length comp in
          let acc' =
            match acc with
            | None -> Some size'
            | Some best -> if abs (size' - target) < abs (best - target) then Some size' else acc
          in
          choose acc' size' rest
      in
      match choose None 0 order with
      | None -> None
      | Some prefix_size ->
        if prefix_size = 0 || prefix_size = n then None
        else begin
          let in_first = Array.make n false in
          let rec mark size = function
            | comp :: rest when size < prefix_size ->
              List.iter (fun v -> in_first.(v) <- true) comp;
              mark (size + List.length comp) rest
            | _ -> ()
          in
          mark 0 order;
          let member_first v = in_first.(v) in
          let member_second v = not in_first.(v) in
          let first, in1, mem1 = build_piece ~name:(Ddg.name ddg) ~suffix:".a" ddg ~member:member_first in
          let second, in2, mem2 =
            build_piece ~name:(Ddg.name ddg) ~suffix:".b" ddg ~member:member_second
          in
          assert (in1 = 0);
          Some { first; second; cut_values = in2; added_memops = mem1 + mem2 }
        end
    end
  end

let split_until ~requirement ~capacity ?(max_pieces = 8) ddg =
  let rec refine pieces =
    if List.length pieces >= max_pieces then (pieces, false)
    else begin
      let over = List.filter (fun g -> requirement g > capacity) pieces in
      match over with
      | [] -> (pieces, true)
      | _ ->
        let progressed = ref false in
        let expand g =
          if requirement g > capacity then
            match split g with
            | Some s ->
              progressed := true;
              [ s.first; s.second ]
            | None -> [ g ]
          else [ g ]
        in
        let pieces' = List.concat_map expand pieces in
        if !progressed then refine pieces'
        else (pieces', List.for_all (fun g -> requirement g <= capacity) pieces')
    end
  in
  refine [ ddg ]
