lib/spill/spiller.mli: Config Ddg Ncdrf_ir Ncdrf_machine Ncdrf_sched Schedule
