lib/spill/traffic.mli: Ddg Ncdrf_ir Ncdrf_sched Schedule
