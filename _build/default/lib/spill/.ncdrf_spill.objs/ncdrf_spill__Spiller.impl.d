lib/spill/spiller.ml: Adjust Ddg Lifetime List Logs Modulo Ncdrf_ir Ncdrf_regalloc Ncdrf_sched Opcode Printf Schedule
