lib/spill/traffic.ml: Config Ddg List Ncdrf_ir Ncdrf_machine Ncdrf_sched Schedule
