lib/spill/fission.ml: Array Ddg Graph_algos Hashtbl List Ncdrf_ir Opcode Printf
