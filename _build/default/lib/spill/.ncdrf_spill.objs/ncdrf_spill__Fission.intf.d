lib/spill/fission.mli: Ddg Ncdrf_ir
