open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched

let memops_per_iteration ddg = Ddg.num_memory_ops ddg

let density sched =
  let ddg = sched.Schedule.ddg in
  let cfg = sched.Schedule.config in
  let bandwidth = Config.memory_bandwidth cfg in
  if bandwidth = 0 then 0.0
  else
    float_of_int (memops_per_iteration ddg)
    /. (float_of_int (Schedule.ii sched) *. float_of_int bandwidth)

let aggregate_density scheds =
  let num, den =
    List.fold_left
      (fun (num, den) (sched, weight) ->
        let ddg = sched.Schedule.ddg in
        let cfg = sched.Schedule.config in
        let bandwidth = float_of_int (Config.memory_bandwidth cfg) in
        ( num +. (weight *. float_of_int (memops_per_iteration ddg)),
          den +. (weight *. float_of_int (Schedule.ii sched) *. bandwidth) ))
      (0.0, 0.0) scheds
  in
  if den = 0.0 then 0.0 else num /. den
