open Ncdrf_ir

(* The worked example of Section 4.1, with the paper's node labels:

     DO I = 1, N
       z(I) = (x(I) * r + y(I)) * t + x(I)
     ENDDO

   L1 = load x; L2 = load y; M3 = L1 * r; A4 = M3 + L2; M5 = A4 * t;
   A6 = M5 + L1; S7 = store z.  r and t are loop invariants. *)
let paper_example () =
  let b = Ddg.Builder.create ~name:"paper-example" in
  let node op label = Ddg.Builder.add_node b op ~label in
  let flow src dst = Ddg.Builder.add_edge b ~src ~dst ~distance:0 Ddg.Flow in
  let l1 = node (Opcode.Load (Opcode.Array "x")) "L1" in
  let l2 = node (Opcode.Load (Opcode.Array "y")) "L2" in
  let m3 = node Opcode.Fmul "M3" in
  let a4 = node Opcode.Fadd "A4" in
  let m5 = node Opcode.Fmul "M5" in
  let a6 = node Opcode.Fadd "A6" in
  let s7 = node (Opcode.Store (Opcode.Array "z")) "S7" in
  flow l1 m3;
  flow m3 a4;
  flow l2 a4;
  flow a4 m5;
  flow m5 a6;
  flow l1 a6;
  flow a6 s7;
  Ddg.Builder.freeze b

(* DSL kernels.  Each is (name, iterations, statements). *)
let dsl_kernels () =
  let open Expr in
  let cvt_helper e = Cvt e in
  [
    ( "daxpy",
      2000.0,
      [ Store ("y", load "y" + (inv "a" * load "x")) ] );
    ( "dot-product",
      1500.0,
      (* LL3: running inner-product reduction. *)
      [
        Def ("s", (load "x" * load "y") + prev "s");
        Store ("partial", ref_ "s");
      ] );
    ( "ll1-hydro",
      800.0,
      (* LL1: x(k) = q + y(k) * (r*z(k+10) + t*z(k+11)) *)
      [
        Store ("x", inv "q" + (load "y" * ((inv "r" * load "z10") + (inv "t" * load "z11"))));
      ] );
    ( "ll5-tridiag",
      900.0,
      (* LL5: x(i) = z(i) * (y(i) - x(i-1)) *)
      [ Def ("x", load "z" * (load "y" - prev "x")); Store ("xout", ref_ "x") ] );
    ( "ll7-state",
      400.0,
      (* LL7: equation of state fragment. *)
      [
        Def ("inner", load "u6" + (inv "r" * (load "u5" + (inv "r" * load "u4"))));
        Def ("mid", load "u3" + (inv "r" * (load "u2" + (inv "r" * load "u1"))));
        Store
          ( "x",
            load "u"
            + (inv "r" * (load "z" + (inv "r" * load "y")))
            + (inv "t" * (ref_ "mid" + (inv "t" * ref_ "inner"))) );
      ] );
    ( "ll9-integrate",
      600.0,
      (* LL9: numerical integration predictor. *)
      [
        Store
          ( "px",
            (inv "dm28" * load "pz")
            + (inv "dm27" * load "py")
            + (inv "dm26" * load "p6")
            + (inv "dm25" * load "p5")
            + (inv "dm24" * load "p4")
            + (inv "dm23" * load "p3")
            + (inv "dm22" * load "p2")
            + (inv "c0" * (load "p0" + load "p1")) );
      ] );
    ( "ll11-first-sum",
      1200.0,
      (* LL11: x(k) = x(k-1) + y(k) *)
      [ Def ("x", prev "x" + load "y"); Store ("xout", ref_ "x") ] );
    ( "ll12-first-diff",
      1200.0,
      (* LL12: x(k) = y(k+1) - y(k) *)
      [ Store ("x", load "y1" - load "y0") ] );
    ( "horner-6",
      700.0,
      [
        Def ("h", (((((load "x" * inv "c6") + inv "c5") * load "x") + inv "c4") * load "x") + inv "c3");
        Store ("p", (((ref_ "h" * load "x") + inv "c2") * load "x") + inv "c1");
      ] );
    ( "stencil-3",
      1000.0,
      [
        Store ("b", (inv "c0" * load "a0") + (inv "c1" * load "a1") + (inv "c2" * load "a2"));
      ] );
    ( "stencil-5",
      800.0,
      [
        Store
          ( "b",
            (inv "c0" * load "a0")
            + (inv "c1" * load "a1")
            + (inv "c2" * load "a2")
            + (inv "c3" * load "a3")
            + (inv "c4" * load "a4") );
      ] );
    ( "fft-butterfly",
      500.0,
      [
        Def ("tr", (load "ar" * inv "wr") - (load "ai" * inv "wi"));
        Def ("ti", (load "ar" * inv "wi") + (load "ai" * inv "wr"));
        Store ("br", load "xr" + ref_ "tr");
        Store ("bi", load "xi" + ref_ "ti");
        Store ("cr", load "xr" - ref_ "tr");
        Store ("ci", load "xi" - ref_ "ti");
      ] );
    ( "complex-multiply",
      600.0,
      [
        Store ("zr", (load "xr" * load "yr") - (load "xi" * load "yi"));
        Store ("zi", (load "xr" * load "yi") + (load "xi" * load "yr"));
      ] );
    ( "luminance",
      900.0,
      [
        Store ("g", (const 0.299 * load "r") + (const 0.587 * load "gg") + (const 0.114 * load "b"));
      ] );
    ( "saxpy2",
      1100.0,
      [ Store ("z", (inv "a" * load "x") + (inv "b" * load "y")) ] );
    ( "norm2",
      1300.0,
      [ Def ("s", (load "x" * load "x") + prev "s"); Store ("acc", ref_ "s") ] );
    ( "divide-scale",
      400.0,
      [ Store ("y", (load "x" / load "w") + inv "c") ] );
    ( "recurrence-d2",
      700.0,
      (* Second-order recurrence: s(i) = s(i-2) + x(i). *)
      [ Def ("s", prev ~distance:2 "s" + load "x"); Store ("sout", ref_ "s") ] );
    ( "coupled-recurrence",
      500.0,
      [
        Def ("u", prev "v" + load "x");
        Def ("v", prev "u" * inv "a");
        Store ("us", ref_ "u");
        Store ("vs", ref_ "v");
      ] );
    ( "poly-chain-8",
      650.0,
      [
        Store
          ( "y",
            (((((((load "x" * inv "a") + inv "b") * inv "c") + inv "d") * inv "e")
              + inv "f")
             * inv "g")
            + inv "h" );
      ] );
    ( "four-macs",
      750.0,
      [
        Store ("o1", (load "a1" * inv "k1") + load "b1");
        Store ("o2", (load "a2" * inv "k2") + load "b2");
        Store ("o3", (load "a3" * inv "k3") + load "b3");
        Store ("o4", (load "a4" * inv "k4") + load "b4");
      ] );
    ( "sum-8",
      850.0,
      [
        Store
          ( "y",
            ((load "x1" + load "x2") + (load "x3" + load "x4"))
            + ((load "x5" + load "x6") + (load "x7" + load "x8")) );
      ] );
    ( "shared-subexpr",
      550.0,
      [
        Def ("t", (load "a" + load "b") * inv "k");
        Store ("o1", ref_ "t" + load "c");
        Store ("o2", ref_ "t" - load "d");
        Store ("o3", ref_ "t" * load "e");
      ] );
    ( "convert-scale",
      450.0,
      [ Store ("y", Cvt (load "xi") * inv "scale") ] );
    ( "ll4-banded",
      350.0,
      (* Banded linear equations fragment. *)
      [
        Def ("t", (load "x0" * load "y0") + (load "x1" * load "y1") + (load "x2" * load "y2"));
        Store ("x", load "xlhs" - ref_ "t");
      ] );
    ( "ll10-diff",
      420.0,
      (* Difference predictors: cascading subtractions. *)
      [
        Def ("d1", load "cz" - load "b0");
        Def ("d2", ref_ "d1" - load "b1");
        Def ("d3", ref_ "d2" - load "b2");
        Def ("d4", ref_ "d3" - load "b3");
        Store ("o1", ref_ "d1");
        Store ("o2", ref_ "d2");
        Store ("o3", ref_ "d3");
        Store ("o4", ref_ "d4");
      ] );
    ( "running-average",
      600.0,
      [
        Def ("m", ((prev "m" * inv "decay") + load "x") * inv "norm");
        Store ("mo", ref_ "m");
      ] );
    ( "interp-linear",
      800.0,
      [
        Store ("y", load "lo" + (load "frac" * (load "hi" - load "lo")));
      ] );
    ( "rsqrt-newton",
      300.0,
      (* One Newton step of 1/sqrt using div as the reciprocal proxy. *)
      [
        Def ("g", load "guess");
        Def ("half_x", load "x" * const 0.5);
        Store ("out", ref_ "g" * (const 1.5 - (ref_ "half_x" * ref_ "g" * ref_ "g")));
      ] );
    ( "wave-1d",
      550.0,
      (* u_next = 2u - u_prev + c^2 (laplacian) *)
      [
        Store
          ( "unext",
            (const 2.0 * load "u")
            - load "uprev"
            + (inv "c2" * ((load "ul" - (const 2.0 * load "u")) + load "ur")) );
      ] );
    ( "ll2-iccg",
      450.0,
      (* Incomplete Cholesky / conjugate gradient excerpt. *)
      [
        Def ("q", load "x0" - (load "z0" * load "x1") - (load "z1" * load "x2"));
        Store ("xout", ref_ "q" * inv "scale");
      ] );
    ( "ll6-linear-rec",
      520.0,
      (* General linear recurrence fragment: w += b*w_prev. *)
      [
        Def ("w", load "b" * prev "w" + load "g");
        Store ("wout", ref_ "w");
      ] );
    ( "ll18-hydro2d",
      380.0,
      (* 2-D explicit hydrodynamics fragment (one of the three sweeps). *)
      [
        Def ("za", (load "zp_j" + load "zq_j") * (load "zr" - load "zr_j"));
        Def ("zb", (load "zp" + load "zq") * (load "zr" - load "zr_k"));
        Store ("zu", load "zu0" + (inv "s" * (ref_ "za" - ref_ "zb")));
      ] );
    ( "ll21-matmul-inner",
      900.0,
      (* Inner product of the matrix multiply loop. *)
      [
        Def ("px", prev "px" + (load "vy" * load "cx"));
        Store ("pxout", ref_ "px");
      ] );
    ( "ll23-implicit",
      360.0,
      (* 2-D implicit hydrodynamics fragment. *)
      [
        Def ("qa", (load "za1" * load "zr") + (load "za2" * load "zb") + (load "za3" * load "zz"));
        Def ("new", load "za0" + (inv "s" * (ref_ "qa" - load "za0")));
        Store ("zaout", ref_ "new");
      ] );
    ( "blas-rot",
      700.0,
      (* Givens rotation applied to two vectors. *)
      [
        Store ("xo", (inv "c" * load "x") + (inv "s" * load "y"));
        Store ("yo", (inv "c" * load "y") - (inv "s" * load "x"));
      ] );
    ( "blas-scal-add",
      820.0,
      [ Store ("y", inv "alpha" * (load "x" + inv "beta")) ] );
    ( "gauss-seidel-step",
      430.0,
      (* Sweep with a carried dependence on the freshly written value. *)
      [
        Def ("u", (prev "u" + load "right" + load "up" + load "down") * const 0.25);
        Store ("uo", ref_ "u");
      ] );
    ( "exp-taylor-4",
      390.0,
      (* Four-term Taylor evaluation with a shared power chain. *)
      [
        Def ("x2", load "x" * load "x");
        Def ("x3", ref_ "x2" * load "x");
        Def ("x4", ref_ "x2" * ref_ "x2");
        Store
          ( "e",
            const 1.0 + load "x"
            + (ref_ "x2" * const 0.5)
            + (ref_ "x3" * inv "c3")
            + (ref_ "x4" * inv "c4") );
      ] );
    ( "dot-unrolled-2",
      780.0,
      (* Dot product unrolled twice: two partial sums. *)
      [
        Def ("s0", prev "s0" + (load "x0" * load "y0"));
        Def ("s1", prev "s1" + (load "x1" * load "y1"));
        Store ("p0", ref_ "s0");
        Store ("p1", ref_ "s1");
      ] );
    ( "prefix-product",
      310.0,
      [ Def ("p", prev "p" * load "x"); Store ("po", ref_ "p") ] );
    ( "mixed-division-chain",
      280.0,
      (* Divisions on the multiplier pipes with long feeding chains. *)
      [
        Def ("r1", load "a" / load "b");
        Def ("r2", ref_ "r1" / load "c");
        Store ("o", ref_ "r2" + (ref_ "r1" * inv "k"));
      ] );
    ( "max-abs-proxy",
      330.0,
      (* Smooth |x| accumulation: s = s_prev + x*x / (x*x + eps). *)
      [
        Def ("xx", load "x" * load "x");
        Def ("s", prev "s" + (ref_ "xx" / (ref_ "xx" + inv "eps")));
        Store ("so", ref_ "s");
      ] );
    ( "boundary-blend",
      290.0,
      [
        Def ("w", cvt_helper (load "mask"));
        Store ("o", (ref_ "w" * load "a") + ((const 1.0 - ref_ "w") * load "b"));
      ] );
    ( "clip-saturate",
      470.0,
      (* IF-converted clamp: o = min(max(x, lo), hi). *)
      [
        Def ("lo_clamped", select (load "x" - inv "lo") (load "x") (inv "lo" + const 0.0));
        Store ("o", select (inv "hi" - ref_ "lo_clamped") (ref_ "lo_clamped") (load "cap"));
      ] );
    ( "threshold-accumulate",
      410.0,
      (* IF-converted conditional sum: s += (x > t ? x : 0). *)
      [
        Def ("s", prev "s" + select (load "x" - inv "t") (load "x") (const 0.0 * load "x"));
        Store ("so", ref_ "s");
      ] );
    ( "triad-offset",
      640.0,
      (* STREAM triad with an extra offset stream. *)
      [ Store ("a", load "b" + (inv "q" * load "c") + load "d") ] );
  ]

let all () =
  let example = (paper_example (), 1000.0) in
  example
  :: List.map (fun (name, iters, stmts) -> (Expr.compile ~name stmts, iters)) (dsl_kernels ())

let find name =
  List.find_map
    (fun (g, _) -> if String.equal (Ddg.name g) name then Some g else None)
    (all ())
