lib/workloads/kernels.mli: Ddg Ncdrf_ir
