lib/workloads/suite.ml: Ddg Float Generator Kernels List Ncdrf_ir Printf Random
