lib/workloads/generator.ml: Ddg List Ncdrf_ir Opcode Printf Random
