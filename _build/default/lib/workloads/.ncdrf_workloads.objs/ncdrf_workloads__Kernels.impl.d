lib/workloads/kernels.ml: Ddg Expr List Ncdrf_ir Opcode String
