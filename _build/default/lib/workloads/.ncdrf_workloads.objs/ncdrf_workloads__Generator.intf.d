lib/workloads/generator.mli: Ddg Ncdrf_ir
