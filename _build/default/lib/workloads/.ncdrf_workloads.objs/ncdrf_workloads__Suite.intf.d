lib/workloads/suite.mli: Ddg Ncdrf_ir
