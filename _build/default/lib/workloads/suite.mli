(** The "Perfect-Club-like" loop suite.

    The paper schedules ~795 floating-point single-basic-block inner
    loops from the Perfect Club, weighted by measured execution counts.
    This suite substitutes a deterministic collection of the same scale:
    the named kernels plus seeded generated loops, with heavy-tailed
    iteration weights (a few loops dominate execution time, as in the
    paper's Figure 7). *)

open Ncdrf_ir

type entry = {
  ddg : Ddg.t;
  iterations : float;  (** dynamic weight *)
  generated : bool;
}

(** Named kernels only (30 loops). *)
val named : unit -> entry list

(** [full ()] is the default suite: named kernels + generated loops,
    [size] total (default 795, the paper's count).  Deterministic for a
    given [seed] (default 42). *)
val full : ?size:int -> ?seed:int -> unit -> entry list

(** Total weighted execution share of the [n] heaviest loops — used in
    tests to check the weight distribution is heavy-tailed. *)
val weight_share : entry list -> n:int -> float
