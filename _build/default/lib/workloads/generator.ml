open Ncdrf_ir

type params = {
  min_ops : int;
  max_ops : int;
  mem_fraction : float;
  store_fraction : float;
  div_fraction : float;
  invariant_operand_prob : float;
  recurrence_prob : float;
  max_distance : int;
  store_sink_prob : float;
}

let default =
  {
    min_ops = 5;
    max_ops = 24;
    mem_fraction = 0.38;
    store_fraction = 0.3;
    div_fraction = 0.06;
    invariant_operand_prob = 0.3;
    recurrence_prob = 0.12;
    max_distance = 2;
    store_sink_prob = 0.7;
  }

let heavy =
  {
    default with
    min_ops = 16;
    max_ops = 48;
    mem_fraction = 0.34;
    recurrence_prob = 0.2;
  }

(* Pick a random value id, biased towards recent definitions so graphs
   get chain-like depth rather than all hanging off the first load. *)
let pick_value rng values =
  match values with
  | [] -> None
  | _ ->
    let n = List.length values in
    let idx =
      if Random.State.bool rng then Random.State.int rng n
      else Random.State.int rng (max 1 (n / 2))
    in
    Some (List.nth values idx)

let generate params ~seed ~name =
  if params.min_ops < 2 || params.max_ops < params.min_ops then
    invalid_arg "Generator.generate: bad op bounds";
  let rng = Random.State.make [| seed; 0x9e3779b9 |] in
  let b = Ddg.Builder.create ~name in
  let flow ?(distance = 0) src dst = Ddg.Builder.add_edge b ~src ~dst ~distance Ddg.Flow in
  let n_ops = params.min_ops + Random.State.int rng (params.max_ops - params.min_ops + 1) in
  (* values: most recent first *)
  let values = ref [] in
  let deferred = ref [] in
  let arith_nodes = ref [] in
  let seq = ref 0 in
  let fresh_label prefix =
    incr seq;
    Printf.sprintf "%s%d" prefix !seq
  in
  let add_load () =
    let array = Printf.sprintf "a%d" (Random.State.int rng 1000) in
    let id = Ddg.Builder.add_node b (Opcode.Load (Opcode.Array array)) ~label:(fresh_label "L") in
    values := id :: !values
  in
  let add_store () =
    match pick_value rng !values with
    | None -> add_load ()
    | Some v ->
      let array = Printf.sprintf "o%d" (Random.State.int rng 1000) in
      let id =
        Ddg.Builder.add_node b (Opcode.Store (Opcode.Array array)) ~label:(fresh_label "S")
      in
      flow v id
  in
  let add_arith () =
    let mul_class = Random.State.float rng 1.0 < 0.45 in
    let opcode =
      if mul_class then
        if Random.State.float rng 1.0 < params.div_fraction then Opcode.Fdiv else Opcode.Fmul
      else if Random.State.float rng 1.0 < 0.05 then Opcode.Fcvt
      else if Random.State.bool rng then Opcode.Fadd
      else Opcode.Fsub
    in
    let label_prefix =
      match opcode with
      | Opcode.Fmul | Opcode.Fdiv -> "M"
      | Opcode.Fcvt -> "C"
      | _ -> "A"
    in
    let id = Ddg.Builder.add_node b opcode ~label:(fresh_label label_prefix) in
    let n_operands = match opcode with Opcode.Fcvt -> 1 | _ -> 2 in
    let wire_operand ~may_defer =
      if may_defer && Random.State.float rng 1.0 < params.recurrence_prob then
        deferred := id :: !deferred
      else if
        Random.State.float rng 1.0 < params.invariant_operand_prob || !values = []
      then () (* invariant operand: no dependence *)
      else
        match pick_value rng !values with
        | Some v -> flow v id
        | None -> ()
    in
    (* First operand prefers a value so that ops chain. *)
    (match pick_value rng !values with
     | Some v when Random.State.float rng 1.0 > params.invariant_operand_prob /. 2.0 ->
       flow v id
     | Some _ | None -> wire_operand ~may_defer:false);
    for _ = 2 to n_operands do
      wire_operand ~may_defer:true
    done;
    values := id :: !values;
    arith_nodes := id :: !arith_nodes
  in
  (* A loop body starts with at least one load. *)
  add_load ();
  for _ = 2 to n_ops do
    if Random.State.float rng 1.0 < params.mem_fraction then begin
      if Random.State.float rng 1.0 < params.store_fraction then add_store () else add_load ()
    end
    else add_arith ()
  done;
  (* Resolve deferred recurrence operands: consumer [c] reads a value
     produced [d] iterations earlier.  Prefer a producer reachable from
     [c] through distance-0 edges, which closes a genuine cycle. *)
  let resolve c =
    let descendants =
      (* Distance-0 DFS from c over edges recorded so far is not directly
         available from the builder; approximate with ids >= c, which in
         construction order are exactly the candidates that can be
         downstream of c. *)
      List.filter (fun v -> v >= c) !values
    in
    let pool = if descendants <> [] then descendants else !values in
    match pick_value rng pool with
    | None -> ()
    | Some producer ->
      let distance = 1 + Random.State.int rng params.max_distance in
      flow ~distance producer c
  in
  List.iter resolve !deferred;
  (* Give some sink values a store so results are observable. *)
  let graph_so_far = Ddg.Builder.freeze b in
  let has_consumer v = Ddg.succs graph_so_far v <> [] in
  let sink_values = List.filter (fun v -> not (has_consumer v)) !values in
  let store_sink v =
    if Random.State.float rng 1.0 < params.store_sink_prob then begin
      let array = Printf.sprintf "sink%d" v in
      let id =
        Ddg.Builder.add_node b (Opcode.Store (Opcode.Array array)) ~label:(fresh_label "S")
      in
      flow v id
    end
  in
  List.iter store_sink sink_values;
  let graph = Ddg.Builder.freeze b in
  match Ddg.validate graph with
  | Ok () -> graph
  | Error msg ->
    (* Cannot happen: distances on back edges are >= 1, so no
       zero-distance cycle can form. *)
    invalid_arg (Printf.sprintf "Generator.generate: %s" msg)
