(** Hand-written floating-point loop kernels.

    {!paper_example} is the worked example of the paper's Section 4.1
    (Figure 2): [z(i) = (x(i)*r + y(i))*t + x(i)], built node by node so
    the labels match the paper (L1, L2, M3, A4, M5, A6, S7).

    {!all} are Livermore-/BLAS-style kernels written in the loop DSL;
    together with the generated loops they stand in for the Perfect Club
    inner loops (see DESIGN.md).  Each kernel carries a nominal
    iteration count used as its dynamic weight. *)

open Ncdrf_ir

val paper_example : unit -> Ddg.t

(** [(graph, iterations)] for every named kernel, paper example
    included. *)
val all : unit -> (Ddg.t * float) list

(** Look a kernel up by its graph name. *)
val find : string -> Ddg.t option
