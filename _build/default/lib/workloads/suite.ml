open Ncdrf_ir

type entry = {
  ddg : Ddg.t;
  iterations : float;
  generated : bool;
}

let named () =
  List.map (fun (ddg, iterations) -> { ddg; iterations; generated = false }) (Kernels.all ())

(* Log-normal-ish weight: a few loops dominate, as in the paper where
   the high-pressure loops carry 30-50% of the cycles. *)
let weight_of rng =
  let u1 = Random.State.float rng 1.0 +. 1e-9 in
  let u2 = Random.State.float rng 1.0 in
  let gaussian = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  Float.round (exp (4.0 +. (1.6 *. gaussian)) +. 1.0)

let full ?(size = 795) ?(seed = 42) () =
  let base = named () in
  let n_generated = max 0 (size - List.length base) in
  let rng = Random.State.make [| seed; 0x5eed |] in
  let one i =
    (* A slice of the suite uses the heavier parameter set: bigger
       loops with more recurrences. *)
    let params = if i mod 5 = 0 then Generator.heavy else Generator.default in
    let name = Printf.sprintf "gen-%04d" i in
    let ddg = Generator.generate params ~seed:(seed + (7919 * i)) ~name in
    { ddg; iterations = weight_of rng; generated = true }
  in
  base @ List.init n_generated one

let weight_share entries ~n =
  let weights =
    List.sort (fun a b -> compare b a) (List.map (fun e -> e.iterations) entries)
  in
  let total = List.fold_left ( +. ) 0.0 weights in
  let rec take k acc = function
    | [] -> acc
    | _ when k = 0 -> acc
    | w :: rest -> take (k - 1) (acc +. w) rest
  in
  if total = 0.0 then 0.0 else take n 0.0 weights /. total
