(** Seeded random loop generator.

    Generates dependence graphs with realistic shape for floating-point
    inner loops: a mix of loads, stores and FP arithmetic, bounded
    fan-in DAG structure, optional loop-carried recurrences wired
    through deferred operand slots so that cycles are genuine (the
    recurrence consumer is an ancestor of the producer whenever
    possible).  Deterministic for a given seed. *)

open Ncdrf_ir

type params = {
  min_ops : int;
  max_ops : int;  (** inclusive *)
  mem_fraction : float;  (** target fraction of memory operations *)
  store_fraction : float;  (** fraction of memory ops that are stores *)
  div_fraction : float;  (** fraction of multiplier-class ops that divide *)
  invariant_operand_prob : float;
      (** chance an operand is a loop invariant instead of a value *)
  recurrence_prob : float;  (** chance an arith op closes a recurrence *)
  max_distance : int;  (** max iteration distance of recurrences *)
  store_sink_prob : float;  (** chance a dead value gets a store *)
}

val default : params

(** Mildly bigger/more recurrent loops — the heavy tail of the suite. *)
val heavy : params

(** [generate params ~seed ~name] is deterministic in [(params, seed)].
    The result always passes [Ddg.validate]. *)
val generate : params -> seed:int -> name:string -> Ddg.t
