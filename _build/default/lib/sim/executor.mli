(** Pipelined executor: runs a modulo schedule cycle by cycle on a
    machine state with real register files.

    Instance [k] of operation [v] issues at [cycle v + k * II], reads
    its register operands at issue, and writes its result at
    issue + latency into physical register [(reg v + k) mod capacity]
    of a rotating register file — a unified file ({!run_unified}) or the
    two subfiles of a non-consistent dual file ({!run_dual}: global
    values are written to both subfiles, local values only to their
    cluster's; every consumer reads its own cluster's subfile).

    Every register read checks that the register still holds the exact
    value instance the dependence graph calls for; a clobbered read
    raises {!Corrupted}.  This catches scheduling bugs (operand not
    ready), allocation bugs (overlapping lifetimes sharing a register)
    and classification bugs (a consumer's subfile never written).

    The final array stores must equal the {!Reference} interpreter's
    output exactly. *)

open Ncdrf_sched

exception Corrupted of string

type outcome = {
  stores : Reference.store_event list;  (** sorted like {!Reference.run} *)
  cycles : int;  (** last completion cycle + 1 *)
  register_reads : int;  (** reads that were tag-checked *)
  capacity : int;  (** registers per (sub)file used *)
}

(** Execute on a single rotating register file allocated at its minimal
    capacity. *)
val run_unified : iterations:int -> Schedule.t -> outcome

(** Execute on a non-consistent dual register file using the joint
    global/local allocation of [Ncdrf_core.Requirements].

    @raise Invalid_argument if the schedule's machine has fewer than 2
    clusters. *)
val run_dual : iterations:int -> Schedule.t -> outcome
