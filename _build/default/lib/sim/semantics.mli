(** Shared operation semantics for the execution simulator.

    Both the sequential reference interpreter and the pipelined executor
    evaluate loops over the same deterministic input model, so their
    outputs must agree bit for bit.  The semantics are synthetic but
    total and deterministic:

    - array loads produce a pseudo-random stream value derived from the
      array name and the iteration index;
    - loop-invariant operands (not represented by graph nodes) fold in a
      per-node constant;
    - divisions are made safe by biasing the divisor away from zero in
      the same way on both sides;
    - values flowing from iterations before the first (recurrence
      live-ins) come from {!live_in}. *)

open Ncdrf_ir

(** Deterministic stream input [array(i)], uniform in [[-1, 1)]. *)
val array_input : array_name:string -> iteration:int -> float

(** Per-node loop-invariant mix-in constant. *)
val invariant : loop:string -> node_id:int -> float

(** Initial value of a recurrence read from before iteration 0:
    [iteration] is negative. *)
val live_in : loop:string -> node_id:int -> iteration:int -> float

(** Evaluate an arithmetic opcode on its operand values (flow
    predecessors in canonical order).  Missing operands (loop-invariant
    inputs) are padded with {!invariant}.

    @raise Invalid_argument on loads/stores — they are handled by the
    interpreters, not here. *)
val apply : loop:string -> node_id:int -> Opcode.t -> float list -> float

(** Canonical operand order for a node's incoming flow edges: by source
    id, then distance.  Both interpreters must use this order so
    non-commutative operations agree. *)
val operand_edges : Ddg.t -> int -> Ddg.edge list
