open Ncdrf_ir

type store_event = {
  array : string;
  iteration : int;
  value : float;
}

let equal_event a b =
  String.equal a.array b.array
  && a.iteration = b.iteration
  && Int64.equal (Int64.bits_of_float a.value) (Int64.bits_of_float b.value)

let equal_stores xs ys =
  List.length xs = List.length ys && List.for_all2 equal_event xs ys

(* Value of the spill store feeding a spill load of this slot. *)
let spill_store_of ddg slot =
  let found =
    Ddg.fold_nodes ddg ~init:None ~f:(fun acc n ->
        match n.Ddg.opcode with
        | Opcode.Store (Opcode.Spill s) when s = slot -> Some n
        | _ -> acc)
  in
  match found with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Reference.run: spill slot %d has no store" slot)

let run ~iterations ddg =
  let loop = Ddg.name ddg in
  let memo : (int * int, float) Hashtbl.t = Hashtbl.create 256 in
  let rec value v k =
    if k < 0 then Semantics.live_in ~loop ~node_id:v ~iteration:k
    else
      match Hashtbl.find_opt memo (v, k) with
      | Some x -> x
      | None ->
        let node = Ddg.node ddg v in
        let operands () =
          List.map (fun e -> value e.Ddg.src (k - e.Ddg.distance)) (Semantics.operand_edges ddg v)
        in
        let x =
          match node.Ddg.opcode with
          | Opcode.Load (Opcode.Array a) -> Semantics.array_input ~array_name:a ~iteration:k
          | Opcode.Load (Opcode.Spill slot) ->
            (* The load of iteration k reads what the slot's store wrote
               [d] iterations earlier (the memory-ordering edge's
               distance). *)
            let store = spill_store_of ddg slot in
            let d =
              match
                List.find_opt
                  (fun e -> e.Ddg.kind = Ddg.Mem && e.Ddg.src = store.Ddg.id)
                  (Ddg.preds ddg v)
              with
              | Some e -> e.Ddg.distance
              | None -> 0
            in
            if k - d < 0 then Semantics.live_in ~loop ~node_id:v ~iteration:(k - d)
            else value store.Ddg.id (k - d)
          | Opcode.Store _ ->
            (match operands () with
             | [ x ] -> x
             | [] -> Semantics.invariant ~loop ~node_id:v
             | x :: _ -> x)
          | Opcode.Fadd | Opcode.Fsub | Opcode.Fmul | Opcode.Fdiv | Opcode.Fcvt | Opcode.Fselect
            ->
            Semantics.apply ~loop ~node_id:v node.Ddg.opcode (operands ())
        in
        Hashtbl.replace memo (v, k) x;
        x
  in
  let events = ref [] in
  for k = 0 to iterations - 1 do
    Ddg.iter_nodes ddg ~f:(fun n ->
        match n.Ddg.opcode with
        | Opcode.Store (Opcode.Array a) ->
          events := { array = a; iteration = k; value = value n.Ddg.id k } :: !events
        | _ -> ())
  done;
  List.sort compare !events
