open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_regalloc
open Ncdrf_sched
open Ncdrf_core

exception Corrupted of string

type outcome = {
  stores : Reference.store_event list;
  cycles : int;
  register_reads : int;
  capacity : int;
}

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupted s)) fmt

(* One rotating register file: value slots with provenance tags. *)
type file = {
  values : float array;
  tags : (int * int) option array;  (* (node, iteration) currently held *)
}

let make_file capacity =
  { values = Array.make (max capacity 1) 0.0; tags = Array.make (max capacity 1) None }

(* Where a value lives and in which subfiles, per the model. *)
type placement_info = {
  register : int;
  subfiles : int list;  (* indices of the files holding the value *)
}

type machine = {
  files : file array;
  capacity : int;
  placements : placement_info option array;  (* per node; None for stores *)
  read_file_of_cluster : int -> int;  (* consumer cluster -> file index *)
}

let physical machine ~register ~iteration =
  (((register + iteration) mod machine.capacity) + machine.capacity) mod machine.capacity

let write_value machine v ~iteration value =
  match machine.placements.(v) with
  | None -> ()
  | Some p ->
    let idx = physical machine ~register:p.register ~iteration in
    List.iter
      (fun f ->
        machine.files.(f).values.(idx) <- value;
        machine.files.(f).tags.(idx) <- Some (v, iteration))
      p.subfiles

let read_value machine ~consumer_cluster v ~iteration =
  match machine.placements.(v) with
  | None -> corrupt "read of a value-less node %d" v
  | Some p ->
    let file = machine.files.(machine.read_file_of_cluster consumer_cluster) in
    let idx = physical machine ~register:p.register ~iteration in
    (match file.tags.(idx) with
     | Some (v', k') when v' = v && k' = iteration -> file.values.(idx)
     | Some (v', k') ->
       corrupt "register clobbered: wanted value of node %d iter %d, found node %d iter %d"
         v iteration v' k'
     | None -> corrupt "register read before write: node %d iter %d" v iteration)

(* Build a machine for a unified rotating file. *)
let unified_machine sched =
  let ddg = sched.Schedule.ddg in
  let ii = Schedule.ii sched in
  let lifetimes = Lifetime.of_schedule sched in
  let capacity = Alloc.min_capacity ~ii lifetimes in
  let placements = Array.make (Ddg.num_nodes ddg) None in
  (match Alloc.allocate ~ii ~capacity lifetimes with
   | Some placed ->
     List.iter
       (fun p ->
         placements.(p.Alloc.value.Lifetime.producer) <-
           Some { register = p.Alloc.register; subfiles = [ 0 ] })
       placed
   | None -> if lifetimes <> [] then corrupt "unified allocation failed");
  {
    files = [| make_file capacity |];
    capacity;
    placements;
    read_file_of_cluster = (fun _ -> 0);
  }

(* Build a machine for the non-consistent dual register file. *)
let dual_machine sched =
  let ddg = sched.Schedule.ddg in
  let n_clusters = Config.num_clusters sched.Schedule.config in
  if n_clusters < 2 then invalid_arg "Executor.run_dual: machine has a single cluster";
  let alloc = Requirements.partitioned_allocation sched in
  let capacity = alloc.Requirements.capacity in
  let placements = Array.make (Ddg.num_nodes ddg) None in
  let all_files = List.init n_clusters (fun i -> i) in
  List.iter
    (fun p ->
      placements.(p.Alloc.value.Lifetime.producer) <-
        Some { register = p.Alloc.register; subfiles = all_files })
    alloc.Requirements.globals;
  Array.iteri
    (fun cluster placed ->
      List.iter
        (fun p ->
          placements.(p.Alloc.value.Lifetime.producer) <-
            Some { register = p.Alloc.register; subfiles = [ cluster ] })
        placed)
    alloc.Requirements.locals;
  {
    files = Array.init n_clusters (fun _ -> make_file capacity);
    capacity;
    placements;
    read_file_of_cluster = (fun c -> c);
  }

(* The spill store feeding loads of a slot, and the store->load
   iteration distance for a given load. *)
let spill_source ddg load_id =
  match
    List.find_opt (fun e -> e.Ddg.kind = Ddg.Mem) (Ddg.preds ddg load_id)
  with
  | Some e -> (e.Ddg.src, e.Ddg.distance)
  | None -> corrupt "spill load %d has no memory source" load_id

let run_on machine sched ~iterations =
  let ddg = sched.Schedule.ddg in
  let cfg = sched.Schedule.config in
  let sched = Schedule.normalize sched in
  let ii = Schedule.ii sched in
  let loop = Ddg.name ddg in
  let n = Ddg.num_nodes ddg in
  let reads = ref 0 in
  let stores = ref [] in
  let spill_buffer : (int * int, float) Hashtbl.t = Hashtbl.create 32 in
  (* Values computed at issue, written back at finish. *)
  let in_flight : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  (* Event lists per cycle. *)
  let last_cycle = ref 0 in
  let issues : (int, (int * int) list) Hashtbl.t = Hashtbl.create 256 in
  let finishes : (int, (int * int) list) Hashtbl.t = Hashtbl.create 256 in
  let push tbl t ev = Hashtbl.replace tbl t (ev :: (Option.value ~default:[] (Hashtbl.find_opt tbl t))) in
  for k = 0 to iterations - 1 do
    Ddg.iter_nodes ddg ~f:(fun node ->
        let v = node.Ddg.id in
        let t_issue = Schedule.cycle sched v + (k * ii) in
        let t_finish = t_issue + Config.latency cfg node.Ddg.opcode in
        push issues t_issue (v, k);
        if Opcode.produces_value node.Ddg.opcode then push finishes t_finish (v, k);
        if t_finish > !last_cycle then last_cycle := t_finish)
  done;
  let operand_values v k =
    let cluster = Schedule.cluster sched v in
    List.map
      (fun e ->
        let src_iter = k - e.Ddg.distance in
        if src_iter < 0 then Semantics.live_in ~loop ~node_id:e.Ddg.src ~iteration:src_iter
        else begin
          incr reads;
          read_value machine ~consumer_cluster:cluster e.Ddg.src ~iteration:src_iter
        end)
      (Semantics.operand_edges ddg v)
  in
  let issue (v, k) =
    let node = Ddg.node ddg v in
    match node.Ddg.opcode with
    | Opcode.Load (Opcode.Array a) ->
      Hashtbl.replace in_flight (v, k) (Semantics.array_input ~array_name:a ~iteration:k)
    | Opcode.Load (Opcode.Spill slot) ->
      let _store, d = spill_source ddg v in
      let x =
        if k - d < 0 then Semantics.live_in ~loop ~node_id:v ~iteration:(k - d)
        else
          match Hashtbl.find_opt spill_buffer (slot, k - d) with
          | Some x -> x
          | None -> corrupt "spill slot %d read before write (iteration %d)" slot (k - d)
      in
      Hashtbl.replace in_flight (v, k) x
    | Opcode.Store location ->
      let value =
        match operand_values v k with
        | [ x ] -> x
        | [] -> Semantics.invariant ~loop ~node_id:v
        | x :: _ -> x
      in
      (match location with
       | Opcode.Array a ->
         stores := { Reference.array = a; iteration = k; value } :: !stores
       | Opcode.Spill slot -> Hashtbl.replace spill_buffer (slot, k) value)
    | Opcode.Fadd | Opcode.Fsub | Opcode.Fmul | Opcode.Fdiv | Opcode.Fcvt | Opcode.Fselect ->
      let x = Semantics.apply ~loop ~node_id:v node.Ddg.opcode (operand_values v k) in
      Hashtbl.replace in_flight (v, k) x
  in
  let finish (v, k) =
    match Hashtbl.find_opt in_flight (v, k) with
    | Some x ->
      Hashtbl.remove in_flight (v, k);
      write_value machine v ~iteration:k x
    | None -> corrupt "completion of an operation that never issued: node %d iter %d" v k
  in
  for t = 0 to !last_cycle do
    (* Results land before same-cycle issues read them. *)
    List.iter finish (Option.value ~default:[] (Hashtbl.find_opt finishes t));
    List.iter issue (Option.value ~default:[] (Hashtbl.find_opt issues t))
  done;
  ignore n;
  {
    stores = List.sort compare !stores;
    cycles = !last_cycle + 1;
    register_reads = !reads;
    capacity = machine.capacity;
  }

let run_unified ~iterations sched =
  run_on (unified_machine sched) sched ~iterations

let run_dual ~iterations sched = run_on (dual_machine sched) sched ~iterations
