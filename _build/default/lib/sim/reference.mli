(** Sequential reference interpreter.

    Executes the loop body iteration by iteration, directly on the
    dependence graph, with the shared {!Semantics}.  The pipelined
    {!Executor} must produce exactly the same stored values — this is
    the oracle that validates scheduling, register allocation and the
    dual-file write/read policies end to end. *)

open Ncdrf_ir

type store_event = {
  array : string;  (** destination array name *)
  iteration : int;
  value : float;
}

(** [run ~iterations ddg] interprets iterations [0 .. iterations-1] and
    returns every array store, sorted by (array, iteration).  Spill
    loads and stores are interpreted through their spill slots and do
    not appear in the result. *)
val run : iterations:int -> Ddg.t -> store_event list

(** Store-list equality with {e bitwise} float comparison: the executor
    performs the same operations in the same order as the reference, so
    results must be identical to the last bit — including NaNs, which
    synthetic recurrences can legitimately overflow into and which
    structural equality would spuriously reject. *)
val equal_stores : store_event list -> store_event list -> bool
