open Ncdrf_ir

(* splitmix64-style mixer over a string seed and an integer. *)
let mix_string s =
  let h = ref 0x9e3779b97f4a7c15L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0xff51afd7ed558ccdL)
    s;
  !h

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform float in [-1, 1) from two seeds. *)
let uniform seed k =
  let bits = mix64 (Int64.add seed (Int64.mul (Int64.of_int k) 0x9e3779b97f4a7c15L)) in
  let mantissa = Int64.to_float (Int64.shift_right_logical bits 11) in
  (mantissa /. 4503599627370496.0 *. 2.0) -. 1.0

let array_input ~array_name ~iteration = uniform (mix_string ("arr:" ^ array_name)) iteration
let invariant ~loop ~node_id = uniform (mix_string ("inv:" ^ loop)) node_id

let live_in ~loop ~node_id ~iteration =
  uniform (mix_string ("live:" ^ loop)) ((node_id * 8191) + iteration)

let apply ~loop ~node_id op operands =
  let pad2 =
    match operands with
    | [ a; b ] -> (a, b)
    | [ a ] -> (a, invariant ~loop ~node_id)
    | [] ->
      let c = invariant ~loop ~node_id in
      (c, uniform (mix_string ("inv2:" ^ loop)) node_id)
    | a :: b :: _ -> (a, b)
  in
  match op with
  | Opcode.Fadd ->
    let a, b = pad2 in
    a +. b
  | Opcode.Fsub ->
    let a, b = pad2 in
    a -. b
  | Opcode.Fmul ->
    let a, b = pad2 in
    a *. b
  | Opcode.Fdiv ->
    let a, b = pad2 in
    (* Keep the divisor away from zero, identically on both sides. *)
    a /. (Float.abs b +. 1.0)
  | Opcode.Fcvt ->
    let a = match operands with x :: _ -> x | [] -> invariant ~loop ~node_id in
    (a *. 0.5) +. 0.25
  | Opcode.Fselect ->
    (* Operands come in canonical (source id, distance) order; the first
       acts as the predicate.  Both interpreters share this convention,
       which is all determinism needs. *)
    (match operands with
     | p :: a :: b :: _ -> if p >= 0.0 then a else b
     | [ p; a ] -> if p >= 0.0 then a else invariant ~loop ~node_id
     | [ p ] -> if p >= 0.0 then invariant ~loop ~node_id else 0.0
     | [] -> invariant ~loop ~node_id)
  | Opcode.Load _ | Opcode.Store _ ->
    invalid_arg "Semantics.apply: memory operations are interpreted, not computed"

let operand_edges ddg v =
  List.sort
    (fun a b -> compare (a.Ddg.src, a.Ddg.distance) (b.Ddg.src, b.Ddg.distance))
    (List.filter (fun e -> e.Ddg.kind = Ddg.Flow) (Ddg.preds ddg v))
