lib/sim/executor.mli: Ncdrf_sched Reference Schedule
