lib/sim/reference.mli: Ddg Ncdrf_ir
