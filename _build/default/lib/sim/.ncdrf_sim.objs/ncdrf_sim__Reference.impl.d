lib/sim/reference.ml: Ddg Hashtbl Int64 List Ncdrf_ir Opcode Printf Semantics String
