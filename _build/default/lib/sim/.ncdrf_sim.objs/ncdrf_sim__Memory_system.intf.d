lib/sim/memory_system.mli: Ncdrf_sched Schedule
