lib/sim/memory_system.ml: Array Ddg Hashtbl List Ncdrf_ir Ncdrf_sched Opcode Printf Schedule
