lib/sim/executor.ml: Alloc Array Config Ddg Hashtbl Lifetime List Ncdrf_core Ncdrf_ir Ncdrf_machine Ncdrf_regalloc Ncdrf_sched Opcode Option Printf Reference Requirements Schedule Semantics
