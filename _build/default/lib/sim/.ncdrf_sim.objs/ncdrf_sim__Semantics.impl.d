lib/sim/semantics.ml: Char Ddg Float Int64 List Ncdrf_ir Opcode String
