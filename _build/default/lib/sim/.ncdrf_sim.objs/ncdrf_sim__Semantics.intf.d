lib/sim/semantics.mli: Ddg Ncdrf_ir Opcode
