(** Banked memory-system model.

    The paper abstracts the memory subsystem away (decoupled
    architecture, perfect cache) but argues that a higher {e density of
    memory traffic} "will degrade performance of the memory system"
    (Section 5.4).  This module closes that loop: it replays a
    schedule's steady-state memory access pattern against an interleaved
    banked memory behind a decoupling queue and measures the resulting
    slowdown, so Figure 9's density numbers can be translated into
    cycles.

    Model: each access occupies its bank for [service_time] cycles;
    sequential array streams walk the banks (bank = hash(array) +
    iteration mod banks).  The access processor tolerates up to
    [tolerance] cycles of queueing per access (the decoupling buffer);
    beyond that the whole pipeline slips, delaying every subsequent
    access — the slip accumulated over the run is the slowdown. *)

open Ncdrf_sched

type config = {
  banks : int;  (** interleaved memory banks *)
  service_time : int;  (** cycles one access occupies its bank *)
  tolerance : int;  (** queueing the decoupling buffer absorbs, cycles *)
}

val default_config : config

type result = {
  base_cycles : int;  (** cycles the schedule alone needs *)
  effective_cycles : int;  (** with memory back-pressure *)
  slowdown : float;  (** effective / base, >= 1 *)
  accesses : int;
  delayed : int;  (** accesses that waited for their bank *)
  pipeline_slips : int;  (** accesses that overflowed the tolerance *)
}

(** Replay [iterations] steady-state iterations of the schedule's loads
    and stores. *)
val simulate : ?config:config -> iterations:int -> Schedule.t -> result
