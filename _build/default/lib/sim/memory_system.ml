open Ncdrf_ir
open Ncdrf_sched

type config = {
  banks : int;
  service_time : int;
  tolerance : int;
}

let default_config = { banks = 8; service_time = 2; tolerance = 4 }

type result = {
  base_cycles : int;
  effective_cycles : int;
  slowdown : float;
  accesses : int;
  delayed : int;
  pipeline_slips : int;
}

(* Deterministic bank base for a location; streams then walk the banks
   with the iteration number (stride-1 interleaving). *)
let bank_base location =
  let hash s = Hashtbl.hash s land 0xffff in
  match location with
  | Opcode.Array a -> hash ("arr:" ^ a)
  | Opcode.Spill k -> hash (Printf.sprintf "spill:%d" k)

let simulate ?(config = default_config) ~iterations sched =
  if iterations < 1 then invalid_arg "Memory_system.simulate: iterations must be >= 1";
  let sched = Schedule.normalize sched in
  let ddg = sched.Schedule.ddg in
  let ii = Schedule.ii sched in
  (* Memory accesses of one iteration: (issue cycle, bank base). *)
  let pattern =
    Ddg.fold_nodes ddg ~init:[] ~f:(fun acc node ->
        match node.Ddg.opcode with
        | Opcode.Load location | Opcode.Store location ->
          (Schedule.cycle sched node.Ddg.id, bank_base location) :: acc
        | Opcode.Fadd | Opcode.Fsub | Opcode.Fmul | Opcode.Fdiv | Opcode.Fcvt | Opcode.Fselect ->
          acc)
    |> List.sort compare
  in
  let base_cycles = (iterations - 1) * ii + Schedule.stages sched * ii in
  match pattern with
  | [] ->
    {
      base_cycles;
      effective_cycles = base_cycles;
      slowdown = 1.0;
      accesses = 0;
      delayed = 0;
      pipeline_slips = 0;
    }
  | _ ->
    let bank_free = Array.make config.banks 0 in
    let offset = ref 0 in
    let delayed = ref 0 in
    let slips = ref 0 in
    let accesses = ref 0 in
    let last_completion = ref 0 in
    for k = 0 to iterations - 1 do
      List.iter
        (fun (cycle, base) ->
          incr accesses;
          let bank = (base + k) mod config.banks in
          let issue = cycle + (k * ii) + !offset in
          let start = max issue bank_free.(bank) in
          if start > issue then incr delayed;
          let wait = start - issue in
          if wait > config.tolerance then begin
            (* The decoupling queue is full: the pipeline slips. *)
            incr slips;
            offset := !offset + (wait - config.tolerance)
          end;
          bank_free.(bank) <- start + config.service_time;
          if start + config.service_time > !last_completion then
            last_completion := start + config.service_time)
        pattern
    done;
    let effective_cycles = max base_cycles !last_completion in
    {
      base_cycles;
      effective_cycles;
      slowdown = float_of_int effective_cycles /. float_of_int (max 1 base_cycles);
      accesses = !accesses;
      delayed = !delayed;
      pipeline_slips = !slips;
    }
