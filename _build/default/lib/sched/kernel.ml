open Ncdrf_ir
open Ncdrf_machine

type slot = {
  node : Ddg.node;
  stage : int;
  cluster : int;
}

type t = {
  ii : int;
  rows : slot list array;
}

let extract sched =
  let sched = Schedule.normalize sched in
  let ii = Schedule.ii sched in
  let rows = Array.make ii [] in
  let add node =
    let c = Schedule.cycle sched node.Ddg.id in
    let slot = { node; stage = c / ii; cluster = Schedule.cluster sched node.Ddg.id } in
    rows.(c mod ii) <- slot :: rows.(c mod ii)
  in
  Ddg.iter_nodes sched.Schedule.ddg ~f:add;
  let order a b = compare (a.cluster, a.node.Ddg.id) (b.cluster, b.node.Ddg.id) in
  Array.iteri (fun i slots -> rows.(i) <- List.sort order slots) rows;
  { ii; rows }

(* One column per functional unit: cluster 0's adders, multipliers,
   load/store units, then cluster 1's, ... *)
let unit_columns cfg =
  let cols = ref [] in
  let n_clusters = Config.num_clusters cfg in
  for cl = n_clusters - 1 downto 0 do
    let c = cfg.Config.clusters.(cl) in
    let add_class count cls =
      for i = count - 1 downto 0 do
        cols := (cl, cls, i) :: !cols
      done
    in
    (* Build in reverse so the final list reads adders, muls, ls. *)
    add_class c.Config.ls_units Opcode.Memory;
    add_class c.Config.multipliers Opcode.Multiplier;
    add_class c.Config.adders Opcode.Adder
  done;
  Array.of_list !cols

let render sched =
  let cfg = sched.Schedule.config in
  let kernel = extract sched in
  let cols = unit_columns cfg in
  let n_cols = Array.length cols in
  let width = 10 in
  let cell_text = function
    | None -> "nop"
    | Some slot -> Printf.sprintf "[%d] %s" slot.stage slot.node.Ddg.label
  in
  let buf = Buffer.create 512 in
  let pad s = Printf.sprintf " %-*s" (width - 1) s in
  (* Header: cluster banners then unit names. *)
  let add_sep () =
    for i = 0 to n_cols - 1 do
      let cl, _, _ = cols.(i) in
      let prev_cl = if i = 0 then cl else (fun (c, _, _) -> c) cols.(i - 1) in
      if i > 0 && cl <> prev_cl then Buffer.add_string buf "++";
      Buffer.add_string buf (String.make width '-')
    done;
    Buffer.add_char buf '\n'
  in
  let unit_name = function
    | Opcode.Adder -> "add"
    | Opcode.Multiplier -> "mul"
    | Opcode.Memory -> "ld/st"
  in
  add_sep ();
  for i = 0 to n_cols - 1 do
    let cl, cls, idx = cols.(i) in
    if i > 0 then begin
      let prev_cl, _, _ = cols.(i - 1) in
      if cl <> prev_cl then Buffer.add_string buf "||"
    end;
    Buffer.add_string buf (pad (Printf.sprintf "c%d %s%d" cl (unit_name cls) idx))
  done;
  Buffer.add_char buf '\n';
  add_sep ();
  (* Rows: distribute each row's slots over the unit columns. *)
  let place_row slots =
    let cells = Array.make n_cols None in
    let next_free cl cls =
      let rec find i =
        if i >= n_cols then None
        else begin
          let ccl, ccls, _ = cols.(i) in
          if ccl = cl && ccls = cls && cells.(i) = None then Some i else find (i + 1)
        end
      in
      find 0
    in
    let put slot =
      match next_free slot.cluster (Opcode.fu_class slot.node.Ddg.opcode) with
      | Some i -> cells.(i) <- Some slot
      | None -> () (* cannot happen on a valid schedule *)
    in
    List.iter put slots;
    cells
  in
  Array.iter
    (fun slots ->
      let cells = place_row slots in
      for i = 0 to n_cols - 1 do
        if i > 0 then begin
          let prev_cl, _, _ = cols.(i - 1) in
          let cl, _, _ = cols.(i) in
          if cl <> prev_cl then Buffer.add_string buf "||"
        end;
        Buffer.add_string buf (pad (cell_text cells.(i)))
      done;
      Buffer.add_char buf '\n')
    kernel.rows;
  add_sep ();
  Buffer.contents buf

let render_schedule_table sched =
  let sched = Schedule.normalize sched in
  let ddg = sched.Schedule.ddg in
  let ii = Schedule.ii sched in
  let buf = Buffer.create 512 in
  let stages = Schedule.stages sched in
  Buffer.add_string buf (Printf.sprintf "modulo schedule: II=%d, %d stages\n" ii stages);
  for stage = 0 to stages - 1 do
    for offset = 0 to ii - 1 do
      let cycle = (stage * ii) + offset in
      let at_cycle =
        Ddg.fold_nodes ddg ~init:[] ~f:(fun acc n ->
            if Schedule.cycle sched n.Ddg.id = cycle then n :: acc else acc)
      in
      match at_cycle with
      | [] -> ()
      | ops ->
        let show n =
          Printf.sprintf "%s(c%d)" n.Ddg.label (Schedule.cluster sched n.Ddg.id)
        in
        Buffer.add_string buf
          (Printf.sprintf "  cycle %3d (stage %2d): %s\n" cycle stage
             (String.concat "  " (List.map show (List.rev ops))))
    done
  done;
  Buffer.contents buf
