open Ncdrf_ir
open Ncdrf_machine

type placement = {
  cycle : int;
  cluster : int;
}

type t = {
  ddg : Ddg.t;
  config : Config.t;
  ii : int;
  placements : placement array;
}

let make ~config ~ii ~placements ddg =
  if ii < 1 then invalid_arg "Schedule.make: ii must be >= 1";
  if Array.length placements <> Ddg.num_nodes ddg then
    invalid_arg "Schedule.make: placement count mismatch";
  let check p =
    if p.cluster < 0 || p.cluster >= Config.num_clusters config then
      invalid_arg "Schedule.make: cluster out of range"
  in
  Array.iter check placements;
  { ddg; config; ii; placements }

let ii t = t.ii
let cycle t v = t.placements.(v).cycle
let cluster t v = t.placements.(v).cluster

let edge_weight t e =
  let src_op = (Ddg.node t.ddg e.Ddg.src).Ddg.opcode in
  Config.latency t.config src_op - (t.ii * e.Ddg.distance)

let first_cycle t =
  Array.fold_left (fun acc p -> min acc p.cycle) max_int t.placements

let last_cycle t =
  Array.fold_left (fun acc p -> max acc p.cycle) min_int t.placements

let stages t =
  if Array.length t.placements = 0 then 0
  else ((last_cycle t - first_cycle t) / t.ii) + 1

let normalize t =
  let shift = first_cycle t in
  if shift = 0 || Array.length t.placements = 0 then t
  else
    {
      t with
      placements = Array.map (fun p -> { p with cycle = p.cycle - shift }) t.placements;
    }

let swap_clusters t a b =
  let placements = Array.copy t.placements in
  let ca = placements.(a).cluster and cb = placements.(b).cluster in
  placements.(a) <- { (placements.(a)) with cluster = cb };
  placements.(b) <- { (placements.(b)) with cluster = ca };
  { t with placements }

let validate t =
  let problem = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !problem = None then problem := Some s) fmt in
  let check_edge e =
    let lhs = cycle t e.Ddg.dst and rhs = cycle t e.Ddg.src + edge_weight t e in
    if lhs < rhs then
      fail "dependence %s -> %s violated: %d < %d"
        (Ddg.node t.ddg e.Ddg.src).Ddg.label
        (Ddg.node t.ddg e.Ddg.dst).Ddg.label lhs rhs
  in
  List.iter check_edge (Ddg.edges t.ddg);
  if !problem = None then begin
    let rt = Reservation.create t.config ~ii:t.ii in
    let book node =
      let p = t.placements.(node.Ddg.id) in
      if not (Reservation.reserve_in rt ~op:node.Ddg.opcode ~cycle:p.cycle ~cluster:p.cluster)
      then fail "resource overflow at op %s (cycle %d, cluster %d)" node.Ddg.label p.cycle p.cluster
    in
    Ddg.iter_nodes t.ddg ~f:book
  end;
  match !problem with
  | None -> Ok ()
  | Some msg -> Error msg

let pp ppf t =
  Format.fprintf ppf "@[<v>schedule of %s on %a: II=%d, %d stages@," (Ddg.name t.ddg)
    Config.pp t.config t.ii (stages t);
  let print node =
    let p = t.placements.(node.Ddg.id) in
    Format.fprintf ppf "  %-6s %-12s cycle %3d  cluster %d@," node.Ddg.label
      (Opcode.to_string node.Ddg.opcode)
      p.cycle p.cluster
  in
  Ddg.iter_nodes t.ddg ~f:print;
  Format.fprintf ppf "@]"
