(** Modulo schedules.

    A schedule assigns every operation an absolute issue cycle (of the
    first iteration) and a cluster.  The same pattern repeats every
    [ii] cycles; operation [v] of iteration [k] issues at
    [cycle v + k * ii]. *)

open Ncdrf_ir
open Ncdrf_machine

type placement = {
  cycle : int;
  cluster : int;
}

type t = private {
  ddg : Ddg.t;
  config : Config.t;
  ii : int;
  placements : placement array;  (** indexed by node id *)
}

(** [make ~config ~ii ~placements ddg] checks array length and basic
    ranges; dependence/resource consistency is checked by {!validate}. *)
val make : config:Config.t -> ii:int -> placements:placement array -> Ddg.t -> t

val ii : t -> int
val cycle : t -> int -> int
val cluster : t -> int -> int

(** Dependence weight of an edge at this [ii]:
    [latency(src) - ii * distance].  The schedule must satisfy
    [cycle dst >= cycle src + weight] for every edge. *)
val edge_weight : t -> Ddg.edge -> int

(** Number of pipeline stages: the kernel executes this many iterations
    concurrently in steady state. *)
val stages : t -> int

(** Issue cycle of the earliest operation. *)
val first_cycle : t -> int

(** A copy with all cycles shifted so the earliest operation issues at
    cycle 0 (uniform shifts preserve validity). *)
val normalize : t -> t

(** A copy with the clusters of two operations exchanged.  Used by the
    swapping pass; the caller is responsible for only swapping
    operations of the same functional-unit class in the same kernel
    slot, which keeps the schedule resource-valid. *)
val swap_clusters : t -> int -> int -> t

(** Check every dependence edge and rebuild a reservation table to check
    resource constraints (including port caps). *)
val validate : t -> (unit, string) result

val pp : Format.formatter -> t -> unit
