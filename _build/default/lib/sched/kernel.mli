(** Kernel extraction and rendering.

    The kernel is the steady-state body of the software-pipelined loop:
    [ii] VLIW instructions; the operation scheduled at absolute cycle
    [c] appears in kernel row [c mod ii], annotated with its stage
    [c / ii] (operations from distinct stages belong to distinct
    iterations of the original loop — paper Figure 4). *)

open Ncdrf_ir

type slot = {
  node : Ddg.node;
  stage : int;
  cluster : int;
}

type t = {
  ii : int;
  rows : slot list array;  (** length [ii]; slots ordered by cluster *)
}

val extract : Schedule.t -> t

(** ASCII table in the style of the paper's Figures 4 and 5: one line
    per kernel row, one column per functional unit, clusters side by
    side separated by [||], entries like ["[11] A6"]. *)
val render : Schedule.t -> string

(** The flat modulo schedule table of Figure 3: stage rows against
    cycle-within-stage, annotated with cluster assignments. *)
val render_schedule_table : Schedule.t -> string
