lib/sched/kernel.ml: Array Buffer Config Ddg List Ncdrf_ir Ncdrf_machine Opcode Printf Schedule String
