lib/sched/adjust.ml: Array Config Ddg List Ncdrf_ir Ncdrf_machine Reservation Schedule
