lib/sched/schedule.mli: Config Ddg Format Ncdrf_ir Ncdrf_machine
