lib/sched/codegen.mli: Kernel Schedule
