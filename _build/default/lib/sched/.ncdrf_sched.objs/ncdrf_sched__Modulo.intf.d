lib/sched/modulo.mli: Config Ddg Ncdrf_ir Ncdrf_machine Schedule
