lib/sched/kernel.mli: Ddg Ncdrf_ir Schedule
