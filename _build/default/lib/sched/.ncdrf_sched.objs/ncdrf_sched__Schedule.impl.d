lib/sched/schedule.ml: Array Config Ddg Format List Ncdrf_ir Ncdrf_machine Opcode Printf Reservation
