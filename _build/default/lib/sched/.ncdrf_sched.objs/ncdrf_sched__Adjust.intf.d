lib/sched/adjust.mli: Ddg Ncdrf_ir Schedule
