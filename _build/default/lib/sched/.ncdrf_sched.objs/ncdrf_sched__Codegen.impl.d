lib/sched/codegen.ml: Array Buffer Kernel List Ncdrf_ir Printf Schedule String
