lib/sched/mii.ml: Config Ddg Graph_algos Hashtbl List Ncdrf_ir Ncdrf_machine
