lib/sched/mii.mli: Config Ddg Ncdrf_ir Ncdrf_machine
