lib/sched/modulo.ml: Array Config Ddg List Logs Mii Ncdrf_ir Ncdrf_machine Opcode Printf Reservation Schedule
