type phase =
  | Prologue of int
  | Kernel
  | Epilogue of int

type row = {
  phase : phase;
  slot : int;
  ops : Kernel.slot list;
}

let generate sched =
  let kernel = Kernel.extract sched in
  let ii = kernel.Kernel.ii in
  let stages = Schedule.stages sched in
  let row_of phase ~keep slot =
    { phase; slot; ops = List.filter keep kernel.Kernel.rows.(slot) }
  in
  let block phase ~keep = List.init ii (row_of phase ~keep) in
  let prologue =
    List.concat
      (List.init (max 0 (stages - 1)) (fun p ->
           block (Prologue p) ~keep:(fun s -> s.Kernel.stage <= p)))
  in
  let kernel_rows = block Kernel ~keep:(fun _ -> true) in
  let epilogue =
    List.concat
      (List.init (max 0 (stages - 1)) (fun p ->
           block (Epilogue p) ~keep:(fun s -> s.Kernel.stage > p)))
  in
  prologue @ kernel_rows @ epilogue

type size = {
  prologue_rows : int;
  kernel_rows : int;
  epilogue_rows : int;
  total_rows : int;
  nonempty_rows : int;
  operations : int;
}

let size_with_kernel_copies sched ~copies =
  let rows = generate sched in
  let count p =
    List.length (List.filter (fun r -> p r.phase) rows)
  in
  let prologue_rows = count (function Prologue _ -> true | Kernel | Epilogue _ -> false) in
  let base_kernel = count (function Kernel -> true | Prologue _ | Epilogue _ -> false) in
  let epilogue_rows = count (function Epilogue _ -> true | Prologue _ | Kernel -> false) in
  let kernel_rows = base_kernel * copies in
  let kernel_ops_once =
    List.fold_left
      (fun acc r ->
        match r.phase with Kernel -> acc + List.length r.ops | Prologue _ | Epilogue _ -> acc)
      0 rows
  in
  let nonempty phasewise =
    List.length (List.filter (fun r -> phasewise r.phase && r.ops <> []) rows)
  in
  let nonempty_rows =
    nonempty (function Prologue _ | Epilogue _ -> true | Kernel -> false)
    + (copies * nonempty (function Kernel -> true | Prologue _ | Epilogue _ -> false))
  in
  let operations =
    List.fold_left
      (fun acc r ->
        match r.phase with
        | Kernel -> acc
        | Prologue _ | Epilogue _ -> acc + List.length r.ops)
      0 rows
    + (copies * kernel_ops_once)
  in
  {
    prologue_rows;
    kernel_rows;
    epilogue_rows;
    total_rows = prologue_rows + kernel_rows + epilogue_rows;
    nonempty_rows;
    operations;
  }

let size sched = size_with_kernel_copies sched ~copies:1

let size_with_unroll sched ~unroll =
  if unroll < 1 then invalid_arg "Codegen.size_with_unroll: unroll must be >= 1";
  size_with_kernel_copies sched ~copies:unroll

let phase_label = function
  | Prologue p -> Printf.sprintf "prologue[%d]" p
  | Kernel -> "kernel"
  | Epilogue p -> Printf.sprintf "epilogue[%d]" p

let render sched =
  let buf = Buffer.create 1024 in
  let last_phase = ref None in
  List.iter
    (fun r ->
      if !last_phase <> Some r.phase then begin
        Buffer.add_string buf (Printf.sprintf "%s:\n" (phase_label r.phase));
        last_phase := Some r.phase
      end;
      let cells =
        match r.ops with
        | [] -> "nop"
        | ops ->
          String.concat "  "
            (List.map
               (fun s ->
                 Printf.sprintf "[%d] %s(c%d)" s.Kernel.stage s.Kernel.node.Ncdrf_ir.Ddg.label
                   s.Kernel.cluster)
               ops)
      in
      Buffer.add_string buf (Printf.sprintf "  %2d: %s\n" r.slot cells))
    (generate sched);
  Buffer.contents buf
