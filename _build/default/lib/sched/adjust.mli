(** Local schedule repair passes.

    {!push_late} moves selected operations to the latest
    dependence-feasible cycle with a free resource slot.  The spiller
    uses it on spill loads: the modulo scheduler places operations at
    their earliest feasible cycle, which would leave a reloaded value
    live from just after its spill store to its consumer and defeat the
    spill; pushing the load down shrinks the reloaded lifetime to
    roughly the load latency. *)

open Ncdrf_ir

(** [push_late sched ~eligible] returns an equivalent valid schedule in
    which every node satisfying [eligible] (and having at least one
    successor) has been moved as late as its scheduled successors and
    resources allow.  Nodes are processed latest-first; ineligible nodes
    do not move. *)
val push_late : Schedule.t -> eligible:(Ddg.node -> bool) -> Schedule.t
