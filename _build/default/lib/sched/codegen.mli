(** Pipelined code generation: prologue, kernel and epilogue.

    A modulo schedule with [S] stages ramps up for [S-1] blocks of [II]
    instructions (block [p] issues only the operations of stages
    [<= p]), runs the kernel, and drains for [S-1] blocks (block [p]
    issues stages [> p]).  With rotating register files and predicated
    execution — the paper's assumed Cydra-5-style support — the kernel
    is emitted once and the prologue/epilogue can even be folded into
    it; without that hardware the kernel must additionally be unrolled
    for modulo variable expansion (see {!Ncdrf_regalloc.Mve}).

    This module materializes the three phases and reports code-size
    numbers so the hardware-support assumption can be costed. *)

type phase =
  | Prologue of int  (** ramp-up block index, [0 .. stages-2] *)
  | Kernel
  | Epilogue of int  (** drain block index, [0 .. stages-2] *)

type row = {
  phase : phase;
  slot : int;  (** kernel row within the block, [0 .. ii-1] *)
  ops : Kernel.slot list;
}

(** All rows in execution order: prologue blocks, kernel, epilogue
    blocks. *)
val generate : Schedule.t -> row list

type size = {
  prologue_rows : int;
  kernel_rows : int;
  epilogue_rows : int;
  total_rows : int;
  nonempty_rows : int;  (** rows issuing at least one operation *)
  operations : int;  (** total operation slots issued across phases *)
}

(** Code size with single-kernel emission (rotating register files). *)
val size : Schedule.t -> size

(** Code size without rotating support: the kernel is unrolled [unroll]
    times for modulo variable expansion (compute the factor with
    [Ncdrf_regalloc.Mve.best], which lives above this library);
    prologue/epilogue as in {!size}. *)
val size_with_unroll : Schedule.t -> unroll:int -> size

val render : Schedule.t -> string
