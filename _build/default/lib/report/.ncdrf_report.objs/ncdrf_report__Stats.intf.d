lib/report/stats.mli: Format
