lib/report/table.mli:
