lib/report/csv.mli:
