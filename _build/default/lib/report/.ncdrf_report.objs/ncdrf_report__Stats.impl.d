lib/report/stats.ml: Array Format List Printf String
