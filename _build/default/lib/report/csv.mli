(** Minimal RFC-4180-style CSV output for experiment series. *)

(** Quote a field if it contains a comma, quote or newline. *)
val escape : string -> string

val line : string list -> string

(** [write path rows] writes the rows to [path], creating the file. *)
val write : string -> string list list -> unit
