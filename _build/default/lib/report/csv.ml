let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let line cells = String.concat "," (List.map escape cells)

let write path rows =
  let oc = open_out path in
  (try List.iter (fun row -> output_string oc (line row ^ "\n")) rows
   with e ->
     close_out oc;
     raise e);
  close_out oc
