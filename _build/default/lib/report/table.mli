(** Aligned text tables for experiment output. *)

type t

(** [create ~columns] starts a table with the given header. *)
val create : columns:string list -> t

(** Append a row; short rows are padded with empty cells, long rows
    raise [Invalid_argument]. *)
val add_row : t -> string list -> unit

val num_rows : t -> int

(** Render with columns padded to their widest cell, a separator under
    the header, and two spaces between columns. *)
val render : t -> string

(** The rows as written, header first — the exact data {!Csv.write}
    expects. *)
val to_rows : t -> string list list
