type t = {
  columns : string list;
  mutable rev_rows : string list list;
}

let create ~columns = { columns; rev_rows = [] }

let add_row t row =
  let width = List.length t.columns in
  let given = List.length row in
  if given > width then
    invalid_arg (Printf.sprintf "Table.add_row: %d cells in a %d-column table" given width);
  let padded = row @ List.init (width - given) (fun _ -> "") in
  t.rev_rows <- padded :: t.rev_rows

let num_rows t = List.length t.rev_rows
let rows t = List.rev t.rev_rows

let render t =
  let all = t.columns :: rows t in
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w cell -> max w (String.length cell)) acc row)
      (List.map (fun _ -> 0) t.columns)
      all
  in
  let line row =
    String.concat "  " (List.map2 (fun w cell -> Printf.sprintf "%-*s" w cell) widths row)
  in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (line t.columns :: sep :: List.map line (rows t)) ^ "\n"

let to_rows t = t.columns :: rows t
