open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched

type t = {
  producer : int;
  start : int;
  stop : int;
}

let length t = t.stop - t.start

let of_schedule sched =
  let ddg = sched.Schedule.ddg in
  let cfg = sched.Schedule.config in
  let ii = Schedule.ii sched in
  let lifetime node =
    if not (Opcode.produces_value node.Ddg.opcode) then None
    else begin
      let start = Schedule.cycle sched node.Ddg.id in
      let finish_of e =
        let consumer = Ddg.node ddg e.Ddg.dst in
        Schedule.cycle sched consumer.Ddg.id
        + (e.Ddg.distance * ii)
        + Config.latency cfg consumer.Ddg.opcode
      in
      let stop =
        match Ddg.consumers ddg node.Ddg.id with
        | [] -> start + Config.latency cfg node.Ddg.opcode
        | consumers -> List.fold_left (fun acc e -> max acc (finish_of e)) start consumers
      in
      Some { producer = node.Ddg.id; start; stop }
    end
  in
  Ddg.fold_nodes ddg ~init:[] ~f:(fun acc n ->
      match lifetime n with Some l -> l :: acc | None -> acc)
  |> List.rev

let ceil_div a b = if a <= 0 then 0 else (a + b - 1) / b

let live_at_slot t ~ii ~slot =
  let r = (((slot - t.start) mod ii) + ii) mod ii in
  ceil_div (length t - r) ii

let max_live ~ii lifetimes =
  let best = ref 0 in
  for slot = 0 to ii - 1 do
    let live =
      List.fold_left (fun acc l -> acc + live_at_slot l ~ii ~slot) 0 lifetimes
    in
    if live > !best then best := live
  done;
  !best

let min_registers ~ii t = ceil_div (length t) ii
let total_min_registers ~ii lifetimes =
  List.fold_left (fun acc l -> acc + min_registers ~ii l) 0 lifetimes
