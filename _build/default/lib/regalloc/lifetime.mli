(** Value lifetimes of a modulo schedule.

    Following the paper (Section 2), the lifetime of a value starts when
    its producer is issued and ends when all its consumers finish, so
    that the code stays interruptible/restartable when issued operations
    always run to completion.  A consumer reached through a
    loop-carried edge of distance [d] finishes [d * II] cycles later
    than its same-iteration instance.

    A value with no consumer (dead code) lives until its producer
    finishes writing it. *)

open Ncdrf_sched

type t = {
  producer : int;  (** node id of the defining operation *)
  start : int;  (** issue cycle of the producer *)
  stop : int;  (** cycle at which the last consumer finishes *)
}

val length : t -> int

(** Lifetimes of all value-producing operations (everything but stores),
    in node-id order. *)
val of_schedule : Schedule.t -> t list

(** Number of live instances of the value at a steady-state cycle [c]
    with [c mod ii = slot]: successive definitions are II apart, so this
    is [ceil ((length - r) / ii)] with [r = (slot - start) mod ii]. *)
val live_at_slot : t -> ii:int -> slot:int -> int

(** Maximum over kernel slots of the number of simultaneously live value
    instances — the lower bound on registers that the swapping pass
    uses (paper Section 5.2). *)
val max_live : ii:int -> t list -> int

(** [ceil (length / ii)]: registers the value needs on its own. *)
val min_registers : ii:int -> t -> int

(** Sum over values of {!min_registers} — an upper bound on the
    requirement (disjoint allocation always fits). *)
val total_min_registers : ii:int -> t list -> int
