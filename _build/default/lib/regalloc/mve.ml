type allocation = {
  unroll : int;
  registers : int;
  kernel_instructions : int;
}

let ceil_div a b = (a + b - 1) / b

let quanta ~ii lifetimes =
  List.map (fun l -> max 1 (ceil_div (Lifetime.length l) ii)) lifetimes

let min_unroll ~ii lifetimes = List.fold_left max 1 (quanta ~ii lifetimes)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let lcm a b = a / gcd a b * b

let lcm_unroll ?(max_lcm = 4096) ~ii lifetimes =
  List.fold_left (fun acc q -> if acc >= max_lcm then max_lcm else min max_lcm (lcm acc q)) 1
    (quanta ~ii lifetimes)

(* Smallest divisor of [u] that is >= q. *)
let divisor_at_least u q =
  let rec scan d = if d >= u then u else if u mod d = 0 && d >= q then d else scan (d + 1) in
  scan 1

let registers ~ii ~unroll lifetimes =
  let lower = min_unroll ~ii lifetimes in
  if unroll < lower then
    invalid_arg (Printf.sprintf "Mve.registers: unroll %d below minimum %d" unroll lower);
  List.fold_left (fun acc q -> acc + divisor_at_least unroll q) 0 (quanta ~ii lifetimes)

let at_unroll ~ii ~unroll lifetimes =
  {
    unroll;
    registers = registers ~ii ~unroll lifetimes;
    kernel_instructions = unroll * ii;
  }

let best ?max_unroll ~ii lifetimes =
  let lower = min_unroll ~ii lifetimes in
  let upper =
    match max_unroll with
    | Some u -> max lower u
    | None -> max lower (min (lcm_unroll ~ii lifetimes) 64)
  in
  let candidate u = at_unroll ~ii ~unroll:u lifetimes in
  let better a b =
    if a.registers <> b.registers then a.registers < b.registers
    else a.unroll < b.unroll
  in
  let rec scan u best_so_far =
    if u > upper then best_so_far
    else begin
      let c = candidate u in
      scan (u + 1) (if better c best_so_far then c else best_so_far)
    end
  in
  scan (lower + 1) (candidate lower)
