lib/regalloc/mve.mli: Lifetime
