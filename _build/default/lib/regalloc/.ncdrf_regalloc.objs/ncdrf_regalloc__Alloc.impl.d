lib/regalloc/alloc.ml: Lifetime List Printf
