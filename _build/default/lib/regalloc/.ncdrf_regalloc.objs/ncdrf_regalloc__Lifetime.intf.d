lib/regalloc/lifetime.mli: Ncdrf_sched Schedule
