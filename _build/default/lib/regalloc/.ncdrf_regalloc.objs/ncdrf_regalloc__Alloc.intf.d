lib/regalloc/alloc.mli: Lifetime
