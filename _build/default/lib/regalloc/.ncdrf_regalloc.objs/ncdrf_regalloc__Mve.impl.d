lib/regalloc/mve.ml: Lifetime List Printf
