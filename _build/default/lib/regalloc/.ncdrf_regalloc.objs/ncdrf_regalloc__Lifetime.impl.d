lib/regalloc/lifetime.ml: Config Ddg List Ncdrf_ir Ncdrf_machine Ncdrf_sched Opcode Schedule
