(** Modulo Variable Expansion (Lam, PLDI'88): register allocation for
    software-pipelined loops {e without} rotating-register hardware.

    The paper assumes a rotating register file (Cydra-5 style), so each
    value needs [q = ceil (length / II)] registers and successive
    definitions are renamed by hardware.  Without that support the
    kernel must be unrolled [u] times and the copies renamed statically:
    value [v] can then cycle through [k_v] registers only if
    [k_v] divides [u], so [k_v] is the smallest divisor of [u] that is
    at least [q_v].

    Classic trade-off:
    - [u = lcm q_v]: minimum registers ([sum q_v]) but largest code;
    - [u = max q_v]: minimum code but potentially many extra registers
      (a prime [u] forces [k_v = u] for every multi-register value).

    This module quantifies that trade-off so the rotating file the paper
    assumes can be compared against the software-only alternative. *)

type allocation = {
  unroll : int;  (** kernel copies *)
  registers : int;  (** sum of per-value register counts *)
  kernel_instructions : int;  (** [unroll * ii] VLIW instructions *)
}

(** Per-value register quanta [ceil (length / II)], in input order. *)
val quanta : ii:int -> Lifetime.t list -> int list

(** Smallest legal unroll: [max q_v] (1 for an empty list). *)
val min_unroll : ii:int -> Lifetime.t list -> int

(** [lcm q_v], saturating at [max_lcm] (default 4096) to keep the
    result meaningful for pathological lifetime mixes. *)
val lcm_unroll : ?max_lcm:int -> ii:int -> Lifetime.t list -> int

(** Registers needed at a given unroll factor.

    @raise Invalid_argument if [unroll] is below {!min_unroll}. *)
val registers : ii:int -> unroll:int -> Lifetime.t list -> int

(** Allocation at a given unroll. *)
val at_unroll : ii:int -> unroll:int -> Lifetime.t list -> allocation

(** The allocation minimising registers (ties: fewer kernel copies) over
    unrolls from {!min_unroll} to [max_unroll] (default
    [min (lcm) 64]). *)
val best : ?max_unroll:int -> ii:int -> Lifetime.t list -> allocation
