open Ncdrf_ir

type t = {
  cfg : Config.t;
  ii : int;
  (* usage.(cluster).(class).(slot) with class 0=adder 1=multiplier 2=ls *)
  usage : int array array array;
  load_use : int array;  (* per slot *)
  store_use : int array;
}

let class_index op =
  match Opcode.fu_class op with
  | Opcode.Adder -> 0
  | Opcode.Multiplier -> 1
  | Opcode.Memory -> 2

let capacity cfg cluster cls =
  let c = cfg.Config.clusters.(cluster) in
  match cls with
  | 0 -> c.Config.adders
  | 1 -> c.Config.multipliers
  | _ -> c.Config.ls_units

let create cfg ~ii =
  if ii < 1 then invalid_arg "Reservation.create: ii must be >= 1";
  let n_clusters = Config.num_clusters cfg in
  let usage =
    Array.init n_clusters (fun _ -> Array.init 3 (fun _ -> Array.make ii 0))
  in
  { cfg; ii; usage; load_use = Array.make ii 0; store_use = Array.make ii 0 }

let ii t = t.ii
let config t = t.cfg
let slot t cycle = ((cycle mod t.ii) + t.ii) mod t.ii

let port_room t ~op ~cycle =
  let s = slot t cycle in
  if Opcode.is_load op then
    match t.cfg.Config.load_ports with
    | Some cap -> t.load_use.(s) < cap
    | None -> true
  else if Opcode.is_store op then
    match t.cfg.Config.store_ports with
    | Some cap -> t.store_use.(s) < cap
    | None -> true
  else true

let port_saturated t ~op ~cycle = not (port_room t ~op ~cycle)

let cluster_room t ~op ~cycle ~cluster =
  let s = slot t cycle in
  let cls = class_index op in
  t.usage.(cluster).(cls).(s) < capacity t.cfg cluster cls

let book t ~op ~cycle ~cluster =
  let s = slot t cycle in
  let cls = class_index op in
  t.usage.(cluster).(cls).(s) <- t.usage.(cluster).(cls).(s) + 1;
  if Opcode.is_load op then t.load_use.(s) <- t.load_use.(s) + 1
  else if Opcode.is_store op then t.store_use.(s) <- t.store_use.(s) + 1

let reserve_in t ~op ~cycle ~cluster =
  if cluster_room t ~op ~cycle ~cluster && port_room t ~op ~cycle then begin
    book t ~op ~cycle ~cluster;
    true
  end
  else false

let reserve t ~op ~cycle =
  if not (port_room t ~op ~cycle) then None
  else begin
    let s = slot t cycle in
    let cls = class_index op in
    let best = ref None in
    let consider cluster =
      if cluster_room t ~op ~cycle ~cluster then begin
        let free = capacity t.cfg cluster cls - t.usage.(cluster).(cls).(s) in
        match !best with
        | Some (_, best_free) when best_free >= free -> ()
        | Some _ | None -> best := Some (cluster, free)
      end
    in
    for cluster = 0 to Config.num_clusters t.cfg - 1 do
      consider cluster
    done;
    match !best with
    | None -> None
    | Some (cluster, _) ->
      book t ~op ~cycle ~cluster;
      Some cluster
  end

let release t ~op ~cycle ~cluster =
  let s = slot t cycle in
  let cls = class_index op in
  if t.usage.(cluster).(cls).(s) <= 0 then
    invalid_arg "Reservation.release: nothing reserved";
  t.usage.(cluster).(cls).(s) <- t.usage.(cluster).(cls).(s) - 1;
  if Opcode.is_load op then begin
    if t.load_use.(s) <= 0 then invalid_arg "Reservation.release: load port underflow";
    t.load_use.(s) <- t.load_use.(s) - 1
  end
  else if Opcode.is_store op then begin
    if t.store_use.(s) <= 0 then invalid_arg "Reservation.release: store port underflow";
    t.store_use.(s) <- t.store_use.(s) - 1
  end

let used t ~op ~cycle ~cluster =
  let s = slot t cycle in
  t.usage.(cluster).(class_index op).(s)
