(** Modulo reservation tables.

    A reservation table for initiation interval [II] tracks, for every
    kernel slot [0 .. II-1], how many units of each functional-unit class
    are busy in each cluster, plus machine-wide load/store port usage.
    An operation scheduled at absolute cycle [c] occupies slot
    [c mod II] in every iteration, which is exactly what the table
    models. *)

open Ncdrf_ir

type t

val create : Config.t -> ii:int -> t
val ii : t -> int
val config : t -> Config.t

(** [reserve t ~op ~cycle] books a unit for [op] at kernel slot
    [cycle mod ii].  Returns the chosen cluster (the feasible cluster
    with the most free units of the class, to balance load), or [None]
    if no cluster has a free unit or a machine-wide port cap is hit. *)
val reserve : t -> op:Opcode.t -> cycle:int -> int option

(** Book a unit in a specific cluster; [false] if not available. *)
val reserve_in : t -> op:Opcode.t -> cycle:int -> cluster:int -> bool

(** Release a previous reservation.

    @raise Invalid_argument if nothing was reserved there. *)
val release : t -> op:Opcode.t -> cycle:int -> cluster:int -> unit

(** Units of the class of [op] busy at the slot of [cycle] in [cluster]. *)
val used : t -> op:Opcode.t -> cycle:int -> cluster:int -> int

(** [port_saturated t ~op ~cycle] is true when the machine-wide port cap
    for [op] (loads or stores) is the binding constraint at that slot. *)
val port_saturated : t -> op:Opcode.t -> cycle:int -> bool
