lib/machine/reservation.ml: Array Config Ncdrf_ir Opcode
