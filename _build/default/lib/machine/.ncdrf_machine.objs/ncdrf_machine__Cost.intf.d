lib/machine/cost.mli: Config
