lib/machine/config.mli: Format Ncdrf_ir Opcode
