lib/machine/cost.ml: Array Config
