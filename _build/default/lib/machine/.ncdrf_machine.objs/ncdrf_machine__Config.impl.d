lib/machine/config.ml: Array Format Ncdrf_ir Opcode Printf String
