lib/machine/reservation.mli: Config Ncdrf_ir Opcode
