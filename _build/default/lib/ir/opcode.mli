(** Operation codes of the floating-point loop IR.

    The IR models the floating-point loop variants of a software-pipelined
    inner loop, as in Llosa et al. (HPCA'95).  Integer/address computation
    is assumed to happen in the address processor of a decoupled
    architecture and is therefore not represented. *)

(** Memory locations named by loads and stores.  [Array] locations stand
    for streaming array references ([a(i)], one access per iteration);
    [Spill] locations are compiler-introduced stack slots, either left
    over from a lower-level front end (and then removed by
    {!Spill_cleanup}) or introduced by the register spiller. *)
type location =
  | Array of string
  | Spill of int

type t =
  | Fadd  (** floating-point addition *)
  | Fsub  (** floating-point subtraction *)
  | Fmul  (** floating-point multiplication *)
  | Fdiv  (** floating-point division (same latency as multiplication) *)
  | Fcvt  (** int<->float conversion, executed by the adders *)
  | Fselect
      (** predicated select, the residue of IF-conversion: picks one of
          two values by the sign of a predicate; runs on the adders *)
  | Load of location
  | Store of location

(** Functional-unit class that executes an opcode.  Additions,
    subtractions and conversions run on the adders; multiplications and
    divisions on the multipliers; loads and stores on memory resources. *)
type fu_class =
  | Adder
  | Multiplier
  | Memory

val fu_class : t -> fu_class

val is_load : t -> bool
val is_store : t -> bool

(** [is_memory op] holds for loads and stores. *)
val is_memory : t -> bool

(** [produces_value op] is [false] exactly for stores, the only opcodes
    that define no register value. *)
val produces_value : t -> bool

(** [is_spill_access op] holds for loads/stores whose location is a
    {!location.Spill} slot. *)
val is_spill_access : t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Short mnemonic used in kernel listings, e.g. ["fmul"] or ["ld x"]. *)
val mnemonic : t -> string
