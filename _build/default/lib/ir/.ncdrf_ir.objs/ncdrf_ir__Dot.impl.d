lib/ir/dot.ml: Buffer Ddg List Opcode Printf
