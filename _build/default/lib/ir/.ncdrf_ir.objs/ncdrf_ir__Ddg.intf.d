lib/ir/ddg.mli: Format Opcode
