lib/ir/opcode.mli: Format
