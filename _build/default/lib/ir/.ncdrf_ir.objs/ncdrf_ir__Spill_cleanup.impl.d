lib/ir/spill_cleanup.ml: Ddg Hashtbl List Opcode
