lib/ir/expr.ml: Ddg Hashtbl List Opcode Printf Stdlib
