lib/ir/loop_lang.mli: Ddg
