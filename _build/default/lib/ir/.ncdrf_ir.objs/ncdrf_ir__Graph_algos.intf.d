lib/ir/graph_algos.mli:
