lib/ir/spill_cleanup.mli: Ddg
