lib/ir/opcode.ml: Format Int Printf String
