lib/ir/dot.mli: Ddg
