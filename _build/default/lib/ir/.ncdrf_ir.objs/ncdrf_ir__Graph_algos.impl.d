lib/ir/graph_algos.ml: Array List Queue
