lib/ir/loop_lang.ml: Expr Float List Printf String
