lib/ir/ddg.ml: Array Format List Opcode Printf
