lib/ir/expr.mli: Ddg
