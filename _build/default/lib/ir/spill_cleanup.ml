(* For each spill slot, the producer chain looks like

     producer --flow--> store spill.k --mem--> load spill.k --flow--> consumer

   We reconnect producer to every consumer of every load of the slot,
   accumulating the iteration distances along the way, and drop the
   stores and loads. *)

let slot_of node =
  match node.Ddg.opcode with
  | Opcode.Load (Opcode.Spill k) -> Some (`Load, k)
  | Opcode.Store (Opcode.Spill k) -> Some (`Store, k)
  | Opcode.Load (Opcode.Array _)
  | Opcode.Store (Opcode.Array _)
  | Opcode.Fadd | Opcode.Fsub | Opcode.Fmul | Opcode.Fdiv | Opcode.Fcvt | Opcode.Fselect ->
    None

let run g =
  (* Map slot -> (store node, producer edge) for stores with a unique
     flow producer. *)
  let stores = Hashtbl.create 8 in
  let scan_store node =
    match slot_of node with
    | Some (`Store, k) ->
      let producers =
        List.filter (fun e -> e.Ddg.kind = Ddg.Flow) (Ddg.preds g node.Ddg.id)
      in
      (match producers with
       | [ p ] -> Hashtbl.replace stores k (node.Ddg.id, p)
       | [] | _ :: _ -> ())
    | Some (`Load, _) | None -> ()
  in
  Ddg.iter_nodes g ~f:scan_store;
  (* Collect removable nodes and the reconnection edges. *)
  let removed = Hashtbl.create 8 in
  let extra = ref [] in
  let scan_load node =
    match slot_of node with
    | Some (`Load, k) ->
      (match Hashtbl.find_opt stores k with
       | None -> ()
       | Some (store_id, producer_edge) ->
         (* Distance from producer to this load: producer->store plus any
            store->load memory distance. *)
         let store_to_load =
           List.filter
             (fun e -> e.Ddg.src = store_id)
             (Ddg.preds g node.Ddg.id)
         in
         let base = producer_edge.Ddg.distance in
         let mem_distance =
           match store_to_load with
           | e :: _ -> e.Ddg.distance
           | [] -> 0
         in
         Hashtbl.replace removed node.Ddg.id ();
         Hashtbl.replace removed store_id ();
         let reconnect e =
           if e.Ddg.kind = Ddg.Flow then
             extra :=
               {
                 Ddg.src = producer_edge.Ddg.src;
                 dst = e.Ddg.dst;
                 distance = base + mem_distance + e.Ddg.distance;
                 kind = Ddg.Flow;
               }
               :: !extra
         in
         List.iter reconnect (Ddg.succs g node.Ddg.id))
    | Some (`Store, _) | None -> ()
  in
  Ddg.iter_nodes g ~f:scan_load;
  if Hashtbl.length removed = 0 then (g, 0)
  else begin
    let keep node = not (Hashtbl.mem removed node.Ddg.id) in
    let cleaned, _remap = Ddg.remove_nodes g ~keep ~add_edges:!extra () in
    (cleaned, Hashtbl.length removed)
  end
