(** Generic graph algorithms used by the scheduler and MII computations.

    Graphs are given as adjacency structures over dense node ids
    [0 .. n-1]. *)

(** Strongly connected components (Tarjan).  [scc ~num_nodes ~succs]
    returns the list of components, each a list of node ids; the
    condensation is listed in topological order (source components
    first). *)
val scc : num_nodes:int -> succs:(int -> int list) -> int list list

(** Elementary circuits (Johnson's algorithm).  Each circuit is the list
    of its node ids in order (without repeating the first node at the
    end).  [max_circuits] bounds the enumeration (default 100_000); the
    search stops silently once the bound is reached. *)
val elementary_circuits :
  ?max_circuits:int -> num_nodes:int -> succs:(int -> int list) -> unit -> int list list

(** Longest-path potentials by Bellman-Ford on a graph with weighted
    edges.  [longest_paths ~num_nodes ~edges ~sources] returns [Some
    dist] where [dist.(v)] is the longest path weight from any source to
    [v] ([min_int] if unreachable), or [None] if a positive-weight cycle
    is reachable from a source (no finite longest paths). *)
val longest_paths :
  num_nodes:int ->
  edges:(int * int * int) list ->
  sources:int list ->
  int array option

(** [has_positive_cycle ~num_nodes ~edges] detects a cycle of positive
    total weight anywhere in the graph. *)
val has_positive_cycle : num_nodes:int -> edges:(int * int * int) list -> bool

(** Topological order of the distance-0 (acyclic) subgraph; raises
    [Invalid_argument] if the given subgraph is cyclic. *)
val topological_order : num_nodes:int -> succs:(int -> int list) -> int list
