(** A small loop-body language that compiles to dependence graphs.

    The language describes one iteration of a Fortran-style inner loop
    over floating-point data, the only loops the paper schedules:

    - [Load "x"] is a streaming array reference [x(i)];
    - [Invariant "r"] is a loop-invariant value, held in the general
      (non-rotating) register file and therefore {e not} represented by
      a node;
    - [Const c] behaves like an invariant;
    - arithmetic operators map to FP functional units;
    - [Prev (name, d)] reads the value that the statement [Def (name, _)]
      produced [d] iterations ago — this is how recurrences are written.

    Compilation hash-conses syntactically equal subexpressions (the
    common-subexpression elimination that the paper inherits from the
    optimizing front end). *)

type t =
  | Load of string
  | Invariant of string
  | Const of float
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Cvt of t
  | Prev of string * int
  | Ref of string
      (** the value of a [Def] from the {e same} iteration; the
          definition must appear before the use *)
  | Select of t * t * t
      (** [Select (p, a, b)]: IF-converted conditional — the value of
          [a] when the predicate [p] is non-negative, of [b] otherwise;
          executes as one predicated-select operation on the adders *)

type stmt =
  | Def of string * t  (** a scalar defined each iteration *)
  | Store of string * t  (** [a(i) = expr] *)

(** Convenience constructors. *)
val ( + ) : t -> t -> t

val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val load : string -> t
val inv : string -> t
val const : float -> t
val prev : ?distance:int -> string -> t
val ref_ : string -> t
val select : t -> t -> t -> t

exception Compile_error of string

(** [compile ~name stmts] builds the dependence graph of the loop body.

    @raise Compile_error if a [Prev] references an undefined name, a
    [Prev] has distance < 1, a [Def] is bound twice, or a statement
    reduces to an invariant-only expression (no FP operation and no
    load, hence no node to represent it). *)
val compile : name:string -> stmt list -> Ddg.t
