let render g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n" (Ddg.name g));
  Buffer.add_string buf "  node [shape=box, fontname=\"monospace\"];\n";
  let shape op =
    match Opcode.fu_class op with
    | Opcode.Adder -> "lightblue"
    | Opcode.Multiplier -> "lightsalmon"
    | Opcode.Memory -> "lightgrey"
  in
  let emit_node node =
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s\\n%s\", style=filled, fillcolor=%s];\n"
         node.Ddg.id node.Ddg.label
         (Opcode.to_string node.Ddg.opcode)
         (shape node.Ddg.opcode))
  in
  Ddg.iter_nodes g ~f:emit_node;
  let emit_edge e =
    let attrs =
      let style = match e.Ddg.kind with Ddg.Flow -> "solid" | Ddg.Mem -> "dashed" in
      if e.Ddg.distance > 0 then
        Printf.sprintf "style=%s, label=\"d=%d\"" style e.Ddg.distance
      else Printf.sprintf "style=%s" style
    in
    Buffer.add_string buf (Printf.sprintf "  n%d -> n%d [%s];\n" e.Ddg.src e.Ddg.dst attrs)
  in
  List.iter emit_edge (Ddg.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
