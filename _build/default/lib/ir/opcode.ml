type location =
  | Array of string
  | Spill of int

type t =
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Fcvt
  | Fselect
  | Load of location
  | Store of location

type fu_class =
  | Adder
  | Multiplier
  | Memory

let fu_class = function
  | Fadd | Fsub | Fcvt | Fselect -> Adder
  | Fmul | Fdiv -> Multiplier
  | Load _ | Store _ -> Memory

let is_load = function Load _ -> true | Fadd | Fsub | Fmul | Fdiv | Fcvt | Fselect | Store _ -> false
let is_store = function Store _ -> true | Fadd | Fsub | Fmul | Fdiv | Fcvt | Fselect | Load _ -> false
let is_memory op = is_load op || is_store op
let produces_value op = not (is_store op)

let is_spill_access = function
  | Load (Spill _) | Store (Spill _) -> true
  | Load (Array _) | Store (Array _) -> false
  | Fadd | Fsub | Fmul | Fdiv | Fcvt | Fselect -> false

let equal_location a b =
  match a, b with
  | Array x, Array y -> String.equal x y
  | Spill x, Spill y -> Int.equal x y
  | Array _, Spill _ | Spill _, Array _ -> false

let equal a b =
  match a, b with
  | Fadd, Fadd | Fsub, Fsub | Fmul, Fmul | Fdiv, Fdiv | Fcvt, Fcvt | Fselect, Fselect ->
    true
  | Load x, Load y | Store x, Store y -> equal_location x y
  | (Fadd | Fsub | Fmul | Fdiv | Fcvt | Fselect | Load _ | Store _), _ -> false

let location_to_string = function
  | Array a -> a
  | Spill n -> Printf.sprintf "spill.%d" n

let to_string = function
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"
  | Fcvt -> "fcvt"
  | Fselect -> "fsel"
  | Load loc -> Printf.sprintf "load %s" (location_to_string loc)
  | Store loc -> Printf.sprintf "store %s" (location_to_string loc)

let mnemonic = function
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"
  | Fcvt -> "fcvt"
  | Fselect -> "fsel"
  | Load loc -> Printf.sprintf "ld %s" (location_to_string loc)
  | Store loc -> Printf.sprintf "st %s" (location_to_string loc)

let pp ppf op = Format.pp_print_string ppf (to_string op)
