let scc ~num_nodes ~succs =
  (* Tarjan's algorithm. *)
  let index = Array.make num_nodes (-1) in
  let lowlink = Array.make num_nodes 0 in
  let on_stack = Array.make num_nodes false in
  let stack = ref [] in
  let next_index = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    let visit w =
      if index.(w) < 0 then begin
        strongconnect w;
        lowlink.(v) <- min lowlink.(v) lowlink.(w)
      end
      else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
    in
    List.iter visit (succs v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  for v = 0 to num_nodes - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  !components

let elementary_circuits ?(max_circuits = 100_000) ~num_nodes ~succs () =
  (* Johnson's algorithm: for each start vertex [s] in increasing order,
     enumerate the circuits whose least vertex is [s] within the strongly
     connected component of [s] in the subgraph induced by vertices
     >= [s]. *)
  let circuits = ref [] in
  let count = ref 0 in
  let exception Done in
  let record c =
    circuits := c :: !circuits;
    incr count;
    if !count >= max_circuits then raise Done
  in
  let run_from s =
    let restricted v = List.filter (fun w -> w >= s) (succs v) in
    let comps = scc ~num_nodes ~succs:(fun v -> if v >= s then restricted v else []) in
    let comp =
      match List.find_opt (fun c -> List.mem s c) comps with
      | Some c -> c
      | None -> [ s ]
    in
    let in_comp = Array.make num_nodes false in
    List.iter (fun v -> in_comp.(v) <- true) comp;
    let comp_succs v = List.filter (fun w -> in_comp.(w)) (restricted v) in
    if List.length comp = 1 then begin
      if List.mem s (succs s) then record [ s ]
    end
    else begin
      let blocked = Array.make num_nodes false in
      let block_map = Array.make num_nodes [] in
      let path = ref [] in
      let rec unblock v =
        if blocked.(v) then begin
          blocked.(v) <- false;
          let bl = block_map.(v) in
          block_map.(v) <- [];
          List.iter unblock bl
        end
      in
      let rec circuit v =
        let found = ref false in
        path := v :: !path;
        blocked.(v) <- true;
        let visit w =
          if w = s then begin
            record (List.rev !path);
            found := true
          end
          else if not blocked.(w) then if circuit w then found := true
        in
        List.iter visit (comp_succs v);
        if !found then unblock v
        else begin
          let note w =
            if not (List.mem v block_map.(w)) then block_map.(w) <- v :: block_map.(w)
          in
          List.iter note (comp_succs v)
        end;
        path := List.tl !path;
        !found
      in
      ignore (circuit s)
    end
  in
  (try
     for s = 0 to num_nodes - 1 do
       run_from s
     done
   with Done -> ());
  !circuits

let longest_paths ~num_nodes ~edges ~sources =
  let neg_inf = min_int / 4 in
  let dist = Array.make num_nodes neg_inf in
  List.iter (fun s -> dist.(s) <- 0) sources;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= num_nodes + 1 do
    changed := false;
    incr rounds;
    let relax (u, v, w) =
      if dist.(u) > neg_inf && dist.(u) + w > dist.(v) then begin
        dist.(v) <- dist.(u) + w;
        changed := true
      end
    in
    List.iter relax edges
  done;
  if !changed then None
  else Some (Array.map (fun d -> if d <= neg_inf then min_int else d) dist)

let has_positive_cycle ~num_nodes ~edges =
  match longest_paths ~num_nodes ~edges ~sources:(List.init num_nodes (fun i -> i)) with
  | None -> true
  | Some _ -> false

let topological_order ~num_nodes ~succs =
  let indegree = Array.make num_nodes 0 in
  for v = 0 to num_nodes - 1 do
    List.iter (fun w -> indegree.(w) <- indegree.(w) + 1) (succs v)
  done;
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indegree;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.take queue in
    order := v :: !order;
    incr seen;
    let dec w =
      indegree.(w) <- indegree.(w) - 1;
      if indegree.(w) = 0 then Queue.add w queue
    in
    List.iter dec (succs v)
  done;
  if !seen <> num_nodes then invalid_arg "Graph_algos.topological_order: graph is cyclic";
  List.rev !order
