type t =
  | Load of string
  | Invariant of string
  | Const of float
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Cvt of t
  | Prev of string * int
  | Ref of string
  | Select of t * t * t

type stmt =
  | Def of string * t
  | Store of string * t

let ( + ) a b = Add (a, b)
let ( - ) a b = Sub (a, b)
let ( * ) a b = Mul (a, b)
let ( / ) a b = Div (a, b)
let load a = Load a
let inv a = Invariant a
let const c = Const c
let prev ?(distance = 1) name = Prev (name, distance)
let ref_ name = Ref name
let select c a b = Select (c, a, b)

exception Compile_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Compile_error s)) fmt

(* The value an operand contributes to the node being built. *)
type operand =
  | Op_node of int  (** value produced by a node of this iteration *)
  | Op_invariant  (** held in the general register file: no dependence *)
  | Op_prev of string * int  (** recurrence, resolved after all defs are known *)

type state = {
  builder : Ddg.Builder.t;
  cse : (t, operand) Hashtbl.t;
  defs : (string, int) Hashtbl.t;
  mutable deferred : (string * int * int) list;  (* def name, distance, consumer *)
  mutable seq : int;
}

let label st opcode =
  st.seq <- Stdlib.( + ) st.seq 1;
  let prefix =
    match opcode with
    | Opcode.Load _ -> "L"
    | Opcode.Store _ -> "S"
    | Opcode.Fadd | Opcode.Fsub -> "A"
    | Opcode.Fmul | Opcode.Fdiv -> "M"
    | Opcode.Fcvt -> "C"
    | Opcode.Fselect -> "X"
  in
  Printf.sprintf "%s%d" prefix st.seq

let add_operand_edge st ~dst = function
  | Op_node src -> Ddg.Builder.add_edge st.builder ~src ~dst ~distance:0 Ddg.Flow
  | Op_invariant -> ()
  | Op_prev (name, distance) -> st.deferred <- (name, distance, dst) :: st.deferred

let rec compile_expr st expr =
  match Hashtbl.find_opt st.cse expr with
  | Some operand -> operand
  | None ->
    let operand =
      match expr with
      | Invariant _ | Const _ -> Op_invariant
      | Prev (name, distance) ->
        if distance < 1 then error "prev(%s): distance must be >= 1" name;
        Op_prev (name, distance)
      | Ref name ->
        (match Hashtbl.find_opt st.defs name with
         | Some id -> Op_node id
         | None -> error "%s: used before its definition" name)
      | Load array ->
        let opcode = Opcode.Load (Opcode.Array array) in
        Op_node (Ddg.Builder.add_node st.builder opcode ~label:(label st opcode))
      | Add (a, b) -> binary st Opcode.Fadd a b
      | Sub (a, b) -> binary st Opcode.Fsub a b
      | Mul (a, b) -> binary st Opcode.Fmul a b
      | Div (a, b) -> binary st Opcode.Fdiv a b
      | Cvt a ->
        let operand_a = compile_expr st a in
        let id = Ddg.Builder.add_node st.builder Opcode.Fcvt ~label:(label st Opcode.Fcvt) in
        add_operand_edge st ~dst:id operand_a;
        Op_node id
      | Select (c, a, b) ->
        let operand_c = compile_expr st c in
        let operand_a = compile_expr st a in
        let operand_b = compile_expr st b in
        let id =
          Ddg.Builder.add_node st.builder Opcode.Fselect ~label:(label st Opcode.Fselect)
        in
        add_operand_edge st ~dst:id operand_c;
        add_operand_edge st ~dst:id operand_a;
        add_operand_edge st ~dst:id operand_b;
        Op_node id
    in
    Hashtbl.replace st.cse expr operand;
    operand

and binary st opcode a b =
  let operand_a = compile_expr st a in
  let operand_b = compile_expr st b in
  let id = Ddg.Builder.add_node st.builder opcode ~label:(label st opcode) in
  add_operand_edge st ~dst:id operand_a;
  add_operand_edge st ~dst:id operand_b;
  Op_node id

let compile_stmt st = function
  | Def (name, expr) ->
    if Hashtbl.mem st.defs name then error "def %s: bound twice" name;
    (match compile_expr st expr with
     | Op_node id -> Hashtbl.replace st.defs name id
     | Op_invariant -> error "def %s: loop-invariant right-hand side" name
     | Op_prev _ -> error "def %s: aliasing a recurrence is not supported" name)
  | Store (array, expr) ->
    let operand = compile_expr st expr in
    let opcode = Opcode.Store (Opcode.Array array) in
    let id = Ddg.Builder.add_node st.builder opcode ~label:(label st opcode) in
    add_operand_edge st ~dst:id operand

let compile ~name stmts =
  let st =
    {
      builder = Ddg.Builder.create ~name;
      cse = Hashtbl.create 16;
      defs = Hashtbl.create 16;
      deferred = [];
      seq = 0;
    }
  in
  List.iter (compile_stmt st) stmts;
  let resolve (def_name, distance, consumer) =
    match Hashtbl.find_opt st.defs def_name with
    | Some src -> Ddg.Builder.add_edge st.builder ~src ~dst:consumer ~distance Ddg.Flow
    | None -> error "prev(%s): no such definition" def_name
  in
  List.iter resolve st.deferred;
  let graph = Ddg.Builder.freeze st.builder in
  match Ddg.validate graph with
  | Ok () -> graph
  | Error msg -> error "%s: invalid graph: %s" name msg
