(** Graphviz export of dependence graphs. *)

(** [render g] is a DOT digraph; flow edges are solid and labelled with
    their distance when loop-carried, memory-ordering edges are dashed. *)
val render : Ddg.t -> string
