(** Removal of front-end spill code from a dependence graph.

    The paper derives its dependence graphs from optimized R3000
    assembler, which may contain spill code of its own: a store to a
    stack slot followed by loads from the same slot.  Such pairs are
    detected and removed, and the consumers of each spill load are
    re-attached directly to the producer of the spilled value (paper
    Section 5.1). *)

(** [run g] removes every spill store/load pair (loads and stores whose
    location is [Opcode.Spill _]) where the store has a unique flow
    producer.  Returns the cleaned graph and the number of memory
    operations removed. *)
val run : Ddg.t -> Ddg.t * int
