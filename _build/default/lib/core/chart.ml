open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_regalloc
open Ncdrf_sched

let render ?(width = 72) sched =
  let sched = Schedule.normalize sched in
  let ddg = sched.Schedule.ddg in
  let ii = Schedule.ii sched in
  let lifetimes = Lifetime.of_schedule sched in
  let span =
    List.fold_left (fun acc l -> max acc l.Lifetime.stop) 1 lifetimes
  in
  let scale = if span <= width then 1.0 else float_of_int width /. float_of_int span in
  let col t = int_of_float (float_of_int t *. scale) in
  let chart_width = col span + 1 in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "lifetimes of %s (II=%d, %d values%s)\n" (Ddg.name ddg) ii
       (List.length lifetimes)
       (if scale < 1.0 then Printf.sprintf ", 1 col = %.1f cycles" (1.0 /. scale) else ""));
  let dual = Config.num_clusters sched.Schedule.config >= 2 in
  let class_of l =
    if not dual then "  "
    else Format.asprintf "%a" Classify.pp (Classify.value_class sched l.Lifetime.producer)
  in
  let sorted =
    List.sort (fun a b -> compare (a.Lifetime.start, a.Lifetime.producer)
                 (b.Lifetime.start, b.Lifetime.producer))
      lifetimes
  in
  List.iter
    (fun l ->
      let node = Ddg.node ddg l.Lifetime.producer in
      let from = col l.Lifetime.start and until = max (col l.Lifetime.start + 1) (col l.Lifetime.stop) in
      let line = Bytes.make chart_width '.' in
      for i = from to min (until - 1) (chart_width - 1) do
        Bytes.set line i '='
      done;
      Bytes.set line from '#';
      Buffer.add_string buf
        (Printf.sprintf "%-6s %s %s [%3d,%3d) len %3d regs %d\n" node.Ddg.label (class_of l)
           (Bytes.to_string line) l.Lifetime.start l.Lifetime.stop (Lifetime.length l)
           (Lifetime.min_registers ~ii l)))
    sorted;
  (* MaxLive per kernel slot. *)
  let live =
    List.init ii (fun slot ->
        List.fold_left (fun acc l -> acc + Lifetime.live_at_slot l ~ii ~slot) 0 lifetimes)
  in
  Buffer.add_string buf
    (Printf.sprintf "MaxLive per kernel slot: [%s]  (peak %d)\n"
       (String.concat "; " (List.map string_of_int live))
       (List.fold_left max 0 live));
  Buffer.contents buf
