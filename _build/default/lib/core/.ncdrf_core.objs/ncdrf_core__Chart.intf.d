lib/core/chart.mli: Ncdrf_sched Schedule
