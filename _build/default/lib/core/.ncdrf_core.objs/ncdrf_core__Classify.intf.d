lib/core/classify.mli: Ddg Format Ncdrf_ir Ncdrf_sched Schedule
