lib/core/model.mli: Format
