lib/core/pipeline.mli: Config Ddg Model Ncdrf_ir Ncdrf_machine Ncdrf_sched Ncdrf_spill Schedule
