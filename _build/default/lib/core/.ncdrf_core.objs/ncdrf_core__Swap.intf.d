lib/core/swap.mli: Ncdrf_sched Schedule
