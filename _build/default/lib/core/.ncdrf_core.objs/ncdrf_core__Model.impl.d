lib/core/model.ml: Format Printf String
