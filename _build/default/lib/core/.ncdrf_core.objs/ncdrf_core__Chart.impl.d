lib/core/chart.ml: Buffer Bytes Classify Config Ddg Format Lifetime List Ncdrf_ir Ncdrf_machine Ncdrf_regalloc Ncdrf_sched Printf Schedule String
