lib/core/classify.ml: Array Ddg Format List Ncdrf_ir Ncdrf_machine Ncdrf_sched Opcode Printf Schedule
