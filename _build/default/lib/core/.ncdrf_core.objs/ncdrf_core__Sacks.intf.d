lib/core/sacks.mli: Lifetime Ncdrf_regalloc Ncdrf_sched Schedule
