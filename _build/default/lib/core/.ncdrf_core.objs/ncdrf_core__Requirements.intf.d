lib/core/requirements.mli: Alloc Lifetime Ncdrf_regalloc Ncdrf_sched Schedule
