lib/core/suite_stats.ml: Config Ddg List Mii Model Modulo Ncdrf_ir Ncdrf_machine Ncdrf_sched Pipeline Schedule
