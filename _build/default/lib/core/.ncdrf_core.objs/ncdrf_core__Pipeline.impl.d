lib/core/pipeline.ml: Ddg Mii Model Modulo Ncdrf_ir Ncdrf_sched Ncdrf_spill Requirements Schedule Spiller Swap Traffic
