lib/core/suite_stats.mli: Config Ddg Model Ncdrf_ir Ncdrf_machine
