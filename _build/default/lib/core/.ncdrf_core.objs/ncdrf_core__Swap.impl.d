lib/core/swap.ml: Array Config Ddg List Ncdrf_ir Ncdrf_machine Ncdrf_sched Opcode Requirements Schedule
