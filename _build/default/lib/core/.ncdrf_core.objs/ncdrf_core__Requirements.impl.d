lib/core/requirements.ml: Alloc Array Classify Config Lifetime List Ncdrf_machine Ncdrf_regalloc Ncdrf_sched Schedule
