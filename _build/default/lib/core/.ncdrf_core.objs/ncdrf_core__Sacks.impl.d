lib/core/sacks.ml: Alloc Array Config Ddg Lifetime List Ncdrf_ir Ncdrf_machine Ncdrf_regalloc Ncdrf_sched Schedule
