open Ncdrf_ir
open Ncdrf_sched
open Ncdrf_spill

type stats = {
  name : string;
  model : Model.t;
  mii : int;
  ii : int;
  stages : int;
  requirement : int;
  capacity : int option;
  fits : bool;
  spilled : int;
  added_memops : int;
  ii_bumps : int;
  memops_per_iter : int;
  density : float;
  swaps : int;
  schedule : Schedule.t;
}

let requirement_of_model model sched =
  match model with
  | Model.Ideal | Model.Unified -> (sched, Requirements.unified sched)
  | Model.Partitioned -> (sched, (Requirements.partitioned sched).Requirements.requirement)
  | Model.Swapped ->
    let swapped, _ = Swap.improve sched in
    (swapped, (Requirements.partitioned swapped).Requirements.requirement)

let count_swaps model before after =
  match model with
  | Model.Swapped ->
    (* Swaps applied = cluster assignments that changed. *)
    let n = Ddg.num_nodes before.Schedule.ddg in
    let changed = ref 0 in
    for v = 0 to n - 1 do
      if Schedule.cluster before v <> Schedule.cluster after v then incr changed
    done;
    !changed / 2
  | Model.Ideal | Model.Unified | Model.Partitioned -> 0

let run ~config ~model ?capacity ?victim ddg =
  let mii = Mii.mii config ddg in
  let finish ~final_ddg ~sched_before ~sched ~requirement ~fits ~spilled ~added_memops
      ~ii_bumps =
    {
      name = Ddg.name ddg;
      model;
      mii;
      ii = Schedule.ii sched;
      stages = Schedule.stages sched;
      requirement;
      capacity;
      fits;
      spilled;
      added_memops;
      ii_bumps;
      memops_per_iter = Traffic.memops_per_iteration final_ddg;
      density = Traffic.density sched;
      swaps = count_swaps model sched_before sched;
      schedule = sched;
    }
  in
  match capacity, model with
  | None, _ | Some _, Model.Ideal ->
    let raw = Modulo.schedule config ddg in
    let sched, requirement = requirement_of_model model raw in
    let fits =
      match capacity, model with
      | _, Model.Ideal | None, _ -> true
      | Some cap, _ -> requirement <= cap
    in
    finish ~final_ddg:ddg ~sched_before:raw ~sched ~requirement ~fits ~spilled:0
      ~added_memops:0 ~ii_bumps:0
  | Some cap, _ ->
    let outcome =
      Spiller.run ~config ~requirement:(requirement_of_model model) ~capacity:cap ?victim
        ddg
    in
    (* [sched_before] for swap counting: recover the pre-transform
       cluster assignment by comparing against a fresh requirement run
       is unnecessary — count against the raw schedule of the final
       graph. *)
    let raw = outcome.Spiller.schedule in
    finish ~final_ddg:outcome.Spiller.ddg ~sched_before:raw ~sched:outcome.Spiller.schedule
      ~requirement:outcome.Spiller.requirement ~fits:outcome.Spiller.fits
      ~spilled:outcome.Spiller.spilled ~added_memops:outcome.Spiller.added_memops
      ~ii_bumps:outcome.Spiller.ii_bumps
