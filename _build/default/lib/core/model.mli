(** The four register-file models evaluated by the paper (Section 5.2). *)

type t =
  | Ideal  (** infinite registers: the performance upper bound *)
  | Unified
      (** one multiported register file — equivalently a {e consistent}
          dual register file, which holds identical copies *)
  | Partitioned
      (** non-consistent dual register file, operations assigned to
          clusters by the scheduler alone *)
  | Swapped
      (** [Partitioned] plus the greedy post-scheduling swap pass *)

val all : t list
val to_string : t -> string

(** Inverse of {!to_string}; accepts any case. *)
val of_string : string -> (t, string) result

val pp : Format.formatter -> t -> unit
