(** Classification of values for a non-consistent dual register file
    (paper Section 4.1).

    A value is classified by the clusters of its {e consumers}: if all
    consumers are scheduled in one cluster it can live in that cluster's
    subfile only ([Local]); if consumers sit in both clusters it must be
    replicated in both subfiles ([Global]).  A value without consumers
    is local to its producer's cluster. *)

open Ncdrf_ir
open Ncdrf_sched

type t =
  | Global
  | Local of int  (** cluster index *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Class of the value produced by node [v].

    @raise Invalid_argument if [v] produces no value (is a store). *)
val value_class : Schedule.t -> int -> t

(** All value-producing nodes with their class, in node order. *)
val classify : Schedule.t -> (Ddg.node * t) list

(** Counts [(globals, locals per cluster)]. *)
val counts : Schedule.t -> int * int array
