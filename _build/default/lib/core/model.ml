type t =
  | Ideal
  | Unified
  | Partitioned
  | Swapped

let all = [ Ideal; Unified; Partitioned; Swapped ]

let to_string = function
  | Ideal -> "ideal"
  | Unified -> "unified"
  | Partitioned -> "partitioned"
  | Swapped -> "swapped"

let of_string s =
  match String.lowercase_ascii s with
  | "ideal" -> Ok Ideal
  | "unified" | "consistent" -> Ok Unified
  | "partitioned" -> Ok Partitioned
  | "swapped" -> Ok Swapped
  | other ->
    Error (Printf.sprintf "unknown model %S (expected ideal|unified|partitioned|swapped)" other)

let pp ppf t = Format.pp_print_string ppf (to_string t)
