(** Sacked register files (Llosa et al., CONPAR'94) — the asymmetric
    organization the paper cites as the other way to exploit the
    single-use property: a small multiported {e primary} file plus one
    or more {e sacks}, port-limited subfiles with one read and one write
    port each.

    Only values that are read exactly once (the dominant case in
    floating-point loops, paper Section 3.3) are eligible for a sack,
    and a sack can serve at most one read and accept at most one write
    per cycle: in a modulo-scheduled loop that means at most one
    resident value reads at any kernel slot.  Everything that does not
    fit the sacks stays in the primary file.

    This module implements a greedy sack assignment so the organization
    can be compared against the non-consistent dual register file on the
    same schedules (bench experiment [sacks]). *)

open Ncdrf_regalloc
open Ncdrf_sched

type config = {
  sacks : int;  (** number of sack subfiles *)
  read_ports : int;  (** per sack, 1 in the original design *)
  write_ports : int;  (** per sack, 1 in the original design *)
}

val default_config : config

type assignment = {
  primary_requirement : int;
      (** registers the multiported primary file still needs *)
  sack_requirements : int array;  (** registers per sack *)
  placed : int;  (** single-use values moved into sacks *)
  eligible : int;  (** single-use values in the schedule *)
  values : int;  (** all values *)
}

(** Values with exactly one flow consumer. *)
val single_use : Schedule.t -> Lifetime.t list

(** Greedily move eligible values (longest lifetime first) into sacks,
    respecting per-slot port limits; allocate each sack and the
    remaining primary file with the standard cyclic allocator. *)
val assign : ?config:config -> Schedule.t -> assignment
