(** Greedy post-scheduling operation swapping (paper Sections 4.1 and
    5.2).

    Two operations can swap clusters when they use the same kind of
    functional unit and occupy the same kernel cycle (the same slot
    modulo II), which keeps the schedule resource-valid by symmetry.
    Swapping aims to (1) turn global values into locals and (2) balance
    the two subfiles.

    The algorithm is the paper's: repeatedly pick the candidate pair
    whose swap yields the largest reduction of the register estimate —
    the per-cluster MaxLive lower bound, because running the full
    allocator inside the search loop would be too costly — and stop when
    no pair improves it.  The [Exact] estimate (full allocation) is
    provided as an ablation. *)

open Ncdrf_sched

type estimate =
  | Max_live  (** the paper's lower-bound estimate *)
  | Exact  (** full joint allocation — slower, ablation only *)

type stats = {
  swaps : int;  (** swaps applied *)
  initial_cost : int;  (** estimate before the pass *)
  final_cost : int;  (** estimate after the pass *)
}

(** All swappable pairs of the schedule: distinct clusters, same
    functional-unit class, same kernel slot. *)
val candidates : Schedule.t -> (int * int) list

(** Run the greedy pass.  Single-cluster schedules are returned
    unchanged.  [max_passes] (default [1000]) bounds the loop; the
    estimate strictly decreases each swap, so it rarely binds. *)
val improve : ?estimate:estimate -> ?max_passes:int -> Schedule.t -> Schedule.t * stats
