(** ASCII lifetime charts.

    Renders the space-time picture behind the register-requirement
    numbers: one row per value, bars spanning issue-to-last-use, the
    value's class (GL / LO / RO) under the dual-file model, and a
    per-kernel-slot MaxLive footer.  Used by the examples and the CLI to
    make schedules inspectable. *)

open Ncdrf_sched

(** [render sched] draws every value's lifetime against absolute cycles
    of the first iteration.  [width] caps the chart width (default 72);
    longer spans are scaled down. *)
val render : ?width:int -> Schedule.t -> string
