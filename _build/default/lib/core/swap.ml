open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched

type estimate =
  | Max_live
  | Exact

type stats = {
  swaps : int;
  initial_cost : int;
  final_cost : int;
}

let candidates sched =
  let ddg = sched.Schedule.ddg in
  let ii = Schedule.ii sched in
  let nodes = Array.of_list (Ddg.nodes ddg) in
  let n = Array.length nodes in
  let pairs = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = nodes.(i) and b = nodes.(j) in
      let same_class = Opcode.fu_class a.Ddg.opcode = Opcode.fu_class b.Ddg.opcode in
      let same_slot =
        (Schedule.cycle sched a.Ddg.id - Schedule.cycle sched b.Ddg.id) mod ii = 0
      in
      let different_cluster =
        Schedule.cluster sched a.Ddg.id <> Schedule.cluster sched b.Ddg.id
      in
      if same_class && same_slot && different_cluster then
        pairs := (a.Ddg.id, b.Ddg.id) :: !pairs
    done
  done;
  List.rev !pairs

let cost ~estimate sched =
  match estimate with
  | Max_live -> Requirements.max_live_cost sched
  | Exact -> (Requirements.partitioned sched).Requirements.requirement

let improve ?(estimate = Max_live) ?(max_passes = 1000) sched =
  if Config.num_clusters sched.Schedule.config < 2 then
    (sched, { swaps = 0; initial_cost = cost ~estimate sched; final_cost = cost ~estimate sched })
  else begin
    let initial_cost = cost ~estimate sched in
    let rec loop sched current swaps passes =
      if passes >= max_passes then (sched, current, swaps)
      else begin
        (* The candidate set is invariant under swapping (cluster
           exchange preserves class/slot), but recompute for clarity of
           invariants; graphs are small. *)
        let best =
          List.fold_left
            (fun acc (a, b) ->
              let swapped = Schedule.swap_clusters sched a b in
              let c = cost ~estimate swapped in
              match acc with
              | Some (_, best_cost) when best_cost <= c -> acc
              | Some _ | None -> if c < current then Some (swapped, c) else acc)
            None (candidates sched)
        in
        match best with
        | Some (swapped, c) -> loop swapped c (swaps + 1) (passes + 1)
        | None -> (sched, current, swaps)
      end
    in
    let sched, final_cost, swaps = loop sched initial_cost 0 0 in
    (sched, { swaps; initial_cost; final_cost })
  end
