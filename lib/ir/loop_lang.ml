exception Parse_error of { file : string option; line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { file = None; line; message })) fmt

let () =
  Printexc.register_printer (function
    | Parse_error { file; line; message } ->
      Some
        (Printf.sprintf "Loop_lang.Parse_error (%sline %d: %s)"
           (match file with None -> "" | Some f -> f ^ ", ")
           line message)
    | _ -> None)

(* Map this front end's exceptions into the typed taxonomy so the suite
   boundary classifies them as [Parse] rather than [Internal]. *)
let () =
  Ncdrf_error.Error.register_classifier (function
    | Parse_error { file; line; message } ->
      Some
        (Ncdrf_error.Error.make ?loop:file ~stage:"parse" Ncdrf_error.Error.Parse
           (Printf.sprintf "%sline %d: %s"
              (match file with None -> "" | Some f -> f ^ ", ")
              line message))
    | Expr.Compile_error message ->
      Some (Ncdrf_error.Error.make ~stage:"parse" Ncdrf_error.Error.Parse message)
    | _ -> None)

type token =
  | Ident of string
  | Number of float
  | Invariant of string
  | Kw_loop
  | Kw_prev
  | Kw_cvt
  | Kw_select
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Comma
  | Equal
  | Plus
  | Minus
  | Star
  | Slash

let token_to_string = function
  | Ident s -> s
  | Number f -> string_of_float f
  | Invariant s -> "$" ^ s
  | Kw_loop -> "loop"
  | Kw_prev -> "prev"
  | Kw_cvt -> "cvt"
  | Kw_select -> "select"
  | Lparen -> "("
  | Rparen -> ")"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Comma -> ","
  | Equal -> "="
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Slash -> "/"

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let is_digit c = c >= '0' && c <= '9'

(* Position of a "--" comment marker, if any. *)
let find_comment text =
  let n = String.length text in
  let rec scan i =
    if i + 1 >= n then None
    else if text.[i] = '-' && text.[i + 1] = '-' then Some i
    else scan (i + 1)
  in
  scan 0

(* Strip a trailing "-- comment" and tokenize one line. *)
let tokenize_line ~line text =
  let text =
    match find_comment text with
    | Some i -> String.sub text 0 i
    | None -> text
  in
  let n = String.length text in
  let tokens = ref [] in
  let push t = tokens := t :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = text.[!i] in
    if c = ' ' || c = '\t' || c = '\r' then incr i
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && (is_digit text.[!j] || text.[!j] = '.') do incr j done;
      let lexeme = String.sub text !i (!j - !i) in
      (match float_of_string_opt lexeme with
       | Some f -> push (Number f)
       | None -> fail line "bad number %S" lexeme);
      i := !j
    end
    else if is_ident_char c then begin
      let j = ref !i in
      while !j < n && is_ident_char text.[!j] do incr j done;
      let lexeme = String.sub text !i (!j - !i) in
      (match lexeme with
       | "loop" -> push Kw_loop
       | "prev" -> push Kw_prev
       | "cvt" -> push Kw_cvt
       | "select" -> push Kw_select
       | _ -> push (Ident lexeme));
      i := !j
    end
    else if c = '$' then begin
      let j = ref (!i + 1) in
      while !j < n && is_ident_char text.[!j] do incr j done;
      if !j = !i + 1 then fail line "expected identifier after '$'";
      push (Invariant (String.sub text (!i + 1) (!j - !i - 1)));
      i := !j
    end
    else begin
      (match c with
       | '(' -> push Lparen
       | ')' -> push Rparen
       | '[' -> push Lbracket
       | ']' -> push Rbracket
       | ',' -> push Comma
       | '=' -> push Equal
       | '+' -> push Plus
       | '-' -> push Minus
       | '*' -> push Star
       | '/' -> push Slash
       | _ -> fail line "unexpected character %C" c);
      incr i
    end
  done;
  List.rev !tokens

(* Recursive-descent parser over one line's token list. *)
type cursor = { mutable rest : token list; line : int }

let peek cur = match cur.rest with [] -> None | t :: _ -> Some t

let advance cur =
  match cur.rest with
  | [] -> fail cur.line "unexpected end of line"
  | t :: rest ->
    cur.rest <- rest;
    t

let expect cur tok =
  let got = advance cur in
  if got <> tok then
    fail cur.line "expected %S but found %S" (token_to_string tok) (token_to_string got)

let rec parse_expr cur =
  let lhs = parse_term cur in
  parse_expr_rest cur lhs

and parse_expr_rest cur lhs =
  match peek cur with
  | Some Plus ->
    ignore (advance cur);
    let rhs = parse_term cur in
    parse_expr_rest cur (Expr.Add (lhs, rhs))
  | Some Minus ->
    ignore (advance cur);
    let rhs = parse_term cur in
    parse_expr_rest cur (Expr.Sub (lhs, rhs))
  | _ -> lhs

and parse_term cur =
  let lhs = parse_factor cur in
  parse_term_rest cur lhs

and parse_term_rest cur lhs =
  match peek cur with
  | Some Star ->
    ignore (advance cur);
    let rhs = parse_factor cur in
    parse_term_rest cur (Expr.Mul (lhs, rhs))
  | Some Slash ->
    ignore (advance cur);
    let rhs = parse_factor cur in
    parse_term_rest cur (Expr.Div (lhs, rhs))
  | _ -> lhs

and parse_factor cur =
  match advance cur with
  | Number f -> Expr.Const f
  | Invariant s -> Expr.Invariant s
  | Minus ->
    (* Unary minus: compile 0 - e as a subtraction. *)
    let e = parse_factor cur in
    Expr.Sub (Expr.Const 0.0, e)
  | Kw_cvt ->
    expect cur Lparen;
    let e = parse_expr cur in
    expect cur Rparen;
    Expr.Cvt e
  | Kw_select ->
    expect cur Lparen;
    let c = parse_expr cur in
    expect cur Comma;
    let a = parse_expr cur in
    expect cur Comma;
    let b = parse_expr cur in
    expect cur Rparen;
    Expr.Select (c, a, b)
  | Kw_prev ->
    expect cur Lparen;
    let name =
      match advance cur with
      | Ident s -> s
      | t -> fail cur.line "prev: expected scalar name, found %S" (token_to_string t)
    in
    expect cur Comma;
    let d =
      match advance cur with
      | Number f when Float.is_integer f -> int_of_float f
      | t -> fail cur.line "prev: expected integer distance, found %S" (token_to_string t)
    in
    expect cur Rparen;
    Expr.Prev (name, d)
  | Lparen ->
    let e = parse_expr cur in
    expect cur Rparen;
    e
  | Ident s ->
    (match peek cur with
     | Some Lbracket ->
       ignore (advance cur);
       (match advance cur with
        | Ident "i" -> ()
        | t -> fail cur.line "array index must be 'i', found %S" (token_to_string t));
       expect cur Rbracket;
       Expr.Load s
     | _ -> Expr.Ref s)
  | t -> fail cur.line "unexpected token %S" (token_to_string t)

let parse_stmt ~line tokens =
  let cur = { rest = tokens; line } in
  let stmt =
    match advance cur with
    | Ident name ->
      (match peek cur with
       | Some Lbracket ->
         ignore (advance cur);
         (match advance cur with
          | Ident "i" -> ()
          | t -> fail line "store index must be 'i', found %S" (token_to_string t));
         expect cur Rbracket;
         expect cur Equal;
         let e = parse_expr cur in
         Expr.Store (name, e)
       | _ ->
         expect cur Equal;
         let e = parse_expr cur in
         Expr.Def (name, e))
    | t -> fail line "statement must start with an identifier, found %S" (token_to_string t)
  in
  (match cur.rest with
   | [] -> ()
   | t :: _ -> fail line "trailing tokens starting at %S" (token_to_string t));
  stmt

let parse_string text =
  let lines = String.split_on_char '\n' text in
  let loops = ref [] in
  let current = ref None in
  let finish () =
    match !current with
    | None -> ()
    | Some (name, rev_stmts) ->
      loops := Expr.compile ~name (List.rev rev_stmts) :: !loops;
      current := None
  in
  let handle line_no raw =
    match tokenize_line ~line:line_no raw with
    | [] -> ()
    | [ Kw_loop; Ident name ] ->
      finish ();
      Ncdrf_fault.Fault.point ~stage:"parse" ~key:name;
      current := Some (name, [])
    | Kw_loop :: _ -> fail line_no "expected: loop <name>"
    | tokens ->
      (match !current with
       | None -> fail line_no "statement outside of a loop block"
       | Some (name, stmts) ->
         current := Some (name, parse_stmt ~line:line_no tokens :: stmts))
  in
  List.iteri (fun i raw -> handle (i + 1) raw) lines;
  finish ();
  List.rev !loops

let parse_one text =
  match parse_string text with
  | [ g ] -> g
  | gs -> fail 0 "expected exactly one loop, found %d" (List.length gs)

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let content =
    try really_input_string ic len
    with e ->
      close_in ic;
      raise e
  in
  close_in ic;
  try parse_string content
  with Parse_error { file = None; line; message } ->
    raise (Parse_error { file = Some path; line; message })
