(** Data dependence graphs of inner-loop bodies.

    A node is one operation of the loop body; an edge [(src, dst)] with
    distance [d] states that the instance of [dst] in iteration [i]
    depends on the instance of [src] in iteration [i - d].  Distance 0
    edges are intra-iteration dependences; distance >= 1 edges are
    loop-carried (recurrences).

    Edges come in two kinds:
    - {!kind.Flow}: [dst] reads the register value produced by [src];
      these define the consumers used for lifetime computation.
    - {!kind.Mem}: ordering-only dependence (e.g. a spill load must
      issue after the corresponding spill store completes); no register
      value flows along the edge. *)

type kind =
  | Flow
  | Mem

type node = {
  id : int;  (** dense index, [0 .. num_nodes - 1] *)
  opcode : Opcode.t;
  label : string;  (** human-readable name, e.g. ["M3"] *)
}

type edge = {
  src : int;
  dst : int;
  distance : int;  (** iteration distance, >= 0 *)
  kind : kind;
}

type t

val name : t -> string
val num_nodes : t -> int
val node : t -> int -> node
val nodes : t -> node list
val edges : t -> edge list
val num_edges : t -> int

(** Outgoing edges of a node. *)
val succs : t -> int -> edge list

(** Incoming edges of a node. *)
val preds : t -> int -> edge list

(** Flow-edge consumers of a node's value. *)
val consumers : t -> int -> edge list

val iter_nodes : t -> f:(node -> unit) -> unit
val fold_nodes : t -> init:'a -> f:('a -> node -> 'a) -> 'a

(** Counts of operations per functional-unit class. *)
val class_counts : t -> adds:int ref -> muls:int ref -> mems:int ref -> unit

val num_loads : t -> int
val num_stores : t -> int
val num_memory_ops : t -> int

(** Structural checks: edge endpoints in range, distances non-negative,
    flow edges only out of value-producing nodes, every cycle carries a
    positive total distance (otherwise the loop is unschedulable). *)
val validate : t -> (unit, string) result

(** Builder for dependence graphs.  Nodes receive dense ids in creation
    order. *)
module Builder : sig
  type graph := t
  type t

  val create : name:string -> t

  (** [add_node b opcode ~label] returns the id of the new node. *)
  val add_node : t -> Opcode.t -> label:string -> int

  (** [add_edge b ~src ~dst ~distance kind]

      @raise Invalid_argument on out-of-range ids or negative distance. *)
  val add_edge : t -> src:int -> dst:int -> distance:int -> kind -> unit

  val num_nodes : t -> int
  val freeze : t -> graph
end

(** Functional update used by the spiller: a copy of the graph minus the
    edges matching [drop_edge], plus [add_nodes] (the [i]-th new node gets
    id [num_nodes t + i]) and [add_edges] (which may reference new ids). *)
val transform :
  t ->
  ?drop_edge:(edge -> bool) ->
  ?add_nodes:(Opcode.t * string) list ->
  ?add_edges:edge list ->
  unit ->
  t

(** Functional node removal used by spill-pattern cleanup: keep only the
    nodes satisfying [keep]; edges incident to dropped nodes are dropped
    too, [add_edges] (in {e old} ids, between kept nodes) are added, and
    ids are re-densified.  Returns the new graph and the old-id -> new-id
    map (-1 for dropped nodes). *)
val remove_nodes :
  t ->
  keep:(node -> bool) ->
  ?add_edges:edge list ->
  unit ->
  t * int array

(** Hex content digest of the graph (name, opcodes, labels, edges in
    adjacency order), memoized on first use.  Two graphs built by the
    same construction sequence share a digest; any change to a node,
    label, edge or the name changes it.  This is the structural half of
    the compile-cache key (see [Ncdrf_core.Artifact]). *)
val digest : t -> string

val pp_stats : Format.formatter -> t -> unit
