type kind =
  | Flow
  | Mem

type node = {
  id : int;
  opcode : Opcode.t;
  label : string;
}

type edge = {
  src : int;
  dst : int;
  distance : int;
  kind : kind;
}

type t = {
  name : string;
  node_arr : node array;
  succ_arr : edge list array;
  pred_arr : edge list array;
  edge_count : int;
  mutable digest_memo : string option;
      (* computed lazily by [digest]; graphs are otherwise immutable *)
}

let name g = g.name
let num_nodes g = Array.length g.node_arr

let node g i =
  if i < 0 || i >= num_nodes g then
    invalid_arg (Printf.sprintf "Ddg.node: id %d out of range" i);
  g.node_arr.(i)

let nodes g = Array.to_list g.node_arr
let succs g i = g.succ_arr.(i)
let preds g i = g.pred_arr.(i)
let num_edges g = g.edge_count

let edges g =
  Array.fold_right (fun es acc -> es @ acc) g.succ_arr []

let consumers g i =
  List.filter (fun e -> e.kind = Flow) g.succ_arr.(i)

let iter_nodes g ~f = Array.iter f g.node_arr
let fold_nodes g ~init ~f = Array.fold_left f init g.node_arr

let class_counts g ~adds ~muls ~mems =
  let count n =
    match Opcode.fu_class n.opcode with
    | Opcode.Adder -> incr adds
    | Opcode.Multiplier -> incr muls
    | Opcode.Memory -> incr mems
  in
  iter_nodes g ~f:count

let num_loads g =
  fold_nodes g ~init:0 ~f:(fun acc n -> if Opcode.is_load n.opcode then acc + 1 else acc)

let num_stores g =
  fold_nodes g ~init:0 ~f:(fun acc n -> if Opcode.is_store n.opcode then acc + 1 else acc)

let num_memory_ops g = num_loads g + num_stores g

(* A cycle whose edges all have distance 0 cannot be scheduled: detect by
   DFS over the distance-0 subgraph. *)
let has_zero_distance_cycle g =
  let n = num_nodes g in
  (* 0 = unvisited, 1 = on stack, 2 = done *)
  let state = Array.make n 0 in
  let rec visit i =
    if state.(i) = 1 then true
    else if state.(i) = 2 then false
    else begin
      state.(i) <- 1;
      let follow e = e.distance = 0 && visit e.dst in
      let cyclic = List.exists follow g.succ_arr.(i) in
      state.(i) <- 2;
      cyclic
    end
  in
  let rec any i = i < n && (visit i || any (i + 1)) in
  any 0

let validate g =
  let n = num_nodes g in
  let problem = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !problem = None then problem := Some s) fmt in
  let check_node i nd = if nd.id <> i then fail "node %d has stale id %d" i nd.id in
  Array.iteri check_node g.node_arr;
  let check_edge e =
    if e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n then
      fail "edge %d->%d out of range" e.src e.dst;
    if e.distance < 0 then fail "edge %d->%d has negative distance" e.src e.dst;
    if e.kind = Flow && not (Opcode.produces_value g.node_arr.(e.src).opcode) then
      fail "flow edge out of non-value node %s" g.node_arr.(e.src).label
  in
  Array.iter (List.iter check_edge) g.succ_arr;
  if !problem = None && has_zero_distance_cycle g then
    fail "graph has a zero-distance cycle";
  match !problem with
  | None -> Ok ()
  | Some msg -> Error msg

module Builder = struct
  type graph = t

  type t = {
    bname : string;
    mutable rev_nodes : node list;
    mutable rev_edges : edge list;
    mutable count : int;
  }

  let create ~name = { bname = name; rev_nodes = []; rev_edges = []; count = 0 }

  let add_node b opcode ~label =
    let id = b.count in
    b.rev_nodes <- { id; opcode; label } :: b.rev_nodes;
    b.count <- b.count + 1;
    id

  let add_edge b ~src ~dst ~distance kind =
    if src < 0 || src >= b.count || dst < 0 || dst >= b.count then
      invalid_arg (Printf.sprintf "Ddg.Builder.add_edge: %d->%d out of range" src dst);
    if distance < 0 then invalid_arg "Ddg.Builder.add_edge: negative distance";
    b.rev_edges <- { src; dst; distance; kind } :: b.rev_edges

  let num_nodes b = b.count

  let freeze b : graph =
    let node_arr = Array.of_list (List.rev b.rev_nodes) in
    let n = Array.length node_arr in
    let succ_arr = Array.make n [] in
    let pred_arr = Array.make n [] in
    let edge_count = List.length b.rev_edges in
    let install e =
      succ_arr.(e.src) <- e :: succ_arr.(e.src);
      pred_arr.(e.dst) <- e :: pred_arr.(e.dst)
    in
    List.iter install b.rev_edges;
    { name = b.bname; node_arr; succ_arr; pred_arr; edge_count; digest_memo = None }
end

(* Content digest used as a compile-cache key.  The encoding is an
   injective serialization of everything that influences compilation:
   name, opcodes (with explicit location tags, so an array named
   "spill.0" cannot collide with spill slot 0), labels, and the edge
   lists in adjacency order.  Graphs built by identical construction
   sequences serialize identically; the memo is safe because graphs are
   immutable once frozen. *)
let digest g =
  match g.digest_memo with
  | Some d -> d
  | None ->
    let buf = Buffer.create 256 in
    let add = Buffer.add_string buf in
    let add_int i =
      add (string_of_int i);
      Buffer.add_char buf ';'
    in
    let add_location = function
      | Opcode.Array a ->
        add "A";
        add a;
        Buffer.add_char buf '\x00'
      | Opcode.Spill k ->
        add "K";
        add_int k
    in
    let add_opcode = function
      | Opcode.Fadd -> add "+"
      | Opcode.Fsub -> add "-"
      | Opcode.Fmul -> add "*"
      | Opcode.Fdiv -> add "/"
      | Opcode.Fcvt -> add "c"
      | Opcode.Fselect -> add "?"
      | Opcode.Load loc ->
        add "L";
        add_location loc
      | Opcode.Store loc ->
        add "S";
        add_location loc
    in
    add g.name;
    Buffer.add_char buf '\x00';
    add_int (num_nodes g);
    Array.iter
      (fun nd ->
        add_opcode nd.opcode;
        add nd.label;
        Buffer.add_char buf '\x00')
      g.node_arr;
    let add_edge e =
      add_int e.src;
      add_int e.dst;
      add_int e.distance;
      add (match e.kind with Flow -> "f" | Mem -> "m")
    in
    Array.iter (List.iter add_edge) g.succ_arr;
    let d = Digest.to_hex (Digest.string (Buffer.contents buf)) in
    g.digest_memo <- Some d;
    d

let transform g ?(drop_edge = fun _ -> false) ?(add_nodes = []) ?(add_edges = []) () =
  let b = Builder.create ~name:g.name in
  iter_nodes g ~f:(fun nd -> ignore (Builder.add_node b nd.opcode ~label:nd.label));
  let copy (op, label) = ignore (Builder.add_node b op ~label) in
  List.iter copy add_nodes;
  let keep e =
    if not (drop_edge e) then
      Builder.add_edge b ~src:e.src ~dst:e.dst ~distance:e.distance e.kind
  in
  Array.iter (List.iter keep) g.succ_arr;
  let extra e = Builder.add_edge b ~src:e.src ~dst:e.dst ~distance:e.distance e.kind in
  List.iter extra add_edges;
  Builder.freeze b

let remove_nodes g ~keep ?(add_edges = []) () =
  let n = num_nodes g in
  let remap = Array.make n (-1) in
  let b = Builder.create ~name:g.name in
  let copy nd =
    if keep nd then remap.(nd.id) <- Builder.add_node b nd.opcode ~label:nd.label
  in
  iter_nodes g ~f:copy;
  let translate e =
    let src = remap.(e.src) and dst = remap.(e.dst) in
    if src >= 0 && dst >= 0 then
      Builder.add_edge b ~src ~dst ~distance:e.distance e.kind
  in
  Array.iter (List.iter translate) g.succ_arr;
  List.iter translate add_edges;
  (Builder.freeze b, remap)

let pp_stats ppf g =
  let adds = ref 0 and muls = ref 0 and mems = ref 0 in
  class_counts g ~adds ~muls ~mems;
  Format.fprintf ppf "%s: %d ops (%d add, %d mul, %d mem), %d deps" g.name
    (num_nodes g) !adds !muls !mems (num_edges g)
