(** Textual front end for the loop-body language.

    Syntax (one statement per line; [--] starts a comment):

    {v
    loop <name>
      s    = x[i] * $r + prev(s, 1)   -- scalar definition (recurrence)
      y[i] = s + 2.5                  -- array store
    v}

    Lexical elements:
    - [x[i]] is a streaming array reference (load on the right-hand side
      of [=], store target on the left);
    - [$r] is a loop invariant;
    - a bare identifier refers to a scalar defined earlier in the body;
    - [prev(name, d)] reads the scalar [name] from [d] iterations ago;
    - [cvt(e)] is an int<->float conversion;
    - [select(p, a, b)] is an IF-converted conditional (value of [a]
      when [p] is non-negative, else [b]);
    - operators [+ - * /] with usual precedence and parentheses.

    A file may contain several [loop] blocks. *)

(** [file] is [None] when parsing from a string; {!parse_file} fills in
    the path so the message names its origin. *)
exception Parse_error of { file : string option; line : int; message : string }

(** Parse all loops in a string.

    @raise Parse_error on syntax errors.
    @raise Expr.Compile_error on semantic errors (e.g. unknown scalars). *)
val parse_string : string -> Ddg.t list

(** Parse exactly one loop. *)
val parse_one : string -> Ddg.t

(** Like {!parse_string} on the file's contents; a [Parse_error] gains
    [file = Some path]. *)
val parse_file : string -> Ddg.t list
