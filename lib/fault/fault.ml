module Error = Ncdrf_error.Error
module Telemetry = Ncdrf_telemetry.Telemetry

type spec = {
  stage : string;
  loop_src : string option;
  loop_re : Str.regexp option;
  every : int;
}

let stages = [ "parse"; "mii"; "schedule"; "alloc"; "spill"; "cache" ]

let spec_to_string s =
  String.concat ","
    (("stage=" ^ s.stage)
     :: (match s.loop_src with None -> [] | Some r -> [ "loop=" ^ r ])
     @ (if s.every = 1 then [] else [ Printf.sprintf "every=%d" s.every ]))

let parse text =
  let parts = String.split_on_char ',' text in
  let rec build acc = function
    | [] -> Ok acc
    | part :: rest ->
      (match String.index_opt part '=' with
       | None -> Result.Error (Printf.sprintf "expected key=value, got %S" part)
       | Some i ->
         let key = String.sub part 0 i in
         let value = String.sub part (i + 1) (String.length part - i - 1) in
         (match key with
          | "stage" ->
            if List.mem value stages then build { acc with stage = value } rest
            else
              Result.Error
                (Printf.sprintf "unknown stage %S (expected one of %s)" value
                   (String.concat ", " stages))
          | "loop" ->
            (match Str.regexp value with
             | re -> build { acc with loop_src = Some value; loop_re = Some re } rest
             | exception Failure msg ->
               Result.Error (Printf.sprintf "bad loop regex %S: %s" value msg))
          | "every" ->
            (match int_of_string_opt value with
             | Some n when n >= 1 -> build { acc with every = n } rest
             | Some _ | None ->
               Result.Error (Printf.sprintf "every expects a positive integer, got %S" value))
          | k -> Result.Error (Printf.sprintf "unknown key %S (stage/loop/every)" k)))
  in
  match build { stage = ""; loop_src = None; loop_re = None; every = 1 } parts with
  | Result.Error _ as e -> e
  | Ok spec -> if spec.stage = "" then Result.Error "spec must name a stage" else Ok spec

(* The armed spec.  [Str] matching mutates global match registers, so
   matches take [match_lock]; arming is test/CI-only, the armed path is
   never the hot path. *)
let current : spec option Atomic.t = Atomic.make None
let match_lock = Mutex.create ()

let arm_spec spec = Atomic.set current (Some spec)

let arm text =
  match parse text with
  | Ok spec ->
    arm_spec spec;
    Ok ()
  | Result.Error _ as e -> e

let disarm () = Atomic.set current None
let armed () = Atomic.get current <> None

let full_match re key =
  Mutex.lock match_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock match_lock)
    (fun () -> Str.string_match re key 0 && Str.match_end () = String.length key)

let spec_selects spec ~stage ~key =
  String.equal spec.stage stage
  && (match spec.loop_re with None -> true | Some re -> full_match re key)
  && (spec.every = 1 || Hashtbl.hash (stage, key) mod spec.every = 0)

let selects ~stage ~key =
  match Atomic.get current with
  | None -> false
  | Some spec -> spec_selects spec ~stage ~key

let point ~stage ~key =
  match Atomic.get current with
  | None -> ()
  | Some spec ->
    if spec_selects spec ~stage ~key then begin
      Telemetry.incr "faults.injected";
      Error.error ~loop:key ~stage Error.Injected
        (Printf.sprintf "injected fault (%s)" (spec_to_string spec))
    end
