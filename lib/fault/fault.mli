(** Deterministic fault injection for the compile pipeline.

    Robustness code that only runs when something breaks is dead code
    until the day it matters.  Each pipeline stage compiles in a
    {!point}; arming a {!spec} makes matching points raise a classified
    {!Ncdrf_error.Error.Injected} failure, so tests and CI can prove —
    on demand, deterministically — that a parser / scheduler / spiller
    / cache fault is contained to its point, counted, reported, and
    leaves the rest of the sweep byte-identical to an unfaulted run
    minus the faulted points.

    Disarmed (the default), a point is one atomic load — nothing to
    measure.  Selection is a pure function of [(stage, key)], never of
    execution order, so which points fire is identical whatever the
    worker count or scheduling interleaving:

    - [stage=<name>] (required) names the stage to fault: one of the
      {!stages} compiled into the pipeline;
    - [loop=<regex>] (optional) restricts to keys — loop names —
      matching the anchored OCaml [Str] regex in full;
    - [every=N] (optional, default 1) fires only on keys whose hash is
      [0 (mod N)]: a deterministic, order-independent 1-in-N sample
      (it is {e not} a sequential counter — that would make the faulted
      set depend on arrival order under a worker pool). *)

(** A parsed injection spec. *)
type spec

(** Stages with compiled-in points:
    ["parse"], ["mii"], ["schedule"], ["alloc"], ["spill"], ["cache"]. *)
val stages : string list

(** Parse ["stage=<name>,loop=<regex>,every=<N>"]. *)
val parse : string -> (spec, string) result

val spec_to_string : spec -> string

(** Install a spec; replaces any previously armed one. *)
val arm_spec : spec -> unit

(** [parse] + [arm_spec]. *)
val arm : string -> (unit, string) result

val disarm : unit -> unit
val armed : unit -> bool

(** The hook compiled into each stage: raises
    [Ncdrf_error.Error.Error { category = Injected; ... }] iff an armed
    spec selects [(stage, key)], bumping the ["faults.injected"]
    telemetry counter.  [key] is the loop name.  No-op (one atomic
    load) when disarmed. *)
val point : stage:string -> key:string -> unit

(** True iff an armed spec would fire at [(stage, key)] — the selection
    predicate without the raise, for tests that predict the faulted
    set. *)
val selects : stage:string -> key:string -> bool
