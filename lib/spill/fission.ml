open Ncdrf_ir

type split = {
  first : Ddg.t;
  second : Ddg.t;
  cut_values : int;
  added_memops : int;
}

(* Build one piece: the member nodes, their internal edges, a store for
   every member value consumed outside, and a load for every outside
   value the members consume.

   Invariant: a cross-cut flow edge of distance [d] reconnects through a
   load of the {e distance-d view} of the producer's scratch stream.
   The producer stores iteration [i]'s value as element [i] of
   [fis.src]; a consumer at distance [d] needs element [i - d], a
   different location than the distance-0 consumers read.  The IR's
   array operands carry no affine indexing, so the offset is encoded in
   the array identity instead: [fis.src] is the distance-0 view and
   [fis.src.dD] the distance-D view of the same stream.  Loads therefore
   dedup per (producer, distance) — one load per view, shared by every
   consumer at that distance — and reconnection edges stay distance 0,
   the offset having folded into the indexing. *)
let build_piece ~name ~suffix ddg ~member =
  let n = Ddg.num_nodes ddg in
  let b = Ddg.Builder.create ~name:(name ^ suffix) in
  let remap = Array.make n (-1) in
  Ddg.iter_nodes ddg ~f:(fun node ->
      if member node.Ddg.id then
        remap.(node.Ddg.id) <- Ddg.Builder.add_node b node.Ddg.opcode ~label:node.Ddg.label);
  let added_memops = ref 0 in
  (* Internal edges. *)
  List.iter
    (fun e ->
      if remap.(e.Ddg.src) >= 0 && remap.(e.Ddg.dst) >= 0 then
        Ddg.Builder.add_edge b ~src:remap.(e.Ddg.src) ~dst:remap.(e.Ddg.dst)
          ~distance:e.Ddg.distance e.Ddg.kind)
    (Ddg.edges ddg);
  (* Outgoing cut values: store them. *)
  Ddg.iter_nodes ddg ~f:(fun node ->
      let v = node.Ddg.id in
      if member v && Opcode.produces_value node.Ddg.opcode then begin
        let escapes =
          List.exists (fun e -> not (member e.Ddg.dst)) (Ddg.consumers ddg v)
        in
        if escapes then begin
          let array = Printf.sprintf "fis.%d" v in
          let store =
            Ddg.Builder.add_node b
              (Opcode.Store (Opcode.Array array))
              ~label:(Printf.sprintf "fS%d" v)
          in
          incr added_memops;
          Ddg.Builder.add_edge b ~src:remap.(v) ~dst:store ~distance:0 Ddg.Flow
        end
      end);
  (* Incoming cut values: one load each, feeding every member consumer. *)
  let loads = Hashtbl.create 8 in
  List.iter
    (fun e ->
      if
        e.Ddg.kind = Ddg.Flow
        && (not (member e.Ddg.src))
        && member e.Ddg.dst
      then begin
        let key = (e.Ddg.src, e.Ddg.distance) in
        let load =
          match Hashtbl.find_opt loads key with
          | Some id -> id
          | None ->
            let array =
              if e.Ddg.distance = 0 then Printf.sprintf "fis.%d" e.Ddg.src
              else Printf.sprintf "fis.%d.d%d" e.Ddg.src e.Ddg.distance
            in
            let label =
              if e.Ddg.distance = 0 then Printf.sprintf "fL%d" e.Ddg.src
              else Printf.sprintf "fL%d.d%d" e.Ddg.src e.Ddg.distance
            in
            let id =
              Ddg.Builder.add_node b (Opcode.Load (Opcode.Array array)) ~label
            in
            incr added_memops;
            Hashtbl.replace loads key id;
            id
        in
        Ddg.Builder.add_edge b ~src:load ~dst:remap.(e.Ddg.dst) ~distance:0 Ddg.Flow
      end)
    (Ddg.edges ddg);
  (Ddg.Builder.freeze b, Hashtbl.length loads, !added_memops)

let split ddg =
  let n = Ddg.num_nodes ddg in
  if n < 2 then None
  else begin
    (* Condensation order over ALL edges: recurrences and even
       loop-carried forward dependences must not flow backwards across
       the cut, because the second loop runs entirely after the first. *)
    let succs v = List.map (fun e -> e.Ddg.dst) (Ddg.succs ddg v) in
    (* The condensation comes out in topological order (sources first),
       so any prefix is a legal first loop. *)
    let order = Graph_algos.scc ~num_nodes:n ~succs in
    if List.length order < 2 then None
    else begin
      (* Prefix whose size lands closest to half the nodes. *)
      let target = n / 2 in
      let rec choose acc size = function
        | [] | [ _ ] -> acc
        | comp :: rest ->
          let size' = size + List.length comp in
          let acc' =
            match acc with
            | None -> Some size'
            | Some best -> if abs (size' - target) < abs (best - target) then Some size' else acc
          in
          choose acc' size' rest
      in
      match choose None 0 order with
      | None -> None
      | Some prefix_size ->
        if prefix_size = 0 || prefix_size = n then None
        else begin
          let in_first = Array.make n false in
          let rec mark size = function
            | comp :: rest when size < prefix_size ->
              List.iter (fun v -> in_first.(v) <- true) comp;
              mark (size + List.length comp) rest
            | _ -> ()
          in
          mark 0 order;
          let member_first v = in_first.(v) in
          let member_second v = not in_first.(v) in
          let first, in1, mem1 = build_piece ~name:(Ddg.name ddg) ~suffix:".a" ddg ~member:member_first in
          let second, in2, mem2 =
            build_piece ~name:(Ddg.name ddg) ~suffix:".b" ddg ~member:member_second
          in
          assert (in1 = 0);
          Some { first; second; cut_values = in2; added_memops = mem1 + mem2 }
        end
    end
  end

let split_until ~requirement ~capacity ?(max_pieces = 8) ddg =
  let fits g = requirement g <= capacity in
  (* Convergence is checked before the piece cap: a decomposition that
     fits with exactly [max_pieces] pieces converged, it did not run out
     of budget.  Each pass splits at most [max_pieces - pieces] loops so
     the cap is never overshot (the old concat-map could double the
     piece count past it in one pass). *)
  let rec refine pieces =
    if List.for_all fits pieces then (pieces, true)
    else if List.length pieces >= max_pieces then (pieces, false)
    else begin
      let budget = ref (max_pieces - List.length pieces) in
      let progressed = ref false in
      let expand g =
        if (not (fits g)) && !budget > 0 then
          match split g with
          | Some s ->
            decr budget;
            progressed := true;
            [ s.first; s.second ]
          | None -> [ g ]
        else [ g ]
      in
      let pieces' = List.concat_map expand pieces in
      if !progressed then refine pieces' else (pieces', false)
    end
  in
  refine [ ddg ]
