(** The pre-incremental iterative spiller, kept verbatim as the
    behavioural oracle for {!Spiller}.

    [Spiller.run] at its default {!Spiller.policy} must produce
    outcomes byte-identical to this module's (same schedules, same
    graphs, same counters, same errors); test/test_spill.ml pins the
    equivalence with qcheck over random graphs and a fixed-seed digest
    over a spill-heavy slice.  This mirrors the [Alloc_reference]
    pattern: the optimized path is free to get faster, never to drift.

    Do not modify this module except to track signature changes of the
    modules it calls. *)

open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched

type victim = Spiller.victim =
  | Longest_lifetime
  | Best_ratio
  | Fewest_consumers

type outcome = Spiller.outcome = {
  schedule : Schedule.t;
  raw_schedule : Schedule.t;
  ddg : Ddg.t;
  requirement : int;
  fits : bool;
  spilled : int;
  added_memops : int;
  ii_bumps : int;
  rounds : int;
  error : Ncdrf_error.Error.t option;
}

val next_spill_slot : Ddg.t -> int

(** Identical contract to {!Spiller.run} at the default policy; see that
    module's documentation. *)
val run :
  config:Config.t ->
  requirement:(Schedule.t -> Schedule.t * int) ->
  capacity:int ->
  ?victim:victim ->
  ?schedule:(min_ii:int -> Ddg.t -> Schedule.t) ->
  ?max_rounds:int ->
  ?max_ii_bumps:int ->
  Ddg.t ->
  outcome
