open Ncdrf_ir
open Ncdrf_sched
open Ncdrf_regalloc
module Error = Ncdrf_error.Error
module Fault = Ncdrf_fault.Fault
module Telemetry = Ncdrf_telemetry.Telemetry
module Trace = Ncdrf_telemetry.Trace

type victim =
  | Longest_lifetime
  | Best_ratio
  | Fewest_consumers

type policy = {
  batch : int;
  incremental : bool;
  ii_floor : bool;
}

let default_policy = { batch = 1; incremental = false; ii_floor = true }

type outcome = {
  schedule : Schedule.t;
  raw_schedule : Schedule.t;
  ddg : Ddg.t;
  requirement : int;
  fits : bool;
  spilled : int;
  added_memops : int;
  ii_bumps : int;
  rounds : int;
  error : Error.t option;
}

let src = Logs.Src.create "ncdrf.spiller" ~doc:"naive iterative spiller"

module Log = (val Logs.src_log src : Logs.LOG)

let next_spill_slot ddg =
  let slot_of node =
    match node.Ddg.opcode with
    | Opcode.Load (Opcode.Spill k) | Opcode.Store (Opcode.Spill k) -> k
    | Opcode.Load (Opcode.Array _)
    | Opcode.Store (Opcode.Array _)
    | Opcode.Fadd | Opcode.Fsub | Opcode.Fmul | Opcode.Fdiv | Opcode.Fcvt | Opcode.Fselect ->
      -1
  in
  1 + Ddg.fold_nodes ddg ~init:(-1) ~f:(fun acc n -> max acc (slot_of n))

(* A value may be spilled if its producer is not itself a spill load and
   it has not been spilled already (no spill-store consumer). *)
let spillable ddg v =
  let producer = Ddg.node ddg v in
  let is_spill_load =
    match producer.Ddg.opcode with
    | Opcode.Load (Opcode.Spill _) -> true
    | _ -> false
  in
  let already_spilled =
    List.exists
      (fun e ->
        match (Ddg.node ddg e.Ddg.dst).Ddg.opcode with
        | Opcode.Store (Opcode.Spill _) -> true
        | _ -> false)
      (Ddg.consumers ddg v)
  in
  (not is_spill_load) && not already_spilled

(* Rewrite the graph to spill the value produced by node [v] into spill
   slot [slot] (the caller tracks the next free slot incrementally; it
   must equal [next_spill_slot ddg]). *)
let spill_value ddg ~slot v =
  let consumers = Ddg.consumers ddg v in
  let base = Ddg.num_nodes ddg in
  let store_id = base in
  let store_node = (Opcode.Store (Opcode.Spill slot), Printf.sprintf "sS%d" slot) in
  let load_nodes =
    List.mapi
      (fun i _ -> (Opcode.Load (Opcode.Spill slot), Printf.sprintf "sL%d.%d" slot i))
      consumers
  in
  let reload_edges =
    List.concat
      (List.mapi
         (fun i e ->
           let load_id = base + 1 + i in
           [
             { Ddg.src = store_id; dst = load_id; distance = 0; kind = Ddg.Mem };
             { Ddg.src = load_id; dst = e.Ddg.dst; distance = e.Ddg.distance; kind = Ddg.Flow };
           ])
         consumers)
  in
  let edges =
    { Ddg.src = v; dst = store_id; distance = 0; kind = Ddg.Flow } :: reload_edges
  in
  let drop_edge e = e.Ddg.src = v && e.Ddg.kind = Ddg.Flow in
  Ddg.transform ddg ~drop_edge ~add_nodes:(store_node :: load_nodes) ~add_edges:edges ()

let is_spill_load node =
  match node.Ddg.opcode with
  | Opcode.Load (Opcode.Spill _) -> true
  | _ -> false

let schedule_once config ~min_ii ddg =
  let raw = Modulo.schedule_with_min_ii ~min_ii config ddg in
  Adjust.push_late raw ~eligible:is_spill_load

(* Consumer fan-out per node, computed once per graph round: [score]
   would otherwise re-walk [Ddg.consumers] on every call. *)
let consumer_counts ddg =
  Array.init (Ddg.num_nodes ddg) (fun v -> List.length (Ddg.consumers ddg v))

(* Larger score = better victim. *)
let score ~victim ~ii ~consumers l =
  match victim with
  | Longest_lifetime -> (float_of_int (Lifetime.length l), 0.0)
  | Best_ratio ->
    let freed = float_of_int (Lifetime.min_registers ~ii l) in
    (freed /. float_of_int (1 + consumers), float_of_int (Lifetime.length l))
  | Fewest_consumers ->
    (-.float_of_int consumers, float_of_int (Lifetime.length l))

(* Each candidate is scored exactly once; the incumbent's key is kept,
   not recomputed per comparison.  The strict lexicographic [>] keeps
   the first of equal-scoring candidates, as the original fold did. *)
let pick_victim ~victim ~ii ~counts candidates =
  List.fold_left
    (fun acc l ->
      let s = score ~victim ~ii ~consumers:counts.(l.Lifetime.producer) l in
      match acc with
      | None -> Some (l, s)
      | Some (_, best) ->
        let a1, a2 = s and b1, b2 = best in
        if a1 > b1 || (a1 = b1 && a2 > b2) then Some (l, s) else acc)
    None candidates
  |> Option.map fst

(* Two candidate producers interfere when a flow edge connects them:
   spilling the producer rewrites the consumer's input (or the spilled
   value's own fan-out), so the second victim's lifetime — measured on
   the pre-batch schedule — would be stale.  Batched selection only
   admits pairwise non-interfering victims. *)
let flow_adjacent ddg p q =
  let feeds a b =
    List.exists
      (fun e -> e.Ddg.kind = Ddg.Flow && e.Ddg.dst = b)
      (Ddg.succs ddg a)
  in
  feeds p q || feeds q p

(* Greedy top-k: repeatedly take the best remaining victim, dropping
   candidates that interfere with anything already picked.  [k = 1] is
   exactly [pick_victim]. *)
let pick_victims ~victim ~ii ~counts ~k ddg candidates =
  let rec pick acc remaining k =
    if k <= 0 then List.rev acc
    else
      match pick_victim ~victim ~ii ~counts remaining with
      | None -> List.rev acc
      | Some l ->
        let p = l.Lifetime.producer in
        let remaining =
          List.filter
            (fun c ->
              let q = c.Lifetime.producer in
              q <> p && not (flow_adjacent ddg p q))
            remaining
        in
        pick (l :: acc) remaining (k - 1)
  in
  pick [] candidates k

(* A mid-round scheduling/allocation failure with a partial outcome in
   hand degrades to [Spill_diverged] instead of killing the point; the
   last completed round's schedule is the partial outcome.  Faults
   injected on purpose are never swallowed here — they must surface to
   the suite boundary to prove containment there. *)
let containable (e : Error.t) =
  match e.category with
  | Error.Schedule_infeasible | Error.Budget_exhausted | Error.Alloc_infeasible -> true
  | Error.Parse | Error.Invalid_graph | Error.Spill_diverged | Error.Injected
  | Error.Internal | Error.Overloaded | Error.Deadline_exceeded | Error.Canceled ->
    false

let run ~config ~requirement ~capacity ?(victim = Longest_lifetime)
    ?(schedule = fun ~min_ii ddg -> schedule_once config ~min_ii ddg) ?(max_rounds = 64)
    ?(max_ii_bumps = 32) ?(policy = default_policy) ?lower_bound ddg =
  Fault.point ~stage:"spill" ~key:(Ddg.name ddg);
  if policy.batch < 1 then invalid_arg "Spiller.run: policy.batch must be >= 1";
  let original_memops = Ddg.num_memory_ops ddg in
  let full_reschedules = ref 0 and incremental_reschedules = ref 0 in
  let give_up ~raw sched ddg req ~spilled ~ii_bumps ~rounds ~error =
    {
      schedule = sched;
      raw_schedule = raw;
      ddg;
      requirement = req;
      fits = false;
      spilled;
      added_memops = Ddg.num_memory_ops ddg - original_memops;
      ii_bumps;
      rounds;
      error = Some error;
    }
  in
  let diverged ~ii ~rounds fmt =
    Printf.ksprintf
      (fun message ->
        Error.make ~loop:(Ddg.name ddg) ~round:rounds ~ii ~stage:"spill"
          Error.Spill_diverged message)
      fmt
  in
  (* One scheduling step: seed the previous round's kernel when the
     incremental policy is on and the previous schedule's II is still an
     acceptable floor (an II bump invalidates it); otherwise run the
     full II search.  The incremental path can decline (new recurrence,
     seed conflict, budget) — then the full search is the fallback. *)
  let schedule_round ~min_ii ~base ddg =
    let incremental =
      if not policy.incremental then None
      else
        match base with
        | Some b when Schedule.ii b >= min_ii ->
          (match Modulo.reschedule_incremental ~base:b config ddg with
           | Some raw -> Some (Adjust.push_late raw ~eligible:is_spill_load)
           | None -> None)
        | _ -> None
    in
    match incremental with
    | Some raw ->
      incr incremental_reschedules;
      Telemetry.incr "spill.incremental_reschedules";
      raw
    | None ->
      incr full_reschedules;
      Telemetry.incr "spill.full_reschedules";
      schedule ~min_ii ddg
  in
  (* [next_slot] is the next free spill slot, tracked incrementally
     (each spill adds exactly one slot) instead of re-folding the whole
     graph every round; [counts] is the consumer fan-out of the current
     graph.  Both survive II bumps unchanged — the graph does too.
     [base] is the previous round's raw schedule, the seed for
     incremental rescheduling. *)
  let rec iterate ddg ~min_ii ~spilled ~ii_bumps ~rounds ~last ~base ~next_slot ~counts =
    (* Deadline poll once per spill round, outside the containable-error
       region: an expired request must surface as Deadline_exceeded,
       never degrade to Spill_diverged. *)
    Ncdrf_error.Deadline.check ~stage:"spill";
    match
      (* Each round (reschedule + reallocate) is one trace span, nested
         inside the driver's enclosing "spill" span, so a trace shows
         where a diverging point spends its rounds. *)
      Trace.begin_span "spill.round";
      Fun.protect
        ~finally:(fun () -> Trace.end_span "spill.round")
        (fun () ->
          let raw = schedule_round ~min_ii ~base ddg in
          (* The exact requirement is measured lazily: when
             [lower_bound] already proves the round over capacity, the
             (more expensive) model measurement is skipped unless a
             terminal outcome needs the number.  [requirement] must be
             pure, so a deferred force yields the same value. *)
          let view =
            let cell = ref None in
            fun () ->
              match !cell with
              | Some v -> v
              | None ->
                let v = requirement raw in
                cell := Some v;
                v
          in
          (* Shared between the bound and victim selection: a pruned
             round otherwise measures the same raw schedule's lifetimes
             twice. *)
          let raw_lifetimes = lazy (Lifetime.of_schedule raw) in
          let over =
            match lower_bound with
            | Some lb when lb raw ~lifetimes:raw_lifetimes > capacity ->
              Telemetry.incr "spill.lb_pruned";
              true
            | _ ->
              let _, req = view () in
              req > capacity
          in
          (raw, view, raw_lifetimes, over))
    with
    | exception Error.Error e when containable e && Option.is_some last ->
      (* The spill code itself made the round infeasible (e.g. a budget
         sized for the original graph).  Degrade to the last completed
         round rather than losing the point. *)
      let last_raw, last_view, last_ddg = Option.get last in
      let last_sched, last_req = last_view () in
      let error =
        diverged ~ii:(Schedule.ii last_sched) ~rounds "round failed: %s"
          (Error.to_string e)
      in
      give_up ~raw:last_raw last_sched last_ddg last_req ~spilled ~ii_bumps ~rounds
        ~error
    | raw, view, raw_lifetimes, over ->
      if not over then begin
        let sched, req = view () in
        {
          schedule = sched;
          raw_schedule = raw;
          ddg;
          requirement = req;
          fits = true;
          spilled;
          added_memops = Ddg.num_memory_ops ddg - original_memops;
          ii_bumps;
          rounds;
          error = None;
        }
      end
      else if rounds >= max_rounds then begin
        let sched, req = view () in
        give_up ~raw sched ddg req ~spilled ~ii_bumps ~rounds
          ~error:
            (diverged ~ii:(Schedule.ii sched) ~rounds
               "max rounds (%d) reached with requirement %d > capacity %d (%d spilled, %d II bumps)"
               max_rounds req capacity spilled ii_bumps)
      end
      else begin
        (* Pick the best spillable lifetimes of the current schedule.
           Lifetimes and II are measured on whichever schedule is in
           hand: the transformed view when the requirement was computed,
           the raw schedule when the lower bound pruned it — the model
           transforms only move values between clusters, so cycles,
           lifetimes and II agree between the two. *)
        let sel, lifetimes =
          match lower_bound with
          | None ->
            let s = fst (view ()) in
            (s, Lifetime.of_schedule s)
          | Some _ -> (raw, Lazy.force raw_lifetimes)
        in
        let ii = Schedule.ii sel in
        let candidates =
          List.filter (fun l -> spillable ddg l.Lifetime.producer) lifetimes
        in
        match pick_victims ~victim ~ii ~counts ~k:policy.batch ddg candidates with
        | _ :: _ as victims ->
          let width = List.length victims in
          Telemetry.incr "spill.batch_rounds";
          Telemetry.incr ~by:width "spill.batch_size";
          Log.debug (fun m ->
              m "%s: spilling %d value(s) (%s), over capacity %d" (Ddg.name ddg) width
                (String.concat ", "
                   (List.map
                      (fun l ->
                        Printf.sprintf "node %d lifetime %d" l.Lifetime.producer
                          (Lifetime.length l))
                      victims))
                capacity);
          let last = Some (raw, view, ddg) in
          let ddg, next_slot' =
            List.fold_left
              (fun (g, slot) l -> (spill_value g ~slot l.Lifetime.producer, slot + 1))
              (ddg, next_slot) victims
          in
          assert (next_spill_slot ddg = next_slot');
          (* Monotone II floor: II never recovers once spilling has
             pushed it up (spill code only adds resource usage and
             dependences), so the next round's II search starts at the
             last achieved II instead of rediscovering it from
             [min_ii]. *)
          let min_ii = if policy.ii_floor then max min_ii (Schedule.ii raw) else min_ii in
          iterate ddg ~min_ii ~spilled:(spilled + width) ~ii_bumps ~rounds:(rounds + 1)
            ~last ~base:(Some raw) ~next_slot:next_slot' ~counts:(consumer_counts ddg)
        | [] ->
          let req_of () = snd (view ()) in
          if ii_bumps >= max_ii_bumps then
            let sched, req = view () in
            give_up ~raw sched ddg req ~spilled ~ii_bumps ~rounds
              ~error:
                (diverged ~ii:(Schedule.ii sched) ~rounds
                   "max II bumps (%d) reached with requirement %d > capacity %d and no spill candidate (%d spilled)"
                   max_ii_bumps req capacity spilled)
          else begin
            let bumped = Schedule.ii raw + 1 in
            Log.debug (fun m ->
                m "%s: no spill candidate left (req %d > %d), rescheduling at II=%d"
                  (Ddg.name ddg) (req_of ()) capacity bumped);
            iterate ddg ~min_ii:bumped ~spilled ~ii_bumps:(ii_bumps + 1)
              ~rounds:(rounds + 1)
              ~last:(Some (raw, view, ddg))
              ~base:None ~next_slot ~counts
          end
      end
  in
  let outcome =
    iterate ddg ~min_ii:1 ~spilled:0 ~ii_bumps:0 ~rounds:0 ~last:None ~base:None
      ~next_slot:(next_spill_slot ddg) ~counts:(consumer_counts ddg)
  in
  if Trace.active () then
    Trace.set_result ~spill_full:!full_reschedules
      ~spill_incremental:!incremental_reschedules ();
  outcome
