open Ncdrf_ir
open Ncdrf_sched
open Ncdrf_regalloc

type victim =
  | Longest_lifetime
  | Best_ratio
  | Fewest_consumers

type outcome = {
  schedule : Schedule.t;
  raw_schedule : Schedule.t;
  ddg : Ddg.t;
  requirement : int;
  fits : bool;
  spilled : int;
  added_memops : int;
  ii_bumps : int;
  rounds : int;
}

let src = Logs.Src.create "ncdrf.spiller" ~doc:"naive iterative spiller"

module Log = (val Logs.src_log src : Logs.LOG)

let next_spill_slot ddg =
  let slot_of node =
    match node.Ddg.opcode with
    | Opcode.Load (Opcode.Spill k) | Opcode.Store (Opcode.Spill k) -> k
    | Opcode.Load (Opcode.Array _)
    | Opcode.Store (Opcode.Array _)
    | Opcode.Fadd | Opcode.Fsub | Opcode.Fmul | Opcode.Fdiv | Opcode.Fcvt | Opcode.Fselect ->
      -1
  in
  1 + Ddg.fold_nodes ddg ~init:(-1) ~f:(fun acc n -> max acc (slot_of n))

(* A value may be spilled if its producer is not itself a spill load and
   it has not been spilled already (no spill-store consumer). *)
let spillable ddg v =
  let producer = Ddg.node ddg v in
  let is_spill_load =
    match producer.Ddg.opcode with
    | Opcode.Load (Opcode.Spill _) -> true
    | _ -> false
  in
  let already_spilled =
    List.exists
      (fun e ->
        match (Ddg.node ddg e.Ddg.dst).Ddg.opcode with
        | Opcode.Store (Opcode.Spill _) -> true
        | _ -> false)
      (Ddg.consumers ddg v)
  in
  (not is_spill_load) && not already_spilled

(* Rewrite the graph to spill the value produced by node [v]. *)
let spill_value ddg v =
  let slot = next_spill_slot ddg in
  let consumers = Ddg.consumers ddg v in
  let base = Ddg.num_nodes ddg in
  let store_id = base in
  let store_node = (Opcode.Store (Opcode.Spill slot), Printf.sprintf "sS%d" slot) in
  let load_nodes =
    List.mapi
      (fun i _ -> (Opcode.Load (Opcode.Spill slot), Printf.sprintf "sL%d.%d" slot i))
      consumers
  in
  let reload_edges =
    List.concat
      (List.mapi
         (fun i e ->
           let load_id = base + 1 + i in
           [
             { Ddg.src = store_id; dst = load_id; distance = 0; kind = Ddg.Mem };
             { Ddg.src = load_id; dst = e.Ddg.dst; distance = e.Ddg.distance; kind = Ddg.Flow };
           ])
         consumers)
  in
  let edges =
    { Ddg.src = v; dst = store_id; distance = 0; kind = Ddg.Flow } :: reload_edges
  in
  let drop_edge e = e.Ddg.src = v && e.Ddg.kind = Ddg.Flow in
  Ddg.transform ddg ~drop_edge ~add_nodes:(store_node :: load_nodes) ~add_edges:edges ()

let is_spill_load node =
  match node.Ddg.opcode with
  | Opcode.Load (Opcode.Spill _) -> true
  | _ -> false

let schedule_once config ~min_ii ddg =
  let raw = Modulo.schedule_with_min_ii ~min_ii config ddg in
  Adjust.push_late raw ~eligible:is_spill_load

(* Larger score = better victim. *)
let score ~victim ~ii ddg l =
  let consumers = List.length (Ddg.consumers ddg l.Lifetime.producer) in
  match victim with
  | Longest_lifetime -> (float_of_int (Lifetime.length l), 0.0)
  | Best_ratio ->
    let freed = float_of_int (Lifetime.min_registers ~ii l) in
    (freed /. float_of_int (1 + consumers), float_of_int (Lifetime.length l))
  | Fewest_consumers ->
    (-.float_of_int consumers, float_of_int (Lifetime.length l))

let pick_victim ~victim ~ii ddg candidates =
  List.fold_left
    (fun acc l ->
      match acc with
      | None -> Some l
      | Some best ->
        if score ~victim ~ii ddg l > score ~victim ~ii ddg best then Some l else acc)
    None candidates

let run ~config ~requirement ~capacity ?(victim = Longest_lifetime)
    ?(schedule = fun ~min_ii ddg -> schedule_once config ~min_ii ddg) ?(max_rounds = 64)
    ?(max_ii_bumps = 32) ddg =
  let original_memops = Ddg.num_memory_ops ddg in
  let rec iterate ddg ~min_ii ~spilled ~ii_bumps ~rounds =
    let raw = schedule ~min_ii ddg in
    let sched, req = requirement raw in
    if req <= capacity then
      {
        schedule = sched;
        raw_schedule = raw;
        ddg;
        requirement = req;
        fits = true;
        spilled;
        added_memops = Ddg.num_memory_ops ddg - original_memops;
        ii_bumps;
        rounds;
      }
    else if rounds >= max_rounds then
      give_up ~raw sched ddg req ~spilled ~ii_bumps ~rounds
    else begin
      (* Pick the longest spillable lifetime of the current schedule. *)
      let lifetimes = Lifetime.of_schedule sched in
      let candidates =
        List.filter (fun l -> spillable ddg l.Lifetime.producer) lifetimes
      in
      match pick_victim ~victim ~ii:(Schedule.ii sched) ddg candidates with
      | Some l ->
        Log.debug (fun m ->
            m "%s: spilling value of node %d (lifetime %d), req %d > %d" (Ddg.name ddg)
              l.Lifetime.producer (Lifetime.length l) req capacity);
        let ddg = spill_value ddg l.Lifetime.producer in
        iterate ddg ~min_ii ~spilled:(spilled + 1) ~ii_bumps ~rounds:(rounds + 1)
      | None ->
        if ii_bumps >= max_ii_bumps then
          give_up ~raw sched ddg req ~spilled ~ii_bumps ~rounds
        else begin
          let bumped = Schedule.ii sched + 1 in
          Log.debug (fun m ->
              m "%s: no spill candidate left, rescheduling at II=%d" (Ddg.name ddg) bumped);
          iterate ddg ~min_ii:bumped ~spilled ~ii_bumps:(ii_bumps + 1) ~rounds:(rounds + 1)
        end
    end
  and give_up ~raw sched ddg req ~spilled ~ii_bumps ~rounds =
    {
      schedule = sched;
      raw_schedule = raw;
      ddg;
      requirement = req;
      fits = false;
      spilled;
      added_memops = Ddg.num_memory_ops ddg - original_memops;
      ii_bumps;
      rounds;
    }
  in
  iterate ddg ~min_ii:1 ~spilled:0 ~ii_bumps:0 ~rounds:0
