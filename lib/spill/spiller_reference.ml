(* The pre-incremental spiller, kept verbatim as the behavioural oracle
   for [Spiller]: at default policy the rebuilt spiller must produce
   byte-identical outcomes (test/test_spill.ml pins the equivalence with
   qcheck and a fixed-seed digest).  Do not "improve" this file — its
   value is that it does not change. *)

open Ncdrf_ir
open Ncdrf_sched
open Ncdrf_regalloc
module Error = Ncdrf_error.Error
module Fault = Ncdrf_fault.Fault
module Trace = Ncdrf_telemetry.Trace

type victim = Spiller.victim =
  | Longest_lifetime
  | Best_ratio
  | Fewest_consumers

type outcome = Spiller.outcome = {
  schedule : Schedule.t;
  raw_schedule : Schedule.t;
  ddg : Ddg.t;
  requirement : int;
  fits : bool;
  spilled : int;
  added_memops : int;
  ii_bumps : int;
  rounds : int;
  error : Error.t option;
}

let src = Logs.Src.create "ncdrf.spiller-ref" ~doc:"reference iterative spiller"

module Log = (val Logs.src_log src : Logs.LOG)

let next_spill_slot ddg =
  let slot_of node =
    match node.Ddg.opcode with
    | Opcode.Load (Opcode.Spill k) | Opcode.Store (Opcode.Spill k) -> k
    | Opcode.Load (Opcode.Array _)
    | Opcode.Store (Opcode.Array _)
    | Opcode.Fadd | Opcode.Fsub | Opcode.Fmul | Opcode.Fdiv | Opcode.Fcvt | Opcode.Fselect ->
      -1
  in
  1 + Ddg.fold_nodes ddg ~init:(-1) ~f:(fun acc n -> max acc (slot_of n))

(* A value may be spilled if its producer is not itself a spill load and
   it has not been spilled already (no spill-store consumer). *)
let spillable ddg v =
  let producer = Ddg.node ddg v in
  let is_spill_load =
    match producer.Ddg.opcode with
    | Opcode.Load (Opcode.Spill _) -> true
    | _ -> false
  in
  let already_spilled =
    List.exists
      (fun e ->
        match (Ddg.node ddg e.Ddg.dst).Ddg.opcode with
        | Opcode.Store (Opcode.Spill _) -> true
        | _ -> false)
      (Ddg.consumers ddg v)
  in
  (not is_spill_load) && not already_spilled

(* Rewrite the graph to spill the value produced by node [v] into spill
   slot [slot] (the caller tracks the next free slot incrementally; it
   must equal [next_spill_slot ddg]). *)
let spill_value ddg ~slot v =
  let consumers = Ddg.consumers ddg v in
  let base = Ddg.num_nodes ddg in
  let store_id = base in
  let store_node = (Opcode.Store (Opcode.Spill slot), Printf.sprintf "sS%d" slot) in
  let load_nodes =
    List.mapi
      (fun i _ -> (Opcode.Load (Opcode.Spill slot), Printf.sprintf "sL%d.%d" slot i))
      consumers
  in
  let reload_edges =
    List.concat
      (List.mapi
         (fun i e ->
           let load_id = base + 1 + i in
           [
             { Ddg.src = store_id; dst = load_id; distance = 0; kind = Ddg.Mem };
             { Ddg.src = load_id; dst = e.Ddg.dst; distance = e.Ddg.distance; kind = Ddg.Flow };
           ])
         consumers)
  in
  let edges =
    { Ddg.src = v; dst = store_id; distance = 0; kind = Ddg.Flow } :: reload_edges
  in
  let drop_edge e = e.Ddg.src = v && e.Ddg.kind = Ddg.Flow in
  Ddg.transform ddg ~drop_edge ~add_nodes:(store_node :: load_nodes) ~add_edges:edges ()

let is_spill_load node =
  match node.Ddg.opcode with
  | Opcode.Load (Opcode.Spill _) -> true
  | _ -> false

let schedule_once config ~min_ii ddg =
  let raw = Modulo.schedule_with_min_ii ~min_ii config ddg in
  Adjust.push_late raw ~eligible:is_spill_load

(* Consumer fan-out per node, computed once per graph round: [score]
   would otherwise re-walk [Ddg.consumers] on every call. *)
let consumer_counts ddg =
  Array.init (Ddg.num_nodes ddg) (fun v -> List.length (Ddg.consumers ddg v))

(* Larger score = better victim. *)
let score ~victim ~ii ~consumers l =
  match victim with
  | Longest_lifetime -> (float_of_int (Lifetime.length l), 0.0)
  | Best_ratio ->
    let freed = float_of_int (Lifetime.min_registers ~ii l) in
    (freed /. float_of_int (1 + consumers), float_of_int (Lifetime.length l))
  | Fewest_consumers ->
    (-.float_of_int consumers, float_of_int (Lifetime.length l))

(* Each candidate is scored exactly once; the incumbent's key is kept,
   not recomputed per comparison.  The strict lexicographic [>] keeps
   the first of equal-scoring candidates, as the original fold did. *)
let pick_victim ~victim ~ii ~counts candidates =
  List.fold_left
    (fun acc l ->
      let s = score ~victim ~ii ~consumers:counts.(l.Lifetime.producer) l in
      match acc with
      | None -> Some (l, s)
      | Some (_, best) ->
        let a1, a2 = s and b1, b2 = best in
        if a1 > b1 || (a1 = b1 && a2 > b2) then Some (l, s) else acc)
    None candidates
  |> Option.map fst

(* A mid-round scheduling/allocation failure with a partial outcome in
   hand degrades to [Spill_diverged] instead of killing the point; the
   last completed round's schedule is the partial outcome.  Faults
   injected on purpose are never swallowed here — they must surface to
   the suite boundary to prove containment there. *)
let containable (e : Error.t) =
  match e.category with
  | Error.Schedule_infeasible | Error.Budget_exhausted | Error.Alloc_infeasible -> true
  | Error.Parse | Error.Invalid_graph | Error.Spill_diverged | Error.Injected
  | Error.Internal | Error.Overloaded | Error.Deadline_exceeded | Error.Canceled ->
    false

let run ~config ~requirement ~capacity ?(victim = Longest_lifetime)
    ?(schedule = fun ~min_ii ddg -> schedule_once config ~min_ii ddg) ?(max_rounds = 64)
    ?(max_ii_bumps = 32) ddg =
  Fault.point ~stage:"spill" ~key:(Ddg.name ddg);
  let original_memops = Ddg.num_memory_ops ddg in
  let give_up ~raw sched ddg req ~spilled ~ii_bumps ~rounds ~error =
    {
      schedule = sched;
      raw_schedule = raw;
      ddg;
      requirement = req;
      fits = false;
      spilled;
      added_memops = Ddg.num_memory_ops ddg - original_memops;
      ii_bumps;
      rounds;
      error = Some error;
    }
  in
  let diverged ~ii ~rounds fmt =
    Printf.ksprintf
      (fun message ->
        Error.make ~loop:(Ddg.name ddg) ~round:rounds ~ii ~stage:"spill"
          Error.Spill_diverged message)
      fmt
  in
  (* [next_slot] is the next free spill slot, tracked incrementally
     (each spill adds exactly one slot) instead of re-folding the whole
     graph every round; [counts] is the consumer fan-out of the current
     graph.  Both survive II bumps unchanged — the graph does too. *)
  let rec iterate ddg ~min_ii ~spilled ~ii_bumps ~rounds ~last ~next_slot ~counts =
    match
      (* Each round (reschedule + reallocate) is one trace span, nested
         inside the driver's enclosing "spill" span, so a trace shows
         where a diverging point spends its rounds. *)
      Trace.begin_span "spill.round";
      Fun.protect
        ~finally:(fun () -> Trace.end_span "spill.round")
        (fun () ->
          let raw = schedule ~min_ii ddg in
          let sched, req = requirement raw in
          (raw, sched, req))
    with
    | exception Error.Error e when containable e && last <> None ->
      (* The spill code itself made the round infeasible (e.g. a budget
         sized for the original graph).  Degrade to the last completed
         round rather than losing the point. *)
      let last_raw, last_sched, last_req, last_ddg = Option.get last in
      let error =
        diverged ~ii:(Schedule.ii last_sched) ~rounds "round failed: %s"
          (Error.to_string e)
      in
      give_up ~raw:last_raw last_sched last_ddg last_req ~spilled ~ii_bumps ~rounds
        ~error
    | raw, sched, req ->
      if req <= capacity then
        {
          schedule = sched;
          raw_schedule = raw;
          ddg;
          requirement = req;
          fits = true;
          spilled;
          added_memops = Ddg.num_memory_ops ddg - original_memops;
          ii_bumps;
          rounds;
          error = None;
        }
      else if rounds >= max_rounds then
        give_up ~raw sched ddg req ~spilled ~ii_bumps ~rounds
          ~error:
            (diverged ~ii:(Schedule.ii sched) ~rounds
               "max rounds (%d) reached with requirement %d > capacity %d (%d spilled, %d II bumps)"
               max_rounds req capacity spilled ii_bumps)
      else begin
        (* Pick the longest spillable lifetime of the current schedule. *)
        let lifetimes = Lifetime.of_schedule sched in
        let candidates =
          List.filter (fun l -> spillable ddg l.Lifetime.producer) lifetimes
        in
        match pick_victim ~victim ~ii:(Schedule.ii sched) ~counts candidates with
        | Some l ->
          Log.debug (fun m ->
              m "%s: spilling value of node %d (lifetime %d), req %d > %d" (Ddg.name ddg)
                l.Lifetime.producer (Lifetime.length l) req capacity);
          let last = Some (raw, sched, req, ddg) in
          let ddg = spill_value ddg ~slot:next_slot l.Lifetime.producer in
          assert (next_spill_slot ddg = next_slot + 1);
          iterate ddg ~min_ii ~spilled:(spilled + 1) ~ii_bumps ~rounds:(rounds + 1) ~last
            ~next_slot:(next_slot + 1) ~counts:(consumer_counts ddg)
        | None ->
          if ii_bumps >= max_ii_bumps then
            give_up ~raw sched ddg req ~spilled ~ii_bumps ~rounds
              ~error:
                (diverged ~ii:(Schedule.ii sched) ~rounds
                   "max II bumps (%d) reached with requirement %d > capacity %d and no spill candidate (%d spilled)"
                   max_ii_bumps req capacity spilled)
          else begin
            let bumped = Schedule.ii sched + 1 in
            Log.debug (fun m ->
                m "%s: no spill candidate left, rescheduling at II=%d" (Ddg.name ddg)
                  bumped);
            iterate ddg ~min_ii:bumped ~spilled ~ii_bumps:(ii_bumps + 1)
              ~rounds:(rounds + 1)
              ~last:(Some (raw, sched, req, ddg))
              ~next_slot ~counts
          end
      end
  in
  iterate ddg ~min_ii:1 ~spilled:0 ~ii_bumps:0 ~rounds:0 ~last:None
    ~next_slot:(next_spill_slot ddg) ~counts:(consumer_counts ddg)
