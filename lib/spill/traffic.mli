(** Memory traffic accounting.

    The paper distinguishes {e memory traffic} (total accesses) from the
    {e density of memory traffic}: the fraction of the memory bus
    bandwidth used on average each cycle.  In steady state a loop issues
    its memory operations once per II, so the density of one loop is
    [memops / (ii * bandwidth)]. *)

open Ncdrf_ir
open Ncdrf_sched

(** Loads plus stores per iteration, spill code included. *)
val memops_per_iteration : Ddg.t -> int

(** Density of memory traffic of one scheduled loop, in [0, 1] on any
    machine with memory bandwidth.  A loop with no memory operations has
    density 0 regardless of the machine; memory traffic on a machine
    with zero bandwidth is [infinity], distinguishing "no traffic" from
    "no bus". *)
val density : Schedule.t -> float

(** Weighted average density over a collection of loops, each weighted
    by its execution time [weight * ii] (the paper's dynamic
    weighting): [sum (w * memops) / sum (w * ii * bandwidth)].  Zero
    weighted traffic is 0.0; nonzero traffic over zero aggregate
    bandwidth is [infinity]. *)
val aggregate_density : (Schedule.t * float) list -> float
