open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched

let memops_per_iteration ddg = Ddg.num_memory_ops ddg

(* Zero traffic is density 0 whatever the machine; traffic on a machine
   with no memory bandwidth is infinitely dense, not free — returning
   0.0 for both conflated "nothing to transfer" with "nothing can
   transfer". *)
let density sched =
  let ddg = sched.Schedule.ddg in
  let cfg = sched.Schedule.config in
  let bandwidth = Config.memory_bandwidth cfg in
  let memops = memops_per_iteration ddg in
  if memops = 0 then 0.0
  else if bandwidth = 0 then infinity
  else
    float_of_int memops
    /. (float_of_int (Schedule.ii sched) *. float_of_int bandwidth)

let aggregate_density scheds =
  let num, den =
    List.fold_left
      (fun (num, den) (sched, weight) ->
        let ddg = sched.Schedule.ddg in
        let cfg = sched.Schedule.config in
        let bandwidth = float_of_int (Config.memory_bandwidth cfg) in
        ( num +. (weight *. float_of_int (memops_per_iteration ddg)),
          den +. (weight *. float_of_int (Schedule.ii sched) *. bandwidth) ))
      (0.0, 0.0) scheds
  in
  if num = 0.0 then 0.0 else if den = 0.0 then infinity else num /. den
