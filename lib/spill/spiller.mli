(** The naive iterative spiller of the paper (Section 5.4):

    {v
    DO
      modulo scheduling
      register allocation
      IF registers needed > physical registers
        select a value to spill out
        modify the dependence graph
    UNTIL registers needed <= physical registers
    v}

    The selected value is the one with the longest lifetime (it frees
    the most registers).  Spilling value [v] adds a store of [v] to a
    fresh spill slot right after its producer and one reload per
    consumer; the consumers then read the reloaded values.  Values
    created by spill loads, and values already spilled, are not
    candidates.

    Spill slots behave as per-value rotating buffers (one live cell per
    concurrent iteration), so no anti-dependences are added; the cost
    model — more memory traffic, higher ResMII — is exactly the paper's.

    If register pressure cannot be reduced below the capacity by
    spilling alone (no candidates left), the loop is rescheduled with
    II+1, the paper's first alternative, as a documented safety valve.

    At {!default_policy} the loop is byte-identical to the verbatim
    pre-optimization spiller kept as {!Spiller_reference}
    (test/test_spill.ml pins the equivalence); the compounding
    optimizations — incremental rescheduling, batched victims — opt in
    through {!policy} and may diverge (characterized in
    EXPERIMENTS.md). *)

open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched

(** How to pick the value to spill.  The paper uses [Longest_lifetime]
    ("the value with the highest lifetime, which in general will free a
    higher number of registers") and explicitly calls for better
    heuristics; the other two are the obvious candidates, compared in
    the ablation bench. *)
type victim =
  | Longest_lifetime  (** the paper's choice *)
  | Best_ratio
      (** maximize registers freed per memory operation added:
          [ceil(len/II) / (1 + consumers)] *)
  | Fewest_consumers
      (** cheapest reload cost first; lifetime length breaks ties *)

(** Spill-loop strategy.

    [batch] spills up to that many pairwise non-interfering victims per
    round (victims connected by a flow edge interfere: spilling one
    invalidates the other's measured lifetime).  [batch = 1] is the
    reference one-victim-per-round loop.

    [incremental] reschedules each round by seeding the previous round's
    kernel placements and only placing the new memory ops
    ({!Modulo.reschedule_incremental}), falling back to the full II
    search when seeding declines.  Incremental rounds keep the previous
    II even where a full search might have found the new memory ops a
    cheaper arrangement, so outcomes may diverge from the reference.

    [ii_floor] starts each round's II search at the previously achieved
    II instead of rediscovering it.  On by default.  Spill code only
    adds resource usage and dependences, so the {e bounds} never
    decrease — but the achieved II is a heuristic result, and spill
    stores/loads can restructure a critical chain so that a {e lower}
    II becomes feasible on the rewritten graph.  When that happens the
    floored loop keeps the higher II for the round and may pick
    different victims downstream: same final quality in practice, but
    not byte-identical to the reference
    ([{ batch = 1; incremental = false; ii_floor = false }] is the
    reference-identical configuration). *)
type policy = {
  batch : int;
  incremental : bool;
  ii_floor : bool;
}

(** [{ batch = 1; incremental = false; ii_floor = true }]. *)
val default_policy : policy

(** Next free spill slot of a graph: one past the highest slot named by
    any spill load/store, 0 for a graph with no spill code.  [run]
    tracks this incrementally across rounds (each spill consumes exactly
    one slot) and asserts agreement with this fold; exported so tests
    can check the invariant on final outcomes. *)
val next_spill_slot : Ddg.t -> int

type outcome = {
  schedule : Schedule.t;  (** final schedule (after any model transform) *)
  raw_schedule : Schedule.t;
      (** the final round's schedule {e before} the model transform —
          the baseline against which applied swaps are counted *)
  ddg : Ddg.t;  (** final graph, including spill code *)
  requirement : int;  (** registers required by the final schedule *)
  fits : bool;  (** requirement <= capacity *)
  spilled : int;  (** number of values spilled *)
  added_memops : int;  (** spill stores + loads added *)
  ii_bumps : int;  (** safety-valve II increments *)
  rounds : int;  (** schedule/allocate iterations *)
  error : Ncdrf_error.Error.t option;
      (** [None] iff [fits]; otherwise the classified [Spill_diverged]
          describing why the loop gave up (round/II caps, or a
          mid-round scheduling failure degraded to the last completed
          round) *)
}

(** [run ~config ~requirement ~capacity ddg] iterates until the
    requirement fits.  [requirement] maps a raw schedule to the
    (possibly transformed, e.g. cluster-swapped) schedule and its
    register requirement — this is how the four register-file models
    plug in.

    [max_rounds] (default 64) bounds spill iterations; [max_ii_bumps]
    (default 32) bounds the safety valve.  If both run out the outcome
    has [fits = false] and [error = Some {category = Spill_diverged}]
    carrying the last round's state — divergence is a reported outcome,
    never an endless loop or a raw exception.  A round whose scheduling
    or allocation fails (infeasible or over budget) after at least one
    completed round likewise degrades to the last completed round.
    [victim] (default [Longest_lifetime]) selects the spill heuristic.

    [schedule] replaces the per-round scheduling step (modulo scheduling
    at [min_ii] followed by pushing spill loads late); the pipeline
    injects a memoized version so rounds shared between models and
    capacities are scheduled once.  Any replacement must be a pure
    function of [(min_ii, ddg)] and preserve those semantics.

    [lower_bound], when supplied, maps a raw schedule to a cheap lower
    bound on its register requirement; a round whose bound already
    exceeds [capacity] skips the exact model measurement (it is forced
    lazily only if a terminal outcome needs the number).  The
    [lifetimes] argument forces to [Lifetime.of_schedule] of that same
    schedule — bounds derived from lifetimes use it so a pruned round
    shares the computation with victim selection.  The bound must be
    sound ([lower_bound raw <= snd (requirement raw)]) and
    [requirement] must then be total — it may not raise — since its
    failures can no longer be attributed to the round that computed it.

    Per-run telemetry: bumps the [spill.full_reschedules] /
    [spill.incremental_reschedules] / [spill.batch_rounds] /
    [spill.batch_size] / [spill.lb_pruned] counters and records the
    reschedule split on the current trace point. *)
val run :
  config:Config.t ->
  requirement:(Schedule.t -> Schedule.t * int) ->
  capacity:int ->
  ?victim:victim ->
  ?schedule:(min_ii:int -> Ddg.t -> Schedule.t) ->
  ?max_rounds:int ->
  ?max_ii_bumps:int ->
  ?policy:policy ->
  ?lower_bound:(Schedule.t -> lifetimes:Ncdrf_regalloc.Lifetime.t list Lazy.t -> int) ->
  Ddg.t ->
  outcome
