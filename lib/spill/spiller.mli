(** The naive iterative spiller of the paper (Section 5.4):

    {v
    DO
      modulo scheduling
      register allocation
      IF registers needed > physical registers
        select a value to spill out
        modify the dependence graph
    UNTIL registers needed <= physical registers
    v}

    The selected value is the one with the longest lifetime (it frees
    the most registers).  Spilling value [v] adds a store of [v] to a
    fresh spill slot right after its producer and one reload per
    consumer; the consumers then read the reloaded values.  Values
    created by spill loads, and values already spilled, are not
    candidates.

    Spill slots behave as per-value rotating buffers (one live cell per
    concurrent iteration), so no anti-dependences are added; the cost
    model — more memory traffic, higher ResMII — is exactly the paper's.

    If register pressure cannot be reduced below the capacity by
    spilling alone (no candidates left), the loop is rescheduled with
    II+1, the paper's first alternative, as a documented safety valve. *)

open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched

(** How to pick the value to spill.  The paper uses [Longest_lifetime]
    ("the value with the highest lifetime, which in general will free a
    higher number of registers") and explicitly calls for better
    heuristics; the other two are the obvious candidates, compared in
    the ablation bench. *)
type victim =
  | Longest_lifetime  (** the paper's choice *)
  | Best_ratio
      (** maximize registers freed per memory operation added:
          [ceil(len/II) / (1 + consumers)] *)
  | Fewest_consumers
      (** cheapest reload cost first; lifetime length breaks ties *)

type outcome = {
  schedule : Schedule.t;  (** final schedule (after any model transform) *)
  raw_schedule : Schedule.t;
      (** the final round's schedule {e before} the model transform —
          the baseline against which applied swaps are counted *)
  ddg : Ddg.t;  (** final graph, including spill code *)
  requirement : int;  (** registers required by the final schedule *)
  fits : bool;  (** requirement <= capacity *)
  spilled : int;  (** number of values spilled *)
  added_memops : int;  (** spill stores + loads added *)
  ii_bumps : int;  (** safety-valve II increments *)
  rounds : int;  (** schedule/allocate iterations *)
  error : Ncdrf_error.Error.t option;
      (** [None] iff [fits]; otherwise the classified [Spill_diverged]
          describing why the loop gave up (round/II caps, or a
          mid-round scheduling failure degraded to the last completed
          round) *)
}

(** Next free spill slot of a graph: one past the highest slot named by
    any spill load/store, 0 for a graph with no spill code.  [run]
    tracks this incrementally across rounds (each spill consumes exactly
    one slot) and asserts agreement with this fold; exported so tests
    can check the invariant on final outcomes. *)
val next_spill_slot : Ddg.t -> int

(** [run ~config ~requirement ~capacity ddg] iterates until the
    requirement fits.  [requirement] maps a raw schedule to the
    (possibly transformed, e.g. cluster-swapped) schedule and its
    register requirement — this is how the four register-file models
    plug in.

    [max_rounds] (default 64) bounds spill iterations; [max_ii_bumps]
    (default 32) bounds the safety valve.  If both run out the outcome
    has [fits = false] and [error = Some {category = Spill_diverged}]
    carrying the last round's state — divergence is a reported outcome,
    never an endless loop or a raw exception.  A round whose scheduling
    or allocation fails (infeasible or over budget) after at least one
    completed round likewise degrades to the last completed round.
    [victim] (default [Longest_lifetime]) selects the spill heuristic.

    [schedule] replaces the per-round scheduling step (modulo scheduling
    at [min_ii] followed by pushing spill loads late); the pipeline
    injects a memoized version so rounds shared between models and
    capacities are scheduled once.  Any replacement must be a pure
    function of [(min_ii, ddg)] and preserve those semantics. *)
val run :
  config:Config.t ->
  requirement:(Schedule.t -> Schedule.t * int) ->
  capacity:int ->
  ?victim:victim ->
  ?schedule:(min_ii:int -> Ddg.t -> Schedule.t) ->
  ?max_rounds:int ->
  ?max_ii_bumps:int ->
  Ddg.t ->
  outcome
