(** Client side of the serve protocol: connect, speak JSONL, retry
    typed overload answers with exponential backoff.

    Transport failures surface as typed errors (stage ["client"]), not
    exceptions, so callers handle them exactly like protocol-level
    failures. *)

type t

(** [connect path] opens a connection to the daemon's Unix socket,
    polling every 50 ms for up to [connect_timeout_s] (default 5 s)
    while the socket does not exist or refuses — covers racing a
    just-started daemon.  Raises {!Ncdrf_error.Error.Error} (category
    [Internal]) once the window closes. *)
val connect : ?connect_timeout_s:float -> string -> t

val close : t -> unit

(** One request, one response, no retries. *)
val roundtrip :
  t -> Protocol.request -> (Protocol.response, Ncdrf_error.Error.t) result

(** [request t req] is {!roundtrip} that, on an [Overloaded] answer,
    sleeps for the daemon's [retry_after_s] hint (or the exponential
    backoff floor, whichever is larger, plus deterministic jitter) and
    retries up to [retries] (default 5) times.  The final [Overloaded]
    is returned to the caller if the daemon never yields. *)
val request :
  ?retries:int ->
  t ->
  Protocol.request ->
  (Protocol.response, Ncdrf_error.Error.t) result
