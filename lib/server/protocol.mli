(** JSONL wire protocol for [ncdrf serve] / [ncdrf client].

    One request or response per line, encoded with the
    [Telemetry.Json] codec.  Parsing is {e total}: every malformed
    frame — truncated JSON, an oversized line, an unknown request kind,
    a wrong field type — yields a typed {!Ncdrf_error.Error.t}
    (category [Parse], stage ["protocol"]), never an escaping
    exception.  Over protocol values, [parse ∘ render] is the identity
    (floats round-trip through the codec as long as they carry at most
    9 significant digits, which every protocol-born float does).

    The module also owns the {e renderers} that turn response payloads
    into the batch driver's human-facing text.  [ncdrf suite] and
    [ncdrf client suite] both print through them, which is what makes
    the byte-identity invariant structural rather than coincidental. *)

module Config = Ncdrf_machine.Config
module Model = Ncdrf_core.Model

(** Reject frames longer than this before JSON parsing — the daemon
    bounds the memory any one client can make it buffer. *)
val max_frame_bytes : int

type workload =
  | Source of string  (** inline loop-language source *)
  | Named of string  (** a named kernel from the workload library *)

type request_kind =
  | Schedule of {
      workload : workload;
      only : string option;  (** compile just the loop with this name *)
      spec : Config.spec;
      model : Model.t;
      capacity : int option;
      spill_batch : int;
      spill_incremental : bool;
      show_kernel : bool;
    }
  | Suite of {
      spec : Config.spec;
      size : int;
      registers : int;
    }
  | Health  (** liveness + queue/pool/cache/error snapshot *)
  | Stats  (** same payload as [Health]; kept distinct for clients *)

type request = {
  id : string;  (** client-chosen correlation id, echoed in the response *)
  timeout_s : float option;  (** per-request deadline, seconds *)
  kind : request_kind;
}

(** One compiled loop of a [Schedule] response — exactly the fields the
    batch driver prints. *)
type point = {
  loop : string;
  header : string;  (** the "== ..." line body ([Ddg.pp_stats] text) *)
  model : Model.t;
  mii : int;
  ii : int;
  stages : int;
  requirement : int;
  capacity : int option;
  fits : bool;
  spilled : int;
  added_memops : int;
  memops_per_iter : int;
  density : float;
  kernel : string option;  (** rendered VLIW kernel, when requested *)
}

type health = {
  status : string;  (** ["ok"] or ["draining"] *)
  uptime_s : float;
  served : int;  (** requests completed (any outcome) *)
  shed : int;  (** requests refused with [Overloaded] *)
  active : int;  (** requests executing right now *)
  queued : int;  (** requests waiting for an execution slot *)
  queue_bound : int;
  max_inflight : int;
  pool_jobs : int;
  cache_hits : int;
  cache_misses : int;
  cache_entries : int;
  error_counts : (string * int) list;  (** per category, sorted by name *)
  kind_counts : (string * int) list;
      (** requests seen per kind ("schedule", "suite", "health",
          "stats"), sorted by name; empty in frames from daemons that
          predate the field *)
  latency_p50_s : float;
      (** percentiles over completed work requests, measured from
          admission-queue entry to response body completion; 0.0 until
          the first work request completes or when absent from the
          frame *)
  latency_p90_s : float;
  latency_p99_s : float;
}

type response_body =
  | Scheduled of {
      machine : string;  (** [Config.pp] text of the machine compiled on *)
      points : point list;
    }
  | Suite_report of {
      machine : string;
      size : int;
      jobs : int;
      registers : int;
      rows : (Model.t * float * float) list;
          (** (model, % loops allocatable, % cycles) table rows *)
      failures : Ncdrf_error.Error.t list;
    }
  | Health_report of health
  | Failed of Ncdrf_error.Error.t
      (** the request was admitted but its execution failed — carries
          the full classified error, including [Deadline_exceeded] and
          [Canceled] *)
  | Overloaded of {
      queue_depth : int;
      retry_after_s : float;  (** suggested client backoff *)
    }

type response = {
  req_id : string;
  body : response_body;
}

(** {2 Codec} — one line, no trailing newline. *)

val render_request : request -> string
val render_response : response -> string

val parse_request : string -> (request, Ncdrf_error.Error.t) result
val parse_response : string -> (response, Ncdrf_error.Error.t) result

(** Best-effort id recovery from a frame that failed full parsing, so
    an error response can still be correlated by the client. *)
val frame_id : string -> string option

(** {2 Shared renderers} — the text both the batch driver and the
    client print, guaranteeing byte-identical output on both paths. *)

val render_suite_header : size:int -> machine:string -> jobs:int -> string
val render_suite_table_head : registers:int -> string
val render_suite_row : Model.t * float * float -> string

(** Empty on an empty list, so clean runs print nothing extra. *)
val render_failure_summary : Ncdrf_error.Error.t list -> string

val render_machine_line : string -> string
val render_point : point -> string

(** Build a wire point from pipeline stats plus the pre-rendered
    header line and optional kernel text. *)
val point_of_stats : header:string -> ?kernel:string -> Ncdrf_core.Pipeline.stats -> point
