(* JSONL wire protocol for `ncdrf serve` / `ncdrf client`.

   One request or response per line, encoded with the Telemetry.Json
   codec.  Parsing is total: every malformed frame — truncated JSON,
   oversized line, unknown request kind, wrong field type — comes back
   as a typed Error.t (category Parse, stage "protocol"), never an
   exception.  Rendering and parsing are exact inverses over the
   protocol types (floats round-trip through the codec's %.9g as long
   as they carry <= 9 significant digits, which every protocol-born
   float does).

   This module also owns the *renderers* that turn response payloads
   into the human-facing text of the batch driver.  Sharing them
   between `ncdrf suite` and `ncdrf client suite` is what makes the
   byte-identity invariant structural: both paths print through the
   same code, so they cannot drift apart. *)

module Json = Ncdrf_telemetry.Telemetry.Json
module Error = Ncdrf_error.Error
module Failures = Ncdrf_error.Failures
module Config = Ncdrf_machine.Config
module Model = Ncdrf_core.Model
module Pipeline = Ncdrf_core.Pipeline

(* A line longer than this is rejected before JSON parsing: the daemon
   must bound the memory one client can make it buffer. 4 MiB leaves
   lots of headroom for suite responses with large failure manifests. *)
let max_frame_bytes = 4 * 1024 * 1024

type workload =
  | Source of string  (** inline loop-language source *)
  | Named of string  (** a named kernel from the workload library *)

type request_kind =
  | Schedule of {
      workload : workload;
      only : string option;  (** compile just the loop with this name *)
      spec : Config.spec;
      model : Model.t;
      capacity : int option;
      spill_batch : int;
      spill_incremental : bool;
      show_kernel : bool;
    }
  | Suite of {
      spec : Config.spec;
      size : int;
      registers : int;
    }
  | Health
  | Stats

type request = {
  id : string;
  timeout_s : float option;
  kind : request_kind;
}

type point = {
  loop : string;
  header : string;  (** the "== ..." line body: [Ddg.pp_stats] text *)
  model : Model.t;
  mii : int;
  ii : int;
  stages : int;
  requirement : int;
  capacity : int option;
  fits : bool;
  spilled : int;
  added_memops : int;
  memops_per_iter : int;
  density : float;
  kernel : string option;  (** rendered VLIW kernel, when requested *)
}

type health = {
  status : string;  (** "ok" or "draining" *)
  uptime_s : float;
  served : int;  (** requests completed (any outcome) *)
  shed : int;  (** requests refused with Overloaded *)
  active : int;  (** requests executing right now *)
  queued : int;  (** requests waiting for an execution slot *)
  queue_bound : int;
  max_inflight : int;
  pool_jobs : int;
  cache_hits : int;
  cache_misses : int;
  cache_entries : int;
  error_counts : (string * int) list;  (** per-category, sorted by name *)
  kind_counts : (string * int) list;
      (** requests seen per kind ("schedule", "suite", ...), sorted *)
  latency_p50_s : float;  (** percentiles over completed work requests *)
  latency_p90_s : float;  (** (admission wait + execution); 0.0 before *)
  latency_p99_s : float;  (** the first completion *)
}

type response_body =
  | Scheduled of {
      machine : string;  (** [Config.pp] text of the machine compiled on *)
      points : point list;
    }
  | Suite_report of {
      machine : string;
      size : int;
      jobs : int;
      registers : int;
      rows : (Model.t * float * float) list;
          (** (model, % loops allocatable, % cycles) table rows *)
      failures : Error.t list;
    }
  | Health_report of health
  | Failed of Error.t
  | Overloaded of {
      queue_depth : int;
      retry_after_s : float;
    }

type response = {
  req_id : string;
  body : response_body;
}

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let opt_field name conv = function None -> [] | Some v -> [ (name, conv v) ]

let spec_to_json (s : Config.spec) =
  Json.Obj
    ([
       ("latency", Json.Int s.Config.spec_latency);
       ("clusters", Json.Int s.Config.spec_clusters);
     ]
    @ opt_field "read_ports" (fun i -> Json.Int i) s.Config.spec_read_ports
    @ opt_field "write_ports" (fun i -> Json.Int i) s.Config.spec_write_ports)

let workload_to_json = function
  | Source src -> Json.Obj [ ("source", Json.String src) ]
  | Named name -> Json.Obj [ ("kernel", Json.String name) ]

let request_to_json r =
  let kind_fields =
    match r.kind with
    | Schedule s ->
      [ ("kind", Json.String "schedule"); ("workload", workload_to_json s.workload) ]
      @ opt_field "loop" (fun n -> Json.String n) s.only
      @ [
          ("config", spec_to_json s.spec);
          ("model", Json.String (Model.to_string s.model));
        ]
      @ opt_field "capacity" (fun i -> Json.Int i) s.capacity
      @ [
          ("spill_batch", Json.Int s.spill_batch);
          ("spill_incremental", Json.Bool s.spill_incremental);
          ("show_kernel", Json.Bool s.show_kernel);
        ]
    | Suite s ->
      [
        ("kind", Json.String "suite");
        ("config", spec_to_json s.spec);
        ("size", Json.Int s.size);
        ("registers", Json.Int s.registers);
      ]
    | Health -> [ ("kind", Json.String "health") ]
    | Stats -> [ ("kind", Json.String "stats") ]
  in
  Json.Obj
    (("id", Json.String r.id)
     :: (opt_field "timeout_s" (fun f -> Json.Float f) r.timeout_s @ kind_fields))

let error_to_json (e : Error.t) =
  Json.Obj
    ([
       ("category", Json.String (Error.category_name e.Error.category));
       ("stage", Json.String e.Error.stage);
     ]
    @ opt_field "loop" (fun s -> Json.String s) e.Error.loop
    @ opt_field "config" (fun s -> Json.String s) e.Error.config
    @ opt_field "round" (fun i -> Json.Int i) e.Error.round
    @ opt_field "ii" (fun i -> Json.Int i) e.Error.ii
    @ [ ("message", Json.String e.Error.message) ])

let point_to_json p =
  Json.Obj
    ([
       ("loop", Json.String p.loop);
       ("header", Json.String p.header);
       ("model", Json.String (Model.to_string p.model));
       ("mii", Json.Int p.mii);
       ("ii", Json.Int p.ii);
       ("stages", Json.Int p.stages);
       ("requirement", Json.Int p.requirement);
     ]
    @ opt_field "capacity" (fun i -> Json.Int i) p.capacity
    @ [
        ("fits", Json.Bool p.fits);
        ("spilled", Json.Int p.spilled);
        ("added_memops", Json.Int p.added_memops);
        ("memops_per_iter", Json.Int p.memops_per_iter);
        ("density", Json.Float p.density);
      ]
    @ opt_field "kernel" (fun s -> Json.String s) p.kernel)

let health_to_json h =
  Json.Obj
    [
      ("status", Json.String h.status);
      ("uptime_s", Json.Float h.uptime_s);
      ("served", Json.Int h.served);
      ("shed", Json.Int h.shed);
      ("active", Json.Int h.active);
      ("queued", Json.Int h.queued);
      ("queue_bound", Json.Int h.queue_bound);
      ("max_inflight", Json.Int h.max_inflight);
      ("pool_jobs", Json.Int h.pool_jobs);
      ("cache_hits", Json.Int h.cache_hits);
      ("cache_misses", Json.Int h.cache_misses);
      ("cache_entries", Json.Int h.cache_entries);
      ( "errors",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) h.error_counts) );
      ( "kinds",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) h.kind_counts) );
      ("latency_p50_s", Json.Float h.latency_p50_s);
      ("latency_p90_s", Json.Float h.latency_p90_s);
      ("latency_p99_s", Json.Float h.latency_p99_s);
    ]

let response_to_json r =
  let fields =
    match r.body with
    | Scheduled s ->
      [
        ("status", Json.String "ok");
        ("kind", Json.String "scheduled");
        ("machine", Json.String s.machine);
        ("points", Json.List (List.map point_to_json s.points));
      ]
    | Suite_report s ->
      [
        ("status", Json.String "ok");
        ("kind", Json.String "suite");
        ("machine", Json.String s.machine);
        ("size", Json.Int s.size);
        ("jobs", Json.Int s.jobs);
        ("registers", Json.Int s.registers);
        ( "rows",
          Json.List
            (List.map
               (fun (m, s, d) ->
                 Json.List
                   [ Json.String (Model.to_string m); Json.Float s; Json.Float d ])
               s.rows) );
        ("failures", Json.List (List.map error_to_json s.failures));
      ]
    | Health_report h ->
      [
        ("status", Json.String "ok");
        ("kind", Json.String "health");
        ("health", health_to_json h);
      ]
    | Failed e -> [ ("status", Json.String "error"); ("error", error_to_json e) ]
    | Overloaded o ->
      [
        ("status", Json.String "overloaded");
        ("queue_depth", Json.Int o.queue_depth);
        ("retry_after_s", Json.Float o.retry_after_s);
      ]
  in
  Json.Obj (("id", Json.String r.req_id) :: fields)

let render_request r = Json.to_compact (request_to_json r)
let render_response r = Json.to_compact (response_to_json r)

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let proto_error message = Error.make ~stage:"protocol" Error.Parse message

let obj = function Json.Obj kvs -> kvs | _ -> bad "expected a JSON object"

let field name kvs =
  match List.assoc_opt name kvs with
  | Some v -> v
  | None -> bad "missing field %S" name

let field_opt name kvs =
  match List.assoc_opt name kvs with
  | None | Some Json.Null -> None
  | Some v -> Some v

let str name = function Json.String s -> s | _ -> bad "field %S: expected a string" name
let int_of name = function Json.Int i -> i | _ -> bad "field %S: expected an integer" name
let bool_of name = function Json.Bool b -> b | _ -> bad "field %S: expected a bool" name

let num name = function
  | Json.Int i -> float_of_int i
  | Json.Float f -> f
  | _ -> bad "field %S: expected a number" name

let model_of name v =
  match Model.of_string (str name v) with
  | Ok m -> m
  | Stdlib.Error msg -> bad "field %S: %s" name msg

let spec_of_json v =
  let kvs = obj v in
  {
    Config.spec_latency = int_of "latency" (field "latency" kvs);
    spec_clusters = int_of "clusters" (field "clusters" kvs);
    spec_read_ports = Option.map (int_of "read_ports") (field_opt "read_ports" kvs);
    spec_write_ports = Option.map (int_of "write_ports") (field_opt "write_ports" kvs);
  }

let workload_of_json v =
  let kvs = obj v in
  match field_opt "source" kvs, field_opt "kernel" kvs with
  | Some s, None -> Source (str "source" s)
  | None, Some k -> Named (str "kernel" k)
  | Some _, Some _ -> bad "workload: both \"source\" and \"kernel\" given"
  | None, None -> bad "workload: need \"source\" or \"kernel\""

let error_of_json v =
  let kvs = obj v in
  let name = str "category" (field "category" kvs) in
  let category =
    match Error.category_of_name name with
    | Some c -> c
    | None -> bad "unknown error category %S" name
  in
  Error.make
    ?loop:(Option.map (str "loop") (field_opt "loop" kvs))
    ?config:(Option.map (str "config") (field_opt "config" kvs))
    ?round:(Option.map (int_of "round") (field_opt "round" kvs))
    ?ii:(Option.map (int_of "ii") (field_opt "ii" kvs))
    ~stage:(str "stage" (field "stage" kvs))
    category
    (str "message" (field "message" kvs))

let point_of_json v =
  let kvs = obj v in
  {
    loop = str "loop" (field "loop" kvs);
    header = str "header" (field "header" kvs);
    model = model_of "model" (field "model" kvs);
    mii = int_of "mii" (field "mii" kvs);
    ii = int_of "ii" (field "ii" kvs);
    stages = int_of "stages" (field "stages" kvs);
    requirement = int_of "requirement" (field "requirement" kvs);
    capacity = Option.map (int_of "capacity") (field_opt "capacity" kvs);
    fits = bool_of "fits" (field "fits" kvs);
    spilled = int_of "spilled" (field "spilled" kvs);
    added_memops = int_of "added_memops" (field "added_memops" kvs);
    memops_per_iter = int_of "memops_per_iter" (field "memops_per_iter" kvs);
    density = num "density" (field "density" kvs);
    kernel = Option.map (str "kernel") (field_opt "kernel" kvs);
  }

let health_of_json v =
  let kvs = obj v in
  {
    status = str "status" (field "status" kvs);
    uptime_s = num "uptime_s" (field "uptime_s" kvs);
    served = int_of "served" (field "served" kvs);
    shed = int_of "shed" (field "shed" kvs);
    active = int_of "active" (field "active" kvs);
    queued = int_of "queued" (field "queued" kvs);
    queue_bound = int_of "queue_bound" (field "queue_bound" kvs);
    max_inflight = int_of "max_inflight" (field "max_inflight" kvs);
    pool_jobs = int_of "pool_jobs" (field "pool_jobs" kvs);
    cache_hits = int_of "cache_hits" (field "cache_hits" kvs);
    cache_misses = int_of "cache_misses" (field "cache_misses" kvs);
    cache_entries = int_of "cache_entries" (field "cache_entries" kvs);
    error_counts =
      List.map
        (fun (k, v) -> (k, int_of k v))
        (obj (field "errors" kvs));
    (* absent in frames from pre-concurrency daemons: default empty/0 *)
    kind_counts =
      (match field_opt "kinds" kvs with
      | Some v -> List.map (fun (k, v) -> (k, int_of k v)) (obj v)
      | None -> []);
    latency_p50_s =
      (match field_opt "latency_p50_s" kvs with Some v -> num "latency_p50_s" v | None -> 0.0);
    latency_p90_s =
      (match field_opt "latency_p90_s" kvs with Some v -> num "latency_p90_s" v | None -> 0.0);
    latency_p99_s =
      (match field_opt "latency_p99_s" kvs with Some v -> num "latency_p99_s" v | None -> 0.0);
  }

(* The shared frame plumbing: size cap, JSON parse, object check —
   everything before the request/response split. *)
let parse_frame line k =
  if String.length line > max_frame_bytes then
    Stdlib.Error
      (proto_error
         (Printf.sprintf "oversized frame (%d bytes > max %d)" (String.length line)
            max_frame_bytes))
  else
    match Json.of_string line with
    | Stdlib.Error msg -> Stdlib.Error (proto_error ("malformed JSON: " ^ msg))
    | Ok json ->
      (match k (obj json) with
       | v -> Ok v
       | exception Bad msg -> Stdlib.Error (proto_error msg))

(* Best-effort id recovery from a frame that failed full parsing, so
   an error response can still be correlated by the client. *)
let frame_id line =
  if String.length line > max_frame_bytes then None
  else
    match Json.of_string line with
    | Ok (Json.Obj kvs) ->
      (match List.assoc_opt "id" kvs with Some (Json.String s) -> Some s | _ -> None)
    | Ok _ | Stdlib.Error _ -> None

let parse_request line =
  parse_frame line @@ fun kvs ->
  let id = str "id" (field "id" kvs) in
  let timeout_s = Option.map (num "timeout_s") (field_opt "timeout_s" kvs) in
  let kind =
    match str "kind" (field "kind" kvs) with
    | "schedule" ->
      Schedule
        {
          workload = workload_of_json (field "workload" kvs);
          only = Option.map (str "loop") (field_opt "loop" kvs);
          spec = spec_of_json (field "config" kvs);
          model = model_of "model" (field "model" kvs);
          capacity = Option.map (int_of "capacity") (field_opt "capacity" kvs);
          spill_batch = int_of "spill_batch" (field "spill_batch" kvs);
          spill_incremental = bool_of "spill_incremental" (field "spill_incremental" kvs);
          show_kernel = bool_of "show_kernel" (field "show_kernel" kvs);
        }
    | "suite" ->
      Suite
        {
          spec = spec_of_json (field "config" kvs);
          size = int_of "size" (field "size" kvs);
          registers = int_of "registers" (field "registers" kvs);
        }
    | "health" -> Health
    | "stats" -> Stats
    | k -> bad "unknown request kind %S" k
  in
  { id; timeout_s; kind }

let parse_response line =
  parse_frame line @@ fun kvs ->
  let req_id = str "id" (field "id" kvs) in
  let body =
    match str "status" (field "status" kvs) with
    | "ok" ->
      (match str "kind" (field "kind" kvs) with
       | "scheduled" ->
         Scheduled
           {
             machine = str "machine" (field "machine" kvs);
             points =
               (match field "points" kvs with
                | Json.List ps -> List.map point_of_json ps
                | _ -> bad "field \"points\": expected a list");
           }
       | "suite" ->
         Suite_report
           {
             machine = str "machine" (field "machine" kvs);
             size = int_of "size" (field "size" kvs);
             jobs = int_of "jobs" (field "jobs" kvs);
             registers = int_of "registers" (field "registers" kvs);
             rows =
               (match field "rows" kvs with
                | Json.List rows ->
                  List.map
                    (function
                      | Json.List [ m; s; d ] ->
                        (model_of "rows" m, num "rows" s, num "rows" d)
                      | _ -> bad "field \"rows\": expected [model, loops%%, cycles%%]")
                    rows
                | _ -> bad "field \"rows\": expected a list");
             failures =
               (match field "failures" kvs with
                | Json.List es -> List.map error_of_json es
                | _ -> bad "field \"failures\": expected a list");
           }
       | "health" -> Health_report (health_of_json (field "health" kvs))
       | k -> bad "unknown response kind %S" k)
    | "error" -> Failed (error_of_json (field "error" kvs))
    | "overloaded" ->
      Overloaded
        {
          queue_depth = int_of "queue_depth" (field "queue_depth" kvs);
          retry_after_s = num "retry_after_s" (field "retry_after_s" kvs);
        }
    | s -> bad "unknown response status %S" s
  in
  { req_id; body }

(* ------------------------------------------------------------------ *)
(* Shared renderers — the byte-identity layer                          *)
(* ------------------------------------------------------------------ *)

(* These reproduce (and are called by) the batch driver's printing, so
   `ncdrf client suite` output is the same bytes as `ncdrf suite`. *)

let render_suite_header ~size ~machine ~jobs =
  Printf.sprintf "suite of %d loops on %s (%d job%s)\n\n" size machine jobs
    (if jobs = 1 then "" else "s")

let render_suite_table_head ~registers =
  Printf.sprintf "%-12s | %22s\n" "model"
    (Printf.sprintf "allocatable in %d regs" registers)

let render_suite_row (model, s, d) =
  Printf.sprintf "%-12s | %5.1f%% loops %5.1f%% cycles\n" (Model.to_string model) s d

(* Only when something failed, so a clean run's output is byte-identical
   to the pre-taxonomy driver's. *)
let render_failure_summary errors =
  match errors with
  | [] -> ""
  | _ ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf "\n%d point(s) failed (excluded from the table above):\n"
         (List.length errors));
    List.iter
      (fun (category, count) ->
        Buffer.add_string buf (Printf.sprintf "  errors.%-20s %d\n" category count))
      (Failures.count_by_category errors);
    List.iter
      (fun e -> Buffer.add_string buf (Printf.sprintf "  - %s\n" (Error.to_string e)))
      errors;
    Buffer.contents buf

let render_machine_line machine = Printf.sprintf "machine: %s\n" machine

let render_point p =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "\n== %s\n" p.header);
  Buffer.add_string buf
    (Printf.sprintf "  model %-12s II %d (MII %d), %d stages\n"
       (Model.to_string p.model) p.ii p.mii p.stages);
  Buffer.add_string buf
    (Printf.sprintf "  registers required: %d%s\n" p.requirement
       (match p.capacity with
        | Some c ->
          Printf.sprintf " (capacity %d, %s)" c
            (if p.fits then "fits" else "DOES NOT FIT")
        | None -> ""));
  if p.spilled > 0 then
    Buffer.add_string buf
      (Printf.sprintf "  spilled %d value(s), +%d memory ops\n" p.spilled p.added_memops);
  Buffer.add_string buf
    (Printf.sprintf "  memory ops/iteration %d, traffic density %.3f\n" p.memops_per_iter
       p.density);
  (match p.kernel with None -> () | Some k -> Buffer.add_string buf k);
  Buffer.contents buf

let point_of_stats ~header ?kernel (stats : Pipeline.stats) =
  {
    loop = stats.Pipeline.name;
    header;
    model = stats.Pipeline.model;
    mii = stats.Pipeline.mii;
    ii = stats.Pipeline.ii;
    stages = stats.Pipeline.stages;
    requirement = stats.Pipeline.requirement;
    capacity = stats.Pipeline.capacity;
    fits = stats.Pipeline.fits;
    spilled = stats.Pipeline.spilled;
    added_memops = stats.Pipeline.added_memops;
    memops_per_iter = stats.Pipeline.memops_per_iter;
    density = stats.Pipeline.density;
    kernel;
  }
