module Error = Ncdrf_error.Error
module Budget = Ncdrf_error.Budget

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
}

let connect ?(connect_timeout_s = 5.0) path =
  let t0 = Budget.now () in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () ->
      { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
    | exception Unix.Unix_error (((ENOENT | ECONNREFUSED) as e), _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if Budget.now () -. t0 < connect_timeout_s then begin
        (* The daemon may still be binding its socket; poll briefly. *)
        Unix.sleepf 0.05;
        go ()
      end
      else
        Error.errorf ~stage:"client" Error.Internal "cannot connect to %s: %s" path
          (Unix.error_message e)
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error.errorf ~stage:"client" Error.Internal "cannot connect to %s: %s" path
        (Unix.error_message e)
  in
  go ()

let close t =
  (* close_out flushes and closes the shared fd; the in_channel only
     needs its buffer dropped. *)
  try close_out t.oc with Sys_error _ | Unix.Unix_error _ -> ()

let roundtrip t req =
  try
    output_string t.oc (Protocol.render_request req);
    output_char t.oc '\n';
    flush t.oc;
    Protocol.parse_response (input_line t.ic)
  with
  | End_of_file ->
    Stdlib.Error
      (Error.make ~stage:"client" Error.Internal "connection closed by daemon")
  | Unix.Unix_error (e, _, _) ->
    Stdlib.Error
      (Error.errorf ~stage:"client" Error.Internal "transport error: %s"
         (Unix.error_message e))
  | Sys_error msg ->
    Stdlib.Error
      (Error.errorf ~stage:"client" Error.Internal "transport error: %s" msg)

(* Deterministic jitter in [0, 0.1) from the request id and attempt
   number — spreads synchronized retries without a randomness source. *)
let jitter ~id ~attempt =
  float_of_int (Hashtbl.hash (id, attempt) land 0xff) /. 2560.0

let request ?(retries = 5) t (req : Protocol.request) =
  let rec attempt n =
    match roundtrip t req with
    | Stdlib.Error _ as err -> err
    | Ok resp -> (
      match resp.Protocol.body with
      | Protocol.Overloaded { retry_after_s; _ } when n < retries ->
        let backoff = Float.min 2.0 (0.05 *. Float.pow 2.0 (float_of_int n)) in
        Unix.sleepf
          (Float.max retry_after_s backoff +. jitter ~id:req.Protocol.id ~attempt:n);
        attempt (n + 1)
      | _ -> Ok resp)
  in
  attempt 0
