(** The [ncdrf serve] daemon: a fault-contained compile service over a
    Unix-domain socket.

    One JSONL request per line (see {!Protocol}); scheduling and suite
    requests are admitted through a bounded queue in front of
    [max_inflight] concurrent execution slots — safe because trace,
    span and deadline state is sharded per (domain, thread) and every
    record a request produces (on its connection systhread or on pool
    workers it submits to) is stamped with the request id via
    [Ncdrf_telemetry.Trace.with_request].  Overload is
    answered with a typed [Overloaded] response carrying a retry hint,
    never an unbounded queue; per-request deadlines and drain
    cancellation flow through {!Ncdrf_error.Deadline} tokens into pool
    workers; any failure a request provokes — parse errors, infeasible
    schedules, injected faults, expiry — becomes a typed [Failed]
    response and never kills the daemon.  On SIGTERM/SIGINT the daemon
    stops accepting, lets in-flight work finish within a grace window,
    cancels the rest, and atomically publishes its metrics, trace and
    ledger before exiting. *)

type opts = {
  socket_path : string;
  jobs : int;  (** worker-pool size shared by all requests *)
  max_inflight : int;  (** concurrent request execution slots *)
  queue_bound : int;  (** admission queue slots; beyond this, shed *)
  default_timeout_s : float option;
      (** deadline for requests that do not carry their own *)
  drain_grace_s : float;
      (** seconds to let in-flight work finish before cancelling *)
  metrics : string option;  (** publish final metrics JSON here *)
  trace : string option;  (** publish a Chrome trace here *)
  ledger : string option;  (** publish the run ledger here *)
  cache_dir : string option;
      (** open the persistent artifact store here at startup, so the
          daemon cold-starts warm from prior processes' work *)
  cache_max_mb : int;  (** store size budget in MB; 0 = unlimited *)
}

(** Defaults: pool-default jobs, 4 inflight slots, queue bound 8, no
    default deadline, 5 s drain grace, no observability outputs, no
    persistent store. *)
val default_opts : socket_path:string -> opts

(** [run opts] serves until stopped, then drains and returns the
    process exit code (0 on a clean drain).  [stop] supplies the stop
    flag (polled every 0.2 s) — tests flip it from another thread;
    when [handle_signals] (default true), SIGTERM/SIGINT set it and
    SIGPIPE is ignored.  Raises {!Ncdrf_error.Error.Error} if the
    socket path is already being served. *)
val run : ?stop:bool Atomic.t -> ?handle_signals:bool -> opts -> int
