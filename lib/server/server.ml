module Error = Ncdrf_error.Error
module Failures = Ncdrf_error.Failures
module Deadline = Ncdrf_error.Deadline
module Telemetry = Ncdrf_telemetry.Telemetry
module Trace = Ncdrf_telemetry.Trace
module Ledger = Ncdrf_telemetry.Ledger
module Json = Ncdrf_telemetry.Telemetry.Json
module Pool = Ncdrf_parallel.Pool
module Config = Ncdrf_machine.Config
module Model = Ncdrf_core.Model
module Pipeline = Ncdrf_core.Pipeline
module Suite_stats = Ncdrf_core.Suite_stats
module Artifact = Ncdrf_core.Artifact
module Ddg = Ncdrf_ir.Ddg
module Loop_lang = Ncdrf_ir.Loop_lang
module Kernel = Ncdrf_sched.Kernel
module Spiller = Ncdrf_spill.Spiller
module Kernels = Ncdrf_workloads.Kernels
module Suite = Ncdrf_workloads.Suite
module Stats = Ncdrf_report.Stats

type opts = {
  socket_path : string;
  jobs : int;
  max_inflight : int;  (* concurrent request execution slots *)
  queue_bound : int;
  default_timeout_s : float option;
  drain_grace_s : float;
  metrics : string option;
  trace : string option;
  ledger : string option;
  cache_dir : string option;
  cache_max_mb : int;
}

let default_opts ~socket_path =
  {
    socket_path;
    jobs = Pool.default_jobs ();
    max_inflight = 4;
    queue_bound = 8;
    default_timeout_s = None;
    drain_grace_s = 5.0;
    metrics = None;
    trace = None;
    ledger = None;
    cache_dir = None;
    cache_max_mb = 0;
  }

(* Requests execute concurrently up to [opts.max_inflight]: trace
   context, span accumulation and deadline tokens are all sharded per
   (domain, thread), so interleaved request executions on connection
   systhreads keep their observability state apart, and every record is
   stamped with the request id via [Trace.with_request].  Admission
   control in front of the slots is what gives overload a typed answer
   instead of an unbounded queue. *)
type state = {
  opts : opts;
  pool : Pool.t;
  lock : Mutex.t;
  slot_free : Condition.t;
  mutable running : int;
  mutable waiting : int;
  mutable served : int;
  mutable shed : int;
  mutable draining : bool;
  mutable active_tokens : Deadline.token list;
  mutable latencies : float list;
      (* completed work-request wall times (admission + execution) *)
  err_counts : (string, int) Hashtbl.t;
  kind_counts : (string, int) Hashtbl.t;
  started : float;
}

type admission = Admitted | Shed of int | Draining | Expired_in_queue

let admit st tok =
  Mutex.lock st.lock;
  let rec go () =
    if st.draining then Draining
    else if Deadline.expired tok then Expired_in_queue
    else if st.running < st.opts.max_inflight then begin
      st.running <- st.running + 1;
      st.active_tokens <- tok :: st.active_tokens;
      Admitted
    end
    else if st.waiting >= st.opts.queue_bound then begin
      st.shed <- st.shed + 1;
      Shed (st.running + st.waiting)
    end
    else begin
      st.waiting <- st.waiting + 1;
      Condition.wait st.slot_free st.lock;
      st.waiting <- st.waiting - 1;
      go ()
    end
  in
  let verdict = go () in
  Mutex.unlock st.lock;
  verdict

let release st tok =
  Mutex.lock st.lock;
  st.running <- st.running - 1;
  st.served <- st.served + 1;
  st.active_tokens <- List.filter (fun t -> t != tok) st.active_tokens;
  Condition.broadcast st.slot_free;
  Mutex.unlock st.lock

let bump tbl name =
  Hashtbl.replace tbl name (1 + Option.value ~default:0 (Hashtbl.find_opt tbl name))

let note_category st name =
  Mutex.lock st.lock;
  bump st.err_counts name;
  Mutex.unlock st.lock

let note_latency st dt =
  Mutex.lock st.lock;
  st.latencies <- dt :: st.latencies;
  Mutex.unlock st.lock

(* Suite failures already bumped errors.* telemetry when the collector
   recorded them; everything else goes through here and bumps both. *)
let record_error st (e : Error.t) =
  let name = Error.category_name e.Error.category in
  note_category st name;
  Telemetry.incr ("errors." ^ name)

(* Back off proportionally to how deep the queue is, capped at 1 s. *)
let retry_after depth = Float.min 1.0 (0.05 *. float_of_int (max 1 depth))

let build_config spec =
  match Config.of_spec spec with
  | Ok config -> config
  | Stdlib.Error msg -> Error.error ~stage:"request" Error.Invalid_graph msg

let loops_of_workload ~only workload =
  let loops =
    match (workload : Protocol.workload) with
    | Source src -> Loop_lang.parse_string src
    | Named name -> (
      match Kernels.find name with
      | Some ddg -> [ ddg ]
      | None -> Error.errorf ~stage:"request" Error.Parse "unknown kernel %S" name)
  in
  match only with
  | None -> loops
  | Some name -> List.filter (fun g -> String.equal (Ddg.name g) name) loops

let execute_schedule ~workload ~only ~spec ~model ~capacity ~spill_batch
    ~spill_incremental ~show_kernel =
  let config = build_config spec in
  let loops = loops_of_workload ~only workload in
  let spill =
    { Spiller.default_policy with batch = spill_batch; incremental = spill_incremental }
  in
  let points =
    List.map
      (fun ddg ->
        let stats = Pipeline.run ~config ~model ?capacity ~spill ddg in
        let header = Format.asprintf "%a" Ddg.pp_stats ddg in
        let kernel =
          if show_kernel then Some (Kernel.render stats.Pipeline.schedule) else None
        in
        Protocol.point_of_stats ~header ?kernel stats)
      loops
  in
  Protocol.Scheduled { machine = Format.asprintf "%a" Config.pp config; points }

let execute_suite st ~deadline ~spec ~size ~registers =
  let config = build_config spec in
  let loops =
    List.map
      (fun (e : Suite.entry) -> { Suite_stats.ddg = e.Suite.ddg; weight = e.Suite.iterations })
      (Suite.full ~size ())
  in
  let failures = Failures.create () in
  let rows =
    List.map
      (fun (model, ms) ->
        let static_pct, dynamic_pct = Suite_stats.allocatable ms ~r:registers in
        (model, static_pct, dynamic_pct))
      (Suite_stats.measure_all ~pool:st.pool ~failures ~deadline ~config
         ~models:[ Model.Unified; Model.Partitioned; Model.Swapped ]
         loops)
  in
  let errs = Failures.list failures in
  List.iter
    (fun (e : Error.t) -> note_category st (Error.category_name e.Error.category))
    errs;
  Protocol.Suite_report
    {
      machine = Format.asprintf "%a" Config.pp config;
      size;
      jobs = Pool.jobs st.pool;
      registers;
      rows;
      failures = errs;
    }

let health_snapshot st =
  let cache = Artifact.cache_stats () in
  Mutex.lock st.lock;
  let pct p =
    match st.latencies with [] -> 0.0 | l -> Stats.percentile p l
  in
  let snapshot =
    {
      Protocol.status = (if st.draining then "draining" else "ok");
      uptime_s = Telemetry.now () -. st.started;
      served = st.served;
      shed = st.shed;
      active = st.running;
      queued = st.waiting;
      queue_bound = st.opts.queue_bound;
      max_inflight = st.opts.max_inflight;
      pool_jobs = Pool.jobs st.pool;
      cache_hits = cache.Ncdrf_cache.Cache.hits;
      cache_misses = cache.Ncdrf_cache.Cache.misses;
      cache_entries = cache.Ncdrf_cache.Cache.size;
      error_counts =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.err_counts []
        |> List.sort compare;
      kind_counts =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.kind_counts []
        |> List.sort compare;
      latency_p50_s = pct 50.0;
      latency_p90_s = pct 90.0;
      latency_p99_s = pct 99.0;
    }
  in
  Mutex.unlock st.lock;
  snapshot

let kind_name = function
  | Protocol.Schedule _ -> "schedule"
  | Protocol.Suite _ -> "suite"
  | Protocol.Health -> "health"
  | Protocol.Stats -> "stats"

(* Execute an admitted work request on the connection thread.  The
   containment contract lives here: whatever the pipeline raises —
   injected faults, infeasible schedules, deadline expiry, poisoned
   input — [Error.protect] turns into a typed error that becomes a
   [Failed] response; the daemon itself never dies with a request. *)
let execute st (req : Protocol.request) tok =
  let result =
    (* Every trace event, span sample and ledger record below — on this
       thread and on pool workers it submits to — carries the request
       id. *)
    Trace.with_request ~id:req.Protocol.id @@ fun () ->
    Error.protect ~stage:"request" ~loop:req.Protocol.id (fun () ->
        Pipeline.observe ~loop:req.Protocol.id
          ~config:("serve/" ^ kind_name req.Protocol.kind) (fun () ->
            Telemetry.time "serve.request" (fun () ->
                Deadline.with_token tok (fun () ->
                    Deadline.check ~stage:"request";
                    match req.Protocol.kind with
                    | Protocol.Schedule
                        {
                          workload;
                          only;
                          spec;
                          model;
                          capacity;
                          spill_batch;
                          spill_incremental;
                          show_kernel;
                        } ->
                      execute_schedule ~workload ~only ~spec ~model ~capacity
                        ~spill_batch ~spill_incremental ~show_kernel
                    | Protocol.Suite { spec; size; registers } ->
                      execute_suite st ~deadline:tok ~spec ~size ~registers
                    | Protocol.Health | Protocol.Stats ->
                      Protocol.Health_report (health_snapshot st)))))
  in
  match result with
  | Ok body -> body
  | Stdlib.Error e ->
    record_error st e;
    Protocol.Failed e

let respond_for st (req : Protocol.request) =
  Mutex.lock st.lock;
  bump st.kind_counts (kind_name req.Protocol.kind);
  Mutex.unlock st.lock;
  match req.Protocol.kind with
  (* Health probes bypass admission: they must answer even when the
     daemon is saturated or draining — that is their whole point. *)
  | Protocol.Health | Protocol.Stats -> Protocol.Health_report (health_snapshot st)
  | Protocol.Schedule _ | Protocol.Suite _ -> (
    let t0 = Telemetry.now () in
    let timeout_s =
      match req.Protocol.timeout_s with
      | Some _ as t -> t
      | None -> st.opts.default_timeout_s
    in
    let tok = Deadline.make ?timeout_s () in
    match admit st tok with
    | Shed queue_depth ->
      note_category st "overloaded";
      Telemetry.incr "errors.overloaded";
      Protocol.Overloaded { queue_depth; retry_after_s = retry_after queue_depth }
    | Draining ->
      let e =
        Error.make ~stage:"admission" ~loop:req.Protocol.id Error.Canceled
          "daemon is draining"
      in
      record_error st e;
      Protocol.Failed e
    | Expired_in_queue ->
      let e =
        Error.make ~stage:"admission" ~loop:req.Protocol.id Error.Deadline_exceeded
          "deadline expired while queued for admission"
      in
      record_error st e;
      Protocol.Failed e
    | Admitted ->
      Fun.protect
        ~finally:(fun () ->
          release st tok;
          note_latency st (Telemetry.now () -. t0))
        (fun () -> execute st req tok))

(* One reader thread per connection.  Frames are newline-delimited; a
   line that never terminates within the frame bound is answered with a
   typed protocol error and the connection dropped, so one client
   cannot make the daemon buffer unboundedly. *)
let handle_conn st fd =
  let chunk_len = 65536 in
  let chunk = Bytes.create chunk_len in
  let pending = ref "" in
  let closed = ref false in
  let write_line line =
    let data = line ^ "\n" in
    try
      let rec w off len =
        if len > 0 then begin
          let n = Unix.write_substring fd data off len in
          w (off + n) (len - n)
        end
      in
      w 0 (String.length data)
    with Unix.Unix_error _ -> closed := true
  in
  let respond resp = write_line (Protocol.render_response resp) in
  let process_line line =
    match Protocol.parse_request line with
    | Stdlib.Error e ->
      record_error st e;
      respond
        {
          Protocol.req_id = Option.value ~default:"" (Protocol.frame_id line);
          body = Protocol.Failed e;
        }
    | Ok req ->
      respond { Protocol.req_id = req.Protocol.id; body = respond_for st req }
  in
  let drain_pending () =
    let continue = ref true in
    while !continue && not !closed do
      match String.index_opt !pending '\n' with
      | None ->
        if String.length !pending > Protocol.max_frame_bytes then begin
          let e =
            Error.errorf ~stage:"protocol" Error.Parse
              "oversized frame: %d bytes without a newline (limit %d)"
              (String.length !pending) Protocol.max_frame_bytes
          in
          record_error st e;
          respond { Protocol.req_id = ""; body = Protocol.Failed e };
          closed := true
        end
        else continue := false
      | Some i ->
        let line = String.sub !pending 0 i in
        pending := String.sub !pending (i + 1) (String.length !pending - i - 1);
        process_line line
    done
  in
  (try
     while not !closed do
       let readable =
         try
           match Unix.select [ fd ] [] [] 0.2 with
           | r, _, _ -> r <> []
         with Unix.Unix_error (Unix.EINTR, _, _) -> false
       in
       if readable then begin
         let n = Unix.read fd chunk 0 chunk_len in
         if n = 0 then closed := true
         else begin
           pending := !pending ^ Bytes.sub_string chunk 0 n;
           drain_pending ()
         end
       end
       else if st.draining then
         (* Idle connection during drain: stop waiting for more input. *)
         closed := true
     done
   with Unix.Unix_error _ | Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let bind_socket path =
  if Sys.file_exists path then begin
    (* A leftover socket file from a killed daemon would make bind fail
       forever; probe it and only reclaim the path if nobody answers. *)
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      try
        Unix.connect probe (Unix.ADDR_UNIX path);
        true
      with Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then
      Error.errorf ~stage:"serve" Error.Internal
        "socket %s is already being served" path
    else Sys.remove path
  end;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let publish st =
  Option.iter
    (fun path ->
      let errors =
        Hashtbl.fold (fun k v acc -> (k, Json.Int v) :: acc) st.err_counts []
        |> List.sort compare
      in
      let kinds =
        Hashtbl.fold (fun k v acc -> (k, Json.Int v) :: acc) st.kind_counts []
        |> List.sort compare
      in
      let pct p =
        match st.latencies with [] -> 0.0 | l -> Stats.percentile p l
      in
      Telemetry.write_json ~path
        (Json.Obj
           [
             ("schema", Json.String "ncdrf-serve-metrics/1");
             ("jobs", Json.Int (Pool.jobs st.pool));
             ("max_inflight", Json.Int st.opts.max_inflight);
             ("uptime_s", Json.Float (Telemetry.now () -. st.started));
             ("requests.served", Json.Int st.served);
             ("requests.shed", Json.Int st.shed);
             ("requests.inflight", Json.Int st.running);
             ("requests.queued", Json.Int st.waiting);
             ("requests.by_kind", Json.Obj kinds);
             ( "latency",
               Json.Obj
                 [
                   ("count", Json.Int (List.length st.latencies));
                   ("p50_s", Json.Float (pct 50.0));
                   ("p90_s", Json.Float (pct 90.0));
                   ("p99_s", Json.Float (pct 99.0));
                 ] );
             ("errors", Json.Obj errors);
             ("telemetry", Telemetry.to_json ());
           ]))
    st.opts.metrics;
  Option.iter (fun path -> Trace.write_chrome ~path) st.opts.trace;
  Option.iter (fun path -> Ledger.write ~path) st.opts.ledger

let run ?stop ?(handle_signals = true) opts =
  let stop =
    match stop with
    | Some s -> s
    | None -> Atomic.make false
  in
  if handle_signals then begin
    let on_signal _ = Atomic.set stop true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal)
  end;
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  Telemetry.enable (opts.metrics <> None);
  Trace.enable (opts.trace <> None);
  Ledger.enable (opts.ledger <> None);
  Ledger.set_label "serve";
  (* Open the persistent artifact store before accepting: the daemon's
     cold start is then warm for anything a previous process (batch or
     daemon) already compiled, and everything it compiles outlives it. *)
  (match opts.cache_dir with
  | None -> ()
  | Some dir ->
    Ncdrf_cache.Store.set_ambient
      (Some
         (Ncdrf_cache.Store.open_store
            ~max_bytes:(opts.cache_max_mb * 1024 * 1024)
            ~dir ())));
  let listen_fd = bind_socket opts.socket_path in
  let pool = Pool.create ~jobs:opts.jobs () in
  let st =
    {
      opts;
      pool;
      lock = Mutex.create ();
      slot_free = Condition.create ();
      running = 0;
      waiting = 0;
      served = 0;
      shed = 0;
      draining = false;
      active_tokens = [];
      latencies = [];
      err_counts = Hashtbl.create 16;
      kind_counts = Hashtbl.create 16;
      started = Telemetry.now ();
    }
  in
  let conns = ref [] in
  while not (Atomic.get stop) do
    (* Tick: wake queued waiters so expired deadlines get noticed even
       when no slot frees up (OCaml conditions have no timed wait). *)
    Mutex.lock st.lock;
    Condition.broadcast st.slot_free;
    Mutex.unlock st.lock;
    let readable =
      try
        match Unix.select [ listen_fd ] [] [] 0.2 with
        | r, _, _ -> r <> []
      with Unix.Unix_error (Unix.EINTR, _, _) -> false
    in
    if readable then
      match Unix.accept listen_fd with
      | fd, _ -> conns := Thread.create (handle_conn st) fd :: !conns
      | exception Unix.Unix_error _ -> ()
  done;
  (* Drain: stop accepting, let in-flight work finish within the grace
     window, then cancel whatever is left and wait for it to unwind. *)
  Mutex.lock st.lock;
  st.draining <- true;
  Condition.broadcast st.slot_free;
  Mutex.unlock st.lock;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (try Sys.remove opts.socket_path with Sys_error _ -> ());
  let in_flight () =
    Mutex.lock st.lock;
    let n = st.running + st.waiting in
    Mutex.unlock st.lock;
    n
  in
  let drain_t0 = Telemetry.now () in
  while in_flight () > 0 && Telemetry.now () -. drain_t0 < opts.drain_grace_s do
    Thread.delay 0.05
  done;
  if in_flight () > 0 then begin
    Mutex.lock st.lock;
    List.iter (Deadline.cancel ~reason:"daemon draining") st.active_tokens;
    Condition.broadcast st.slot_free;
    Mutex.unlock st.lock
  end;
  List.iter Thread.join !conns;
  Pool.shutdown pool;
  publish st;
  0
