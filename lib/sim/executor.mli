(** Pipelined executor: runs a modulo schedule cycle by cycle on a
    machine state with real register files.

    Instance [k] of operation [v] issues at [cycle v + k * II], reads
    its register operands at issue, and writes its result at
    issue + latency into physical register [(reg v + k) mod capacity]
    of a rotating register file — a unified file ({!run_unified}) or the
    k subfiles of a non-consistent clustered file ({!run_clustered}:
    replicated values are written to every subfile of their replica
    set, local values only to their cluster's; every consumer reads its
    own cluster's subfile).

    When a cluster carries register-file port budgets
    ([Config.cluster.read_ports]/[write_ports]), each cycle whose read
    or write demand on some subfile exceeds its budget stalls the whole
    machine for the cycles needed to drain the backlog — the execution
    -time analogue of the scheduler's machine-wide load/store port
    treatment.  Stall cycles are added to [cycles] and reported in
    [port_stalls]; without caps both are unchanged.

    Every register read checks that the register still holds the exact
    value instance the dependence graph calls for; a clobbered read
    raises {!Corrupted}.  This catches scheduling bugs (operand not
    ready), allocation bugs (overlapping lifetimes sharing a register)
    and classification bugs (a consumer's subfile never written).

    The final array stores must equal the {!Reference} interpreter's
    output exactly. *)

open Ncdrf_sched

exception Corrupted of string

type outcome = {
  stores : Reference.store_event list;  (** sorted like {!Reference.run} *)
  cycles : int;  (** last completion cycle + 1, plus any port stalls *)
  register_reads : int;  (** reads that were tag-checked *)
  capacity : int;  (** registers per (sub)file used *)
  port_stalls : int;
      (** stall cycles forced by per-subfile port budgets; 0 without
          caps *)
}

(** Execute on a single rotating register file allocated at its minimal
    capacity. *)
val run_unified : iterations:int -> Schedule.t -> outcome

(** Execute on a non-consistent clustered register file using the joint
    global/local allocation of [Ncdrf_core.Requirements].

    @raise Ncdrf_error.Error.Error with category [Invalid_graph] if the
    schedule's machine has fewer than 2 clusters. *)
val run_clustered : iterations:int -> Schedule.t -> outcome

(** {!run_clustered} under its historical two-cluster name. *)
val run_dual : iterations:int -> Schedule.t -> outcome
