open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_regalloc
open Ncdrf_sched
open Ncdrf_core
module Telemetry = Ncdrf_telemetry.Telemetry
module Error = Ncdrf_error.Error

exception Corrupted of string

type outcome = {
  stores : Reference.store_event list;
  cycles : int;
  register_reads : int;
  capacity : int;
  port_stalls : int;
}

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupted s)) fmt

(* One rotating register file: value slots with provenance tags. *)
type file = {
  values : float array;
  tags : (int * int) option array;  (* (node, iteration) currently held *)
}

let make_file capacity =
  { values = Array.make (max capacity 1) 0.0; tags = Array.make (max capacity 1) None }

(* Where a value lives and in which subfiles, per the model. *)
type placement_info = {
  register : int;
  subfiles : int list;  (* indices of the files holding the value *)
}

type machine = {
  files : file array;
  capacity : int;
  placements : placement_info option array;  (* per node; None for stores *)
  read_file_of_cluster : int -> int;  (* consumer cluster -> file index *)
  read_caps : int option array;  (* per file, reads per cycle; None = open *)
  write_caps : int option array;  (* per file, writes per cycle *)
  reads_now : int array;  (* per file, current-cycle read demand *)
  writes_now : int array;  (* per file, current-cycle write demand *)
}

let physical machine ~register ~iteration =
  (((register + iteration) mod machine.capacity) + machine.capacity) mod machine.capacity

let write_value machine v ~iteration value =
  match machine.placements.(v) with
  | None -> ()
  | Some p ->
    let idx = physical machine ~register:p.register ~iteration in
    List.iter
      (fun f ->
        machine.writes_now.(f) <- machine.writes_now.(f) + 1;
        machine.files.(f).values.(idx) <- value;
        machine.files.(f).tags.(idx) <- Some (v, iteration))
      p.subfiles

let read_value machine ~consumer_cluster v ~iteration =
  match machine.placements.(v) with
  | None -> corrupt "read of a value-less node %d" v
  | Some p ->
    let fi = machine.read_file_of_cluster consumer_cluster in
    machine.reads_now.(fi) <- machine.reads_now.(fi) + 1;
    let file = machine.files.(fi) in
    let idx = physical machine ~register:p.register ~iteration in
    (match file.tags.(idx) with
     | Some (v', k') when v' = v && k' = iteration -> file.values.(idx)
     | Some (v', k') ->
       corrupt "register clobbered: wanted value of node %d iter %d, found node %d iter %d"
         v iteration v' k'
     | None -> corrupt "register read before write: node %d iter %d" v iteration)

let port_arrays cfg ~n_files ~per_cluster =
  let read_caps = Array.make n_files None in
  let write_caps = Array.make n_files None in
  (if per_cluster then
     Array.iteri
       (fun i (c : Config.cluster) ->
         read_caps.(i) <- c.Config.read_ports;
         write_caps.(i) <- c.Config.write_ports)
       cfg.Config.clusters);
  (read_caps, write_caps)

(* Build a machine for a unified rotating file.  Per-subfile port caps
   only apply when the whole machine is the one cluster. *)
let unified_machine sched =
  let ddg = sched.Schedule.ddg in
  let cfg = sched.Schedule.config in
  let ii = Schedule.ii sched in
  let lifetimes = Lifetime.of_schedule sched in
  let capacity = Alloc.min_capacity ~ii lifetimes in
  let placements = Array.make (Ddg.num_nodes ddg) None in
  (match Alloc.allocate ~ii ~capacity lifetimes with
   | Some placed ->
     List.iter
       (fun p ->
         placements.(p.Alloc.value.Lifetime.producer) <-
           Some { register = p.Alloc.register; subfiles = [ 0 ] })
       placed
   | None -> if lifetimes <> [] then corrupt "unified allocation failed");
  let read_caps, write_caps =
    port_arrays cfg ~n_files:1 ~per_cluster:(Config.num_clusters cfg = 1)
  in
  {
    files = [| make_file capacity |];
    capacity;
    placements;
    read_file_of_cluster = (fun _ -> 0);
    read_caps;
    write_caps;
    reads_now = Array.make 1 0;
    writes_now = Array.make 1 0;
  }

(* Build a machine for the non-consistent clustered register file: one
   subfile per cluster, each replicated value written to every subfile
   of its replica set, locals only to their cluster's. *)
let clustered_machine sched =
  let ddg = sched.Schedule.ddg in
  let cfg = sched.Schedule.config in
  let n_clusters = Config.num_clusters cfg in
  if n_clusters < 2 then
    Error.errorf ~stage:"execute" Error.Invalid_graph
      "Executor.run_clustered: machine %s has a single cluster (use run_unified)"
      cfg.Config.name;
  let alloc = Requirements.partitioned_allocation sched in
  let capacity = alloc.Requirements.capacity in
  let placements = Array.make (Ddg.num_nodes ddg) None in
  List.iter
    (fun (p, replicas) ->
      placements.(p.Alloc.value.Lifetime.producer) <-
        Some { register = p.Alloc.register; subfiles = replicas })
    alloc.Requirements.globals;
  Array.iteri
    (fun cluster placed ->
      List.iter
        (fun p ->
          placements.(p.Alloc.value.Lifetime.producer) <-
            Some { register = p.Alloc.register; subfiles = [ cluster ] })
        placed)
    alloc.Requirements.locals;
  let read_caps, write_caps = port_arrays cfg ~n_files:n_clusters ~per_cluster:true in
  {
    files = Array.init n_clusters (fun _ -> make_file capacity);
    capacity;
    placements;
    read_file_of_cluster = (fun c -> c);
    read_caps;
    write_caps;
    reads_now = Array.make n_clusters 0;
    writes_now = Array.make n_clusters 0;
  }

(* The spill store feeding loads of a slot, and the store->load
   iteration distance for a given load. *)
let spill_source ddg load_id =
  match
    List.find_opt (fun e -> e.Ddg.kind = Ddg.Mem) (Ddg.preds ddg load_id)
  with
  | Some e -> (e.Ddg.src, e.Ddg.distance)
  | None -> corrupt "spill load %d has no memory source" load_id

(* Extra cycles a subfile's port budget demands for [count] same-cycle
   accesses: a file with cap [c] serves [c] per cycle, so [count]
   accesses take [ceil(count / c)] cycles — [ceil - 1] stalls. *)
let stall_cycles ~count = function
  | Some cap when count > cap -> ((count + cap - 1) / cap) - 1
  | Some _ | None -> 0

let run_on machine sched ~iterations =
  let ddg = sched.Schedule.ddg in
  let cfg = sched.Schedule.config in
  let sched = Schedule.normalize sched in
  let ii = Schedule.ii sched in
  let loop = Ddg.name ddg in
  let n = Ddg.num_nodes ddg in
  let reads = ref 0 in
  let stores = ref [] in
  let spill_buffer : (int * int, float) Hashtbl.t = Hashtbl.create 32 in
  (* Values computed at issue, written back at finish. *)
  let in_flight : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  (* Event lists per cycle. *)
  let last_cycle = ref 0 in
  let issues : (int, (int * int) list) Hashtbl.t = Hashtbl.create 256 in
  let finishes : (int, (int * int) list) Hashtbl.t = Hashtbl.create 256 in
  let push tbl t ev = Hashtbl.replace tbl t (ev :: (Option.value ~default:[] (Hashtbl.find_opt tbl t))) in
  for k = 0 to iterations - 1 do
    Ddg.iter_nodes ddg ~f:(fun node ->
        let v = node.Ddg.id in
        let t_issue = Schedule.cycle sched v + (k * ii) in
        let t_finish = t_issue + Config.latency cfg node.Ddg.opcode in
        push issues t_issue (v, k);
        if Opcode.produces_value node.Ddg.opcode then push finishes t_finish (v, k);
        if t_finish > !last_cycle then last_cycle := t_finish)
  done;
  let operand_values v k =
    let cluster = Schedule.cluster sched v in
    List.map
      (fun e ->
        let src_iter = k - e.Ddg.distance in
        if src_iter < 0 then Semantics.live_in ~loop ~node_id:e.Ddg.src ~iteration:src_iter
        else begin
          incr reads;
          read_value machine ~consumer_cluster:cluster e.Ddg.src ~iteration:src_iter
        end)
      (Semantics.operand_edges ddg v)
  in
  let issue (v, k) =
    let node = Ddg.node ddg v in
    match node.Ddg.opcode with
    | Opcode.Load (Opcode.Array a) ->
      Hashtbl.replace in_flight (v, k) (Semantics.array_input ~array_name:a ~iteration:k)
    | Opcode.Load (Opcode.Spill slot) ->
      let _store, d = spill_source ddg v in
      let x =
        if k - d < 0 then Semantics.live_in ~loop ~node_id:v ~iteration:(k - d)
        else
          match Hashtbl.find_opt spill_buffer (slot, k - d) with
          | Some x -> x
          | None -> corrupt "spill slot %d read before write (iteration %d)" slot (k - d)
      in
      Hashtbl.replace in_flight (v, k) x
    | Opcode.Store location ->
      let value =
        match operand_values v k with
        | [ x ] -> x
        | [] -> Semantics.invariant ~loop ~node_id:v
        | x :: _ -> x
      in
      (match location with
       | Opcode.Array a ->
         stores := { Reference.array = a; iteration = k; value } :: !stores
       | Opcode.Spill slot -> Hashtbl.replace spill_buffer (slot, k) value)
    | Opcode.Fadd | Opcode.Fsub | Opcode.Fmul | Opcode.Fdiv | Opcode.Fcvt | Opcode.Fselect ->
      let x = Semantics.apply ~loop ~node_id:v node.Ddg.opcode (operand_values v k) in
      Hashtbl.replace in_flight (v, k) x
  in
  let finish (v, k) =
    match Hashtbl.find_opt in_flight (v, k) with
    | Some x ->
      Hashtbl.remove in_flight (v, k);
      write_value machine v ~iteration:k x
    | None -> corrupt "completion of an operation that never issued: node %d iter %d" v k
  in
  let n_files = Array.length machine.files in
  let port_stalls = ref 0 in
  let read_stalls = ref 0 in
  let write_stalls = ref 0 in
  for t = 0 to !last_cycle do
    Array.fill machine.reads_now 0 n_files 0;
    Array.fill machine.writes_now 0 n_files 0;
    (* Results land before same-cycle issues read them. *)
    List.iter finish (Option.value ~default:[] (Hashtbl.find_opt finishes t));
    List.iter issue (Option.value ~default:[] (Hashtbl.find_opt issues t));
    (* A subfile whose per-cycle read or write demand exceeds its port
       budget stalls the whole machine until the backlog drains —
       the same lockstep treatment the scheduler gives the machine-wide
       load/store ports, applied at execution time. *)
    let rs = ref 0 and ws = ref 0 in
    for f = 0 to n_files - 1 do
      rs := max !rs (stall_cycles ~count:machine.reads_now.(f) machine.read_caps.(f));
      ws := max !ws (stall_cycles ~count:machine.writes_now.(f) machine.write_caps.(f))
    done;
    read_stalls := !read_stalls + !rs;
    write_stalls := !write_stalls + !ws;
    port_stalls := !port_stalls + max !rs !ws
  done;
  if !read_stalls > 0 then Telemetry.incr ~by:!read_stalls "ports.read_stalls";
  if !write_stalls > 0 then Telemetry.incr ~by:!write_stalls "ports.write_stalls";
  ignore n;
  {
    stores = List.sort compare !stores;
    cycles = !last_cycle + 1 + !port_stalls;
    register_reads = !reads;
    capacity = machine.capacity;
    port_stalls = !port_stalls;
  }

let run_unified ~iterations sched =
  run_on (unified_machine sched) sched ~iterations

let run_clustered ~iterations sched = run_on (clustered_machine sched) sched ~iterations
let run_dual = run_clustered
