(** The original list-based cyclic allocator, kept verbatim as the
    oracle for the conflict-engine rewrite of {!Alloc}.

    Every function re-derives conflicts from scratch — [allocate] checks
    each candidate register against an [acc @ placed] list rebuilt per
    placement, and [min_capacity] restarts the whole allocation at every
    probed capacity.  That [O(n² · capacity)] behaviour is exactly what
    {!Alloc} now avoids; the equivalence tests in [test_conflict.ml]
    pin the rewrite to this implementation placement-by-placement.

    Types are shared with {!Alloc} so results compare structurally. *)

(** Same placement semantics as {!Alloc.allocate}, computed the original
    way. *)
val allocate :
  ?strategy:Alloc.strategy ->
  ?order:Alloc.order ->
  ?placed:Alloc.placement list ->
  ii:int ->
  capacity:int ->
  Lifetime.t list ->
  Alloc.placement list option

(** Same search as {!Alloc.min_capacity}, restarting [allocate] from
    zero at every capacity.

    @raise Ncdrf_error.Error.Error as {!Alloc.min_capacity} does. *)
val min_capacity :
  ?strategy:Alloc.strategy ->
  ?order:Alloc.order ->
  ?upper:int ->
  ii:int ->
  Lifetime.t list ->
  int
