open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched

type t = {
  producer : int;
  start : int;
  stop : int;
}

let length t = t.stop - t.start

let of_schedule sched =
  let ddg = sched.Schedule.ddg in
  let cfg = sched.Schedule.config in
  let ii = Schedule.ii sched in
  let lifetime node =
    if not (Opcode.produces_value node.Ddg.opcode) then None
    else begin
      let start = Schedule.cycle sched node.Ddg.id in
      let finish_of e =
        let consumer = Ddg.node ddg e.Ddg.dst in
        Schedule.cycle sched consumer.Ddg.id
        + (e.Ddg.distance * ii)
        + Config.latency cfg consumer.Ddg.opcode
      in
      let stop =
        match Ddg.consumers ddg node.Ddg.id with
        | [] -> start + Config.latency cfg node.Ddg.opcode
        | consumers -> List.fold_left (fun acc e -> max acc (finish_of e)) start consumers
      in
      Some { producer = node.Ddg.id; start; stop }
    end
  in
  Ddg.fold_nodes ddg ~init:[] ~f:(fun acc n ->
      match lifetime n with Some l -> l :: acc | None -> acc)
  |> List.rev

let ceil_div a b = if a <= 0 then 0 else (a + b - 1) / b

let live_at_slot t ~ii ~slot =
  let r = (((slot - t.start) mod ii) + ii) mod ii in
  ceil_div (length t - r) ii

(* One walk of the lifetime list, accumulating per-slot occupancy into
   an array, instead of re-traversing the list once per kernel slot:
   this is the spiller's lower-bound hot path.  Each value contributes
   [floor (length / ii)] instances to every slot plus one more to the
   [length mod ii] slots just past its start. *)
let max_live ~ii lifetimes =
  if ii <= 0 then 0
  else begin
    let live = Array.make ii 0 in
    List.iter
      (fun l ->
        let len = length l in
        if len > 0 then begin
          let whole = len / ii and rem = len mod ii in
          if whole > 0 then
            for slot = 0 to ii - 1 do
              live.(slot) <- live.(slot) + whole
            done;
          let start = ((l.start mod ii) + ii) mod ii in
          for k = 0 to rem - 1 do
            let slot = (start + k) mod ii in
            live.(slot) <- live.(slot) + 1
          done
        end)
      lifetimes;
    Array.fold_left max 0 live
  end

let min_registers ~ii t = ceil_div (length t) ii
let total_min_registers ~ii lifetimes =
  List.fold_left (fun acc l -> acc + min_registers ~ii l) 0 lifetimes
