open Ncdrf_telemetry

type t = {
  ii : int;
  lifetimes : Lifetime.t array;
  min_regs : int array;
  adj : int array array;
      (* adj.(i) is a flat stride-3 array of (j, d_min(j -> i), width)
         triples, one per neighbour j with a non-empty shift window. *)
  max_width : int;
  passes : int Atomic.t;
}

let fdiv a b =
  (* floor division for possibly negative numerator, b > 0 *)
  if a >= 0 then a / b else -(((-a) + b - 1) / b)

let cdiv a b = fdiv (a + b - 1) b

let pos_mod a m = ((a mod m) + m) mod m

(* The residue window of iteration shifts at which instances of [v] and
   [w] overlap: instance (k + d) of v vs instance k of w. *)
let shift_window ~ii v w =
  (* d.ii < e_w - s_v  and  d.ii > s_w - e_v *)
  let d_min = fdiv (w.Lifetime.start - v.Lifetime.stop) ii + 1 in
  let d_max = cdiv (w.Lifetime.stop - v.Lifetime.start) ii - 1 in
  (d_min, d_max)

let make ~ii lifetimes =
  let lifetimes = Array.of_list lifetimes in
  let n = Array.length lifetimes in
  let min_regs = Array.map (fun l -> Lifetime.min_registers ~ii l) lifetimes in
  (* Two passes over the i < j pairs: size the rows, then fill them.
     Windows are two divisions each; recomputing beats intermediates. *)
  let degree = Array.make n 0 in
  let max_width = ref 0 in
  let pairs = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let d_min, d_max = shift_window ~ii lifetimes.(i) lifetimes.(j) in
      if d_max >= d_min then begin
        degree.(i) <- degree.(i) + 1;
        degree.(j) <- degree.(j) + 1;
        incr pairs;
        if d_max - d_min + 1 > !max_width then max_width := d_max - d_min + 1
      end
    done
  done;
  let adj = Array.init n (fun i -> Array.make (3 * degree.(i)) 0) in
  let fill = Array.make n 0 in
  let push i j d_min width =
    let row = adj.(i) in
    let k = fill.(i) in
    row.(k) <- j;
    row.(k + 1) <- d_min;
    row.(k + 2) <- width;
    fill.(i) <- k + 3
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let d_min, d_max = shift_window ~ii lifetimes.(i) lifetimes.(j) in
      if d_max >= d_min then begin
        let width = d_max - d_min + 1 in
        push j i d_min width;
        (* window (j -> i) is (-d_max, -d_min) by antisymmetry *)
        push i j (-d_max) width
      end
    done
  done;
  if !pairs > 0 then Telemetry.incr ~by:!pairs "alloc.pairs";
  { ii; lifetimes; min_regs; adj; max_width = !max_width; passes = Atomic.make 0 }

(* ------------------------------------------------------------------ *)
(* Memo.  A dedicated table rather than Ncdrf_cache: the compile        *)
(* cache's hits/misses counters are pinned by the byte-identity suite   *)
(* and must not be perturbed by allocator-internal lookups.             *)
(* ------------------------------------------------------------------ *)

let memo : (string, t) Hashtbl.t = Hashtbl.create 64
let memo_mutex = Mutex.create ()
let memo_capacity = 64

let with_lock f =
  Mutex.lock memo_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock memo_mutex) f

let key ~ii lifetimes =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (string_of_int ii);
  List.iter
    (fun l ->
      Printf.bprintf buf ";%d,%d,%d" l.Lifetime.producer l.Lifetime.start
        l.Lifetime.stop)
    lifetimes;
  Buffer.contents buf

let get ~ii lifetimes =
  let k = key ~ii lifetimes in
  match with_lock (fun () -> Hashtbl.find_opt memo k) with
  | Some t -> t
  | None ->
    let t = make ~ii lifetimes in
    with_lock (fun () ->
        match Hashtbl.find_opt memo k with
        | Some t' -> t' (* lost the race; keep the table already shared *)
        | None ->
          if Hashtbl.length memo >= memo_capacity then Hashtbl.reset memo;
          Hashtbl.add memo k t;
          t)

let clear_memo () = with_lock (fun () -> Hashtbl.reset memo)

let ii t = t.ii
let size t = Array.length t.lifetimes
let lifetime t i = t.lifetimes.(i)
let min_registers t i = t.min_regs.(i)
let neighbours t i = t.adj.(i)
let max_width t = t.max_width

let note_pass t =
  if Atomic.fetch_and_add t.passes 1 > 0 then Telemetry.incr "alloc.table_reuse"
