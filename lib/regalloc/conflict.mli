(** Precomputed pairwise conflict structure for cyclic allocation.

    For values [v] and [w] of a modulo schedule with initiation interval
    [ii], the residue window of iteration shifts at which their
    instances overlap — [(d_min, d_max)] with [width = d_max - d_min + 1]
    — depends only on the two lifetimes and [ii], {e not} on the file
    capacity.  A conflict table therefore computes every pair's window
    once and serves all capacities probed by {!Alloc.min_capacity}, all
    strategies of the ablation sweeps, and every spill round that leaves
    the lifetimes unchanged.

    Placed at register [rj], neighbour [j] of value [i] forbids exactly
    the [width] residues [(rj + d_min(j→i)) mod capacity + [0, width)]
    — an O(width) marking instead of an O(placed) scan per candidate
    register.  Pairs whose window is empty ([width <= 0]) never conflict
    at any capacity and are not stored; a pair with
    [width >= capacity] conflicts at {e every} register distance.

    Tables are immutable after construction and safe to share across
    domains; the memo below is mutex-protected. *)

type t

(** [shift_window ~ii v w] is the window [(d_min, d_max)] of shifts [d]
    such that instance [k + d] of [v] overlaps instance [k] of [w].
    Antisymmetric: the window of [(w, v)] is [(-d_max, -d_min)]. *)
val shift_window : ii:int -> Lifetime.t -> Lifetime.t -> int * int

(** Positive remainder: [pos_mod a m] is in [[0, m)] for [m > 0]. *)
val pos_mod : int -> int -> int

(** Build a table for the lifetimes, in the given (significant) order:
    index [i] of the table is element [i] of the list.  O(n²) window
    computations, done once.  Bumps the [alloc.pairs] counter by the
    number of stored (non-empty-window) pairs. *)
val make : ii:int -> Lifetime.t list -> t

(** Memoized {!make}, keyed on [(ii, lifetimes)] including order.  The
    fig6–9 sweeps re-allocate the same lifetime sets under many
    strategies and capacities; the memo makes those hits free.  Bounded
    (cleared wholesale when full); thread-safe. *)
val get : ii:int -> Lifetime.t list -> t

(** Drop every memoized table (benchmark isolation between runs). *)
val clear_memo : unit -> unit

val ii : t -> int

(** Number of lifetimes in the table. *)
val size : t -> int

(** The lifetime at an index. *)
val lifetime : t -> int -> Lifetime.t

(** [min_registers t i] is [Lifetime.min_registers] of lifetime [i],
    precomputed. *)
val min_registers : t -> int -> int

(** [neighbours t i] is a flat stride-3 array of triples
    [(j, d_min(j→i), width)]: for neighbour [j] placed at [rj], value
    [i] is forbidden the residues [(rj + d_min(j→i)) + [0, width)] mod
    capacity.  Only pairs with [width >= 1] appear.  Do not mutate. *)
val neighbours : t -> int -> int array

(** Largest pair width in the table: any capacity [<= max_width] is
    infeasible for a set that includes both members of a widest pair.
    0 when no pair conflicts. *)
val max_width : t -> int

(** Record the start of an allocation pass over [t].  Every pass after
    the first bumps the [alloc.table_reuse] counter: reuse across
    capacity probes, strategies and memo hits is the engine's win. *)
val note_pass : t -> unit
