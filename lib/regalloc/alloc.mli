(** Register allocation for modulo-scheduled loops on a rotating
    register file.

    With a rotating file of [capacity] registers, the instance of value
    [v] born in iteration [k] occupies physical register
    [(reg v + k) mod capacity] for [length v] cycles from its birth at
    [start v + k * ii].  Allocation therefore assigns each value a
    {e virtual} register so that no two live instances share a physical
    register; conflicts are modular: values [v] at [rv] and [w] at [rw]
    collide iff [(rw - rv) mod capacity] falls inside a residue window
    derived from how their lifetimes overlap when shifted by multiples
    of [ii].

    The paper allocates with the {e Wands-Only} strategy (process values
    by start time) and the {e First-Fit} schema (smallest conflict-free
    register), citing Rau et al. 1992; Best-Fit and End-Fit schemas and
    alternative orderings are provided for the ablation benchmarks. *)

type strategy =
  | First_fit  (** smallest conflict-free register (the paper's choice) *)
  | Best_fit
      (** conflict-free register closest (circularly) to the end of the
          previously placed wand, minimising gaps *)
  | End_fit  (** largest conflict-free register *)

type order =
  | Start_time  (** Wands-Only order (the paper's choice) *)
  | Longest_first
  | Node_order

type placement = {
  value : Lifetime.t;
  register : int;
}

(** [conflict ~ii ~capacity (v, rv) (w, rw)] decides whether the two
    allocations collide in some steady-state cycle. *)
val conflict :
  ii:int -> capacity:int -> Lifetime.t * int -> Lifetime.t * int -> bool

(** [allocate ~ii ~capacity lifetimes] places every lifetime, honouring
    [placed] (pre-allocated values, e.g. the globals shared by both
    subfiles of a non-consistent dual register file).  [None] if some
    value cannot be placed within [capacity]. *)
val allocate :
  ?strategy:strategy ->
  ?order:order ->
  ?placed:placement list ->
  ii:int ->
  capacity:int ->
  Lifetime.t list ->
  placement list option

(** Smallest capacity for which {!allocate} succeeds, searched upward
    from the [max_live]/longest-value lower bound.  0 for an empty value
    list.  [upper] caps the search (default: a generous
    [2 * total_min_registers + 64] internal bound).

    @raise Ncdrf_error.Error.Error with category [Alloc_infeasible] and
    the capacity range searched if no capacity up to [upper] works
    (never happens with the default bound — property-tested; reachable
    by passing a small [upper]). *)
val min_capacity :
  ?strategy:strategy -> ?order:order -> ?upper:int -> ii:int -> Lifetime.t list -> int

(** Table-level allocation over a prebuilt {!Conflict.t}: places the
    table [indices] given (already honoured) [placed] pairs of
    (table index, register), returning (table index, register) pairs in
    placement order.  This is {!allocate} minus list-to-table plumbing;
    callers that allocate the same lifetimes repeatedly (the joint
    capacity search of [Requirements], the strategy ablations) build the
    table once and call this per probe. *)
val allocate_table :
  ?strategy:strategy ->
  ?order:order ->
  ?placed:(int * int) list ->
  capacity:int ->
  Conflict.t ->
  int list ->
  (int * int) list option

(** {!min_capacity} over a prebuilt table and a subset of its indices.
    The sorted order and the occupancy scratch are built once and reused
    by every capacity probe, and the search starts no lower than the
    subset's pair-width floor (a pair whose shift window has
    [width >= capacity] conflicts at every register distance).  Results
    — including the error raised past [upper], which reports the
    original lower bound — are identical to {!min_capacity} on the
    corresponding lifetime list.

    @raise Ncdrf_error.Error.Error as {!min_capacity}. *)
val min_capacity_table :
  ?strategy:strategy -> ?order:order -> ?upper:int -> Conflict.t -> int list -> int

(** Registers used by a set of placements: highest register index + 1.
    With First-Fit this is the compact requirement measure used
    throughout the experiments. *)
val registers_used : placement list -> int

(** Exhaustive check that a set of placements is conflict-free —
    [Ok ()] or a message naming the colliding pair.  Test helper. *)
val check : ii:int -> capacity:int -> placement list -> (unit, string) result
