(* The pre-conflict-engine allocator, verbatim.  Do not optimize this
   file: its value is being the simplest possible statement of the
   placement semantics that Alloc must reproduce byte for byte. *)

type placement = Alloc.placement = {
  value : Lifetime.t;
  register : int;
}

let fdiv a b =
  (* floor division for possibly negative numerator, b > 0 *)
  if a >= 0 then a / b else -(((-a) + b - 1) / b)

let cdiv a b = fdiv (a + b - 1) b

let pos_mod a m = ((a mod m) + m) mod m

(* The residue window of iteration shifts at which instances of [v] and
   [w] overlap: instance (k + d) of v vs instance k of w. *)
let shift_window ~ii v w =
  (* d.ii < e_w - s_v  and  d.ii > s_w - e_v *)
  let d_min = fdiv (w.Lifetime.start - v.Lifetime.stop) ii + 1 in
  let d_max = cdiv (w.Lifetime.stop - v.Lifetime.start) ii - 1 in
  (d_min, d_max)

let conflict ~ii ~capacity (v, rv) (w, rw) =
  let d_min, d_max = shift_window ~ii v w in
  let width = d_max - d_min + 1 in
  if width >= capacity then true
  else begin
    let delta = pos_mod (rw - rv) capacity in
    pos_mod (delta - d_min) capacity < width
  end

let sort_for ~order lifetimes =
  let by f = List.stable_sort (fun a b -> compare (f a) (f b)) lifetimes in
  match order with
  | Alloc.Start_time -> by (fun l -> (l.Lifetime.start, l.Lifetime.producer))
  | Alloc.Longest_first -> by (fun l -> (-Lifetime.length l, l.Lifetime.producer))
  | Alloc.Node_order -> by (fun l -> l.Lifetime.producer)

let feasible_register ~ii ~capacity ~placed v r =
  Lifetime.min_registers ~ii v <= capacity
  && not (List.exists (fun p -> conflict ~ii ~capacity (p.value, p.register) (v, r)) placed)

let pick_register ~strategy ~ii ~capacity ~placed ~hint v =
  let feasible r = feasible_register ~ii ~capacity ~placed v r in
  match strategy with
  | Alloc.First_fit ->
    let rec scan r = if r >= capacity then None else if feasible r then Some r else scan (r + 1) in
    scan 0
  | Alloc.End_fit ->
    let rec scan r = if r < 0 then None else if feasible r then Some r else scan (r - 1) in
    scan (capacity - 1)
  | Alloc.Best_fit ->
    (* Try registers in increasing circular distance from the hint (the
       end of the previously placed wand). *)
    let rec scan k =
      if k >= capacity then None
      else begin
        let r = pos_mod (hint + k) capacity in
        if feasible r then Some r else scan (k + 1)
      end
    in
    scan 0

let allocate ?(strategy = Alloc.First_fit) ?(order = Alloc.Start_time) ?(placed = [])
    ~ii ~capacity lifetimes =
  if capacity <= 0 && lifetimes <> [] then None
  else begin
    let ordered = sort_for ~order lifetimes in
    let rec place acc hint = function
      | [] -> Some (List.rev acc)
      | v :: rest ->
        (match pick_register ~strategy ~ii ~capacity ~placed:(acc @ placed) ~hint v with
         | None -> None
         | Some register ->
           let hint = register + Lifetime.min_registers ~ii v in
           place ({ value = v; register } :: acc) hint rest)
    in
    place [] 0 ordered
  end

let min_capacity ?(strategy = Alloc.First_fit) ?(order = Alloc.Start_time) ?upper ~ii
    lifetimes =
  match lifetimes with
  | [] -> 0
  | _ ->
    let lower =
      max
        (Lifetime.max_live ~ii lifetimes)
        (List.fold_left (fun acc l -> max acc (Lifetime.min_registers ~ii l)) 1 lifetimes)
    in
    let upper =
      match upper with
      | Some u -> u
      | None -> (2 * Lifetime.total_min_registers ~ii lifetimes) + 64
    in
    let rec search capacity =
      if capacity > upper then
        Ncdrf_error.Error.errorf ~ii ~stage:"alloc"
          Ncdrf_error.Error.Alloc_infeasible
          "no feasible capacity in [%d, %d] for %d lifetimes" lower upper
          (List.length lifetimes)
      else
        match allocate ~strategy ~order ~ii ~capacity lifetimes with
        | Some _ -> capacity
        | None -> search (capacity + 1)
    in
    search lower
