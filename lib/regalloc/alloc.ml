open Ncdrf_telemetry

type strategy =
  | First_fit
  | Best_fit
  | End_fit

type order =
  | Start_time
  | Longest_first
  | Node_order

type placement = {
  value : Lifetime.t;
  register : int;
}

let pos_mod = Conflict.pos_mod

let conflict ~ii ~capacity (v, rv) (w, rw) =
  let d_min, d_max = Conflict.shift_window ~ii v w in
  let width = d_max - d_min + 1 in
  if width >= capacity then true
  else begin
    let delta = pos_mod (rw - rv) capacity in
    pos_mod (delta - d_min) capacity < width
  end

(* Sorting indices into the table with the same keys (and stability) as
   the original sort over lifetime values, with the polymorphic tuple
   [compare] replaced by explicit int comparisons. *)
let sort_indices table ~order indices =
  let lt = Conflict.lifetime table in
  let cmp =
    match order with
    | Start_time ->
      fun a b ->
        let la = lt a and lb = lt b in
        let c = Int.compare la.Lifetime.start lb.Lifetime.start in
        if c <> 0 then c
        else Int.compare la.Lifetime.producer lb.Lifetime.producer
    | Longest_first ->
      fun a b ->
        let la = lt a and lb = lt b in
        let c = Int.compare (Lifetime.length lb) (Lifetime.length la) in
        if c <> 0 then c
        else Int.compare la.Lifetime.producer lb.Lifetime.producer
    | Node_order ->
      fun a b -> Int.compare (lt a).Lifetime.producer (lt b).Lifetime.producer
  in
  List.stable_sort cmp indices

(* Mutable allocation state, reusable across the capacity probes of a
   [min_capacity] search: [marks] is the residue occupancy index for the
   value being placed, generation-stamped so it is never cleared;
   [assigned.(j)] is the register of table index [j], -1 if unplaced. *)
type scratch = {
  mutable marks : int array;
  mutable stamp : int;
  assigned : int array;
  mutable probes : int;
}

let make_scratch table =
  {
    marks = [||];
    stamp = 0;
    assigned = Array.make (max 1 (Conflict.size table)) (-1);
    probes = 0;
  }

let flush_probes scratch =
  if scratch.probes > 0 then begin
    Telemetry.incr ~by:scratch.probes "alloc.probes";
    scratch.probes <- 0
  end

(* One allocation pass at a fixed capacity.  [ordered] and [placed] hold
   table indices; the result lists (index, register) in placement order.
   Placement-identical to the original scan: a neighbour [j] at [rj]
   forbids exactly the registers the original [conflict] test would have
   rejected, and the per-strategy scans probe candidates in the same
   sequence — only the feasibility test changed from an O(placed) list
   walk per candidate to an O(1) occupancy lookup. *)
let run_pass table ~strategy ~capacity ~placed ~scratch ordered =
  Conflict.note_pass table;
  let assigned = scratch.assigned in
  Array.fill assigned 0 (Array.length assigned) (-1);
  List.iter (fun (j, r) -> assigned.(j) <- r) placed;
  if Array.length scratch.marks < capacity then
    scratch.marks <- Array.make capacity 0;
  let marks = scratch.marks in
  let rec place acc hint = function
    | [] -> Some (List.rev acc)
    | i :: rest ->
      if Conflict.min_registers table i > capacity then None
      else begin
        scratch.stamp <- scratch.stamp + 1;
        let stamp = scratch.stamp in
        let row = Conflict.neighbours table i in
        let len = Array.length row in
        let blocked = ref false in
        let k = ref 0 in
        while (not !blocked) && !k < len do
          let rj = assigned.(row.(!k)) in
          if rj >= 0 then begin
            scratch.probes <- scratch.probes + 1;
            let width = row.(!k + 2) in
            if width >= capacity then blocked := true
            else begin
              let start = pos_mod (rj + row.(!k + 1)) capacity in
              for o = 0 to width - 1 do
                let idx = start + o in
                let idx = if idx >= capacity then idx - capacity else idx in
                marks.(idx) <- stamp
              done
            end
          end;
          k := !k + 3
        done;
        if !blocked then None
        else begin
          let free r = marks.(r) <> stamp in
          let reg =
            match strategy with
            | First_fit ->
              let rec scan r =
                if r >= capacity then None
                else if free r then Some r
                else scan (r + 1)
              in
              scan 0
            | End_fit ->
              let rec scan r =
                if r < 0 then None else if free r then Some r else scan (r - 1)
              in
              scan (capacity - 1)
            | Best_fit ->
              (* Try registers in increasing circular distance from the
                 hint (the end of the previously placed wand). *)
              let rec scan k =
                if k >= capacity then None
                else begin
                  let r = pos_mod (hint + k) capacity in
                  if free r then Some r else scan (k + 1)
                end
              in
              scan 0
          in
          match reg with
          | None -> None
          | Some r ->
            assigned.(i) <- r;
            place ((i, r) :: acc) (r + Conflict.min_registers table i) rest
        end
      end
  in
  place [] 0 ordered

let allocate_table ?(strategy = First_fit) ?(order = Start_time) ?(placed = [])
    ~capacity table indices =
  if indices = [] then Some []
  else if capacity <= 0 then None
  else begin
    let ordered = sort_indices table ~order indices in
    let scratch = make_scratch table in
    let result = run_pass table ~strategy ~capacity ~placed ~scratch ordered in
    flush_probes scratch;
    result
  end

(* Smallest capacity at which some in-subset pair conflicts at every
   register distance.  Capacities below it cannot succeed, so the search
   may start there — but error messages still report the original lower
   bound. *)
let subset_width_floor table indices =
  let member = Array.make (max 1 (Conflict.size table)) false in
  List.iter (fun i -> member.(i) <- true) indices;
  let floor = ref 0 in
  List.iter
    (fun i ->
      let row = Conflict.neighbours table i in
      let k = ref 0 in
      while !k < Array.length row do
        if member.(row.(!k)) && row.(!k + 2) >= !floor then
          floor := row.(!k + 2) + 1;
        k := !k + 3
      done)
    indices;
  !floor

let min_capacity_table ?(strategy = First_fit) ?(order = Start_time) ?upper
    table indices =
  match indices with
  | [] -> 0
  | _ ->
    let lifetimes = List.map (Conflict.lifetime table) indices in
    let ii = Conflict.ii table in
    let lower =
      max
        (Lifetime.max_live ~ii lifetimes)
        (List.fold_left (fun acc l -> max acc (Lifetime.min_registers ~ii l)) 1 lifetimes)
    in
    let upper =
      match upper with
      | Some u -> u
      | None -> (2 * Lifetime.total_min_registers ~ii lifetimes) + 64
    in
    (* The sorted order and scratch survive every probe; each probe is
       one [run_pass], not a from-scratch [allocate]. *)
    let ordered = sort_indices table ~order indices in
    let scratch = make_scratch table in
    let rec search capacity =
      if capacity > upper then
        Ncdrf_error.Error.errorf ~ii ~stage:"alloc"
          Ncdrf_error.Error.Alloc_infeasible
          "no feasible capacity in [%d, %d] for %d lifetimes" lower upper
          (List.length lifetimes)
      else
        match run_pass table ~strategy ~capacity ~placed:[] ~scratch ordered with
        | Some _ -> capacity
        | None -> search (capacity + 1)
    in
    Fun.protect
      ~finally:(fun () -> flush_probes scratch)
      (fun () -> search (max lower (subset_width_floor table indices)))

let allocate ?(strategy = First_fit) ?(order = Start_time) ?(placed = []) ~ii
    ~capacity lifetimes =
  if lifetimes = [] then Some []
  else if capacity <= 0 then None
  else begin
    let pre = List.map (fun p -> p.value) placed in
    let table = Conflict.get ~ii (pre @ lifetimes) in
    let np = List.length placed in
    let placed_idx = List.mapi (fun j p -> (j, p.register)) placed in
    let indices = List.init (List.length lifetimes) (fun k -> np + k) in
    match allocate_table ~strategy ~order ~placed:placed_idx ~capacity table indices with
    | None -> None
    | Some pairs ->
      Some
        (List.map
           (fun (i, r) -> { value = Conflict.lifetime table i; register = r })
           pairs)
  end

let registers_used placements =
  List.fold_left (fun acc p -> max acc (p.register + 1)) 0 placements

let min_capacity ?(strategy = First_fit) ?(order = Start_time) ?upper ~ii
    lifetimes =
  match lifetimes with
  | [] -> 0
  | _ ->
    let table = Conflict.get ~ii lifetimes in
    min_capacity_table ~strategy ~order ?upper table
      (List.init (Conflict.size table) Fun.id)

let check ~ii ~capacity placements =
  let rec pairs = function
    | [] -> Ok ()
    | p :: rest ->
      let bad q = conflict ~ii ~capacity (p.value, p.register) (q.value, q.register) in
      (match List.find_opt bad rest with
       | Some q ->
         Error
           (Printf.sprintf "values of nodes %d and %d collide (regs %d, %d)"
              p.value.Lifetime.producer q.value.Lifetime.producer p.register q.register)
       | None ->
         if p.register < 0 || p.register >= capacity then
           Error (Printf.sprintf "register %d out of range" p.register)
         else if Lifetime.min_registers ~ii p.value > capacity then
           Error (Printf.sprintf "value of node %d does not fit capacity" p.value.Lifetime.producer)
         else pairs rest)
  in
  pairs placements
