open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_regalloc
open Ncdrf_sched

type config = {
  sacks : int;
  read_ports : int;
  write_ports : int;
}

let default_config = { sacks = 2; read_ports = 1; write_ports = 1 }

type assignment = {
  primary_requirement : int;
  sack_requirements : int array;
  placed : int;
  eligible : int;
  values : int;
}

let single_use sched =
  let ddg = sched.Schedule.ddg in
  List.filter
    (fun l -> List.length (Ddg.consumers ddg l.Lifetime.producer) = 1)
    (Lifetime.of_schedule sched)

(* Kernel slot at which the value is written into the register file
   (producer completes) and read from it (consumer issues). *)
let write_slot sched ~ii l =
  let ddg = sched.Schedule.ddg in
  let cfg = sched.Schedule.config in
  let producer = Ddg.node ddg l.Lifetime.producer in
  (l.Lifetime.start + Config.latency cfg producer.Ddg.opcode) mod ii

let read_slot sched ~ii l =
  let ddg = sched.Schedule.ddg in
  match Ddg.consumers ddg l.Lifetime.producer with
  | [ e ] -> Schedule.cycle sched e.Ddg.dst mod ii
  | [] | _ :: _ -> invalid_arg "Sacks.read_slot: not a single-use value"

type sack_state = {
  mutable resident : Lifetime.t list;
  reads : int array;  (* per slot *)
  writes : int array;
}

let assign ?(config = default_config) sched =
  let ii = Schedule.ii sched in
  let all = Lifetime.of_schedule sched in
  let eligible = single_use sched in
  let sacks =
    Array.init config.sacks (fun _ ->
        { resident = []; reads = Array.make ii 0; writes = Array.make ii 0 })
  in
  let try_place l =
    let rs = read_slot sched ~ii l and ws = write_slot sched ~ii l in
    let fits sack =
      sack.reads.(rs) < config.read_ports && sack.writes.(ws) < config.write_ports
    in
    let rec scan i =
      if i >= Array.length sacks then false
      else if fits sacks.(i) then begin
        let sack = sacks.(i) in
        sack.resident <- l :: sack.resident;
        sack.reads.(rs) <- sack.reads.(rs) + 1;
        sack.writes.(ws) <- sack.writes.(ws) + 1;
        true
      end
      else scan (i + 1)
    in
    scan 0
  in
  (* Longest lifetimes first: they relieve the primary file the most. *)
  let ordered =
    List.sort
      (fun a b -> Int.compare (Lifetime.length b) (Lifetime.length a))
      eligible
  in
  let placed = List.filter try_place ordered in
  let in_sack l =
    List.exists (fun p -> p.Lifetime.producer = l.Lifetime.producer) placed
  in
  let primary = List.filter (fun l -> not (in_sack l)) all in
  {
    primary_requirement = Alloc.min_capacity ~ii primary;
    sack_requirements =
      Array.map (fun sack -> Alloc.min_capacity ~ii sack.resident) sacks;
    placed = List.length placed;
    eligible = List.length eligible;
    values = List.length all;
  }
