(** Classification of values for a non-consistent clustered register
    file (paper Section 4.1, generalized to k clusters).

    A value is classified by the clusters of its {e consumers}: if all
    consumers are scheduled in one cluster it can live in that cluster's
    subfile only ([Local]); if consumers span a proper subset of the
    clusters it is replicated exactly in those subfiles ([Shared]); if
    consumers sit in every cluster it is replicated everywhere
    ([Global]).  On a two-cluster machine [Shared] never arises — any
    multi-cluster consumer set covers both clusters — so the dual-file
    classification of the paper is unchanged.  A value without consumers
    is local to its producer's cluster. *)

open Ncdrf_ir
open Ncdrf_sched

type t =
  | Global
  | Shared of int list
      (** sorted consumer-cluster set; [2 <= length < num_clusters] *)
  | Local of int  (** cluster index *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Clusters whose subfile must hold the value: all of them for
    [Global], the member set for [Shared], a singleton for [Local]. *)
val clusters_of : num_clusters:int -> t -> int list

(** Class of the value produced by node [v].

    @raise Invalid_argument if [v] produces no value (is a store). *)
val value_class : Schedule.t -> int -> t

(** All value-producing nodes with their class, in node order. *)
val classify : Schedule.t -> (Ddg.node * t) list

(** Counts [(replicated, locals per cluster)]: [Global] and [Shared]
    values both count as replicated. *)
val counts : Schedule.t -> int * int array
