open Ncdrf_ir
open Ncdrf_sched

type t =
  | Global
  | Shared of int list
  | Local of int

let equal a b =
  match a, b with
  | Global, Global -> true
  | Shared x, Shared y -> x = y
  | Local x, Local y -> x = y
  | _, _ -> false

let pp ppf = function
  | Global -> Format.pp_print_string ppf "GL"
  | Shared cs ->
    Format.fprintf ppf "S%s" (String.concat "" (List.map string_of_int cs))
  | Local 0 -> Format.pp_print_string ppf "LO"
  | Local 1 -> Format.pp_print_string ppf "RO"
  | Local c -> Format.fprintf ppf "C%d" c

let clusters_of ~num_clusters = function
  | Global -> List.init num_clusters Fun.id
  | Shared cs -> cs
  | Local c -> [ c ]

let value_class sched v =
  let ddg = sched.Schedule.ddg in
  let node = Ddg.node ddg v in
  if not (Opcode.produces_value node.Ddg.opcode) then
    invalid_arg (Printf.sprintf "Classify.value_class: %s produces no value" node.Ddg.label);
  let consumer_clusters =
    List.map (fun e -> Schedule.cluster sched e.Ddg.dst) (Ddg.consumers ddg v)
  in
  match consumer_clusters with
  | [] -> Local (Schedule.cluster sched v)
  | first :: rest ->
    if List.for_all (fun c -> c = first) rest then Local first
    else begin
      let num_clusters = Ncdrf_machine.Config.num_clusters sched.Schedule.config in
      let members = List.sort_uniq compare consumer_clusters in
      if List.length members >= num_clusters then Global else Shared members
    end

let classify sched =
  let ddg = sched.Schedule.ddg in
  Ddg.fold_nodes ddg ~init:[] ~f:(fun acc node ->
      if Opcode.produces_value node.Ddg.opcode then
        (node, value_class sched node.Ddg.id) :: acc
      else acc)
  |> List.rev

let counts sched =
  let n_clusters = Ncdrf_machine.Config.num_clusters sched.Schedule.config in
  let locals = Array.make n_clusters 0 in
  let globals = ref 0 in
  let tally (_, cls) =
    match cls with
    | Global | Shared _ -> incr globals
    | Local c -> locals.(c) <- locals.(c) + 1
  in
  List.iter tally (classify sched);
  (!globals, locals)
