(** Register requirements of a schedule under the register-file models.

    For the non-consistent clustered register file, each replicated
    value occupies the {e same} register index in every subfile that
    holds it (on a two-cluster machine every replicated value is global
    and written to both subfiles, exactly like a consistent dual file
    would), while local values use the remaining registers of their
    cluster's subfile.  A loop is allocatable with subfiles of [R]
    registers iff the replicated values plus each cluster's locals can
    be jointly allocated within [R].  At [k > 2] clusters a value
    consumed by a proper subset of the clusters ([Classify.Shared]) is
    replicated only in those subfiles. *)

open Ncdrf_regalloc
open Ncdrf_sched

type detail = {
  requirement : int;  (** registers per subfile: max over clusters *)
  cluster_requirements : int array;
      (** smallest capacity at which that cluster's replicated prefix +
          locals allocate, taken per cluster in isolation;
          [requirement] uses a single shared placement for all
          clusters, so it is at least the max of these *)
  global_requirement : int;  (** replicated values allocated alone *)
  local_requirements : int array;  (** each cluster's locals alone *)
  max_live : int array;  (** per-cluster MaxLive lower bound *)
}

(** Requirement with a unified (or consistent dual) register file:
    smallest capacity allocating all values. *)
val unified : ?strategy:Alloc.strategy -> ?order:Alloc.order -> Schedule.t -> int

(** Requirement detail with a non-consistent clustered register file
    under the schedule's current cluster assignment. *)
val partitioned :
  ?strategy:Alloc.strategy -> ?order:Alloc.order -> Schedule.t -> detail

(** Smallest capacity jointly allocating the globals (one shared
    placement, replicated in every cluster) plus each cluster's locals
    on top of it.  [upper] caps the search (default: a generous
    internal bound).

    @raise Ncdrf_error.Error.Error with category [Alloc_infeasible] and
    the range searched when no capacity up to [upper] is feasible (only
    reachable with a small explicit [upper]). *)
val joint_requirement :
  ?strategy:Alloc.strategy ->
  ?order:Alloc.order ->
  ?upper:int ->
  ii:int ->
  globals:Lifetime.t list ->
  locals:Lifetime.t list array ->
  unit ->
  int

(** Per-cluster MaxLive lower bound (each replicated value counted in
    every cluster holding it); the estimate the swap pass minimises.
    For a single-cluster machine this is plain MaxLive.  [lifetimes],
    when supplied, must equal [Lifetime.of_schedule sched] — callers
    that already hold the list (the spiller's lower-bound hook) pass it
    to skip the recompute. *)
val cluster_max_live : ?lifetimes:Lifetime.t list -> Schedule.t -> int array

(** [max] of {!cluster_max_live} — the scalar swap cost. *)
val max_live_cost : ?lifetimes:Lifetime.t list -> Schedule.t -> int

(** Lifetimes grouped by class: [(replicated, per-cluster locals)].
    [Global] and [Shared] values both land in the first component. *)
val grouped_lifetimes :
  ?lifetimes:Lifetime.t list -> Schedule.t -> Lifetime.t list * Lifetime.t list array

(** Concrete register assignment for a non-consistent clustered
    register file at the minimal capacity: each replicated value
    occupies the same index in every subfile of its replica set
    (carried alongside the placement), locals their own cluster's.
    Used by the execution simulator. *)
type allocation = {
  capacity : int;  (** registers per subfile *)
  globals : (Alloc.placement * int list) list;
      (** replicated values with their replica clusters *)
  locals : Alloc.placement list array;  (** per cluster *)
}

val partitioned_allocation :
  ?strategy:Alloc.strategy -> ?order:Alloc.order -> Schedule.t -> allocation
