open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched

type workload = {
  ddg : Ddg.t;
  weight : float;
}

type measurement = {
  loop : workload;
  requirement : int;
  ii : int;
}

module Pool = Ncdrf_parallel.Pool
module Error = Ncdrf_error.Error
module Failures = Ncdrf_error.Failures

(* Shard assignment hashes the loop's content digest (the same identity
   the ledger sorts on), not its list position, so the partition is
   deterministic, independent of suite order, worker count, and the
   process that computes it — shard i of N always compiles the same
   loops on every machine.  MD5 is stable across OCaml versions, unlike
   [Hashtbl.hash]. *)
let shard_of ~count ddg =
  let hex = Digest.to_hex (Digest.string (Ddg.digest ddg)) in
  int_of_string ("0x" ^ String.sub hex 0 8) mod count

let shard ~index ~count loops =
  if count < 1 then invalid_arg "Suite_stats.shard: count < 1";
  if index < 0 || index >= count then invalid_arg "Suite_stats.shard: index out of range";
  if count = 1 then loops
  else List.filter (fun l -> shard_of ~count l.ddg = index) loops

(* Parallel map over the suite, deterministic: the pool returns results
   in input order, so serial and parallel runs are observably
   identical.  Failures surface with the loop's name attached.

   With a [failures] collector the sweep degrades gracefully instead:
   each failing loop is classified and recorded — in input order, after
   the whole map has settled, so the manifest is deterministic under
   any worker count — and dropped from the results.  The collector's
   policy ([fail_fast] / [max_failures]) may abort during recording.

   [timeout_s] bounds each point with a fresh deadline token (the
   [--timeout] flag); [deadline] installs one shared token around every
   point — the serving daemon passes its per-request token here so
   pool workers see the request's deadline and drain-cancellation even
   though they run on other domains. *)
let suite_map ?pool ?failures ?timeout_s ?deadline ~f loops =
  let f =
    match deadline with
    | None -> f
    | Some tok -> fun l -> Ncdrf_error.Deadline.with_token tok (fun () -> f l)
  in
  let f =
    match timeout_s with
    | None -> f
    | Some _ -> fun l -> Ncdrf_error.Deadline.with_timeout ?timeout_s (fun () -> f l)
  in
  match failures with
  | None ->
    (match pool with
     | None -> List.map f loops
     | Some pool -> Pool.map pool ~label:(fun l -> Ddg.name l.ddg) f loops)
  | Some failures ->
    let outcomes =
      match pool with
      | None ->
        List.map (fun l -> try Ok (f l) with e -> Stdlib.Error (Ddg.name l.ddg, e)) loops
      | Some pool -> Pool.try_map_exn pool ~label:(fun l -> Ddg.name l.ddg) f loops
    in
    List.filter_map
      (function
        | Ok v -> Some v
        | Stdlib.Error (loop, e) ->
          Failures.record failures (Error.classify_exn ~stage:"pipeline" ~loop e);
          None)
      outcomes

let measure_all ?pool ?failures ?timeout_s ?deadline ~config ~models loops =
  let one loop =
    (* Each loop is one observed point covering every model measured on
       it, so ledger-armed table runs get one record per (config, loop)
       just like Pipeline.run does for capacity sweeps. *)
    Pipeline.with_point ~config ~models loop.ddg @@ fun () ->
    Ncdrf_telemetry.Telemetry.incr "pipeline.loops";
    Ncdrf_telemetry.Telemetry.incr ~by:(Config.num_clusters config) "cluster.subfiles";
    if Config.has_port_caps config then
      Ncdrf_telemetry.Telemetry.incr "ports.capped_points";
    let raw = Artifact.raw_schedule ~config loop.ddg in
    let rows =
      List.map
        (fun model ->
          let v = Artifact.view_of_schedule ~model raw in
          { loop; requirement = v.Artifact.requirement; ii = Schedule.ii v.Artifact.sched })
        models
    in
    (if Ncdrf_telemetry.Trace.active () then begin
       (match rows with
       | [ row ] -> Ncdrf_telemetry.Trace.set_result ~requirement:row.requirement ()
       | _ -> ());
       (* MII straight from the bound computation, not Artifact.mii:
          going through the artifact would add cache entries and fault
          points that an untraced run does not have. *)
       Ncdrf_telemetry.Trace.set_result ~mii:(Mii.mii config loop.ddg)
         ~maxlive:(Requirements.max_live_cost raw) ()
     end);
    rows
  in
  let per_loop = suite_map ?pool ?failures ?timeout_s ?deadline ~f:one loops in
  List.mapi (fun i model -> (model, List.map (fun row -> List.nth row i) per_loop)) models

let measure ?pool ?failures ?timeout_s ?deadline ~config ~model loops =
  match measure_all ?pool ?failures ?timeout_s ?deadline ~config ~models:[ model ] loops with
  | [ (_, ms) ] -> ms
  | _ -> assert false

let cumulative ~weight_of measurements ~points =
  (* Sort the requirements once and prefix-sum the weights, then answer
     each point with a binary search: O((n + points) log n) instead of
     the old O(n * points) rescan.  Re-ordering the summation is safe
     for byte-identity because suite weights are integer-valued floats
     and [weight * ii] products are exact integers well below 2^53, so
     every partial sum is exact whatever the order. *)
  let arr =
    Array.of_list (List.map (fun m -> (m.requirement, weight_of m)) measurements)
  in
  Array.sort (fun (a, _) (b, _) -> compare (a : int) b) arr;
  let n = Array.length arr in
  let prefix = Array.make (n + 1) 0.0 in
  for i = 0 to n - 1 do
    prefix.(i + 1) <- prefix.(i) +. snd arr.(i)
  done;
  let total = prefix.(n) in
  let covered r =
    (* number of entries with requirement <= r *)
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst arr.(mid) <= r then lo := mid + 1 else hi := mid
    done;
    prefix.(!lo)
  in
  let at r = if total = 0.0 then 0.0 else 100.0 *. covered r /. total in
  List.map (fun r -> (r, at r)) points

let static_cumulative measurements ~points =
  cumulative ~weight_of:(fun _ -> 1.0) measurements ~points

let dynamic_cumulative measurements ~points =
  cumulative
    ~weight_of:(fun m -> m.loop.weight *. float_of_int m.ii)
    measurements ~points

let allocatable measurements ~r =
  let static = static_cumulative measurements ~points:[ r ] in
  let dynamic = dynamic_cumulative measurements ~points:[ r ] in
  match static, dynamic with
  | [ (_, s) ], [ (_, d) ] -> (s, d)
  | _ -> assert false

type performance = {
  relative : float;
  density : float;
  total_spills : int;
  loops_spilled : int;
  unfit : int;
}

let performance ?pool ?failures ?timeout_s ?deadline ?spill ~config ~model ~capacity loops =
  let ideal_time = ref 0.0 in
  let achieved_time = ref 0.0 in
  let traffic_num = ref 0.0 in
  let traffic_den = ref 0.0 in
  let total_spills = ref 0 in
  let loops_spilled = ref 0 in
  let unfit = ref 0 in
  let bandwidth = float_of_int (Config.memory_bandwidth config) in
  (* Per-loop compilation fans out over the pool; the float accumulation
     stays a serial fold in input order so the sums are bit-identical
     whatever the worker count. *)
  let compiled =
    suite_map ?pool ?failures ?timeout_s ?deadline
      ~f:(fun loop -> (loop, Pipeline.run ~config ~model ~capacity ?spill loop.ddg))
      loops
  in
  let one (loop, stats) =
    (* [stats.mii] is the MII of the original (pre-spill) graph, the
       same bound the serial code recomputed here. *)
    let ideal_ii = float_of_int stats.Pipeline.mii in
    (* The Ideal model achieves the spill-free II; use the actual
       scheduler result for it rather than the bound. *)
    let ideal_ii =
      if model = Model.Ideal then float_of_int stats.Pipeline.ii else ideal_ii
    in
    ideal_time := !ideal_time +. (loop.weight *. ideal_ii);
    achieved_time := !achieved_time +. (loop.weight *. float_of_int stats.Pipeline.ii);
    traffic_num :=
      !traffic_num +. (loop.weight *. float_of_int stats.Pipeline.memops_per_iter);
    traffic_den :=
      !traffic_den +. (loop.weight *. float_of_int stats.Pipeline.ii *. bandwidth);
    total_spills := !total_spills + stats.Pipeline.spilled;
    if stats.Pipeline.spilled > 0 then incr loops_spilled;
    if not stats.Pipeline.fits then incr unfit
  in
  List.iter one compiled;
  {
    relative = (if !achieved_time = 0.0 then 1.0 else !ideal_time /. !achieved_time);
    density = (if !traffic_den = 0.0 then 0.0 else !traffic_num /. !traffic_den);
    total_spills = !total_spills;
    loops_spilled = !loops_spilled;
    unfit = !unfit;
  }
