open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched

type workload = {
  ddg : Ddg.t;
  weight : float;
}

type measurement = {
  loop : workload;
  requirement : int;
  ii : int;
}

module Pool = Ncdrf_parallel.Pool

(* Parallel map over the suite, deterministic: the pool returns results
   in input order, so serial and parallel runs are observably
   identical.  Failures surface with the loop's name attached. *)
let suite_map ?pool ~f loops =
  match pool with
  | None -> List.map f loops
  | Some pool -> Pool.map pool ~label:(fun l -> Ddg.name l.ddg) f loops

let measure ?pool ~config ~model loops =
  let one loop =
    Ncdrf_telemetry.Telemetry.incr "pipeline.loops";
    let raw =
      Ncdrf_telemetry.Telemetry.time "schedule" (fun () -> Modulo.schedule config loop.ddg)
    in
    let sched, requirement = Pipeline.requirement_of_model model raw in
    { loop; requirement; ii = Schedule.ii sched }
  in
  suite_map ?pool ~f:one loops

let cumulative ~weight_of measurements ~points =
  let total = List.fold_left (fun acc m -> acc +. weight_of m) 0.0 measurements in
  let at r =
    let covered =
      List.fold_left
        (fun acc m -> if m.requirement <= r then acc +. weight_of m else acc)
        0.0 measurements
    in
    if total = 0.0 then 0.0 else 100.0 *. covered /. total
  in
  List.map (fun r -> (r, at r)) points

let static_cumulative measurements ~points =
  cumulative ~weight_of:(fun _ -> 1.0) measurements ~points

let dynamic_cumulative measurements ~points =
  cumulative
    ~weight_of:(fun m -> m.loop.weight *. float_of_int m.ii)
    measurements ~points

let allocatable measurements ~r =
  let static = static_cumulative measurements ~points:[ r ] in
  let dynamic = dynamic_cumulative measurements ~points:[ r ] in
  match static, dynamic with
  | [ (_, s) ], [ (_, d) ] -> (s, d)
  | _ -> assert false

type performance = {
  relative : float;
  density : float;
  total_spills : int;
  loops_spilled : int;
  unfit : int;
}

let performance ?pool ~config ~model ~capacity loops =
  let ideal_time = ref 0.0 in
  let achieved_time = ref 0.0 in
  let traffic_num = ref 0.0 in
  let traffic_den = ref 0.0 in
  let total_spills = ref 0 in
  let loops_spilled = ref 0 in
  let unfit = ref 0 in
  let bandwidth = float_of_int (Config.memory_bandwidth config) in
  (* Per-loop compilation fans out over the pool; the float accumulation
     stays a serial fold in input order so the sums are bit-identical
     whatever the worker count. *)
  let compiled =
    suite_map ?pool ~f:(fun loop -> (loop, Pipeline.run ~config ~model ~capacity loop.ddg))
      loops
  in
  let one (loop, stats) =
    (* [stats.mii] is the MII of the original (pre-spill) graph, the
       same bound the serial code recomputed here. *)
    let ideal_ii = float_of_int stats.Pipeline.mii in
    (* The Ideal model achieves the spill-free II; use the actual
       scheduler result for it rather than the bound. *)
    let ideal_ii =
      if model = Model.Ideal then float_of_int stats.Pipeline.ii else ideal_ii
    in
    ideal_time := !ideal_time +. (loop.weight *. ideal_ii);
    achieved_time := !achieved_time +. (loop.weight *. float_of_int stats.Pipeline.ii);
    traffic_num :=
      !traffic_num +. (loop.weight *. float_of_int stats.Pipeline.memops_per_iter);
    traffic_den :=
      !traffic_den +. (loop.weight *. float_of_int stats.Pipeline.ii *. bandwidth);
    total_spills := !total_spills + stats.Pipeline.spilled;
    if stats.Pipeline.spilled > 0 then incr loops_spilled;
    if not stats.Pipeline.fits then incr unfit
  in
  List.iter one compiled;
  {
    relative = (if !achieved_time = 0.0 then 1.0 else !ideal_time /. !achieved_time);
    density = (if !traffic_den = 0.0 then 0.0 else !traffic_num /. !traffic_den);
    total_spills = !total_spills;
    loops_spilled = !loops_spilled;
    unfit = !unfit;
  }
