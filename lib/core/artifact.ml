open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched
module Cache = Ncdrf_cache.Cache
module Store = Ncdrf_cache.Store
module Telemetry = Ncdrf_telemetry.Telemetry
module Error = Ncdrf_error.Error
module Fault = Ncdrf_fault.Fault
module Trace = Ncdrf_telemetry.Trace

type t = {
  ddg : Ddg.t;
  config : Config.t;
  mii : int;
  raw : Schedule.t;
}

type view = {
  sched : Schedule.t;
  requirement : int;
  swaps : int;
}

(* One cache holds every stage; the variant keeps the table monomorphic
   while the key's stage tag keeps entries distinct. *)
type cached =
  | Mii_of of int
  | Raw_of of Schedule.t
  | View_of of view
  | Spill_of of Schedule.t

let default_capacity = 65536

let make_cache capacity =
  Cache.create ~stripes:(max 1 (min 8 capacity)) ~name:"artifact" ~capacity ()

let cache : cached Cache.t ref = ref (make_cache default_capacity)
let enabled = Atomic.make true

let set_cache_enabled b = Atomic.set enabled b
let cache_enabled () = Atomic.get enabled
let set_cache_capacity capacity = cache := make_cache capacity
let clear_cache () =
  Cache.clear !cache;
  (* The allocator's conflict-table memo is state with the same
     benchmark-isolation needs as the compile cache. *)
  Ncdrf_regalloc.Conflict.clear_memo ()
let cache_stats () = Cache.stats !cache

(* The fault point sits in front of the lookup (memo keys do not carry
   the loop name), so an armed "cache" fault fires on hits and misses
   alike.  Exceptions from [compute] propagate uncached — the cache
   never memoizes a failure.

   When an ambient disk store is open, a memory miss consults it before
   computing: a disk hit decodes the stored artifact (skipping the
   compute and its stage spans), a disk miss computes and then publishes
   the encoding.  Decoding is total — any malformed payload is [None],
   i.e. a miss — so a corrupt store entry can only cost a recompute. *)
let memo ~loop ?disk key compute =
  Fault.point ~stage:"cache" ~key:loop;
  let compute =
    match disk with
    | None -> compute
    | Some (encode, decode) -> (
      fun () ->
        match Store.ambient () with
        | None -> compute ()
        | Some store -> (
          match Store.load store ~key ~decode with
          | Some v -> v
          | None ->
            let v = compute () in
            Store.save store ~key (encode v);
            v))
  in
  if Atomic.get enabled then Cache.find_or_add !cache ~key compute else compute ()

let wrong_stage () = invalid_arg "Artifact: cache key collided across stages"

(* ------------------------------------------------------------------ *)
(* Disk payload codecs.  Payloads carry only integers — an II plus
   (cycle, cluster) placement pairs — and schedules are rebuilt through
   [Schedule.make] against the config and graph the caller already
   holds, so nothing structural is trusted from disk.  [Schedule.make]'s
   validation rejecting a payload (graph changed shape under the same
   digest is impossible, but a colliding or hand-edited entry is not)
   reads as a miss. *)

let encode_schedule s =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (string_of_int s.Schedule.ii);
  Array.iter
    (fun p ->
      Buffer.add_char buf '|';
      Buffer.add_string buf (string_of_int p.Schedule.cycle);
      Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int p.Schedule.cluster))
    s.Schedule.placements;
  Buffer.contents buf

let decode_schedule ~config ddg str =
  match String.split_on_char '|' str with
  | [] -> None
  | ii_s :: cells ->
    (match int_of_string_opt ii_s with
    | None -> None
    | Some ii ->
      if List.length cells <> Ddg.num_nodes ddg then None
      else begin
        let ok = ref true in
        let placements =
          Array.of_list
            (List.map
               (fun cell ->
                 match String.split_on_char ',' cell with
                 | [ c; k ] -> (
                   match (int_of_string_opt c, int_of_string_opt k) with
                   | Some cycle, Some cluster -> { Schedule.cycle; cluster }
                   | _ ->
                     ok := false;
                     { Schedule.cycle = 0; cluster = 0 })
                 | _ ->
                   ok := false;
                   { Schedule.cycle = 0; cluster = 0 })
               cells)
        in
        if not !ok then None
        else
          match Schedule.make ~config ~ii ~placements ddg with
          | s -> Some s
          | exception Invalid_argument _ -> None
      end)

let mii_codec =
  ( (function Mii_of m -> string_of_int m | _ -> wrong_stage ()),
    fun str -> Option.map (fun m -> Mii_of m) (int_of_string_opt str) )

let raw_codec ~config ddg =
  ( (function Raw_of s -> encode_schedule s | _ -> wrong_stage ()),
    fun str -> Option.map (fun s -> Raw_of s) (decode_schedule ~config ddg str) )

let spill_codec ~config ddg =
  ( (function Spill_of s -> encode_schedule s | _ -> wrong_stage ()),
    fun str -> Option.map (fun s -> Spill_of s) (decode_schedule ~config ddg str) )

let view_codec ~config ddg =
  ( (function
    | View_of v ->
      Printf.sprintf "%d!%d!%s" v.requirement v.swaps (encode_schedule v.sched)
    | _ -> wrong_stage ()),
    fun str ->
      match String.split_on_char '!' str with
      | [ req_s; swaps_s; sched_s ] -> (
        match (int_of_string_opt req_s, int_of_string_opt swaps_s) with
        | Some requirement, Some swaps ->
          Option.map
            (fun sched -> View_of { sched; requirement; swaps })
            (decode_schedule ~config ddg sched_s)
        | _ -> None)
      | _ -> None )

(* Key layout: config fingerprint + '\x01' + ddg digest + '#stage'.
   Fingerprint and digest are both injective serializations, so equal
   keys mean equal compilation inputs. *)
let base_key ~config ddg = Config.fingerprint config ^ "\x01" ^ Ddg.digest ddg

(* Each stage runs inside an [Error.boundary], so whatever escapes a
   stage is a classified [Error.Error] carrying the loop name and config
   fingerprint — never a raw exception.  Stage entry is also the
   canonical deadline poll: an expired or canceled request dies here
   with a typed error before the stage spends any work (a no-op unless
   a deadline token is ambiently installed). *)
let stage_boundary ~stage ~config ddg f =
  Error.boundary ~stage ~loop:(Ddg.name ddg) ~config:(Config.fingerprint config)
    (fun () ->
      Ncdrf_error.Deadline.check ~stage;
      f ())

let mii ~config ddg =
  stage_boundary ~stage:"mii" ~config ddg @@ fun () ->
  let compute () =
    Fault.point ~stage:"mii" ~key:(Ddg.name ddg);
    Mii_of (Telemetry.time "mii" (fun () -> Mii.mii config ddg))
  in
  match memo ~loop:(Ddg.name ddg) ~disk:mii_codec (base_key ~config ddg ^ "#mii") compute with
  | Mii_of m ->
    (* Stamped on the ambient point here, after the memo, so the ledger
       sees the MII on cache hits too. *)
    Trace.set_result ~mii:m ();
    m
  | Raw_of _ | View_of _ | Spill_of _ -> wrong_stage ()

let raw_schedule ~config ddg =
  stage_boundary ~stage:"schedule" ~config ddg @@ fun () ->
  let compute () =
    Fault.point ~stage:"schedule" ~key:(Ddg.name ddg);
    Raw_of (Telemetry.time "schedule" (fun () -> Modulo.schedule config ddg))
  in
  match
    memo ~loop:(Ddg.name ddg) ~disk:(raw_codec ~config ddg) (base_key ~config ddg ^ "#raw")
      compute
  with
  | Raw_of s ->
    Trace.set_ii (Schedule.ii s);
    s
  | Mii_of _ | View_of _ | Spill_of _ -> wrong_stage ()

let scheduled ~config ddg =
  { ddg; config; mii = mii ~config ddg; raw = raw_schedule ~config ddg }

let apply_model model sched =
  match model with
  | Model.Ideal | Model.Unified ->
    (sched, Telemetry.time "alloc" (fun () -> Requirements.unified sched))
  | Model.Partitioned ->
    ( sched,
      Telemetry.time "alloc" (fun () ->
          (Requirements.partitioned sched).Requirements.requirement) )
  | Model.Swapped ->
    let swapped, _ = Telemetry.time "swap" (fun () -> Swap.improve sched) in
    ( swapped,
      Telemetry.time "alloc" (fun () ->
          (Requirements.partitioned swapped).Requirements.requirement) )

let count_swaps model before after =
  match model with
  | Model.Swapped ->
    (* A swap exchanges the clusters of two operations, so the swaps
       applied are the pairs of nodes that moved in opposite directions
       between the same two clusters.  A one-sided migration (a node
       whose move has no partner) is not half a swap: pair the moves
       per cluster pair instead of dividing the total, which would
       silently truncate on odd counts. *)
    let n = Ddg.num_nodes before.Schedule.ddg in
    let moves : (int * int, int) Hashtbl.t = Hashtbl.create 8 in
    for v = 0 to n - 1 do
      let b = Schedule.cluster before v and a = Schedule.cluster after v in
      if b <> a then
        Hashtbl.replace moves (b, a)
          (1 + Option.value ~default:0 (Hashtbl.find_opt moves (b, a)))
    done;
    Hashtbl.fold
      (fun (b, a) count acc ->
        if b < a then
          acc + min count (Option.value ~default:0 (Hashtbl.find_opt moves (a, b)))
        else acc)
      moves 0
  | Model.Ideal | Model.Unified | Model.Partitioned -> 0

(* Ideal and Unified apply the same transform (no transform, unified
   allocation), so they share one view entry. *)
let view_tag = function
  | Model.Ideal | Model.Unified -> "unified"
  | Model.Partitioned -> "partitioned"
  | Model.Swapped -> "swapped"

(* A view's input is the schedule, not just the graph: the spiller calls
   it on schedules of intermediate graphs at bumped IIs, so the key
   includes the placements.  Digesting them keeps keys short. *)
let schedule_key sched =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (string_of_int sched.Schedule.ii);
  Array.iter
    (fun p ->
      Buffer.add_char buf ';';
      Buffer.add_string buf (string_of_int p.Schedule.cycle);
      Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int p.Schedule.cluster))
    sched.Schedule.placements;
  Config.fingerprint sched.Schedule.config
  ^ "\x01"
  ^ Ddg.digest sched.Schedule.ddg
  ^ "#view:"
  ^ Digest.to_hex (Digest.string (Buffer.contents buf))

let view_of_schedule ~model sched =
  let ddg = sched.Schedule.ddg in
  stage_boundary ~stage:"alloc" ~config:sched.Schedule.config ddg @@ fun () ->
  let compute () =
    Fault.point ~stage:"alloc" ~key:(Ddg.name ddg);
    let transformed, requirement = apply_model model sched in
    View_of { sched = transformed; requirement; swaps = count_swaps model sched transformed }
  in
  match
    memo ~loop:(Ddg.name ddg)
      ~disk:(view_codec ~config:sched.Schedule.config ddg)
      (schedule_key sched ^ ":" ^ view_tag model)
      compute
  with
  | View_of v -> v
  | Mii_of _ | Raw_of _ | Spill_of _ -> wrong_stage ()

let view t ~model = view_of_schedule ~model t.raw

let is_spill_load node =
  match node.Ddg.opcode with
  | Opcode.Load (Opcode.Spill _) -> true
  | _ -> false

let has_spill_load ddg =
  Ddg.fold_nodes ddg ~init:false ~f:(fun acc n -> acc || is_spill_load n)

(* The spiller's scheduling step (Spiller.run's default), memoized.  No
   "schedule" span here: spiller rounds are profiled by the enclosing
   "spill" span, as before the cache existed.

   Round 0 of a capacity run asks for the original graph at min_ii 1:
   that is exactly {!raw_schedule} — [schedule_with_min_ii ~min_ii:1]
   starts the II search at the MII like [schedule], and [push_late]
   over a graph with no spill loads moves nothing (normalize is
   idempotent, so the result is structurally identical).  Delegating
   shares the "#raw" memo entry instead of computing the same schedule
   twice under two keys. *)
let spill_schedule ~config ~min_ii ddg =
  if min_ii <= 1 && not (has_spill_load ddg) then raw_schedule ~config ddg
  else begin
    stage_boundary ~stage:"schedule" ~config ddg @@ fun () ->
    let compute () =
      let raw = Modulo.schedule_with_min_ii ~min_ii config ddg in
      Spill_of (Adjust.push_late raw ~eligible:is_spill_load)
    in
    match
      memo ~loop:(Ddg.name ddg) ~disk:(spill_codec ~config ddg)
        (base_key ~config ddg ^ "#spill:" ^ string_of_int min_ii)
        compute
    with
    | Spill_of s -> s
    | Mii_of _ | Raw_of _ | View_of _ -> wrong_stage ()
  end
