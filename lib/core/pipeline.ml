open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched
open Ncdrf_spill
module Telemetry = Ncdrf_telemetry.Telemetry
module Trace = Ncdrf_telemetry.Trace
module Ledger = Ncdrf_telemetry.Ledger
module Error = Ncdrf_error.Error
module Fault = Ncdrf_fault.Fault
module Regalloc = Ncdrf_regalloc

type stats = {
  name : string;
  model : Model.t;
  mii : int;
  ii : int;
  stages : int;
  requirement : int;
  capacity : int option;
  fits : bool;
  spilled : int;
  added_memops : int;
  ii_bumps : int;
  memops_per_iter : int;
  density : float;
  swaps : int;
  schedule : Schedule.t;
  error : Ncdrf_error.Error.t option;
}

let requirement_of_model = Artifact.apply_model
let count_swaps = Artifact.count_swaps

(* Config fingerprints embed NUL-separated binary structure; the ledger
   carries the display name plus a short digest for identity. *)
let short_fingerprint config =
  String.sub (Digest.to_hex (Digest.string (Config.fingerprint config))) 0 12

(* Harvest the ambient point context into one ledger record.  Stage
   durations are summed per name (a point can record e.g. several
   "alloc" spans across spill rounds) and kept as integer nanoseconds,
   which round-trip exactly through JSON. *)
let point_record ~models ~capacity ~t0 ~ok (p : Trace.point) =
  let opt v = if v < 0 then None else Some v in
  let stages =
    let tbl : (string, float) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (name, dt) ->
        Hashtbl.replace tbl name
          (dt +. Option.value ~default:0.0 (Hashtbl.find_opt tbl name)))
      p.Trace.stages;
    Hashtbl.fold (fun name dt acc -> (name, int_of_float (dt *. 1e9)) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    Ledger.label = Ledger.label ();
    request = Trace.current_request ();
    loop = p.Trace.loop;
    config = p.Trace.config;
    fp = p.Trace.fp;
    models;
    capacity;
    clusters = opt p.Trace.clusters;
    mii = opt p.Trace.mii;
    ii = opt p.Trace.ii;
    rounds = opt p.Trace.rounds;
    spilled = opt p.Trace.spilled;
    requirement = opt p.Trace.requirement;
    maxlive = opt p.Trace.maxlive;
    spill_full = opt p.Trace.spill_full;
    spill_incremental = opt p.Trace.spill_incremental;
    cache_hits = p.Trace.cache_hits;
    cache_misses = p.Trace.cache_misses;
    disk_hits = p.Trace.disk_hits;
    disk_misses = p.Trace.disk_misses;
    stages;
    total_ns = Int64.to_int (Int64.sub (Telemetry.now_ns ()) t0);
    ok;
    error = p.Trace.error;
  }

(* The generic observed-unit wrapper: install an ambient trace context
   under the given labels and harvest it into one ledger record on
   return or raise.  [with_point] instantiates it for (config, loop)
   compilation points; the serving daemon instantiates it per request
   (loop = request id, config = "serve/<kind>"). *)
let observe ~loop ~config ?(fp = "") ?(models = "") ?capacity f =
  if not (Trace.active ()) then f ()
  else begin
    let t0 = Telemetry.now_ns () in
    Trace.with_context ~loop ~config ~fp @@ fun () ->
    let record ~ok =
      if Ledger.enabled () then
        Option.iter
          (fun p -> Ledger.add (point_record ~models ~capacity ~t0 ~ok p))
          (Trace.current ())
    in
    match f () with
    | v ->
      record ~ok:true;
      v
    | exception e ->
      (match e with
      | Sys.Break -> ()
      | _ ->
        Trace.set_error (Error.category_name (Error.category_of_exn e));
        record ~ok:false);
      raise e
  end

let with_point ~config ~models ?capacity ddg f =
  if not (Trace.active ()) then f ()
  else begin
    let models = String.concat "+" (List.map Model.to_string models) in
    observe ~loop:(Ddg.name ddg) ~config:config.Config.name
      ~fp:(short_fingerprint config) ~models ?capacity (fun () ->
        Trace.set_result ~clusters:(Config.num_clusters config) ();
        f ())
  end

(* Cheap, sound lower bound on a raw schedule's register requirement
   under [model], used by the spiller to skip exact measurements of
   rounds that are provably still over capacity.  Unified: MaxLive.
   Partitioned: per-cluster MaxLive under the current assignment.
   Swapped: the assignment will change, but every cluster counts its
   locals plus all globals, so the widest cluster holds at least
   [ceil (MaxLive / num_clusters)] values under any assignment. *)
let spill_lower_bound ~config ~model raw ~lifetimes =
  match model with
  | Model.Ideal -> 0
  | Model.Unified ->
    Regalloc.Lifetime.max_live ~ii:(Schedule.ii raw) (Lazy.force lifetimes)
  | Model.Partitioned -> Requirements.max_live_cost ~lifetimes:(Lazy.force lifetimes) raw
  | Model.Swapped ->
    let ml = Regalloc.Lifetime.max_live ~ii:(Schedule.ii raw) (Lazy.force lifetimes) in
    let k = max 1 (Config.num_clusters config) in
    (ml + k - 1) / k

let run ~config ~model ?capacity ?victim ?(spill = Spiller.default_policy) ddg =
  with_point ~config ~models:[ model ] ?capacity ddg @@ fun () ->
  Telemetry.incr "pipeline.loops";
  Telemetry.incr ~by:(Config.num_clusters config) "cluster.subfiles";
  if Config.has_port_caps config then Telemetry.incr "ports.capped_points";
  let mii = Artifact.mii ~config ddg in
  let finish ?error ~final_ddg ~sched ~requirement ~fits ~spilled ~added_memops ~ii_bumps
      ~swaps () =
    {
      name = Ddg.name ddg;
      model;
      mii;
      ii = Schedule.ii sched;
      stages = Schedule.stages sched;
      requirement;
      capacity;
      fits;
      spilled;
      added_memops;
      ii_bumps;
      memops_per_iter = Traffic.memops_per_iteration final_ddg;
      density = Traffic.density sched;
      swaps;
      schedule = sched;
      error;
    }
  in
  match capacity, model with
  | None, _ | Some _, Model.Ideal ->
    let artifact = Artifact.scheduled ~config ddg in
    let v = Artifact.view artifact ~model in
    let fits =
      match capacity, model with
      | _, Model.Ideal | None, _ -> true
      | Some cap, _ -> v.Artifact.requirement <= cap
    in
    if Trace.active () then
      Trace.set_result ~ii:(Schedule.ii v.Artifact.sched)
        ~requirement:v.Artifact.requirement
        ~maxlive:(Requirements.max_live_cost v.Artifact.sched) ();
    finish ~final_ddg:ddg ~sched:v.Artifact.sched ~requirement:v.Artifact.requirement
      ~fits ~spilled:0 ~added_memops:0 ~ii_bumps:0 ~swaps:v.Artifact.swaps ()
  | Some cap, _ ->
    (* Round 0 of the spill loop schedules the original graph at the
       free-running II and measures it — exactly what a capacity-less
       run computes.  Doing that {e before} entering the spiller keeps
       the common fits-immediately case out of the spill stage entirely
       (and shares the raw-schedule memo entry with free runs of the
       same point).  The spiller's entry fault point fires here so an
       armed "spill" fault still hits every capacity run; the selection
       hash is stateless, so the second firing inside [Spiller.run] on
       the slow path decides identically (a no-op). *)
    Fault.point ~stage:"spill" ~key:(Ddg.name ddg);
    let raw0 = Artifact.spill_schedule ~config ~min_ii:1 ddg in
    let v0 = Artifact.view_of_schedule ~model raw0 in
    if v0.Artifact.requirement <= cap then begin
      Telemetry.incr ~by:0 "pipeline.spilled";
      Telemetry.incr ~by:0 "pipeline.ii_bumps";
      if Trace.active () then
        Trace.set_result
          ~ii:(Schedule.ii v0.Artifact.sched)
          ~rounds:0 ~spilled:0 ~requirement:v0.Artifact.requirement
          ~maxlive:(Requirements.max_live_cost v0.Artifact.sched) ();
      finish ~final_ddg:ddg ~sched:v0.Artifact.sched
        ~requirement:v0.Artifact.requirement ~fits:true ~spilled:0 ~added_memops:0
        ~ii_bumps:0 ~swaps:v0.Artifact.swaps ()
    end
    else begin
    (* The "spill" span wraps the whole iterative spill loop, which
       re-schedules and re-allocates internally — so the nested
       "alloc"/"swap" records of those rounds are included in its
       total.  Spans are inclusive wall time per stage, and only cache
       misses record: a warm round contributes nothing. *)
    let outcome =
      Telemetry.time "spill" (fun () ->
          Spiller.run ~config
            ~requirement:(fun raw ->
              let v = Artifact.view_of_schedule ~model raw in
              (v.Artifact.sched, v.Artifact.requirement))
            ~schedule:(fun ~min_ii ddg -> Artifact.spill_schedule ~config ~min_ii ddg)
            ~capacity:cap ?victim ~policy:spill
            ~lower_bound:(spill_lower_bound ~config ~model)
            ddg)
    in
    Telemetry.incr ~by:outcome.Spiller.spilled "pipeline.spilled";
    Telemetry.incr ~by:outcome.Spiller.ii_bumps "pipeline.ii_bumps";
    (* Swaps are counted against the final round's pre-transform
       schedule, which the spiller now threads out — counting the final
       schedule against itself reported 0 for every capacity run. *)
    let swaps =
      Artifact.count_swaps model outcome.Spiller.raw_schedule outcome.Spiller.schedule
    in
    if Trace.active () then begin
      Trace.set_result
        ~ii:(Schedule.ii outcome.Spiller.schedule)
        ~rounds:outcome.Spiller.rounds ~spilled:outcome.Spiller.spilled
        ~requirement:outcome.Spiller.requirement
        ~maxlive:(Requirements.max_live_cost outcome.Spiller.schedule) ();
      Option.iter
        (fun (e : Error.t) -> Trace.set_error (Error.category_name e.Error.category))
        outcome.Spiller.error
    end;
    finish ?error:outcome.Spiller.error ~final_ddg:outcome.Spiller.ddg
      ~sched:outcome.Spiller.schedule ~requirement:outcome.Spiller.requirement
      ~fits:outcome.Spiller.fits ~spilled:outcome.Spiller.spilled
      ~added_memops:outcome.Spiller.added_memops ~ii_bumps:outcome.Spiller.ii_bumps
      ~swaps ()
    end
