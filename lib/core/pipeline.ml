open Ncdrf_ir
open Ncdrf_sched
open Ncdrf_spill
module Telemetry = Ncdrf_telemetry.Telemetry

type stats = {
  name : string;
  model : Model.t;
  mii : int;
  ii : int;
  stages : int;
  requirement : int;
  capacity : int option;
  fits : bool;
  spilled : int;
  added_memops : int;
  ii_bumps : int;
  memops_per_iter : int;
  density : float;
  swaps : int;
  schedule : Schedule.t;
}

let requirement_of_model model sched =
  match model with
  | Model.Ideal | Model.Unified ->
    (sched, Telemetry.time "alloc" (fun () -> Requirements.unified sched))
  | Model.Partitioned ->
    ( sched,
      Telemetry.time "alloc" (fun () ->
          (Requirements.partitioned sched).Requirements.requirement) )
  | Model.Swapped ->
    let swapped, _ = Telemetry.time "swap" (fun () -> Swap.improve sched) in
    ( swapped,
      Telemetry.time "alloc" (fun () ->
          (Requirements.partitioned swapped).Requirements.requirement) )

let count_swaps model before after =
  match model with
  | Model.Swapped ->
    (* A swap exchanges the clusters of two operations, so the swaps
       applied are the pairs of nodes that moved in opposite directions
       between the same two clusters.  A one-sided migration (a node
       whose move has no partner) is not half a swap: pair the moves
       per cluster pair instead of dividing the total, which would
       silently truncate on odd counts. *)
    let n = Ddg.num_nodes before.Schedule.ddg in
    let moves : (int * int, int) Hashtbl.t = Hashtbl.create 8 in
    for v = 0 to n - 1 do
      let b = Schedule.cluster before v and a = Schedule.cluster after v in
      if b <> a then
        Hashtbl.replace moves (b, a)
          (1 + Option.value ~default:0 (Hashtbl.find_opt moves (b, a)))
    done;
    Hashtbl.fold
      (fun (b, a) count acc ->
        if b < a then
          acc + min count (Option.value ~default:0 (Hashtbl.find_opt moves (a, b)))
        else acc)
      moves 0
  | Model.Ideal | Model.Unified | Model.Partitioned -> 0

let run ~config ~model ?capacity ?victim ddg =
  Telemetry.incr "pipeline.loops";
  let mii = Telemetry.time "mii" (fun () -> Mii.mii config ddg) in
  let finish ~final_ddg ~sched_before ~sched ~requirement ~fits ~spilled ~added_memops
      ~ii_bumps =
    {
      name = Ddg.name ddg;
      model;
      mii;
      ii = Schedule.ii sched;
      stages = Schedule.stages sched;
      requirement;
      capacity;
      fits;
      spilled;
      added_memops;
      ii_bumps;
      memops_per_iter = Traffic.memops_per_iteration final_ddg;
      density = Traffic.density sched;
      swaps = count_swaps model sched_before sched;
      schedule = sched;
    }
  in
  match capacity, model with
  | None, _ | Some _, Model.Ideal ->
    let raw = Telemetry.time "schedule" (fun () -> Modulo.schedule config ddg) in
    let sched, requirement = requirement_of_model model raw in
    let fits =
      match capacity, model with
      | _, Model.Ideal | None, _ -> true
      | Some cap, _ -> requirement <= cap
    in
    finish ~final_ddg:ddg ~sched_before:raw ~sched ~requirement ~fits ~spilled:0
      ~added_memops:0 ~ii_bumps:0
  | Some cap, _ ->
    (* The "spill" span wraps the whole iterative spill loop, which
       re-schedules and re-allocates internally — so the nested
       "schedule"/"alloc"/"swap" records of those rounds are included
       in its total.  Spans are inclusive wall time per stage. *)
    let outcome =
      Telemetry.time "spill" (fun () ->
          Spiller.run ~config ~requirement:(requirement_of_model model) ~capacity:cap
            ?victim ddg)
    in
    Telemetry.incr ~by:outcome.Spiller.spilled "pipeline.spilled";
    Telemetry.incr ~by:outcome.Spiller.ii_bumps "pipeline.ii_bumps";
    (* [sched_before] for swap counting: recover the pre-transform
       cluster assignment by comparing against a fresh requirement run
       is unnecessary — count against the raw schedule of the final
       graph. *)
    let raw = outcome.Spiller.schedule in
    finish ~final_ddg:outcome.Spiller.ddg ~sched_before:raw ~sched:outcome.Spiller.schedule
      ~requirement:outcome.Spiller.requirement ~fits:outcome.Spiller.fits
      ~spilled:outcome.Spiller.spilled ~added_memops:outcome.Spiller.added_memops
      ~ii_bumps:outcome.Spiller.ii_bumps
