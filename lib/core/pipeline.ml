open Ncdrf_ir
open Ncdrf_sched
open Ncdrf_spill
module Telemetry = Ncdrf_telemetry.Telemetry

type stats = {
  name : string;
  model : Model.t;
  mii : int;
  ii : int;
  stages : int;
  requirement : int;
  capacity : int option;
  fits : bool;
  spilled : int;
  added_memops : int;
  ii_bumps : int;
  memops_per_iter : int;
  density : float;
  swaps : int;
  schedule : Schedule.t;
  error : Ncdrf_error.Error.t option;
}

let requirement_of_model = Artifact.apply_model
let count_swaps = Artifact.count_swaps

let run ~config ~model ?capacity ?victim ddg =
  Telemetry.incr "pipeline.loops";
  let mii = Artifact.mii ~config ddg in
  let finish ?error ~final_ddg ~sched ~requirement ~fits ~spilled ~added_memops ~ii_bumps
      ~swaps () =
    {
      name = Ddg.name ddg;
      model;
      mii;
      ii = Schedule.ii sched;
      stages = Schedule.stages sched;
      requirement;
      capacity;
      fits;
      spilled;
      added_memops;
      ii_bumps;
      memops_per_iter = Traffic.memops_per_iteration final_ddg;
      density = Traffic.density sched;
      swaps;
      schedule = sched;
      error;
    }
  in
  match capacity, model with
  | None, _ | Some _, Model.Ideal ->
    let artifact = Artifact.scheduled ~config ddg in
    let v = Artifact.view artifact ~model in
    let fits =
      match capacity, model with
      | _, Model.Ideal | None, _ -> true
      | Some cap, _ -> v.Artifact.requirement <= cap
    in
    finish ~final_ddg:ddg ~sched:v.Artifact.sched ~requirement:v.Artifact.requirement
      ~fits ~spilled:0 ~added_memops:0 ~ii_bumps:0 ~swaps:v.Artifact.swaps ()
  | Some cap, _ ->
    (* The "spill" span wraps the whole iterative spill loop, which
       re-schedules and re-allocates internally — so the nested
       "alloc"/"swap" records of those rounds are included in its
       total.  Spans are inclusive wall time per stage, and only cache
       misses record: a warm round contributes nothing. *)
    let outcome =
      Telemetry.time "spill" (fun () ->
          Spiller.run ~config
            ~requirement:(fun raw ->
              let v = Artifact.view_of_schedule ~model raw in
              (v.Artifact.sched, v.Artifact.requirement))
            ~schedule:(fun ~min_ii ddg -> Artifact.spill_schedule ~config ~min_ii ddg)
            ~capacity:cap ?victim ddg)
    in
    Telemetry.incr ~by:outcome.Spiller.spilled "pipeline.spilled";
    Telemetry.incr ~by:outcome.Spiller.ii_bumps "pipeline.ii_bumps";
    (* Swaps are counted against the final round's pre-transform
       schedule, which the spiller now threads out — counting the final
       schedule against itself reported 0 for every capacity run. *)
    let swaps =
      Artifact.count_swaps model outcome.Spiller.raw_schedule outcome.Spiller.schedule
    in
    finish ?error:outcome.Spiller.error ~final_ddg:outcome.Spiller.ddg
      ~sched:outcome.Spiller.schedule ~requirement:outcome.Spiller.requirement
      ~fits:outcome.Spiller.fits ~spilled:outcome.Spiller.spilled
      ~added_memops:outcome.Spiller.added_memops ~ii_bumps:outcome.Spiller.ii_bumps
      ~swaps ()
