open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched

type estimate =
  | Max_live
  | Exact

type stats = {
  swaps : int;
  initial_cost : int;
  final_cost : int;
}

let candidates sched =
  (* Candidates are pairs with the same functional-unit class and the
     same kernel slot (cycle congruent modulo II) on different
     clusters.  Bucket the nodes by [(fu_class, cycle mod ii)] and pair
     within buckets: same candidate set as the all-pairs scan, without
     the quadratic blowup on heavy generated loops where most pairs
     fail the class/slot test.  Emission order stays the all-pairs
     order (ascending node position) so the greedy pass breaks ties
     identically. *)
  let ddg = sched.Schedule.ddg in
  let ii = Schedule.ii sched in
  let slot cycle = ((cycle mod ii) + ii) mod ii in
  let buckets : (Opcode.fu_class * int, int list) Hashtbl.t = Hashtbl.create 16 in
  let pairs = ref [] in
  List.iter
    (fun b ->
      let key = (Opcode.fu_class b.Ddg.opcode, slot (Schedule.cycle sched b.Ddg.id)) in
      let earlier = Option.value ~default:[] (Hashtbl.find_opt buckets key) in
      (* [earlier] holds ids of prior same-bucket nodes, most recent
         first; collect (i, j) pairs and restore ascending order at the
         end with one sort over the (much smaller) candidate list. *)
      List.iter
        (fun a_id ->
          if Schedule.cluster sched a_id <> Schedule.cluster sched b.Ddg.id then
            pairs := (a_id, b.Ddg.id) :: !pairs)
        earlier;
      Hashtbl.replace buckets key (b.Ddg.id :: earlier))
    (Ddg.nodes ddg);
  List.sort
    (fun (a1, b1) (a2, b2) ->
      let c = Int.compare a1 a2 in
      if c <> 0 then c else Int.compare b1 b2)
    !pairs

let cost ~estimate sched =
  match estimate with
  | Max_live -> Requirements.max_live_cost sched
  | Exact -> (Requirements.partitioned sched).Requirements.requirement

let improve ?(estimate = Max_live) ?(max_passes = 1000) sched =
  if Config.num_clusters sched.Schedule.config < 2 then
    (sched, { swaps = 0; initial_cost = cost ~estimate sched; final_cost = cost ~estimate sched })
  else begin
    let initial_cost = cost ~estimate sched in
    let rec loop sched current swaps passes =
      if passes >= max_passes then (sched, current, swaps)
      else begin
        (* The candidate set is invariant under swapping (cluster
           exchange preserves class/slot), but recompute for clarity of
           invariants; graphs are small. *)
        let best =
          List.fold_left
            (fun acc (a, b) ->
              let swapped = Schedule.swap_clusters sched a b in
              let c = cost ~estimate swapped in
              match acc with
              | Some (_, best_cost) when best_cost <= c -> acc
              | Some _ | None -> if c < current then Some (swapped, c) else acc)
            None (candidates sched)
        in
        match best with
        | Some (swapped, c) -> loop swapped c (swaps + 1) (passes + 1)
        | None -> (sched, current, swaps)
      end
    in
    let sched, final_cost, swaps = loop sched initial_cost 0 0 in
    (sched, { swaps; initial_cost; final_cost })
  end
