open Ncdrf_machine
open Ncdrf_regalloc
open Ncdrf_sched
module Error = Ncdrf_error.Error

type detail = {
  requirement : int;
  cluster_requirements : int array;
  global_requirement : int;
  local_requirements : int array;
  max_live : int array;
}

let unified ?strategy ?order sched =
  let lifetimes = Lifetime.of_schedule sched in
  Alloc.min_capacity ?strategy ?order ~ii:(Schedule.ii sched) lifetimes

let grouped_lifetimes sched =
  let n_clusters = Config.num_clusters sched.Schedule.config in
  let locals = Array.make n_clusters [] in
  let globals = ref [] in
  let place l =
    match Classify.value_class sched l.Lifetime.producer with
    | Classify.Global -> globals := l :: !globals
    | Classify.Local c -> locals.(c) <- l :: locals.(c)
  in
  List.iter place (Lifetime.of_schedule sched);
  (List.rev !globals, Array.map List.rev locals)

let cluster_max_live sched =
  let ii = Schedule.ii sched in
  let globals, locals = grouped_lifetimes sched in
  Array.map (fun ls -> Lifetime.max_live ~ii (globals @ ls)) locals

let max_live_cost sched = Array.fold_left max 0 (cluster_max_live sched)

(* Joint feasibility at a given capacity: place the globals once (their
   registers are shared by all subfiles), then each cluster's locals on
   top of them. *)
let feasible ?strategy ?order ~ii ~globals ~locals capacity =
  match Alloc.allocate ?strategy ?order ~ii ~capacity globals with
  | None -> false
  | Some placed_globals ->
    Array.for_all
      (fun ls ->
        match ls with
        | [] -> true
        | _ ->
          Alloc.allocate ?strategy ?order ~placed:placed_globals ~ii ~capacity ls
          <> None)
      locals

let joint_requirement ?strategy ?order ?upper ~ii ~globals ~locals () =
  if globals = [] && Array.for_all (fun ls -> ls = []) locals then 0
  else begin
    let all_of cluster = globals @ locals.(cluster) in
    let lower =
      Array.to_list (Array.mapi (fun c _ -> Lifetime.max_live ~ii (all_of c)) locals)
      @ List.map (fun l -> Lifetime.min_registers ~ii l) globals
      @ List.concat_map (List.map (Lifetime.min_registers ~ii)) (Array.to_list locals)
      |> List.fold_left max 1
    in
    let upper =
      match upper with
      | Some u -> u
      | None ->
        (2 * Lifetime.total_min_registers ~ii (globals @ List.concat (Array.to_list locals)))
        + 64
    in
    let rec search capacity =
      if capacity > upper then
        Error.errorf ~ii ~stage:"alloc" Error.Alloc_infeasible
          "no feasible joint capacity in [%d, %d] (%d globals, %d clusters)" lower upper
          (List.length globals) (Array.length locals)
      else if feasible ?strategy ?order ~ii ~globals ~locals capacity then capacity
      else search (capacity + 1)
    in
    search lower
  end

type allocation = {
  capacity : int;
  globals : Alloc.placement list;
  locals : Alloc.placement list array;
}

let partitioned_allocation ?strategy ?order sched =
  let ii = Schedule.ii sched in
  let globals, local_groups = grouped_lifetimes sched in
  let capacity = joint_requirement ?strategy ?order ~ii ~globals ~locals:local_groups () in
  if capacity = 0 then { capacity = 0; globals = []; locals = Array.map (fun _ -> []) local_groups }
  else begin
    match Alloc.allocate ?strategy ?order ~ii ~capacity globals with
    | None ->
      Error.errorf ~ii ~stage:"alloc" Error.Internal
        "partitioned_allocation: globals do not fit capacity %d (bug)" capacity
    | Some placed_globals ->
      let place_locals ls =
        match ls with
        | [] -> []
        | _ ->
          (match Alloc.allocate ?strategy ?order ~placed:placed_globals ~ii ~capacity ls with
           | Some p -> p
           | None ->
             Error.errorf ~ii ~stage:"alloc" Error.Internal
               "partitioned_allocation: locals do not fit capacity %d (bug)" capacity)
      in
      { capacity; globals = placed_globals; locals = Array.map place_locals local_groups }
  end

let partitioned ?strategy ?order sched =
  let ii = Schedule.ii sched in
  let globals, locals = grouped_lifetimes sched in
  let cluster_requirements =
    Array.map
      (fun ls -> joint_requirement ?strategy ?order ~ii ~globals ~locals:[| ls |] ())
      locals
  in
  let requirement = joint_requirement ?strategy ?order ~ii ~globals ~locals () in
  {
    requirement;
    cluster_requirements;
    global_requirement = Alloc.min_capacity ?strategy ?order ~ii globals;
    local_requirements = Array.map (Alloc.min_capacity ?strategy ?order ~ii) locals;
    max_live = cluster_max_live sched;
  }
