open Ncdrf_machine
open Ncdrf_regalloc
open Ncdrf_sched
module Error = Ncdrf_error.Error

type detail = {
  requirement : int;
  cluster_requirements : int array;
  global_requirement : int;
  local_requirements : int array;
  max_live : int array;
}

let unified ?strategy ?order sched =
  let lifetimes = Lifetime.of_schedule sched in
  Alloc.min_capacity ?strategy ?order ~ii:(Schedule.ii sched) lifetimes

(* Lifetimes grouped by replication: [shared] values (Global or Shared
   class) with the sorted cluster set whose subfiles must hold them,
   plus per-cluster locals.  On a two-cluster machine every shared
   value's member set is all clusters, which is the paper's dual-file
   classification unchanged. *)
type groups = {
  shared : (Lifetime.t * int list) list;
  locals : Lifetime.t list array;
}

let grouped ?lifetimes sched =
  let n_clusters = Config.num_clusters sched.Schedule.config in
  let locals = Array.make n_clusters [] in
  let shared = ref [] in
  let place l =
    match Classify.value_class sched l.Lifetime.producer with
    | Classify.Local c -> locals.(c) <- l :: locals.(c)
    | cls ->
      shared := (l, Classify.clusters_of ~num_clusters:n_clusters cls) :: !shared
  in
  let all =
    match lifetimes with Some ls -> ls | None -> Lifetime.of_schedule sched
  in
  List.iter place all;
  { shared = List.rev !shared; locals = Array.map List.rev locals }

let grouped_lifetimes ?lifetimes sched =
  let g = grouped ?lifetimes sched in
  (List.map fst g.shared, g.locals)

(* The shared values replicated into cluster [c]'s subfile, in shared
   order (the prefix of that cluster's conflict table). *)
let shared_in groups c =
  List.filter_map
    (fun (l, members) -> if List.mem c members then Some l else None)
    groups.shared

let cluster_max_live ?lifetimes sched =
  let ii = Schedule.ii sched in
  let groups = grouped ?lifetimes sched in
  Array.mapi
    (fun c ls -> Lifetime.max_live ~ii (shared_in groups c @ ls))
    groups.locals

let max_live_cost ?lifetimes sched =
  Array.fold_left max 0 (cluster_max_live ?lifetimes sched)

(* Shared conflict tables for a joint allocation problem: one table per
   cluster over (shared values replicated there) @ locals.(c) — each
   cluster's replicated values occupy the index prefix of its table, so
   a shared placement computed once transfers to every table via
   [prefix] (the gtable index of each prefix slot).  On a two-cluster
   machine every prefix is the full shared list and [gtable] aliases
   [tables.(0)] exactly as the dual-file implementation did; the tables
   are memoized by [Conflict.get], so the repeated per-cluster and
   full-joint searches of [partitioned] (and the strategy sweeps of the
   ablation figures) all hit the same windows. *)
type joint = {
  num_globals : int;  (* number of shared (replicated) values *)
  gtable : Conflict.t;  (* holds at least the shared values as a prefix *)
  tables : Conflict.t array;
  prefix : int array array;
      (* per cluster: gtable index of each slot of its table prefix *)
}

let joint_of ~ii groups =
  let gshared = List.map fst groups.shared in
  let num_globals = List.length gshared in
  if Array.length groups.locals = 0 then
    { num_globals; gtable = Conflict.get ~ii gshared; tables = [||]; prefix = [||] }
  else begin
    let prefix =
      Array.mapi
        (fun c _ ->
          groups.shared
          |> List.mapi (fun gi (_, members) ->
                 if List.mem c members then Some gi else None)
          |> List.filter_map Fun.id
          |> Array.of_list)
        groups.locals
    in
    let tables =
      Array.mapi (fun c ls -> Conflict.get ~ii (shared_in groups c @ ls)) groups.locals
    in
    let gtable =
      if Array.length prefix.(0) = num_globals then tables.(0)
      else Conflict.get ~ii gshared
    in
    { num_globals; gtable; tables; prefix }
  end

let global_indices j = List.init j.num_globals Fun.id

let local_indices j ~cluster table =
  let n_pre = Array.length j.prefix.(cluster) in
  List.init (Conflict.size table - n_pre) (fun k -> n_pre + k)

(* Joint feasibility at a given capacity: place the shared values once
   (their registers are shared by every subfile holding them), then
   each cluster's locals on top of its own prefix. *)
let joint_feasible ?strategy ?order j capacity =
  match
    Alloc.allocate_table ?strategy ?order ~capacity j.gtable (global_indices j)
  with
  | None -> false
  | Some placed_globals ->
    let reg = Array.make (max 1 j.num_globals) (-1) in
    List.iter (fun (i, r) -> reg.(i) <- r) placed_globals;
    let cluster_fits c table =
      match local_indices j ~cluster:c table with
      | [] -> true
      | locals ->
        let placed =
          Array.to_list (Array.mapi (fun p gi -> (p, reg.(gi))) j.prefix.(c))
        in
        Alloc.allocate_table ?strategy ?order ~placed ~capacity table locals <> None
    in
    let ok = ref true in
    Array.iteri (fun c table -> if !ok then ok := cluster_fits c table) j.tables;
    !ok

(* Any pair sharing a table is co-allocated by [joint_feasible], so a
   pair width of [w] rules out every capacity <= w.  The search may
   start there; error messages still report the original lower bound. *)
let joint_floor j =
  Array.fold_left
    (fun acc t -> max acc (Conflict.max_width t + 1))
    (Conflict.max_width j.gtable + 1)
    j.tables

let joint_requirement_tables ?strategy ?order ?upper ~ii ~groups j =
  let globals = List.map fst groups.shared in
  if globals = [] && Array.for_all (fun ls -> ls = []) groups.locals then 0
  else begin
    let all_of cluster = shared_in groups cluster @ groups.locals.(cluster) in
    let lower =
      Array.to_list
        (Array.mapi (fun c _ -> Lifetime.max_live ~ii (all_of c)) groups.locals)
      @ List.map (fun l -> Lifetime.min_registers ~ii l) globals
      @ List.concat_map
          (List.map (Lifetime.min_registers ~ii))
          (Array.to_list groups.locals)
      |> List.fold_left max 1
    in
    let upper =
      match upper with
      | Some u -> u
      | None ->
        (2
        * Lifetime.total_min_registers ~ii
            (globals @ List.concat (Array.to_list groups.locals)))
        + 64
    in
    let rec search capacity =
      if capacity > upper then
        Error.errorf ~ii ~stage:"alloc" Error.Alloc_infeasible
          "no feasible joint capacity in [%d, %d] (%d globals, %d clusters)" lower upper
          (List.length globals)
          (Array.length groups.locals)
      else if joint_feasible ?strategy ?order j capacity then capacity
      else search (capacity + 1)
    in
    search (max lower (joint_floor j))
  end

(* Public entry point where every "global" is replicated in every
   cluster — the historical dual-file shape. *)
let groups_of_globals ~globals ~locals =
  let members = List.init (max 1 (Array.length locals)) Fun.id in
  { shared = List.map (fun l -> (l, members)) globals; locals }

let joint_requirement ?strategy ?order ?upper ~ii ~globals ~locals () =
  let groups = groups_of_globals ~globals ~locals in
  joint_requirement_tables ?strategy ?order ?upper ~ii ~groups (joint_of ~ii groups)

type allocation = {
  capacity : int;
  globals : (Alloc.placement * int list) list;
  locals : Alloc.placement list array;
}

let partitioned_allocation ?strategy ?order sched =
  let ii = Schedule.ii sched in
  let groups = grouped sched in
  let j = joint_of ~ii groups in
  let capacity = joint_requirement_tables ?strategy ?order ~ii ~groups j in
  if capacity = 0 then
    { capacity = 0; globals = []; locals = Array.map (fun _ -> []) groups.locals }
  else begin
    let placements table pairs =
      List.map
        (fun (i, r) -> { Alloc.value = Conflict.lifetime table i; register = r })
        pairs
    in
    match
      Alloc.allocate_table ?strategy ?order ~capacity j.gtable (global_indices j)
    with
    | None ->
      Error.errorf ~ii ~stage:"alloc" Error.Internal
        "partitioned_allocation: globals do not fit capacity %d (bug)" capacity
    | Some placed_globals ->
      let members = Array.of_list (List.map snd groups.shared) in
      let reg = Array.make (max 1 j.num_globals) (-1) in
      List.iter (fun (i, r) -> reg.(i) <- r) placed_globals;
      let place_locals c table =
        match local_indices j ~cluster:c table with
        | [] -> []
        | locals ->
          let placed =
            Array.to_list (Array.mapi (fun p gi -> (p, reg.(gi))) j.prefix.(c))
          in
          (match
             Alloc.allocate_table ?strategy ?order ~placed ~capacity table locals
           with
           | Some p -> placements table p
           | None ->
             Error.errorf ~ii ~stage:"alloc" Error.Internal
               "partitioned_allocation: locals do not fit capacity %d (bug)" capacity)
      in
      {
        capacity;
        globals =
          List.map
            (fun (i, r) ->
              ({ Alloc.value = Conflict.lifetime j.gtable i; register = r }, members.(i)))
            placed_globals;
        locals = Array.mapi place_locals j.tables;
      }
  end

let partitioned ?strategy ?order sched =
  let ii = Schedule.ii sched in
  let groups = grouped sched in
  let j = joint_of ~ii groups in
  let cluster_requirements =
    Array.mapi
      (fun c ls ->
        (* The cluster in isolation: its replicated prefix plus its
           locals, on its own table. *)
        let groups_c =
          {
            shared = List.map (fun l -> (l, [ 0 ])) (shared_in groups c);
            locals = [| ls |];
          }
        in
        let n_pre = Array.length j.prefix.(c) in
        let j_c =
          {
            num_globals = n_pre;
            gtable = j.tables.(c);
            tables = [| j.tables.(c) |];
            prefix = [| Array.init n_pre Fun.id |];
          }
        in
        joint_requirement_tables ?strategy ?order ~ii ~groups:groups_c j_c)
      groups.locals
  in
  let requirement = joint_requirement_tables ?strategy ?order ~ii ~groups j in
  {
    requirement;
    cluster_requirements;
    global_requirement =
      Alloc.min_capacity_table ?strategy ?order j.gtable (global_indices j);
    local_requirements =
      Array.mapi
        (fun c t ->
          Alloc.min_capacity_table ?strategy ?order t (local_indices j ~cluster:c t))
        j.tables;
    max_live = cluster_max_live sched;
  }
