open Ncdrf_machine
open Ncdrf_regalloc
open Ncdrf_sched
module Error = Ncdrf_error.Error

type detail = {
  requirement : int;
  cluster_requirements : int array;
  global_requirement : int;
  local_requirements : int array;
  max_live : int array;
}

let unified ?strategy ?order sched =
  let lifetimes = Lifetime.of_schedule sched in
  Alloc.min_capacity ?strategy ?order ~ii:(Schedule.ii sched) lifetimes

let grouped_lifetimes ?lifetimes sched =
  let n_clusters = Config.num_clusters sched.Schedule.config in
  let locals = Array.make n_clusters [] in
  let globals = ref [] in
  let place l =
    match Classify.value_class sched l.Lifetime.producer with
    | Classify.Global -> globals := l :: !globals
    | Classify.Local c -> locals.(c) <- l :: locals.(c)
  in
  let all =
    match lifetimes with Some ls -> ls | None -> Lifetime.of_schedule sched
  in
  List.iter place all;
  (List.rev !globals, Array.map List.rev locals)

let cluster_max_live ?lifetimes sched =
  let ii = Schedule.ii sched in
  let globals, locals = grouped_lifetimes ?lifetimes sched in
  Array.map (fun ls -> Lifetime.max_live ~ii (globals @ ls)) locals

let max_live_cost ?lifetimes sched =
  Array.fold_left max 0 (cluster_max_live ?lifetimes sched)

(* Shared conflict tables for a joint allocation problem: one table per
   cluster over globals @ locals.(c) — the globals occupy the index
   prefix [0, num_globals) of every table, so a global placement
   computed against one table transfers to the others verbatim.  The
   tables are memoized by [Conflict.get], so the repeated per-cluster
   and full-joint searches of [partitioned] (and the strategy sweeps of
   the ablation figures) all hit the same windows. *)
type joint = {
  num_globals : int;
  gtable : Conflict.t;  (* holds at least the globals; tables.(0) if any *)
  tables : Conflict.t array;
}

let joint_of ~ii ~globals ~locals =
  let num_globals = List.length globals in
  if Array.length locals = 0 then
    { num_globals; gtable = Conflict.get ~ii globals; tables = [||] }
  else begin
    let tables = Array.map (fun ls -> Conflict.get ~ii (globals @ ls)) locals in
    { num_globals; gtable = tables.(0); tables }
  end

let global_indices j = List.init j.num_globals Fun.id

let local_indices j table =
  List.init (Conflict.size table - j.num_globals) (fun k -> j.num_globals + k)

(* Joint feasibility at a given capacity: place the globals once (their
   registers are shared by all subfiles), then each cluster's locals on
   top of them. *)
let joint_feasible ?strategy ?order j capacity =
  match
    Alloc.allocate_table ?strategy ?order ~capacity j.gtable (global_indices j)
  with
  | None -> false
  | Some placed_globals ->
    Array.for_all
      (fun table ->
        match local_indices j table with
        | [] -> true
        | locals ->
          Alloc.allocate_table ?strategy ?order ~placed:placed_globals ~capacity
            table locals
          <> None)
      j.tables

(* Any pair sharing a table is co-allocated by [joint_feasible], so a
   pair width of [w] rules out every capacity <= w.  The search may
   start there; error messages still report the original lower bound. *)
let joint_floor j =
  Array.fold_left
    (fun acc t -> max acc (Conflict.max_width t + 1))
    (Conflict.max_width j.gtable + 1)
    j.tables

let joint_requirement_tables ?strategy ?order ?upper ~ii ~globals ~locals j =
  if globals = [] && Array.for_all (fun ls -> ls = []) locals then 0
  else begin
    let all_of cluster = globals @ locals.(cluster) in
    let lower =
      Array.to_list (Array.mapi (fun c _ -> Lifetime.max_live ~ii (all_of c)) locals)
      @ List.map (fun l -> Lifetime.min_registers ~ii l) globals
      @ List.concat_map (List.map (Lifetime.min_registers ~ii)) (Array.to_list locals)
      |> List.fold_left max 1
    in
    let upper =
      match upper with
      | Some u -> u
      | None ->
        (2 * Lifetime.total_min_registers ~ii (globals @ List.concat (Array.to_list locals)))
        + 64
    in
    let rec search capacity =
      if capacity > upper then
        Error.errorf ~ii ~stage:"alloc" Error.Alloc_infeasible
          "no feasible joint capacity in [%d, %d] (%d globals, %d clusters)" lower upper
          (List.length globals) (Array.length locals)
      else if joint_feasible ?strategy ?order j capacity then capacity
      else search (capacity + 1)
    in
    search (max lower (joint_floor j))
  end

let joint_requirement ?strategy ?order ?upper ~ii ~globals ~locals () =
  joint_requirement_tables ?strategy ?order ?upper ~ii ~globals ~locals
    (joint_of ~ii ~globals ~locals)

type allocation = {
  capacity : int;
  globals : Alloc.placement list;
  locals : Alloc.placement list array;
}

let partitioned_allocation ?strategy ?order sched =
  let ii = Schedule.ii sched in
  let globals, local_groups = grouped_lifetimes sched in
  let j = joint_of ~ii ~globals ~locals:local_groups in
  let capacity =
    joint_requirement_tables ?strategy ?order ~ii ~globals ~locals:local_groups j
  in
  if capacity = 0 then { capacity = 0; globals = []; locals = Array.map (fun _ -> []) local_groups }
  else begin
    let placements table pairs =
      List.map
        (fun (i, r) -> { Alloc.value = Conflict.lifetime table i; register = r })
        pairs
    in
    match
      Alloc.allocate_table ?strategy ?order ~capacity j.gtable (global_indices j)
    with
    | None ->
      Error.errorf ~ii ~stage:"alloc" Error.Internal
        "partitioned_allocation: globals do not fit capacity %d (bug)" capacity
    | Some placed_globals ->
      let place_locals table =
        match local_indices j table with
        | [] -> []
        | locals ->
          (match
             Alloc.allocate_table ?strategy ?order ~placed:placed_globals
               ~capacity table locals
           with
           | Some p -> placements table p
           | None ->
             Error.errorf ~ii ~stage:"alloc" Error.Internal
               "partitioned_allocation: locals do not fit capacity %d (bug)" capacity)
      in
      {
        capacity;
        globals = placements j.gtable placed_globals;
        locals = Array.map place_locals j.tables;
      }
  end

let partitioned ?strategy ?order sched =
  let ii = Schedule.ii sched in
  let globals, locals = grouped_lifetimes sched in
  let j = joint_of ~ii ~globals ~locals in
  let cluster_requirements =
    Array.mapi
      (fun c ls ->
        joint_requirement_tables ?strategy ?order ~ii ~globals ~locals:[| ls |]
          { j with gtable = j.tables.(c); tables = [| j.tables.(c) |] })
      locals
  in
  let requirement = joint_requirement_tables ?strategy ?order ~ii ~globals ~locals j in
  {
    requirement;
    cluster_requirements;
    global_requirement =
      Alloc.min_capacity_table ?strategy ?order j.gtable (global_indices j);
    local_requirements =
      Array.map
        (fun t -> Alloc.min_capacity_table ?strategy ?order t (local_indices j t))
        j.tables;
    max_live = cluster_max_live sched;
  }
