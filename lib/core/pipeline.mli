(** End-to-end compilation of one loop under one register-file model:
    modulo scheduling, optional swapping, register allocation, and —
    when a register capacity is given — the naive spill loop.

    This is the function every experiment in the paper is built from.

    Since the artifact refactor this is a thin wrapper over {!Artifact}:
    MII, the raw schedule and the per-model view are memoized in the
    compile cache, so running the four models (or several capacities) on
    the same [(config, loop)] schedules it once.  Results are
    byte-identical to a cache-disabled run.

    When telemetry is enabled ([Ncdrf_telemetry.Telemetry.enable]),
    cache-missing runs record inclusive wall-time spans for their
    stages — ["mii"], ["schedule"], ["alloc"], ["swap"], ["spill"] —
    and every run bumps the ["pipeline.loops"], ["pipeline.spilled"]
    and ["pipeline.ii_bumps"] counters; the cache itself bumps
    ["cache.hits"] / ["cache.misses"] / ["cache.evictions"].  The
    ["spill"] span wraps the whole iterative spill loop, so the
    allocation/swap records of its inner rounds are nested inside its
    total; a warm (cache-hitting) stage records no span. *)

open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched

type stats = {
  name : string;
  model : Model.t;
  mii : int;  (** lower bound of the original (pre-spill) graph *)
  ii : int;  (** achieved initiation interval *)
  stages : int;
  requirement : int;  (** registers (per subfile for dual models) *)
  capacity : int option;
  fits : bool;  (** requirement <= capacity (always true for Ideal) *)
  spilled : int;
  added_memops : int;
  ii_bumps : int;
  memops_per_iter : int;  (** including spill code *)
  density : float;
  swaps : int;  (** swaps applied (Swapped model only) *)
  schedule : Schedule.t;  (** final schedule *)
  error : Ncdrf_error.Error.t option;
      (** soft degradation: the spiller's [Spill_diverged], if it gave
          up ([None] whenever [fits]).  Hard failures — infeasible
          schedules, exhausted budgets, injected faults — raise
          [Ncdrf_error.Error.Error] instead, classified by the stage
          boundaries in {!Artifact}. *)
}

(** [with_point ~config ~models ?capacity ddg f] runs [f] as one
    observed (config, loop) point: when tracing or the run ledger is
    armed ([Ncdrf_telemetry.Trace.active]) it installs the ambient
    trace context (loop name, config name, short fingerprint digest),
    and — when the ledger is armed — harvests the context into one
    {!Ncdrf_telemetry.Ledger} record when [f] returns {e or} raises
    (failed points record their error category and re-raise; [Sys.Break]
    is exempt).  A pass-through when neither layer is armed.  {!run}
    wraps itself in it; drivers that measure loops without {!run} (the
    suite tables) wrap their per-loop work the same way. *)
val with_point :
  config:Ncdrf_machine.Config.t ->
  models:Model.t list ->
  ?capacity:int ->
  Ddg.t ->
  (unit -> 'a) ->
  'a

(** The generic observed-unit wrapper {!with_point} is built on: an
    ambient trace context under arbitrary labels, harvested into one
    ledger record on return or raise.  The serving daemon wraps each
    request in it ([loop] = request id, [config] = ["serve/<kind>"]),
    so a ledger of a serving session carries one record per request
    alongside the per-point records of the work it fanned out.  A
    pass-through when neither tracing nor the ledger is armed. *)
val observe :
  loop:string ->
  config:string ->
  ?fp:string ->
  ?models:string ->
  ?capacity:int ->
  (unit -> 'a) ->
  'a

(** The model's requirement function on a fixed schedule (uncached;
    alias of {!Artifact.apply_model}): returns the (possibly swapped)
    schedule and its register requirement.  [Ideal] reports the unified
    requirement but never fails to fit. *)
val requirement_of_model :
  Model.t -> Schedule.t -> Schedule.t * int

(** Swaps applied between two schedules of the same graph, for the
    [Swapped] model (alias of {!Artifact.count_swaps}): pairs of nodes
    that exchanged clusters (moves in opposite directions between the
    same two clusters, paired up).  One-sided migrations are not swaps
    and are not counted.  Other models report 0. *)
val count_swaps : Model.t -> Schedule.t -> Schedule.t -> int

(** [run ~config ~model ?capacity ddg] compiles the loop.  Without
    [capacity], registers are unlimited (the paper's Section 5.3
    measurement).  With [capacity], the spiller runs for every model
    except [Ideal] (Section 5.4); [victim] selects its heuristic
    (default: the paper's longest-lifetime) and [spill] its loop
    strategy (default {!Ncdrf_spill.Spiller.default_policy}, the
    reference-identical one).  A capacity run whose first schedule
    already fits never enters the spill stage: the pipeline measures
    the free-running schedule first and returns it directly (same
    result, shared with the capacity-less memo entries).  The spiller,
    when it does run, is handed a per-model MaxLive lower bound so
    rounds that are provably still over capacity skip the exact
    allocation measurement. *)
val run :
  config:Config.t ->
  model:Model.t ->
  ?capacity:int ->
  ?victim:Ncdrf_spill.Spiller.victim ->
  ?spill:Ncdrf_spill.Spiller.policy ->
  Ddg.t ->
  stats
