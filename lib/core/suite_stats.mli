(** Suite-level statistics: the aggregations behind Table 1 and
    Figures 6-9.

    A workload is a list of loops with execution weights (the paper
    weights each loop by its measured iteration count; executing time is
    then [weight * ii]). *)

open Ncdrf_ir
open Ncdrf_machine

type workload = {
  ddg : Ddg.t;
  weight : float;  (** iterations executed (dynamic weighting) *)
}

type measurement = {
  loop : workload;
  requirement : int;
  ii : int;  (** spill-free II: execution time is [weight * ii] *)
}

(** [shard ~index ~count loops] keeps the loops assigned to shard
    [index] of [count], partitioning by a hash of each loop's content
    digest — the same identity the ledger sorts on — so the partition is
    deterministic, jobs-invariant, and identical on every machine: the
    shards are disjoint and their union is the input.  [count = 1]
    returns the input unchanged.  Raises [Invalid_argument] unless
    [0 <= index < count]. *)
val shard : index:int -> count:int -> workload list -> workload list

(** Requirement of every loop under each of [models] with unlimited
    registers (Figures 6 and 7 input), from {b one} scheduling pass per
    loop: the raw schedule is an {!Artifact} every model's view reuses,
    so passing all the models of a figure here issues one
    [Modulo.schedule] per [(config, loop)].  Returns the measurement
    lists in the order of [models].

    [pool] fans the per-loop work out over domains; results keep input
    order, so output is identical to the serial run.

    [failures] switches the sweep to graceful degradation: a loop whose
    compilation raises is classified ({!Ncdrf_error.Error.classify_exn}),
    recorded in the collector — in input order, after the whole map has
    settled, so the failure manifest is deterministic under any worker
    count — and dropped from the results; the collector's policy
    ([fail_fast] / [max_failures]) may raise
    {!Ncdrf_error.Failures.Abort} during recording.  Without
    [failures], any loop failure propagates (via
    [Ncdrf_parallel.Pool.Worker_failure] under a pool), as before.

    [timeout_s] gives each point its own wall deadline (the [--timeout]
    flag): an over-budget point raises the typed
    [Error.Deadline_exceeded], which [failures] records like any other
    category.  [deadline] instead installs one {e shared}
    {!Ncdrf_error.Deadline.token} around every point — the serving
    daemon passes its per-request token here so the request's deadline
    and drain-cancellation reach pool workers on other domains.  The
    two compose (whichever constraint fires first wins). *)
val measure_all :
  ?pool:Ncdrf_parallel.Pool.t ->
  ?failures:Ncdrf_error.Failures.t ->
  ?timeout_s:float ->
  ?deadline:Ncdrf_error.Deadline.token ->
  config:Config.t ->
  models:Model.t list ->
  workload list ->
  (Model.t * measurement list) list

(** [measure_all] for a single model. *)
val measure :
  ?pool:Ncdrf_parallel.Pool.t ->
  ?failures:Ncdrf_error.Failures.t ->
  ?timeout_s:float ->
  ?deadline:Ncdrf_error.Deadline.token ->
  config:Config.t -> model:Model.t -> workload list -> measurement list

(** Static cumulative distribution: fraction (in percent) of loops whose
    requirement is [<= r], for each [r] in [points]. *)
val static_cumulative : measurement list -> points:int list -> (int * float) list

(** Dynamic cumulative distribution: same, weighted by execution time
    [weight * ii] (Figure 7). *)
val dynamic_cumulative : measurement list -> points:int list -> (int * float) list

(** Percentage of loops allocatable within [r] registers and percentage
    of execution time those loops represent (one Table 1 cell pair). *)
val allocatable : measurement list -> r:int -> float * float

type performance = {
  relative : float;
      (** sum of ideal execution times / sum of achieved execution
          times, in [0, 1]; 1.0 means no loss versus infinite
          registers *)
  density : float;  (** weighted average density of memory traffic *)
  total_spills : int;
  loops_spilled : int;
  unfit : int;  (** loops the spiller could not fit (should be 0) *)
}

(** Run the full spill pipeline on every loop at a register capacity and
    aggregate (Figures 8 and 9 input).

    [pool] parallelizes the per-loop pipeline; the aggregation itself is
    a serial fold in input order, so every float sum is bit-identical to
    the serial run's.

    [failures] degrades gracefully exactly as in {!measure_all}:
    failing loops are classified, recorded, and excluded from the
    aggregates.  A spiller that gives up is {e not} a failure here — it
    stays in the aggregates and is counted in [unfit], with the
    divergence detail on [Pipeline.stats.error].

    [timeout_s] / [deadline] bound each point exactly as in
    {!measure_all}.

    [spill] selects the spill-loop strategy passed through to
    {!Pipeline.run} (default: the reference-identical policy). *)
val performance :
  ?pool:Ncdrf_parallel.Pool.t ->
  ?failures:Ncdrf_error.Failures.t ->
  ?timeout_s:float ->
  ?deadline:Ncdrf_error.Deadline.token ->
  ?spill:Ncdrf_spill.Spiller.policy ->
  config:Config.t -> model:Model.t -> capacity:int -> workload list -> performance
