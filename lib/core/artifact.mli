(** Staged compilation artifacts with a content-addressed compile cache.

    Compiling a loop factors into stages that later stages and other
    register-file models can reuse:

    {v ddg --> mii --> raw schedule --> per-model view v}

    - the {e raw schedule} (register-blind modulo schedule) and the
      {e MII} depend only on [(config, ddg)];
    - a {e view} — the model-transformed schedule, its register
      requirement and the swaps applied — depends on the raw schedule
      and the model, but not on any capacity;
    - the spiller's per-round schedules depend on [(config, ddg, min_ii)]
      where [ddg] is the current (spill-augmented) graph.

    Every stage is memoized in one bounded, domain-safe
    {!Ncdrf_cache.Cache} keyed by [Config.fingerprint] +
    [Ddg.digest] (+ stage tag), so the four models and every capacity of
    the same [(config, loop)] share one scheduling pass, and repeated
    experiments (Figure 6 then Figure 7, the CSV re-emission of
    Table 1, ...) hit instead of recomputing.

    When an ambient {!Ncdrf_cache.Store} is open, the same keys address
    a second, on-disk tier: a memory miss consults the store before
    computing, and a computed artifact is published back, so results
    survive the process and are shared across concurrent processes.
    Disk payloads carry only integers (IIs and placements); schedules
    are rebuilt through [Schedule.make], and any malformed entry
    degrades to a miss.

    {b Determinism rule:} every compute function is a pure function of
    its key — the scheduler, allocator and swap pass are deterministic —
    so a cached run is byte-for-byte identical to a cold or
    cache-disabled run; the cache may only change wall time and
    telemetry span counts.  Telemetry spans ([mii], [schedule], [alloc],
    [swap]) are recorded inside the compute functions, so span counts
    count {e cold} stage executions: one ["schedule"] record per
    (config, loop) however many models consume it.

    {b Failure model:} each stage runs inside an
    [Ncdrf_error.Error.boundary], so anything escaping a stage is a
    classified [Ncdrf_error.Error.Error] carrying the loop name and
    config fingerprint.  Each stage also compiles in an
    [Ncdrf_fault.Fault.point] (stages ["mii"], ["schedule"], ["alloc"],
    and ["cache"] in front of every lookup), armed only by explicit
    [--inject]; failures — injected or real — are never cached. *)

open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched

(** A loop scheduled under a configuration, with the stages every model
    shares. *)
type t = private {
  ddg : Ddg.t;
  config : Config.t;
  mii : int;  (** lower bound of the graph *)
  raw : Schedule.t;  (** register-blind modulo schedule *)
}

(** One register-file model's reading of a raw schedule. *)
type view = {
  sched : Schedule.t;  (** transformed schedule (swapped for [Swapped]) *)
  requirement : int;  (** registers (per subfile for the dual models) *)
  swaps : int;  (** exchanged pairs versus the raw schedule *)
}

(** MII of the graph (cached). *)
val mii : config:Config.t -> Ddg.t -> int

(** Raw modulo schedule of the graph (cached). *)
val raw_schedule : config:Config.t -> Ddg.t -> Schedule.t

(** MII + raw schedule bundled (both cached). *)
val scheduled : config:Config.t -> Ddg.t -> t

(** The model's view of the artifact's raw schedule (cached; [Ideal]
    and [Unified] share one entry — same transform). *)
val view : t -> model:Model.t -> view

(** Like {!view} for a free-standing schedule, e.g. one of the
    spiller's rounds; keyed on the schedule's content. *)
val view_of_schedule : model:Model.t -> Schedule.t -> view

(** The spiller's per-round scheduling step — modulo scheduling at
    [min_ii], spill loads pushed late — cached on
    [(config, ddg, min_ii)]. *)
val spill_schedule : config:Config.t -> min_ii:int -> Ddg.t -> Schedule.t

(** The model's transform on a fixed schedule, uncached: returns the
    (possibly swapped) schedule and its register requirement.  [Ideal]
    reports the unified requirement but never fails to fit. *)
val apply_model : Model.t -> Schedule.t -> Schedule.t * int

(** Swaps applied between two schedules of the same graph, for the
    [Swapped] model: pairs of nodes that exchanged clusters (moves in
    opposite directions between the same two clusters, paired up).
    One-sided migrations are not swaps and are not counted.  Other
    models report 0. *)
val count_swaps : Model.t -> Schedule.t -> Schedule.t -> int

(** {2 Cache control} *)

(** Turn memoization off (every call recomputes) or back on.  Default:
    on. *)
val set_cache_enabled : bool -> unit

val cache_enabled : unit -> bool

(** Replace the cache with an empty one of the given entry capacity
    (striping shrinks with small capacities, so [set_cache_capacity 1]
    really holds one entry).  Default capacity: {!default_capacity}. *)
val set_cache_capacity : int -> unit

val default_capacity : int

(** Drop every cached entry (capacity and counters unchanged), along
    with the allocator's conflict-table memo — everything a benchmark
    must reset between runs for isolation. *)
val clear_cache : unit -> unit

(** Hit/miss/eviction counters and resident size of the current cache. *)
val cache_stats : unit -> Ncdrf_cache.Cache.stats
