open Ncdrf_ir
open Ncdrf_machine

let ceil_div a b = (a + b - 1) / b

let res_mii cfg ddg =
  let adds = ref 0 and muls = ref 0 and mems = ref 0 in
  Ddg.class_counts ddg ~adds ~muls ~mems;
  let bound count units = if count = 0 then 1 else if units = 0 then max_int else ceil_div count units in
  let candidates =
    [
      bound !adds (Config.total_adders cfg);
      bound !muls (Config.total_multipliers cfg);
      bound !mems (Config.total_ls_units cfg);
    ]
  in
  let port_bounds =
    let loads = Ddg.num_loads ddg and stores = Ddg.num_stores ddg in
    let of_cap count = function Some cap -> [ bound count cap ] | None -> [] in
    of_cap loads cfg.Config.load_ports @ of_cap stores cfg.Config.store_ports
  in
  List.fold_left max 1 (candidates @ port_bounds)

let constraint_edges cfg ddg ~ii =
  let weight e =
    let op = (Ddg.node ddg e.Ddg.src).Ddg.opcode in
    Config.latency cfg op - (ii * e.Ddg.distance)
  in
  List.map (fun e -> (e.Ddg.src, e.Ddg.dst, weight e)) (Ddg.edges ddg)

let feasible cfg ddg ~ii =
  not
    (Graph_algos.has_positive_cycle ~num_nodes:(Ddg.num_nodes ddg)
       ~edges:(constraint_edges cfg ddg ~ii))

let rec_mii cfg ddg =
  if feasible cfg ddg ~ii:1 then 1
  else begin
    (* The sum of all latencies is an upper bound on any circuit's
       latency, hence on RecMII (distances are >= 1 on circuits). *)
    let hi =
      Ddg.fold_nodes ddg ~init:1 ~f:(fun acc n -> acc + Config.latency cfg n.Ddg.opcode)
    in
    let rec search lo hi =
      (* invariant: lo infeasible, hi feasible *)
      if hi - lo <= 1 then hi
      else begin
        let mid = (lo + hi) / 2 in
        if feasible cfg ddg ~ii:mid then search lo mid else search mid hi
      end
    in
    search 1 hi
  end

let rec_mii_by_circuits ?max_circuits cfg ddg =
  let n = Ddg.num_nodes ddg in
  (* Deduplicate parallel edges: keep, per (src,dst), max latency and min
     distance, which dominates any parallel combination. *)
  let best = Hashtbl.create 16 in
  let note e =
    let lat = Config.latency cfg (Ddg.node ddg e.Ddg.src).Ddg.opcode in
    let key = (e.Ddg.src, e.Ddg.dst) in
    match Hashtbl.find_opt best key with
    | Some (l, d) -> Hashtbl.replace best key (max l lat, min d e.Ddg.distance)
    | None -> Hashtbl.replace best key (lat, e.Ddg.distance)
  in
  List.iter note (Ddg.edges ddg);
  let succs v =
    Hashtbl.fold (fun (s, d) _ acc -> if s = v then d :: acc else acc) best []
  in
  let circuits = Graph_algos.elementary_circuits ?max_circuits ~num_nodes:n ~succs () in
  let circuit_bound nodes =
    let pairs =
      match nodes with
      | [] -> []
      | first :: _ ->
        let rec walk = function
          | [ last ] -> [ (last, first) ]
          | a :: (b :: _ as rest) -> (a, b) :: walk rest
          | [] -> []
        in
        walk nodes
    in
    let lat, dist =
      List.fold_left
        (fun (l, d) key ->
          match Hashtbl.find_opt best key with
          | Some (el, ed) -> (l + el, d + ed)
          | None -> (l, d))
        (0, 0) pairs
    in
    if dist = 0 then max_int else ceil_div lat dist
  in
  List.fold_left (fun acc c -> max acc (circuit_bound c)) 1 circuits

let mii cfg ddg = max (res_mii cfg ddg) (rec_mii cfg ddg)

(* [max (mii cfg ddg) floor] without the full RecMII binary search when
   the floor already dominates.  One feasibility probe at [floor]
   decides [rec_mii <= floor]; only when the probe fails does the
   search run, and then its infeasible end starts at [floor] instead of
   1.  This is the spill loop's hot path: with the monotone II floor,
   each round's floor is the previous round's achieved II, which almost
   always still covers the spilled graph's recurrences. *)
let mii_with_floor ~floor cfg ddg =
  if floor <= 1 then max (mii cfg ddg) floor
  else begin
    let res = res_mii cfg ddg in
    if feasible cfg ddg ~ii:floor then max res floor
    else begin
      let hi =
        Ddg.fold_nodes ddg ~init:floor ~f:(fun acc n ->
            acc + Config.latency cfg n.Ddg.opcode)
      in
      let rec search lo hi =
        (* invariant: lo infeasible, hi feasible *)
        if hi - lo <= 1 then hi
        else begin
          let mid = (lo + hi) / 2 in
          if feasible cfg ddg ~ii:mid then search lo mid else search mid hi
        end
      in
      max res (search floor hi)
    end
  end
