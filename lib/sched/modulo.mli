(** Iterative Modulo Scheduling (Rau, MICRO-27 flavour).

    Operations are scheduled highest-priority first (priority = height,
    the longest dependence path to any sink at the candidate II).  Each
    operation searches the [II]-wide window starting at its earliest
    dependence-feasible cycle for a free resource slot; if none exists
    it is force-placed and conflicting operations are ejected and
    rescheduled.  A budget bounds the total number of placements; on
    exhaustion the II is increased and scheduling restarts.

    The scheduler aims at maximum performance (minimum II) and ignores
    register pressure, as in the paper (Section 5.3). *)

open Ncdrf_ir
open Ncdrf_machine

(** Cluster selection policy.  The paper's scheduler is register-blind
    and balances load ([Balance]); it declines to integrate cluster
    assignment into scheduling because of compiler cost (Section 4.1,
    option 1) and fixes assignments post hoc by swapping.  [Affinity]
    implements that declined option as an extension: prefer the cluster
    where most already-placed dependence neighbours live, localizing
    values at scheduling time. *)
type cluster_policy =
  | Balance
  | Affinity

(** Placement direction within an operation's feasible window.  [Asap]
    is classic IMS (earliest cycle first — the paper's register-blind
    scheduler).  [Bidirectional] is a Huff'93-style lifetime-sensitive
    variant: an operation with more scheduled consumers than producers
    is placed as {e late} as its consumers allow, shrinking the operand
    lifetimes feeding it; others go early.  Same II, usually fewer
    registers (ablation bench [scheduler-policy]). *)
type placement_policy =
  | Asap
  | Bidirectional

(** [schedule config ddg] returns a normalized valid schedule.

    [budget_ratio] (default 8) bounds placements per attempt at
    [budget_ratio * num_nodes]; [max_ii_slack] (default 128) bounds the
    II search above MII.  [budget] (default
    {!Ncdrf_error.Budget.unlimited}) additionally meters the {e whole}
    II search in placements and wall clock; restarting at a larger II
    does not refill the account.

    All failures raise the classified [Ncdrf_error.Error.Error]:
    [Schedule_infeasible] when no II up to [mii + max_ii_slack] admits a
    schedule or a unit class has zero capacity (does not happen for
    valid graphs with sane bounds); [Budget_exhausted] when [budget]
    runs out (also bumps the ["budget.exhausted"] telemetry counter);
    [Invalid_graph] if the graph fails {!Ddg.validate}. *)
val schedule :
  ?budget:Ncdrf_error.Budget.t ->
  ?budget_ratio:int ->
  ?max_ii_slack:int ->
  ?cluster_policy:cluster_policy ->
  ?placement_policy:placement_policy ->
  Config.t ->
  Ddg.t ->
  Schedule.t

(** Like {!schedule} but starting the II search at
    [max mii min_ii] — used to force larger IIs (e.g. the paper's
    "reschedule with increased II" alternative to spilling). *)
val schedule_with_min_ii :
  ?budget:Ncdrf_error.Budget.t ->
  ?budget_ratio:int ->
  ?max_ii_slack:int ->
  ?cluster_policy:cluster_policy ->
  ?placement_policy:placement_policy ->
  min_ii:int ->
  Config.t ->
  Ddg.t ->
  Schedule.t

(** [reschedule_incremental ~base cfg ddg] schedules [ddg] at
    [base]'s II by keeping [base]'s kernel placements and only placing
    the operations [ddg] adds — plus any operations the placement ejects
    because an edit violated their dependence slack.  The incremental
    spiller uses it after [spill_value] inserts a store and its reloads:
    the memory ops usually drop into free slots of the existing
    reservation table, so a round costs a handful of placements instead
    of a full II search.

    Contract: [ddg] must extend [base]'s graph — nodes
    [0, num_nodes base.ddg) are the same operations (same opcodes);
    edges may have been added, dropped or rewritten.  Raises
    [Invalid_argument] when [ddg] has fewer nodes than the base.

    Returns [None] — the caller falls back to a full search — when the
    edit needs a larger II (a new recurrence makes [base]'s II
    infeasible), when the base placements no longer fit the machine, or
    when the placement budget ([budget_ratio] (default 8) times the
    number of added operations) runs out.  A returned schedule is
    normalized and valid, like {!schedule}'s. *)
val reschedule_incremental :
  ?budget_ratio:int ->
  ?cluster_policy:cluster_policy ->
  ?placement_policy:placement_policy ->
  base:Schedule.t ->
  Config.t ->
  Ddg.t ->
  Schedule.t option
