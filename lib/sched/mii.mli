(** Lower bounds on the initiation interval.

    The minimum initiation interval is
    [MII = max (ResMII, RecMII)]: the resource-constrained bound (no
    functional-unit class can execute more operations per II cycles than
    it has units) and the recurrence-constrained bound (every dependence
    circuit [C] forces [II >= ceil (latencies C / distances C)]). *)

open Ncdrf_ir
open Ncdrf_machine

(** Resource-constrained lower bound, taking per-class unit totals and
    machine-wide load/store port caps into account.  At least 1. *)
val res_mii : Config.t -> Ddg.t -> int

(** Recurrence-constrained bound computed by binary search on the
    smallest [ii] for which the constraint graph with weights
    [latency src - ii * distance] has no positive cycle.  At least 1. *)
val rec_mii : Config.t -> Ddg.t -> int

(** Recurrence bound by direct enumeration of elementary circuits
    (Johnson).  Exponential in the worst case — used by tests to
    cross-check {!rec_mii} and by the CLI to report critical circuits.
    When parallel edges join the same node pair the maximal
    latency/minimal distance edge is used, which dominates every
    parallel-edge combination. *)
val rec_mii_by_circuits : ?max_circuits:int -> Config.t -> Ddg.t -> int

val mii : Config.t -> Ddg.t -> int

(** [mii_with_floor ~floor cfg ddg] is exactly
    [max (mii cfg ddg) floor], computed without the RecMII binary
    search when a single feasibility probe shows the recurrences are
    already satisfied at [floor].  The spiller's monotone II floor
    makes this the hot path for spill rounds: the floor is the previous
    round's achieved II, which nearly always still covers the spilled
    graph's (only lengthened) recurrence circuits. *)
val mii_with_floor : floor:int -> Config.t -> Ddg.t -> int
