open Ncdrf_ir
open Ncdrf_machine
module Error = Ncdrf_error.Error
module Budget = Ncdrf_error.Budget
module Telemetry = Ncdrf_telemetry.Telemetry
module Trace = Ncdrf_telemetry.Trace

type cluster_policy =
  | Balance
  | Affinity

type placement_policy =
  | Asap
  | Bidirectional

let src = Logs.Src.create "ncdrf.modulo" ~doc:"iterative modulo scheduler"

module Log = (val Logs.src_log src : Logs.LOG)

(* Heights: longest dependence path from each node to any sink, with
   edge weights [latency src - ii * distance].  At ii >= RecMII there is
   no positive cycle, so the Bellman-Ford style fixpoint converges. *)
let heights cfg ddg ~ii =
  let n = Ddg.num_nodes ddg in
  let height = Array.make n 0 in
  let weight e =
    Config.latency cfg (Ddg.node ddg e.Ddg.src).Ddg.opcode - (ii * e.Ddg.distance)
  in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= n + 1 do
    changed := false;
    incr rounds;
    for v = 0 to n - 1 do
      let relax e =
        let h = weight e + height.(e.Ddg.dst) in
        if h > height.(v) then begin
          height.(v) <- h;
          changed := true
        end
      in
      List.iter relax (Ddg.succs ddg v)
    done
  done;
  if !changed then None else Some height

type state = {
  cfg : Config.t;
  ddg : Ddg.t;
  ii : int;
  rt : Reservation.t;
  policy : cluster_policy;
  placement : placement_policy;
  cycle : int array;  (* -1 = unscheduled *)
  cluster : int array;
  ever_cycle : int array;  (* last cycle at which the op was placed, or -1 *)
  height : int array;
  mutable budget : int;
}

(* The cluster where most already-placed flow neighbours of [v] live,
   if any. *)
let preferred_cluster st v =
  let n_clusters = Config.num_clusters st.cfg in
  if n_clusters < 2 then None
  else begin
    let votes = Array.make n_clusters 0 in
    let vote w = if st.cycle.(w) >= 0 then votes.(st.cluster.(w)) <- votes.(st.cluster.(w)) + 1 in
    List.iter (fun e -> if e.Ddg.kind = Ddg.Flow then vote e.Ddg.src) (Ddg.preds st.ddg v);
    List.iter (fun e -> if e.Ddg.kind = Ddg.Flow then vote e.Ddg.dst) (Ddg.succs st.ddg v);
    let best = ref 0 in
    Array.iteri (fun c count -> if count > votes.(!best) then best := c) votes;
    if votes.(!best) = 0 then None else Some !best
  end

(* Reserve a unit for [v] at [cycle], honouring the cluster policy. *)
let reserve_for st v ~cycle =
  let op = (Ddg.node st.ddg v).Ddg.opcode in
  match st.policy with
  | Balance -> Reservation.reserve st.rt ~op ~cycle
  | Affinity ->
    (match preferred_cluster st v with
     | Some cluster when Reservation.reserve_in st.rt ~op ~cycle ~cluster -> Some cluster
     | Some _ | None -> Reservation.reserve st.rt ~op ~cycle)

let weight st e =
  Config.latency st.cfg (Ddg.node st.ddg e.Ddg.src).Ddg.opcode - (st.ii * e.Ddg.distance)

let unschedule st v =
  let op = (Ddg.node st.ddg v).Ddg.opcode in
  Reservation.release st.rt ~op ~cycle:st.cycle.(v) ~cluster:st.cluster.(v);
  st.cycle.(v) <- -1

(* Earliest cycle satisfying all *scheduled* predecessors. *)
let estart st v =
  let consider acc e =
    if st.cycle.(e.Ddg.src) >= 0 then max acc (st.cycle.(e.Ddg.src) + weight st e) else acc
  in
  List.fold_left consider 0 (Ddg.preds st.ddg v)

(* Evict whatever prevents [v] from being placed at [cycle]: operations
   of the same class in that kernel slot (across clusters) and, when a
   machine-wide port cap blocks a memory op, the port users in the
   slot. *)
let evict_conflicts st v ~cycle =
  let op = (Ddg.node st.ddg v).Ddg.opcode in
  let same_slot c = (c - cycle) mod st.ii = 0 in
  let cls = Opcode.fu_class op in
  for w = 0 to Ddg.num_nodes st.ddg - 1 do
    if w <> v && st.cycle.(w) >= 0 && same_slot st.cycle.(w) then begin
      let wop = (Ddg.node st.ddg w).Ddg.opcode in
      let class_conflict = Opcode.fu_class wop = cls in
      let port_conflict =
        (Opcode.is_load op && Opcode.is_load wop
         && Reservation.port_saturated st.rt ~op ~cycle)
        || (Opcode.is_store op && Opcode.is_store wop
            && Reservation.port_saturated st.rt ~op ~cycle)
      in
      if class_conflict || port_conflict then unschedule st w
    end
  done

(* After placing [v], eject neighbours whose dependence constraints are
   now violated. *)
let eject_violated st v =
  let check_succ e =
    let q = e.Ddg.dst in
    if q <> v && st.cycle.(q) >= 0 && st.cycle.(q) < st.cycle.(v) + weight st e then
      unschedule st q
  in
  List.iter check_succ (Ddg.succs st.ddg v);
  let check_pred e =
    let p = e.Ddg.src in
    if p <> v && st.cycle.(p) >= 0 && st.cycle.(v) < st.cycle.(p) + weight st e then
      unschedule st p
  in
  List.iter check_pred (Ddg.preds st.ddg v)

let place st v ~cycle ~cluster =
  st.cycle.(v) <- cycle;
  st.cluster.(v) <- cluster;
  st.ever_cycle.(v) <- cycle;
  eject_violated st v

(* Latest cycle allowed by already-scheduled successors, if any. *)
let lstart st v =
  let consider acc e =
    if st.cycle.(e.Ddg.dst) >= 0 then
      let bound = st.cycle.(e.Ddg.dst) - weight st e in
      match acc with None -> Some bound | Some b -> Some (min b bound)
    else acc
  in
  List.fold_left consider None (Ddg.succs st.ddg v)

(* Huff-style direction choice: feed-forward ops whose consumers are
   already placed want to sit late (short operand lifetimes); producers
   for unscheduled consumers go early as usual. *)
let wants_late st v =
  match st.placement with
  | Asap -> None
  | Bidirectional ->
    (match lstart st v with
     | None -> None
     | Some late ->
       let count edges pick =
         List.length (List.filter (fun e -> e.Ddg.kind = Ddg.Flow && st.cycle.(pick e) >= 0) edges)
       in
       let succs = count (Ddg.succs st.ddg v) (fun e -> e.Ddg.dst) in
       let preds = count (Ddg.preds st.ddg v) (fun e -> e.Ddg.src) in
       if succs > preds then Some late else None)

let try_window st v ~from =
  match wants_late st v with
  | Some late when late >= from ->
    (* Search downward from the latest feasible cycle. *)
    let lo = max from (late - st.ii + 1) in
    let rec attempt c =
      if c < lo then None
      else
        match reserve_for st v ~cycle:c with
        | Some cluster -> Some (c, cluster)
        | None -> attempt (c - 1)
    in
    attempt late
  | Some _ | None ->
    let rec attempt c =
      if c >= from + st.ii then None
      else
        match reserve_for st v ~cycle:c with
        | Some cluster -> Some (c, cluster)
        | None -> attempt (c + 1)
    in
    attempt from

let highest_unscheduled st =
  let best = ref (-1) in
  for v = 0 to Ddg.num_nodes st.ddg - 1 do
    if st.cycle.(v) < 0 then
      match !best with
      | -1 -> best := v
      | b -> if st.height.(v) > st.height.(b) then best := v
  done;
  !best

(* Place every unscheduled operation (highest priority first) within the
   state's budget.  Shared by [attempt] (which starts from an empty
   placement) and [reschedule_incremental] (which starts from a seeded
   one).  Returns false on budget exhaustion; raises only when a unit
   class has zero capacity or the external [meter] runs out. *)
let place_all st ~meter =
  let ddg = st.ddg and ii = st.ii in
  let rec loop () =
    let v = highest_unscheduled st in
    if v < 0 then true
    else if st.budget <= 0 then false
    else begin
      st.budget <- st.budget - 1;
      (match meter with
       | None -> ()
       | Some m ->
         Budget.spend m;
         (match Budget.exceeded m with
          | None -> ()
          | Some reason ->
            Telemetry.incr "budget.exhausted";
            Error.errorf ~loop:(Ddg.name ddg) ~ii ~stage:"schedule"
              Error.Budget_exhausted "%s after %d placements" reason
              (Budget.steps_used m)));
      let from = estart st v in
      (match try_window st v ~from with
       | Some (cycle, cluster) -> place st v ~cycle ~cluster
       | None ->
         (* Forced placement with eviction. *)
         let cycle = if st.ever_cycle.(v) >= from then st.ever_cycle.(v) + 1 else from in
         evict_conflicts st v ~cycle;
         (match reserve_for st v ~cycle with
          | Some cluster -> place st v ~cycle ~cluster
          | None ->
            (* Can only happen when a unit class has zero capacity. *)
            let op = (Ddg.node ddg v).Ddg.opcode in
            Error.errorf ~loop:(Ddg.name ddg) ~ii ~stage:"schedule"
              Error.Schedule_infeasible "no unit can execute %s"
              (Opcode.to_string op)));
      loop ()
    end
  in
  loop ()

let schedule_of_state st =
  let n = Ddg.num_nodes st.ddg in
  let placements =
    Array.init n (fun v -> { Schedule.cycle = st.cycle.(v); cluster = st.cluster.(v) })
  in
  Schedule.normalize (Schedule.make ~config:st.cfg ~ii:st.ii ~placements st.ddg)

let attempt cfg ddg ~ii ~budget ~meter ~policy ~placement =
  match heights cfg ddg ~ii with
  | None -> None (* positive cycle: ii below RecMII *)
  | Some height ->
    let n = Ddg.num_nodes ddg in
    let st =
      {
        cfg;
        ddg;
        ii;
        rt = Reservation.create cfg ~ii;
        policy;
        placement;
        cycle = Array.make n (-1);
        cluster = Array.make n 0;
        ever_cycle = Array.make n (-1);
        height;
        budget;
      }
    in
    if place_all st ~meter then Some (schedule_of_state st) else None

let reschedule_incremental ?(budget_ratio = 8) ?(cluster_policy = Balance)
    ?(placement_policy = Asap) ~base cfg ddg =
  let ii = Schedule.ii base in
  let n = Ddg.num_nodes ddg in
  let n_base = Ddg.num_nodes base.Schedule.ddg in
  if n < n_base then
    invalid_arg "Modulo.reschedule_incremental: graph has fewer nodes than its base";
  match heights cfg ddg ~ii with
  | None -> None (* the edit introduced a recurrence that needs a larger II *)
  | Some height ->
    let st =
      {
        cfg;
        ddg;
        ii;
        rt = Reservation.create cfg ~ii;
        policy = cluster_policy;
        placement = placement_policy;
        cycle = Array.make n (-1);
        cluster = Array.make n 0;
        ever_cycle = Array.make n (-1);
        height;
        (* The budget scales with the edit, not the graph: the point is
           to fail fast and fall back to a full II search when slotting
           the new operations in would take real work. *)
        budget = budget_ratio * max 1 (n - n_base + 2);
      }
    in
    (* Seed the base placements into the fresh reservation table.  A
       seed that no longer reserves means the base schedule does not fit
       this machine at all — give up, the caller reschedules fully. *)
    let seeded = ref true in
    for v = 0 to n_base - 1 do
      if !seeded then begin
        let op = (Ddg.node ddg v).Ddg.opcode in
        let cycle = Schedule.cycle base v and cluster = Schedule.cluster base v in
        if Reservation.reserve_in st.rt ~op ~cycle ~cluster then begin
          st.cycle.(v) <- cycle;
          st.cluster.(v) <- cluster;
          st.ever_cycle.(v) <- cycle
        end
        else seeded := false
      end
    done;
    if not !seeded then None
    else begin
      (* Eject any seeded operation whose dependence slack the graph
         edit violated (an edit that only relaxes constraints among
         retained nodes leaves this a no-op, but the contract is
         checked, not assumed). *)
      List.iter
        (fun e ->
          let p = e.Ddg.src and q = e.Ddg.dst in
          if
            p <> q && st.cycle.(p) >= 0 && st.cycle.(q) >= 0
            && st.cycle.(q) < st.cycle.(p) + weight st e
          then unschedule st q)
        (Ddg.edges ddg);
      match place_all st ~meter:None with
      | true -> Some (schedule_of_state st)
      | false -> None
      | exception Error.Error e when e.Error.category = Error.Schedule_infeasible ->
        (* Zero-capacity unit class: the full search raises the
           canonical error; this entry point just declines. *)
        None
    end

let schedule_with_min_ii ?(budget = Budget.unlimited) ?(budget_ratio = 8)
    ?(max_ii_slack = 128) ?(cluster_policy = Balance) ?(placement_policy = Asap)
    ~min_ii cfg ddg =
  (match Ddg.validate ddg with
   | Ok () -> ()
   | Error msg ->
     Error.errorf ~loop:(Ddg.name ddg) ~stage:"schedule" Error.Invalid_graph
       "Modulo.schedule: %s" msg);
  (* [mii_with_floor] avoids the full RecMII binary search when
     [min_ii] already covers the recurrences — the spiller's monotone II
     floor makes that the common case for spill rounds — and returns
     exactly [max (Mii.mii cfg ddg) min_ii]. *)
  let mii = Mii.mii_with_floor ~floor:min_ii cfg ddg in
  let attempt_budget = budget_ratio * max 1 (Ddg.num_nodes ddg) in
  (* One meter spans the whole II search: restarts at a larger II do not
     refill the account. *)
  let meter = if Budget.limited budget then Some (Budget.start budget) else None in
  let rec search ii =
    (* Deadline poll once per II attempt: a request canceled or expired
       mid-search dies with a typed error instead of grinding through
       the remaining II slack.  No-op without an ambient token. *)
    Ncdrf_error.Deadline.check ~stage:"schedule";
    if ii > mii + max_ii_slack then
      Error.errorf ~loop:(Ddg.name ddg) ~ii:(mii + max_ii_slack) ~stage:"schedule"
        Error.Schedule_infeasible "no schedule up to II=%d" (mii + max_ii_slack)
    else
      match
        attempt cfg ddg ~ii ~budget:attempt_budget ~meter ~policy:cluster_policy
          ~placement:placement_policy
      with
      | Some s ->
        Log.debug (fun m -> m "%s: scheduled at II=%d (MII=%d)" (Ddg.name ddg) ii mii);
        Trace.set_ii ii;
        s
      | None ->
        (* Rejected IIs show up in the event trace: the ambient context
           is stamped with the II that just failed so the instant event
           carries it. *)
        Trace.set_ii ii;
        Trace.instant "sched.ii_reject";
        search (ii + 1)
  in
  search mii

let schedule ?budget ?budget_ratio ?max_ii_slack ?cluster_policy ?placement_policy cfg
    ddg =
  schedule_with_min_ii ?budget ?budget_ratio ?max_ii_slack ?cluster_policy
    ?placement_policy ~min_ii:1 cfg ddg
