open Ncdrf_ir
open Ncdrf_machine
module Error = Ncdrf_error.Error

let push_late sched ~eligible =
  let ddg = sched.Schedule.ddg in
  let cfg = sched.Schedule.config in
  let ii = Schedule.ii sched in
  let n = Ddg.num_nodes ddg in
  let cycle = Array.init n (fun v -> Schedule.cycle sched v) in
  let cluster = Array.init n (fun v -> Schedule.cluster sched v) in
  (* Rebuild the reservation table from the current placements. *)
  let rt = Reservation.create cfg ~ii in
  let book v =
    let op = (Ddg.node ddg v).Ddg.opcode in
    if not (Reservation.reserve_in rt ~op ~cycle:cycle.(v) ~cluster:cluster.(v)) then
      invalid_arg "Adjust.push_late: input schedule is resource-invalid"
  in
  for v = 0 to n - 1 do
    book v
  done;
  let weight e =
    Config.latency cfg (Ddg.node ddg e.Ddg.src).Ddg.opcode - (ii * e.Ddg.distance)
  in
  (* Latest cycle allowed by successors; earliest by predecessors. *)
  let lstart v =
    List.fold_left
      (fun acc e -> min acc (cycle.(e.Ddg.dst) - weight e))
      max_int (Ddg.succs ddg v)
  in
  let estart v =
    List.fold_left
      (fun acc e -> max acc (cycle.(e.Ddg.src) + weight e))
      min_int (Ddg.preds ddg v)
  in
  let try_move v =
    let node = Ddg.node ddg v in
    let hi = lstart v in
    if hi = max_int || hi <= cycle.(v) then ()
    else begin
      let lo = max (cycle.(v) + 1) (estart v) in
      let op = node.Ddg.opcode in
      Reservation.release rt ~op ~cycle:cycle.(v) ~cluster:cluster.(v);
      let rec attempt c =
        if c < lo then begin
          (* No later slot: put it back where it was.  The slot was just
             released, so failing to re-reserve it means the table is
             corrupt — raise a typed error rather than an assert that
             [-noassert] would erase, silently keeping the bad table. *)
          if not (Reservation.reserve_in rt ~op ~cycle:cycle.(v) ~cluster:cluster.(v))
          then
            Error.errorf ~loop:(Ddg.name ddg) ~ii ~stage:"schedule" Error.Internal
              "Adjust.push_late: lost the reservation of %s at cycle %d"
              node.Ddg.label cycle.(v)
        end
        else
          match Reservation.reserve rt ~op ~cycle:c with
          | Some new_cluster ->
            cycle.(v) <- c;
            cluster.(v) <- new_cluster
          | None -> attempt (c - 1)
      in
      attempt hi
    end
  in
  (* Latest-first so chained eligible nodes cascade downward. *)
  let order =
    List.sort
      (fun a b -> Int.compare cycle.(b.Ddg.id) cycle.(a.Ddg.id))
      (List.filter eligible (Ddg.nodes ddg))
  in
  List.iter (fun nd -> try_move nd.Ddg.id) order;
  let placements =
    Array.init n (fun v -> { Schedule.cycle = cycle.(v); cluster = cluster.(v) })
  in
  Schedule.normalize (Schedule.make ~config:cfg ~ii ~placements ddg)
