module Json = Json
module Stats = Ncdrf_report.Stats

external now_ns : unit -> int64 = "ncdrf_monotonic_ns"

let now () = Int64.to_float (now_ns ()) *. 1e-9

type span = {
  total_s : float;
  count : int;
  max_s : float;
}

type distribution = {
  p50_s : float;
  p90_s : float;
  p99_s : float;
}

(* Counters are Atomic cells in one global table, created under the
   lock (creation is rare, increments are lock-free).

   Span accumulation is sharded per domain: each domain owns a table of
   accumulators (sums plus the raw samples, for percentiles) reachable
   through domain-local storage, so recording never takes a lock.
   [spans]/[distributions] merge the shards at read time; like the
   trace rings, readers must run after worker domains have quiesced. *)
let on = Atomic.make false
let lock = Mutex.create ()
let counter_tbl : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 16

type acc = {
  mutable total_s : float;
  mutable count : int;
  mutable max_s : float;
  mutable samples : float array;
  mutable n_samples : int;
}

type span_shard = { accs : (string, acc) Hashtbl.t }

let span_shards : span_shard list ref = ref []

let span_key : span_shard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s = { accs = Hashtbl.create 16 } in
      Mutex.lock lock;
      span_shards := s :: !span_shards;
      Mutex.unlock lock;
      s)

let enable b = Atomic.set on b
let enabled () = Atomic.get on

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counter_cell name =
  match Hashtbl.find_opt counter_tbl name with
  | Some c -> c
  | None ->
    with_lock (fun () ->
        match Hashtbl.find_opt counter_tbl name with
        | Some c -> c
        | None ->
          let c = Atomic.make 0 in
          Hashtbl.add counter_tbl name c;
          c)

let incr ?(by = 1) name =
  if Atomic.get on then ignore (Atomic.fetch_and_add (counter_cell name) by)

let counter name =
  match Hashtbl.find_opt counter_tbl name with
  | Some c -> Atomic.get c
  | None -> 0

let record_span name seconds =
  if Atomic.get on then begin
    let shard = Domain.DLS.get span_key in
    let a =
      match Hashtbl.find_opt shard.accs name with
      | Some a -> a
      | None ->
        let a =
          { total_s = 0.0; count = 0; max_s = 0.0; samples = Array.make 16 0.0; n_samples = 0 }
        in
        Hashtbl.add shard.accs name a;
        a
    in
    a.total_s <- a.total_s +. seconds;
    a.count <- a.count + 1;
    if seconds > a.max_s then a.max_s <- seconds;
    (if a.n_samples = Array.length a.samples then begin
       let grown = Array.make (2 * a.n_samples) 0.0 in
       Array.blit a.samples 0 grown 0 a.n_samples;
       a.samples <- grown
     end);
    a.samples.(a.n_samples) <- seconds;
    a.n_samples <- a.n_samples + 1
  end

(* The thunk always runs; with both telemetry and tracing off the only
   cost is two atomic loads.  When armed, the duration feeds the global
   span (metrics), the ambient point context (ledger) and the event
   ring (trace) as applicable. *)
let time name f =
  if not (Atomic.get on || Trace.active ()) then f ()
  else begin
    Trace.begin_span name;
    let t0 = now () in
    Fun.protect
      ~finally:(fun () ->
        let dt = now () -. t0 in
        record_span name dt;
        Trace.note_stage name dt;
        Trace.end_span name)
      f
  end

let all_span_shards () =
  with_lock (fun () -> !span_shards)

let merged_accs () =
  let tbl : (string, span * float list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun shard ->
      Hashtbl.iter
        (fun name a ->
          let prev_span, prev_samples =
            Option.value
              (Hashtbl.find_opt tbl name)
              ~default:({ total_s = 0.0; count = 0; max_s = 0.0 }, [])
          in
          let samples =
            List.init a.n_samples (fun i -> a.samples.(i)) @ prev_samples
          in
          Hashtbl.replace tbl name
            ( {
                total_s = prev_span.total_s +. a.total_s;
                count = prev_span.count + a.count;
                max_s = Float.max prev_span.max_s a.max_s;
              },
              samples ))
        shard.accs)
    (all_span_shards ());
  tbl

let sorted_bindings tbl value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let spans () = sorted_bindings (merged_accs ()) fst

let span_count name =
  match Hashtbl.find_opt (merged_accs ()) name with
  | Some (s, _) -> s.count
  | None -> 0

let span_samples name =
  match Hashtbl.find_opt (merged_accs ()) name with
  | Some (_, samples) -> samples
  | None -> []

let distributions () =
  sorted_bindings (merged_accs ()) (fun (_, samples) ->
      {
        p50_s = Stats.percentile 50.0 samples;
        p90_s = Stats.percentile 90.0 samples;
        p99_s = Stats.percentile 99.0 samples;
      })

let counters () =
  with_lock (fun () ->
      Hashtbl.fold (fun k v acc -> (k, Atomic.get v) :: acc) counter_tbl [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  with_lock (fun () ->
      Hashtbl.reset counter_tbl;
      List.iter (fun shard -> Hashtbl.reset shard.accs) !span_shards)

let to_json () =
  let merged = merged_accs () in
  let span_json ((name, (s, samples)) : string * (span * float list)) =
    let dist =
      match samples with
      | [] -> []
      | _ ->
        [
          ("p50_s", Json.Float (Stats.percentile 50.0 samples));
          ("p90_s", Json.Float (Stats.percentile 90.0 samples));
          ("p99_s", Json.Float (Stats.percentile 99.0 samples));
        ]
    in
    ( name,
      Json.Obj
        ([ ("total_s", Json.Float s.total_s); ("count", Json.Int s.count);
           ("max_s", Json.Float s.max_s) ]
        @ dist) )
  in
  Json.Obj
    [
      ("spans", Json.Obj (List.map span_json (sorted_bindings merged Fun.id)));
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters ())));
    ]

let write_json ~path json =
  Json.write_file ~prefix:".metrics" ~path (Json.to_string json ^ "\n")
