module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let float_str f =
    if not (Float.is_finite f) then "null" (* NaN/inf are not JSON *)
    else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%.9g" f

  let to_string t =
    let buf = Buffer.create 256 in
    let pad n = Buffer.add_string buf (String.make n ' ') in
    let rec go indent = function
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (if b then "true" else "false")
      | Int i -> Buffer.add_string buf (string_of_int i)
      | Float f -> Buffer.add_string buf (float_str f)
      | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
      | List [] -> Buffer.add_string buf "[]"
      | List items ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (indent + 2);
            go (indent + 2) item)
          items;
        Buffer.add_char buf '\n';
        pad indent;
        Buffer.add_char buf ']'
      | Obj [] -> Buffer.add_string buf "{}"
      | Obj fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (indent + 2);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\": ";
            go (indent + 2) v)
          fields;
        Buffer.add_char buf '\n';
        pad indent;
        Buffer.add_char buf '}'
    in
    go 0 t;
    Buffer.contents buf
end

external now_ns : unit -> int64 = "ncdrf_monotonic_ns"

let now () = Int64.to_float (now_ns ()) *. 1e-9

type span = {
  total_s : float;
  count : int;
  max_s : float;
}

(* One global registry.  Counters are Atomic cells created under the
   lock (creation is rare, increments are lock-free); spans are plain
   records mutated under the lock. *)
let on = Atomic.make false
let lock = Mutex.create ()
let counter_tbl : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 16
let span_tbl : (string, span ref) Hashtbl.t = Hashtbl.create 16

let enable b = Atomic.set on b
let enabled () = Atomic.get on

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counter_cell name =
  match Hashtbl.find_opt counter_tbl name with
  | Some c -> c
  | None ->
    with_lock (fun () ->
        match Hashtbl.find_opt counter_tbl name with
        | Some c -> c
        | None ->
          let c = Atomic.make 0 in
          Hashtbl.add counter_tbl name c;
          c)

let incr ?(by = 1) name =
  if Atomic.get on then ignore (Atomic.fetch_and_add (counter_cell name) by)

let counter name =
  match Hashtbl.find_opt counter_tbl name with
  | Some c -> Atomic.get c
  | None -> 0

let record_span name seconds =
  if Atomic.get on then
    with_lock (fun () ->
        match Hashtbl.find_opt span_tbl name with
        | Some r ->
          let s = !r in
          r :=
            {
              total_s = s.total_s +. seconds;
              count = s.count + 1;
              max_s = Float.max s.max_s seconds;
            }
        | None ->
          Hashtbl.add span_tbl name
            (ref { total_s = seconds; count = 1; max_s = seconds }))

let time name f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = now () in
    Fun.protect ~finally:(fun () -> record_span name (now () -. t0)) f
  end

let sorted_bindings tbl value =
  with_lock (fun () ->
      Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let spans () = sorted_bindings span_tbl (fun r -> !r)

let span_count name =
  match with_lock (fun () -> Hashtbl.find_opt span_tbl name) with
  | Some r -> !r.count
  | None -> 0
let counters () = sorted_bindings counter_tbl Atomic.get

let reset () =
  with_lock (fun () ->
      Hashtbl.reset counter_tbl;
      Hashtbl.reset span_tbl)

let to_json () =
  let span_json (name, s) =
    ( name,
      Json.Obj
        [ ("total_s", Json.Float s.total_s); ("count", Json.Int s.count);
          ("max_s", Json.Float s.max_s) ] )
  in
  Json.Obj
    [
      ("spans", Json.Obj (List.map span_json (spans ())));
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters ())));
    ]

let write_json ~path json =
  let dir = Filename.dirname path in
  let tmp =
    try Filename.temp_file ~temp_dir:dir ".metrics" ".tmp"
    with Sys_error msg ->
      raise (Sys_error (Printf.sprintf "cannot write metrics to %s: %s" path msg))
  in
  let oc = open_out tmp in
  (try
     output_string oc (Json.to_string json);
     output_char oc '\n'
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp path
