module Json = Json
module Stats = Ncdrf_report.Stats

external now_ns : unit -> int64 = "ncdrf_monotonic_ns"

let now () = Int64.to_float (now_ns ()) *. 1e-9

type span = {
  total_s : float;
  count : int;
  max_s : float;
}

type distribution = {
  p50_s : float;
  p90_s : float;
  p99_s : float;
}

(* Counters are Atomic cells in one global table, created under the
   lock (creation is rare, increments are lock-free).

   Span accumulation is sharded per (domain, thread), the same
   composite key the trace shards and Deadline tokens use: each thread
   owns a table of accumulators (sums plus the raw samples, for
   percentiles) keyed by (request id, span name), so concurrent
   connection-handler systhreads on domain 0 never mutate one
   accumulator concurrently, and samples stay attributable to the
   request that produced them.  Recording takes the lock only for the
   shard lookup (not for the accumulator update); [spans] and
   [distributions] merge the shards — across requests — at read time.
   Like the trace rings, readers must run after worker domains and
   handler threads have quiesced. *)
let on = Atomic.make false
let lock = Mutex.create ()
let counter_tbl : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 16

type acc = {
  mutable total_s : float;
  mutable count : int;
  mutable max_s : float;
  mutable samples : float array;
  mutable n_samples : int;
}

(* accs keyed by (request id, span name); "" = outside any request *)
type span_shard = { accs : (string * string, acc) Hashtbl.t }

let span_table : (int * int, span_shard) Hashtbl.t = Hashtbl.create 16
let span_shards : span_shard list ref = ref []

let my_span_shard () =
  let k = ((Domain.self () :> int), Thread.id (Thread.self ())) in
  Mutex.lock lock;
  let s =
    match Hashtbl.find_opt span_table k with
    | Some s -> s
    | None ->
      let s = { accs = Hashtbl.create 16 } in
      Hashtbl.add span_table k s;
      span_shards := s :: !span_shards;
      s
  in
  Mutex.unlock lock;
  s

let enable b = Atomic.set on b
let enabled () = Atomic.get on

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counter_cell name =
  match Hashtbl.find_opt counter_tbl name with
  | Some c -> c
  | None ->
    with_lock (fun () ->
        match Hashtbl.find_opt counter_tbl name with
        | Some c -> c
        | None ->
          let c = Atomic.make 0 in
          Hashtbl.add counter_tbl name c;
          c)

let incr ?(by = 1) name =
  if Atomic.get on then ignore (Atomic.fetch_and_add (counter_cell name) by)

let counter name =
  match Hashtbl.find_opt counter_tbl name with
  | Some c -> Atomic.get c
  | None -> 0

let record_span name seconds =
  if Atomic.get on then begin
    let shard = my_span_shard () in
    let key = (Trace.current_request (), name) in
    let a =
      match Hashtbl.find_opt shard.accs key with
      | Some a -> a
      | None ->
        let a =
          { total_s = 0.0; count = 0; max_s = 0.0; samples = Array.make 16 0.0; n_samples = 0 }
        in
        Hashtbl.add shard.accs key a;
        a
    in
    a.total_s <- a.total_s +. seconds;
    a.count <- a.count + 1;
    if seconds > a.max_s then a.max_s <- seconds;
    (if a.n_samples = Array.length a.samples then begin
       let grown = Array.make (2 * a.n_samples) 0.0 in
       Array.blit a.samples 0 grown 0 a.n_samples;
       a.samples <- grown
     end);
    a.samples.(a.n_samples) <- seconds;
    a.n_samples <- a.n_samples + 1
  end

(* The thunk always runs; with both telemetry and tracing off the only
   cost is two atomic loads.  When armed, the duration feeds the global
   span (metrics), the ambient point context (ledger) and the event
   ring (trace) as applicable. *)
let time name f =
  if not (Atomic.get on || Trace.active ()) then f ()
  else begin
    Trace.begin_span name;
    let t0 = now () in
    Fun.protect
      ~finally:(fun () ->
        let dt = now () -. t0 in
        record_span name dt;
        Trace.note_stage name dt;
        Trace.end_span name)
      f
  end

let all_span_shards () =
  with_lock (fun () -> !span_shards)

(* Merge shard accumulators under a caller-chosen key projection:
   [fst] of the (request, name) acc key for per-request views, [snd]
   for the classic per-name views (requests collapsed). *)
let merged_accs_by key_of =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun shard ->
      Hashtbl.iter
        (fun key a ->
          let key = key_of key in
          let prev_span, prev_samples =
            Option.value
              (Hashtbl.find_opt tbl key)
              ~default:({ total_s = 0.0; count = 0; max_s = 0.0 }, [])
          in
          let samples =
            List.init a.n_samples (fun i -> a.samples.(i)) @ prev_samples
          in
          Hashtbl.replace tbl key
            ( {
                total_s = prev_span.total_s +. a.total_s;
                count = prev_span.count + a.count;
                max_s = Float.max prev_span.max_s a.max_s;
              },
              samples ))
        shard.accs)
    (all_span_shards ());
  tbl

let merged_accs () = merged_accs_by snd

let request_spans () =
  Hashtbl.fold (fun k (s, _) acc -> (k, s) :: acc) (merged_accs_by Fun.id) []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let sorted_bindings tbl value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let spans () = sorted_bindings (merged_accs ()) fst

let span_count name =
  match Hashtbl.find_opt (merged_accs ()) name with
  | Some (s, _) -> s.count
  | None -> 0

let span_samples name =
  match Hashtbl.find_opt (merged_accs ()) name with
  | Some (_, samples) -> samples
  | None -> []

let distributions () =
  sorted_bindings (merged_accs ()) (fun (_, samples) ->
      {
        p50_s = Stats.percentile 50.0 samples;
        p90_s = Stats.percentile 90.0 samples;
        p99_s = Stats.percentile 99.0 samples;
      })

let counters () =
  with_lock (fun () ->
      Hashtbl.fold (fun k v acc -> (k, Atomic.get v) :: acc) counter_tbl [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  with_lock (fun () ->
      Hashtbl.reset counter_tbl;
      List.iter (fun shard -> Hashtbl.reset shard.accs) !span_shards)

let to_json () =
  let merged = merged_accs () in
  let span_json ((name, (s, samples)) : string * (span * float list)) =
    let dist =
      match samples with
      | [] -> []
      | _ ->
        [
          ("p50_s", Json.Float (Stats.percentile 50.0 samples));
          ("p90_s", Json.Float (Stats.percentile 90.0 samples));
          ("p99_s", Json.Float (Stats.percentile 99.0 samples));
        ]
    in
    ( name,
      Json.Obj
        ([ ("total_s", Json.Float s.total_s); ("count", Json.Int s.count);
           ("max_s", Json.Float s.max_s) ]
        @ dist) )
  in
  Json.Obj
    [
      ("spans", Json.Obj (List.map span_json (sorted_bindings merged Fun.id)));
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters ())));
    ]

let write_json ~path json =
  Json.write_file ~prefix:".metrics" ~path (Json.to_string json ^ "\n")
