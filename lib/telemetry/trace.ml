external now_ns : unit -> int64 = "ncdrf_monotonic_ns"

type event = {
  name : string;
  phase : char;
  ts_ns : int64;
  domain : int;
  loop : string;
  config : string;
  ii : int;
}

type point = {
  loop : string;
  config : string;
  fp : string;
  mutable ii : int;
  mutable mii : int;
  mutable clusters : int;
  mutable rounds : int;
  mutable spilled : int;
  mutable requirement : int;
  mutable maxlive : int;
  mutable spill_full : int;
  mutable spill_incremental : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable disk_hits : int;
  mutable disk_misses : int;
  mutable stages : (string * float) list;
  mutable error : string option;
}

(* One shard per domain.  The ring is lazily grown up to the capacity,
   then wraps (oldest events overwritten); [emitted] is the lifetime
   event count, so [emitted - Array.length ring] events have been
   dropped once the ring is saturated.  A shard is only ever written by
   its owning domain; readers run after the pool has quiesced. *)
type shard = {
  mutable id : int;
  mutable ring : event array;
  mutable emitted : int;
  mutable ctx : point option;
}

let events_on = Atomic.make false
let context_demanded = Atomic.make false
let ring_capacity = Atomic.make 65536

let registry_lock = Mutex.create ()
let shards : shard list ref = ref []

let dummy_event =
  { name = ""; phase = '?'; ts_ns = 0L; domain = 0; loop = ""; config = ""; ii = -1 }

let key : shard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s =
        { id = (Domain.self () :> int); ring = [||]; emitted = 0; ctx = None }
      in
      Mutex.lock registry_lock;
      shards := s :: !shards;
      Mutex.unlock registry_lock;
      s)

let my () = Domain.DLS.get key

let enable b = Atomic.set events_on b
let enabled () = Atomic.get events_on
let require_context b = Atomic.set context_demanded b
let active () = Atomic.get events_on || Atomic.get context_demanded
let set_domain_id id = (my ()).id <- id
let set_ring_capacity n = Atomic.set ring_capacity (max 1 n)

let all_shards () =
  Mutex.lock registry_lock;
  let l = !shards in
  Mutex.unlock registry_lock;
  l

let emit s ev =
  let cap = Atomic.get ring_capacity in
  let len = Array.length s.ring in
  (if len < cap && s.emitted >= len then begin
     (* amortized doubling toward the capacity; events seen so far are
        exactly ring[0..len-1] in emission order, so a blit preserves
        them in place *)
     let len' = min cap (max 1024 (2 * len)) in
     let ring' = Array.make len' dummy_event in
     Array.blit s.ring 0 ring' 0 len;
     s.ring <- ring'
   end);
  s.ring.(s.emitted mod Array.length s.ring) <- ev;
  s.emitted <- s.emitted + 1

let event_of s ~name ~phase =
  let loop, config, ii =
    match s.ctx with
    | Some p -> (p.loop, p.config, p.ii)
    | None -> ("", "", -1)
  in
  { name; phase; ts_ns = now_ns (); domain = s.id; loop; config; ii }

let begin_span name =
  if Atomic.get events_on then begin
    let s = my () in
    emit s (event_of s ~name ~phase:'B')
  end

let end_span name =
  if Atomic.get events_on then begin
    let s = my () in
    emit s (event_of s ~name ~phase:'E')
  end

let instant name =
  if Atomic.get events_on then begin
    let s = my () in
    emit s (event_of s ~name ~phase:'i')
  end

let with_context ~loop ~config ~fp f =
  if not (active ()) then f ()
  else begin
    let s = my () in
    let saved = s.ctx in
    s.ctx <-
      Some
        {
          loop;
          config;
          fp;
          ii = -1;
          mii = -1;
          clusters = -1;
          rounds = -1;
          spilled = -1;
          requirement = -1;
          maxlive = -1;
          spill_full = -1;
          spill_incremental = -1;
          cache_hits = 0;
          cache_misses = 0;
          disk_hits = 0;
          disk_misses = 0;
          stages = [];
          error = None;
        };
    Fun.protect ~finally:(fun () -> s.ctx <- saved) f
  end

let current () = if active () then (my ()).ctx else None

let with_point f =
  if active () then
    match (my ()).ctx with
    | Some p -> f p
    | None -> ()

let set_ii ii = with_point (fun p -> p.ii <- ii)

let set_result ?mii ?ii ?clusters ?rounds ?spilled ?requirement ?maxlive ?spill_full
    ?spill_incremental () =
  with_point (fun p ->
      Option.iter (fun v -> p.mii <- v) mii;
      Option.iter (fun v -> p.ii <- v) ii;
      Option.iter (fun v -> p.clusters <- v) clusters;
      Option.iter (fun v -> p.rounds <- v) rounds;
      Option.iter (fun v -> p.spilled <- v) spilled;
      Option.iter (fun v -> p.requirement <- v) requirement;
      Option.iter (fun v -> p.maxlive <- v) maxlive;
      Option.iter (fun v -> p.spill_full <- v) spill_full;
      Option.iter (fun v -> p.spill_incremental <- v) spill_incremental)

let set_error category = with_point (fun p -> p.error <- Some category)
let note_stage name seconds = with_point (fun p -> p.stages <- (name, seconds) :: p.stages)

let note_cache ~hit =
  with_point (fun p ->
      if hit then p.cache_hits <- p.cache_hits + 1
      else p.cache_misses <- p.cache_misses + 1)

let note_disk ~hit =
  with_point (fun p ->
      if hit then p.disk_hits <- p.disk_hits + 1
      else p.disk_misses <- p.disk_misses + 1)

let shard_events s =
  let len = Array.length s.ring in
  if len = 0 then []
  else begin
    let n = min s.emitted len in
    let first = s.emitted - n in
    List.init n (fun i -> s.ring.((first + i) mod len))
  end

(* Shards sort by (domain id, first timestamp): ids repeat across pool
   generations (every pool numbers its workers 1..n-1), and a stable
   chronological order within one id keeps per-track event streams
   monotonic for trace viewers. *)
let events () =
  all_shards ()
  |> List.map (fun s -> (s, shard_events s))
  |> List.filter (fun (_, evs) -> evs <> [])
  |> List.sort (fun (a, ae) (b, be) ->
         match compare a.id b.id with
         | 0 -> Int64.compare (List.hd ae).ts_ns (List.hd be).ts_ns
         | c -> c)
  |> List.concat_map snd

let dropped () =
  List.fold_left
    (fun acc s -> acc + max 0 (s.emitted - Array.length s.ring))
    0 (all_shards ())

let reset () =
  List.iter
    (fun s ->
      s.ring <- [||];
      s.emitted <- 0)
    (all_shards ())

let to_chrome () =
  let evs = events () in
  let t0 =
    List.fold_left
      (fun acc e -> if Int64.compare e.ts_ns acc < 0 then e.ts_ns else acc)
      (match evs with [] -> 0L | e :: _ -> e.ts_ns)
      evs
  in
  let tids =
    List.sort_uniq compare (List.map (fun e -> e.domain) evs)
  in
  let thread_meta tid =
    Json.Obj
      [
        ("name", Json.String "thread_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("name", Json.String (Printf.sprintf "domain-%d" tid)) ]);
      ]
  in
  let event_json (e : event) =
    let args =
      (if e.loop = "" then [] else [ ("loop", Json.String e.loop) ])
      @ (if e.config = "" then [] else [ ("config", Json.String e.config) ])
      @ if e.ii < 0 then [] else [ ("ii", Json.Int e.ii) ]
    in
    Json.Obj
      ([
         ("name", Json.String e.name);
         ("cat", Json.String "stage");
         ("ph", Json.String (String.make 1 e.phase));
         ("pid", Json.Int 1);
         ("tid", Json.Int e.domain);
         ("ts", Json.Float (Int64.to_float (Int64.sub e.ts_ns t0) /. 1000.0));
       ]
      @ if args = [] then [] else [ ("args", Json.Obj args) ])
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List (List.map thread_meta tids @ List.map event_json evs) );
      ("displayTimeUnit", Json.String "ms");
    ]

let write_chrome ~path = Json.write_file ~prefix:".trace" ~path (Json.to_string (to_chrome ()) ^ "\n")
