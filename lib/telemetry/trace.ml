external now_ns : unit -> int64 = "ncdrf_monotonic_ns"

type event = {
  name : string;
  phase : char;
  ts_ns : int64;
  track : int;
  request : string;
  loop : string;
  config : string;
  ii : int;
}

type point = {
  loop : string;
  config : string;
  fp : string;
  mutable ii : int;
  mutable mii : int;
  mutable clusters : int;
  mutable rounds : int;
  mutable spilled : int;
  mutable requirement : int;
  mutable maxlive : int;
  mutable spill_full : int;
  mutable spill_incremental : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable disk_hits : int;
  mutable disk_misses : int;
  mutable stages : (string * float) list;
  mutable error : string option;
}

(* One shard per (domain, thread).  The ring is lazily grown up to the
   capacity, then wraps (oldest events overwritten); [emitted] is the
   lifetime event count, so [emitted - Array.length ring] events have
   been dropped once the ring is saturated.  A shard is only ever
   written by its owning thread; readers run after workers and
   connection handlers have quiesced. *)
type shard = {
  mutable track : int;
  mutable ring : event array;
  mutable emitted : int;
  mutable ctx : point option;
  mutable request : string;
}

let events_on = Atomic.make false
let context_demanded = Atomic.make false
let ring_capacity = Atomic.make 65536

(* The registry is keyed by (domain id, thread id), the same composite
   key Ncdrf_error.Deadline uses: connection-handler systhreads in the
   serving daemon all run on domain 0 and would trample a Domain.DLS
   slot, while pool workers are separate domains — the composite key
   isolates both.  Keys are never reused (domain and thread ids are
   monotonic), so a shard, once registered, is owned by exactly one
   thread forever. *)
let registry_lock = Mutex.create ()
let table : (int * int, shard) Hashtbl.t = Hashtbl.create 16
let shards : shard list ref = ref []

(* Track assignment: the first thread of a domain gets the domain id
   (so batch runs keep their historical domain-numbered tracks, and
   pool workers overwrite theirs with the slot id via [set_track]);
   additional systhreads on an already-tracked domain — the daemon's
   connection handlers — get tracks from [aux_track_base] up, in
   registration order. *)
let aux_track_base = 1000
let domain_tracked : (int, unit) Hashtbl.t = Hashtbl.create 16
let next_aux_track = ref aux_track_base

let key () = ((Domain.self () :> int), Thread.id (Thread.self ()))

let dummy_event =
  { name = ""; phase = '?'; ts_ns = 0L; track = 0; request = ""; loop = ""; config = "";
    ii = -1 }

let my () =
  let (dom, _) as k = key () in
  Mutex.lock registry_lock;
  let s =
    match Hashtbl.find_opt table k with
    | Some s -> s
    | None ->
      let track =
        if Hashtbl.mem domain_tracked dom then begin
          let t = !next_aux_track in
          incr next_aux_track;
          t
        end
        else begin
          Hashtbl.add domain_tracked dom ();
          dom
        end
      in
      let s = { track; ring = [||]; emitted = 0; ctx = None; request = "" } in
      Hashtbl.add table k s;
      shards := s :: !shards;
      s
  in
  Mutex.unlock registry_lock;
  s

let enable b = Atomic.set events_on b
let enabled () = Atomic.get events_on
let require_context b = Atomic.set context_demanded b
let active () = Atomic.get events_on || Atomic.get context_demanded
let set_track id = (my ()).track <- id
let set_domain_id = set_track
let set_ring_capacity n = Atomic.set ring_capacity (max 1 n)

let all_shards () =
  Mutex.lock registry_lock;
  let l = !shards in
  Mutex.unlock registry_lock;
  l

(* ------------------------------------------------------------------ *)
(* Request scope                                                       *)
(* ------------------------------------------------------------------ *)

(* The ambient request id is installed unconditionally (not gated on
   [active]): it costs one registry lookup at scope entry, is only
   entered by the serving daemon, and the id must be visible to the
   span recorder even when the event trace itself is off. *)
let with_request ~id f =
  let s = my () in
  let saved = s.request in
  s.request <- id;
  Fun.protect ~finally:(fun () -> s.request <- saved) f

(* Read-only: never registers a shard, so probes from layers that are
   armed independently of the trace (span accumulation, the ledger)
   do not grow the registry. *)
let current_request () =
  let k = key () in
  Mutex.lock registry_lock;
  let r =
    match Hashtbl.find_opt table k with Some s -> s.request | None -> ""
  in
  Mutex.unlock registry_lock;
  r

let inherit_request () =
  match current_request () with
  | "" -> fun f -> f ()
  | id -> fun f -> with_request ~id f

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

let emit s ev =
  let cap = Atomic.get ring_capacity in
  let len = Array.length s.ring in
  (if len < cap && s.emitted >= len then begin
     (* amortized doubling toward the capacity; events seen so far are
        exactly ring[0..len-1] in emission order, so a blit preserves
        them in place *)
     let len' = min cap (max 1024 (2 * len)) in
     let ring' = Array.make len' dummy_event in
     Array.blit s.ring 0 ring' 0 len;
     s.ring <- ring'
   end);
  s.ring.(s.emitted mod Array.length s.ring) <- ev;
  s.emitted <- s.emitted + 1

let event_of s ~name ~phase =
  let loop, config, ii =
    match s.ctx with
    | Some p -> (p.loop, p.config, p.ii)
    | None -> ("", "", -1)
  in
  { name; phase; ts_ns = now_ns (); track = s.track; request = s.request; loop;
    config; ii }

let begin_span name =
  if Atomic.get events_on then begin
    let s = my () in
    emit s (event_of s ~name ~phase:'B')
  end

let end_span name =
  if Atomic.get events_on then begin
    let s = my () in
    emit s (event_of s ~name ~phase:'E')
  end

let instant name =
  if Atomic.get events_on then begin
    let s = my () in
    emit s (event_of s ~name ~phase:'i')
  end

let with_context ~loop ~config ~fp f =
  if not (active ()) then f ()
  else begin
    let s = my () in
    let saved = s.ctx in
    s.ctx <-
      Some
        {
          loop;
          config;
          fp;
          ii = -1;
          mii = -1;
          clusters = -1;
          rounds = -1;
          spilled = -1;
          requirement = -1;
          maxlive = -1;
          spill_full = -1;
          spill_incremental = -1;
          cache_hits = 0;
          cache_misses = 0;
          disk_hits = 0;
          disk_misses = 0;
          stages = [];
          error = None;
        };
    Fun.protect ~finally:(fun () -> s.ctx <- saved) f
  end

let current () = if active () then (my ()).ctx else None

let with_point f =
  if active () then
    match (my ()).ctx with
    | Some p -> f p
    | None -> ()

let set_ii ii = with_point (fun p -> p.ii <- ii)

let set_result ?mii ?ii ?clusters ?rounds ?spilled ?requirement ?maxlive ?spill_full
    ?spill_incremental () =
  with_point (fun p ->
      Option.iter (fun v -> p.mii <- v) mii;
      Option.iter (fun v -> p.ii <- v) ii;
      Option.iter (fun v -> p.clusters <- v) clusters;
      Option.iter (fun v -> p.rounds <- v) rounds;
      Option.iter (fun v -> p.spilled <- v) spilled;
      Option.iter (fun v -> p.requirement <- v) requirement;
      Option.iter (fun v -> p.maxlive <- v) maxlive;
      Option.iter (fun v -> p.spill_full <- v) spill_full;
      Option.iter (fun v -> p.spill_incremental <- v) spill_incremental)

let set_error category = with_point (fun p -> p.error <- Some category)
let note_stage name seconds = with_point (fun p -> p.stages <- (name, seconds) :: p.stages)

let note_cache ~hit =
  with_point (fun p ->
      if hit then p.cache_hits <- p.cache_hits + 1
      else p.cache_misses <- p.cache_misses + 1)

let note_disk ~hit =
  with_point (fun p ->
      if hit then p.disk_hits <- p.disk_hits + 1
      else p.disk_misses <- p.disk_misses + 1)

let shard_events s =
  let len = Array.length s.ring in
  if len = 0 then []
  else begin
    let n = min s.emitted len in
    let first = s.emitted - n in
    List.init n (fun i -> s.ring.((first + i) mod len))
  end

(* Shards sort by (track id, first timestamp): track ids repeat across
   pool generations (every pool numbers its workers 1..n-1), and a
   stable chronological order within one track keeps per-track event
   streams monotonic for trace viewers. *)
let events () =
  all_shards ()
  |> List.map (fun s -> (s, shard_events s))
  |> List.filter (fun (_, evs) -> evs <> [])
  |> List.sort (fun (a, ae) (b, be) ->
         match compare a.track b.track with
         | 0 -> Int64.compare (List.hd ae).ts_ns (List.hd be).ts_ns
         | c -> c)
  |> List.concat_map snd

let dropped () =
  List.fold_left
    (fun acc s -> acc + max 0 (s.emitted - Array.length s.ring))
    0 (all_shards ())

let reset () =
  List.iter
    (fun s ->
      s.ring <- [||];
      s.emitted <- 0)
    (all_shards ())

let to_chrome () =
  let evs = events () in
  let t0 =
    List.fold_left
      (fun acc e -> if Int64.compare e.ts_ns acc < 0 then e.ts_ns else acc)
      (match evs with [] -> 0L | e :: _ -> e.ts_ns)
      evs
  in
  let tids =
    List.sort_uniq compare (List.map (fun (e : event) -> e.track) evs)
  in
  let track_name tid =
    if tid >= aux_track_base then Printf.sprintf "conn-%d" (tid - aux_track_base)
    else Printf.sprintf "domain-%d" tid
  in
  let thread_meta tid =
    Json.Obj
      [
        ("name", Json.String "thread_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("name", Json.String (track_name tid)) ]);
      ]
  in
  let event_json (e : event) =
    let args =
      (if e.request = "" then [] else [ ("request", Json.String e.request) ])
      @ (if e.loop = "" then [] else [ ("loop", Json.String e.loop) ])
      @ (if e.config = "" then [] else [ ("config", Json.String e.config) ])
      @ if e.ii < 0 then [] else [ ("ii", Json.Int e.ii) ]
    in
    Json.Obj
      ([
         ("name", Json.String e.name);
         ("cat", Json.String "stage");
         ("ph", Json.String (String.make 1 e.phase));
         ("pid", Json.Int 1);
         ("tid", Json.Int e.track);
         ("ts", Json.Float (Int64.to_float (Int64.sub e.ts_ns t0) /. 1000.0));
       ]
      @ if args = [] then [] else [ ("args", Json.Obj args) ])
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List (List.map thread_meta tids @ List.map event_json evs) );
      ("displayTimeUnit", Json.String "ms");
    ]

let write_chrome ~path = Json.write_file ~prefix:".trace" ~path (Json.to_string (to_chrome ()) ^ "\n")
