(** Event-level tracing: per-(domain, thread) ring buffers of
    timestamped begin/end events plus an ambient per-point context,
    exported as Chrome trace-event JSON (chrome://tracing, Perfetto).

    Two independent demands switch the layer on:
    {ul
    {- {!enable} arms event recording ([--trace]);}
    {- {!require_context} arms only the ambient context, without
       buffering events — the run ledger needs the per-point context
       but no event stream ([--ledger]).}}
    With both off every probe is one atomic load, and driver outputs
    are byte-identical to a build without the probes.

    Each (domain, thread) pair owns one shard (ring buffer + context
    slot + ambient request id), created on first use and registered
    under the composite key [(Domain.self, Thread.id)] — the same key
    [Ncdrf_error.Deadline] uses — so the serving daemon's concurrent
    connection-handler systhreads (all on domain 0) each record into
    their own shard instead of trampling a shared domain slot.
    Recording needs no lock after the shard exists.  Readers
    ({!events}, {!write_chrome}) must run after worker domains and
    handler threads have quiesced — in the drivers, after the pool is
    done; in the daemon, at drain.

    {2 Chrome-trace track scheme}

    Every shard renders as one [tid] ("track") under a single [pid]:
    {ul
    {- the {e first} thread registered on a domain takes the domain id
       as its track — batch runs therefore keep their historical
       [domain-0], [domain-1], … tracks, and pool workers overwrite
       theirs with the worker slot id via {!set_track} so traces show
       one track per pool slot across pool generations;}
    {- every {e additional} systhread on an already-tracked domain —
       the daemon's connection handlers — takes the next track from
       1000 up ([conn-0], [conn-1], …) in registration order.}}
    Request attribution is {e not} encoded in the track: a pool worker
    serves many requests on one track, so the request id rides on each
    event as an explicit [request] arg (and the ["request"] key in the
    exported [args] object), letting viewers and {!Merge.merge_traces}
    group events per request across tracks. *)

(** {1 Arming} *)

(** Turn event buffering on or off. *)
val enable : bool -> unit

val enabled : unit -> bool

(** Demand the ambient context even when event buffering is off. *)
val require_context : bool -> unit

(** True when events or the context are demanded — gate for any work
    done only to feed the trace (e.g. computing MaxLive). *)
val active : unit -> bool

(** Cap each shard's ring buffer (default 65536 events); once full,
    the oldest events of that shard are overwritten. *)
val set_ring_capacity : int -> unit

(** Give the calling thread's shard a stable track id.  Pool workers
    call this with their worker slot index so traces get one track per
    pool slot instead of one per spawned domain. *)
val set_track : int -> unit

(** Deprecated spelling of {!set_track}, kept for callers that predate
    the (domain, thread) re-keying. *)
val set_domain_id : int -> unit

(** {1 Request scope}

    The serving daemon runs each request under [with_request ~id], and
    the id is stamped onto every trace event, span sample
    ({!Telemetry.time}), and ledger record produced in that dynamic
    extent.  Pool workers do not inherit it automatically (they are
    different threads); [Ncdrf_parallel.Pool] captures the submitting
    thread's id with {!inherit_request} and re-installs it around each
    job. *)

(** [with_request ~id f] runs [f] with [id] as the calling thread's
    ambient request id (saving and restoring any outer id).  Installed
    unconditionally — the id must be visible to span and ledger
    recording even when event buffering is off. *)
val with_request : id:string -> (unit -> 'a) -> 'a

(** The calling thread's ambient request id, [""] when outside any
    {!with_request}.  Never registers a shard. *)
val current_request : unit -> string

(** [inherit_request ()] captures the calling thread's ambient request
    id and returns a wrapper that re-installs it on whatever thread
    runs the wrapped thunk; the identity wrapper when there is no
    ambient request. *)
val inherit_request : unit -> (unit -> 'a) -> 'a

(** {1 Ambient context} *)

(** Mutable per-point context: results are filled in by the pipeline
    stages as they run, then harvested into a ledger record. *)
type point = {
  loop : string;
  config : string;  (** config display name *)
  fp : string;  (** short hex digest of the config fingerprint *)
  mutable ii : int;  (** chosen II; -1 = unknown *)
  mutable mii : int;
  mutable clusters : int;  (** machine cluster count; -1 = unknown *)
  mutable rounds : int;  (** spill rounds; -1 = no spill pass *)
  mutable spilled : int;
  mutable requirement : int;
  mutable maxlive : int;
  mutable spill_full : int;
      (** spill rounds scheduled by a full II search; -1 = no spill pass *)
  mutable spill_incremental : int;
      (** spill rounds that reused the previous kernel incrementally;
          -1 = no spill pass *)
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable disk_hits : int;  (** on-disk store lookups that decoded *)
  mutable disk_misses : int;
  mutable stages : (string * float) list;  (** seconds, latest first *)
  mutable error : string option;  (** error category name *)
}

(** [with_context ~loop ~config ~fp f] runs [f] with a fresh point
    context installed on the calling thread (saving and restoring any
    outer context).  A no-op pass-through when {!active} is false. *)
val with_context : loop:string -> config:string -> fp:string -> (unit -> 'a) -> 'a

(** The calling thread's current point, if inside {!with_context}. *)
val current : unit -> point option

val set_ii : int -> unit

val set_result :
  ?mii:int ->
  ?ii:int ->
  ?clusters:int ->
  ?rounds:int ->
  ?spilled:int ->
  ?requirement:int ->
  ?maxlive:int ->
  ?spill_full:int ->
  ?spill_incremental:int ->
  unit ->
  unit

val set_error : string -> unit

(** [note_stage name seconds] appends one stage duration to the current
    point ({!Telemetry.time} calls this automatically). *)
val note_stage : string -> float -> unit

(** Attribute one compile-cache lookup to the current point. *)
val note_cache : hit:bool -> unit

(** Attribute one on-disk store lookup to the current point. *)
val note_disk : hit:bool -> unit

(** {1 Events} *)

(** One buffered event.  [phase] is the Chrome phase: 'B' begin,
    'E' end, 'i' instant.  [track] is the Chrome [tid] per the track
    scheme above; [request] is the ambient request id at emission time
    ([""] outside any request). *)
type event = {
  name : string;
  phase : char;
  ts_ns : int64;
  track : int;
  request : string;
  loop : string;
  config : string;
  ii : int;
}

val begin_span : string -> unit
val end_span : string -> unit
val instant : string -> unit

(** All buffered events: shards ordered by (track id, first
    timestamp), each shard's events in emission order. *)
val events : unit -> event list

(** Events lost to ring-buffer wrap-around, across all shards. *)
val dropped : unit -> int

(** Drop all buffered events (shards stay registered; the enabled
    flags are untouched).  Not safe concurrently with recording. *)
val reset : unit -> unit

(** {1 Export} *)

(** The buffered events as a Chrome trace-event document: one [pid],
    one [tid] per track (see the track scheme above) with a
    [thread_name] metadata record, timestamps in microseconds relative
    to the earliest event, and [args] carrying the request id and the
    ambient loop/config/II. *)
val to_chrome : unit -> Json.t

(** Write {!to_chrome} atomically ({!Json.write_file}). *)
val write_chrome : path:string -> unit
