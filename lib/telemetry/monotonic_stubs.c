/* Monotonic clock for telemetry spans.  CLOCK_MONOTONIC is immune to
   wall-clock adjustments, which matters for long benchmark runs. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value ncdrf_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec);
}
