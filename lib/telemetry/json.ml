type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_str f =
  if not (Float.is_finite f) then "null" (* NaN/inf are not JSON *)
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let to_string t =
  let buf = Buffer.create 256 in
  let pad n = Buffer.add_string buf (String.make n ' ') in
  let rec go indent = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_str f)
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          go (indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          go (indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

let to_compact t =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_str f)
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          go item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          go v)
        fields;
      Buffer.add_char buf '}'
  in
  go t;
  Buffer.contents buf

exception Fail of string * int

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | Some x -> fail (Printf.sprintf "expected '%c', got '%c'" c x)
    | None -> fail (Printf.sprintf "expected '%c', got end of input" c)
  in
  let literal word v =
    let len = String.length word in
    if !pos + len <= n && String.sub s !pos len = word then begin
      pos := !pos + len;
      v
    end
    else fail "invalid literal"
  in
  (* \u escapes are decoded to UTF-8; surrogate pairs are kept as two
     3-byte sequences (fine for round-tripping our own output, which
     only ever emits \u00xx control escapes). *)
  let add_utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | 'r' -> Buffer.add_char buf '\r'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           (match int_of_string_opt ("0x" ^ hex) with
           | Some code -> add_utf8 buf code
           | None -> fail "bad \\u escape")
         | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let numeric c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && numeric s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else begin
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        (* out of int range; keep the value rather than the digits *)
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number")
    end
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        fields []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (msg, p) -> Error (Printf.sprintf "%s at byte %d" msg p)

(* Atomic publication: write to a temp file in the destination
   directory, fsync it, then rename (and fsync the directory).  The
   temp file is unlinked on every failure path — a failed write or
   rename must not leak [prefix*.tmp] litter next to the destination.
   The fsyncs make the publish crash-safe, not just atomic: a daemon
   killed mid-publish (or a power cut right after the rename) can
   never leave a truncated or empty file under the destination name,
   because the data hits disk before the name moves and the name move
   hits disk before we report success. *)
let write_file ?(prefix = ".ncdrf") ~path content =
  let dir = Filename.dirname path in
  let tmp =
    try Filename.temp_file ~temp_dir:dir prefix ".tmp"
    with Sys_error msg ->
      raise (Sys_error (Printf.sprintf "cannot write %s: %s" path msg))
  in
  let committed = ref false in
  Fun.protect
    ~finally:(fun () ->
      if not !committed then try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let oc = open_out tmp in
      (try
         output_string oc content;
         flush oc;
         Unix.fsync (Unix.descr_of_out_channel oc)
       with e ->
         close_out_noerr oc;
         raise e);
      close_out oc;
      Sys.rename tmp path;
      (* Persist the rename itself.  Some filesystems cannot fsync a
         directory fd (and O_RDONLY on a directory is all POSIX
         guarantees); a failure here degrades durability, not
         atomicity, so it is deliberately non-fatal. *)
      (try
         let dfd = Unix.openfile dir [ Unix.O_RDONLY ] 0 in
         Fun.protect
           ~finally:(fun () -> try Unix.close dfd with Unix.Unix_error _ -> ())
           (fun () -> Unix.fsync dfd)
       with Unix.Unix_error _ | Sys_error _ -> ());
      committed := true)
