(** Merging shard outputs back into one run.

    A sharded suite ([--shard i/N]) produces per-shard metrics JSONs and
    per-shard ledgers.  This module unions them: counters and span
    counts sum, span maxima take the max, percentiles merge by
    count-weighted average (an approximation — the raw samples are not
    in the files — but percentiles are timing fields and excluded from
    byte-comparability anyway), ledgers concatenate and re-sort by
    record identity.

    Because per-point work is self-contained (loop digests are unique,
    so no artifact is shared across loops), every non-timing field of a
    merged N-shard run equals the unsharded run's.  {!strip_timing} /
    {!strip_record_timing} null the timing fields so the two can be
    compared byte-for-byte; merging a {e single} input is the identity
    modulo re-rendering, which normalizes an unsharded file for exactly
    that comparison. *)

(** [merge_metrics jsons] unions metrics documents that share a
    ["schema"] field — suite ([ncdrf-suite-metrics/1]), bench
    ([ncdrf-bench-metrics/1], experiments merged by name), or serve
    ([ncdrf-serve-metrics/1]).  Errors on an empty list, mixed or
    unknown schemas. *)
val merge_metrics : Json.t list -> (Json.t, string) result

(** [merge_traces jsons] merges Chrome trace-event documents
    ({!Trace.to_chrome} output): each input's events are re-namespaced
    onto their own [pid] (input order, 1-based) so track ids from
    independent processes cannot collide, metadata records (thread
    names) come first in input order, and timed events follow in one
    stream stable-sorted by timestamp.  Per-event request-id args pass
    through unchanged.  Errors on an empty list or an input without a
    ["traceEvents"] list. *)
val merge_traces : Json.t list -> (Json.t, string) result

(** Replace every timing value (wall clocks, span durations/percentiles,
    rates, uptimes) with [null], recursively, along with the few
    partition-dependent counters ([alloc.pairs], [alloc.table_reuse] —
    the conflict-table memo shares tables across loops whose lifetime
    sets coincide, so its hit counts depend on which loops cohabit a
    process).  All other counts and counters are untouched. *)
val strip_timing : Json.t -> Json.t

(** Concatenate shard ledgers and re-sort by record identity, yielding
    the same record order an unsharded run writes. *)
val merge_ledgers : Ledger.record list list -> Ledger.record list

(** Zero a record's duration fields ([total_ns], per-stage
    nanoseconds); identity and every count survive. *)
val strip_record_timing : Ledger.record -> Ledger.record
