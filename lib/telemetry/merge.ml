let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Field helpers *)

let fields_of = function Json.Obj f -> f | _ -> []
let field name fields = List.assoc_opt name fields

let num = function
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let int_field name fields =
  match field name fields with Some (Json.Int i) -> Some i | _ -> None

let sum_floats name objs =
  List.fold_left
    (fun acc o -> acc +. Option.value ~default:0.0 (num (field name (fields_of o))))
    0.0 objs

let sum_ints name objs =
  List.fold_left
    (fun acc o -> acc + Option.value ~default:0 (int_field name (fields_of o)))
    0 objs

let max_int_field name objs =
  List.fold_left
    (fun acc o -> max acc (Option.value ~default:0 (int_field name (fields_of o))))
    0 objs

let rate ~count ~seconds =
  if seconds > 0.0 then Json.Float (float_of_int count /. seconds) else Json.Null

(* ------------------------------------------------------------------ *)
(* Span merge: {total_s, count, max_s, [p50_s, p90_s, p99_s]}.
   Totals and counts sum, max takes the max; percentiles merge by
   count-weighted average — the files do not carry raw samples, and
   percentiles are timing fields outside the byte-comparability
   contract, so the approximation is explicit and acceptable. *)

let merge_span_objs objs =
  let total_s = sum_floats "total_s" objs in
  let count = sum_ints "count" objs in
  let max_s =
    List.fold_left
      (fun acc o -> Float.max acc (Option.value ~default:0.0 (num (field "max_s" (fields_of o)))))
      0.0 objs
  in
  let weighted name =
    let wsum, csum =
      List.fold_left
        (fun (ws, cs) o ->
          let f = fields_of o in
          match (num (field name f), int_field "count" f) with
          | Some p, Some c when c > 0 -> (ws +. (p *. float_of_int c), cs + c)
          | _ -> (ws, cs))
        (0.0, 0) objs
    in
    if csum > 0 then Some (wsum /. float_of_int csum) else None
  in
  let dist =
    match weighted "p50_s" with
    | None -> []
    | Some p50 ->
      [
        ("p50_s", Json.Float p50);
        ("p90_s", Json.Float (Option.value ~default:0.0 (weighted "p90_s")));
        ("p99_s", Json.Float (Option.value ~default:0.0 (weighted "p99_s")));
      ]
  in
  Json.Obj
    ([ ("total_s", Json.Float total_s); ("count", Json.Int count);
       ("max_s", Json.Float max_s) ]
    @ dist)

(* Union of keyed sub-objects ({"spans": {...}}, {"stages": {...}}),
   name-sorted like the writers emit them. *)
let union_names objs =
  List.concat_map (fun o -> List.map fst (fields_of o)) objs
  |> List.sort_uniq String.compare

let merge_keyed merge_one objs =
  Json.Obj
    (List.map
       (fun name ->
         (name, merge_one (List.filter_map (fun o -> field name (fields_of o)) objs)))
       (union_names objs))

let merge_counter_objs objs =
  merge_keyed
    (fun vals ->
      Json.Int
        (List.fold_left
           (fun acc v -> match v with Json.Int i -> acc + i | _ -> acc)
           0 vals))
    objs

let merge_telemetry objs =
  let part name = List.filter_map (fun o -> field name (fields_of o)) objs in
  Json.Obj
    [
      ("spans", merge_keyed merge_span_objs (part "spans"));
      ("counters", merge_counter_objs (part "counters"));
    ]

let merged_counter name objs =
  List.fold_left
    (fun acc o ->
      match field "counters" (fields_of o) with
      | Some (Json.Obj cs) -> (
        match field name cs with Some (Json.Int i) -> acc + i | _ -> acc)
      | _ -> acc)
    0 objs

(* Failures blocks are lists of failure records; a merged run saw the
   union of its shards' failures. *)
let merge_failures objs =
  let entries =
    List.concat_map
      (fun o ->
        match field "failures" (fields_of o) with
        | Some (Json.List l) -> l
        | _ -> [])
      objs
  in
  if entries = [] then [] else [ ("failures", Json.List entries) ]

(* ------------------------------------------------------------------ *)
(* Per-schema document merge.  Field order mirrors the writers, so a
   single-input merge re-renders an unsharded file into the same shape
   a multi-input merge produces. *)

let merge_suite objs =
  let telemetry = List.filter_map (fun o -> field "telemetry" (fields_of o)) objs in
  let wall = sum_floats "wall_s" objs in
  let loops = merged_counter "pipeline.loops" telemetry in
  Json.Obj
    ([
       ("schema", Json.String "ncdrf-suite-metrics/1");
       ("jobs", Json.Int (max_int_field "jobs" objs));
       ("suite_size", Json.Int (max_int_field "suite_size" objs));
       ("wall_s", Json.Float wall);
       ("loops_per_sec", rate ~count:loops ~seconds:wall);
       ("telemetry", merge_telemetry telemetry);
     ]
    @ merge_failures objs)

let merge_experiments objs =
  let name_of o =
    match field "name" (fields_of o) with Some (Json.String s) -> s | _ -> ""
  in
  let all = List.concat_map (fun o ->
      match field "experiments" (fields_of o) with
      | Some (Json.List l) -> l
      | _ -> [])
      objs
  in
  let order =
    List.fold_left
      (fun acc e -> if List.mem (name_of e) acc then acc else acc @ [ name_of e ])
      [] all
  in
  let merge_one name =
    let parts = List.filter (fun e -> name_of e = name) all in
    let wall = sum_floats "wall_s" parts in
    let loops = sum_ints "loops" parts in
    let stages = List.filter_map (fun e -> field "stages" (fields_of e)) parts in
    let counters = List.filter_map (fun e -> field "counters" (fields_of e)) parts in
    let serial =
      if List.exists (fun e -> field "serial_wall_s" (fields_of e) <> None) parts
      then
        let s = sum_floats "serial_wall_s" parts in
        [
          ("serial_wall_s", Json.Float s);
          ("speedup_vs_serial", if wall > 0.0 then Json.Float (s /. wall) else Json.Null);
        ]
      else []
    in
    Json.Obj
      ([
         ("name", Json.String name);
         ("wall_s", Json.Float wall);
         ("loops", Json.Int loops);
         ("loops_per_sec", rate ~count:loops ~seconds:wall);
         ("stages", merge_keyed merge_span_objs stages);
         ("counters", merge_counter_objs counters);
       ]
      @ serial)
  in
  Json.List (List.map merge_one order)

let merge_bench objs =
  Json.Obj
    ([
       ("schema", Json.String "ncdrf-bench-metrics/1");
       ("jobs", Json.Int (max_int_field "jobs" objs));
       ("recommended_jobs", Json.Int (max_int_field "recommended_jobs" objs));
       ("suite_size", Json.Int (max_int_field "suite_size" objs));
       ("suite_seed", Json.Int (max_int_field "suite_seed" objs));
       ("total_wall_s", Json.Float (sum_floats "total_wall_s" objs));
       ("experiments", merge_experiments objs);
     ]
    @ merge_failures objs)

let merge_serve objs =
  let telemetry = List.filter_map (fun o -> field "telemetry" (fields_of o)) objs in
  (* Latency percentiles merge count-weighted, like span percentiles:
     the documents carry no raw samples. *)
  let latency =
    let parts = List.filter_map (fun o -> field "latency" (fields_of o)) objs in
    let count = sum_ints "count" parts in
    let weighted name =
      let wsum, csum =
        List.fold_left
          (fun (ws, cs) o ->
            let f = fields_of o in
            match (num (field name f), int_field "count" f) with
            | Some p, Some c when c > 0 -> (ws +. (p *. float_of_int c), cs + c)
            | _ -> (ws, cs))
          (0.0, 0) parts
      in
      if csum > 0 then wsum /. float_of_int csum else 0.0
    in
    Json.Obj
      [
        ("count", Json.Int count);
        ("p50_s", Json.Float (weighted "p50_s"));
        ("p90_s", Json.Float (weighted "p90_s"));
        ("p99_s", Json.Float (weighted "p99_s"));
      ]
  in
  Json.Obj
    [
      ("schema", Json.String "ncdrf-serve-metrics/1");
      ("jobs", Json.Int (max_int_field "jobs" objs));
      ("max_inflight", Json.Int (max_int_field "max_inflight" objs));
      ("uptime_s", Json.Float (sum_floats "uptime_s" objs));
      ("requests.served", Json.Int (sum_ints "requests.served" objs));
      ("requests.shed", Json.Int (sum_ints "requests.shed" objs));
      ("requests.inflight", Json.Int (sum_ints "requests.inflight" objs));
      ("requests.queued", Json.Int (sum_ints "requests.queued" objs));
      ( "requests.by_kind",
        merge_counter_objs
          (List.filter_map (fun o -> field "requests.by_kind" (fields_of o)) objs) );
      ("latency", latency);
      ( "errors",
        merge_counter_objs (List.filter_map (fun o -> field "errors" (fields_of o)) objs) );
      ("telemetry", merge_telemetry telemetry);
    ]

let schema_of json =
  match field "schema" (fields_of json) with
  | Some (Json.String s) -> Ok s
  | _ -> Error "metrics document has no \"schema\" field"

let merge_metrics jsons =
  match jsons with
  | [] -> Error "no metrics documents to merge"
  | first :: rest ->
    let* schema = schema_of first in
    let* () =
      List.fold_left
        (fun acc j ->
          let* () = acc in
          let* s = schema_of j in
          if String.equal s schema then Ok ()
          else Error (Printf.sprintf "mixed metrics schemas: %s vs %s" schema s))
        (Ok ()) rest
    in
    (match schema with
    | "ncdrf-suite-metrics/1" -> Ok (merge_suite jsons)
    | "ncdrf-bench-metrics/1" -> Ok (merge_bench jsons)
    | "ncdrf-serve-metrics/1" -> Ok (merge_serve jsons)
    | s -> Error (Printf.sprintf "unknown metrics schema %S" s))

(* ------------------------------------------------------------------ *)
(* Timing normalization *)

let timing_keys =
  [
    "wall_s";
    "total_wall_s";
    "serial_wall_s";
    "speedup_vs_serial";
    "loops_per_sec";
    "uptime_s";
    "total_s";
    "max_s";
    "p50_s";
    "p90_s";
    "p99_s";
  ]

(* Counters that measure cross-loop sharing inside one process: the
   conflict-table memo is keyed on (ii, lifetimes), which distinct loops
   can share, so its hit counts depend on which loops cohabit a process.
   Partition-dependent by design — normalized away with the timing
   fields, not summed. *)
let partition_keys = [ "alloc.pairs"; "alloc.table_reuse" ]

let rec strip_timing = function
  | Json.Obj fields ->
    Json.Obj
      (List.map
         (fun (k, v) ->
           if List.mem k timing_keys || List.mem k partition_keys then (k, Json.Null)
           else (k, strip_timing v))
         fields)
  | Json.List items -> Json.List (List.map strip_timing items)
  | other -> other

(* ------------------------------------------------------------------ *)
(* Traces *)

(* Merge Chrome trace-event documents ({!Trace.to_chrome} output, or
   anything with a "traceEvents" list).  Track ids collide across
   independent processes (every daemon numbers domain-0 as tid 0 and
   connection threads from 1000), so each input is re-namespaced onto
   its own pid (input order, 1-based) — viewers render one process lane
   per merged file, and (pid, tid) stays collision-free without
   rewriting tids.  Metadata records (ph "M", thread names) come first
   in input order; timed events follow, stable-sorted by "ts" so
   equal-timestamp events keep input order.  Request-id args pass
   through untouched — they are how cross-file per-request grouping
   survives the merge. *)
let merge_traces jsons =
  match jsons with
  | [] -> Error "no trace documents to merge"
  | _ ->
    let* all =
      List.fold_left
        (fun acc j ->
          let* acc = acc in
          match field "traceEvents" (fields_of j) with
          | Some (Json.List evs) -> Ok (evs :: acc)
          | _ -> Error "trace document has no \"traceEvents\" list")
        (Ok []) jsons
      |> Result.map List.rev
    in
    let renamespace pid ev =
      match ev with
      | Json.Obj fields ->
        Json.Obj
          (List.map (fun (k, v) -> if k = "pid" then (k, Json.Int pid) else (k, v)) fields)
      | other -> other
    in
    let all = List.mapi (fun i evs -> List.map (renamespace (i + 1)) evs) all in
    let is_meta ev =
      match field "ph" (fields_of ev) with Some (Json.String "M") -> true | _ -> false
    in
    let meta = List.concat_map (List.filter is_meta) all in
    let timed = List.concat_map (List.filter (fun e -> not (is_meta e))) all in
    let ts ev = Option.value ~default:0.0 (num (field "ts" (fields_of ev))) in
    let timed = List.stable_sort (fun a b -> Float.compare (ts a) (ts b)) timed in
    Ok
      (Json.Obj
         [
           ("traceEvents", Json.List (meta @ timed));
           ("displayTimeUnit", Json.String "ms");
         ])

(* ------------------------------------------------------------------ *)
(* Ledgers *)

let merge_ledgers shards =
  List.stable_sort Ledger.compare_records (List.concat shards)

let strip_record_timing (r : Ledger.record) =
  { r with Ledger.total_ns = 0; stages = List.map (fun (k, _) -> (k, 0)) r.Ledger.stages }
