(** Per-point run ledger: one JSONL record per (config, loop) point a
    driver executes — stage durations, cache traffic, chosen II vs MII,
    spill rounds, MaxLive, capacity, and the error category of failed
    points.  Collected in memory while armed; {!write} publishes the
    whole run atomically, sorted by record identity so the file is
    independent of completion order (--jobs N equals --jobs 1). *)

type record = {
  label : string;  (** experiment name ("fig8", "suite", ...) *)
  request : string;
      (** daemon request id that produced the point ([""] in batch
          runs; rendered in JSON only when non-empty, so batch ledgers
          keep their pre-request byte layout) *)
  loop : string;
  config : string;  (** config display name *)
  fp : string;  (** short hex digest of the config fingerprint *)
  models : string;  (** models measured, "+"-joined *)
  capacity : int option;  (** register capacity; [None] = unconstrained *)
  clusters : int option;  (** machine cluster count *)
  mii : int option;
  ii : int option;
  rounds : int option;  (** spill rounds *)
  spilled : int option;
  requirement : int option;
  maxlive : int option;
  spill_full : int option;
      (** spill rounds scheduled by a full II search; [None] when the
          point never entered the spill loop *)
  spill_incremental : int option;
      (** spill rounds that reused the previous kernel incrementally *)
  cache_hits : int;
  cache_misses : int;
  disk_hits : int;  (** on-disk store lookups that decoded (0 pre-disk-tier) *)
  disk_misses : int;
  stages : (string * int) list;  (** stage name -> nanoseconds, name-sorted *)
  total_ns : int;  (** wall time of the whole point *)
  ok : bool;
  error : string option;  (** error category name when [not ok] *)
}

(** Arming the ledger also demands the trace context
    ({!Trace.require_context}).  Off by default. *)
val enable : bool -> unit

val enabled : unit -> bool

(** Label stamped on subsequently added records (the experiment name).
    Set it before the points run, not concurrently with them. *)
val set_label : string -> unit

val label : unit -> string

(** Append one record (dropped when disarmed).  Thread-safe. *)
val add : record -> unit

(** All records in insertion order. *)
val records : unit -> record list

(** Drop all records (the armed flag and label are untouched). *)
val reset : unit -> unit

(** Sorted by identity (label, request, config, models, capacity,
    loop, ...); durations and insertion order do not affect it. *)
val compare_records : record -> record -> int

val to_json : record -> Json.t

(** Parse one JSONL line back into a record. *)
val parse_line : string -> (record, string) result

(** Render records as JSONL in the given order (one compact line per
    record, no sorting). *)
val to_jsonl : record list -> string

(** Write every record as identity-sorted JSONL, atomically. *)
val write : path:string -> unit

(** Read a ledger file written by {!write}; blank lines are skipped. *)
val load : path:string -> (record list, string) result
