(** Minimal JSON tree, enough for metrics, traces and ledgers.  No
    external dependency; strings are escaped per RFC 8259. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Render with stable field order and 2-space indentation. *)
val to_string : t -> string

(** Render on one line with no whitespace — one JSONL record. *)
val to_compact : t -> string

(** Parse a complete JSON document.  Integers without a fractional part
    or exponent parse as [Int]; numbers out of [int] range fall back to
    [Float].  [Error] carries a message with a byte offset. *)
val of_string : string -> (t, string) result

(** [write_file ~path content] publishes [content] atomically and
    crash-safely: it is written to a fresh [prefix*.tmp] file in
    [path]'s directory, [fsync]ed, renamed over [path], and the
    directory is [fsync]ed so the rename itself is durable — a process
    killed mid-publish can never leave a truncated file under [path].
    The temp file is unlinked on any failure (write, close or rename),
    so no litter survives an error. *)
val write_file : ?prefix:string -> path:string -> string -> unit
