(** Observability for the experiment pipeline: monotonic timers, named
    counters, per-stage spans and a JSON metrics emitter.

    Counters live in one global, domain-safe registry (atomic cells);
    span accumulation is sharded per (domain, thread) — like the
    {!Trace} rings and [Ncdrf_error.Deadline] tokens — and merged at
    read time, so neither pool workers nor the daemon's concurrent
    connection-handler systhreads serialize or trample each other.
    Within a shard, samples are keyed by (ambient request id, span
    name); the classic per-name views ({!spans}, {!distributions},
    {!to_json}) collapse requests, while {!request_spans} keeps them
    apart.  Readers must run after worker domains and handler threads
    have quiesced.  Recording is gated on {!enable} (default off) so
    the hot pipeline pays one atomic load per stage when telemetry is
    unused.

    {!time} also feeds the event trace and the per-point run ledger
    when those are armed — see {!Trace} and {!Ledger}. *)

module Json = Json

(** Monotonic time in seconds since an arbitrary origin.  Differences
    are meaningful; absolute values are not. *)
val now : unit -> float

(** Monotonic time in integer nanoseconds. *)
val now_ns : unit -> int64

(** Turn recording on or off.  Disabled spans and counters cost one
    atomic load; {!time} still runs its thunk. *)
val enable : bool -> unit

val enabled : unit -> bool

(** [incr name] bumps counter [name] by [by] (default 1), creating it
    at zero on first use.  Domain-safe. *)
val incr : ?by:int -> string -> unit

(** Current value of a counter; 0 if never incremented. *)
val counter : string -> int

(** Accumulated statistics of one named span. *)
type span = {
  total_s : float;  (** summed duration across all records *)
  count : int;  (** number of records *)
  max_s : float;  (** longest single record *)
}

(** Percentiles over a span's raw samples (nearest-rank). *)
type distribution = {
  p50_s : float;
  p90_s : float;
  p99_s : float;
}

(** [time name f] runs [f ()] and, when enabled, adds its duration to
    span [name].  Exceptions propagate; the span still records.  Also
    notes the duration on the ambient {!Trace} point and emits
    begin/end trace events when those layers are armed. *)
val time : string -> (unit -> 'a) -> 'a

(** [record_span name seconds] adds one measurement directly. *)
val record_span : string -> float -> unit

(** All spans, sorted by name, merged across shards and requests. *)
val spans : unit -> (string * span) list

(** Per-(request id, span name) span statistics, sorted; the request
    id is [""] for samples recorded outside any {!Trace.with_request}.
    Lets tests and analyzers check that concurrent requests kept their
    samples apart. *)
val request_spans : unit -> ((string * string) * span) list

(** Number of records of one span; 0 if never recorded.  The compile
    cache's effectiveness criterion — one ["schedule"] record per
    (config, loop) — is asserted against this. *)
val span_count : string -> int

(** Raw sample durations of one span, unordered; [] if never
    recorded. *)
val span_samples : string -> float list

(** Per-span percentiles, sorted by name. *)
val distributions : unit -> (string * distribution) list

(** All counters, sorted by name. *)
val counters : unit -> (string * int) list

(** Clear every span and counter (the enabled flag is untouched).
    Not safe concurrently with recording. *)
val reset : unit -> unit

(** Snapshot of the registry as JSON:
    [{"spans": {name: {"total_s":..,"count":..,"max_s":..,
                       "p50_s":..,"p90_s":..,"p99_s":..}},
      "counters": {name: n}}]. *)
val to_json : unit -> Json.t

(** Write a JSON value to a file atomically (temp file + rename; the
    temp file is unlinked on any failure path). *)
val write_json : path:string -> Json.t -> unit
