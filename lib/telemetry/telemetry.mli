(** Observability for the experiment pipeline: monotonic timers, named
    counters, per-stage spans and a JSON metrics emitter.

    All state lives in one global, domain-safe registry so that worker
    domains of the parallel suite runner can record into it directly.
    Span accumulation takes a mutex per record; counters are atomic.
    Recording is gated on {!enable} (default off) so the hot pipeline
    pays one atomic load per stage when telemetry is unused. *)

(** Minimal JSON tree, enough for metrics files.  No external
    dependency; strings are escaped per RFC 8259. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  (** Render with stable field order and 2-space indentation. *)
  val to_string : t -> string
end

(** Monotonic time in seconds since an arbitrary origin.  Differences
    are meaningful; absolute values are not. *)
val now : unit -> float

(** Monotonic time in integer nanoseconds. *)
val now_ns : unit -> int64

(** Turn recording on or off.  Disabled spans and counters cost one
    atomic load; {!time} still runs its thunk. *)
val enable : bool -> unit

val enabled : unit -> bool

(** [incr name] bumps counter [name] by [by] (default 1), creating it
    at zero on first use.  Domain-safe. *)
val incr : ?by:int -> string -> unit

(** Current value of a counter; 0 if never incremented. *)
val counter : string -> int

(** Accumulated statistics of one named span. *)
type span = {
  total_s : float;  (** summed duration across all records *)
  count : int;  (** number of records *)
  max_s : float;  (** longest single record *)
}

(** [time name f] runs [f ()] and, when enabled, adds its duration to
    span [name].  Exceptions propagate; the span still records. *)
val time : string -> (unit -> 'a) -> 'a

(** [record_span name seconds] adds one measurement directly. *)
val record_span : string -> float -> unit

(** All spans, sorted by name. *)
val spans : unit -> (string * span) list

(** Number of records of one span; 0 if never recorded.  The compile
    cache's effectiveness criterion — one ["schedule"] record per
    (config, loop) — is asserted against this. *)
val span_count : string -> int

(** All counters, sorted by name. *)
val counters : unit -> (string * int) list

(** Clear every span and counter (the enabled flag is untouched). *)
val reset : unit -> unit

(** Snapshot of the registry as JSON:
    [{"spans": {name: {"total_s":..,"count":..,"max_s":..}},
      "counters": {name: n}}]. *)
val to_json : unit -> Json.t

(** Write a JSON value to a file atomically (temp file + rename). *)
val write_json : path:string -> Json.t -> unit
