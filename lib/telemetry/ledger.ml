type record = {
  label : string;
  request : string;  (* daemon request id; "" in batch runs *)
  loop : string;
  config : string;
  fp : string;
  models : string;
  capacity : int option;
  clusters : int option;
  mii : int option;
  ii : int option;
  rounds : int option;
  spilled : int option;
  requirement : int option;
  maxlive : int option;
  spill_full : int option;
  spill_incremental : int option;
  cache_hits : int;
  cache_misses : int;
  disk_hits : int;
  disk_misses : int;
  stages : (string * int) list;
  total_ns : int;
  ok : bool;
  error : string option;
}

let on = Atomic.make false

(* The ledger piggybacks on the trace context: arming the ledger
   demands the ambient point context even when event buffering is off. *)
let enable b =
  Atomic.set on b;
  Trace.require_context b

let enabled () = Atomic.get on

let lock = Mutex.create ()
let current_label = ref ""
let recorded : record list ref = ref []

let set_label l =
  Mutex.lock lock;
  current_label := l;
  Mutex.unlock lock

let label () =
  Mutex.lock lock;
  let l = !current_label in
  Mutex.unlock lock;
  l

let add r =
  if Atomic.get on then begin
    Mutex.lock lock;
    recorded := r :: !recorded;
    Mutex.unlock lock
  end

let records () =
  Mutex.lock lock;
  let l = !recorded in
  Mutex.unlock lock;
  List.rev l

let reset () =
  Mutex.lock lock;
  recorded := [];
  Mutex.unlock lock

(* Identity of a record: everything but durations.  Sorting on it makes
   the written ledger independent of completion order, so --jobs N and
   --jobs 1 runs produce the same record sequence. *)
let identity r =
  (r.label, r.request, r.config, r.models, r.capacity, r.loop, r.fp, r.ok, r.error)

let compare_records a b = compare (identity a) (identity b)

let opt_int = function None -> Json.Null | Some v -> Json.Int v

let to_json r =
  Json.Obj
    ([ ("label", Json.String r.label) ]
    (* emitted only when set, so batch ledgers keep their pre-request
       byte layout (the shard-merge byte gate depends on it) *)
    @ (if r.request = "" then [] else [ ("request", Json.String r.request) ])
    @ [
      ("loop", Json.String r.loop);
      ("config", Json.String r.config);
      ("fp", Json.String r.fp);
      ("models", Json.String r.models);
      ("capacity", opt_int r.capacity);
      ("clusters", opt_int r.clusters);
      ("mii", opt_int r.mii);
      ("ii", opt_int r.ii);
      ("rounds", opt_int r.rounds);
      ("spilled", opt_int r.spilled);
      ("requirement", opt_int r.requirement);
      ("maxlive", opt_int r.maxlive);
      ("spill_full", opt_int r.spill_full);
      ("spill_incremental", opt_int r.spill_incremental);
      ( "cache",
        Json.Obj
          [
            ("hits", Json.Int r.cache_hits);
            ("misses", Json.Int r.cache_misses);
            ("disk_hits", Json.Int r.disk_hits);
            ("disk_misses", Json.Int r.disk_misses);
          ] );
      ("stages", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.stages));
      ("total_ns", Json.Int r.total_ns);
      ("ok", Json.Bool r.ok);
      ("error", match r.error with None -> Json.Null | Some e -> Json.String e);
    ])

let field name fields = List.assoc_opt name fields

let of_json json =
  let ( let* ) r f = Result.bind r f in
  match json with
  | Json.Obj fields ->
    let str name =
      match field name fields with
      | Some (Json.String s) -> Ok s
      | _ -> Error (Printf.sprintf "ledger record: missing string field %S" name)
    in
    let int name =
      match field name fields with
      | Some (Json.Int i) -> Ok i
      | _ -> Error (Printf.sprintf "ledger record: missing int field %S" name)
    in
    let int_opt name =
      match field name fields with
      | Some (Json.Int i) -> Ok (Some i)
      | Some Json.Null | None -> Ok None
      | _ -> Error (Printf.sprintf "ledger record: bad optional int field %S" name)
    in
    let* label = str "label" in
    let request =
      match field "request" fields with Some (Json.String s) -> s | _ -> ""
    in
    let* loop = str "loop" in
    let* config = str "config" in
    let* fp = str "fp" in
    let* models = str "models" in
    let* capacity = int_opt "capacity" in
    let* clusters = int_opt "clusters" in
    let* mii = int_opt "mii" in
    let* ii = int_opt "ii" in
    let* rounds = int_opt "rounds" in
    let* spilled = int_opt "spilled" in
    let* requirement = int_opt "requirement" in
    let* maxlive = int_opt "maxlive" in
    let* spill_full = int_opt "spill_full" in
    let* spill_incremental = int_opt "spill_incremental" in
    let* cache_hits, cache_misses, disk_hits, disk_misses =
      match field "cache" fields with
      | Some (Json.Obj cf) -> (
        (* Disk counters default to 0 so ledgers written before the disk
           tier existed still parse. *)
        let disk name =
          match field name cf with
          | Some (Json.Int i) -> Some i
          | None -> Some 0
          | _ -> None
        in
        match (field "hits" cf, field "misses" cf, disk "disk_hits", disk "disk_misses") with
        | Some (Json.Int h), Some (Json.Int m), Some dh, Some dm -> Ok (h, m, dh, dm)
        | _ -> Error "ledger record: bad \"cache\" object")
      | _ -> Error "ledger record: missing \"cache\" object"
    in
    let* stages =
      match field "stages" fields with
      | Some (Json.Obj sf) ->
        List.fold_left
          (fun acc (k, v) ->
            let* acc = acc in
            match v with
            | Json.Int ns -> Ok ((k, ns) :: acc)
            | _ -> Error (Printf.sprintf "ledger record: stage %S is not an int" k))
          (Ok []) sf
        |> Result.map List.rev
      | _ -> Error "ledger record: missing \"stages\" object"
    in
    let* total_ns = int "total_ns" in
    let* ok =
      match field "ok" fields with
      | Some (Json.Bool b) -> Ok b
      | _ -> Error "ledger record: missing bool field \"ok\""
    in
    let* error =
      match field "error" fields with
      | Some Json.Null | None -> Ok None
      | Some (Json.String e) -> Ok (Some e)
      | _ -> Error "ledger record: bad \"error\" field"
    in
    Ok
      {
        label;
        request;
        loop;
        config;
        fp;
        models;
        capacity;
        clusters;
        mii;
        ii;
        rounds;
        spilled;
        requirement;
        maxlive;
        spill_full;
        spill_incremental;
        cache_hits;
        cache_misses;
        disk_hits;
        disk_misses;
        stages;
        total_ns;
        ok;
        error;
      }
  | _ -> Error "ledger record: not a JSON object"

let parse_line line = Result.bind (Json.of_string line) of_json

let to_jsonl records =
  let buf = Buffer.create 4096 in
  List.iter
    (fun r ->
      Buffer.add_string buf (Json.to_compact (to_json r));
      Buffer.add_char buf '\n')
    records;
  Buffer.contents buf

let write ~path =
  Json.write_file ~prefix:".ledger" ~path
    (to_jsonl (List.stable_sort compare_records (records ())))

let load ~path =
  let ic = open_in path in
  let lines =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  in
  let rec parse i = function
    | [] -> Ok []
    | "" :: rest -> parse (i + 1) rest
    | line :: rest -> (
      match parse_line line with
      | Error msg -> Error (Printf.sprintf "line %d: %s" i msg)
      | Ok r -> Result.map (fun rs -> r :: rs) (parse (i + 1) rest))
  in
  parse 1 lines
