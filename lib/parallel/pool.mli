(** Fixed-size domain worker pool for the suite runner.

    The paper's evaluation maps an independent compile pipeline over
    ~800 loops; this pool spreads that map across OCaml 5 domains.  The
    design constraints, in order:

    - {b determinism}: results come back ordered by input index, so a
      parallel map is observably identical to [List.map] whatever the
      completion order of the workers;
    - {b fault isolation}: an exception inside one item is captured with
      that item's label and re-raised {e after} every other item has
      settled, so one bad loop names itself instead of killing the
      sweep;
    - {b simplicity}: a single [Mutex]/[Condition]-protected queue feeds
      persistent worker domains; jobs are closures, the pool is reused
      across maps.

    A pool of [jobs <= 1] spawns no domains and maps serially on the
    calling domain — the degenerate case used as the baseline for
    speedup measurements. *)

type t

(** [Domain.recommended_domain_count ()] — the default worker count. *)
val default_jobs : unit -> int

(** [create ~jobs ()] starts [jobs - 1] worker domains ([jobs] counts
    the calling domain, which also executes items during {!map}).
    [jobs <= 1] creates a serial pool.  Each worker registers its pool
    slot (1-based; the calling domain is slot 0) as its trace track via
    [Ncdrf_telemetry.Trace.set_track], so event traces get one stable
    track per executor instead of one per spawned domain. *)
val create : ?jobs:int -> unit -> t

val jobs : t -> int

(** True iff the pool runs everything on the calling domain. *)
val is_serial : t -> bool

(** Raised by {!map} after the whole input has settled when at least
    one item failed: the labels and exception messages of every failing
    item, in input order. *)
exception
  Worker_failure of {
    failures : (string * string) list;  (** (item label, error) *)
  }

(** [map t ~label f xs] applies [f] to every element, in parallel on
    the pool's domains, and returns the results in input order.
    Raises {!Worker_failure} if any item raised; [label] (default a
    positional ["item %d"]) names the culprits.

    The submitting thread's ambient request id
    ([Ncdrf_telemetry.Trace.with_request]) is captured at submission
    and re-installed around every job, so trace events, span samples
    and ledger records produced by pool workers stay attributed to the
    daemon request that submitted the map. *)
val map : t -> ?label:('a -> string) -> ('a -> 'b) -> 'a list -> 'b list

(** Like {!map} but returns per-item outcomes instead of raising:
    [Error (label, message)] for items whose [f] raised. *)
val try_map :
  t -> ?label:('a -> string) -> ('a -> 'b) -> 'a list ->
  ('b, string * string) result list

(** Like {!try_map} but preserves the exception value instead of
    flattening it to [Printexc.to_string] — the suite runner classifies
    failures ({!Ncdrf_error.Error.classify_exn}) after the map settles,
    in input order, which needs the original exception. *)
val try_map_exn :
  t -> ?label:('a -> string) -> ('a -> 'b) -> 'a list ->
  ('b, string * exn) result list

(** Stop and join the worker domains.  Idempotent; a shut-down pool
    maps serially. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] runs [f pool] and guarantees shutdown. *)
val with_pool : ?jobs:int -> (t -> 'a) -> 'a
