type t = {
  size : int;  (** executors, counting the calling domain *)
  lock : Mutex.t;
  work_available : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () = Domain.recommended_domain_count ()

exception
  Worker_failure of {
    failures : (string * string) list;
  }

let () =
  Printexc.register_printer (function
    | Worker_failure { failures } ->
      Some
        (Printf.sprintf "Worker_failure on %d item(s): %s"
           (List.length failures)
           (String.concat "; "
              (List.map (fun (l, e) -> Printf.sprintf "%s (%s)" l e) failures)))
    | _ -> None)

(* Worker domains block on [work_available] and run queued jobs until
   the pool closes.  Jobs never raise: [map] wraps user code. *)
let rec worker_loop t =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue && not t.closed do
    Condition.wait t.work_available t.lock
  done;
  if Queue.is_empty t.queue then begin
    (* closed and drained *)
    Mutex.unlock t.lock
  end
  else begin
    let job = Queue.pop t.queue in
    Mutex.unlock t.lock;
    job ();
    worker_loop t
  end

let create ?jobs () =
  let size =
    match jobs with
    | None -> default_jobs ()
    | Some j -> max 1 j
  in
  let t =
    {
      size;
      lock = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [];
    }
  in
  if size > 1 then
    t.workers <-
      List.init (size - 1) (fun i ->
          Domain.spawn (fun () ->
              (* Stable trace track per pool slot (the calling domain is
                 executor 0): raw Domain.uid values differ run to run
                 and pool to pool, which would scatter identical runs
                 across different trace tracks. *)
              Ncdrf_telemetry.Trace.set_track (i + 1);
              worker_loop t));
  t

let jobs t = t.size
let is_serial t = t.workers = []

let shutdown t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let default_label _ = "item"

(* Shared engine: apply [outcome] (which must not raise) to every item,
   results in input order. *)
let generic_map t outcome xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if n = 0 then []
  else if is_serial t then List.map outcome (Array.to_list arr)
  else begin
    (* Capture the submitting thread's ambient request id so work
       stolen by pool workers (different threads, so a different
       observability shard) is still attributed to the daemon request
       that submitted it.  Identity outside any request. *)
    let wrap = Ncdrf_telemetry.Trace.inherit_request () in
    let results = Array.make n None in
    let remaining = ref n in
    let all_done = Condition.create () in
    let job i () =
      let r = wrap (fun () -> outcome arr.(i)) in
      Mutex.lock t.lock;
      results.(i) <- Some r;
      decr remaining;
      if !remaining = 0 then Condition.broadcast all_done;
      Mutex.unlock t.lock
    in
    Mutex.lock t.lock;
    for i = 0 to n - 1 do
      Queue.push (job i) t.queue
    done;
    Condition.broadcast t.work_available;
    Mutex.unlock t.lock;
    (* The calling domain is an executor too: drain the queue, then
       wait for in-flight jobs on other domains. *)
    let rec drain () =
      Mutex.lock t.lock;
      match Queue.take_opt t.queue with
      | Some job ->
        Mutex.unlock t.lock;
        job ();
        drain ()
      | None ->
        while !remaining > 0 do
          Condition.wait all_done t.lock
        done;
        Mutex.unlock t.lock
    in
    drain ();
    Array.to_list
      (Array.map
         (function
           | Some r -> r
           | None -> assert false (* remaining = 0 implies every slot is filled *))
         results)
  end

let try_map t ?(label = default_label) f xs =
  generic_map t (fun x -> try Ok (f x) with e -> Error (label x, Printexc.to_string e)) xs

let try_map_exn t ?(label = default_label) f xs =
  generic_map t (fun x -> try Ok (f x) with e -> Error (label x, e)) xs

let map t ?label f xs =
  let outcomes = try_map t ?label f xs in
  let failures =
    List.filter_map (function Error e -> Some e | Ok _ -> None) outcomes
  in
  if failures <> [] then raise (Worker_failure { failures });
  List.map (function Ok v -> v | Error _ -> assert false) outcomes
