module Telemetry = Ncdrf_telemetry.Telemetry
module Trace = Ncdrf_telemetry.Trace

type 'a entry = {
  value : 'a;
  mutable last_use : int;  (** stripe-local tick of the most recent use *)
}

type 'a stripe = {
  lock : Mutex.t;
  tbl : (string, 'a entry) Hashtbl.t;
  mutable tick : int;
}

type 'a t = {
  cache_name : string;
  stripes : 'a stripe array;
  per_stripe : int;  (** max entries per stripe *)
  total_capacity : int;
  hit_count : int Atomic.t;
  miss_count : int Atomic.t;
  eviction_count : int Atomic.t;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
}

let create ?(stripes = 8) ~name ~capacity () =
  if capacity < 1 then invalid_arg (Printf.sprintf "Cache.create %s: capacity < 1" name);
  if stripes < 1 then invalid_arg (Printf.sprintf "Cache.create %s: stripes < 1" name);
  let per_stripe = max 1 ((capacity + stripes - 1) / stripes) in
  {
    cache_name = name;
    stripes =
      Array.init stripes (fun _ ->
          { lock = Mutex.create (); tbl = Hashtbl.create 64; tick = 0 });
    per_stripe;
    total_capacity = capacity;
    hit_count = Atomic.make 0;
    miss_count = Atomic.make 0;
    eviction_count = Atomic.make 0;
  }

let name t = t.cache_name
let capacity t = t.total_capacity

let stripe_of t key = t.stripes.(Hashtbl.hash key mod Array.length t.stripes)

let with_lock s f =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

let touch s e =
  s.tick <- s.tick + 1;
  e.last_use <- s.tick

(* Caller holds the stripe lock.  Capacities are small, so a linear scan
   for the LRU entry per eviction is cheaper than maintaining an intrusive
   list would be worth. *)
let evict_over_capacity t s =
  while Hashtbl.length s.tbl > t.per_stripe do
    let victim =
      Hashtbl.fold
        (fun key e acc ->
          match acc with
          | Some (_, best) when best.last_use <= e.last_use -> acc
          | _ -> Some (key, e))
        s.tbl None
    in
    match victim with
    | None -> assert false (* length > capacity >= 1 implies an entry *)
    | Some (key, _) ->
      Hashtbl.remove s.tbl key;
      Atomic.incr t.eviction_count;
      Telemetry.incr "cache.evictions"
  done

let record_hit t =
  Atomic.incr t.hit_count;
  Telemetry.incr "cache.hits";
  Trace.note_cache ~hit:true

let find t ~key =
  let s = stripe_of t key in
  with_lock s (fun () ->
      match Hashtbl.find_opt s.tbl key with
      | Some e ->
        touch s e;
        Some e.value
      | None -> None)

let find_or_add t ~key compute =
  let s = stripe_of t key in
  let cached =
    with_lock s (fun () ->
        match Hashtbl.find_opt s.tbl key with
        | Some e ->
          touch s e;
          Some e.value
        | None -> None)
  in
  match cached with
  | Some v ->
    record_hit t;
    v
  | None ->
    (* Compute outside the lock: scheduling a loop can take milliseconds
       and must not serialize the worker domains.  A concurrent insert of
       the same key wins; both values are equal by the purity contract. *)
    let v = compute () in
    Atomic.incr t.miss_count;
    Telemetry.incr "cache.misses";
    Trace.note_cache ~hit:false;
    with_lock s (fun () ->
        match Hashtbl.find_opt s.tbl key with
        | Some e ->
          touch s e;
          e.value
        | None ->
          s.tick <- s.tick + 1;
          Hashtbl.replace s.tbl key { value = v; last_use = s.tick };
          evict_over_capacity t s;
          v)

let stats t =
  let size =
    Array.fold_left
      (fun acc s -> acc + with_lock s (fun () -> Hashtbl.length s.tbl))
      0 t.stripes
  in
  {
    hits = Atomic.get t.hit_count;
    misses = Atomic.get t.miss_count;
    evictions = Atomic.get t.eviction_count;
    size;
  }

let clear t =
  Array.iter (fun s -> with_lock s (fun () -> Hashtbl.reset s.tbl)) t.stripes
