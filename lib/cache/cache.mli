(** Domain-safe bounded memo table for compilation artifacts.

    A cache is a set of [stripes], each a [Mutex]-protected [Hashtbl]
    keyed by strings; a key's stripe is fixed by its hash, so lookups of
    distinct keys from the {!Ncdrf_parallel.Pool} worker domains mostly
    take distinct locks.  Each stripe evicts least-recently-used entries
    once it exceeds its share of the capacity.

    {b Determinism contract:} [find_or_add] may only be used with
    [compute] functions that are pure functions of the key — then a hit
    returns a value structurally identical to what [compute] would have
    produced, and caching is observably a no-op (apart from time).  Two
    domains racing on the same absent key may both run [compute]; the
    first insertion wins and both callers return equal values.

    Every hit/miss/eviction bumps the global telemetry counters
    [cache.hits] / [cache.misses] / [cache.evictions] (when telemetry is
    enabled) as well as per-cache atomic counters returned by {!stats},
    which work regardless of telemetry. *)

type 'a t

(** Cumulative per-cache counters plus the current entry count. *)
type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;  (** entries currently resident, across all stripes *)
}

(** [create ~name ~capacity ()] makes an empty cache holding at most
    (approximately) [capacity] entries; [capacity] is split evenly over
    [stripes] (default 8, minimum 1), and each stripe holds at least one
    entry, so a capacity smaller than the stripe count admits up to one
    entry per stripe.  [name] labels error messages only; telemetry
    counters are global across caches.

    @raise Invalid_argument if [capacity < 1] or [stripes < 1]. *)
val create : ?stripes:int -> name:string -> capacity:int -> unit -> 'a t

val name : _ t -> string
val capacity : _ t -> int

(** [find_or_add t ~key compute] returns the cached value for [key],
    running [compute ()] (outside the stripe lock) and inserting its
    result on a miss.  LRU bookkeeping counts both hits and inserts as
    uses. *)
val find_or_add : 'a t -> key:string -> (unit -> 'a) -> 'a

(** [find t ~key] peeks without computing; counts as a use on hit but
    records neither a hit nor a miss. *)
val find : 'a t -> key:string -> 'a option

val stats : _ t -> stats

(** Drop every entry (counters are preserved). *)
val clear : _ t -> unit
