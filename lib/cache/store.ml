module Telemetry = Ncdrf_telemetry.Telemetry
module Json = Ncdrf_telemetry.Json
module Trace = Ncdrf_telemetry.Trace

type t = {
  root : string;
  max_bytes : int;  (** 0 = unlimited *)
  hit_count : int Atomic.t;
  miss_count : int Atomic.t;
  write_count : int Atomic.t;
  eviction_count : int Atomic.t;
  approx_bytes : int Atomic.t;
      (** resident-size estimate: seeded by a scan at open, bumped on save,
          refreshed (made exact) by each sweep *)
}

type stats = {
  hits : int;
  misses : int;
  writes : int;
  evictions : int;
  bytes : int;
}

let magic = "ncdrf-store/1"
let stale_tmp_age_s = 900.0

(* ------------------------------------------------------------------ *)
(* Entry codec.  The on-disk entry is:

     ncdrf-store/1\n
     <32-hex self-check MD5 of key ^ NUL ^ payload>\n
     <key length> <payload length>\n
     <key bytes><payload bytes>

   Keys embed Config fingerprints, which are NUL-separated binary, so the
   key and payload are length-prefixed rather than line-oriented.  The full
   key is stored (not just its hash) so a filename-hash collision decodes
   as a miss instead of returning another key's artifact. *)

let render_entry ~key payload =
  let check = Digest.to_hex (Digest.string (key ^ "\x00" ^ payload)) in
  Printf.sprintf "%s\n%s\n%d %d\n%s%s" magic check (String.length key)
    (String.length payload) key payload

let parse_entry ~key raw =
  match String.index_opt raw '\n' with
  | None -> None
  | Some nl1 ->
    if String.sub raw 0 nl1 <> magic then None
    else (
      match String.index_from_opt raw (nl1 + 1) '\n' with
      | None -> None
      | Some nl2 ->
        let check = String.sub raw (nl1 + 1) (nl2 - nl1 - 1) in
        (match String.index_from_opt raw (nl2 + 1) '\n' with
        | None -> None
        | Some nl3 ->
          let lens = String.sub raw (nl2 + 1) (nl3 - nl2 - 1) in
          (match String.split_on_char ' ' lens with
          | [ klen; plen ] ->
            (match (int_of_string_opt klen, int_of_string_opt plen) with
            | Some klen, Some plen
              when klen >= 0 && plen >= 0
                   && String.length raw = nl3 + 1 + klen + plen ->
              let stored_key = String.sub raw (nl3 + 1) klen in
              let payload = String.sub raw (nl3 + 1 + klen) plen in
              if
                String.equal stored_key key
                && String.equal check
                     (Digest.to_hex (Digest.string (key ^ "\x00" ^ payload)))
              then Some payload
              else None
            | _ -> None)
          | _ -> None)))

(* ------------------------------------------------------------------ *)
(* Layout *)

let entry_path t key =
  let hex = Digest.to_hex (Digest.string key) in
  Filename.concat
    (Filename.concat t.root (String.sub hex 0 2))
    (String.sub hex 2 (String.length hex - 2) ^ ".art")

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then (
      go (Filename.dirname d);
      try Unix.mkdir d 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  in
  go dir

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try Some (really_input_string ic (in_channel_length ic))
        with Sys_error _ | End_of_file -> None)

(* Walk every regular file in the store (root plus the 2-hex prefix
   subdirectories).  Entries can disappear underfoot when concurrent
   processes evict — every stat/remove tolerates that. *)
let iter_files t f =
  let in_dir dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | names ->
      Array.iter
        (fun name ->
          let path = Filename.concat dir name in
          match Unix.stat path with
          | exception Unix.Unix_error _ -> ()
          | st when st.Unix.st_kind = Unix.S_REG -> f path st
          | _ -> ())
        names
  in
  in_dir t.root;
  (match Sys.readdir t.root with
  | exception Sys_error _ -> ()
  | names ->
    Array.iter
      (fun name ->
        let sub = Filename.concat t.root name in
        if try Sys.is_directory sub with Sys_error _ -> false then in_dir sub)
      names)

let is_tmp path = Filename.check_suffix path ".tmp"
let is_entry path = Filename.check_suffix path ".art"

(* ------------------------------------------------------------------ *)
(* Stale temp reclaim (probe-reclaim, like the daemon's stale socket):
   a temp file is only reclaimed once it is old enough that no live
   publisher can still be mid-rename on it. *)

let reclaim_stale ?(max_age_s = stale_tmp_age_s) t =
  let now = Unix.gettimeofday () in
  let removed = ref 0 in
  iter_files t (fun path st ->
      if is_tmp path && now -. st.Unix.st_mtime > max_age_s then (
        match Sys.remove path with
        | () -> incr removed
        | exception Sys_error _ -> ()));
  !removed

(* ------------------------------------------------------------------ *)
(* Eviction: LRU by access stamp (mtime; hits bump it via utimes). *)

let sweep t =
  ignore (reclaim_stale t);
  let entries = ref [] in
  let total = ref 0 in
  iter_files t (fun path st ->
      if is_entry path then (
        entries := (path, st.Unix.st_mtime, st.Unix.st_size) :: !entries;
        total := !total + st.Unix.st_size));
  if t.max_bytes > 0 && !total > t.max_bytes then (
    let by_age =
      List.sort (fun (_, a, _) (_, b, _) -> Float.compare a b) !entries
    in
    List.iter
      (fun (path, _, size) ->
        if !total > t.max_bytes then
          match Sys.remove path with
          | () ->
            total := !total - size;
            Atomic.incr t.eviction_count;
            Telemetry.incr "cache.disk_evictions"
          | exception Sys_error _ -> ())
      by_age);
  Atomic.set t.approx_bytes !total

let open_store ?(max_bytes = 0) ~dir () =
  mkdir_p dir;
  if not (Sys.is_directory dir) then
    raise (Sys_error (Printf.sprintf "cache dir %s is not a directory" dir));
  let t =
    {
      root = dir;
      max_bytes;
      hit_count = Atomic.make 0;
      miss_count = Atomic.make 0;
      write_count = Atomic.make 0;
      eviction_count = Atomic.make 0;
      approx_bytes = Atomic.make 0;
    }
  in
  sweep t;
  t

let dir t = t.root

let note_hit t =
  Atomic.incr t.hit_count;
  Telemetry.incr "cache.disk_hits";
  Trace.note_disk ~hit:true

let note_miss t =
  Atomic.incr t.miss_count;
  Telemetry.incr "cache.disk_misses";
  Trace.note_disk ~hit:false

let load t ~key ~decode =
  let path = entry_path t key in
  match read_file path with
  | None ->
    note_miss t;
    None
  | Some raw ->
    (match
       match parse_entry ~key raw with
       | None -> None
       | Some payload -> decode payload
     with
    | Some v ->
      note_hit t;
      (* Access stamp for LRU eviction; best-effort. *)
      (try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ());
      Some v
    | None ->
      (* Corrupt / stale / colliding entry: unlink so it stops masking the
         slot, then recompute.  Never an error. *)
      (try Sys.remove path with Sys_error _ -> ());
      note_miss t;
      None)

let save t ~key payload =
  let path = entry_path t key in
  let entry = render_entry ~key payload in
  match
    mkdir_p (Filename.dirname path);
    Json.write_file ~prefix:".store" ~path entry
  with
  | exception (Sys_error _ | Unix.Unix_error _) -> ()
  | () ->
    Atomic.incr t.write_count;
    Telemetry.incr "cache.disk_writes";
    Telemetry.incr ~by:(String.length entry) "cache.disk_bytes";
    let total =
      Atomic.fetch_and_add t.approx_bytes (String.length entry)
      + String.length entry
    in
    if t.max_bytes > 0 && total > t.max_bytes then sweep t

let stats t =
  {
    hits = Atomic.get t.hit_count;
    misses = Atomic.get t.miss_count;
    writes = Atomic.get t.write_count;
    evictions = Atomic.get t.eviction_count;
    bytes = Atomic.get t.approx_bytes;
  }

(* ------------------------------------------------------------------ *)
(* Ambient store: one per process, consulted by Artifact on memory miss. *)

let ambient_store : t option Atomic.t = Atomic.make None
let set_ambient s = Atomic.set ambient_store s
let ambient () = Atomic.get ambient_store
