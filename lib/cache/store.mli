(** Persistent content-addressed artifact store — the on-disk tier of the
    two-tier compile cache.

    Entries are keyed by the same content-addressed strings the in-memory
    {!Cache} uses ([Config.fingerprint + Ddg.digest + stage tag]) and laid
    out ccache-style under the store root by the hex MD5 of the key:
    [root/<2-hex-prefix>/<30-hex-rest>.art].  Writes go through the atomic
    temp-file publisher ({!Ncdrf_telemetry.Json.write_file}), so concurrent
    processes race safely: the last rename wins and readers never observe a
    partial entry.

    Every entry carries a versioned header with a self-check digest.  A
    corrupted, truncated, stale-version, or hash-colliding entry degrades to
    a miss — the store never raises on a bad entry, it recomputes. *)

type t

type stats = {
  hits : int;  (** disk lookups that decoded successfully *)
  misses : int;  (** disk lookups that found nothing usable *)
  writes : int;  (** entries published by this process *)
  evictions : int;  (** entries removed by the size-budget sweep *)
  bytes : int;  (** approximate resident bytes (refreshed by sweeps) *)
}

(** [open_store ?max_bytes ~dir ()] creates [dir] if needed, reclaims any
    stale temp files left by killed processes, and seeds the resident-size
    estimate from the entries already on disk.  [max_bytes = 0] (the
    default) disables the size budget.  Raises [Sys_error] if [dir] cannot
    be created. *)
val open_store : ?max_bytes:int -> dir:string -> unit -> t

val dir : t -> string

(** [load t ~key ~decode] consults the store.  The lookup counts as a hit
    only when the entry exists, self-checks, and [decode] accepts the
    payload; anything else is a miss (corrupt entries are unlinked so they
    cannot mask the slot).  A hit bumps the entry's access stamp for LRU
    eviction.  Never raises. *)
val load : t -> key:string -> decode:(string -> 'a option) -> 'a option

(** [save t ~key payload] publishes an entry atomically.  Failures (disk
    full, permission) are swallowed — a store that cannot write behaves as
    a store that always misses.  Triggers an eviction sweep when the
    resident-size estimate exceeds the budget. *)
val save : t -> key:string -> string -> unit

(** [sweep t] re-scans the store: refreshes the resident-size estimate,
    reclaims stale temp files, and evicts least-recently-used entries until
    the store fits the byte budget. *)
val sweep : t -> unit

(** [reclaim_stale ?max_age_s t] removes [*.tmp] files older than
    [max_age_s] (default 900s) left behind by killed processes.  Younger
    temp files are presumed to belong to a live publisher mid-rename and
    are left alone — the age probe mirrors the daemon's stale-socket
    probe-reclaim.  Returns the number of files removed. *)
val reclaim_stale : ?max_age_s:float -> t -> int

val stats : t -> stats

(** Ambient store consulted by the pipeline's stage boundaries.  [None]
    (the default) disables the disk tier entirely; behaviour is then
    byte-identical to a build without this module. *)
val set_ambient : t option -> unit

val ambient : unit -> t option
