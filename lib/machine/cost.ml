type file_spec = {
  registers : int;
  read_ports : int;
  write_ports : int;
  bits : int;
}

let area spec =
  let ports = float_of_int (spec.read_ports + spec.write_ports) in
  float_of_int spec.registers *. float_of_int spec.bits *. ports *. ports

let log2 x = log (float_of_int x) /. log 2.0

let access_time spec = log2 (max 2 spec.registers) +. log2 (1 + spec.read_ports)

let operand_field_bits ~registers =
  let rec bits n acc = if n <= 1 then acc else bits ((n + 1) / 2) (acc + 1) in
  bits (max 2 registers) 0

type organization =
  | Unified
  | Consistent of int
  | Non_consistent of int
  | Doubled_unified

let consistent_dual = Consistent 2
let non_consistent_dual = Non_consistent 2

let organization_name = function
  | Unified -> "unified"
  | Consistent 2 -> "consistent-dual"
  | Consistent k -> Printf.sprintf "consistent-%d" k
  | Non_consistent 2 -> "non-consistent-dual"
  | Non_consistent k -> Printf.sprintf "non-consistent-%d" k
  | Doubled_unified -> "doubled-unified"

(* FP-file port demand of one cluster: adders and multipliers read two
   operands and write one result; a load/store unit reads one FP value
   (store data) and writes one (load result). *)
let cluster_reads c =
  (2 * c.Config.adders) + (2 * c.Config.multipliers) + c.Config.ls_units

let cluster_writes c = c.Config.adders + c.Config.multipliers + c.Config.ls_units

let machine_reads cfg = Array.fold_left (fun acc c -> acc + cluster_reads c) 0 cfg.Config.clusters
let machine_writes cfg = Array.fold_left (fun acc c -> acc + cluster_writes c) 0 cfg.Config.clusters

let max_cluster_reads cfg =
  Array.fold_left (fun acc c -> max acc (cluster_reads c)) 0 cfg.Config.clusters

let copies_of = function
  | Unified | Doubled_unified -> 1
  | Consistent k | Non_consistent k ->
    if k < 1 then invalid_arg "Cost: subfile count must be >= 1";
    k

let specify cfg ~registers org =
  let bits = 64 in
  match org with
  | Unified ->
    ( { registers; read_ports = machine_reads cfg; write_ports = machine_writes cfg; bits },
      1 )
  | Doubled_unified ->
    ( {
        registers = 2 * registers;
        read_ports = machine_reads cfg;
        write_ports = machine_writes cfg;
        bits;
      },
      1 )
  | Consistent k | Non_consistent k ->
    let copies = copies_of org in
    (* Each copy serves one cluster's reads but receives every write
       (the non-consistent file keeps the same write structure; it just
       does not use every write for every value).  When the organization
       matches the machine's cluster count the per-copy read demand is
       the widest cluster's; otherwise the machine's read demand is
       spread evenly over the [k] copies. *)
    let read_ports =
      if k = max 1 (Config.num_clusters cfg) then max_cluster_reads cfg
      else (machine_reads cfg + k - 1) / k
    in
    ({ registers; read_ports; write_ports = machine_writes cfg; bits }, copies)

let total_area cfg ~registers org =
  let spec, copies = specify cfg ~registers org in
  float_of_int copies *. area spec

let organization_access_time cfg ~registers org =
  let spec, _ = specify cfg ~registers org in
  access_time spec
