(** Register-file hardware cost models (paper Section 3.2).

    The paper motivates the non-consistent dual file with two published
    models: the {e area} of a multiported register file grows linearly
    with the number of registers and bits and quadratically with the
    number of ports (Lee'84), and the {e access time} grows
    logarithmically with the number of registers and with the number of
    read ports (Capitanio et al.'92).  This module implements both in
    normalized units and derives the port counts of the four file
    organizations discussed in the paper for any machine configuration,
    so the "cheaper than doubling the number of registers and does not
    penalize the access time" claim can be checked quantitatively
    (bench experiment [cost]). *)

type file_spec = {
  registers : int;
  read_ports : int;
  write_ports : int;
  bits : int;  (** width of one register, 64 for FP *)
}

(** Normalized area: [registers * bits * (read_ports + write_ports)^2].
    One single-ported 64-bit register cell is the unit. *)
val area : file_spec -> float

(** Normalized access time: [log2 registers + log2 (1 + read_ports)].
    The paper only uses the model comparatively. *)
val access_time : file_spec -> float

(** Bits needed to name one operand. *)
val operand_field_bits : registers:int -> int

type organization =
  | Unified  (** one file, every port *)
  | Consistent of int
      (** [k] identical copies: per-copy read ports serve one cluster,
          every result is written to every copy *)
  | Non_consistent of int
      (** [k] subfiles, same port structure as the consistent file of
          the same arity; capacity counts per subfile but values are
          replicated only where consumed *)
  | Doubled_unified  (** a unified file with twice the registers *)

(** The paper's two-subfile organizations: [Consistent 2] and
    [Non_consistent 2]. *)
val consistent_dual : organization

val non_consistent_dual : organization

(** ["consistent-dual"]/["non-consistent-dual"] at arity 2 (the paper's
    names), ["consistent-k"]/["non-consistent-k"] otherwise. *)
val organization_name : organization -> string

(** Per-subfile specification of an organization on a machine:
    [registers] is the per-(sub)file capacity; FP read ports = 2 per
    adder + 2 per multiplier + 1 per load/store unit (store data), FP
    write ports = 1 per adder/multiplier/load unit.  Clustered
    organizations serve each cluster's reads locally but accept every
    cluster's writes: when the organization's arity matches the
    machine's cluster count each copy carries the widest cluster's read
    demand, otherwise the machine's read demand is split evenly across
    the [k] copies.  Returns the spec of ONE subfile and how many
    subfiles the organization instantiates. *)
val specify : Config.t -> registers:int -> organization -> file_spec * int

(** Total silicon area of the organization (all subfiles). *)
val total_area : Config.t -> registers:int -> organization -> float

(** Access time of one subfile — the machine's register-file critical
    path. *)
val organization_access_time : Config.t -> registers:int -> organization -> float
