(** VLIW machine configurations.

    A configuration is a set of {e clusters}, each holding a number of
    adders, multipliers and load/store units, plus optional machine-wide
    load/store port caps (used by the PxLy configurations of the paper's
    Table 1, which constrain loads to 2 per cycle and stores to 1 per
    cycle irrespective of unit counts).

    Each cluster may additionally carry optional {e register-file} port
    budgets ([read_ports]/[write_ports]): per-cycle caps on how many
    operands its subfile can deliver and how many results it can accept.
    [None] (the default) means unconstrained, which reproduces the
    original machine model exactly.

    All functional units are fully pipelined: a unit accepts a new
    operation every cycle; latency only delays the result. *)

open Ncdrf_ir

type cluster = {
  adders : int;
  multipliers : int;
  ls_units : int;  (** load/store units private to the cluster *)
  read_ports : int option;
      (** per-cycle cap on register-file reads from this cluster's
          subfile; [None] = unconstrained *)
  write_ports : int option;
      (** per-cycle cap on register-file writes into this cluster's
          subfile; [None] = unconstrained *)
}

type t = private {
  name : string;
  clusters : cluster array;  (** length [k >= 1]: 1 = unified, 2 = dual, ... *)
  add_latency : int;  (** adds, subtracts, conversions *)
  mul_latency : int;  (** multiplies and divides *)
  mem_latency : int;  (** loads and stores, 1 in the paper *)
  load_ports : int option;  (** machine-wide cap on loads per cycle *)
  store_ports : int option;  (** machine-wide cap on stores per cycle *)
}

val make :
  name:string ->
  clusters:cluster array ->
  add_latency:int ->
  mul_latency:int ->
  ?mem_latency:int ->
  ?load_ports:int ->
  ?store_ports:int ->
  unit ->
  t

(** A cluster with symmetric unit counts; register-file port caps
    default to unconstrained. *)
val symmetric_cluster :
  ?read_ports:int ->
  ?write_ports:int ->
  adders:int ->
  multipliers:int ->
  ls_units:int ->
  unit ->
  cluster

(** Table 1 configuration PxLy: [x] adders and [x] multipliers of latency
    [y], one store port and two load ports, single cluster. *)
val pxly : parallelism:int -> latency:int -> t

(** [k] clusters of {1 adder, 1 multiplier, 1 load/store unit} at FP
    latency [latency], each optionally capped at [read_ports] reads and
    [write_ports] writes per cycle on its subfile.  With [k = 2] and no
    port caps this is exactly {!dual} (same name, same fingerprint). *)
val k_cluster :
  ?read_ports:int -> ?write_ports:int -> k:int -> latency:int -> unit -> t

(** The evaluation configuration of Section 5.2: two clusters of {1
    adder, 1 multiplier, 1 load/store unit}, FP latency
    [latency] (3 or 6), memory latency 1. *)
val dual : latency:int -> t

(** Same resources as {!dual} collapsed into a single cluster — the
    unified register-file machine the paper compares against. *)
val dual_unified : latency:int -> t

(** The machine of the worked example (Section 4.1): two clusters of {1
    adder, 1 multiplier, 2 load/store units}, FP latency 3, memory
    latency 1. *)
val example : unit -> t

val num_clusters : t -> int
val latency : t -> Opcode.t -> int

(** Per-class unit totals over the whole machine. *)
val total_adders : t -> int

val total_multipliers : t -> int
val total_ls_units : t -> int

(** True when any cluster carries a register-file read or write port
    cap. *)
val has_port_caps : t -> bool

(** Number of memory ports used in the density-of-traffic denominator:
    the effective per-cycle memory issue bandwidth. *)
val memory_bandwidth : t -> int

(** Stable serialization of every field (name, clusters incl. any
    register-file port caps, latencies, machine-wide port caps), usable
    as the machine half of a compile-cache key: two configurations
    fingerprint equally iff they are equal.  Configurations without
    register-file port caps keep the historical rendering, so existing
    cache keys and ledger digests are unchanged. *)
val fingerprint : t -> string

val pp : Format.formatter -> t -> unit

(** A machine described by the driver flags ([--latency], [--clusters],
    [--read-ports], [--write-ports]) — the shape both the CLI and the
    serving protocol carry.  Field names are prefixed to keep the
    record distinct from {!cluster}'s unprefixed ports. *)
type spec = {
  spec_latency : int;
  spec_clusters : int;
  spec_read_ports : int option;
  spec_write_ports : int option;
}

(** Latency 3, two clusters, unconstrained ports — the paper's dual
    machine. *)
val default_spec : spec

(** Build the machine a spec describes: 1 cluster is the unified
    machine ({!dual_unified}, or its port-capped variant), 2 uncapped
    clusters is {!dual}, anything else {!k_cluster}.  [Error] on a
    cluster count < 1 — the wire protocol must reject bad specs as
    typed errors, never exceptions. *)
val of_spec : spec -> (t, string) result
