open Ncdrf_ir

type cluster = {
  adders : int;
  multipliers : int;
  ls_units : int;
  read_ports : int option;
  write_ports : int option;
}

type t = {
  name : string;
  clusters : cluster array;
  add_latency : int;
  mul_latency : int;
  mem_latency : int;
  load_ports : int option;
  store_ports : int option;
}

let make ~name ~clusters ~add_latency ~mul_latency ?(mem_latency = 1) ?load_ports
    ?store_ports () =
  if Array.length clusters = 0 then invalid_arg "Config.make: no clusters";
  let positive what v = if v < 1 then invalid_arg (Printf.sprintf "Config.make: %s" what) in
  positive "add_latency must be >= 1" add_latency;
  positive "mul_latency must be >= 1" mul_latency;
  positive "mem_latency must be >= 1" mem_latency;
  let check_cluster c =
    if c.adders < 0 || c.multipliers < 0 || c.ls_units < 0 then
      invalid_arg "Config.make: negative unit count";
    let port = function
      | Some n when n < 1 -> invalid_arg "Config.make: register-file port cap must be >= 1"
      | _ -> ()
    in
    port c.read_ports;
    port c.write_ports
  in
  Array.iter check_cluster clusters;
  { name; clusters; add_latency; mul_latency; mem_latency; load_ports; store_ports }

let symmetric_cluster ?read_ports ?write_ports ~adders ~multipliers ~ls_units () =
  { adders; multipliers; ls_units; read_ports; write_ports }

let pxly ~parallelism ~latency =
  make
    ~name:(Printf.sprintf "P%dL%d" parallelism latency)
    ~clusters:
      [|
        symmetric_cluster ~adders:parallelism ~multipliers:parallelism ~ls_units:3 ();
      |]
    ~add_latency:latency ~mul_latency:latency ~load_ports:2 ~store_ports:1 ()

let k_cluster ?read_ports ?write_ports ~k ~latency () =
  if k < 1 then invalid_arg "Config.k_cluster: k must be >= 1";
  let name =
    if k = 2 && read_ports = None && write_ports = None then
      Printf.sprintf "dual-L%d" latency
    else Printf.sprintf "k%d-L%d" k latency
  in
  make ~name
    ~clusters:
      (Array.init k (fun _ ->
           symmetric_cluster ?read_ports ?write_ports ~adders:1 ~multipliers:1
             ~ls_units:1 ()))
    ~add_latency:latency ~mul_latency:latency ()

let dual ~latency = k_cluster ~k:2 ~latency ()

let dual_unified ~latency =
  make
    ~name:(Printf.sprintf "unified-L%d" latency)
    ~clusters:[| symmetric_cluster ~adders:2 ~multipliers:2 ~ls_units:2 () |]
    ~add_latency:latency ~mul_latency:latency ()

let example () =
  make ~name:"example"
    ~clusters:
      [|
        symmetric_cluster ~adders:1 ~multipliers:1 ~ls_units:2 ();
        symmetric_cluster ~adders:1 ~multipliers:1 ~ls_units:2 ();
      |]
    ~add_latency:3 ~mul_latency:3 ()

let num_clusters t = Array.length t.clusters

let latency t op =
  match Opcode.fu_class op with
  | Opcode.Adder -> t.add_latency
  | Opcode.Multiplier -> t.mul_latency
  | Opcode.Memory -> t.mem_latency

let sum_clusters t f = Array.fold_left (fun acc c -> acc + f c) 0 t.clusters
let total_adders t = sum_clusters t (fun c -> c.adders)
let total_multipliers t = sum_clusters t (fun c -> c.multipliers)
let total_ls_units t = sum_clusters t (fun c -> c.ls_units)

let has_port_caps t =
  Array.exists (fun c -> c.read_ports <> None || c.write_ports <> None) t.clusters

let memory_bandwidth t =
  let units = total_ls_units t in
  match t.load_ports, t.store_ports with
  | Some l, Some s -> min units (l + s)
  | Some l, None -> min units l
  | None, Some s -> min units s
  | None, None -> units

(* Stable cache-key rendering of every field.  The name is included on
   purpose: it does not change scheduling, but keying on it keeps a
   cached schedule's embedded [config] byte-identical to the one the
   caller passed, so cached and cold runs print identically.  Per-cluster
   register-file port caps are rendered only when set, so configurations
   predating the caps keep their historical fingerprint while any port
   budget yields a distinct cache key. *)
let fingerprint t =
  let buf = Buffer.create 64 in
  Buffer.add_string buf t.name;
  Buffer.add_char buf '\x00';
  let port = function None -> "-" | Some n -> string_of_int n in
  Array.iter
    (fun c ->
      Buffer.add_string buf (Printf.sprintf "%d,%d,%d" c.adders c.multipliers c.ls_units);
      if c.read_ports <> None || c.write_ports <> None then
        Buffer.add_string buf
          (Printf.sprintf ",r%s,w%s" (port c.read_ports) (port c.write_ports));
      Buffer.add_char buf '|')
    t.clusters;
  Buffer.add_string buf
    (Printf.sprintf "lat=%d,%d,%d;ports=%s,%s" t.add_latency t.mul_latency t.mem_latency
       (port t.load_ports) (port t.store_ports));
  Buffer.contents buf

let pp ppf t =
  let cluster_desc c =
    let base = Printf.sprintf "%da+%dm+%dls" c.adders c.multipliers c.ls_units in
    match c.read_ports, c.write_ports with
    | None, None -> base
    | r, w ->
      let show = function None -> "-" | Some n -> string_of_int n in
      Printf.sprintf "%s,rd=%s,wr=%s" base (show r) (show w)
  in
  let clusters =
    String.concat " | " (Array.to_list (Array.map cluster_desc t.clusters))
  in
  let ports =
    match t.load_ports, t.store_ports with
    | None, None -> ""
    | l, s ->
      let show = function None -> "-" | Some n -> string_of_int n in
      Printf.sprintf ", ports ld=%s st=%s" (show l) (show s)
  in
  Format.fprintf ppf "%s [%s], lat add=%d mul=%d mem=%d%s" t.name clusters
    t.add_latency t.mul_latency t.mem_latency ports

(* ------------------------------------------------------------------ *)
(* CLI / wire specs                                                    *)
(* ------------------------------------------------------------------ *)

type spec = {
  spec_latency : int;
  spec_clusters : int;
  spec_read_ports : int option;
  spec_write_ports : int option;
}

let default_spec =
  { spec_latency = 3; spec_clusters = 2; spec_read_ports = None; spec_write_ports = None }

let of_spec { spec_latency = latency; spec_clusters = clusters;
              spec_read_ports = read_ports; spec_write_ports = write_ports } =
  match clusters with
  | n when n < 1 ->
    Error (Printf.sprintf "unsupported cluster count %d (must be >= 1)" n)
  | 1 ->
    Ok
      (match read_ports, write_ports with
       | None, None -> dual_unified ~latency
       | _ ->
         (* The unified machine's resources with register-file port caps. *)
         make
           ~name:(Printf.sprintf "unified-L%d" latency)
           ~clusters:
             [|
               symmetric_cluster ?read_ports ?write_ports ~adders:2 ~multipliers:2
                 ~ls_units:2 ();
             |]
           ~add_latency:latency ~mul_latency:latency ())
  | 2 when read_ports = None && write_ports = None -> Ok (dual ~latency)
  | k -> Ok (k_cluster ?read_ports ?write_ports ~k ~latency ())
