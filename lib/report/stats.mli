(** Descriptive statistics for experiment series. *)

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p25 : float;
  p50 : float;
  p75 : float;
  p90 : float;
  p99 : float;
}

(** [None] on an empty series. *)
val summarize : float list -> summary option

(** Nearest-rank percentile, [q] in [0, 100].

    @raise Invalid_argument on an empty list or out-of-range [q]. *)
val percentile : float -> float list -> float

(** Fixed-width histogram: buckets from [lo] (inclusive) in steps of
    [width]; returns [(bucket lower bound, count)] for every non-empty
    range up to the maximum value.  Values below [lo] land in the first
    bucket. *)
val histogram : lo:float -> width:float -> float list -> (float * int) list

(** Histogram with automatically chosen bounds: [buckets] (default 10)
    equal-width buckets spanning the series' min..max (the maximum
    value lands in one extra top bucket; a constant series collapses to
    a single bucket).  [[]] on an empty series. *)
val auto_histogram : ?buckets:int -> float list -> (float * int) list

(** ASCII bar chart of a histogram, one bucket per line. *)
val render_histogram :
  ?bar_width:int -> label:(float -> string) -> (float * int) list -> string

val pp_summary : Format.formatter -> summary -> unit
