type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p25 : float;
  p50 : float;
  p75 : float;
  p90 : float;
  p99 : float;
}

let percentile q values =
  if values = [] then invalid_arg "Stats.percentile: empty series";
  if q < 0.0 || q > 100.0 then invalid_arg "Stats.percentile: q out of range";
  let sorted = List.sort compare values in
  let n = List.length sorted in
  (* Nearest-rank: smallest index r with r >= q/100 * n. *)
  let rank = int_of_float (ceil (q /. 100.0 *. float_of_int n)) in
  let idx = max 0 (min (n - 1) (rank - 1)) in
  List.nth sorted idx

let summarize values =
  match values with
  | [] -> None
  | _ ->
    let count = List.length values in
    let sum = List.fold_left ( +. ) 0.0 values in
    Some
      {
        count;
        mean = sum /. float_of_int count;
        min = List.fold_left min infinity values;
        max = List.fold_left max neg_infinity values;
        p25 = percentile 25.0 values;
        p50 = percentile 50.0 values;
        p75 = percentile 75.0 values;
        p90 = percentile 90.0 values;
        p99 = percentile 99.0 values;
      }

let histogram ~lo ~width values =
  if width <= 0.0 then invalid_arg "Stats.histogram: width must be positive";
  match values with
  | [] -> []
  | _ ->
    let bucket v = max 0 (int_of_float (floor ((v -. lo) /. width))) in
    let top = List.fold_left (fun acc v -> max acc (bucket v)) 0 values in
    let counts = Array.make (top + 1) 0 in
    List.iter (fun v -> counts.(bucket v) <- counts.(bucket v) + 1) values;
    Array.to_list (Array.mapi (fun i c -> (lo +. (float_of_int i *. width), c)) counts)

let auto_histogram ?(buckets = 10) values =
  match values with
  | [] -> []
  | v :: _ ->
    let lo = List.fold_left min v values in
    let hi = List.fold_left max v values in
    if hi <= lo then [ (lo, List.length values) ]
    else histogram ~lo ~width:((hi -. lo) /. float_of_int (max 1 buckets)) values

let render_histogram ?(bar_width = 50) ~label buckets =
  let peak = List.fold_left (fun acc (_, c) -> max acc c) 1 buckets in
  let line (lower, count) =
    let bar = count * bar_width / peak in
    Printf.sprintf "%-12s |%s %d" (label lower) (String.make bar '#') count
  in
  String.concat "\n" (List.map line buckets) ^ "\n"

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.2f min=%.2f p25=%.2f p50=%.2f p75=%.2f p90=%.2f p99=%.2f max=%.2f"
    s.count s.mean s.min s.p25 s.p50 s.p75 s.p90 s.p99 s.max
