let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let line cells = String.concat "," (List.map escape cells)

(* Write to a temp file in the destination directory, then rename: the
   rename is atomic on POSIX, so an interrupted run leaves either the
   old file or the new one, never a truncated CSV. *)
let write path rows =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ".csv" ".tmp" in
  let oc = open_out tmp in
  (try List.iter (fun row -> output_string oc (line row ^ "\n")) rows
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp path

exception Parse_error of string

(* 1-based line/column of byte [i], for error messages. *)
let line_col s i =
  let line = ref 1 and bol = ref 0 in
  for j = 0 to min i (String.length s) - 1 do
    if s.[j] = '\n' then begin
      incr line;
      bol := j + 1
    end
  done;
  (!line, i - !bol + 1)

let parse_string s =
  let n = String.length s in
  let rows = ref [] in
  let cells = ref [] in
  let buf = Buffer.create 32 in
  let flush_cell () =
    cells := Buffer.contents buf :: !cells;
    Buffer.clear buf
  in
  let flush_row () =
    flush_cell ();
    rows := List.rev !cells :: !rows;
    cells := []
  in
  (* [i] scans outside quotes; [quoted i] scans inside a quoted cell. *)
  let rec plain i =
    if i >= n then begin
      (* No trailing newline: flush the pending row unless it is the
         empty row implied by end-of-input right after a newline. *)
      if Buffer.length buf > 0 || !cells <> [] then flush_row ()
    end
    else
      match s.[i] with
      | ',' ->
        flush_cell ();
        plain (i + 1)
      | '\n' ->
        flush_row ();
        plain (i + 1)
      | '\r' when i + 1 < n && s.[i + 1] = '\n' ->
        flush_row ();
        plain (i + 2)
      | '"' when Buffer.length buf = 0 -> quoted ~opened:i (i + 1)
      | c ->
        Buffer.add_char buf c;
        plain (i + 1)
  and quoted ~opened i =
    if i >= n then begin
      let line, col = line_col s opened in
      raise
        (Parse_error
           (Printf.sprintf "unterminated quoted cell (opened at line %d, column %d)"
              line col))
    end
    else
      match s.[i] with
      | '"' when i + 1 < n && s.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted ~opened (i + 2)
      | '"' -> plain (i + 1)
      | c ->
        Buffer.add_char buf c;
        quoted ~opened (i + 1)
  in
  plain 0;
  List.rev !rows

let read path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  parse_string contents
