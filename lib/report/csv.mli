(** Minimal RFC-4180-style CSV input/output for experiment series. *)

(** Quote a field if it contains a comma, quote or newline. *)
val escape : string -> string

val line : string list -> string

(** [write path rows] writes the rows to [path] atomically: the data
    goes to a temp file in the same directory which is then renamed
    over [path], so an interrupted run can never leave a truncated
    file. *)
val write : string -> string list list -> unit

exception Parse_error of string

(** Parse CSV text: the inverse of {!write} for any cell content
    (commas, quotes and newlines round-trip).  Accepts LF and CRLF row
    separators; a trailing newline does not produce an empty row.

    @raise Parse_error on an unterminated quoted cell. *)
val parse_string : string -> string list list

(** [read path] parses the file's contents. *)
val read : string -> string list list
