type t = {
  max_steps : int option;
  max_wall_s : float option;
}

let unlimited = { max_steps = None; max_wall_s = None }

let v ?max_steps ?max_wall_s () = { max_steps; max_wall_s }

let limited t = t.max_steps <> None || t.max_wall_s <> None

type meter = {
  budget : t;
  started : float;  (** only meaningful when a wall limit is set *)
  mutable steps : int;
  mutable wall_overrun : bool;
  mutable next_wall_check : int;  (** step count of the next clock sample *)
}

(* Monotonic, not wall time: a long-running daemon's budgets must not
   fire (or fail to fire) because NTP stepped the system clock. *)
let now () = Ncdrf_telemetry.Telemetry.now ()

let start budget =
  {
    budget;
    started = (if budget.max_wall_s = None then 0.0 else now ());
    steps = 0;
    wall_overrun = false;
    next_wall_check = 0;
  }

(* Sampling the clock every step would dominate a fast scheduler;
   every 64 steps keeps the overrun detection within a few ms. *)
let wall_check_interval = 64

let spend ?(steps = 1) m =
  m.steps <- m.steps + steps;
  match m.budget.max_wall_s with
  | None -> ()
  | Some limit ->
    if m.steps >= m.next_wall_check then begin
      m.next_wall_check <- m.steps + wall_check_interval;
      if now () -. m.started > limit then m.wall_overrun <- true
    end

let exceeded m =
  match m.budget.max_steps with
  | Some limit when m.steps > limit ->
    Some (Printf.sprintf "step budget exhausted (%d > %d)" m.steps limit)
  | Some _ | None ->
    if m.wall_overrun then
      Some
        (Printf.sprintf "wall-clock budget exhausted (> %.3fs)"
           (Option.get m.budget.max_wall_s))
    else None

let steps_used m = m.steps
