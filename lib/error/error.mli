(** Typed failure taxonomy for the compile pipeline.

    The paper's evaluation sweeps hundreds of modulo-scheduled loops
    across many machine configurations; a sweep must degrade per point,
    not per run.  That requires failures the harness can {e classify}
    (to count and report them), {e contain} (one bad loop must not kill
    the suite) and {e attribute} (which loop, which stage, which
    round).  This module is the single vocabulary for all three.

    Every pipeline stage converts its failures — its own and the legacy
    exception zoo ([Failure], [Invalid_argument], [Loop_lang.Parse_error],
    the scheduler's infeasibility signals, ... ) — into one [Error]
    exception carrying a {!category} and structured context.  The
    {!protect} boundary performs the conversion for code that still
    raises raw exceptions; libraries that define their own exceptions
    register a {!register_classifier} converter so [protect] maps them
    to the right category instead of [Internal]. *)

(** The failure taxonomy.  Categories are coarse on purpose: they are
    the keys of the suite's [errors.*] telemetry counters and of the
    failure manifest, so they must stay stable and aggregatable. *)
type category =
  | Parse  (** loop-language syntax or semantic (compile) errors *)
  | Invalid_graph  (** a DDG or schedule failed structural validation *)
  | Schedule_infeasible
      (** the modulo scheduler found no schedule within its II slack,
          or the machine cannot execute an opcode at all *)
  | Alloc_infeasible
      (** register allocation found no feasible capacity in its search
          range *)
  | Spill_diverged
      (** the iterative spiller hit its round/II-bump caps without
          fitting; a partial outcome is still available *)
  | Budget_exhausted  (** a stage exceeded its step or wall-clock budget *)
  | Injected  (** a deterministic fault-injection point fired *)
  | Internal  (** everything else: a genuine bug surfaced and contained *)
  | Overloaded
      (** the serving daemon's admission queue was full and the request
          was shed before execution *)
  | Deadline_exceeded
      (** a per-request (or per-point [--timeout]) deadline expired
          while the work was queued or running *)
  | Canceled
      (** the request was canceled — typically by a draining daemon
          revoking in-flight work on shutdown *)

(** A classified failure with its structured context.  Optional fields
    are filled in as the error crosses stage boundaries: a stage that
    knows the loop name or config fingerprint adds them if missing. *)
type t = {
  category : category;
  stage : string;  (** "parse", "mii", "schedule", "alloc", "swap", "spill", "cache", "pipeline" *)
  loop : string option;  (** loop (DDG) name *)
  config : string option;  (** [Config.fingerprint] of the machine *)
  round : int option;  (** spill round, where applicable *)
  ii : int option;  (** initiation interval reached, where applicable *)
  message : string;
}

exception Error of t

(** Stable lower-snake-case name, the suffix of the [errors.*] counters:
    ["parse"], ["invalid_graph"], ["schedule_infeasible"],
    ["alloc_infeasible"], ["spill_diverged"], ["budget_exhausted"],
    ["injected"], ["internal"], ["overloaded"], ["deadline_exceeded"],
    ["canceled"]. *)
val category_name : category -> string

val all_categories : category list

(** Inverse of {!category_name}; [None] on an unknown name.  The wire
    protocol uses this to decode error payloads into the taxonomy. *)
val category_of_name : string -> category option

(** One-line rendering: category, context, message. *)
val to_string : t -> string

val make :
  ?loop:string ->
  ?config:string ->
  ?round:int ->
  ?ii:int ->
  stage:string ->
  category ->
  string ->
  t

(** [error ... category msg] raises {!Error} with {!make}'s record. *)
val error :
  ?loop:string ->
  ?config:string ->
  ?round:int ->
  ?ii:int ->
  stage:string ->
  category ->
  string ->
  'a

(** Like {!error} with a format string. *)
val errorf :
  ?loop:string ->
  ?config:string ->
  ?round:int ->
  ?ii:int ->
  stage:string ->
  category ->
  ('a, unit, string, 'b) format4 ->
  'a

(** Libraries owning legacy exceptions register a converter here (at
    module initialization), consulted by {!classify_exn} before the
    built-in fallbacks.  A converter returns [None] for exceptions it
    does not recognize. *)
val register_classifier : (exn -> t option) -> unit

(** Convert any exception into a classified error.  An [Error] payload
    passes through, gaining the given context where its own is missing;
    registered converters are consulted next; then the built-ins:
    [Failure] and [Stack_overflow] become [Internal],
    [Invalid_argument] becomes [Invalid_graph] (inside the pipeline an
    invalid argument is a malformed graph or schedule).  [Out_of_memory]
    is also converted — containment beats a dead sweep. *)
val classify_exn : stage:string -> ?loop:string -> ?config:string -> exn -> t

(** The {!category} an exception would classify to, without building or
    enriching an error — what the run ledger stamps on failed points. *)
val category_of_exn : exn -> category

(** [protect ~stage f] runs [f ()] and converts any escaping exception
    via {!classify_exn}.  This is the containment boundary the suite
    runner wraps around each (loop, config) point. *)
val protect :
  stage:string -> ?loop:string -> ?config:string -> (unit -> 'a) -> ('a, t) result

(** Like {!protect} but re-raises the classified failure as [Error]:
    used inside stage functions so raw exceptions never escape a stage,
    while success values flow through untouched. *)
val boundary : stage:string -> ?loop:string -> ?config:string -> (unit -> 'a) -> 'a
