module Telemetry = Ncdrf_telemetry.Telemetry

exception
  Abort of {
    recorded : int;
    last : Error.t;
    reason : string;
  }

let () =
  Printexc.register_printer (function
    | Abort { recorded; last; reason } ->
      Some
        (Printf.sprintf "Ncdrf_error.Failures.Abort (%s after %d failure(s); last: %s)"
           reason recorded (Error.to_string last))
    | _ -> None)

type t = {
  fail_fast : bool;
  max_failures : int option;
  lock : Mutex.t;
  mutable rev_failures : Error.t list;
  mutable n : int;
}

let create ?(fail_fast = false) ?max_failures () =
  { fail_fast; max_failures; lock = Mutex.create (); rev_failures = []; n = 0 }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let record t e =
  let n =
    with_lock t (fun () ->
        t.rev_failures <- e :: t.rev_failures;
        t.n <- t.n + 1;
        t.n)
  in
  Telemetry.incr ("errors." ^ Error.category_name e.Error.category);
  if t.fail_fast then raise (Abort { recorded = n; last = e; reason = "fail-fast" });
  match t.max_failures with
  | Some limit when n > limit ->
    raise
      (Abort { recorded = n; last = e; reason = Printf.sprintf "max-failures %d" limit })
  | Some _ | None -> ()

let count t = with_lock t (fun () -> t.n)
let list t = with_lock t (fun () -> List.rev t.rev_failures)

let count_by_category errors =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let name = Error.category_name e.Error.category in
      Hashtbl.replace tbl name (1 + Option.value ~default:0 (Hashtbl.find_opt tbl name)))
    errors;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let by_category t = count_by_category (list t)

let to_json t =
  let open Telemetry.Json in
  let field_opt name conv = function None -> [] | Some v -> [ (name, conv v) ] in
  List
    (List.map
       (fun e ->
         Obj
           ([
              ("loop", String (Option.value ~default:"" e.Error.loop));
              ("stage", String e.Error.stage);
              ("category", String (Error.category_name e.Error.category));
            ]
           @ field_opt "round" (fun i -> Int i) e.Error.round
           @ field_opt "ii" (fun i -> Int i) e.Error.ii
           @ [ ("message", String e.Error.message) ]))
       (list t))

let csv_rows_of_list errors =
  let cell_opt = function None -> "" | Some i -> string_of_int i in
  [ "loop"; "stage"; "category"; "ii"; "round"; "message" ]
  :: List.map
       (fun e ->
         [
           Option.value ~default:"" e.Error.loop;
           e.Error.stage;
           Error.category_name e.Error.category;
           cell_opt e.Error.ii;
           cell_opt e.Error.round;
           e.Error.message;
         ])
       errors

let to_csv_rows t = csv_rows_of_list (list t)
