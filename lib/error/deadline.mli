(** Per-request deadlines and cooperative cancellation.

    The serving daemon gives every scheduling request a deadline and
    must be able to revoke in-flight work while draining; batch mode
    reuses the same machinery for [--timeout SECS] per-point budgets.
    A {!token} carries an absolute monotonic deadline (never wall time
    — see {!Budget.now}) plus a cancellation flag; it is installed
    {e ambiently} for a dynamic scope with {!with_token}, and pipeline
    stages poll {!check} at their boundaries (stage entry, spill
    rounds, II attempts).  Expiry and cancellation surface as the typed
    categories {!Error.Deadline_exceeded} and {!Error.Canceled}, so
    they flow through the same containment/reporting as every other
    failure.

    Scopes nest: an inner token does not shadow an outer one — {!check}
    honors whichever constraint fires first (min-deadline, any-cancel).
    Installation is per (domain, thread), so concurrent daemon requests
    on sibling systhreads and pool workers on other domains never see
    each other's tokens; sharing one token across threads is the
    intended way to bound a fanned-out request. *)

type token

(** [make ?timeout_s ()] — a token expiring [timeout_s] seconds from
    now on the monotonic clock; no deadline when omitted (the token is
    then cancellation-only). *)
val make : ?timeout_s:float -> unit -> token

(** Flip the cancellation flag (thread-safe, idempotent).  [reason]
    becomes the [Canceled] error message at the next {!check}. *)
val cancel : ?reason:string -> token -> unit

val canceled : token -> bool

(** True once the deadline has passed (false for deadline-less tokens). *)
val expired : token -> bool

(** Seconds until expiry ([infinity] for deadline-less tokens; negative
    once expired). *)
val time_left : token -> float

(** [with_token tok f] installs [tok] for the dynamic extent of [f] on
    the calling thread, stacking over (not replacing) any enclosing
    token. *)
val with_token : token -> (unit -> 'a) -> 'a

(** [with_timeout ?timeout_s f] — {!with_token} around a fresh
    {!make}d token; just [f ()] when [timeout_s] is [None]. *)
val with_timeout : ?timeout_s:float -> (unit -> 'a) -> 'a

(** True when any token is installed on the calling thread — lets hot
    paths skip polling entirely in batch mode. *)
val active : unit -> bool

(** Raise {!Error.Error} with category [Canceled] or
    [Deadline_exceeded] if any installed token is violated; a no-op
    when none is (the overwhelmingly common batch case). *)
val check : stage:string -> unit
