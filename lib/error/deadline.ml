(* Ambient per-request deadlines and cancellation.

   A token is immutable except for its cancellation flag, so one token
   can be shared across every thread and pool-worker domain touching a
   request.  The ambient installation is keyed by (domain, thread):
   systhreads in the serving daemon all run on domain 0 and would
   trample a Domain.DLS slot, while pool workers are separate domains —
   the composite key covers both.  Each key holds a *stack* of tokens
   so scopes nest with min-deadline / any-cancel semantics (a per-point
   [--timeout] inside a per-request deadline honors whichever is
   tighter). *)

type token = {
  deadline : float option;  (* absolute, monotonic seconds (Budget.now) *)
  timeout_s : float option;  (* the original relative budget, for messages *)
  canceled : bool Atomic.t;
  mutable cancel_reason : string;
}

let make ?timeout_s () =
  {
    deadline = Option.map (fun s -> Budget.now () +. s) timeout_s;
    timeout_s;
    canceled = Atomic.make false;
    cancel_reason = "canceled";
  }

let cancel ?(reason = "canceled") t =
  t.cancel_reason <- reason;
  Atomic.set t.canceled true

let canceled t = Atomic.get t.canceled

let expired t =
  match t.deadline with None -> false | Some d -> Budget.now () > d

let time_left t =
  match t.deadline with None -> infinity | Some d -> d -. Budget.now ()

(* (domain id, thread id) -> installed token stack, innermost first.
   The mutex is uncontended in batch mode and taken only at scope
   entry/exit plus explicit checks, which sit at stage boundaries —
   far off the placement hot path. *)
let lock = Mutex.create ()
let table : (int * int, token list) Hashtbl.t = Hashtbl.create 16

let key () = ((Domain.self () :> int), Thread.id (Thread.self ()))

let current_stack () =
  let k = key () in
  Mutex.lock lock;
  let s = Option.value ~default:[] (Hashtbl.find_opt table k) in
  Mutex.unlock lock;
  s

let active () = current_stack () <> []

let with_token tok f =
  let k = key () in
  Mutex.lock lock;
  let prev = Option.value ~default:[] (Hashtbl.find_opt table k) in
  Hashtbl.replace table k (tok :: prev);
  Mutex.unlock lock;
  let restore () =
    Mutex.lock lock;
    if prev = [] then Hashtbl.remove table k else Hashtbl.replace table k prev;
    Mutex.unlock lock
  in
  Fun.protect ~finally:restore f

let with_timeout ?timeout_s f =
  match timeout_s with
  | None -> f ()
  | Some _ -> with_token (make ?timeout_s ()) f

let violation tok =
  if Atomic.get tok.canceled then
    Some (Error.Canceled, tok.cancel_reason)
  else if expired tok then
    let msg =
      match tok.timeout_s with
      | Some s -> Printf.sprintf "deadline exceeded (budget %.3fs)" s
      | None -> "deadline exceeded"
    in
    Some (Error.Deadline_exceeded, msg)
  else None

let check ~stage =
  match current_stack () with
  | [] -> ()
  | stack ->
    (match List.find_map violation stack with
     | None -> ()
     | Some (category, message) -> Error.error ~stage category message)
