(** Failure collector for a suite sweep: the bookkeeping behind
    [--keep-going] / [--fail-fast] / [--max-failures N].

    A sweep records every classified failure here instead of dying.
    Each {!record} bumps the matching [errors.<category>] telemetry
    counter (so the [--metrics] JSON gets a per-category block for
    free) and, depending on policy, may abort the run:

    - [fail_fast]: {!record} raises {!Abort} on the first failure;
    - [max_failures n]: {!record} raises {!Abort} once more than [n]
      failures have been recorded.

    Thread-safe; with a worker pool, failures are recorded after the
    map settles, in input order, so manifests are deterministic. *)

exception
  Abort of {
    recorded : int;  (** failures recorded when the threshold tripped *)
    last : Error.t;  (** the failure that tripped it *)
    reason : string;  (** "fail-fast" or "max-failures N" *)
  }

type t

(** [create ()] collects without ever aborting ([--keep-going], the
    default).  [~fail_fast:true] aborts on the first failure;
    [~max_failures:n] aborts after more than [n]. *)
val create : ?fail_fast:bool -> ?max_failures:int -> unit -> t

(** Record one failure (and bump [errors.<category>]).
    @raise Abort per the policy above. *)
val record : t -> Error.t -> unit

val count : t -> int

(** All recorded failures, in record order. *)
val list : t -> Error.t list

(** [(category_name, count)] pairs, sorted by name, only non-zero. *)
val by_category : t -> (string * int) list

(** {!by_category} over a bare error list — the serving client renders
    failure summaries from wire-decoded errors without a collector. *)
val count_by_category : Error.t list -> (string * int) list

(** The failure manifest for the [--metrics] JSON: a list of objects
    with [loop], [stage], [category], [message] and, when present,
    [round] / [ii]. *)
val to_json : t -> Ncdrf_telemetry.Telemetry.Json.t

(** CSV manifest: a header row [loop,stage,category,ii,round,message]
    followed by one row per failure — feed to [Ncdrf_report.Csv.write]
    for an atomic [failures.csv]. *)
val to_csv_rows : t -> string list list

(** {!to_csv_rows} over a bare error list (same header), for manifests
    built from wire-decoded failures. *)
val csv_rows_of_list : Error.t list -> string list list
