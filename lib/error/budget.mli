(** Stage budgets as first-class outcomes.

    A budget bounds a stage by {e steps} (stage-defined unit of work —
    the modulo scheduler counts placement attempts) and/or {e wall
    clock}.  Exhaustion is not an accident to debug but a classified
    outcome ({!Error.Budget_exhausted}): a sweep over hundreds of loops
    reports "this point ran out of budget at II=9 after 40000
    placements" and moves on.

    The type is policy only; a {!meter} is the running account.  Meters
    are single-threaded by design: each pipeline point meters its own
    stage on its own domain. *)

type t = {
  max_steps : int option;  (** total steps allowed; [None] = unlimited *)
  max_wall_s : float option;  (** wall-clock seconds; [None] = unlimited *)
}

val unlimited : t

(** [v ?max_steps ?max_wall_s ()] — omitted components are unlimited. *)
val v : ?max_steps:int -> ?max_wall_s:float -> unit -> t

(** A running account against one budget. *)
type meter

(** Start the clock (reads the wall clock only if a wall limit is
    set). *)
val start : t -> meter

(** Add [steps] (default 1) to the account.  Cheap: the wall clock is
    sampled at most once every 64 steps. *)
val spend : ?steps:int -> meter -> unit

(** [Some reason] once the account exceeds either limit. *)
val exceeded : meter -> string option

val steps_used : meter -> int

(** True if the budget has any limit at all — lets hot loops skip
    metering entirely under {!unlimited}. *)
val limited : t -> bool

(** The clock wall metering reads: the {e monotonic} clock
    ([Telemetry.now], CLOCK_MONOTONIC), never [Unix.gettimeofday] — an
    NTP step in a long-running daemon must not fire spurious
    [Budget_exhausted].  Exposed so a regression test can pin the
    source. *)
val now : unit -> float
