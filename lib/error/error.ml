type category =
  | Parse
  | Invalid_graph
  | Schedule_infeasible
  | Alloc_infeasible
  | Spill_diverged
  | Budget_exhausted
  | Injected
  | Internal
  | Overloaded
  | Deadline_exceeded
  | Canceled

type t = {
  category : category;
  stage : string;
  loop : string option;
  config : string option;
  round : int option;
  ii : int option;
  message : string;
}

exception Error of t

let category_name = function
  | Parse -> "parse"
  | Invalid_graph -> "invalid_graph"
  | Schedule_infeasible -> "schedule_infeasible"
  | Alloc_infeasible -> "alloc_infeasible"
  | Spill_diverged -> "spill_diverged"
  | Budget_exhausted -> "budget_exhausted"
  | Injected -> "injected"
  | Internal -> "internal"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Canceled -> "canceled"

let all_categories =
  [ Parse; Invalid_graph; Schedule_infeasible; Alloc_infeasible; Spill_diverged;
    Budget_exhausted; Injected; Internal; Overloaded; Deadline_exceeded;
    Canceled ]

let category_of_name name =
  List.find_opt (fun c -> category_name c = name) all_categories

let to_string e =
  let buf = Buffer.create 64 in
  Buffer.add_string buf ("[" ^ category_name e.category ^ "]");
  Buffer.add_string buf (" stage=" ^ e.stage);
  let opt name to_s = function
    | None -> ()
    | Some v -> Buffer.add_string buf (Printf.sprintf " %s=%s" name (to_s v))
  in
  opt "loop" Fun.id e.loop;
  opt "round" string_of_int e.round;
  opt "ii" string_of_int e.ii;
  Buffer.add_string buf (": " ^ e.message);
  Buffer.contents buf

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Ncdrf_error.Error " ^ to_string e)
    | _ -> None)

let make ?loop ?config ?round ?ii ~stage category message =
  { category; stage; loop; config; round; ii; message }

let error ?loop ?config ?round ?ii ~stage category message =
  raise (Error (make ?loop ?config ?round ?ii ~stage category message))

let errorf ?loop ?config ?round ?ii ~stage category fmt =
  Printf.ksprintf (fun message -> error ?loop ?config ?round ?ii ~stage category message) fmt

(* Converters for exceptions owned by other libraries, registered at
   their module initialization (the whole library archive is linked, so
   registration runs before any pipeline code).  Consulted newest
   first; order only matters if two converters claim the same
   exception, which registration discipline avoids. *)
let classifiers : (exn -> t option) list ref = ref []

let register_classifier f = classifiers := f :: !classifiers

let fill ~stage ?loop ?config e =
  {
    e with
    loop = (match e.loop with Some _ as l -> l | None -> loop);
    config = (match e.config with Some _ as c -> c | None -> config);
    stage = (if e.stage = "" then stage else e.stage);
  }

let classify_exn ~stage ?loop ?config exn =
  match exn with
  | Error e -> fill ~stage ?loop ?config e
  | _ ->
    let registered =
      List.find_map (fun f -> match f exn with Some e -> Some e | None -> None)
        !classifiers
    in
    (match registered with
     | Some e -> fill ~stage ?loop ?config e
     | None ->
       let category, message =
         match exn with
         | Failure msg -> (Internal, msg)
         | Invalid_argument msg -> (Invalid_graph, msg)
         | Stack_overflow -> (Internal, "stack overflow")
         | Out_of_memory -> (Internal, "out of memory")
         | e -> (Internal, Printexc.to_string e)
       in
       make ?loop ?config ~stage category message)

(* Category of an arbitrary exception, without attaching context — used
   by the run ledger to stamp failed points.  Classification must not
   depend on whether tracing is armed, so this reuses [classify_exn]
   with a placeholder stage rather than enriching the error. *)
let category_of_exn exn = (classify_exn ~stage:"point" exn).category

let protect ~stage ?loop ?config f =
  try Ok (f ()) with
  | Sys.Break as e -> raise e
  | e -> Result.Error (classify_exn ~stage ?loop ?config e)

let boundary ~stage ?loop ?config f =
  try f () with
  | Sys.Break as e -> raise e
  | e -> raise (Error (classify_exn ~stage ?loop ?config e))
