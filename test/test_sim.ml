(* End-to-end execution tests: the pipelined executor (real rotating
   register files, cycle-accurate issue/completion, dual-subfile
   write/read policies) must produce exactly the sequential reference
   interpreter's results, for every kernel, model, latency — and for
   spilled code. *)

open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched
open Ncdrf_core
open Ncdrf_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let same_stores what expected actual =
  if not (Reference.equal_stores expected actual) then begin
    let show es =
      String.concat "; "
        (List.map
           (fun e ->
             Printf.sprintf "%s[%d]=%.6f" e.Reference.array e.Reference.iteration
               e.Reference.value)
           es)
    in
    Alcotest.failf "%s:\nreference: %s\nexecutor:  %s" what (show expected) (show actual)
  end

let test_example_unified_execution () =
  let sched = Helpers.paper_schedule () in
  let expected = Reference.run ~iterations:20 sched.Schedule.ddg in
  let outcome = Executor.run_unified ~iterations:20 sched in
  same_stores "paper example, unified" expected outcome.Executor.stores;
  check_int "capacity is the unified requirement" 42 outcome.Executor.capacity;
  check_int "one store per iteration" 20 (List.length outcome.Executor.stores);
  check_bool "reads were checked" true (outcome.Executor.register_reads > 0)

let test_example_dual_execution () =
  let sched = Helpers.paper_schedule () in
  let expected = Reference.run ~iterations:20 sched.Schedule.ddg in
  let outcome = Executor.run_dual ~iterations:20 sched in
  same_stores "paper example, dual" expected outcome.Executor.stores;
  check_int "capacity is the partitioned requirement" 29 outcome.Executor.capacity

let test_example_swapped_execution () =
  let sched, _ = Swap.improve (Helpers.paper_schedule ()) in
  let expected = Reference.run ~iterations:20 sched.Schedule.ddg in
  let outcome = Executor.run_dual ~iterations:20 sched in
  same_stores "paper example, swapped" expected outcome.Executor.stores;
  check_int "capacity matches the swapped requirement" 23 outcome.Executor.capacity

let test_all_kernels_execute_correctly () =
  List.iter
    (fun latency ->
      let config = Config.dual ~latency in
      List.iter
        (fun (ddg, _) ->
          let sched = Modulo.schedule config ddg in
          let iterations = (2 * Schedule.stages sched) + 3 in
          let expected = Reference.run ~iterations ddg in
          let unified = Executor.run_unified ~iterations sched in
          same_stores (Ddg.name ddg ^ " unified") expected unified.Executor.stores;
          let dual = Executor.run_dual ~iterations sched in
          same_stores (Ddg.name ddg ^ " dual") expected dual.Executor.stores;
          let swapped, _ = Swap.improve sched in
          let sw = Executor.run_dual ~iterations swapped in
          same_stores (Ddg.name ddg ^ " swapped") expected sw.Executor.stores)
        (Ncdrf_workloads.Kernels.all ()))
    [ 3; 6 ]

let test_spilled_code_executes_correctly () =
  (* Spill code rewrites the graph; the reference interprets the
     rewritten graph (spill slots included), so results must still
     match the ORIGINAL graph's semantics for the original stores. *)
  let config = Config.example () in
  let ddg = Helpers.example_ddg () in
  let outcome =
    Ncdrf_spill.Spiller.run ~config
      ~requirement:(fun s -> (s, Requirements.unified s))
      ~capacity:20 ddg
  in
  check_bool "spilled" true (outcome.Ncdrf_spill.Spiller.spilled > 0);
  let spilled_ddg = outcome.Ncdrf_spill.Spiller.ddg in
  let sched = outcome.Ncdrf_spill.Spiller.schedule in
  let iterations = (2 * Schedule.stages sched) + 3 in
  let expected_original = Reference.run ~iterations ddg in
  let expected_spilled = Reference.run ~iterations spilled_ddg in
  same_stores "spilling preserves semantics (reference level)" expected_original
    expected_spilled;
  let exec = Executor.run_unified ~iterations sched in
  same_stores "spilled code executes correctly" expected_spilled exec.Executor.stores

let test_recurrence_kernels_execute () =
  (* Loop-carried values cross the rotating-file boundary between
     iterations: run long enough to wrap the register file several
     times. *)
  List.iter
    (fun name ->
      let ddg =
        match Ncdrf_workloads.Kernels.find name with
        | Some g -> g
        | None -> Alcotest.failf "kernel %s missing" name
      in
      let sched = Modulo.schedule (Config.dual ~latency:6) ddg in
      let iterations = 50 in
      let expected = Reference.run ~iterations ddg in
      let outcome = Executor.run_dual ~iterations sched in
      same_stores name expected outcome.Executor.stores)
    [ "ll5-tridiag"; "ll11-first-sum"; "recurrence-d2"; "coupled-recurrence";
      "running-average" ]

let test_port_capped_machine_executes () =
  (* P1L3: one adder/multiplier, 1 store + 2 load ports — schedules are
     port-constrained but must still execute bit-exactly. *)
  let config = Config.pxly ~parallelism:1 ~latency:3 in
  List.iter
    (fun name ->
      let ddg =
        match Ncdrf_workloads.Kernels.find name with
        | Some g -> g
        | None -> Alcotest.failf "kernel %s missing" name
      in
      let sched = Modulo.schedule config ddg in
      let iterations = Schedule.stages sched + 4 in
      same_stores (name ^ " on P1L3")
        (Reference.run ~iterations ddg)
        (Executor.run_unified ~iterations sched).Executor.stores)
    [ "sum-8"; "fft-butterfly"; "ll9-integrate"; "clip-saturate" ]

let test_dual_rejects_single_cluster () =
  let sched = Modulo.schedule (Config.pxly ~parallelism:2 ~latency:3) (Helpers.example_ddg ()) in
  try
    ignore (Executor.run_dual ~iterations:4 sched);
    Alcotest.fail "single-cluster dual execution accepted"
  with Ncdrf_error.Error.Error e ->
    Alcotest.check
      (Alcotest.testable
         (fun ppf c -> Fmt.string ppf (Ncdrf_error.Error.category_name c))
         ( = ))
      "typed category" Ncdrf_error.Error.Invalid_graph e.Ncdrf_error.Error.category

let test_executor_cycle_count () =
  let sched = Helpers.paper_schedule () in
  let outcome = Executor.run_unified ~iterations:10 sched in
  (* Last op of iteration 9 is S7: issue 13 + 9*1, finish +1, +1 for
     the count. *)
  check_int "cycles" (13 + 9 + 1 + 1) outcome.Executor.cycles

let test_reference_deterministic () =
  let ddg = Helpers.example_ddg () in
  let a = Reference.run ~iterations:8 ddg in
  let b = Reference.run ~iterations:8 ddg in
  check_bool "deterministic" true (a = b);
  check_bool "nonempty" true (a <> [])

let prop_executor_matches_reference =
  let arb =
    QCheck.make
      ~print:(fun (seed, lat, heavy) -> Printf.sprintf "seed=%d lat=%d heavy=%b" seed lat heavy)
      QCheck.Gen.(triple (int_bound 50_000) (int_range 1 8) bool)
  in
  QCheck.Test.make ~count:60 ~name:"executor = reference on random loops (unified & dual)"
    arb
    (fun (seed, latency, heavy) ->
      let params =
        if heavy then Ncdrf_workloads.Generator.heavy else Ncdrf_workloads.Generator.default
      in
      let ddg = Ncdrf_workloads.Generator.generate params ~seed ~name:"sim-prop" in
      let config = Config.dual ~latency in
      let sched = Modulo.schedule config ddg in
      let iterations = Schedule.stages sched + 5 in
      let expected = Reference.run ~iterations ddg in
      let unified = Executor.run_unified ~iterations sched in
      let dual = Executor.run_dual ~iterations sched in
      let swapped, _ = Swap.improve sched in
      let sw = Executor.run_dual ~iterations swapped in
      Reference.equal_stores expected unified.Executor.stores
      && Reference.equal_stores expected dual.Executor.stores
      && Reference.equal_stores expected sw.Executor.stores)

let prop_affinity_schedules_execute =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 50_000) in
  QCheck.Test.make ~count:30 ~name:"affinity-scheduled loops execute correctly" arb
    (fun seed ->
      let ddg =
        Ncdrf_workloads.Generator.generate Ncdrf_workloads.Generator.default ~seed
          ~name:"sim-aff"
      in
      let sched =
        Modulo.schedule ~cluster_policy:Modulo.Affinity (Config.dual ~latency:3) ddg
      in
      let iterations = Schedule.stages sched + 4 in
      Reference.equal_stores
        (Reference.run ~iterations ddg)
        (Executor.run_dual ~iterations sched).Executor.stores)

(* --- Failure injection --- *)

let prop_mutations_caught =
  (* Nudge one operation's cycle or cluster in a valid schedule: either
     the static validator rejects the result, or — if the mutation
     happens to produce another valid schedule — execution still matches
     the reference.  This checks that Schedule.validate is strong enough
     to protect the executor. *)
  let arb =
    QCheck.make
      ~print:(fun (seed, victim, delta, flip) ->
        Printf.sprintf "seed=%d victim=%d delta=%d flip=%b" seed victim delta flip)
      QCheck.Gen.(quad (int_bound 20_000) (int_bound 1_000) (int_range (-3) 3) bool)
  in
  QCheck.Test.make ~count:60 ~name:"schedule mutations are caught or harmless" arb
    (fun (seed, victim, delta, flip_cluster) ->
      let ddg =
        Ncdrf_workloads.Generator.generate Ncdrf_workloads.Generator.default ~seed
          ~name:"mut-prop"
      in
      let config = Config.dual ~latency:3 in
      let sched = Modulo.schedule config ddg in
      let n = Ddg.num_nodes ddg in
      let v = victim mod n in
      let placements =
        Array.init n (fun i ->
            let cycle = Schedule.cycle sched i in
            let cluster = Schedule.cluster sched i in
            if i = v then
              {
                Schedule.cycle = (cycle + delta);
                cluster = (if flip_cluster then 1 - cluster else cluster);
              }
            else { Schedule.cycle; cluster })
      in
      let mutated =
        Schedule.make ~config ~ii:(Schedule.ii sched) ~placements ddg
      in
      match Schedule.validate mutated with
      | Error _ -> true (* the validator caught it *)
      | Ok () ->
        (* Still a legal schedule: it must also execute correctly. *)
        let iterations = Schedule.stages mutated + 4 in
        let expected = Reference.run ~iterations ddg in
        (try
           Reference.equal_stores expected
             (Executor.run_unified ~iterations mutated).Executor.stores
           && Reference.equal_stores expected
                (Executor.run_dual ~iterations mutated).Executor.stores
         with Executor.Corrupted _ -> false))

(* --- Memory system model --- *)

let kernel_for_memory name =
  match Ncdrf_workloads.Kernels.find name with
  | Some g -> g
  | None -> Alcotest.failf "kernel %s missing" name

let test_memory_no_accesses () =
  let open Expr in
  (* Arithmetic-only loop: defs consumed by one store... we need at
     least a store to be realistic; use an all-arith body and strip by
     checking a loop with no memory is impossible here, so instead use a
     single-store loop on a wide-banked memory: zero contention. *)
  let g = compile ~name:"light" [ Store ("o", inv "a" + inv "b") ] in
  let sched = Modulo.schedule (Config.dual ~latency:3) g in
  let r =
    Memory_system.simulate
      ~config:{ Memory_system.banks = 8; service_time = 1; tolerance = 4 }
      ~iterations:20 sched
  in
  Alcotest.(check (float 1e-9)) "no slowdown" 1.0 r.Memory_system.slowdown;
  check_int "one access per iteration" 20 r.Memory_system.accesses

let test_memory_single_bank_contention () =
  (* sum-8 issues 8 loads + 1 store per iteration; with a single slow
     bank the memory must become the bottleneck. *)
  let g =
    match Ncdrf_workloads.Kernels.find "sum-8" with
    | Some g -> g
    | None -> Alcotest.fail "kernel missing"
  in
  let sched = Modulo.schedule (Config.dual ~latency:3) g in
  let tight =
    Memory_system.simulate
      ~config:{ Memory_system.banks = 1; service_time = 2; tolerance = 2 }
      ~iterations:30 sched
  in
  check_bool "slowdown" true (tight.Memory_system.slowdown > 1.5);
  check_bool "delays observed" true (tight.Memory_system.delayed > 0);
  check_bool "pipeline slipped" true (tight.Memory_system.pipeline_slips > 0);
  let wide =
    Memory_system.simulate
      ~config:{ Memory_system.banks = 64; service_time = 2; tolerance = 2 }
      ~iterations:30 sched
  in
  check_bool "more banks help" true
    (wide.Memory_system.slowdown <= tight.Memory_system.slowdown)

let test_memory_slower_banks_hurt_more () =
  (* Monotonicity in the service time: a slower memory can only add
     slowdown; and the slowdown correlates with the schedule's traffic
     density when comparing at a fixed II (the paper's Figure 9
     argument). *)
  let config = Config.dual ~latency:6 in
  let sched = Modulo.schedule config (kernel_for_memory "ll9-integrate") in
  let slow service_time =
    (Memory_system.simulate
       ~config:{ Memory_system.banks = 2; service_time; tolerance = 2 }
       ~iterations:40 sched)
      .Memory_system.slowdown
  in
  check_bool "service 4 >= service 2" true (slow 4 >= slow 2 -. 1e-9);
  check_bool "service 2 >= service 1" true (slow 2 >= slow 1 -. 1e-9)

let suite =
  [
    Alcotest.test_case "example executes (unified)" `Quick test_example_unified_execution;
    Alcotest.test_case "example executes (dual)" `Quick test_example_dual_execution;
    Alcotest.test_case "example executes (swapped)" `Quick test_example_swapped_execution;
    Alcotest.test_case "all kernels execute correctly" `Slow
      test_all_kernels_execute_correctly;
    Alcotest.test_case "spilled code executes correctly" `Quick
      test_spilled_code_executes_correctly;
    Alcotest.test_case "recurrence kernels execute" `Quick test_recurrence_kernels_execute;
    Alcotest.test_case "port-capped machine executes" `Quick
      test_port_capped_machine_executes;
    Alcotest.test_case "dual rejects single cluster" `Quick test_dual_rejects_single_cluster;
    Alcotest.test_case "executor cycle count" `Quick test_executor_cycle_count;
    Alcotest.test_case "reference deterministic" `Quick test_reference_deterministic;
    Alcotest.test_case "memory: light loop has no slowdown" `Quick test_memory_no_accesses;
    Alcotest.test_case "memory: single-bank contention" `Quick
      test_memory_single_bank_contention;
    Alcotest.test_case "memory: slower banks hurt more" `Quick
      test_memory_slower_banks_hurt_more;
    QCheck_alcotest.to_alcotest prop_executor_matches_reference;
    QCheck_alcotest.to_alcotest prop_affinity_schedules_execute;
    QCheck_alcotest.to_alcotest prop_mutations_caught;
  ]
