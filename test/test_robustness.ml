(* The failure taxonomy and its enforcement: classification of the
   legacy exception zoo, stage budgets as first-class outcomes, spiller
   divergence containment, deterministic fault injection, the suite's
   keep-going / fail-fast policies, and the property that the pipeline
   never leaks a raw exception. *)

open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_core
module Error = Ncdrf_error.Error
module Budget = Ncdrf_error.Budget
module Failures = Ncdrf_error.Failures
module Fault = Ncdrf_fault.Fault
module Pool = Ncdrf_parallel.Pool

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let category : Error.category Alcotest.testable =
  Alcotest.testable
    (fun ppf c -> Format.pp_print_string ppf (Error.category_name c))
    ( = )

(* ------------------------------------------------------------------ *)
(* Taxonomy and classification.                                        *)
(* ------------------------------------------------------------------ *)

let test_category_names () =
  let names = List.map Error.category_name Error.all_categories in
  check_int "eleven categories" 11 (List.length names);
  check_int "names are distinct" 11 (List.length (List.sort_uniq compare names));
  List.iter
    (fun n ->
      check_bool ("lower snake case: " ^ n) true
        (String.for_all (fun c -> (c >= 'a' && c <= 'z') || c = '_') n))
    names

let test_classify_builtins () =
  let cat e = (Error.classify_exn ~stage:"pipeline" e).Error.category in
  Alcotest.check category "Failure -> Internal" Error.Internal (cat (Failure "boom"));
  Alcotest.check category "Invalid_argument -> Invalid_graph" Error.Invalid_graph
    (cat (Invalid_argument "index out of bounds"));
  Alcotest.check category "Stack_overflow -> Internal" Error.Internal (cat Stack_overflow);
  (* A classified error passes through, gaining missing context only. *)
  let inner = Error.make ~ii:9 ~stage:"alloc" Error.Alloc_infeasible "no capacity" in
  let out = Error.classify_exn ~stage:"pipeline" ~loop:"fir" (Error.Error inner) in
  Alcotest.check category "category preserved" Error.Alloc_infeasible out.Error.category;
  check_string "inner stage preserved" "alloc" out.Error.stage;
  Alcotest.(check (option string)) "loop context gained" (Some "fir") out.Error.loop;
  Alcotest.(check (option int)) "ii preserved" (Some 9) out.Error.ii;
  (* Registered classifiers: the loop language's parse errors. *)
  let pe = Ncdrf_ir.Loop_lang.Parse_error { file = None; line = 3; message = "bad" } in
  Alcotest.check category "Parse_error -> Parse" Error.Parse (cat pe)

let test_protect_and_boundary () =
  (match Error.protect ~stage:"test" (fun () -> 41 + 1) with
   | Ok v -> check_int "protect passes values" 42 v
   | Stdlib.Error e -> Alcotest.failf "unexpected failure: %s" (Error.to_string e));
  (match Error.protect ~stage:"test" ~loop:"l0" (fun () -> failwith "zoo") with
   | Ok _ -> Alcotest.fail "protect let a failure through"
   | Stdlib.Error e ->
     Alcotest.check category "classified" Error.Internal e.Error.category;
     Alcotest.(check (option string)) "loop attached" (Some "l0") e.Error.loop);
  match Error.boundary ~stage:"test" (fun () -> invalid_arg "graph") with
  | _ -> Alcotest.fail "boundary let a failure through"
  | exception Error.Error e ->
    Alcotest.check category "boundary re-raises classified" Error.Invalid_graph
      e.Error.category

(* ------------------------------------------------------------------ *)
(* Budgets.                                                            *)
(* ------------------------------------------------------------------ *)

let test_budget_meter () =
  check_bool "unlimited is unlimited" false (Budget.limited Budget.unlimited);
  let m = Budget.start Budget.unlimited in
  Budget.spend ~steps:1_000_000 m;
  Alcotest.(check (option string)) "unlimited never exceeds" None (Budget.exceeded m);
  let b = Budget.v ~max_steps:5 () in
  check_bool "step-limited" true (Budget.limited b);
  let m = Budget.start b in
  for _ = 1 to 5 do Budget.spend m done;
  Alcotest.(check (option string)) "at the limit" None (Budget.exceeded m);
  Budget.spend m;
  check_bool "over the limit" true (Budget.exceeded m <> None);
  check_int "steps accounted" 6 (Budget.steps_used m)

let test_scheduler_budget_exhaustion () =
  let ddg = Helpers.example_ddg () in
  let config = Helpers.example_config () in
  (match Ncdrf_sched.Modulo.schedule ~budget:(Budget.v ~max_steps:1 ()) config ddg with
   | _ -> Alcotest.fail "a 1-placement budget cannot schedule the example"
   | exception Error.Error e ->
     Alcotest.check category "budget exhausted" Error.Budget_exhausted e.Error.category;
     check_string "stage" "schedule" e.Error.stage;
     Alcotest.(check (option string)) "loop named" (Some (Ddg.name ddg)) e.Error.loop);
  (* The same loop schedules fine with the default (unlimited) budget. *)
  let sched = Ncdrf_sched.Modulo.schedule config ddg in
  Helpers.check_valid "unlimited budget" sched

let test_scheduler_infeasible_is_classified () =
  let ddg = Helpers.example_ddg () in
  let config = Helpers.example_config () in
  (* No II slack at all: the search range above MII is empty. *)
  match Ncdrf_sched.Modulo.schedule ~max_ii_slack:(-1) config ddg with
  | _ -> Alcotest.fail "empty II range scheduled"
  | exception Error.Error e ->
    Alcotest.check category "schedule infeasible" Error.Schedule_infeasible
      e.Error.category

(* ------------------------------------------------------------------ *)
(* Allocation dead-ends are typed, not failwith.                       *)
(* ------------------------------------------------------------------ *)

let test_alloc_infeasible () =
  let sched = Helpers.paper_schedule () in
  let lifetimes = Ncdrf_regalloc.Lifetime.of_schedule sched in
  check_bool "fixture has lifetimes" true (lifetimes <> []);
  (match Ncdrf_regalloc.Alloc.min_capacity ~upper:0 ~ii:1 lifetimes with
   | _ -> Alcotest.fail "capacity 0 allocated real lifetimes"
   | exception Error.Error e ->
     Alcotest.check category "min_capacity" Error.Alloc_infeasible e.Error.category;
     check_string "stage" "alloc" e.Error.stage);
  let globals, locals = Requirements.grouped_lifetimes sched in
  match Requirements.joint_requirement ~upper:0 ~ii:1 ~globals ~locals () with
  | _ -> Alcotest.fail "joint capacity 0 allocated real lifetimes"
  | exception Error.Error e ->
    Alcotest.check category "joint_requirement" Error.Alloc_infeasible e.Error.category

(* ------------------------------------------------------------------ *)
(* Spiller divergence is an outcome, not a hang or a raw exception.    *)
(* ------------------------------------------------------------------ *)

let test_spiller_divergence_terminates () =
  let ddg = Helpers.example_ddg () in
  let config = Helpers.example_config () in
  let requirement = Pipeline.requirement_of_model Model.Unified in
  (* Capacity 1 is unreachable; with the caps pulled in the spiller must
     give up quickly and report how far it got. *)
  let outcome =
    Ncdrf_spill.Spiller.run ~config ~requirement ~capacity:1 ~max_rounds:2
      ~max_ii_bumps:0 ddg
  in
  check_bool "does not fit" false outcome.Ncdrf_spill.Spiller.fits;
  check_bool "requirement still over" true (outcome.Ncdrf_spill.Spiller.requirement > 1);
  (match outcome.Ncdrf_spill.Spiller.error with
   | Some e ->
     Alcotest.check category "diverged" Error.Spill_diverged e.Error.category;
     check_string "stage" "spill" e.Error.stage;
     check_bool "round recorded" true (e.Error.round <> None)
   | None -> Alcotest.fail "unfit outcome without an error");
  (* The partial outcome is a usable schedule of the final graph. *)
  Helpers.check_valid "partial outcome" outcome.Ncdrf_spill.Spiller.schedule;
  (* A fitting run reports no error. *)
  let ok = Ncdrf_spill.Spiller.run ~config ~requirement ~capacity:64 ddg in
  check_bool "fits" true ok.Ncdrf_spill.Spiller.fits;
  check_bool "no error when fitting" true (ok.Ncdrf_spill.Spiller.error = None)

(* ------------------------------------------------------------------ *)
(* Fault injection.                                                    *)
(* ------------------------------------------------------------------ *)

let test_fault_spec_parsing () =
  (match Fault.parse "stage=schedule" with
   | Ok spec ->
     check_bool "round-trip names the stage" true
       (Helpers.contains (Fault.spec_to_string spec) "schedule")
   | Stdlib.Error msg -> Alcotest.failf "minimal spec rejected: %s" msg);
  (match Fault.parse "stage=spill,loop=fir.*,every=3" with
   | Ok _ -> ()
   | Stdlib.Error msg -> Alcotest.failf "full spec rejected: %s" msg);
  let rejected s =
    match Fault.parse s with
    | Ok _ -> Alcotest.failf "accepted bad spec %S" s
    | Stdlib.Error _ -> ()
  in
  rejected "stage=bogus";
  rejected "every=2";
  rejected "stage=spill,every=0";
  rejected "stage=spill,unknown=1";
  check_bool "schedule is a known stage" true (List.mem "schedule" Fault.stages)

let test_fault_selection_deterministic () =
  Fun.protect ~finally:Fault.disarm @@ fun () ->
  (match Fault.arm "stage=spill,loop=fir-.*" with
   | Ok () -> ()
   | Stdlib.Error msg -> Alcotest.failf "arm failed: %s" msg);
  check_bool "armed" true (Fault.armed ());
  check_bool "matching key fires" true (Fault.selects ~stage:"spill" ~key:"fir-8");
  check_bool "other stage does not" false (Fault.selects ~stage:"alloc" ~key:"fir-8");
  check_bool "regex is anchored" false (Fault.selects ~stage:"spill" ~key:"xfir-8");
  (match Fault.point ~stage:"spill" ~key:"fir-8" with
   | () -> Alcotest.fail "selected point did not raise"
   | exception Error.Error e ->
     Alcotest.check category "injected" Error.Injected e.Error.category;
     Alcotest.(check (option string)) "key is the loop" (Some "fir-8") e.Error.loop);
  Fault.point ~stage:"alloc" ~key:"fir-8";
  (* every=N is a pure function of the key: the fired set is identical
     across repeated sweeps whatever the evaluation order. *)
  (match Fault.arm "stage=spill,every=3" with
   | Ok () -> ()
   | Stdlib.Error msg -> Alcotest.failf "arm failed: %s" msg);
  let keys = List.init 60 (Printf.sprintf "loop-%02d") in
  let fired () = List.filter (fun k -> Fault.selects ~stage:"spill" ~key:k) keys in
  let first = fired () in
  check_bool "roughly 1 in 3" true (List.length first > 5 && List.length first < 40);
  Alcotest.(check (list string)) "same set on re-evaluation" first (fired ());
  Alcotest.(check (list string)) "same set reversed"
    first
    (List.rev (List.filter (fun k -> Fault.selects ~stage:"spill" ~key:k) (List.rev keys)));
  Fault.disarm ();
  check_bool "disarmed" false (Fault.armed ());
  Fault.point ~stage:"spill" ~key:"fir-8"

(* Injecting one fault removes exactly that point; every surviving
   loop's result is identical to the unfaulted run's. *)
let test_injection_isolates_the_faulted_point () =
  let config = Config.dual ~latency:3 in
  let loops =
    List.init 6 (fun i ->
        {
          Suite_stats.ddg =
            Ncdrf_workloads.Generator.generate Ncdrf_workloads.Generator.default
              ~seed:(1000 + i)
              ~name:(Printf.sprintf "gl%d" i);
          weight = 1.0;
        })
  in
  let project ms =
    List.map
      (fun m ->
        (Ddg.name m.Suite_stats.loop.Suite_stats.ddg, m.Suite_stats.requirement,
         m.Suite_stats.ii))
      ms
  in
  Artifact.clear_cache ();
  let baseline = project (Suite_stats.measure ~config ~model:Model.Unified loops) in
  check_int "all points compile unfaulted" 6 (List.length baseline);
  Fun.protect ~finally:Fault.disarm @@ fun () ->
  (match Fault.arm "stage=schedule,loop=gl2" with
   | Ok () -> ()
   | Stdlib.Error msg -> Alcotest.failf "arm failed: %s" msg);
  Artifact.clear_cache ();
  let failures = Failures.create () in
  let survivors =
    project (Suite_stats.measure ~failures ~config ~model:Model.Unified loops)
  in
  check_int "one point recorded" 1 (Failures.count failures);
  (match Failures.list failures with
   | [ e ] ->
     Alcotest.check category "classified as injected" Error.Injected e.Error.category;
     Alcotest.(check (option string)) "the faulted loop" (Some "gl2") e.Error.loop
   | _ -> Alcotest.fail "expected exactly one failure");
  Alcotest.(check (list (triple string int int)))
    "survivors identical to the unfaulted run"
    (List.filter (fun (name, _, _) -> name <> "gl2") baseline)
    survivors

(* ------------------------------------------------------------------ *)
(* Failure collector policies.                                         *)
(* ------------------------------------------------------------------ *)

let some_failure ?(loop = "l") category =
  Error.make ~loop ~stage:"pipeline" category "synthetic"

let test_failures_keep_going () =
  let f = Failures.create () in
  Failures.record f (some_failure ~loop:"a" Error.Internal);
  Failures.record f (some_failure ~loop:"b" Error.Injected);
  Failures.record f (some_failure ~loop:"c" Error.Injected);
  check_int "all recorded" 3 (Failures.count f);
  Alcotest.(check (list string)) "record order"
    [ "a"; "b"; "c" ]
    (List.filter_map (fun e -> e.Error.loop) (Failures.list f));
  Alcotest.(check (list (pair string int)))
    "per-category counts"
    [ ("injected", 2); ("internal", 1) ]
    (Failures.by_category f);
  match Failures.to_csv_rows f with
  | header :: rows ->
    Alcotest.(check (list string)) "csv header"
      [ "loop"; "stage"; "category"; "ii"; "round"; "message" ]
      header;
    check_int "one row per failure" 3 (List.length rows)
  | [] -> Alcotest.fail "no csv header"

let test_failures_abort_policies () =
  let f = Failures.create ~fail_fast:true () in
  (match Failures.record f (some_failure Error.Internal) with
   | () -> Alcotest.fail "fail-fast did not abort"
   | exception Failures.Abort { recorded; reason; _ } ->
     check_int "aborts on the first" 1 recorded;
     check_string "reason" "fail-fast" reason);
  let f = Failures.create ~max_failures:2 () in
  Failures.record f (some_failure Error.Internal);
  Failures.record f (some_failure Error.Internal);
  match Failures.record f (some_failure Error.Internal) with
  | () -> Alcotest.fail "max-failures did not abort"
  | exception Failures.Abort { recorded; reason; _ } ->
    check_int "aborts past the threshold" 3 recorded;
    check_bool "reason names the limit" true (Helpers.contains reason "max-failures")

let test_pool_try_map_exn_preserves_exceptions () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let input = List.init 10 Fun.id in
      let label i = Printf.sprintf "item-%d" i in
      let f i = if i = 4 then raise (Error.Error (some_failure ~loop:"x" Error.Injected)) else i in
      let outcomes = Pool.try_map_exn pool ~label f input in
      check_int "all items settle" 10 (List.length outcomes);
      List.iteri
        (fun i outcome ->
          match outcome with
          | Ok v -> check_int "value" i v
          | Stdlib.Error (l, exn) ->
            check_int "only item 4 fails" 4 i;
            check_string "label preserved" (label 4) l;
            (match exn with
             | Error.Error e ->
               Alcotest.check category "exception value preserved" Error.Injected
                 e.Error.category
             | _ -> Alcotest.fail "exception identity lost across the pool"))
        outcomes)

(* ------------------------------------------------------------------ *)
(* Diagnostics carry their source position.                            *)
(* ------------------------------------------------------------------ *)

let test_parse_error_names_the_file () =
  let text = "loop broken\n  r1 = wat r2\nend\n" in
  (match Ncdrf_ir.Loop_lang.parse_string text with
   | _ -> Alcotest.fail "garbage parsed"
   | exception Ncdrf_ir.Loop_lang.Parse_error { file; _ } ->
     Alcotest.(check (option string)) "no file for strings" None file);
  let path = Filename.temp_file "ncdrf-robust" ".loop" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  output_string oc text;
  close_out oc;
  match Ncdrf_ir.Loop_lang.parse_file path with
  | _ -> Alcotest.fail "garbage parsed from file"
  | exception Ncdrf_ir.Loop_lang.Parse_error { file; line; _ } ->
    Alcotest.(check (option string)) "file recorded" (Some path) file;
    check_bool "line recorded" true (line >= 1)

let test_csv_error_names_the_position () =
  match Ncdrf_report.Csv.parse_string "a,b\nc,\"oops" with
  | _ -> Alcotest.fail "unterminated quote accepted"
  | exception Ncdrf_report.Csv.Parse_error msg ->
    check_bool "position reported" true
      (Helpers.contains msg "opened at line 2, column 3")

let test_metrics_json_write_is_atomic () =
  let module T = Ncdrf_telemetry.Telemetry in
  let path = Filename.temp_file "ncdrf-metrics" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  (* Overwriting pre-existing garbage must leave only valid content and
     no temp droppings next to it. *)
  let oc = open_out path in
  output_string oc "{ truncated garbage";
  close_out oc;
  T.write_json ~path (T.Json.Obj [ ("ok", T.Json.Int 1) ]);
  let ic = open_in path in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  check_bool "replaced with valid json" true (Helpers.contains content "\"ok\": 1");
  check_bool "no garbage left" false (Helpers.contains content "truncated");
  let dir = Filename.dirname path in
  let base = Filename.basename path in
  let droppings =
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f -> f <> base && Helpers.contains f base)
  in
  Alcotest.(check (list string)) "no temp files left behind" [] droppings

(* ------------------------------------------------------------------ *)
(* Property: the pipeline never leaks a raw exception.                 *)
(* ------------------------------------------------------------------ *)

let prop_pipeline_failures_are_classified =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 20_000) in
  QCheck.Test.make ~count:12 ~name:"random loops fail classified or not at all" arb
    (fun seed ->
      let ddg =
        Ncdrf_workloads.Generator.generate Ncdrf_workloads.Generator.default ~seed
          ~name:(Printf.sprintf "q%d" seed)
      in
      let config = Config.dual ~latency:3 in
      List.for_all
        (fun model ->
          List.for_all
            (fun capacity ->
              match Pipeline.run ~config ~model ?capacity ddg with
              | stats ->
                (* Soft degradation keeps its invariant: an error is
                   present exactly when the loop does not fit. *)
                stats.Pipeline.fits = (stats.Pipeline.error = None)
              | exception Error.Error _ -> true
              | exception e ->
                QCheck.Test.fail_reportf "raw exception leaked: %s"
                  (Printexc.to_string e))
            [ None; Some 6 ])
        Model.all)

let suite =
  [
    Alcotest.test_case "category names are stable keys" `Quick test_category_names;
    Alcotest.test_case "legacy exceptions classify" `Quick test_classify_builtins;
    Alcotest.test_case "protect and boundary contain" `Quick test_protect_and_boundary;
    Alcotest.test_case "budget meter accounts steps" `Quick test_budget_meter;
    Alcotest.test_case "scheduler budget exhaustion is typed" `Quick
      test_scheduler_budget_exhaustion;
    Alcotest.test_case "scheduler infeasibility is typed" `Quick
      test_scheduler_infeasible_is_classified;
    Alcotest.test_case "allocation dead-ends are typed" `Quick test_alloc_infeasible;
    Alcotest.test_case "spiller divergence terminates with a partial outcome" `Quick
      test_spiller_divergence_terminates;
    Alcotest.test_case "fault spec parsing" `Quick test_fault_spec_parsing;
    Alcotest.test_case "fault selection is deterministic" `Quick
      test_fault_selection_deterministic;
    Alcotest.test_case "injection isolates the faulted point" `Quick
      test_injection_isolates_the_faulted_point;
    Alcotest.test_case "failure collector keeps going" `Quick test_failures_keep_going;
    Alcotest.test_case "fail-fast and max-failures abort" `Quick
      test_failures_abort_policies;
    Alcotest.test_case "pool try_map_exn preserves exception values" `Quick
      test_pool_try_map_exn_preserves_exceptions;
    Alcotest.test_case "loop parse errors name the file" `Quick
      test_parse_error_names_the_file;
    Alcotest.test_case "csv parse errors name the position" `Quick
      test_csv_error_names_the_position;
    Alcotest.test_case "metrics json writes are atomic" `Quick
      test_metrics_json_write_is_atomic;
    QCheck_alcotest.to_alcotest prop_pipeline_failures_are_classified;
  ]
