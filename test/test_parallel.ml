(* The parallel suite runner and its guard rails: pool determinism and
   fault isolation, parallel-vs-serial identity of suite statistics,
   suite generation determinism, and regression tests for the swap
   counting, candidate bucketing, suite-cache and CSV fixes that ride
   along with the runner. *)

open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched
open Ncdrf_core
module Pool = Ncdrf_parallel.Pool

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Pool.                                                               *)
(* ------------------------------------------------------------------ *)

let test_pool_map_preserves_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let input = List.init 200 Fun.id in
      let out = Pool.map pool (fun i -> i * i) input in
      Alcotest.(check (list int)) "squares in input order"
        (List.map (fun i -> i * i) input)
        out;
      (* Reusing the pool for a second map must work. *)
      check_int "second map" 100 (List.length (Pool.map pool succ (List.init 100 Fun.id))))

let test_pool_serial_equivalence () =
  Pool.with_pool ~jobs:1 (fun pool ->
      check_bool "jobs<=1 is serial" true (Pool.is_serial pool);
      let input = [ 3; 1; 4; 1; 5 ] in
      Alcotest.(check (list int)) "serial map" (List.map succ input)
        (Pool.map pool succ input))

let test_pool_exception_capture () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let input = List.init 20 Fun.id in
      let label i = Printf.sprintf "loop-%02d" i in
      let f i = if i = 7 || i = 13 then failwith "boom" else i in
      (* try_map: every non-failing item still completes. *)
      let outcomes = Pool.try_map pool ~label f input in
      check_int "all items settle" 20 (List.length outcomes);
      List.iteri
        (fun i outcome ->
          match outcome with
          | Ok v -> check_int "value" i v
          | Error (l, _) ->
            check_bool "only the failing items error" true (i = 7 || i = 13);
            Alcotest.(check string) "failing loop is named" (label i) l)
        outcomes;
      (* map: raises after the run, naming the culprits in order. *)
      match Pool.map pool ~label f input with
      | _ -> Alcotest.fail "expected Worker_failure"
      | exception Pool.Worker_failure { failures } ->
        Alcotest.(check (list string)) "failure labels" [ "loop-07"; "loop-13" ]
          (List.map fst failures))

(* ------------------------------------------------------------------ *)
(* Guard: parallel suite stats are identical to serial ones.           *)
(* ------------------------------------------------------------------ *)

let fixed_suite () =
  List.map
    (fun e ->
      { Suite_stats.ddg = e.Ncdrf_workloads.Suite.ddg;
        weight = e.Ncdrf_workloads.Suite.iterations })
    (Ncdrf_workloads.Suite.full ~size:40 ~seed:2025 ())

let render_performance (p : Suite_stats.performance) =
  (* %h prints the exact bit pattern of the floats, so equality of the
     rendering is byte-for-byte equality of the stats. *)
  Printf.sprintf "relative=%h density=%h spills=%d loops_spilled=%d unfit=%d"
    p.Suite_stats.relative p.Suite_stats.density p.Suite_stats.total_spills
    p.Suite_stats.loops_spilled p.Suite_stats.unfit

let test_parallel_matches_serial () =
  let loops = fixed_suite () in
  let config = Config.dual ~latency:3 in
  Pool.with_pool ~jobs:4 (fun pool ->
      List.iter
        (fun model ->
          let serial = Suite_stats.measure ~config ~model loops in
          let parallel = Suite_stats.measure ~pool ~config ~model loops in
          let project ms =
            List.map
              (fun m ->
                (Ddg.name m.Suite_stats.loop.Suite_stats.ddg, m.Suite_stats.requirement,
                 m.Suite_stats.ii))
              ms
          in
          Alcotest.(check (list (triple string int int)))
            ("measure: " ^ Model.to_string model)
            (project serial) (project parallel))
        Model.all;
      List.iter
        (fun model ->
          let serial = Suite_stats.performance ~config ~model ~capacity:32 loops in
          let parallel = Suite_stats.performance ~pool ~config ~model ~capacity:32 loops in
          Alcotest.(check string)
            ("performance: " ^ Model.to_string model)
            (render_performance serial) (render_performance parallel))
        Model.all)

(* ------------------------------------------------------------------ *)
(* Suite generation determinism.                                       *)
(* ------------------------------------------------------------------ *)

let test_suite_generation_deterministic () =
  (* The named-kernel base is ~55 loops; use a size comfortably above it
     so the seeded generated slice is non-empty. *)
  let a = Ncdrf_workloads.Suite.full ~size:80 ~seed:7 () in
  let b = Ncdrf_workloads.Suite.full ~size:80 ~seed:7 () in
  check_int "same length" (List.length a) (List.length b);
  List.iter2
    (fun (x : Ncdrf_workloads.Suite.entry) (y : Ncdrf_workloads.Suite.entry) ->
      Alcotest.(check string) "name" (Ddg.name x.ddg) (Ddg.name y.ddg);
      Alcotest.(check (float 0.0)) "weight" x.iterations y.iterations;
      check_int "nodes" (Ddg.num_nodes x.ddg) (Ddg.num_nodes y.ddg);
      check_bool "node lists" true (Ddg.nodes x.ddg = Ddg.nodes y.ddg);
      check_bool "edge lists" true (Ddg.edges x.ddg = Ddg.edges y.ddg))
    a b;
  (* A different seed must actually change the generated slice. *)
  let c = Ncdrf_workloads.Suite.full ~size:80 ~seed:8 () in
  check_bool "different seed differs" true
    (List.exists2 (fun (x : Ncdrf_workloads.Suite.entry) y ->
         Ddg.edges x.ddg <> Ddg.edges y.Ncdrf_workloads.Suite.ddg)
       a c)

(* ------------------------------------------------------------------ *)
(* count_swaps regression (odd migrations must not truncate).          *)
(* ------------------------------------------------------------------ *)

let reclustered sched changes =
  let ddg = sched.Schedule.ddg in
  let placements =
    Array.init (Ddg.num_nodes ddg) (fun v ->
        { Schedule.cycle = Schedule.cycle sched v; cluster = Schedule.cluster sched v })
  in
  List.iter
    (fun (label, cluster) ->
      let node = Helpers.node_by_label ddg label in
      placements.(node.Ddg.id) <- { (placements.(node.Ddg.id)) with Schedule.cluster })
    changes;
  Schedule.make ~config:sched.Schedule.config ~ii:(Schedule.ii sched) ~placements ddg

let test_count_swaps_pairs_only () =
  let before = Helpers.paper_schedule () in
  (* A true swap: A4 goes 0 -> 1 while A6 goes 1 -> 0. *)
  let swapped = reclustered before [ ("A4", 1); ("A6", 0) ] in
  check_int "one exchanged pair" 1 (Pipeline.count_swaps Model.Swapped before swapped);
  (* Three one-sided migrations, no partner: not a swap.  The old
     [changed / 2] silently truncated this to 1. *)
  let migrated = reclustered before [ ("L1", 1); ("L2", 1); ("M3", 1) ] in
  check_int "one-sided migrations are not swaps" 0
    (Pipeline.count_swaps Model.Swapped before migrated);
  (* A pair plus a lone migration counts the pair only. *)
  let mixed = reclustered before [ ("A4", 1); ("A6", 0); ("M5", 0) ] in
  check_int "pair + lone migration" 1 (Pipeline.count_swaps Model.Swapped before mixed);
  (* Other models never report swaps. *)
  check_int "unified reports 0" 0 (Pipeline.count_swaps Model.Unified before swapped)

(* ------------------------------------------------------------------ *)
(* Swap.candidates: bucketed scan == the old all-pairs scan.           *)
(* ------------------------------------------------------------------ *)

(* The pre-bucketing reference implementation, kept verbatim. *)
let naive_candidates sched =
  let ddg = sched.Schedule.ddg in
  let ii = Schedule.ii sched in
  let nodes = Array.of_list (Ddg.nodes ddg) in
  let n = Array.length nodes in
  let pairs = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = nodes.(i) and b = nodes.(j) in
      let same_class = Opcode.fu_class a.Ddg.opcode = Opcode.fu_class b.Ddg.opcode in
      let same_slot =
        (Schedule.cycle sched a.Ddg.id - Schedule.cycle sched b.Ddg.id) mod ii = 0
      in
      let different_cluster =
        Schedule.cluster sched a.Ddg.id <> Schedule.cluster sched b.Ddg.id
      in
      if same_class && same_slot && different_cluster then
        pairs := (a.Ddg.id, b.Ddg.id) :: !pairs
    done
  done;
  List.rev !pairs

let test_candidates_match_naive_scan () =
  let entries = Ncdrf_workloads.Suite.full ~size:45 ~seed:11 () in
  let configs = [ Config.dual ~latency:3; Config.dual ~latency:6 ] in
  let checked = ref 0 in
  List.iter
    (fun config ->
      List.iter
        (fun (e : Ncdrf_workloads.Suite.entry) ->
          let sched = Modulo.schedule config e.ddg in
          let expected = naive_candidates sched in
          let got = Swap.candidates sched in
          incr checked;
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "%s on %s" (Ddg.name e.ddg) config.Config.name)
            expected got)
        entries)
    configs;
  check_bool "checked a real sample" true (!checked >= 80);
  (* The paper example has a known candidate set of 4. *)
  let sched = Helpers.paper_schedule () in
  Alcotest.(check (list (pair int int))) "paper example" (naive_candidates sched)
    (Swap.candidates sched)

(* ------------------------------------------------------------------ *)
(* CSV: atomic write and quoting round-trip.                           *)
(* ------------------------------------------------------------------ *)

let test_csv_round_trip () =
  let rows =
    [
      [ "name"; "value"; "note" ];
      [ "plain"; "1"; "no special characters" ];
      [ "comma,inside"; "quote\"inside"; "newline\ninside" ];
      [ "both\",\nat once"; ""; "  leading and trailing  " ];
      [ "crlf\r\ninside"; "\"fully quoted\""; "," ];
    ]
  in
  let path = Filename.temp_file "ncdrf-csv" ".csv" in
  Ncdrf_report.Csv.write path rows;
  let back = Ncdrf_report.Csv.read path in
  Alcotest.(check (list (list string))) "write/read round-trip" rows back;
  (* Overwrite must replace the contents atomically (rename, no
     leftover temp files in the directory). *)
  let small = [ [ "only"; "row" ] ] in
  Ncdrf_report.Csv.write path small;
  Alcotest.(check (list (list string))) "overwrite replaces" small
    (Ncdrf_report.Csv.read path);
  let dir = Filename.dirname path in
  let leftovers =
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f ->
           String.length f >= 4 && Filename.check_suffix f ".tmp"
           && String.length f > 4
           && String.sub f 0 4 = ".csv")
  in
  Alcotest.(check (list string)) "no temp files left behind" [] leftovers;
  Sys.remove path

let test_csv_parse_edge_cases () =
  let open Ncdrf_report.Csv in
  Alcotest.(check (list (list string))) "empty input" [] (parse_string "");
  Alcotest.(check (list (list string))) "trailing newline, no ghost row"
    [ [ "a"; "b" ] ]
    (parse_string "a,b\n");
  Alcotest.(check (list (list string))) "trailing empty cell"
    [ [ "a"; "" ] ]
    (parse_string "a,\n");
  Alcotest.(check (list (list string))) "crlf rows"
    [ [ "a" ]; [ "b" ] ]
    (parse_string "a\r\nb\r\n");
  (match parse_string "\"unterminated" with
   | exception Parse_error _ -> ()
   | _ -> Alcotest.fail "unterminated quote accepted")

(* ------------------------------------------------------------------ *)
(* Telemetry.                                                          *)
(* ------------------------------------------------------------------ *)

let test_telemetry_spans_and_counters () =
  let module T = Ncdrf_telemetry.Telemetry in
  T.enable true;
  T.reset ();
  Fun.protect ~finally:(fun () -> T.enable false) (fun () ->
      check_int "fresh counter" 0 (T.counter "test.c");
      T.incr "test.c";
      T.incr ~by:3 "test.c";
      check_int "counter accumulates" 4 (T.counter "test.c");
      let v = T.time "test.span" (fun () -> 41 + 1) in
      check_int "time returns the thunk's value" 42 v;
      (match List.assoc_opt "test.span" (T.spans ()) with
       | Some s ->
         check_int "span count" 1 s.T.count;
         check_bool "span total >= 0" true (s.T.total_s >= 0.0)
       | None -> Alcotest.fail "span not recorded");
      (* Counters recorded from worker domains land in the registry. *)
      Pool.with_pool ~jobs:4 (fun pool ->
          ignore (Pool.map pool (fun _ -> T.incr "test.domains") (List.init 50 Fun.id)));
      check_int "domain-side increments" 50 (T.counter "test.domains");
      let json = T.Json.to_string (T.to_json ()) in
      check_bool "json mentions the span" true (Helpers.contains json "test.span");
      T.reset ();
      check_int "reset clears" 0 (T.counter "test.c");
      (* Monotonic clock never goes backwards. *)
      let a = T.now () in
      let b = T.now () in
      check_bool "monotonic" true (b >= a))

let suite =
  [
    Alcotest.test_case "pool map preserves input order" `Quick test_pool_map_preserves_order;
    Alcotest.test_case "pool with jobs=1 is serial" `Quick test_pool_serial_equivalence;
    Alcotest.test_case "pool captures per-item failures" `Quick test_pool_exception_capture;
    Alcotest.test_case "parallel suite stats == serial (guard)" `Quick
      test_parallel_matches_serial;
    Alcotest.test_case "suite generation is deterministic" `Quick
      test_suite_generation_deterministic;
    Alcotest.test_case "count_swaps counts exchanged pairs only" `Quick
      test_count_swaps_pairs_only;
    Alcotest.test_case "bucketed swap candidates == all-pairs scan" `Quick
      test_candidates_match_naive_scan;
    Alcotest.test_case "csv atomic write round-trips" `Quick test_csv_round_trip;
    Alcotest.test_case "csv parser edge cases" `Quick test_csv_parse_edge_cases;
    Alcotest.test_case "telemetry spans and counters" `Quick
      test_telemetry_spans_and_counters;
  ]
