(* The persistent on-disk artifact store and the sharded-run machinery
   built around it: entry round-trips (binary keys included), corrupted
   or truncated entries degrading to misses, stale temp-file
   reclamation, LRU size-budget eviction, the second-process
   determinism guard (uncached == cold == disk-warm, byte-identical),
   the content-hash shard partition, and the shard merge (ledgers and
   metrics). *)

open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched
open Ncdrf_core
module Store = Ncdrf_cache.Store
module Json = Ncdrf_telemetry.Json
module Ledger = Ncdrf_telemetry.Ledger
module Merge = Ncdrf_telemetry.Merge
module Generator = Ncdrf_workloads.Generator

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* A fresh store directory per test; the OS temp dir is cleaned up
   explicitly so reruns never see a previous run's entries. *)
let with_store_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ncdrf-test-store.%d.%d" (Unix.getpid ()) (Random.bits ()))
  in
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
    | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* Every .art entry file under the store root, sorted for determinism. *)
let entry_files dir =
  let acc = ref [] in
  let walk d =
    match Sys.readdir d with
    | entries ->
      Array.iter
        (fun e ->
          let p = Filename.concat d e in
          if Sys.is_directory p then ()
          else if Filename.check_suffix p ".art" then acc := p :: !acc)
        entries
    | exception Sys_error _ -> ()
  in
  (match Sys.readdir dir with
  | entries -> Array.iter (fun e ->
      let p = Filename.concat dir e in
      if Sys.is_directory p then walk p)
      entries
  | exception Sys_error _ -> ());
  List.sort String.compare !acc

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_raw path content =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc content)

(* ------------------------------------------------------------------ *)
(* Round trips.                                                        *)
(* ------------------------------------------------------------------ *)

let test_store_roundtrip () =
  with_store_dir (fun dir ->
      let t = Store.open_store ~dir () in
      (* Keys carry NUL separators and digests with arbitrary bytes in
         real use; payloads are arbitrary too. *)
      let cases =
        [ ("plain", "payload");
          ("nul\x00key\x00#mii", "42");
          ("newline\nkey", "line1\nline2\n");
          ("empty-payload", "");
          (String.make 300 '\xfe', String.make 5000 '\x00') ]
      in
      List.iter (fun (k, v) -> Store.save t ~key:k v) cases;
      List.iter
        (fun (k, v) ->
          match Store.load t ~key:k ~decode:Option.some with
          | Some got -> check_string "round-trips" v got
          | None -> Alcotest.failf "key %S missed after save" (String.escaped k))
        cases;
      check_bool "absent key misses" true
        (Store.load t ~key:"never-saved" ~decode:Option.some = None);
      (* A decode that rejects the payload is a miss, and the useless
         entry is unlinked so it stops masking the slot. *)
      Store.save t ~key:"stale-format" "v0-payload";
      check_bool "rejecting decode is a miss" true
        (Store.load t ~key:"stale-format" ~decode:(fun _ -> None) = None);
      check_bool "rejected entry unlinked" true
        (Store.load t ~key:"stale-format" ~decode:Option.some = None);
      let s = Store.stats t in
      check_int "writes counted" (List.length cases + 1) s.Store.writes;
      check_int "hits counted" (List.length cases) s.Store.hits;
      check_int "misses counted" 3 s.Store.misses;
      check_bool "bytes accounted" true (s.Store.bytes > 0);
      (* A second handle on the same directory sees the same entries —
         that is the whole point of the store. *)
      let t2 = Store.open_store ~dir () in
      List.iter
        (fun (k, v) ->
          check_bool "second process hits" true
            (Store.load t2 ~key:k ~decode:Option.some = Some v))
        cases)

(* ------------------------------------------------------------------ *)
(* Corruption degrades to a miss — never an exception.                 *)
(* ------------------------------------------------------------------ *)

let prop_corrupt_entry_is_miss =
  let arb =
    QCheck.make
      ~print:(fun (seed, cut, flip) ->
        Printf.sprintf "seed=%d cut=%d flip=%d" seed cut flip)
      QCheck.Gen.(triple (int_bound 10_000) (int_bound 10_000) (int_bound 10_000))
  in
  QCheck.Test.make ~count:40 ~name:"corrupted or truncated entry is a miss" arb
    (fun (seed, cut, flip) ->
      with_store_dir (fun dir ->
          let t = Store.open_store ~dir () in
          let key = Printf.sprintf "corrupt\x00%d\x00#raw" seed in
          let payload = Printf.sprintf "3|%d,0|%d,1|%d,0" seed (seed + 1) (seed * 7) in
          Store.save t ~key payload;
          let path =
            match entry_files dir with
            | [ p ] -> p
            | files -> Alcotest.failf "expected 1 entry, found %d" (List.length files)
          in
          let raw = read_file path in
          let n = String.length raw in
          (* Either truncate at an arbitrary offset or flip one byte. *)
          (if cut mod 2 = 0 then write_raw path (String.sub raw 0 (cut mod n))
           else begin
             let b = Bytes.of_string raw in
             let i = flip mod n in
             Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5b));
             write_raw path (Bytes.to_string b)
           end);
          let missed = Store.load t ~key ~decode:Option.some = None in
          (* The corrupt entry was unlinked, so a recompute republishes
             and the slot works again. *)
          Store.save t ~key payload;
          let recovered = Store.load t ~key ~decode:Option.some = Some payload in
          missed && recovered))

(* ------------------------------------------------------------------ *)
(* Stale temp reclamation.                                             *)
(* ------------------------------------------------------------------ *)

let test_stale_tmp_reclaim () =
  with_store_dir (fun dir ->
      let t = Store.open_store ~dir () in
      Store.save t ~key:"live" "entry";
      let stale = Filename.concat dir ".store-dead.tmp" in
      let fresh = Filename.concat dir ".store-racing.tmp" in
      write_raw stale "half-written";
      write_raw fresh "half-written";
      (* Age only the stale one past the probe threshold. *)
      Unix.utimes stale 1000.0 1000.0;
      check_int "one stale temp reclaimed" 1 (Store.reclaim_stale t);
      check_bool "old temp removed" false (Sys.file_exists stale);
      check_bool "young temp presumed live" true (Sys.file_exists fresh);
      check_bool "entries untouched" true
        (Store.load t ~key:"live" ~decode:Option.some = Some "entry");
      (* Reopening the directory reclaims killed-process litter too. *)
      write_raw stale "half-written";
      Unix.utimes stale 1000.0 1000.0;
      let _t2 = Store.open_store ~dir () in
      check_bool "open_store reclaims stale temps" false (Sys.file_exists stale))

(* ------------------------------------------------------------------ *)
(* Size-budget eviction, least recently used first.                    *)
(* ------------------------------------------------------------------ *)

let test_eviction_lru () =
  with_store_dir (fun dir ->
      let payload = String.make 4096 'x' in
      let t = Store.open_store ~max_bytes:(3 * 4096) ~dir () in
      Store.save t ~key:"old" payload;
      (* Age the first entry so the LRU order is unambiguous even when
         both writes land in the same clock tick. *)
      (match entry_files dir with
      | [ p ] -> Unix.utimes p 1000.0 1000.0
      | _ -> Alcotest.fail "expected one entry");
      Store.save t ~key:"young" payload;
      (* Two ~4k entries fit a 12k budget; the third pushes past it and
         the sweep must evict the oldest. *)
      Store.save t ~key:"newest" payload;
      Store.sweep t;
      check_bool "oldest evicted" true
        (Store.load t ~key:"old" ~decode:Option.some = None);
      check_bool "recent entries survive" true
        (Store.load t ~key:"newest" ~decode:Option.some = Some payload);
      let s = Store.stats t in
      check_bool "evictions counted" true (s.Store.evictions > 0);
      check_bool "resident size within budget" true (s.Store.bytes <= 3 * 4096))

(* ------------------------------------------------------------------ *)
(* Second-process determinism guard: uncached == cold == disk-warm.    *)
(* ------------------------------------------------------------------ *)

let fixed_loops () =
  List.map
    (fun seed -> Generator.generate Generator.default ~seed ~name:(Printf.sprintf "s%d" seed))
    [ 11; 23; 35; 47; 59; 71 ]

let render_stats (st : Pipeline.stats) =
  let sched = st.Pipeline.schedule in
  let placements =
    String.concat ";"
      (List.init (Ddg.num_nodes sched.Schedule.ddg) (fun v ->
           Printf.sprintf "%d,%d" (Schedule.cycle sched v) (Schedule.cluster sched v)))
  in
  Printf.sprintf "%s %s mii=%d ii=%d req=%d spilled=%d density=%h swaps=%d [%s]"
    st.Pipeline.name
    (Model.to_string st.Pipeline.model)
    st.Pipeline.mii st.Pipeline.ii st.Pipeline.requirement st.Pipeline.spilled
    st.Pipeline.density st.Pipeline.swaps placements

let test_disk_warm_determinism () =
  with_store_dir (fun dir ->
      let config = Config.dual ~latency:6 in
      let snapshot () =
        List.concat_map
          (fun ddg ->
            List.concat_map
              (fun model ->
                [ render_stats (Pipeline.run ~config ~model ddg);
                  render_stats (Pipeline.run ~config ~model ~capacity:24 ddg) ])
              Model.all)
          (fixed_loops ())
      in
      let saved = Store.ambient () in
      Fun.protect
        ~finally:(fun () ->
          Store.set_ambient saved;
          Artifact.clear_cache ())
        (fun () ->
          (* Reference: no store, no memory cache. *)
          Store.set_ambient None;
          Artifact.set_cache_enabled false;
          let uncached = snapshot () in
          Artifact.set_cache_enabled true;
          (* Cold process: empty store, empty memory cache. *)
          Artifact.clear_cache ();
          Store.set_ambient (Some (Store.open_store ~dir ()));
          let cold = snapshot () in
          (* Warm process: fresh memory cache and a fresh handle on the
             populated directory — everything replays from disk. *)
          Artifact.clear_cache ();
          let warm_store = Store.open_store ~dir () in
          Store.set_ambient (Some warm_store);
          let warm = snapshot () in
          Alcotest.(check (list string)) "cold == uncached" uncached cold;
          Alcotest.(check (list string)) "disk-warm == uncached" uncached warm;
          let s = Store.stats warm_store in
          check_bool "warm process replayed from disk" true (s.Store.hits > 0);
          check_int "warm process missed nothing" 0 s.Store.misses;
          check_int "warm process rewrote nothing" 0 s.Store.writes))

(* ------------------------------------------------------------------ *)
(* Shard partition.                                                    *)
(* ------------------------------------------------------------------ *)

let shard_loops () =
  List.map
    (fun seed ->
      { Suite_stats.ddg =
          Generator.generate Generator.default ~seed ~name:(Printf.sprintf "p%d" seed);
        weight = float_of_int (seed + 1) })
    (List.init 24 Fun.id)

let test_shard_partition () =
  let loops = shard_loops () in
  let name (l : Suite_stats.workload) = Ddg.name l.Suite_stats.ddg in
  List.iter
    (fun count ->
      let shards =
        List.init count (fun index -> Suite_stats.shard ~index ~count loops)
      in
      (* Union of the shards is the input, order preserved within each,
         and no loop lands in two shards. *)
      let total = List.concat_map (fun s -> List.map name s) shards in
      check_int
        (Printf.sprintf "union of %d shards covers the suite" count)
        (List.length loops) (List.length total);
      check_int
        (Printf.sprintf "%d shards are disjoint" count)
        (List.length loops)
        (List.length (List.sort_uniq String.compare total));
      (* The partition is a pure function of loop content. *)
      List.iteri
        (fun index s ->
          Alcotest.(check (list string))
            (Printf.sprintf "shard %d/%d deterministic" index count)
            (List.map name s)
            (List.map name (Suite_stats.shard ~index ~count loops)))
        shards)
    [ 1; 2; 3; 5 ];
  Alcotest.(check (list string)) "count = 1 is the identity"
    (List.map name loops)
    (List.map name (Suite_stats.shard ~index:0 ~count:1 loops));
  let invalid index count =
    match Suite_stats.shard ~index ~count loops with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  check_bool "negative index rejected" true (invalid (-1) 2);
  check_bool "index >= count rejected" true (invalid 2 2);
  check_bool "count = 0 rejected" true (invalid 0 0)

(* ------------------------------------------------------------------ *)
(* Merging shard outputs.                                              *)
(* ------------------------------------------------------------------ *)

let record ~label ~loop ~config ~total_ns =
  {
    Ledger.label;
    request = "";
    loop;
    config;
    fp = "00000000";
    models = "ncdrf";
    capacity = Some 32;
    clusters = Some 2;
    mii = Some 3;
    ii = Some 4;
    rounds = None;
    spilled = None;
    requirement = Some 17;
    maxlive = None;
    spill_full = None;
    spill_incremental = None;
    cache_hits = 2;
    cache_misses = 1;
    disk_hits = 1;
    disk_misses = 0;
    stages = [ ("alloc", 5); ("schedule", 9) ];
    total_ns;
    ok = true;
    error = None;
  }

let test_merge_ledgers () =
  let a = record ~label:"fig8" ~loop:"zeta" ~config:"dual" ~total_ns:10 in
  let b = record ~label:"fig8" ~loop:"alpha" ~config:"dual" ~total_ns:20 in
  let c = record ~label:"fig6" ~loop:"mid" ~config:"dual" ~total_ns:30 in
  (* The unsharded writer sorts by identity; merging the two shards must
     land on exactly that order. *)
  let unsharded = List.sort Ledger.compare_records [ a; b; c ] in
  let merged = Merge.merge_ledgers [ [ c ]; [ a; b ] ] in
  check_string "merged shard order == unsharded order"
    (Ledger.to_jsonl unsharded) (Ledger.to_jsonl merged);
  let stripped = Merge.strip_record_timing a in
  check_int "total_ns zeroed" 0 stripped.Ledger.total_ns;
  check_bool "stage durations zeroed" true
    (List.for_all (fun (_, ns) -> ns = 0) stripped.Ledger.stages);
  check_string "identity untouched" a.Ledger.loop stripped.Ledger.loop;
  check_int "counts untouched" a.Ledger.disk_hits stripped.Ledger.disk_hits

let suite_metrics ~jobs ~wall_s ~loops ~hits =
  Json.Obj
    [
      ("schema", Json.String "ncdrf-suite-metrics/1");
      ("jobs", Json.Int jobs);
      ("suite_size", Json.Int 60);
      ("wall_s", Json.Float wall_s);
      ("loops_per_sec", Json.Float (float_of_int loops /. wall_s));
      ( "telemetry",
        Json.Obj
          [
            ( "spans",
              Json.Obj
                [ ( "schedule",
                    Json.Obj
                      [ ("total_s", Json.Float wall_s); ("count", Json.Int loops);
                        ("max_s", Json.Float 0.5) ] ) ] );
            ( "counters",
              Json.Obj
                [ ("cache.disk_hits", Json.Int hits);
                  ("pipeline.loops", Json.Int loops) ] );
          ] );
    ]

(* Path lookup into the Json tree: field "a.b.c" of nested objects. *)
let rec json_path json = function
  | [] -> Some json
  | key :: rest -> (
    match json with
    | Json.Obj fields -> (
      match List.assoc_opt key fields with
      | Some v -> json_path v rest
      | None -> None)
    | _ -> None)

let test_merge_metrics () =
  let m1 = suite_metrics ~jobs:1 ~wall_s:2.0 ~loops:30 ~hits:7 in
  let m2 = suite_metrics ~jobs:4 ~wall_s:3.0 ~loops:31 ~hits:5 in
  (match Merge.merge_metrics [ m1; m2 ] with
  | Error e -> Alcotest.failf "merge failed: %s" e
  | Ok merged ->
    let at path = json_path merged path in
    check_bool "counters summed" true
      (at [ "telemetry"; "counters"; "cache.disk_hits" ] = Some (Json.Int 12));
    check_bool "span counts summed" true
      (at [ "telemetry"; "spans"; "schedule"; "count" ] = Some (Json.Int 61));
    check_bool "jobs is the max" true (at [ "jobs" ] = Some (Json.Int 4));
    check_bool "wall clock summed" true (at [ "wall_s" ] = Some (Json.Float 5.0));
    (* strip_timing nulls every wall-clock field but keeps counts. *)
    let stripped = Merge.strip_timing merged in
    check_bool "wall_s stripped" true (json_path stripped [ "wall_s" ] = Some Json.Null);
    check_bool "counters survive stripping" true
      (json_path stripped [ "telemetry"; "counters"; "cache.disk_hits" ]
      = Some (Json.Int 12)));
  (match Merge.merge_metrics [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty merge must error");
  match
    Merge.merge_metrics
      [ m1; Json.Obj [ ("schema", Json.String "ncdrf-serve-metrics/1") ] ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mixed schemas must error"

let suite =
  [
    Alcotest.test_case "store round-trips binary keys and payloads" `Quick
      test_store_roundtrip;
    QCheck_alcotest.to_alcotest prop_corrupt_entry_is_miss;
    Alcotest.test_case "stale temp files are reclaimed by age" `Quick
      test_stale_tmp_reclaim;
    Alcotest.test_case "size budget evicts least recently used" `Quick test_eviction_lru;
    Alcotest.test_case "uncached == cold == disk-warm, byte-identical" `Quick
      test_disk_warm_determinism;
    Alcotest.test_case "shard partition: disjoint, total, deterministic" `Quick
      test_shard_partition;
    Alcotest.test_case "shard ledgers merge to the unsharded order" `Quick
      test_merge_ledgers;
    Alcotest.test_case "shard metrics merge sums counters" `Quick test_merge_metrics;
  ]
