(* Tests for MII computation, the iterative modulo scheduler, kernel
   extraction/rendering and the push-late repair pass.  Includes qcheck
   properties over randomly generated loops. *)

open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let tridiag () =
  match Ncdrf_workloads.Kernels.find "ll5-tridiag" with
  | Some g -> g
  | None -> Alcotest.fail "kernel missing"

(* --- MII --- *)

let test_res_mii_example () =
  (* Example machine: 2 adders, 2 muls, 4 LS; graph has 2/2/3. *)
  check_int "example" 1 (Mii.res_mii (Config.example ()) (Helpers.example_ddg ()));
  (* Dual has only 2 LS units for 3 memory ops: ResMII 2. *)
  check_int "dual" 2 (Mii.res_mii (Config.dual ~latency:3) (Helpers.example_ddg ()))

let test_res_mii_port_caps () =
  (* sum-8: 8 loads, 7 adds, 1 store.  On P1L3 the single adder binds
     (7); on a machine with plenty of adders the 2 load ports bind
     (ceil 8/2 = 4). *)
  let g =
    match Ncdrf_workloads.Kernels.find "sum-8" with
    | Some g -> g
    | None -> Alcotest.fail "kernel missing"
  in
  check_int "adder binds on P1L3" 7 (Mii.res_mii (Config.pxly ~parallelism:1 ~latency:3) g);
  let wide =
    Config.make ~name:"wide"
      ~clusters:[| { Config.adders = 8; multipliers = 1; ls_units = 9; read_ports = None; write_ports = None } |]
      ~add_latency:3 ~mul_latency:3 ~load_ports:2 ~store_ports:1 ()
  in
  check_int "load ports bind" 4 (Mii.res_mii wide g)

let test_rec_mii_acyclic () =
  check_int "acyclic" 1 (Mii.rec_mii (Config.dual ~latency:6) (Helpers.example_ddg ()))

let test_rec_mii_tridiag () =
  (* LL5 cycle: sub -> mul -> sub (distance 1).  Latency 3 each: RecMII
     = 6; at latency 6: 12. *)
  check_int "latency 3" 6 (Mii.rec_mii (Config.dual ~latency:3) (tridiag ()));
  check_int "latency 6" 12 (Mii.rec_mii (Config.dual ~latency:6) (tridiag ()))

let test_rec_mii_matches_circuits () =
  let configs = [ Config.dual ~latency:3; Config.dual ~latency:6 ] in
  let kernels = Ncdrf_workloads.Kernels.all () in
  List.iter
    (fun cfg ->
      List.iter
        (fun (g, _) ->
          let bs = Mii.rec_mii cfg g in
          let circ = Mii.rec_mii_by_circuits cfg g in
          if bs <> circ then
            Alcotest.failf "%s on %s: binary-search %d <> circuits %d" (Ddg.name g)
              cfg.Config.name bs circ)
        kernels)
    configs

let test_distance2_recurrence_halves_recmii () =
  let g =
    match Ncdrf_workloads.Kernels.find "recurrence-d2" with
    | Some g -> g
    | None -> Alcotest.fail "kernel missing"
  in
  (* s = s(i-2) + x: one adder op of latency L in a distance-2 cycle:
     RecMII = ceil(L/2). *)
  check_int "latency 3" 2 (Mii.rec_mii (Config.dual ~latency:3) g);
  check_int "latency 6" 3 (Mii.rec_mii (Config.dual ~latency:6) g)

(* --- Modulo scheduler --- *)

let test_example_schedules_at_ii_1 () =
  let sched = Modulo.schedule (Config.example ()) (Helpers.example_ddg ()) in
  check_int "II" 1 (Schedule.ii sched);
  check_int "stages" 14 (Schedule.stages sched);
  Helpers.check_valid "example" sched

let test_schedules_are_valid_on_kernel_zoo () =
  let kernels = Ncdrf_workloads.Kernels.all () in
  List.iter
    (fun cfg ->
      List.iter
        (fun (g, _) ->
          let sched = Modulo.schedule cfg g in
          Helpers.check_valid (Ddg.name g ^ " on " ^ cfg.Config.name) sched;
          let mii = Mii.mii cfg g in
          if Schedule.ii sched < mii then
            Alcotest.failf "%s: II %d below MII %d" (Ddg.name g) (Schedule.ii sched) mii)
        kernels)
    (Helpers.configs ())

let test_schedule_achieves_mii_mostly () =
  (* IMS should reach MII on the overwhelming majority of these simple
     kernels; allow a couple of exceptions. *)
  let cfg = Config.dual ~latency:3 in
  let misses =
    List.fold_left
      (fun acc (g, _) ->
        let sched = Modulo.schedule cfg g in
        if Schedule.ii sched > Mii.mii cfg g then acc + 1 else acc)
      0
      (Ncdrf_workloads.Kernels.all ())
  in
  check_bool "at most 2 misses" true (misses <= 2)

let test_normalize_starts_at_zero () =
  let sched = Modulo.schedule (Config.dual ~latency:3) (Helpers.example_ddg ()) in
  check_int "first cycle" 0 (Schedule.first_cycle sched)

let test_schedule_make_validations () =
  let ddg = Helpers.example_ddg () in
  let config = Config.example () in
  (try
     ignore (Schedule.make ~config ~ii:0 ~placements:[||] ddg);
     Alcotest.fail "ii 0 accepted"
   with Invalid_argument _ -> ());
  try
    ignore
      (Schedule.make ~config ~ii:1
         ~placements:(Array.make 3 { Schedule.cycle = 0; cluster = 0 })
         ddg);
    Alcotest.fail "wrong placement count accepted"
  with Invalid_argument _ -> ()

let test_validate_catches_violations () =
  let sched = Helpers.paper_schedule () in
  let ddg = sched.Schedule.ddg in
  let m3 = Helpers.node_by_label ddg "M3" in
  let broken =
    let placements = Array.copy sched.Schedule.placements in
    placements.(m3.Ddg.id) <- { Schedule.cycle = 0; cluster = 0 };
    (* M3 at cycle 0 issues before L1's result is ready. *)
    Schedule.make ~config:sched.Schedule.config ~ii:1 ~placements ddg
  in
  match Schedule.validate broken with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "dependence violation accepted"

let test_validate_catches_resource_overflow () =
  (* Dual machine: 1 adder per cluster; put two adds of the same slot in
     cluster 0. *)
  let open Expr in
  let g = compile ~name:"two-adds" [ Store ("o", (load "a" + inv "x") + inv "y") ] in
  let config = Config.dual ~latency:3 in
  let n = Ddg.num_nodes g in
  (* load 0, add1 1, add2 2, store 3 *)
  let placements =
    Array.init n (fun v ->
        match v with
        | 0 -> { Schedule.cycle = 0; cluster = 0 }
        | 1 -> { Schedule.cycle = 1; cluster = 0 }
        | 2 -> { Schedule.cycle = 4; cluster = 0 }
        | _ -> { Schedule.cycle = 7; cluster = 1 })
  in
  let sched = Schedule.make ~config ~ii:1 ~placements g in
  match Schedule.validate sched with
  | Error msg -> check_bool "mentions resources" true (Helpers.contains msg "resource")
  | Ok () -> Alcotest.fail "resource overflow accepted"

let test_min_ii_forcing () =
  let cfg = Config.dual ~latency:3 in
  let g = Helpers.example_ddg () in
  let sched = Modulo.schedule_with_min_ii ~min_ii:5 cfg g in
  check_bool "II at least 5" true (Schedule.ii sched >= 5);
  Helpers.check_valid "forced II" sched

(* --- Kernel rendering --- *)

let test_kernel_extract_example () =
  let sched = Helpers.paper_schedule () in
  let kernel = Kernel.extract sched in
  check_int "rows" 1 (Array.length kernel.Kernel.rows);
  check_int "ops in row" 7 (List.length kernel.Kernel.rows.(0));
  let stages = List.map (fun s -> s.Kernel.stage) kernel.Kernel.rows.(0) in
  check_bool "stage 13 present (S7)" true (List.mem 13 stages);
  check_bool "stage 0 present (L1)" true (List.mem 0 stages)

let test_kernel_render_mentions_all_ops () =
  let sched = Helpers.paper_schedule () in
  let text = Kernel.render sched in
  List.iter
    (fun l -> check_bool l true (Helpers.contains text l))
    [ "L1"; "L2"; "M3"; "A4"; "M5"; "A6"; "S7"; "[13]" ];
  let table = Kernel.render_schedule_table sched in
  check_bool "table has stages" true (Helpers.contains table "stage")

(* --- Adjust (push late) --- *)

let test_push_late_moves_only_eligible () =
  let sched = Modulo.schedule (Config.example ()) (Helpers.example_ddg ()) in
  let adjusted = Adjust.push_late sched ~eligible:(fun _ -> false) in
  let same =
    Ddg.fold_nodes sched.Schedule.ddg ~init:true ~f:(fun acc n ->
        acc
        && Schedule.cycle sched n.Ddg.id = Schedule.cycle adjusted n.Ddg.id
        && Schedule.cluster sched n.Ddg.id = Schedule.cluster adjusted n.Ddg.id)
  in
  check_bool "nothing moved" true same

let test_push_late_shrinks_load_lifetime () =
  (* A load consumed very late: pushing it down must shrink its
     lifetime and stay valid. *)
  let open Expr in
  let g =
    compile ~name:"late-use"
      [
        Def ("chain", (((load "x" * inv "a") + inv "b") * inv "c") + inv "d");
        Store ("o", ref_ "chain" + load "y");
      ]
  in
  let cfg = Config.dual ~latency:6 in
  let sched = Modulo.schedule cfg g in
  let is_y n = match n.Ddg.opcode with Opcode.Load (Opcode.Array "y") -> true | _ -> false in
  let adjusted = Adjust.push_late sched ~eligible:is_y in
  Helpers.check_valid "adjusted" adjusted;
  let lifetime_len s =
    let y = List.find is_y (Ddg.nodes g) in
    let l =
      List.find
        (fun l -> l.Ncdrf_regalloc.Lifetime.producer = y.Ddg.id)
        (Ncdrf_regalloc.Lifetime.of_schedule s)
    in
    Ncdrf_regalloc.Lifetime.length l
  in
  check_bool "lifetime did not grow" true (lifetime_len adjusted <= lifetime_len sched)

(* --- Incremental rescheduling --- *)

let test_reschedule_incremental_extends () =
  let cfg = Config.example () in
  let g = Helpers.example_ddg () in
  let base = Modulo.schedule cfg g in
  (* Extend the graph with one load feeding A6 — the shape a spill round
     produces: new memory ops, old operations untouched. *)
  let a6 = Helpers.node_by_label g "A6" in
  let g' =
    Ddg.transform g
      ~add_nodes:[ (Opcode.Load (Opcode.Array "z"), "Lz") ]
      ~add_edges:
        [ { Ddg.src = Ddg.num_nodes g; dst = a6.Ddg.id; distance = 0; kind = Ddg.Flow } ]
      ()
  in
  match Modulo.reschedule_incremental ~base cfg g' with
  | None -> Alcotest.fail "seeding should succeed with free LS slots"
  | Some s ->
    Helpers.check_valid "incremental schedule" s;
    check_int "same II" (Schedule.ii base) (Schedule.ii s);
    (* Base placements survive, up to the uniform normalization shift. *)
    let shift = Schedule.cycle s 0 - Schedule.cycle base 0 in
    Ddg.iter_nodes g ~f:(fun n ->
        check_int (n.Ddg.label ^ " cycle")
          (Schedule.cycle base n.Ddg.id + shift)
          (Schedule.cycle s n.Ddg.id);
        check_int (n.Ddg.label ^ " cluster")
          (Schedule.cluster base n.Ddg.id)
          (Schedule.cluster s n.Ddg.id))

let test_reschedule_incremental_declines_new_recurrence () =
  let cfg = Config.example () in
  let g = Helpers.example_ddg () in
  let base = Modulo.schedule cfg g in
  (* II = 1; a distance-1 ordering edge S7 -> L1 closes a recurrence
     whose latency sum no window at this II can satisfy, so seeding must
     decline rather than loop or return an invalid schedule. *)
  let s7 = Helpers.node_by_label g "S7" and l1 = Helpers.node_by_label g "L1" in
  let g' =
    Ddg.transform g
      ~add_edges:[ { Ddg.src = s7.Ddg.id; dst = l1.Ddg.id; distance = 1; kind = Ddg.Mem } ]
      ()
  in
  check_bool "declines" true (Modulo.reschedule_incremental ~base cfg g' = None)

let test_reschedule_incremental_rejects_shrunk_graph () =
  let cfg = Config.example () in
  let g = Helpers.example_ddg () in
  let g' =
    Ddg.transform g ~add_nodes:[ (Opcode.Load (Opcode.Array "z"), "Lz") ] ()
  in
  let base = Modulo.schedule cfg g' in
  try
    ignore (Modulo.reschedule_incremental ~base cfg g);
    Alcotest.fail "a graph smaller than the base was accepted"
  with Invalid_argument _ -> ()

(* --- qcheck properties over generated loops --- *)

let generated_ddg =
  QCheck.make
    ~print:(fun (seed, heavy) -> Printf.sprintf "seed=%d heavy=%b" seed heavy)
    QCheck.Gen.(pair (int_bound 100_000) bool)

let ddg_of (seed, is_heavy) =
  let params =
    if is_heavy then Ncdrf_workloads.Generator.heavy else Ncdrf_workloads.Generator.default
  in
  Ncdrf_workloads.Generator.generate params ~seed ~name:(Printf.sprintf "q%d" seed)

let test_bidirectional_same_ii_fewer_regs () =
  let config = Config.dual ~latency:6 in
  let asap_total = ref 0 and bidir_total = ref 0 in
  List.iter
    (fun (g, _) ->
      let a = Modulo.schedule ~placement_policy:Modulo.Asap config g in
      let b = Modulo.schedule ~placement_policy:Modulo.Bidirectional config g in
      Helpers.check_valid (Ddg.name g ^ " bidirectional") b;
      check_int (Ddg.name g ^ " same II") (Schedule.ii a) (Schedule.ii b);
      asap_total := !asap_total + Ncdrf_core.Requirements.unified a;
      bidir_total := !bidir_total + Ncdrf_core.Requirements.unified b)
    (Ncdrf_workloads.Kernels.all ());
  check_bool "bidirectional saves registers overall" true (!bidir_total <= !asap_total)

let prop_bidirectional_valid =
  QCheck.Test.make ~count:40 ~name:"bidirectional placement stays valid" generated_ddg
    (fun input ->
      let g = ddg_of input in
      let cfg = Config.dual ~latency:3 in
      let sched = Modulo.schedule ~placement_policy:Modulo.Bidirectional cfg g in
      Schedule.validate sched = Ok ())

let prop_schedules_valid =
  QCheck.Test.make ~count:60 ~name:"random loops schedule validly on dual-L3" generated_ddg
    (fun input ->
      let g = ddg_of input in
      let cfg = Config.dual ~latency:3 in
      let sched = Modulo.schedule cfg g in
      Schedule.validate sched = Ok () && Schedule.ii sched >= Mii.mii cfg g)

let prop_rec_mii_cross_check =
  QCheck.Test.make ~count:40 ~name:"rec_mii = circuits on random loops" generated_ddg
    (fun input ->
      let g = ddg_of input in
      let cfg = Config.dual ~latency:6 in
      Mii.rec_mii cfg g = Mii.rec_mii_by_circuits cfg g)

let prop_push_late_preserves_validity =
  QCheck.Test.make ~count:40 ~name:"push_late keeps schedules valid" generated_ddg
    (fun input ->
      let g = ddg_of input in
      let cfg = Config.dual ~latency:3 in
      let sched = Modulo.schedule cfg g in
      let adjusted = Adjust.push_late sched ~eligible:(fun n -> Opcode.is_load n.Ddg.opcode) in
      Schedule.validate adjusted = Ok () && Schedule.ii adjusted = Schedule.ii sched)

let suite =
  [
    Alcotest.test_case "res_mii on example" `Quick test_res_mii_example;
    Alcotest.test_case "res_mii with port caps" `Quick test_res_mii_port_caps;
    Alcotest.test_case "rec_mii acyclic" `Quick test_rec_mii_acyclic;
    Alcotest.test_case "rec_mii on tridiagonal" `Quick test_rec_mii_tridiag;
    Alcotest.test_case "rec_mii matches circuit enumeration" `Quick
      test_rec_mii_matches_circuits;
    Alcotest.test_case "distance-2 recurrence" `Quick test_distance2_recurrence_halves_recmii;
    Alcotest.test_case "example schedules at II=1" `Quick test_example_schedules_at_ii_1;
    Alcotest.test_case "kernel zoo schedules validly" `Slow
      test_schedules_are_valid_on_kernel_zoo;
    Alcotest.test_case "scheduler achieves MII mostly" `Quick test_schedule_achieves_mii_mostly;
    Alcotest.test_case "normalize starts at zero" `Quick test_normalize_starts_at_zero;
    Alcotest.test_case "schedule make validations" `Quick test_schedule_make_validations;
    Alcotest.test_case "validate catches dependence violations" `Quick
      test_validate_catches_violations;
    Alcotest.test_case "validate catches resource overflow" `Quick
      test_validate_catches_resource_overflow;
    Alcotest.test_case "min II forcing" `Quick test_min_ii_forcing;
    Alcotest.test_case "kernel extraction" `Quick test_kernel_extract_example;
    Alcotest.test_case "kernel rendering" `Quick test_kernel_render_mentions_all_ops;
    Alcotest.test_case "push_late no-op when ineligible" `Quick
      test_push_late_moves_only_eligible;
    Alcotest.test_case "push_late shrinks load lifetime" `Quick
      test_push_late_shrinks_load_lifetime;
    Alcotest.test_case "bidirectional placement" `Quick
      test_bidirectional_same_ii_fewer_regs;
    Alcotest.test_case "reschedule_incremental extends a schedule" `Quick
      test_reschedule_incremental_extends;
    Alcotest.test_case "reschedule_incremental declines a new recurrence" `Quick
      test_reschedule_incremental_declines_new_recurrence;
    Alcotest.test_case "reschedule_incremental rejects a shrunk graph" `Quick
      test_reschedule_incremental_rejects_shrunk_graph;
    QCheck_alcotest.to_alcotest prop_bidirectional_valid;
    QCheck_alcotest.to_alcotest prop_schedules_valid;
    QCheck_alcotest.to_alcotest prop_rec_mii_cross_check;
    QCheck_alcotest.to_alcotest prop_push_late_preserves_validity;
  ]
