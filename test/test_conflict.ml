(* Equivalence of the conflict-engine allocator against the original
   list-based implementation (Alloc_reference): same placements — not
   just the same feasibility — over random lifetime sets, II, capacity,
   strategy, order and pre-placed values; plus a fixed-seed fig8-slice
   byte-identity guard pinning the whole pipeline's output to the seed
   implementation. *)

open Ncdrf_machine
open Ncdrf_sched
open Ncdrf_regalloc
open Ncdrf_core

let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Random lifetime sets.                                               *)
(* ------------------------------------------------------------------ *)

let lifetimes_of_raw raw =
  List.mapi
    (fun i (start, len) -> { Lifetime.producer = i; start; stop = start + len })
    raw

let pp_case (ii, capacity, raw, placed) =
  Printf.sprintf "ii=%d cap=%d lifetimes=[%s] placed=[%s]" ii capacity
    (String.concat ";" (List.map (fun (s, l) -> Printf.sprintf "%d+%d" s l) raw))
    (String.concat ";" (List.map (fun (s, l, r) -> Printf.sprintf "%d+%d@%d" s l r) placed))

let case_gen =
  QCheck.Gen.(
    int_range 1 5 >>= fun ii ->
    int_range 1 14 >>= fun capacity ->
    int_range 0 8 >>= fun n ->
    list_repeat n (pair (int_bound 12) (int_range 1 14)) >>= fun raw ->
    int_range 0 3 >>= fun npre ->
    list_repeat npre
      (triple (int_bound 12) (int_range 1 10) (int_bound (capacity - 1)))
    >>= fun placed -> return (ii, capacity, raw, placed))

let case_arb = QCheck.make ~print:pp_case case_gen

let placed_of raw_placed =
  List.mapi
    (fun i (start, len, register) ->
      { Alloc.value = { Lifetime.producer = 1000 + i; start; stop = start + len };
        register })
    raw_placed

let strategies = [| Alloc.First_fit; Alloc.Best_fit; Alloc.End_fit |]
let orders = [| Alloc.Start_time; Alloc.Longest_first; Alloc.Node_order |]

(* Same placements — registers and order — for every strategy x order,
   including the cases where both allocators must fail. *)
let prop_allocate_equivalence =
  QCheck.Test.make ~count:400 ~name:"allocate equivalence (Alloc = Alloc_reference)"
    case_arb (fun (ii, capacity, raw, raw_placed) ->
      let lifetimes = lifetimes_of_raw raw in
      let placed = placed_of raw_placed in
      Array.for_all
        (fun strategy ->
          Array.for_all
            (fun order ->
              Alloc.allocate ~strategy ~order ~placed ~ii ~capacity lifetimes
              = Alloc_reference.allocate ~strategy ~order ~placed ~ii ~capacity
                  lifetimes)
            orders)
        strategies)

let prop_min_capacity_equivalence =
  QCheck.Test.make ~count:200
    ~name:"min_capacity equivalence (Alloc = Alloc_reference)" case_arb
    (fun (ii, _, raw, _) ->
      let lifetimes = lifetimes_of_raw raw in
      Array.for_all
        (fun strategy ->
          Array.for_all
            (fun order ->
              Alloc.min_capacity ~strategy ~order ~ii lifetimes
              = Alloc_reference.min_capacity ~strategy ~order ~ii lifetimes)
            orders)
        strategies)

(* The same equivalence on lifetimes of real modulo schedules, whose
   shapes (long wands, loop-carried stretches) random sets undersample. *)
let prop_scheduled_equivalence =
  let arb =
    QCheck.make
      ~print:(fun (seed, lat) -> Printf.sprintf "seed=%d lat=%d" seed lat)
      QCheck.Gen.(pair (int_bound 50_000) (int_range 1 6))
  in
  QCheck.Test.make ~count:25 ~name:"scheduled-lifetime equivalence" arb
    (fun (seed, latency) ->
      let g =
        Ncdrf_workloads.Generator.generate Ncdrf_workloads.Generator.default ~seed
          ~name:"equiv-prop"
      in
      let cfg = Config.dual ~latency in
      let sched = Modulo.schedule cfg g in
      let lifetimes = Lifetime.of_schedule sched in
      let ii = Schedule.ii sched in
      Array.for_all
        (fun strategy ->
          let c = Alloc.min_capacity ~strategy ~ii lifetimes in
          c = Alloc_reference.min_capacity ~strategy ~ii lifetimes
          && Alloc.allocate ~strategy ~ii ~capacity:c lifetimes
             = Alloc_reference.allocate ~strategy ~ii ~capacity:c lifetimes
          && Alloc.allocate ~strategy ~ii ~capacity:(max 1 (c - 1)) lifetimes
             = Alloc_reference.allocate ~strategy ~ii ~capacity:(max 1 (c - 1))
                 lifetimes)
        strategies)

(* ------------------------------------------------------------------ *)
(* Fixed-seed fig8-slice byte-identity guard.                          *)
(* ------------------------------------------------------------------ *)

(* A slice of the fig8 sweep (dual file, latency 3, capacity 32,
   Swapped model) over the first loops of the fixed-seed suite, plus
   the strategy/order ablation sums, digested.  The expected hex is the
   seed implementation's output: any drift in placements, requirements,
   spill decisions or swap counts changes it. *)
let test_fig8_slice_byte_identity () =
  let config = Config.dual ~latency:3 in
  let loops = Ncdrf_workloads.Suite.full ~size:40 ~seed:42 () in
  let buf = Buffer.create 8192 in
  List.iteri
    (fun i e ->
      if i < 20 then begin
        let ddg = e.Ncdrf_workloads.Suite.ddg in
        let st = Pipeline.run ~config ~model:Model.Swapped ~capacity:32 ddg in
        Printf.bprintf buf "%s ii=%d req=%d spilled=%d swaps=%d fits=%b\n"
          st.Pipeline.name st.Pipeline.ii st.Pipeline.requirement st.Pipeline.spilled
          st.Pipeline.swaps st.Pipeline.fits;
        let alloc = Requirements.partitioned_allocation st.Pipeline.schedule in
        Printf.bprintf buf "cap=%d" alloc.Requirements.capacity;
        List.iter
          (fun (p, _) ->
            Printf.bprintf buf " g%d:%d" p.Alloc.value.Lifetime.producer p.Alloc.register)
          alloc.Requirements.globals;
        Array.iteri
          (fun c ps ->
            List.iter
              (fun p ->
                Printf.bprintf buf " l%d.%d:%d" c p.Alloc.value.Lifetime.producer
                  p.Alloc.register)
              ps)
          alloc.Requirements.locals;
        Buffer.add_char buf '\n'
      end)
    loops;
  (* Strategy/order ablation over the same slice: unified minimum
     capacities must not drift either. *)
  List.iteri
    (fun i e ->
      if i < 12 then begin
        let sched = Artifact.raw_schedule ~config e.Ncdrf_workloads.Suite.ddg in
        Array.iter
          (fun strategy ->
            Array.iter
              (fun order ->
                Printf.bprintf buf "%d:" (Requirements.unified ~strategy ~order sched))
              orders)
          strategies;
        Buffer.add_char buf '\n'
      end)
    loops;
  check_string "fig8-slice digest vs seed output"
    "546e6e9c5d0a320f358a8cc7e4a6871b"
    (Digest.to_hex (Digest.string (Buffer.contents buf)))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_allocate_equivalence;
    QCheck_alcotest.to_alcotest prop_min_capacity_equivalence;
    QCheck_alcotest.to_alcotest prop_scheduled_equivalence;
    Alcotest.test_case "fig8-slice byte identity" `Quick test_fig8_slice_byte_identity;
  ]
