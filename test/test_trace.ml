(* The observability layer: Json parser round-trips and atomic file
   publication, span distributions feeding the metrics report, the
   event trace (valid Chrome document, balanced B/E, --jobs
   invariance), the run ledger (record round-trip, file round-trip,
   --jobs identity-set guard) and the standing invariant that arming
   tracing changes no pipeline result byte. *)

open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched
open Ncdrf_core
module Telemetry = Ncdrf_telemetry.Telemetry
module Json = Ncdrf_telemetry.Json
module Trace = Ncdrf_telemetry.Trace
module Ledger = Ncdrf_telemetry.Ledger
module Stats = Ncdrf_report.Stats
module Pool = Ncdrf_parallel.Pool
module Generator = Ncdrf_workloads.Generator

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 0.0))

(* Arm the requested layers for [f], then disarm and drop everything
   recorded so no other test sees observability state. *)
let with_observability ?(trace = true) ?(ledger = true) f =
  Trace.enable trace;
  Ledger.enable ledger;
  Fun.protect
    ~finally:(fun () ->
      Trace.enable false;
      Ledger.enable false;
      Trace.reset ();
      Ledger.reset ())
    f

let fixed_loops ?(n = 10) () =
  Ncdrf_workloads.Suite.full ~size:40 ~seed:2025 ()
  |> List.filteri (fun i _ -> i < n)
  |> List.map (fun e ->
         { Suite_stats.ddg = e.Ncdrf_workloads.Suite.ddg;
           weight = e.Ncdrf_workloads.Suite.iterations })

(* ------------------------------------------------------------------ *)
(* Json: parser round-trips and failures.                              *)
(* ------------------------------------------------------------------ *)

let roundtrip_values =
  [
    Json.Null;
    Json.Bool true;
    Json.Bool false;
    Json.Int 0;
    Json.Int (-42);
    Json.Int max_int;
    Json.Float 3.5;
    Json.Float (-0.125);
    Json.String "plain";
    Json.String "quote\" slash\\ ctrl\n\t end";
    Json.String "utf8 \xe2\x98\x83";
    Json.List [];
    Json.Obj [];
    Json.List [ Json.Int 1; Json.Null; Json.String "x"; Json.List [ Json.Bool false ] ];
    Json.Obj
      [
        ("a", Json.Int 1);
        ("b", Json.List [ Json.Bool false; Json.Float 2.5 ]);
        ("c", Json.Obj [ ("d", Json.Null); ("e", Json.String "") ]);
      ];
  ]

let test_json_roundtrip () =
  List.iter
    (fun v ->
      let back rendering s =
        match Json.of_string s with
        | Ok v' ->
          check_bool (rendering ^ " round-trips: " ^ s) true (v = v')
        | Error e -> Alcotest.fail (rendering ^ " parse failed: " ^ e)
      in
      back "to_string" (Json.to_string v);
      back "to_compact" (Json.to_compact v))
    roundtrip_values

let test_json_parse_forms () =
  let ok s v =
    match Json.of_string s with
    | Ok v' -> check_bool ("parses: " ^ s) true (v = v')
    | Error e -> Alcotest.fail (s ^ ": " ^ e)
  in
  ok "12" (Json.Int 12);
  ok "-3" (Json.Int (-3));
  ok "12.0" (Json.Float 12.0);
  ok "1e3" (Json.Float 1000.0);
  ok "  [ 1 , 2 ]  " (Json.List [ Json.Int 1; Json.Int 2 ]);
  ok "\"\\u0041\\n\"" (Json.String "A\n");
  ok "\"\\u2603\"" (Json.String "\xe2\x98\x83");
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.fail ("should not parse: " ^ s)
      | Error _ -> ())
    [ ""; "tru"; "[1,]"; "{\"a\":1"; "{} trailing"; "\"open"; "{1:2}" ]

let rec rm_rf p =
  if Sys.is_directory p then begin
    Array.iter (fun f -> rm_rf (Filename.concat p f)) (Sys.readdir p);
    Sys.rmdir p
  end
  else Sys.remove p

let test_write_file_no_tmp_litter () =
  (* Point the writer at a path whose final rename must fail (the
     target is a non-empty directory): the temp file may not survive. *)
  let dir = Filename.temp_file "ncdrf_json" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let target = Filename.concat dir "out" in
      Sys.mkdir target 0o755;
      let oc = open_out (Filename.concat target "occupied") in
      close_out oc;
      (match Json.write_file ~path:target "{}\n" with
       | () -> Alcotest.fail "rename over a non-empty directory succeeded?"
       | exception Sys_error _ -> ());
      let leftovers =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".tmp")
      in
      Alcotest.(check (list string)) "no temp litter" [] leftovers;
      (* The happy path still publishes (and also leaves no litter). *)
      let good = Filename.concat dir "ok.json" in
      Json.write_file ~path:good "[1]";
      check_bool "published" true (Sys.file_exists good);
      let tmps =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".tmp")
      in
      Alcotest.(check (list string)) "no temp litter after success" [] tmps)

(* ------------------------------------------------------------------ *)
(* Stats.auto_histogram and span distributions.                        *)
(* ------------------------------------------------------------------ *)

let test_auto_histogram () =
  Alcotest.(check (list (pair (float 0.0) int))) "empty" [] (Stats.auto_histogram []);
  Alcotest.(check (list (pair (float 0.0) int)))
    "constant series collapses"
    [ (2.0, 3) ]
    (Stats.auto_histogram [ 2.0; 2.0; 2.0 ]);
  let values = List.init 101 float_of_int in
  let buckets = Stats.auto_histogram values in
  check_float "first bucket at the minimum" 0.0 (fst (List.hd buckets));
  check_int "counts cover the series" 101
    (List.fold_left (fun acc (_, c) -> acc + c) 0 buckets);
  check_bool "about the requested bucket count" true
    (List.length buckets >= 10 && List.length buckets <= 11);
  (* The renderer accepts what auto_histogram emits. *)
  let rendered =
    Stats.render_histogram ~label:(fun v -> Printf.sprintf "%.1f" v) buckets
  in
  check_bool "rendered one line per bucket" true
    (List.length (String.split_on_char '\n' (String.trim rendered))
     = List.length buckets)

let test_span_distributions () =
  Telemetry.enable true;
  Fun.protect
    ~finally:(fun () ->
      Telemetry.enable false;
      Telemetry.reset ())
    (fun () ->
      Telemetry.reset ();
      for i = 1 to 100 do
        Telemetry.record_span "s" (float_of_int i)
      done;
      check_int "all samples kept" 100 (List.length (Telemetry.span_samples "s"));
      (match List.assoc_opt "s" (Telemetry.distributions ()) with
       | None -> Alcotest.fail "no distribution for a recorded span"
       | Some d ->
         check_float "p50 nearest-rank" 50.0 d.Telemetry.p50_s;
         check_float "p90 nearest-rank" 90.0 d.Telemetry.p90_s;
         check_float "p99 nearest-rank" 99.0 d.Telemetry.p99_s);
      (* The metrics document carries the percentiles (additive keys). *)
      let doc = Json.to_string (Telemetry.to_json ()) in
      let contains key =
        let n = String.length key in
        let rec find i =
          i + n <= String.length doc && (String.sub doc i n = key || find (i + 1))
        in
        find 0
      in
      List.iter
        (fun key -> check_bool ("metrics JSON has " ^ key) true (contains key))
        [ "\"p50_s\""; "\"p90_s\""; "\"p99_s\"" ])

(* ------------------------------------------------------------------ *)
(* Event trace: valid Chrome document with balanced, nested B/E.       *)
(* ------------------------------------------------------------------ *)

let obj = function
  | Json.Obj o -> o
  | _ -> Alcotest.fail "expected a JSON object"

let str = function
  | Json.String s -> s
  | _ -> Alcotest.fail "expected a JSON string"

let num = function
  | Json.Int i -> float_of_int i
  | Json.Float f -> f
  | _ -> Alcotest.fail "expected a JSON number"

let test_trace_chrome_document () =
  let loops = fixed_loops () in
  let config = Config.dual ~latency:3 in
  with_observability ~ledger:false (fun () ->
      Artifact.clear_cache ();
      ignore (Suite_stats.measure_all ~config ~models:Model.all loops);
      let path = Filename.temp_file "ncdrf_trace" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Trace.write_chrome ~path;
          let doc = In_channel.with_open_text path In_channel.input_all in
          let json =
            match Json.of_string doc with
            | Ok j -> j
            | Error e -> Alcotest.fail ("trace file is not valid JSON: " ^ e)
          in
          let events =
            match List.assoc "traceEvents" (obj json) with
            | Json.List evs -> List.map obj evs
            | _ -> Alcotest.fail "traceEvents is not a list"
          in
          check_bool "trace has events" true (events <> []);
          (* Every phase is one we emit; B/E counts balance per name. *)
          let begins = Hashtbl.create 16 and ends = Hashtbl.create 16 in
          let bump h k = Hashtbl.replace h k (1 + Option.value ~default:0 (Hashtbl.find_opt h k)) in
          let stacks : (float, string list) Hashtbl.t = Hashtbl.create 8 in
          List.iter
            (fun e ->
              let name = str (List.assoc "name" e) in
              let tid = num (List.assoc "tid" e) in
              match str (List.assoc "ph" e) with
              | ("B" | "E" | "i") when num (List.assoc "ts" e) < 0.0 ->
                Alcotest.fail "negative timestamp"
              | "B" ->
                bump begins name;
                Hashtbl.replace stacks tid
                  (name :: Option.value ~default:[] (Hashtbl.find_opt stacks tid))
              | "E" ->
                bump ends name;
                (match Hashtbl.find_opt stacks tid with
                 | Some (top :: rest) ->
                   Alcotest.(check string) "E matches innermost B" top name;
                   Hashtbl.replace stacks tid rest
                 | _ -> Alcotest.fail "E with no open B on its track")
              | "i" | "M" -> ()
              | ph -> Alcotest.fail ("unexpected phase " ^ ph))
            events;
          Hashtbl.iter
            (fun name b ->
              check_int ("balanced B/E for " ^ name) b
                (Option.value ~default:0 (Hashtbl.find_opt ends name)))
            begins;
          Hashtbl.iter
            (fun _ stack -> check_int "every span closed" 0 (List.length stack))
            stacks;
          check_bool "a schedule span was traced" true
            (Hashtbl.mem begins "schedule");
          check_int "nothing dropped on this small run" 0 (Trace.dropped ())))

let event_key (e : Trace.event) =
  (e.Trace.name, e.Trace.phase, e.Trace.loop, e.Trace.config)

let test_trace_jobs_invariant () =
  let loops = fixed_loops () in
  let config = Config.dual ~latency:6 in
  with_observability ~ledger:false (fun () ->
      let run pool =
        Artifact.clear_cache ();
        Trace.reset ();
        ignore (Suite_stats.measure_all ?pool ~config ~models:Model.all loops);
        List.sort compare (List.map event_key (Trace.events ()))
      in
      let serial = run None in
      let parallel = Pool.with_pool ~jobs:2 (fun pool -> run (Some pool)) in
      check_bool "events recorded" true (serial <> []);
      check_bool "--jobs 2 emits the same event multiset as --jobs 1" true
        (serial = parallel))

(* Two systhreads on one domain: the (domain, thread)-keyed registries
   keep span samples and trace events apart — under the old
   domain-keyed scheme both threads shared one shard, so their B/E
   events interleaved on a single track and samples trampled each
   other.  Regression for the daemon's concurrent connection
   handlers. *)
let test_two_systhreads_do_not_interleave () =
  Telemetry.enable true;
  Trace.enable true;
  Fun.protect
    ~finally:(fun () ->
      Telemetry.enable false;
      Trace.enable false;
      Telemetry.reset ();
      Trace.reset ())
  @@ fun () ->
  Telemetry.reset ();
  Trace.reset ();
  let rounds = 25 in
  let body id () =
    Trace.with_request ~id @@ fun () ->
    for _ = 1 to rounds do
      (* Yield inside the span so the two threads genuinely overlap. *)
      Telemetry.time ("work." ^ id) Thread.yield
    done
  in
  let t1 = Thread.create (body "alpha") () in
  let t2 = Thread.create (body "beta") () in
  Thread.join t1;
  Thread.join t2;
  (* Exact per-request sample counts: nothing lost, nothing leaked. *)
  let count req name =
    match List.assoc_opt (req, name) (Telemetry.request_spans ()) with
    | Some (s : Telemetry.span) -> s.Telemetry.count
    | None -> 0
  in
  check_int "alpha kept every sample" rounds (count "alpha" "work.alpha");
  check_int "beta kept every sample" rounds (count "beta" "work.beta");
  check_int "no cross-request samples" 0
    (count "alpha" "work.beta" + count "beta" "work.alpha");
  (* Each thread's events sit on their own track, stamped with their
     request id, and balance B/E with no interleaving. *)
  let evs = Trace.events () in
  let tracks_of req =
    List.sort_uniq compare
      (List.filter_map
         (fun (e : Trace.event) ->
           if e.Trace.request = req then Some e.Trace.track else None)
         evs)
  in
  (match (tracks_of "alpha", tracks_of "beta") with
   | [ a ], [ b ] -> check_bool "requests on distinct tracks" true (a <> b)
   | a, b ->
     Alcotest.fail
       (Printf.sprintf "expected one track per request, got %d and %d"
          (List.length a) (List.length b)));
  List.iter
    (fun req ->
      let mine =
        List.filter (fun (e : Trace.event) -> e.Trace.request = req) evs
      in
      check_int ("event count for " ^ req) (2 * rounds) (List.length mine);
      let depth = ref 0 in
      List.iter
        (fun (e : Trace.event) ->
          match e.Trace.phase with
          | 'B' -> incr depth
          | 'E' ->
            if !depth = 0 then
              Alcotest.fail ("unbalanced E within request " ^ req);
            decr depth
          | _ -> ())
        mine;
      check_int ("balanced B/E for " ^ req) 0 !depth)
    [ "alpha"; "beta" ]

(* ------------------------------------------------------------------ *)
(* Run ledger: record and file round-trips, --jobs identity guard.     *)
(* ------------------------------------------------------------------ *)

let sample_record : Ledger.record =
  {
    Ledger.label = "t";
    request = "";
    loop = "loop-1";
    config = "dual-L3";
    fp = "abc123def456";
    models = "unified+swapped";
    capacity = Some 32;
    clusters = Some 2;
    mii = Some 4;
    ii = Some 5;
    rounds = Some 2;
    spilled = Some 3;
    requirement = Some 17;
    maxlive = Some 21;
    spill_full = Some 2;
    spill_incremental = Some 1;
    cache_hits = 2;
    cache_misses = 4;
    disk_hits = 1;
    disk_misses = 3;
    stages = [ ("alloc", 123456); ("schedule", 99) ];
    total_ns = 424242;
    ok = true;
    error = None;
  }

let failed_record =
  {
    sample_record with
    Ledger.loop = "loop-2";
    capacity = None;
    mii = None;
    ii = None;
    rounds = None;
    spilled = None;
    requirement = None;
    maxlive = None;
    spill_full = None;
    spill_incremental = None;
    stages = [];
    ok = false;
    error = Some "sched";
  }

let test_ledger_record_roundtrip () =
  List.iter
    (fun (r : Ledger.record) ->
      match Ledger.parse_line (Json.to_compact (Ledger.to_json r)) with
      | Ok r' -> check_bool ("record round-trips: " ^ r.Ledger.loop) true (r = r')
      | Error e -> Alcotest.fail e)
    [ sample_record; failed_record ]

let test_ledger_file_roundtrip () =
  with_observability ~trace:false (fun () ->
      Ledger.set_label "file";
      Ledger.add sample_record;
      Ledger.add failed_record;
      let loops = fixed_loops ~n:4 () in
      let config = Config.dual ~latency:3 in
      Artifact.clear_cache ();
      ignore (Suite_stats.measure_all ~config ~models:[ Model.Swapped ] loops);
      let path = Filename.temp_file "ncdrf_ledger" ".jsonl" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Ledger.write ~path;
          match Ledger.load ~path with
          | Error e -> Alcotest.fail e
          | Ok loaded ->
            check_int "every record came back"
              (List.length (Ledger.records ()))
              (List.length loaded);
            check_bool "file is identity-sorted" true
              (List.stable_sort Ledger.compare_records (Ledger.records ()) = loaded);
            check_bool "pipeline records carry stage durations" true
              (List.exists
                 (fun (r : Ledger.record) ->
                   r.Ledger.label = "file"
                   && r.Ledger.loop <> "loop-1"
                   && r.Ledger.loop <> "loop-2"
                   && List.mem_assoc "schedule" r.Ledger.stages)
                 loaded)))

(* Everything deterministic about a record: identity plus the result
   fields that may not depend on worker count.  Durations are the one
   thing allowed to differ. *)
let ledger_identity (r : Ledger.record) =
  ( ( r.Ledger.label,
      r.Ledger.config,
      r.Ledger.models,
      r.Ledger.capacity,
      r.Ledger.loop,
      r.Ledger.fp ),
    ( r.Ledger.ok,
      r.Ledger.error,
      List.map fst r.Ledger.stages,
      r.Ledger.cache_hits,
      r.Ledger.cache_misses ),
    (r.Ledger.mii, r.Ledger.ii, r.Ledger.requirement, r.Ledger.maxlive) )

let test_ledger_jobs_invariant () =
  let loops = fixed_loops () in
  let config = Config.dual ~latency:6 in
  with_observability ~trace:false (fun () ->
      Ledger.set_label "guard";
      let run pool =
        Artifact.clear_cache ();
        Ledger.reset ();
        ignore (Suite_stats.measure_all ?pool ~config ~models:Model.all loops);
        List.sort compare (List.map ledger_identity (Ledger.records ()))
      in
      let serial = run None in
      let parallel = Pool.with_pool ~jobs:2 (fun pool -> run (Some pool)) in
      check_int "one record per loop" (List.length loops) (List.length serial);
      check_bool "--jobs 2 ledger identity set equals --jobs 1" true
        (serial = parallel))

(* ------------------------------------------------------------------ *)
(* Standing invariant: arming observability changes no result byte.    *)
(* ------------------------------------------------------------------ *)

(* %h renders the exact bit pattern, so string equality of this
   rendering is byte-for-byte equality of the stats, schedule included. *)
let render_stats (st : Pipeline.stats) =
  let sched = st.Pipeline.schedule in
  let placements =
    String.concat ";"
      (List.init (Ddg.num_nodes sched.Schedule.ddg) (fun v ->
           Printf.sprintf "%d,%d" (Schedule.cycle sched v) (Schedule.cluster sched v)))
  in
  Printf.sprintf
    "%s %s mii=%d ii=%d stages=%d req=%d cap=%s fits=%b spilled=%d addmem=%d bumps=%d \
     memops=%d density=%h swaps=%d sched_ii=%d [%s]"
    st.Pipeline.name
    (Model.to_string st.Pipeline.model)
    st.Pipeline.mii st.Pipeline.ii st.Pipeline.stages st.Pipeline.requirement
    (match st.Pipeline.capacity with None -> "-" | Some c -> string_of_int c)
    st.Pipeline.fits st.Pipeline.spilled st.Pipeline.added_memops st.Pipeline.ii_bumps
    st.Pipeline.memops_per_iter st.Pipeline.density st.Pipeline.swaps (Schedule.ii sched)
    placements

let prop_traced_equals_untraced =
  let arb =
    QCheck.make
      ~print:(fun (seed, lat, cap) ->
        Printf.sprintf "seed=%d lat=%d cap=%s" seed lat
          (match cap with None -> "-" | Some c -> string_of_int c))
      QCheck.Gen.(triple (int_bound 20_000) (int_range 1 8) (opt (int_range 8 64)))
  in
  QCheck.Test.make ~count:15
    ~name:"traced + ledgered run byte-identical to untraced run" arb
    (fun (seed, latency, capacity) ->
      let ddg = Generator.generate Generator.default ~seed ~name:"trace-prop" in
      let config = Config.dual ~latency in
      let run () =
        Artifact.clear_cache ();
        List.map
          (fun model -> render_stats (Pipeline.run ~config ~model ?capacity ddg))
          Model.all
      in
      let plain = run () in
      let observed =
        with_observability (fun () ->
            Ledger.set_label "prop";
            run ())
      in
      plain = observed)

let suite =
  [
    Alcotest.test_case "json renderings parse back" `Quick test_json_roundtrip;
    Alcotest.test_case "json parse forms and failures" `Quick test_json_parse_forms;
    Alcotest.test_case "atomic write leaves no temp litter" `Quick
      test_write_file_no_tmp_litter;
    Alcotest.test_case "auto_histogram covers the series" `Quick test_auto_histogram;
    Alcotest.test_case "span distributions are nearest-rank" `Quick
      test_span_distributions;
    Alcotest.test_case "chrome trace is valid with balanced B/E" `Quick
      test_trace_chrome_document;
    Alcotest.test_case "trace events invariant under --jobs" `Quick
      test_trace_jobs_invariant;
    Alcotest.test_case "two systhreads keep shards apart" `Quick
      test_two_systhreads_do_not_interleave;
    Alcotest.test_case "ledger record round-trips" `Quick test_ledger_record_roundtrip;
    Alcotest.test_case "ledger file round-trips identity-sorted" `Quick
      test_ledger_file_roundtrip;
    Alcotest.test_case "ledger identity set invariant under --jobs" `Quick
      test_ledger_jobs_invariant;
    QCheck_alcotest.to_alcotest prop_traced_equals_untraced;
  ]
