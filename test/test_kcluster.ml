(* The generalized k-cluster machine model: fixed-seed digests pinning
   the dual (k=2) path to the seed implementation byte-for-byte, a
   qcheck property that the k-cluster constructors at k=2 are the dual
   path, Shared-class semantics at k >= 3, per-subfile port budgets in
   the fingerprint (distinct cache keys) and in the executor (stall
   accounting). *)

open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched
open Ncdrf_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Fixed-seed digest of the whole per-loop summary: II, classification,
   partitioned requirement detail, unified requirement, swap statistics
   and executor outcome.  Any byte drift in any stage moves the hash.  *)
(* ------------------------------------------------------------------ *)

let digest_loops () =
  Ncdrf_workloads.Suite.full ~size:40 ~seed:2025 ()
  |> List.filteri (fun i _ -> i < 24)
  |> List.map (fun e -> e.Ncdrf_workloads.Suite.ddg)

let summary_line buf config ddg =
  let sched = Modulo.schedule config ddg in
  Buffer.add_string buf (Printf.sprintf "%s ii=%d" (Ddg.name ddg) (Schedule.ii sched));
  List.iter
    (fun (n, cls) ->
      Buffer.add_string buf
        (Printf.sprintf " %s=%s" n.Ddg.label (Format.asprintf "%a" Classify.pp cls)))
    (Classify.classify sched);
  let d = Requirements.partitioned sched in
  let ints a = String.concat "," (Array.to_list (Array.map string_of_int a)) in
  Buffer.add_string buf
    (Printf.sprintf " req=%d cl=%s gl=%d lo=%s ml=%s" d.Requirements.requirement
       (ints d.Requirements.cluster_requirements)
       d.Requirements.global_requirement
       (ints d.Requirements.local_requirements)
       (ints d.Requirements.max_live));
  Buffer.add_string buf (Printf.sprintf " unified=%d" (Requirements.unified sched));
  let swapped, st = Swap.improve sched in
  Buffer.add_string buf
    (Printf.sprintf " swaps=%d init=%d final=%d swreq=%d" st.Swap.swaps
       st.Swap.initial_cost st.Swap.final_cost
       (Requirements.partitioned swapped).Requirements.requirement);
  let o = Ncdrf_sim.Executor.run_clustered ~iterations:12 sched in
  Buffer.add_string buf
    (Printf.sprintf " cap=%d cyc=%d rd=%d nst=%d stall=%d\n"
       o.Ncdrf_sim.Executor.capacity o.Ncdrf_sim.Executor.cycles
       o.Ncdrf_sim.Executor.register_reads
       (List.length o.Ncdrf_sim.Executor.stores)
       o.Ncdrf_sim.Executor.port_stalls)

let digest_of configs =
  let buf = Buffer.create 4096 in
  let loops = digest_loops () in
  List.iter (fun config -> List.iter (summary_line buf config) loops) configs;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let test_dual_digest () =
  check_string "dual L3+L6 summary digest" "5351d613034de8fb19363aaf5dca749c"
    (digest_of [ Config.dual ~latency:3; Config.dual ~latency:6 ])

let test_k4_digest () =
  let config = Config.k_cluster ~k:4 ~latency:3 () in
  check_string "k4 L3 summary digest" "4b89ab3f755fe01083158a54250e054f"
    (digest_of [ config ]);
  (* The 4-cluster suite must actually exercise the Shared class — if it
     never arises the generalized classification is untestable here. *)
  let shared =
    List.exists
      (fun ddg ->
        List.exists
          (fun (_, cls) -> match cls with Classify.Shared _ -> true | _ -> false)
          (Classify.classify (Modulo.schedule config ddg)))
      (digest_loops ())
  in
  check_bool "some Shared value at k=4" true shared

let test_port_capped_digest () =
  check_string "k2 r2,w1 L3 summary digest" "296b46fa01a4a1ceef1209ff01c27296"
    (digest_of [ Config.k_cluster ~read_ports:2 ~write_ports:1 ~k:2 ~latency:3 () ])

(* ------------------------------------------------------------------ *)
(* k=2 without port caps IS the dual machine: same config, same summary
   bytes, same executor outcome, and the Shared class never appears.   *)
(* ------------------------------------------------------------------ *)

let case_arb =
  QCheck.make
    ~print:(fun (seed, latency, idx) -> Printf.sprintf "seed=%d L=%d idx=%d" seed latency idx)
    QCheck.Gen.(
      triple (int_bound 5000) (oneofl [ 3; 6 ]) (int_bound 5))

let prop_k2_is_dual =
  QCheck.Test.make ~count:20 ~name:"k_cluster at k=2 without caps = dual path" case_arb
    (fun (seed, latency, idx) ->
      let ddg =
        (List.nth (Ncdrf_workloads.Suite.full ~size:6 ~seed ()) idx)
          .Ncdrf_workloads.Suite.ddg
      in
      let dual = Config.dual ~latency in
      let k2 = Config.k_cluster ~k:2 ~latency () in
      let line config =
        let buf = Buffer.create 256 in
        summary_line buf config ddg;
        Buffer.contents buf
      in
      Config.fingerprint dual = Config.fingerprint k2
      && line dual = line k2
      && (let sched = Modulo.schedule k2 ddg in
          Ncdrf_sim.Executor.run_dual ~iterations:8 sched
          = Ncdrf_sim.Executor.run_clustered ~iterations:8 sched
          && List.for_all
               (fun (_, cls) ->
                 match cls with Classify.Shared _ -> false | _ -> true)
               (Classify.classify sched)))

(* ------------------------------------------------------------------ *)
(* Shared-class semantics on a hand-built 3-cluster schedule.          *)
(* ------------------------------------------------------------------ *)

(* a (load, cluster 0) feeds u (fadd, cluster 0) and v (fmul, cluster
   2); each feeds a store.  a's consumers span clusters {0, 2} but not
   cluster 1, so a is Shared [0; 2] and replicated in exactly those
   subfiles; u and v are Local. *)
let shared_schedule () =
  let b = Ddg.Builder.create ~name:"shared3" in
  let n op l = Ddg.Builder.add_node b op ~label:l in
  let a = n (Opcode.Load (Opcode.Array "x")) "a" in
  let u = n Opcode.Fadd "u" in
  let v = n Opcode.Fmul "v" in
  let s0 = n (Opcode.Store (Opcode.Array "y")) "s0" in
  let s1 = n (Opcode.Store (Opcode.Array "z")) "s1" in
  let e src dst = Ddg.Builder.add_edge b ~src ~dst ~distance:0 Ddg.Flow in
  e a u;
  e a v;
  e u s0;
  e v s1;
  let ddg = Ddg.Builder.freeze b in
  let config = Config.k_cluster ~k:3 ~latency:3 () in
  let placements =
    [| { Schedule.cycle = 0; cluster = 0 } (* a *);
       { Schedule.cycle = 2; cluster = 0 } (* u *);
       { Schedule.cycle = 2; cluster = 2 } (* v *);
       { Schedule.cycle = 6; cluster = 0 } (* s0 *);
       { Schedule.cycle = 6; cluster = 2 } (* s1 *) |]
  in
  Schedule.make ~config ~ii:4 ~placements ddg

let test_shared_classification () =
  let sched = shared_schedule () in
  let classes = Classify.classify sched in
  let class_of label =
    let _, cls =
      List.find (fun (n, _) -> String.equal n.Ddg.label label) classes
    in
    cls
  in
  check_bool "a is Shared [0;2]" true
    (Classify.equal (class_of "a") (Classify.Shared [ 0; 2 ]));
  check_bool "u is Local 0" true (Classify.equal (class_of "u") (Classify.Local 0));
  check_bool "v is Local 2" true (Classify.equal (class_of "v") (Classify.Local 2));
  Alcotest.(check (list int))
    "Shared replicas" [ 0; 2 ]
    (Classify.clusters_of ~num_clusters:3 (Classify.Shared [ 0; 2 ]));
  Alcotest.(check (list int))
    "Global replicas" [ 0; 1; 2 ]
    (Classify.clusters_of ~num_clusters:3 Classify.Global);
  Alcotest.(check (list int))
    "Local replicas" [ 1 ]
    (Classify.clusters_of ~num_clusters:3 (Classify.Local 1));
  let replicated, locals = Classify.counts sched in
  check_int "one replicated value" 1 replicated;
  check_int "cluster 0 locals" 1 locals.(0);
  check_int "cluster 1 locals" 0 locals.(1);
  check_int "cluster 2 locals" 1 locals.(2)

let test_shared_allocation () =
  let sched = shared_schedule () in
  let alloc = Requirements.partitioned_allocation sched in
  (match alloc.Requirements.globals with
  | [ (_, replicas) ] -> Alcotest.(check (list int)) "replica set" [ 0; 2 ] replicas
  | gs -> Alcotest.failf "expected one replicated value, got %d" (List.length gs));
  check_int "cluster 0 locals placed" 1 (List.length alloc.Requirements.locals.(0));
  check_int "cluster 1 locals placed" 0 (List.length alloc.Requirements.locals.(1));
  check_int "cluster 2 locals placed" 1 (List.length alloc.Requirements.locals.(2));
  (* Cluster 1 never holds the shared value: its requirement is 0. *)
  let d = Requirements.partitioned sched in
  check_int "cluster 1 requirement" 0 d.Requirements.cluster_requirements.(1);
  check_int "cluster 1 locals requirement" 0 d.Requirements.local_requirements.(1)

(* ------------------------------------------------------------------ *)
(* Port budgets: distinct fingerprints (distinct compile-cache keys)
   and executor stall accounting.                                      *)
(* ------------------------------------------------------------------ *)

let test_fingerprint_port_budgets () =
  let fp c = Config.fingerprint c in
  let dual = Config.dual ~latency:3 in
  check_string "k=2 without caps keeps the dual fingerprint" (fp dual)
    (fp (Config.k_cluster ~k:2 ~latency:3 ()));
  check_string "and the dual display name" "dual-L3"
    (Config.k_cluster ~k:2 ~latency:3 ()).Config.name;
  let r4w2 = Config.k_cluster ~read_ports:4 ~write_ports:2 ~k:2 ~latency:3 () in
  let r2w2 = Config.k_cluster ~read_ports:2 ~write_ports:2 ~k:2 ~latency:3 () in
  let r4w1 = Config.k_cluster ~read_ports:4 ~write_ports:1 ~k:2 ~latency:3 () in
  check_bool "port caps change the fingerprint" false (fp dual = fp r4w2);
  check_bool "read-port budget is keyed" false (fp r4w2 = fp r2w2);
  check_bool "write-port budget is keyed" false (fp r4w2 = fp r4w1);
  check_bool "capped config reports caps" true (Config.has_port_caps r4w2);
  check_bool "dual has no caps" false (Config.has_port_caps dual);
  check_string "capped name is not the dual name" "k2-L3" r4w2.Config.name

let test_executor_port_stalls () =
  let uncapped = Config.dual ~latency:3 in
  let capped = Config.k_cluster ~read_ports:2 ~write_ports:1 ~k:2 ~latency:3 () in
  let total_stalls = ref 0 in
  List.iter
    (fun ddg ->
      let free = Ncdrf_sim.Executor.run_clustered ~iterations:8
          (Modulo.schedule uncapped ddg)
      in
      let tight = Ncdrf_sim.Executor.run_clustered ~iterations:8
          (Modulo.schedule capped ddg)
      in
      check_int "no stalls without caps" 0 free.Ncdrf_sim.Executor.port_stalls;
      (* Stalls are lockstep accounting on top of the same issue
         sequence: results and reads are unchanged, cycles grow by
         exactly the stall count. *)
      check_bool "same stores" true
        (free.Ncdrf_sim.Executor.stores = tight.Ncdrf_sim.Executor.stores);
      check_int "same register reads" free.Ncdrf_sim.Executor.register_reads
        tight.Ncdrf_sim.Executor.register_reads;
      check_int "cycles grow by the stall count"
        (free.Ncdrf_sim.Executor.cycles + tight.Ncdrf_sim.Executor.port_stalls)
        tight.Ncdrf_sim.Executor.cycles;
      total_stalls := !total_stalls + tight.Ncdrf_sim.Executor.port_stalls)
    (digest_loops ());
  check_bool "tight caps stall somewhere" true (!total_stalls > 0)

let suite =
  [
    Alcotest.test_case "dual fixed-seed digest" `Quick test_dual_digest;
    Alcotest.test_case "k=4 fixed-seed digest" `Quick test_k4_digest;
    Alcotest.test_case "port-capped fixed-seed digest" `Quick test_port_capped_digest;
    QCheck_alcotest.to_alcotest prop_k2_is_dual;
    Alcotest.test_case "Shared classification at k=3" `Quick test_shared_classification;
    Alcotest.test_case "Shared replication in allocation" `Quick test_shared_allocation;
    Alcotest.test_case "port budgets key the fingerprint" `Quick
      test_fingerprint_port_budgets;
    Alcotest.test_case "executor port-stall accounting" `Quick test_executor_port_stalls;
  ]
