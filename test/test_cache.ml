(* The compile cache and the staged-artifact layer built on it: cache
   unit behaviour (hit/miss accounting, LRU eviction, tiny capacities,
   concurrent access), key injectivity (Ddg.digest, Config.fingerprint),
   the determinism guard (cached runs byte-identical to cache-disabled
   runs), the swaps-under-capacity regression, and the rewritten
   cumulative distribution against the old fold. *)

open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched
open Ncdrf_core
module Cache = Ncdrf_cache.Cache
module Pool = Ncdrf_parallel.Pool
module Telemetry = Ncdrf_telemetry.Telemetry
module Generator = Ncdrf_workloads.Generator

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Cache unit tests.                                                   *)
(* ------------------------------------------------------------------ *)

let test_cache_hit_miss () =
  let c : int Cache.t = Cache.create ~name:"t" ~capacity:8 () in
  let computes = ref 0 in
  let get k v =
    Cache.find_or_add c ~key:k (fun () ->
        incr computes;
        v)
  in
  check_int "first lookup computes" 1 (get "a" 1);
  check_int "second lookup hits" 1 (get "a" 99);
  check_int "computed once" 1 !computes;
  check_int "other key computes" 2 (get "b" 2);
  let s = Cache.stats c in
  check_int "hits" 1 s.Cache.hits;
  check_int "misses" 2 s.Cache.misses;
  check_int "size" 2 s.Cache.size;
  check_int "evictions" 0 s.Cache.evictions;
  (match Cache.find c ~key:"a" with
   | Some 1 -> ()
   | Some _ | None -> Alcotest.fail "find misses a cached key");
  check_bool "find on absent key" true (Cache.find c ~key:"zzz" = None);
  Cache.clear c;
  check_int "clear empties" 0 (Cache.stats c).Cache.size;
  check_int "cleared key recomputes" 7 (get "a" 7)

let test_cache_lru_eviction () =
  (* One stripe so the LRU order is global and observable. *)
  let c : int Cache.t = Cache.create ~stripes:1 ~name:"lru" ~capacity:2 () in
  let add k v = ignore (Cache.find_or_add c ~key:k (fun () -> v)) in
  add "a" 1;
  add "b" 2;
  (* Touch "a" so "b" is the least recently used entry. *)
  ignore (Cache.find c ~key:"a");
  add "c" 3;
  check_bool "a survives (recently used)" true (Cache.find c ~key:"a" = Some 1);
  check_bool "b evicted (LRU)" true (Cache.find c ~key:"b" = None);
  check_bool "c resident" true (Cache.find c ~key:"c" = Some 3);
  let s = Cache.stats c in
  check_int "one eviction" 1 s.Cache.evictions;
  check_int "size stays at capacity" 2 s.Cache.size

let test_cache_capacity_one () =
  let c : string Cache.t = Cache.create ~stripes:1 ~name:"tiny" ~capacity:1 () in
  (* Every value still comes back right while entries thrash. *)
  for i = 0 to 19 do
    let k = string_of_int (i mod 3) in
    check_string "value correct under thrash" k (Cache.find_or_add c ~key:k (fun () -> k))
  done;
  let s = Cache.stats c in
  check_int "never over capacity" 1 s.Cache.size;
  check_bool "evictions happened" true (s.Cache.evictions > 0);
  check_int "every call counted" 20 (s.Cache.hits + s.Cache.misses)

let test_cache_concurrent () =
  let c : int Cache.t = Cache.create ~name:"par" ~capacity:64 () in
  let calls = 400 in
  Pool.with_pool ~jobs:4 (fun pool ->
      let out =
        Pool.map pool
          (fun i ->
            let k = i mod 8 in
            Cache.find_or_add c ~key:(string_of_int k) (fun () -> k * k))
          (List.init calls Fun.id)
      in
      List.iteri (fun i v -> check_int "concurrent value" (i mod 8 * (i mod 8)) v) out);
  let s = Cache.stats c in
  (* Racing computes may double-count misses, but every call settles as
     exactly one hit or miss, and the table never exceeds the key set. *)
  check_int "hits + misses = calls" calls (s.Cache.hits + s.Cache.misses);
  check_bool "at least one miss per distinct key" true (s.Cache.misses >= 8);
  check_int "eight residents" 8 s.Cache.size

(* ------------------------------------------------------------------ *)
(* Key injectivity: Ddg.digest and Config.fingerprint.                 *)
(* ------------------------------------------------------------------ *)

let test_digest_deterministic_and_sensitive () =
  let gen seed = Generator.generate Generator.default ~seed ~name:"dig" in
  check_string "same graph, same digest" (Ddg.digest (gen 3)) (Ddg.digest (gen 3));
  check_bool "different graph, different digest" true
    (Ddg.digest (gen 3) <> Ddg.digest (gen 4));
  (* Memoization must not change the value. *)
  let g = gen 5 in
  check_string "memoized digest stable" (Ddg.digest g) (Ddg.digest g);
  (* The paper example from two constructions digests identically. *)
  check_string "structurally equal graphs agree"
    (Ddg.digest (Ncdrf_workloads.Kernels.paper_example ()))
    (Ddg.digest (Ncdrf_workloads.Kernels.paper_example ()))

let test_fingerprint_sensitive () =
  let fp = Config.fingerprint in
  check_string "fingerprint deterministic"
    (fp (Config.dual ~latency:3))
    (fp (Config.dual ~latency:3));
  check_bool "latency changes it" true
    (fp (Config.dual ~latency:3) <> fp (Config.dual ~latency:6));
  check_bool "parallelism changes it" true
    (fp (Config.pxly ~parallelism:1 ~latency:3)
     <> fp (Config.pxly ~parallelism:2 ~latency:3));
  check_bool "dual vs pxly differ" true
    (fp (Config.dual ~latency:3) <> fp (Config.pxly ~parallelism:2 ~latency:3))

(* ------------------------------------------------------------------ *)
(* Determinism: cached == warm == cache-disabled, for Pipeline.run.    *)
(* ------------------------------------------------------------------ *)

(* %h renders the exact bit pattern, so string equality of this
   rendering is byte-for-byte equality of the stats, schedule included. *)
let render_stats (st : Pipeline.stats) =
  let sched = st.Pipeline.schedule in
  let placements =
    String.concat ";"
      (List.init (Ddg.num_nodes sched.Schedule.ddg) (fun v ->
           Printf.sprintf "%d,%d" (Schedule.cycle sched v) (Schedule.cluster sched v)))
  in
  Printf.sprintf
    "%s %s mii=%d ii=%d stages=%d req=%d cap=%s fits=%b spilled=%d addmem=%d bumps=%d \
     memops=%d density=%h swaps=%d sched_ii=%d [%s]"
    st.Pipeline.name
    (Model.to_string st.Pipeline.model)
    st.Pipeline.mii st.Pipeline.ii st.Pipeline.stages st.Pipeline.requirement
    (match st.Pipeline.capacity with None -> "-" | Some c -> string_of_int c)
    st.Pipeline.fits st.Pipeline.spilled st.Pipeline.added_memops st.Pipeline.ii_bumps
    st.Pipeline.memops_per_iter st.Pipeline.density st.Pipeline.swaps (Schedule.ii sched)
    placements

let with_cache_disabled f =
  Artifact.set_cache_enabled false;
  Fun.protect ~finally:(fun () -> Artifact.set_cache_enabled true) f

let prop_pipeline_cold_warm_uncached =
  let arb =
    QCheck.make
      ~print:(fun (seed, lat, cap) ->
        Printf.sprintf "seed=%d lat=%d cap=%s" seed lat
          (match cap with None -> "-" | Some c -> string_of_int c))
      QCheck.Gen.(triple (int_bound 20_000) (int_range 1 8) (opt (int_range 8 64)))
  in
  QCheck.Test.make ~count:25
    ~name:"pipeline cold == warm == cache-disabled (all models, both latencies)" arb
    (fun (seed, latency, capacity) ->
      let ddg = Generator.generate Generator.default ~seed ~name:"cache-prop" in
      let config = Config.dual ~latency in
      List.for_all
        (fun model ->
          Artifact.clear_cache ();
          let run () = render_stats (Pipeline.run ~config ~model ?capacity ddg) in
          let cold = run () in
          let warm = run () in
          let off = with_cache_disabled run in
          String.equal cold warm && String.equal cold off)
        Model.all)

let test_capacity_one_artifact_cache_correct () =
  (* A cache that can hold a single entry thrashes on every stage but
     must never change a result. *)
  Fun.protect
    ~finally:(fun () -> Artifact.set_cache_capacity Artifact.default_capacity)
    (fun () ->
      let config = Config.dual ~latency:6 in
      let loops =
        List.filteri (fun i _ -> i < 6) (Ncdrf_workloads.Suite.full ~size:40 ~seed:2025 ())
      in
      let everything () =
        List.concat_map
          (fun (e : Ncdrf_workloads.Suite.entry) ->
            List.concat_map
              (fun model ->
                [ render_stats (Pipeline.run ~config ~model e.ddg);
                  render_stats (Pipeline.run ~config ~model ~capacity:24 e.ddg) ])
              Model.all)
          loops
      in
      let reference = with_cache_disabled everything in
      Artifact.set_cache_capacity 1;
      let thrashed = everything () in
      Alcotest.(check (list string)) "capacity-1 cache is invisible" reference thrashed;
      check_bool "the tiny cache really evicted" true
        ((Artifact.cache_stats ()).Ncdrf_cache.Cache.evictions > 0))

(* ------------------------------------------------------------------ *)
(* Determinism guard: fixed-seed 40-loop suite, cache on vs off.       *)
(* ------------------------------------------------------------------ *)

let fixed_suite () =
  List.map
    (fun e ->
      { Suite_stats.ddg = e.Ncdrf_workloads.Suite.ddg;
        weight = e.Ncdrf_workloads.Suite.iterations })
    (Ncdrf_workloads.Suite.full ~size:40 ~seed:2025 ())

let render_measurement (m : Suite_stats.measurement) =
  Printf.sprintf "%s w=%h req=%d ii=%d"
    (Ddg.name m.Suite_stats.loop.Suite_stats.ddg)
    m.Suite_stats.loop.Suite_stats.weight m.Suite_stats.requirement m.Suite_stats.ii

let render_performance (p : Suite_stats.performance) =
  Printf.sprintf "relative=%h density=%h spills=%d loops_spilled=%d unfit=%d"
    p.Suite_stats.relative p.Suite_stats.density p.Suite_stats.total_spills
    p.Suite_stats.loops_spilled p.Suite_stats.unfit

let test_determinism_guard () =
  let loops = fixed_suite () in
  let snapshot () =
    List.concat_map
      (fun latency ->
        let config = Config.dual ~latency in
        let measured =
          Suite_stats.measure_all ~config ~models:Model.all loops
          |> List.concat_map (fun (model, ms) ->
                 Model.to_string model :: List.map render_measurement ms)
        in
        let perf =
          List.map
            (fun model ->
              render_performance
                (Suite_stats.performance ~config ~model ~capacity:32 loops))
            Model.all
        in
        measured @ perf)
      [ 3; 6 ]
  in
  Artifact.clear_cache ();
  let cached = snapshot () in
  let uncached = with_cache_disabled snapshot in
  Alcotest.(check (list string)) "cached run byte-identical to cache-disabled run"
    uncached cached;
  (* And a second, fully warm pass changes nothing either. *)
  Alcotest.(check (list string)) "warm rerun byte-identical" cached (snapshot ())

(* ------------------------------------------------------------------ *)
(* Regression: swaps under a register capacity.                        *)
(* ------------------------------------------------------------------ *)

let test_swaps_reported_under_capacity () =
  (* Pipeline.run used to count the spiller's final schedule against
     itself, so every capacity run reported swaps = 0.  A capacity run
     that fits without spilling must report the same swaps as the
     unlimited-register run of the same loop. *)
  let config = Config.dual ~latency:3 in
  let ddg = Ncdrf_workloads.Kernels.paper_example () in
  let free = Pipeline.run ~config ~model:Model.Swapped ddg in
  check_bool "the example actually swaps" true (free.Pipeline.swaps > 0);
  let capped = Pipeline.run ~config ~model:Model.Swapped ~capacity:64 ddg in
  check_int "fits-first-try capacity run reports the swaps" free.Pipeline.swaps
    capped.Pipeline.swaps;
  check_int "no spilling in this case" 0 capped.Pipeline.spilled;
  (* Across the fixed suite at a tight capacity, spilling happens and
     swaps still show up; other models keep reporting 0. *)
  let config = Config.dual ~latency:6 in
  let loops = fixed_suite () in
  let stats =
    List.map
      (fun l -> Pipeline.run ~config ~model:Model.Swapped ~capacity:24 l.Suite_stats.ddg)
      loops
  in
  check_bool "some loop spilled" true
    (List.exists (fun st -> st.Pipeline.spilled > 0) stats);
  check_bool "swaps reported under capacity" true
    (List.exists (fun st -> st.Pipeline.swaps > 0) stats);
  check_bool "a spilled loop reports swaps" true
    (List.exists (fun st -> st.Pipeline.spilled > 0 && st.Pipeline.swaps > 0) stats);
  let unified =
    Pipeline.run ~config ~model:Model.Unified ~capacity:24 (List.hd loops).Suite_stats.ddg
  in
  check_int "unified never swaps" 0 unified.Pipeline.swaps

(* ------------------------------------------------------------------ *)
(* Cumulative distribution: sorted prefix sums == the old fold.        *)
(* ------------------------------------------------------------------ *)

(* The pre-rewrite implementation, kept verbatim as the reference. *)
let naive_cumulative ~weight_of measurements ~points =
  let total = List.fold_left (fun acc m -> acc +. weight_of m) 0.0 measurements in
  let at r =
    let covered =
      List.fold_left
        (fun acc (m : Suite_stats.measurement) ->
          if m.Suite_stats.requirement <= r then acc +. weight_of m else acc)
        0.0 measurements
    in
    if total = 0.0 then 0.0 else 100.0 *. covered /. total
  in
  List.map (fun r -> (r, at r)) points

let test_cumulative_matches_naive_fold () =
  let loops = fixed_suite () in
  (* Unsorted, duplicated and out-of-range points exercise the binary
     search at both ends. *)
  let points = [ 32; 8; 8; 0; -1; 1000; 16; 64; 24 ] in
  let point_t = Alcotest.(pair int (float 0.0)) in
  List.iter
    (fun config ->
      List.iter
        (fun model ->
          let ms = Suite_stats.measure ~config ~model loops in
          Alcotest.check (Alcotest.list point_t)
            (Printf.sprintf "static %s/%s" config.Config.name (Model.to_string model))
            (naive_cumulative ~weight_of:(fun _ -> 1.0) ms ~points)
            (Suite_stats.static_cumulative ms ~points);
          Alcotest.check (Alcotest.list point_t)
            (Printf.sprintf "dynamic %s/%s" config.Config.name (Model.to_string model))
            (naive_cumulative
               ~weight_of:(fun m ->
                 m.Suite_stats.loop.Suite_stats.weight *. float_of_int m.Suite_stats.ii)
               ms ~points)
            (Suite_stats.dynamic_cumulative ms ~points))
        [ Model.Unified; Model.Partitioned; Model.Swapped ])
    [ Config.dual ~latency:3; Config.dual ~latency:6 ];
  (* Degenerate inputs. *)
  Alcotest.check (Alcotest.list point_t) "empty suite" [ (16, 0.0) ]
    (Suite_stats.static_cumulative [] ~points:[ 16 ])

(* ------------------------------------------------------------------ *)
(* measure_all: one scheduling pass per loop, measure is a projection. *)
(* ------------------------------------------------------------------ *)

let test_measure_all_schedules_once () =
  let loops = fixed_suite () in
  let config = Config.dual ~latency:3 in
  let n = List.length loops in
  Telemetry.enable true;
  Fun.protect
    ~finally:(fun () ->
      Telemetry.enable false;
      Telemetry.reset ())
    (fun () ->
      Artifact.clear_cache ();
      Telemetry.reset ();
      let by_model = Suite_stats.measure_all ~config ~models:Model.all loops in
      check_int "one schedule span per loop, all models" n
        (Telemetry.span_count "schedule");
      check_int "one pipeline.loops bump per loop" n (Telemetry.counter "pipeline.loops");
      check_int "a measurement list per model" (List.length Model.all)
        (List.length by_model);
      (* A warm rerun adds no schedule spans at all. *)
      ignore (Suite_stats.measure_all ~config ~models:Model.all loops);
      check_int "warm rerun schedules nothing" n (Telemetry.span_count "schedule");
      (* Ideal and Unified share one view; their measurements agree. *)
      let req model =
        List.map (fun m -> m.Suite_stats.requirement) (List.assoc model by_model)
      in
      Alcotest.(check (list int)) "ideal == unified requirement" (req Model.Ideal)
        (req Model.Unified);
      (* measure is the single-model projection of measure_all. *)
      List.iter
        (fun model ->
          Alcotest.(check (list string))
            ("measure == measure_all: " ^ Model.to_string model)
            (List.map render_measurement (List.assoc model by_model))
            (List.map render_measurement (Suite_stats.measure ~config ~model loops)))
        Model.all)

let suite =
  [
    Alcotest.test_case "cache hit/miss/clear accounting" `Quick test_cache_hit_miss;
    Alcotest.test_case "cache evicts least recently used" `Quick test_cache_lru_eviction;
    Alcotest.test_case "capacity-1 cache stays correct" `Quick test_cache_capacity_one;
    Alcotest.test_case "cache is safe under concurrent domains" `Quick
      test_cache_concurrent;
    Alcotest.test_case "ddg digest deterministic and sensitive" `Quick
      test_digest_deterministic_and_sensitive;
    Alcotest.test_case "config fingerprint sensitive" `Quick test_fingerprint_sensitive;
    QCheck_alcotest.to_alcotest prop_pipeline_cold_warm_uncached;
    Alcotest.test_case "capacity-1 artifact cache stays correct" `Quick
      test_capacity_one_artifact_cache_correct;
    Alcotest.test_case "determinism guard: cache on == off on fixed suite" `Quick
      test_determinism_guard;
    Alcotest.test_case "swaps are reported under a capacity" `Quick
      test_swaps_reported_under_capacity;
    Alcotest.test_case "cumulative == naive fold" `Quick test_cumulative_matches_naive_fold;
    Alcotest.test_case "measure_all schedules each loop once" `Quick
      test_measure_all_schedules_once;
  ]
