let () =
  Alcotest.run "ncdrf"
    [
      ("ir", Test_ir.suite);
      ("machine", Test_machine.suite);
      ("sched", Test_sched.suite);
      ("regalloc", Test_regalloc.suite);
      ("conflict", Test_conflict.suite);
      ("spill", Test_spill.suite);
      ("core", Test_core.suite);
      ("cache", Test_cache.suite);
      ("store", Test_store.suite);
      ("workloads", Test_workloads.suite);
      ("parallel", Test_parallel.suite);
      ("trace", Test_trace.suite);
      ("robustness", Test_robustness.suite);
      ("extensions", Test_extensions.suite);
      ("sim", Test_sim.suite);
      ("kcluster", Test_kcluster.suite);
      ("server", Test_server.suite);
    ]
