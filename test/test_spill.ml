(* Tests for the naive spiller and traffic accounting. *)

open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched
open Ncdrf_spill
open Ncdrf_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let kernel name =
  match Ncdrf_workloads.Kernels.find name with
  | Some g -> g
  | None -> Alcotest.failf "kernel %s missing" name

let unified_requirement sched = (sched, Requirements.unified sched)

let test_no_spill_when_capacity_suffices () =
  let config = Config.example () in
  let ddg = Helpers.example_ddg () in
  let outcome = Spiller.run ~config ~requirement:unified_requirement ~capacity:64 ddg in
  check_bool "fits" true outcome.Spiller.fits;
  check_int "no spills" 0 outcome.Spiller.spilled;
  check_int "requirement is 42" 42 outcome.Spiller.requirement

let test_spilling_reduces_requirement () =
  let config = Config.example () in
  let ddg = Helpers.example_ddg () in
  let outcome = Spiller.run ~config ~requirement:unified_requirement ~capacity:30 ddg in
  check_bool "fits" true outcome.Spiller.fits;
  check_bool "spilled something" true (outcome.Spiller.spilled > 0);
  check_bool "requirement within capacity" true (outcome.Spiller.requirement <= 30);
  check_bool "memops added" true (outcome.Spiller.added_memops > 0);
  Helpers.check_valid "spilled schedule" outcome.Spiller.schedule

let test_spill_adds_store_and_loads () =
  (* Spilling a value with k consumers adds 1 store + k loads. *)
  let config = Config.example () in
  let ddg = Helpers.example_ddg () in
  let outcome = Spiller.run ~config ~requirement:unified_requirement ~capacity:35 ddg in
  check_bool "one spill expected" true (outcome.Spiller.spilled >= 1);
  (* First spilled value is L1 (longest lifetime, 2 consumers):
     1 store + 2 loads. *)
  check_bool "memops consistent" true
    (outcome.Spiller.added_memops >= (2 * outcome.Spiller.spilled));
  let spill_ops =
    Ddg.fold_nodes outcome.Spiller.ddg ~init:0 ~f:(fun acc n ->
        if Opcode.is_spill_access n.Ddg.opcode then acc + 1 else acc)
  in
  check_int "spill ops in graph" outcome.Spiller.added_memops spill_ops

let test_spill_first_victim_is_longest () =
  let config = Config.example () in
  let ddg = Helpers.example_ddg () in
  let outcome = Spiller.run ~config ~requirement:unified_requirement ~capacity:35 ddg in
  (* L1 (lifetime 13) must be the first victim: its consumers M3 and A6
     now read spill loads, so L1's only consumer is the spill store. *)
  let l1 = Helpers.node_by_label outcome.Spiller.ddg "L1" in
  let consumers = Ddg.consumers outcome.Spiller.ddg l1.Ddg.id in
  (match consumers with
   | [ e ] ->
     let c = Ddg.node outcome.Spiller.ddg e.Ddg.dst in
     check_bool "consumer is a spill store" true
       (match c.Ddg.opcode with Opcode.Store (Opcode.Spill _) -> true | _ -> false)
   | _ -> Alcotest.failf "L1 has %d consumers after spill" (List.length consumers))

let test_spilled_values_not_respilled () =
  (* Tiny capacity forces many rounds; termination + no spill-of-spill. *)
  let config = Config.example () in
  let ddg = Helpers.example_ddg () in
  let outcome = Spiller.run ~config ~requirement:unified_requirement ~capacity:12 ddg in
  check_bool "terminates" true (outcome.Spiller.rounds <= 64);
  let ok =
    Ddg.fold_nodes outcome.Spiller.ddg ~init:true ~f:(fun acc n ->
        match n.Ddg.opcode with
        | Opcode.Load (Opcode.Spill _) ->
          (* a spill load's value must never feed a spill store *)
          acc
          && List.for_all
               (fun e ->
                 match (Ddg.node outcome.Spiller.ddg e.Ddg.dst).Ddg.opcode with
                 | Opcode.Store (Opcode.Spill _) -> false
                 | _ -> true)
               (Ddg.consumers outcome.Spiller.ddg n.Ddg.id)
        | _ -> acc)
  in
  check_bool "no spill chains" true ok

let test_spill_raises_ii_under_memory_pressure () =
  (* dual has 2 LS units; the example already uses 3 memory ops, so
     spilling must push ResMII (and II) up. *)
  let config = Config.dual ~latency:6 in
  let ddg = Helpers.example_ddg () in
  let free = Pipeline.run ~config ~model:Model.Unified ddg in
  let tight = Pipeline.run ~config ~model:Model.Unified ~capacity:20 ddg in
  check_bool "fits" true tight.Pipeline.fits;
  check_bool "II grew or no spill was needed" true
    (tight.Pipeline.spilled = 0 || tight.Pipeline.ii >= free.Pipeline.ii)

let test_safety_valve_ii_bump () =
  (* Capacity below what spilling alone can reach: every value spilled
     still needs ~latency-long reload lifetimes.  The spiller must fall
     back to II bumps and still terminate. *)
  let config = Config.dual ~latency:6 in
  let ddg = kernel "ll7-state" in
  let outcome = Spiller.run ~config ~requirement:unified_requirement ~capacity:4 ddg in
  check_bool "terminated" true (outcome.Spiller.rounds <= 64 + 32);
  check_bool "bumped II or fit" true (outcome.Spiller.fits || outcome.Spiller.ii_bumps > 0)

let test_traffic_density () =
  let config = Config.dual ~latency:3 in
  let ddg = Helpers.example_ddg () in
  let sched = Modulo.schedule config ddg in
  (* 3 memory ops, bandwidth 2: II is at least 2 (ResMII); density =
     3 / (II * 2). *)
  let expected =
    3.0 /. (float_of_int (Schedule.ii sched) *. 2.0)
  in
  Alcotest.(check (float 1e-9)) "density" expected (Traffic.density sched);
  check_int "memops" 3 (Traffic.memops_per_iteration ddg)

let test_aggregate_density_weighted () =
  let config = Config.dual ~latency:3 in
  let s1 = Modulo.schedule config (Helpers.example_ddg ()) in
  let s2 = Modulo.schedule config (kernel "daxpy") in
  let agg = Traffic.aggregate_density [ (s1, 1.0); (s2, 0.0) ] in
  Alcotest.(check (float 1e-9)) "zero weight ignored" (Traffic.density s1) agg;
  let agg2 = Traffic.aggregate_density [ (s1, 2.0); (s2, 2.0) ] in
  check_bool "between the two densities" true
    (let lo = min (Traffic.density s1) (Traffic.density s2)
     and hi = max (Traffic.density s1) (Traffic.density s2) in
     agg2 >= lo -. 1e-9 && agg2 <= hi +. 1e-9)

let test_spiller_under_partitioned_model () =
  let config = Config.dual ~latency:6 in
  let ddg = kernel "ll9-integrate" in
  let requirement sched =
    let swapped, _ = Swap.improve sched in
    (swapped, (Requirements.partitioned swapped).Requirements.requirement)
  in
  let outcome = Spiller.run ~config ~requirement ~capacity:16 ddg in
  check_bool "fits" true outcome.Spiller.fits;
  check_bool "within capacity" true (outcome.Spiller.requirement <= 16);
  Helpers.check_valid "swapped+spilled schedule" outcome.Spiller.schedule

(* --- Fission (paper 5.4 option 2) --- *)

let test_fission_splits_example () =
  let ddg = Helpers.example_ddg () in
  match Fission.split ddg with
  | None -> Alcotest.fail "example loop should be splittable"
  | Some s ->
    check_bool "first validates" true (Ddg.validate s.Fission.first = Ok ());
    check_bool "second validates" true (Ddg.validate s.Fission.second = Ok ());
    check_bool "cut is non-trivial" true (s.Fission.cut_values > 0);
    (* Each cut value costs one store and one load. *)
    check_int "memops added" (2 * s.Fission.cut_values) s.Fission.added_memops;
    (* All original operations survive, plus the scratch traffic. *)
    check_int "node conservation"
      (Ddg.num_nodes ddg + s.Fission.added_memops)
      (Ddg.num_nodes s.Fission.first + Ddg.num_nodes s.Fission.second)

let test_fission_reduces_pressure () =
  let config = Config.dual ~latency:6 in
  let requirement g = Requirements.unified (Modulo.schedule config g) in
  let ddg = kernel "ll7-state" in
  let original = requirement ddg in
  match Fission.split ddg with
  | None -> Alcotest.fail "ll7-state should be splittable"
  | Some s ->
    let worst = max (requirement s.Fission.first) (requirement s.Fission.second) in
    check_bool "pieces need fewer registers" true (worst < original)

let test_fission_respects_recurrences () =
  (* {load} -> {s-add recurrence} -> {store}: splittable, but the
     recurrence cycle must end up whole inside exactly one piece. *)
  let open Expr in
  let g =
    compile ~name:"one-scc" [ Def ("s", prev "s" + load "x"); Store ("o", ref_ "s") ]
  in
  match Fission.split g with
  | None -> Alcotest.fail "three-component loop should be splittable"
  | Some s ->
    let carried piece = List.exists (fun e -> e.Ddg.distance > 0) (Ddg.edges piece) in
    let pieces_with_recurrence =
      List.length (List.filter carried [ s.Fission.first; s.Fission.second ])
    in
    check_int "recurrence in exactly one piece" 1 pieces_with_recurrence

let test_fission_split_until () =
  let config = Config.dual ~latency:6 in
  let requirement g = Requirements.unified (Modulo.schedule config g) in
  let ddg = kernel "ll9-integrate" in
  let original = requirement ddg in
  let capacity = max 6 (original / 2) in
  let pieces, fits = Fission.split_until ~requirement ~capacity ddg in
  check_bool "at least two pieces" true (List.length pieces >= 2);
  List.iter
    (fun g -> check_bool "piece validates" true (Ddg.validate g = Ok ()))
    pieces;
  if fits then
    List.iter
      (fun g -> check_bool "piece fits" true (requirement g <= capacity))
      pieces

let test_fission_unsplittable () =
  let open Expr in
  (* Two ops locked in one SCC plus nothing else splittable off. *)
  let g = compile ~name:"lock" [ Def ("s", prev "s" + inv "c"); Store ("o", ref_ "s") ] in
  (* load-free; components: {add} -> {store}: still splittable into 2.
     A single node is not. *)
  (match Fission.split g with
   | Some s ->
     check_bool "both pieces non-empty" true
       (Ddg.num_nodes s.Fission.first > 0 && Ddg.num_nodes s.Fission.second > 0)
   | None -> ());
  let single =
    let b = Ddg.Builder.create ~name:"single" in
    ignore (Ddg.Builder.add_node b (Opcode.Load (Opcode.Array "x")) ~label:"L");
    Ddg.Builder.freeze b
  in
  check_bool "single node unsplittable" true (Fission.split single = None)

let prop_spiller_terminates_and_fits =
  let arb =
    QCheck.make
      ~print:(fun (seed, cap) -> Printf.sprintf "seed=%d cap=%d" seed cap)
      QCheck.Gen.(pair (int_bound 20_000) (int_range 12 48))
  in
  QCheck.Test.make ~count:25 ~name:"spiller terminates with a valid schedule" arb
    (fun (seed, capacity) ->
      let g =
        Ncdrf_workloads.Generator.generate Ncdrf_workloads.Generator.default ~seed
          ~name:"spill-prop"
      in
      let config = Config.dual ~latency:3 in
      let outcome =
        Spiller.run ~config ~requirement:unified_requirement ~capacity g
      in
      Schedule.validate outcome.Spiller.schedule = Ok ()
      && ((not outcome.Spiller.fits) || outcome.Spiller.requirement <= capacity))

let prop_fission_structural =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 30_000) in
  QCheck.Test.make ~count:40 ~name:"fission pieces are valid and conserve operations" arb
    (fun seed ->
      let g =
        Ncdrf_workloads.Generator.generate Ncdrf_workloads.Generator.heavy ~seed
          ~name:"fis-prop"
      in
      match Fission.split g with
      | None -> true
      | Some s ->
        Ddg.validate s.Fission.first = Ok ()
        && Ddg.validate s.Fission.second = Ok ()
        && Ddg.num_nodes s.Fission.first + Ddg.num_nodes s.Fission.second
           = Ddg.num_nodes g + s.Fission.added_memops)

(* --- Spiller vs the verbatim reference oracle --- *)

(* Outcomes are compared field by field; schedules via II + placements
   (plain int records) and graphs via their content digest, never with
   [=] on whole values — [Ddg.t] carries a mutable digest memo whose
   population depends on evaluation order. *)
let same_schedule a b =
  Schedule.ii a = Schedule.ii b
  && a.Schedule.placements = b.Schedule.placements
  && Ddg.digest a.Schedule.ddg = Ddg.digest b.Schedule.ddg

let same_outcome (o : Spiller.outcome) (r : Spiller_reference.outcome) =
  same_schedule o.Spiller.schedule r.Spiller.schedule
  && same_schedule o.Spiller.raw_schedule r.Spiller.raw_schedule
  && Ddg.digest o.Spiller.ddg = Ddg.digest r.Spiller.ddg
  && o.Spiller.requirement = r.Spiller.requirement
  && o.Spiller.fits = r.Spiller.fits
  && o.Spiller.spilled = r.Spiller.spilled
  && o.Spiller.added_memops = r.Spiller.added_memops
  && o.Spiller.ii_bumps = r.Spiller.ii_bumps
  && o.Spiller.rounds = r.Spiller.rounds
  && o.Spiller.error = r.Spiller.error

let same_spiller_outcome (o : Spiller.outcome) (r : Spiller.outcome) =
  same_schedule o.Spiller.schedule r.Spiller.schedule
  && same_schedule o.Spiller.raw_schedule r.Spiller.raw_schedule
  && Ddg.digest o.Spiller.ddg = Ddg.digest r.Spiller.ddg
  && o.Spiller.requirement = r.Spiller.requirement
  && o.Spiller.fits = r.Spiller.fits
  && o.Spiller.spilled = r.Spiller.spilled
  && o.Spiller.added_memops = r.Spiller.added_memops
  && o.Spiller.ii_bumps = r.Spiller.ii_bumps
  && o.Spiller.rounds = r.Spiller.rounds
  && o.Spiller.error = r.Spiller.error

(* A sound lower bound for [unified_requirement]: MaxLive never exceeds
   the unified minimum capacity. *)
let unified_lower_bound raw ~lifetimes =
  Ncdrf_regalloc.Lifetime.max_live ~ii:(Schedule.ii raw) (Lazy.force lifetimes)

let victims = [| Spiller.Longest_lifetime; Spiller.Best_ratio; Spiller.Fewest_consumers |]

(* The exact configuration the reference loop implements: no batching,
   no incremental rescheduling, and no II floor.  The floor is
   almost-identity but not identity — see the regression test below. *)
let reference_policy = { Spiller.batch = 1; incremental = false; ii_floor = false }

let spiller_eq_arb =
  QCheck.make
    ~print:(fun (seed, cap, heavy) ->
      Printf.sprintf "seed=%d cap=%d heavy=%b" seed cap heavy)
    QCheck.Gen.(triple (int_bound 20_000) (int_range 10 48) bool)

let prop_spiller_matches_reference =
  QCheck.Test.make ~count:30
    ~name:"reference policy is byte-identical to Spiller_reference" spiller_eq_arb
    (fun (seed, capacity, heavy) ->
      let params =
        if heavy then Ncdrf_workloads.Generator.heavy else Ncdrf_workloads.Generator.default
      in
      let g = Ncdrf_workloads.Generator.generate params ~seed ~name:"spill-eq" in
      let config = Config.dual ~latency:3 in
      let victim = victims.(seed mod Array.length victims) in
      let o =
        Spiller.run ~config ~requirement:unified_requirement ~capacity ~victim
          ~policy:reference_policy g
      in
      let r =
        Spiller_reference.run ~config ~requirement:unified_requirement ~capacity ~victim g
      in
      same_outcome o r)

(* The II floor (on in [default_policy]) is almost-identity: it only
   matters when the heuristic scheduler achieves a *lower* II after
   spill code restructured the graph — then the floored loop keeps the
   higher II and may spill in a different order.  Generator seed 14923
   at capacity 15 (heavy, best-ratio) is such a case: the floored and
   reference loops converge to equally good outcomes (same II,
   requirement, spill/bump/round counts) whose spill ops are inserted
   in different orders.  Pin both facts so the divergence stays
   understood rather than resurfacing as a flaky equivalence. *)
let test_ii_floor_divergence_case () =
  let g =
    Ncdrf_workloads.Generator.generate Ncdrf_workloads.Generator.heavy ~seed:14923
      ~name:"spill-eq"
  in
  let config = Config.dual ~latency:3 in
  let victim = Spiller.Best_ratio in
  let o =
    Spiller.run ~config ~requirement:unified_requirement ~capacity:15 ~victim g
  in
  let r =
    Spiller_reference.run ~config ~requirement:unified_requirement ~capacity:15 ~victim g
  in
  Alcotest.(check int) "same II" (Schedule.ii r.Spiller_reference.schedule)
    (Schedule.ii o.Spiller.schedule);
  Alcotest.(check int) "same requirement" r.Spiller_reference.requirement
    o.Spiller.requirement;
  Alcotest.(check bool) "same fits" r.Spiller_reference.fits o.Spiller.fits;
  Alcotest.(check int) "same spilled" r.Spiller_reference.spilled o.Spiller.spilled;
  Alcotest.(check int) "same II bumps" r.Spiller_reference.ii_bumps o.Spiller.ii_bumps;
  Alcotest.(check int) "same rounds" r.Spiller_reference.rounds o.Spiller.rounds;
  Alcotest.(check bool) "spill order differs (the floor engaged)" false
    (o.Spiller.schedule.Schedule.placements
    = r.Spiller_reference.schedule.Schedule.placements)

let prop_lower_bound_preserves_outcomes =
  QCheck.Test.make ~count:30
    ~name:"lower-bound pruning never changes the outcome" spiller_eq_arb
    (fun (seed, capacity, heavy) ->
      let params =
        if heavy then Ncdrf_workloads.Generator.heavy else Ncdrf_workloads.Generator.default
      in
      let g = Ncdrf_workloads.Generator.generate params ~seed ~name:"spill-lb" in
      let config = Config.dual ~latency:3 in
      let o =
        Spiller.run ~config ~requirement:unified_requirement ~capacity
          ~lower_bound:unified_lower_bound g
      in
      let r = Spiller.run ~config ~requirement:unified_requirement ~capacity g in
      same_spiller_outcome o r)

(* The same equivalence on real (scheduled) kernels, at a spilling and a
   non-spilling capacity each. *)
let test_spiller_matches_reference_on_kernels () =
  let config = Config.dual ~latency:6 in
  List.iter
    (fun (g, _) ->
      List.iter
        (fun capacity ->
          let o = Spiller.run ~config ~requirement:unified_requirement ~capacity g in
          let r =
            Spiller_reference.run ~config ~requirement:unified_requirement ~capacity g
          in
          if not (same_outcome o r) then
            Alcotest.failf "%s at capacity %d: outcome diverged from the reference"
              (Ddg.name g) capacity)
        [ 8; 64 ])
    (Ncdrf_workloads.Kernels.all ())

(* --- Opt-in policies (may diverge from the reference) --- *)

let incremental_policy = { Spiller.default_policy with Spiller.incremental = true }

let test_incremental_reschedules_counted () =
  (* A recurrence-bound kernel: the II is pinned well above ResMII, so
     the LS rows of the reservation table have slack for the spill
     memops and seeding can actually succeed. *)
  let config = Config.dual ~latency:6 in
  let ddg = kernel "ll5-tridiag" in
  let spill_free =
    Requirements.unified (Modulo.schedule config ddg)
  in
  let capacity = spill_free - 1 in
  let module T = Ncdrf_telemetry.Telemetry in
  let was_enabled = T.enabled () in
  T.enable true;
  let inc0 = T.counter "spill.incremental_reschedules" in
  let full0 = T.counter "spill.full_reschedules" in
  let o =
    Spiller.run ~config ~requirement:unified_requirement ~capacity
      ~policy:incremental_policy ddg
  in
  let inc = T.counter "spill.incremental_reschedules" - inc0 in
  let full = T.counter "spill.full_reschedules" - full0 in
  T.enable was_enabled;
  check_bool "fits" true o.Spiller.fits;
  Helpers.check_valid "incremental outcome" o.Spiller.schedule;
  check_bool "spilled something" true (o.Spiller.spilled > 0);
  (* One scheduling step per round plus the initial one; each is either
     seeded or a full search. *)
  check_int "every round is counted once" (o.Spiller.rounds + 1) (inc + full);
  check_bool "round zero has no seed" true (full >= 1);
  check_bool "later rounds reschedule incrementally" true (inc >= 1)

let test_batch_spills_in_fewer_rounds () =
  let config = Config.example () in
  let ddg = Helpers.example_ddg () in
  let policy = { Spiller.default_policy with Spiller.batch = 4 } in
  let o = Spiller.run ~config ~requirement:unified_requirement ~capacity:30 ~policy ddg in
  let r = Spiller_reference.run ~config ~requirement:unified_requirement ~capacity:30 ddg in
  check_bool "fits" true o.Spiller.fits;
  Helpers.check_valid "batched outcome" o.Spiller.schedule;
  check_bool "within capacity" true (o.Spiller.requirement <= 30);
  check_bool "no more rounds than the reference" true (o.Spiller.rounds <= r.Spiller.rounds);
  (* Slot bookkeeping holds across batched rounds too. *)
  check_int "slots consumed = values spilled" o.Spiller.spilled
    (Spiller.next_spill_slot o.Spiller.ddg)

let test_batch_zero_rejected () =
  let config = Config.example () in
  let ddg = Helpers.example_ddg () in
  let policy = { Spiller.default_policy with Spiller.batch = 0 } in
  try
    ignore
      (Spiller.run ~config ~requirement:unified_requirement ~capacity:30 ~policy ddg);
    Alcotest.fail "batch = 0 accepted"
  with Invalid_argument _ -> ()

(* Incremental-mode outputs are pinned by a fixed-seed digest: the mode
   may diverge from the reference (it keeps the previous round's II
   where a full search might restructure), but it must diverge the same
   way every run.  Any intended change to the incremental path must
   update this hex. *)
let test_incremental_fixed_seed_digest () =
  let config = Config.dual ~latency:3 in
  let buf = Buffer.create 1024 in
  List.iter
    (fun seed ->
      let g =
        Ncdrf_workloads.Generator.generate Ncdrf_workloads.Generator.heavy ~seed
          ~name:(Printf.sprintf "inc%d" seed)
      in
      let o =
        Spiller.run ~config ~requirement:unified_requirement ~capacity:16
          ~policy:incremental_policy g
      in
      Helpers.check_valid "incremental outcome" o.Spiller.schedule;
      Printf.bprintf buf "%d: ii=%d req=%d spilled=%d bumps=%d rounds=%d fits=%b %s\n" seed
        (Schedule.ii o.Spiller.schedule)
        o.Spiller.requirement o.Spiller.spilled o.Spiller.ii_bumps o.Spiller.rounds
        o.Spiller.fits
        (Ddg.digest o.Spiller.ddg))
    [ 1; 2; 3; 5; 8; 13; 21; 34 ];
  Alcotest.(check string)
    "incremental fixed-seed digest" "fd344bfcb29b85e3a02cae1c97c880ac"
    (Digest.to_hex (Digest.string (Buffer.contents buf)))

(* --- Traffic density edge cases --- *)

let test_density_zero_bandwidth_is_infinite () =
  let g = Expr.(compile ~name:"membound" [ Store ("o", load "x") ]) in
  (* One LS unit but zero machine-wide ports: bandwidth 0.  The schedule
     is built directly — such a machine cannot pass resource validation,
     which is exactly why density must not report its traffic as free. *)
  let config =
    Config.make ~name:"no-bw"
      ~clusters:[| { Config.adders = 1; multipliers = 1; ls_units = 1; read_ports = None; write_ports = None } |]
      ~add_latency:3 ~mul_latency:3 ~load_ports:0 ~store_ports:0 ()
  in
  let placements =
    Array.init (Ddg.num_nodes g) (fun v -> { Schedule.cycle = v; cluster = 0 })
  in
  let sched = Schedule.make ~config ~ii:1 ~placements g in
  check_bool "density is infinite" true (Traffic.density sched = infinity);
  check_bool "aggregate density is infinite" true
    (Traffic.aggregate_density [ (sched, 1.0) ] = infinity);
  (* No traffic at all stays 0, even when the denominator is 0 too. *)
  Alcotest.(check (float 0.0)) "empty aggregate" 0.0 (Traffic.aggregate_density []);
  Alcotest.(check (float 0.0)) "zero-weight aggregate" 0.0
    (Traffic.aggregate_density [ (sched, 0.0) ])

(* --- Fission regressions --- *)

(* A value consumed by the other piece at distances 0 and 1 must
   round-trip through two distinct scratch views: element [i] for the
   same-iteration consumer, element [i - 1] for the loop-carried one.
   The pre-fix code collapsed both onto one load of the distance-0
   view. *)
let test_fission_loop_carried_cross_cut () =
  let g =
    let open Expr in
    compile ~name:"cross-cut"
      [ Def ("a", load "x" + inv "c"); Store ("o", ref_ "a" + prev "a") ]
  in
  match Fission.split g with
  | None -> Alcotest.fail "cross-cut loop should be splittable"
  | Some s ->
    check_bool "first validates" true (Ddg.validate s.Fission.first = Ok ());
    check_bool "second validates" true (Ddg.validate s.Fission.second = Ok ());
    let scratch_loads =
      Ddg.fold_nodes s.Fission.second ~init:[] ~f:(fun acc n ->
          match n.Ddg.opcode with
          | Opcode.Load (Opcode.Array a) when Helpers.contains a "fis." -> (n, a) :: acc
          | _ -> acc)
    in
    let arrays = List.sort_uniq compare (List.map snd scratch_loads) in
    check_int "two scratch loads" 2 (List.length scratch_loads);
    check_int "two distinct views" 2 (List.length arrays);
    check_bool "one view is the distance-1 stream" true
      (List.exists (fun a -> Helpers.contains a ".d1") arrays);
    (* The iteration offset lives in the array identity; reconnection
       edges are all distance 0. *)
    List.iter
      (fun (n, _) ->
        List.iter
          (fun e -> check_int "reconnect distance" 0 e.Ddg.distance)
          (Ddg.succs s.Fission.second n.Ddg.id))
      scratch_loads;
    (* The producer stores once; the consumers load twice. *)
    check_int "added memops" 3 s.Fission.added_memops;
    check_int "node conservation"
      (Ddg.num_nodes g + s.Fission.added_memops)
      (Ddg.num_nodes s.Fission.first + Ddg.num_nodes s.Fission.second);
    let cfg = Config.dual ~latency:3 in
    Helpers.check_valid "first piece schedules" (Modulo.schedule cfg s.Fission.first);
    Helpers.check_valid "second piece schedules" (Modulo.schedule cfg s.Fission.second)

(* A decomposition that fits with exactly [max_pieces] pieces converged;
   the pre-fix code tested the cap before the fit and reported it as a
   failure. *)
let test_fission_split_until_exact_cap_converges () =
  let config = Config.dual ~latency:6 in
  let requirement g = Requirements.unified (Modulo.schedule config g) in
  let ddg = kernel "ll9-integrate" in
  match Fission.split ddg with
  | None -> Alcotest.fail "ll9-integrate should be splittable"
  | Some s ->
    let cap = max (requirement s.Fission.first) (requirement s.Fission.second) in
    check_bool "the whole loop does not fit" true (requirement ddg > cap);
    let pieces, fits = Fission.split_until ~requirement ~capacity:cap ~max_pieces:2 ddg in
    check_int "exactly two pieces" 2 (List.length pieces);
    check_bool "reported as converged" true fits

(* The per-pass split budget keeps the cap exact: a pass used to
   concat-map every unfitting piece and could double the count past
   [max_pieces]. *)
let test_fission_split_until_cap_not_overshot () =
  let config = Config.dual ~latency:6 in
  let requirement g = Requirements.unified (Modulo.schedule config g) in
  let ddg = kernel "ll9-integrate" in
  let pieces, fits = Fission.split_until ~requirement ~capacity:1 ~max_pieces:3 ddg in
  check_bool "at most three pieces" true (List.length pieces <= 3);
  check_bool "nothing fits in one register" true (not fits)

(* The spiller tracks the next spill slot incrementally across rounds;
   the final graph must agree with the from-scratch fold: one fresh slot
   per spilled value, starting from the input graph's next slot. *)
let test_incremental_spill_slots () =
  let config = Config.example () in
  let ddg = Helpers.example_ddg () in
  let before = Spiller.next_spill_slot ddg in
  check_int "fresh graph starts at slot 0" 0 before;
  let outcome = Spiller.run ~config ~requirement:unified_requirement ~capacity:30 ddg in
  check_bool "spilled something" true (outcome.Spiller.spilled > 0);
  check_int "slots consumed = values spilled"
    (before + outcome.Spiller.spilled)
    (Spiller.next_spill_slot outcome.Spiller.ddg)

let suite =
  [
    Alcotest.test_case "no spill when capacity suffices" `Quick
      test_no_spill_when_capacity_suffices;
    Alcotest.test_case "spilling reduces requirement" `Quick test_spilling_reduces_requirement;
    Alcotest.test_case "spill adds store and loads" `Quick test_spill_adds_store_and_loads;
    Alcotest.test_case "first victim is the longest lifetime" `Quick
      test_spill_first_victim_is_longest;
    Alcotest.test_case "spilled values are not respilled" `Quick
      test_spilled_values_not_respilled;
    Alcotest.test_case "spilling raises II under memory pressure" `Quick
      test_spill_raises_ii_under_memory_pressure;
    Alcotest.test_case "safety valve II bump" `Quick test_safety_valve_ii_bump;
    Alcotest.test_case "traffic density" `Quick test_traffic_density;
    Alcotest.test_case "aggregate density is weighted" `Quick test_aggregate_density_weighted;
    Alcotest.test_case "spiller under the swapped model" `Quick
      test_spiller_under_partitioned_model;
    Alcotest.test_case "fission: splits the example" `Quick test_fission_splits_example;
    Alcotest.test_case "fission: reduces pressure" `Quick test_fission_reduces_pressure;
    Alcotest.test_case "fission: respects recurrences" `Quick
      test_fission_respects_recurrences;
    Alcotest.test_case "fission: split_until" `Quick test_fission_split_until;
    Alcotest.test_case "fission: unsplittable loops" `Quick test_fission_unsplittable;
    Alcotest.test_case "incremental spill slots" `Quick test_incremental_spill_slots;
    Alcotest.test_case "spiller matches the reference on kernels" `Quick
      test_spiller_matches_reference_on_kernels;
    Alcotest.test_case "incremental rounds are counted" `Quick
      test_incremental_reschedules_counted;
    Alcotest.test_case "batched victims spill in fewer rounds" `Quick
      test_batch_spills_in_fewer_rounds;
    Alcotest.test_case "batch = 0 is rejected" `Quick test_batch_zero_rejected;
    Alcotest.test_case "incremental fixed-seed digest" `Quick
      test_incremental_fixed_seed_digest;
    Alcotest.test_case "density with zero bandwidth" `Quick
      test_density_zero_bandwidth_is_infinite;
    Alcotest.test_case "fission: loop-carried cross-cut views" `Quick
      test_fission_loop_carried_cross_cut;
    Alcotest.test_case "fission: exact-cap decomposition converges" `Quick
      test_fission_split_until_exact_cap_converges;
    Alcotest.test_case "fission: piece cap never overshot" `Quick
      test_fission_split_until_cap_not_overshot;
    QCheck_alcotest.to_alcotest prop_spiller_terminates_and_fits;
    QCheck_alcotest.to_alcotest prop_fission_structural;
    QCheck_alcotest.to_alcotest prop_spiller_matches_reference;
    QCheck_alcotest.to_alcotest prop_lower_bound_preserves_outcomes;
    Alcotest.test_case "II floor divergence case stays equally good" `Quick
      test_ii_floor_divergence_case;
  ]
