(* Tests for the naive spiller and traffic accounting. *)

open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched
open Ncdrf_spill
open Ncdrf_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let kernel name =
  match Ncdrf_workloads.Kernels.find name with
  | Some g -> g
  | None -> Alcotest.failf "kernel %s missing" name

let unified_requirement sched = (sched, Requirements.unified sched)

let test_no_spill_when_capacity_suffices () =
  let config = Config.example () in
  let ddg = Helpers.example_ddg () in
  let outcome = Spiller.run ~config ~requirement:unified_requirement ~capacity:64 ddg in
  check_bool "fits" true outcome.Spiller.fits;
  check_int "no spills" 0 outcome.Spiller.spilled;
  check_int "requirement is 42" 42 outcome.Spiller.requirement

let test_spilling_reduces_requirement () =
  let config = Config.example () in
  let ddg = Helpers.example_ddg () in
  let outcome = Spiller.run ~config ~requirement:unified_requirement ~capacity:30 ddg in
  check_bool "fits" true outcome.Spiller.fits;
  check_bool "spilled something" true (outcome.Spiller.spilled > 0);
  check_bool "requirement within capacity" true (outcome.Spiller.requirement <= 30);
  check_bool "memops added" true (outcome.Spiller.added_memops > 0);
  Helpers.check_valid "spilled schedule" outcome.Spiller.schedule

let test_spill_adds_store_and_loads () =
  (* Spilling a value with k consumers adds 1 store + k loads. *)
  let config = Config.example () in
  let ddg = Helpers.example_ddg () in
  let outcome = Spiller.run ~config ~requirement:unified_requirement ~capacity:35 ddg in
  check_bool "one spill expected" true (outcome.Spiller.spilled >= 1);
  (* First spilled value is L1 (longest lifetime, 2 consumers):
     1 store + 2 loads. *)
  check_bool "memops consistent" true
    (outcome.Spiller.added_memops >= (2 * outcome.Spiller.spilled));
  let spill_ops =
    Ddg.fold_nodes outcome.Spiller.ddg ~init:0 ~f:(fun acc n ->
        if Opcode.is_spill_access n.Ddg.opcode then acc + 1 else acc)
  in
  check_int "spill ops in graph" outcome.Spiller.added_memops spill_ops

let test_spill_first_victim_is_longest () =
  let config = Config.example () in
  let ddg = Helpers.example_ddg () in
  let outcome = Spiller.run ~config ~requirement:unified_requirement ~capacity:35 ddg in
  (* L1 (lifetime 13) must be the first victim: its consumers M3 and A6
     now read spill loads, so L1's only consumer is the spill store. *)
  let l1 = Helpers.node_by_label outcome.Spiller.ddg "L1" in
  let consumers = Ddg.consumers outcome.Spiller.ddg l1.Ddg.id in
  (match consumers with
   | [ e ] ->
     let c = Ddg.node outcome.Spiller.ddg e.Ddg.dst in
     check_bool "consumer is a spill store" true
       (match c.Ddg.opcode with Opcode.Store (Opcode.Spill _) -> true | _ -> false)
   | _ -> Alcotest.failf "L1 has %d consumers after spill" (List.length consumers))

let test_spilled_values_not_respilled () =
  (* Tiny capacity forces many rounds; termination + no spill-of-spill. *)
  let config = Config.example () in
  let ddg = Helpers.example_ddg () in
  let outcome = Spiller.run ~config ~requirement:unified_requirement ~capacity:12 ddg in
  check_bool "terminates" true (outcome.Spiller.rounds <= 64);
  let ok =
    Ddg.fold_nodes outcome.Spiller.ddg ~init:true ~f:(fun acc n ->
        match n.Ddg.opcode with
        | Opcode.Load (Opcode.Spill _) ->
          (* a spill load's value must never feed a spill store *)
          acc
          && List.for_all
               (fun e ->
                 match (Ddg.node outcome.Spiller.ddg e.Ddg.dst).Ddg.opcode with
                 | Opcode.Store (Opcode.Spill _) -> false
                 | _ -> true)
               (Ddg.consumers outcome.Spiller.ddg n.Ddg.id)
        | _ -> acc)
  in
  check_bool "no spill chains" true ok

let test_spill_raises_ii_under_memory_pressure () =
  (* dual has 2 LS units; the example already uses 3 memory ops, so
     spilling must push ResMII (and II) up. *)
  let config = Config.dual ~latency:6 in
  let ddg = Helpers.example_ddg () in
  let free = Pipeline.run ~config ~model:Model.Unified ddg in
  let tight = Pipeline.run ~config ~model:Model.Unified ~capacity:20 ddg in
  check_bool "fits" true tight.Pipeline.fits;
  check_bool "II grew or no spill was needed" true
    (tight.Pipeline.spilled = 0 || tight.Pipeline.ii >= free.Pipeline.ii)

let test_safety_valve_ii_bump () =
  (* Capacity below what spilling alone can reach: every value spilled
     still needs ~latency-long reload lifetimes.  The spiller must fall
     back to II bumps and still terminate. *)
  let config = Config.dual ~latency:6 in
  let ddg = kernel "ll7-state" in
  let outcome = Spiller.run ~config ~requirement:unified_requirement ~capacity:4 ddg in
  check_bool "terminated" true (outcome.Spiller.rounds <= 64 + 32);
  check_bool "bumped II or fit" true (outcome.Spiller.fits || outcome.Spiller.ii_bumps > 0)

let test_traffic_density () =
  let config = Config.dual ~latency:3 in
  let ddg = Helpers.example_ddg () in
  let sched = Modulo.schedule config ddg in
  (* 3 memory ops, bandwidth 2: II is at least 2 (ResMII); density =
     3 / (II * 2). *)
  let expected =
    3.0 /. (float_of_int (Schedule.ii sched) *. 2.0)
  in
  Alcotest.(check (float 1e-9)) "density" expected (Traffic.density sched);
  check_int "memops" 3 (Traffic.memops_per_iteration ddg)

let test_aggregate_density_weighted () =
  let config = Config.dual ~latency:3 in
  let s1 = Modulo.schedule config (Helpers.example_ddg ()) in
  let s2 = Modulo.schedule config (kernel "daxpy") in
  let agg = Traffic.aggregate_density [ (s1, 1.0); (s2, 0.0) ] in
  Alcotest.(check (float 1e-9)) "zero weight ignored" (Traffic.density s1) agg;
  let agg2 = Traffic.aggregate_density [ (s1, 2.0); (s2, 2.0) ] in
  check_bool "between the two densities" true
    (let lo = min (Traffic.density s1) (Traffic.density s2)
     and hi = max (Traffic.density s1) (Traffic.density s2) in
     agg2 >= lo -. 1e-9 && agg2 <= hi +. 1e-9)

let test_spiller_under_partitioned_model () =
  let config = Config.dual ~latency:6 in
  let ddg = kernel "ll9-integrate" in
  let requirement sched =
    let swapped, _ = Swap.improve sched in
    (swapped, (Requirements.partitioned swapped).Requirements.requirement)
  in
  let outcome = Spiller.run ~config ~requirement ~capacity:16 ddg in
  check_bool "fits" true outcome.Spiller.fits;
  check_bool "within capacity" true (outcome.Spiller.requirement <= 16);
  Helpers.check_valid "swapped+spilled schedule" outcome.Spiller.schedule

(* --- Fission (paper 5.4 option 2) --- *)

let test_fission_splits_example () =
  let ddg = Helpers.example_ddg () in
  match Fission.split ddg with
  | None -> Alcotest.fail "example loop should be splittable"
  | Some s ->
    check_bool "first validates" true (Ddg.validate s.Fission.first = Ok ());
    check_bool "second validates" true (Ddg.validate s.Fission.second = Ok ());
    check_bool "cut is non-trivial" true (s.Fission.cut_values > 0);
    (* Each cut value costs one store and one load. *)
    check_int "memops added" (2 * s.Fission.cut_values) s.Fission.added_memops;
    (* All original operations survive, plus the scratch traffic. *)
    check_int "node conservation"
      (Ddg.num_nodes ddg + s.Fission.added_memops)
      (Ddg.num_nodes s.Fission.first + Ddg.num_nodes s.Fission.second)

let test_fission_reduces_pressure () =
  let config = Config.dual ~latency:6 in
  let requirement g = Requirements.unified (Modulo.schedule config g) in
  let ddg = kernel "ll7-state" in
  let original = requirement ddg in
  match Fission.split ddg with
  | None -> Alcotest.fail "ll7-state should be splittable"
  | Some s ->
    let worst = max (requirement s.Fission.first) (requirement s.Fission.second) in
    check_bool "pieces need fewer registers" true (worst < original)

let test_fission_respects_recurrences () =
  (* {load} -> {s-add recurrence} -> {store}: splittable, but the
     recurrence cycle must end up whole inside exactly one piece. *)
  let open Expr in
  let g =
    compile ~name:"one-scc" [ Def ("s", prev "s" + load "x"); Store ("o", ref_ "s") ]
  in
  match Fission.split g with
  | None -> Alcotest.fail "three-component loop should be splittable"
  | Some s ->
    let carried piece = List.exists (fun e -> e.Ddg.distance > 0) (Ddg.edges piece) in
    let pieces_with_recurrence =
      List.length (List.filter carried [ s.Fission.first; s.Fission.second ])
    in
    check_int "recurrence in exactly one piece" 1 pieces_with_recurrence

let test_fission_split_until () =
  let config = Config.dual ~latency:6 in
  let requirement g = Requirements.unified (Modulo.schedule config g) in
  let ddg = kernel "ll9-integrate" in
  let original = requirement ddg in
  let capacity = max 6 (original / 2) in
  let pieces, fits = Fission.split_until ~requirement ~capacity ddg in
  check_bool "at least two pieces" true (List.length pieces >= 2);
  List.iter
    (fun g -> check_bool "piece validates" true (Ddg.validate g = Ok ()))
    pieces;
  if fits then
    List.iter
      (fun g -> check_bool "piece fits" true (requirement g <= capacity))
      pieces

let test_fission_unsplittable () =
  let open Expr in
  (* Two ops locked in one SCC plus nothing else splittable off. *)
  let g = compile ~name:"lock" [ Def ("s", prev "s" + inv "c"); Store ("o", ref_ "s") ] in
  (* load-free; components: {add} -> {store}: still splittable into 2.
     A single node is not. *)
  (match Fission.split g with
   | Some s ->
     check_bool "both pieces non-empty" true
       (Ddg.num_nodes s.Fission.first > 0 && Ddg.num_nodes s.Fission.second > 0)
   | None -> ());
  let single =
    let b = Ddg.Builder.create ~name:"single" in
    ignore (Ddg.Builder.add_node b (Opcode.Load (Opcode.Array "x")) ~label:"L");
    Ddg.Builder.freeze b
  in
  check_bool "single node unsplittable" true (Fission.split single = None)

let prop_spiller_terminates_and_fits =
  let arb =
    QCheck.make
      ~print:(fun (seed, cap) -> Printf.sprintf "seed=%d cap=%d" seed cap)
      QCheck.Gen.(pair (int_bound 20_000) (int_range 12 48))
  in
  QCheck.Test.make ~count:25 ~name:"spiller terminates with a valid schedule" arb
    (fun (seed, capacity) ->
      let g =
        Ncdrf_workloads.Generator.generate Ncdrf_workloads.Generator.default ~seed
          ~name:"spill-prop"
      in
      let config = Config.dual ~latency:3 in
      let outcome =
        Spiller.run ~config ~requirement:unified_requirement ~capacity g
      in
      Schedule.validate outcome.Spiller.schedule = Ok ()
      && ((not outcome.Spiller.fits) || outcome.Spiller.requirement <= capacity))

let prop_fission_structural =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 30_000) in
  QCheck.Test.make ~count:40 ~name:"fission pieces are valid and conserve operations" arb
    (fun seed ->
      let g =
        Ncdrf_workloads.Generator.generate Ncdrf_workloads.Generator.heavy ~seed
          ~name:"fis-prop"
      in
      match Fission.split g with
      | None -> true
      | Some s ->
        Ddg.validate s.Fission.first = Ok ()
        && Ddg.validate s.Fission.second = Ok ()
        && Ddg.num_nodes s.Fission.first + Ddg.num_nodes s.Fission.second
           = Ddg.num_nodes g + s.Fission.added_memops)

(* The spiller tracks the next spill slot incrementally across rounds;
   the final graph must agree with the from-scratch fold: one fresh slot
   per spilled value, starting from the input graph's next slot. *)
let test_incremental_spill_slots () =
  let config = Config.example () in
  let ddg = Helpers.example_ddg () in
  let before = Spiller.next_spill_slot ddg in
  check_int "fresh graph starts at slot 0" 0 before;
  let outcome = Spiller.run ~config ~requirement:unified_requirement ~capacity:30 ddg in
  check_bool "spilled something" true (outcome.Spiller.spilled > 0);
  check_int "slots consumed = values spilled"
    (before + outcome.Spiller.spilled)
    (Spiller.next_spill_slot outcome.Spiller.ddg)

let suite =
  [
    Alcotest.test_case "no spill when capacity suffices" `Quick
      test_no_spill_when_capacity_suffices;
    Alcotest.test_case "spilling reduces requirement" `Quick test_spilling_reduces_requirement;
    Alcotest.test_case "spill adds store and loads" `Quick test_spill_adds_store_and_loads;
    Alcotest.test_case "first victim is the longest lifetime" `Quick
      test_spill_first_victim_is_longest;
    Alcotest.test_case "spilled values are not respilled" `Quick
      test_spilled_values_not_respilled;
    Alcotest.test_case "spilling raises II under memory pressure" `Quick
      test_spill_raises_ii_under_memory_pressure;
    Alcotest.test_case "safety valve II bump" `Quick test_safety_valve_ii_bump;
    Alcotest.test_case "traffic density" `Quick test_traffic_density;
    Alcotest.test_case "aggregate density is weighted" `Quick test_aggregate_density_weighted;
    Alcotest.test_case "spiller under the swapped model" `Quick
      test_spiller_under_partitioned_model;
    Alcotest.test_case "fission: splits the example" `Quick test_fission_splits_example;
    Alcotest.test_case "fission: reduces pressure" `Quick test_fission_reduces_pressure;
    Alcotest.test_case "fission: respects recurrences" `Quick
      test_fission_respects_recurrences;
    Alcotest.test_case "fission: split_until" `Quick test_fission_split_until;
    Alcotest.test_case "fission: unsplittable loops" `Quick test_fission_unsplittable;
    Alcotest.test_case "incremental spill slots" `Quick test_incremental_spill_slots;
    QCheck_alcotest.to_alcotest prop_spiller_terminates_and_fits;
    QCheck_alcotest.to_alcotest prop_fission_structural;
  ]
