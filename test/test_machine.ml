(* Unit tests for machine configurations and modulo reservation tables. *)

open Ncdrf_ir
open Ncdrf_machine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_config_constructors () =
  let p2l6 = Config.pxly ~parallelism:2 ~latency:6 in
  check_int "adders" 2 (Config.total_adders p2l6);
  check_int "multipliers" 2 (Config.total_multipliers p2l6);
  check_int "clusters" 1 (Config.num_clusters p2l6);
  check_int "add latency" 6 (Config.latency p2l6 Opcode.Fadd);
  check_int "mul latency" 6 (Config.latency p2l6 Opcode.Fmul);
  check_int "mem latency" 1 (Config.latency p2l6 (Opcode.Load (Opcode.Array "x")));
  let dual = Config.dual ~latency:3 in
  check_int "dual clusters" 2 (Config.num_clusters dual);
  check_int "dual adders" 2 (Config.total_adders dual);
  check_int "dual ls" 2 (Config.total_ls_units dual);
  let example = Config.example () in
  check_int "example ls" 4 (Config.total_ls_units example)

let test_memory_bandwidth () =
  (* PxLy: 3 LS units but 2 load + 1 store ports -> bandwidth 3. *)
  check_int "pxly bandwidth" 3 (Config.memory_bandwidth (Config.pxly ~parallelism:1 ~latency:3));
  check_int "dual bandwidth" 2 (Config.memory_bandwidth (Config.dual ~latency:3));
  check_int "example bandwidth" 4 (Config.memory_bandwidth (Config.example ()))

let test_config_validation () =
  let expect_invalid f =
    try
      ignore (f ());
      Alcotest.fail "invalid config accepted"
    with Invalid_argument _ -> ()
  in
  expect_invalid (fun () ->
      Config.make ~name:"bad" ~clusters:[||] ~add_latency:3 ~mul_latency:3 ());
  expect_invalid (fun () ->
      Config.make ~name:"bad"
        ~clusters:[| { Config.adders = 1; multipliers = 1; ls_units = 1; read_ports = None; write_ports = None } |]
        ~add_latency:0 ~mul_latency:3 ());
  expect_invalid (fun () ->
      Config.make ~name:"bad"
        ~clusters:[| { Config.adders = -1; multipliers = 1; ls_units = 1; read_ports = None; write_ports = None } |]
        ~add_latency:3 ~mul_latency:3 ())

let test_reservation_capacity () =
  let cfg = Config.dual ~latency:3 in
  let rt = Reservation.create cfg ~ii:2 in
  (* Each cluster has one adder; II=2 gives two slots. *)
  check_bool "first add at 0" true (Reservation.reserve rt ~op:Opcode.Fadd ~cycle:0 <> None);
  check_bool "second add at 0" true (Reservation.reserve rt ~op:Opcode.Fadd ~cycle:0 <> None);
  check_bool "third add at 0 fails" true (Reservation.reserve rt ~op:Opcode.Fadd ~cycle:0 = None);
  check_bool "add at slot 1 still free" true
    (Reservation.reserve rt ~op:Opcode.Fadd ~cycle:1 <> None);
  (* Slot is cycle mod II: cycle 2 is slot 0 again. *)
  check_bool "add at cycle 2 fails" true (Reservation.reserve rt ~op:Opcode.Fadd ~cycle:2 = None)

let test_reservation_balances_clusters () =
  let cfg = Config.dual ~latency:3 in
  let rt = Reservation.create cfg ~ii:1 in
  let c1 = Reservation.reserve rt ~op:Opcode.Fmul ~cycle:0 in
  let c2 = Reservation.reserve rt ~op:Opcode.Fmul ~cycle:0 in
  match c1, c2 with
  | Some a, Some b -> check_bool "distinct clusters" true (a <> b)
  | _ -> Alcotest.fail "reservations failed"

let test_reservation_release () =
  let cfg = Config.dual ~latency:3 in
  let rt = Reservation.create cfg ~ii:1 in
  (match Reservation.reserve rt ~op:Opcode.Fadd ~cycle:0 with
   | Some cluster ->
     check_int "used" 1 (Reservation.used rt ~op:Opcode.Fadd ~cycle:0 ~cluster);
     Reservation.release rt ~op:Opcode.Fadd ~cycle:0 ~cluster;
     check_int "freed" 0 (Reservation.used rt ~op:Opcode.Fadd ~cycle:0 ~cluster);
     check_bool "reusable" true (Reservation.reserve rt ~op:Opcode.Fadd ~cycle:0 <> None)
   | None -> Alcotest.fail "reserve failed");
  try
    Reservation.release rt ~op:Opcode.Fmul ~cycle:0 ~cluster:0;
    Alcotest.fail "double release accepted"
  with Invalid_argument _ -> ()

let test_port_caps () =
  (* P1L3 has 3 LS units but only 1 store port and 2 load ports. *)
  let cfg = Config.pxly ~parallelism:1 ~latency:3 in
  let rt = Reservation.create cfg ~ii:1 in
  let store = Opcode.Store (Opcode.Array "x") in
  let load = Opcode.Load (Opcode.Array "x") in
  check_bool "first store ok" true (Reservation.reserve rt ~op:store ~cycle:0 <> None);
  check_bool "second store blocked by port" true
    (Reservation.reserve rt ~op:store ~cycle:0 = None);
  check_bool "port saturation visible" true (Reservation.port_saturated rt ~op:store ~cycle:0);
  check_bool "first load ok" true (Reservation.reserve rt ~op:load ~cycle:0 <> None);
  check_bool "second load ok" true (Reservation.reserve rt ~op:load ~cycle:0 <> None);
  (* Third load: port cap (2) binds before unit count (3 LS, 1 used by
     the store). *)
  check_bool "third load blocked" true (Reservation.reserve rt ~op:load ~cycle:0 = None)

let test_reserve_in_specific_cluster () =
  let cfg = Config.dual ~latency:3 in
  let rt = Reservation.create cfg ~ii:1 in
  check_bool "cluster 1 explicit" true
    (Reservation.reserve_in rt ~op:Opcode.Fadd ~cycle:0 ~cluster:1);
  check_bool "cluster 1 full" false
    (Reservation.reserve_in rt ~op:Opcode.Fadd ~cycle:0 ~cluster:1);
  check_bool "cluster 0 free" true
    (Reservation.reserve_in rt ~op:Opcode.Fadd ~cycle:0 ~cluster:0)

let test_negative_cycle_slots () =
  let cfg = Config.dual ~latency:3 in
  let rt = Reservation.create cfg ~ii:3 in
  (* Cycle -1 is slot 2. *)
  check_bool "negative cycle reserves" true
    (Reservation.reserve rt ~op:Opcode.Fadd ~cycle:(-1) <> None);
  check_int "maps to slot 2" 1 (Reservation.used rt ~op:Opcode.Fadd ~cycle:2 ~cluster:0)

(* --- Hardware cost models (paper Section 3.2) --- *)

let test_cost_area_model () =
  let spec = { Cost.registers = 32; read_ports = 4; write_ports = 4; bits = 64 } in
  (* area = 32 * 64 * 8^2 *)
  Alcotest.(check (float 1e-6)) "area" (float_of_int (32 * 64 * 64)) (Cost.area spec);
  (* Linear in registers, quadratic in ports. *)
  let double_regs = Cost.area { spec with Cost.registers = 64 } in
  Alcotest.(check (float 1e-6)) "linear in registers" (2.0 *. Cost.area spec) double_regs;
  let double_ports = Cost.area { spec with Cost.read_ports = 8; write_ports = 8 } in
  Alcotest.(check (float 1e-6)) "quadratic in ports" (4.0 *. Cost.area spec) double_ports

let test_cost_access_time_monotone () =
  let base = { Cost.registers = 32; read_ports = 4; write_ports = 4; bits = 64 } in
  check_bool "more registers is slower" true
    (Cost.access_time { base with Cost.registers = 64 } > Cost.access_time base);
  check_bool "more read ports is slower" true
    (Cost.access_time { base with Cost.read_ports = 8 } > Cost.access_time base)

let test_operand_field_bits () =
  check_int "32 regs" 5 (Cost.operand_field_bits ~registers:32);
  check_int "64 regs" 6 (Cost.operand_field_bits ~registers:64);
  check_int "33 regs" 6 (Cost.operand_field_bits ~registers:33)

let test_cost_organizations () =
  let cfg = Config.dual ~latency:6 in
  (* Unified: 2*(2 add)+2*(2 mul)+2 ls = 10 reads; 6 writes. *)
  let unified, copies_u = Cost.specify cfg ~registers:32 Cost.Unified in
  check_int "unified reads" 10 unified.Cost.read_ports;
  check_int "unified writes" 6 unified.Cost.write_ports;
  check_int "unified copies" 1 copies_u;
  (* Dual: each copy serves one cluster's 5 reads, takes all 6 writes. *)
  let dual, copies_d = Cost.specify cfg ~registers:32 Cost.non_consistent_dual in
  check_int "dual reads" 5 dual.Cost.read_ports;
  check_int "dual writes" 6 dual.Cost.write_ports;
  check_int "dual copies" 2 copies_d;
  (* Paper Section 3.2 / conclusions: the dual organization is cheaper
     than doubling the registers and does not penalize access time. *)
  check_bool "NCDRF cheaper than doubling" true
    (Cost.total_area cfg ~registers:32 Cost.non_consistent_dual
     < Cost.total_area cfg ~registers:32 Cost.Doubled_unified);
  check_bool "NCDRF no access-time penalty" true
    (Cost.organization_access_time cfg ~registers:32 Cost.non_consistent_dual
     <= Cost.organization_access_time cfg ~registers:32 Cost.Unified);
  check_bool "consistent and non-consistent duals share the structure" true
    (Cost.specify cfg ~registers:32 Cost.consistent_dual
     = Cost.specify cfg ~registers:32 Cost.non_consistent_dual)

let suite =
  [
    Alcotest.test_case "config constructors" `Quick test_config_constructors;
    Alcotest.test_case "cost: area model" `Quick test_cost_area_model;
    Alcotest.test_case "cost: access time monotone" `Quick test_cost_access_time_monotone;
    Alcotest.test_case "cost: operand field bits" `Quick test_operand_field_bits;
    Alcotest.test_case "cost: organizations" `Quick test_cost_organizations;
    Alcotest.test_case "memory bandwidth" `Quick test_memory_bandwidth;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "reservation capacity" `Quick test_reservation_capacity;
    Alcotest.test_case "reservation balances clusters" `Quick
      test_reservation_balances_clusters;
    Alcotest.test_case "reservation release" `Quick test_reservation_release;
    Alcotest.test_case "port caps" `Quick test_port_caps;
    Alcotest.test_case "reserve in specific cluster" `Quick test_reserve_in_specific_cluster;
    Alcotest.test_case "negative cycles map to slots" `Quick test_negative_cycle_slots;
  ]
