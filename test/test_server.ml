(* The serving layer: total codec (qcheck round-trip plus malformed
   frames that must come back as typed errors, never exceptions), the
   shared renderers behind the batch/client byte-identity invariant,
   deadline tokens and the monotonic budget clock, and an in-process
   daemon exercised over a real Unix socket: health, scheduling,
   fault containment, per-request deadlines, and a clean drain. *)

open Ncdrf_machine
open Ncdrf_core
module Error = Ncdrf_error.Error
module Budget = Ncdrf_error.Budget
module Deadline = Ncdrf_error.Deadline
module Failures = Ncdrf_error.Failures
module Fault = Ncdrf_fault.Fault
module Telemetry = Ncdrf_telemetry.Telemetry
module Trace = Ncdrf_telemetry.Trace
module Ledger = Ncdrf_telemetry.Ledger
module Protocol = Ncdrf_server.Protocol
module Server = Ncdrf_server.Server
module Client = Ncdrf_server.Client

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Codec round-trip (qcheck).                                          *)
(* ------------------------------------------------------------------ *)

(* Floats on a 1/16 grid are exact in binary and short in decimal, so
   they survive the codec's %.9g rendering bit-for-bit. *)
let gen_grid_float = QCheck.Gen.(map (fun i -> float_of_int i /. 16.0) (int_bound 4096))

let gen_string = QCheck.Gen.(string_size ~gen:printable (int_bound 12))

let gen_spec =
  let open QCheck.Gen in
  int_range 1 8 >>= fun spec_latency ->
  int_range 1 4 >>= fun spec_clusters ->
  opt (int_range 1 6) >>= fun spec_read_ports ->
  opt (int_range 1 6) >>= fun spec_write_ports ->
  return { Config.spec_latency; spec_clusters; spec_read_ports; spec_write_ports }

let gen_model = QCheck.Gen.oneofl Model.all

let gen_workload =
  QCheck.Gen.(
    oneof
      [
        map (fun s -> Protocol.Source s) gen_string;
        map (fun s -> Protocol.Named s) gen_string;
      ])

let gen_request_kind =
  let open QCheck.Gen in
  let schedule =
    gen_workload >>= fun workload ->
    opt gen_string >>= fun only ->
    gen_spec >>= fun spec ->
    gen_model >>= fun model ->
    opt (int_range 1 64) >>= fun capacity ->
    int_range 1 4 >>= fun spill_batch ->
    bool >>= fun spill_incremental ->
    bool >>= fun show_kernel ->
    return
      (Protocol.Schedule
         {
           workload;
           only;
           spec;
           model;
           capacity;
           spill_batch;
           spill_incremental;
           show_kernel;
         })
  in
  let suite =
    gen_spec >>= fun spec ->
    int_range 1 500 >>= fun size ->
    int_range 1 128 >>= fun registers ->
    return (Protocol.Suite { spec; size; registers })
  in
  oneof [ schedule; suite; return Protocol.Health; return Protocol.Stats ]

let gen_request =
  let open QCheck.Gen in
  gen_string >>= fun id ->
  opt gen_grid_float >>= fun timeout_s ->
  gen_request_kind >>= fun kind ->
  return { Protocol.id; timeout_s; kind }

let gen_error =
  let open QCheck.Gen in
  oneofl Error.all_categories >>= fun category ->
  gen_string >>= fun stage ->
  opt gen_string >>= fun loop ->
  opt gen_string >>= fun config ->
  opt (int_range 0 9) >>= fun round ->
  opt (int_range 1 40) >>= fun ii ->
  gen_string >>= fun message ->
  return (Error.make ?loop ?config ?round ?ii ~stage category message)

let gen_point =
  let open QCheck.Gen in
  gen_string >>= fun loop ->
  gen_string >>= fun header ->
  gen_model >>= fun model ->
  int_range 1 20 >>= fun mii ->
  int_range 1 40 >>= fun ii ->
  int_range 1 10 >>= fun stages ->
  int_range 0 64 >>= fun requirement ->
  opt (int_range 1 64) >>= fun capacity ->
  bool >>= fun fits ->
  int_range 0 9 >>= fun spilled ->
  int_range 0 20 >>= fun added_memops ->
  int_range 0 20 >>= fun memops_per_iter ->
  gen_grid_float >>= fun density ->
  opt gen_string >>= fun kernel ->
  return
    {
      Protocol.loop;
      header;
      model;
      mii;
      ii;
      stages;
      requirement;
      capacity;
      fits;
      spilled;
      added_memops;
      memops_per_iter;
      density;
      kernel;
    }

let gen_health =
  let open QCheck.Gen in
  oneofl [ "ok"; "draining" ] >>= fun status ->
  gen_grid_float >>= fun uptime_s ->
  int_range 0 99 >>= fun served ->
  int_range 0 99 >>= fun shed ->
  int_range 0 4 >>= fun active ->
  int_range 0 9 >>= fun queued ->
  int_range 1 16 >>= fun queue_bound ->
  int_range 1 4 >>= fun max_inflight ->
  int_range 1 8 >>= fun pool_jobs ->
  int_range 0 999 >>= fun cache_hits ->
  int_range 0 999 >>= fun cache_misses ->
  int_range 0 999 >>= fun cache_entries ->
  list_size (int_bound 4)
    (pair (oneofl [ "injected"; "parse"; "overloaded"; "canceled" ]) (int_range 1 9))
  >>= fun error_counts ->
  list_size (int_bound 3)
    (pair (oneofl [ "schedule"; "suite"; "health"; "stats" ]) (int_range 1 9))
  >>= fun kind_counts ->
  gen_grid_float >>= fun latency_p50_s ->
  gen_grid_float >>= fun latency_p90_s ->
  gen_grid_float >>= fun latency_p99_s ->
  return
    {
      Protocol.status;
      uptime_s;
      served;
      shed;
      active;
      queued;
      queue_bound;
      max_inflight;
      pool_jobs;
      cache_hits;
      cache_misses;
      cache_entries;
      error_counts;
      kind_counts;
      latency_p50_s;
      latency_p90_s;
      latency_p99_s;
    }

let gen_response =
  let open QCheck.Gen in
  let scheduled =
    gen_string >>= fun machine ->
    list_size (int_bound 3) gen_point >>= fun points ->
    return (Protocol.Scheduled { machine; points })
  in
  let suite_report =
    gen_string >>= fun machine ->
    int_range 1 500 >>= fun size ->
    int_range 1 8 >>= fun jobs ->
    int_range 1 128 >>= fun registers ->
    list_size (int_bound 4) (triple gen_model gen_grid_float gen_grid_float)
    >>= fun rows ->
    list_size (int_bound 3) gen_error >>= fun failures ->
    return (Protocol.Suite_report { machine; size; jobs; registers; rows; failures })
  in
  let overloaded =
    int_range 1 99 >>= fun queue_depth ->
    gen_grid_float >>= fun retry_after_s ->
    return (Protocol.Overloaded { queue_depth; retry_after_s })
  in
  gen_string >>= fun req_id ->
  oneof
    [
      scheduled;
      suite_report;
      map (fun h -> Protocol.Health_report h) gen_health;
      map (fun e -> Protocol.Failed e) gen_error;
      overloaded;
    ]
  >>= fun body -> return { Protocol.req_id; body }

let prop_request_roundtrip =
  QCheck.Test.make ~count:300 ~name:"render/parse request = id"
    (QCheck.make ~print:Protocol.render_request gen_request) (fun r ->
      match Protocol.parse_request (Protocol.render_request r) with
      | Ok r' -> r' = r
      | Stdlib.Error e -> QCheck.Test.fail_report (Error.to_string e))

let prop_response_roundtrip =
  QCheck.Test.make ~count:300 ~name:"render/parse response = id"
    (QCheck.make ~print:Protocol.render_response gen_response) (fun r ->
      match Protocol.parse_response (Protocol.render_response r) with
      | Ok r' -> r' = r
      | Stdlib.Error e -> QCheck.Test.fail_report (Error.to_string e))

(* Whatever bytes arrive, the parsers answer with a typed error — they
   never raise.  (The qcheck pair above covers the happy path; this one
   fuzzes raw frames.) *)
let prop_parse_total =
  QCheck.Test.make ~count:500 ~name:"parsers never raise on junk"
    (QCheck.make ~print:(Printf.sprintf "%S")
       QCheck.Gen.(string_size ~gen:(char_range '\x00' '\xff') (int_bound 64)))
    (fun junk ->
      (match Protocol.parse_request junk with Ok _ | Stdlib.Error _ -> true)
      && (match Protocol.parse_response junk with Ok _ | Stdlib.Error _ -> true))

(* ------------------------------------------------------------------ *)
(* Malformed frames: typed errors, never exceptions.                   *)
(* ------------------------------------------------------------------ *)

let check_request_error name line =
  match Protocol.parse_request line with
  | Stdlib.Error e ->
    check_string (name ^ ": category") "parse" (Error.category_name e.Error.category);
    check_string (name ^ ": stage") "protocol" e.Error.stage
  | Ok _ -> Alcotest.fail (name ^ ": expected a parse error")

let test_malformed_frames () =
  check_request_error "truncated JSON" {|{"id":"x","kind":"hea|};
  check_request_error "oversized frame"
    (String.make (Protocol.max_frame_bytes + 1) 'x');
  check_request_error "unknown kind" {|{"id":"x","kind":"bogus"}|};
  check_request_error "non-object" "42";
  check_request_error "missing id" {|{"kind":"health"}|};
  check_request_error "id of wrong type" {|{"id":5,"kind":"health"}|};
  check_request_error "schedule missing fields" {|{"id":"x","kind":"schedule"}|};
  check_request_error "bad model"
    {|{"id":"x","kind":"schedule","workload":{"kernel":"daxpy"},"config":{"latency":3,"clusters":2},"model":"quantum","spill_batch":1,"spill_incremental":false,"show_kernel":false}|};
  (match Protocol.parse_response {|{"id":"x","status":"weird"}|} with
   | Stdlib.Error e ->
     check_string "unknown status: category" "parse"
       (Error.category_name e.Error.category)
   | Ok _ -> Alcotest.fail "unknown status: expected a parse error");
  (match
     Protocol.parse_response
       {|{"id":"x","status":"error","error":{"category":"nope","stage":"s","message":"m"}}|}
   with
   | Stdlib.Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown category: expected a parse error")

let test_frame_id_recovery () =
  Alcotest.(check (option string))
    "id recovered from bad frame" (Some "abc")
    (Protocol.frame_id {|{"id":"abc","kind":"bogus"}|});
  Alcotest.(check (option string))
    "no id in junk" None (Protocol.frame_id "42");
  Alcotest.(check (option string))
    "no id in garbage" None (Protocol.frame_id "{{{")

(* ------------------------------------------------------------------ *)
(* Renderers.                                                          *)
(* ------------------------------------------------------------------ *)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let test_renderers () =
  check_string "clean failure summary is empty" ""
    (Protocol.render_failure_summary []);
  check_string "suite row" "unified      |  50.0% loops  25.0% cycles\n"
    (Protocol.render_suite_row (Model.Unified, 50.0, 25.0));
  check_string "table head" "model        | allocatable in 32 regs\n"
    (Protocol.render_suite_table_head ~registers:32);
  check_string "suite header" "suite of 60 loops on m (1 job)\n\n"
    (Protocol.render_suite_header ~size:60 ~machine:"m" ~jobs:1);
  check_string "machine line" "machine: m\n" (Protocol.render_machine_line "m");
  let summary =
    Protocol.render_failure_summary
      [ Error.make ~loop:"fir" ~stage:"schedule" Error.Injected "boom" ]
  in
  check_bool "summary counts by category" true
    (String.length summary > 0 && contains ~affix:"injected" summary)

(* ------------------------------------------------------------------ *)
(* Budget clock and deadline tokens.                                   *)
(* ------------------------------------------------------------------ *)

(* Pins the wall-metering clock source: Budget.now must be the
   monotonic telemetry clock, never Unix.gettimeofday — a step of the
   wall clock (NTP, DST) must not expire every in-flight deadline. *)
let test_budget_clock_is_monotonic () =
  let b = Budget.now () in
  let t = Telemetry.now () in
  check_bool "Budget.now ticks with Telemetry.now (monotonic)" true
    (Float.abs (b -. t) < 0.5);
  let wall = Unix.gettimeofday () in
  check_bool "Budget.now is not the wall clock" true (Float.abs (b -. wall) > 1e6)

let test_deadline_tokens () =
  let tok = Deadline.make () in
  check_bool "no deadline, not expired" false (Deadline.expired tok);
  check_bool "time left is infinite" true (Deadline.time_left tok = infinity);
  Deadline.with_token tok (fun () -> Deadline.check ~stage:"t");
  Deadline.cancel ~reason:"stop it" tok;
  check_bool "canceled" true (Deadline.canceled tok);
  (match Deadline.with_token tok (fun () -> Deadline.check ~stage:"t") with
   | () -> Alcotest.fail "canceled token must raise"
   | exception Error.Error e ->
     check_string "canceled category" "canceled" (Error.category_name e.Error.category);
     check_string "cancel reason" "stop it" e.Error.message);
  let expired = Deadline.make ~timeout_s:(-1.0) () in
  check_bool "past deadline is expired" true (Deadline.expired expired);
  (match Deadline.with_token expired (fun () -> Deadline.check ~stage:"t") with
   | () -> Alcotest.fail "expired token must raise"
   | exception Error.Error e ->
     check_string "deadline category" "deadline_exceeded"
       (Error.category_name e.Error.category));
  (* Nesting: the inner scope must not shadow an outer violation. *)
  let outer = Deadline.make () in
  Deadline.cancel outer;
  let inner = Deadline.make ~timeout_s:60.0 () in
  (match
     Deadline.with_token outer (fun () ->
         Deadline.with_token inner (fun () -> Deadline.check ~stage:"t"))
   with
   | () -> Alcotest.fail "outer cancellation must fire inside inner scope"
   | exception Error.Error e ->
     check_string "outer wins" "canceled" (Error.category_name e.Error.category));
  check_bool "no token after scopes" false (Deadline.active ())

(* --timeout through the suite path: a zero budget fails every point
   with the typed deadline category; nothing crashes, nothing leaks. *)
let test_suite_timeout () =
  let loops =
    List.map
      (fun (e : Ncdrf_workloads.Suite.entry) ->
        { Suite_stats.ddg = e.Ncdrf_workloads.Suite.ddg;
          weight = e.Ncdrf_workloads.Suite.iterations })
      (Ncdrf_workloads.Suite.full ~size:8 ())
  in
  let failures = Failures.create () in
  let ms =
    Suite_stats.measure ~failures ~timeout_s:0.0 ~config:(Config.dual ~latency:3)
      ~model:Model.Unified loops
  in
  check_int "no survivors at zero budget" 0 (List.length ms);
  check_int "every loop recorded" (List.length loops) (Failures.count failures);
  List.iter
    (fun (e : Error.t) ->
      check_string "typed deadline failure" "deadline_exceeded"
        (Error.category_name e.Error.category))
    (Failures.list failures)

(* ------------------------------------------------------------------ *)
(* In-process daemon over a real socket.                               *)
(* ------------------------------------------------------------------ *)

let with_daemon ?(configure = fun o -> o) f =
  let path =
    Printf.sprintf "/tmp/ncdrf-test-%d-%d.sock" (Unix.getpid ()) (Random.bits ())
  in
  (try Sys.remove path with Sys_error _ -> ());
  let stop = Atomic.make false in
  let opts = configure { (Server.default_opts ~socket_path:path) with jobs = 1 } in
  let code = ref (-1) in
  let srv = Thread.create (fun () -> code := Server.run ~stop ~handle_signals:false opts) () in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Thread.join srv;
      check_int "daemon drains to exit 0" 0 !code;
      check_bool "socket removed on drain" false (Sys.file_exists path))
    (fun () -> f path)

let default_schedule_kind ?(workload = Protocol.Named "daxpy")
    ?(model = Model.Swapped) () =
  Protocol.Schedule
    {
      workload;
      only = None;
      spec = Config.default_spec;
      model;
      capacity = None;
      spill_batch = 1;
      spill_incremental = false;
      show_kernel = false;
    }

let roundtrip_ok client req =
  match Client.roundtrip client req with
  | Ok resp ->
    check_string "response echoes request id" req.Protocol.id resp.Protocol.req_id;
    resp.Protocol.body
  | Stdlib.Error e -> Alcotest.fail ("transport/protocol error: " ^ Error.to_string e)

let test_daemon_roundtrip () =
  with_daemon @@ fun path ->
  let client = Client.connect path in
  Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
  (* Health answers before any work. *)
  (match roundtrip_ok client { Protocol.id = "h1"; timeout_s = None; kind = Protocol.Health } with
   | Protocol.Health_report h ->
     check_string "status ok" "ok" h.Protocol.status;
     check_int "pool jobs" 1 h.Protocol.pool_jobs
   | _ -> Alcotest.fail "expected a health report");
  (* A named kernel schedules; the point matches a direct pipeline run. *)
  (match
     roundtrip_ok client
       { Protocol.id = "s1"; timeout_s = None; kind = default_schedule_kind () }
   with
   | Protocol.Scheduled { points = [ p ]; machine } ->
     check_string "machine text" (Format.asprintf "%a" Config.pp (Config.dual ~latency:3)) machine;
     check_string "loop name" "daxpy" p.Protocol.loop;
     let direct =
       Pipeline.run ~config:(Config.dual ~latency:3) ~model:Model.Swapped
         (Option.get (Ncdrf_workloads.Kernels.find "daxpy"))
     in
     check_int "II matches direct run" direct.Pipeline.ii p.Protocol.ii;
     check_int "requirement matches direct run" direct.Pipeline.requirement
       p.Protocol.requirement
   | _ -> Alcotest.fail "expected one scheduled point");
  (* Unknown kernels are a typed parse failure, not a dead daemon. *)
  (match
     roundtrip_ok client
       {
         Protocol.id = "s2";
         timeout_s = None;
         kind = default_schedule_kind ~workload:(Protocol.Named "no-such-kernel") ();
       }
   with
   | Protocol.Failed e ->
     check_string "typed parse error" "parse" (Error.category_name e.Error.category)
   | _ -> Alcotest.fail "expected a typed failure");
  (* Poisoned source is contained the same way. *)
  (match
     roundtrip_ok client
       {
         Protocol.id = "s3";
         timeout_s = None;
         kind = default_schedule_kind ~workload:(Protocol.Source "loop broken {") ();
       }
   with
   | Protocol.Failed e ->
     check_string "typed source error" "parse" (Error.category_name e.Error.category)
   | _ -> Alcotest.fail "expected a typed failure");
  (* An already-expired deadline is refused with the typed category. *)
  (match
     roundtrip_ok client
       { Protocol.id = "s4"; timeout_s = Some 0.0; kind = default_schedule_kind () }
   with
   | Protocol.Failed e ->
     check_string "typed deadline error" "deadline_exceeded"
       (Error.category_name e.Error.category)
   | _ -> Alcotest.fail "expected a deadline failure");
  (* The daemon survived all of the above. *)
  match roundtrip_ok client { Protocol.id = "h2"; timeout_s = None; kind = Protocol.Stats } with
  | Protocol.Health_report h ->
    check_bool "served counted" true (h.Protocol.served >= 2);
    check_bool "error counters populated" true
      (List.mem_assoc "parse" h.Protocol.error_counts
      && List.mem_assoc "deadline_exceeded" h.Protocol.error_counts)
  | _ -> Alcotest.fail "expected a stats report"

(* An armed fault inside the pipeline becomes a typed injected failure
   response; the daemon keeps serving. *)
let test_daemon_contains_injected_fault () =
  with_daemon @@ fun path ->
  let client = Client.connect path in
  Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
  (match Fault.arm "stage=schedule,every=1" with
   | Ok () -> ()
   | Stdlib.Error msg -> Alcotest.fail msg);
  Fun.protect ~finally:Fault.disarm @@ fun () ->
  (* A (kernel, model) pair no other test schedules: the shared artifact
     cache is process-wide, and a warm hit would skip the schedule stage
     the fault is armed on. *)
  (match
     roundtrip_ok client
       {
         Protocol.id = "f1";
         timeout_s = None;
         kind =
           default_schedule_kind ~workload:(Protocol.Named "ll5-tridiag")
             ~model:Model.Partitioned ();
       }
   with
   | Protocol.Failed e ->
     check_string "typed injected error" "injected" (Error.category_name e.Error.category)
   | _ -> Alcotest.fail "expected an injected failure");
  Fault.disarm ();
  match roundtrip_ok client { Protocol.id = "h1"; timeout_s = None; kind = Protocol.Health } with
  | Protocol.Health_report h -> check_string "daemon alive" "ok" h.Protocol.status
  | _ -> Alcotest.fail "daemon died after injected fault"

(* The suite served over the wire carries exactly the rows a local run
   computes, and the rendered report is byte-identical to the batch
   driver's (both print through the shared renderers). *)
let test_daemon_suite_identity () =
  with_daemon @@ fun path ->
  let client = Client.connect path in
  Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
  let size = 12 and registers = 32 in
  let body =
    roundtrip_ok client
      {
        Protocol.id = "u1";
        timeout_s = None;
        kind = Protocol.Suite { spec = Config.default_spec; size; registers };
      }
  in
  match body with
  | Protocol.Suite_report { machine; jobs; rows; failures; _ } ->
    check_int "serial pool" 1 jobs;
    check_int "clean run" 0 (List.length failures);
    let config = Config.dual ~latency:3 in
    let loops =
      List.map
        (fun (e : Ncdrf_workloads.Suite.entry) ->
          { Suite_stats.ddg = e.Ncdrf_workloads.Suite.ddg;
            weight = e.Ncdrf_workloads.Suite.iterations })
        (Ncdrf_workloads.Suite.full ~size ())
    in
    let local_rows =
      List.map
        (fun (m, ms) ->
          let s, d = Suite_stats.allocatable ms ~r:registers in
          (m, s, d))
        (Suite_stats.measure_all ~config
           ~models:[ Model.Unified; Model.Partitioned; Model.Swapped ]
           loops)
    in
    (* Structural float equality would be too strict: values cross the
       wire through %.9g rendering.  The invariant that matters is the
       one the CLI exposes — the rendered report is byte-identical. *)
    check_bool "same models in order" true
      (List.map (fun (m, _, _) -> m) rows
      = List.map (fun (m, _, _) -> m) local_rows);
    let render rows =
      Protocol.render_suite_header ~size ~machine ~jobs
      ^ Protocol.render_suite_table_head ~registers
      ^ String.concat "" (List.map Protocol.render_suite_row rows)
    in
    check_string "rendered report byte-identical" (render local_rows) (render rows)
  | _ -> Alcotest.fail "expected a suite report"

(* ------------------------------------------------------------------ *)
(* Request-scoped observability under concurrency.                     *)
(* ------------------------------------------------------------------ *)

(* Identity projections: everything deterministic about a record, with
   timestamps, durations and track ids (which legitimately differ
   between a serial and a concurrent run) stripped. *)
let event_projection (e : Trace.event) =
  (e.Trace.request, e.Trace.name, e.Trace.phase, e.Trace.loop, e.Trace.config,
   e.Trace.ii)

let ledger_projection (r : Ledger.record) =
  (r.Ledger.request, r.Ledger.label, r.Ledger.loop, r.Ledger.config,
   r.Ledger.fp, r.Ledger.models, r.Ledger.capacity, r.Ledger.ok,
   r.Ledger.error)

let reset_observability () =
  Trace.reset ();
  Telemetry.reset ();
  Ledger.reset ()

(* Issue [kinds] against a fresh armed daemon — sequentially on one
   client per request when [concurrent] is false, else one systhread
   per request — and snapshot the in-memory observability state after
   the daemon drains (handler threads joined, shards quiescent).
   Request i gets id [tag ^ i] in both modes, so serial and concurrent
   runs can be compared per request id. *)
let observed_run ~tag ~concurrent kinds =
  reset_observability ();
  let tmp suffix = Filename.temp_file "ncdrf-obs" suffix in
  let metrics = tmp ".json" and trace = tmp ".trace" and ledger = tmp ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ metrics; trace; ledger ])
  @@ fun () ->
  let failures = ref [] in
  let fail_lock = Mutex.create () in
  let note msg =
    Mutex.lock fail_lock;
    failures := msg :: !failures;
    Mutex.unlock fail_lock
  in
  with_daemon
    ~configure:(fun o ->
      {
        o with
        max_inflight = 4;
        metrics = Some metrics;
        trace = Some trace;
        ledger = Some ledger;
      })
    (fun path ->
      let issue i kind =
        let id = Printf.sprintf "%s%d" tag i in
        match
          let client = Client.connect path in
          Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
          Client.request client { Protocol.id; timeout_s = None; kind }
        with
        | Ok resp ->
          if resp.Protocol.req_id <> id then note ("wrong echo for " ^ id);
          (match resp.Protocol.body with
           | Protocol.Suite_report _ | Protocol.Scheduled _ -> ()
           | _ -> note ("non-work response for " ^ id))
        | Stdlib.Error e -> note (Error.to_string e)
        | exception e -> note (Printexc.to_string e)
      in
      if concurrent then
        List.iter Thread.join
          (List.mapi (fun i k -> Thread.create (fun () -> issue i k) ()) kinds)
      else List.iteri issue kinds);
  if !failures <> [] then Alcotest.fail (String.concat "; " !failures);
  let events = List.map event_projection (Trace.events ()) in
  let spans =
    List.map
      (fun ((req, name), (s : Telemetry.span)) -> (req, name, s.Telemetry.count))
      (Telemetry.request_spans ())
  in
  let ledgers = List.map ledger_projection (Ledger.records ()) in
  (events, spans, ledgers)

(* N concurrent requests produce per-request-id observability sets
   that are pairwise disjoint (every record carries exactly one of the
   N ids) and whose union equals the serial run's multiset — in fact
   each id's projection matches the serial run of the same id, which
   is stronger.  The artifact cache is disabled so both runs perform
   identical work. *)
let prop_concurrent_observability =
  QCheck.Test.make ~count:3 ~name:"concurrent requests keep observability apart"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 2 4))
    (fun n ->
      let was = Artifact.cache_enabled () in
      Artifact.set_cache_enabled false;
      Artifact.clear_cache ();
      Fun.protect
        ~finally:(fun () ->
          Artifact.set_cache_enabled was;
          Artifact.clear_cache ();
          Telemetry.enable false;
          Trace.enable false;
          Ledger.enable false;
          reset_observability ())
      @@ fun () ->
      let sizes = List.init n (fun i -> 4 + (2 * i)) in
      (* Pre-warm the suite-generation cache so neither run records the
         one-off generation work under a request id. *)
      List.iter (fun size -> ignore (Ncdrf_workloads.Suite.full ~size ())) sizes;
      let kinds =
        List.map
          (fun size ->
            Protocol.Suite { spec = Config.default_spec; size; registers = 32 })
          sizes
      in
      let se, ss, sl = observed_run ~tag:"req" ~concurrent:false kinds in
      let ce, cs, cl = observed_run ~tag:"req" ~concurrent:true kinds in
      let ids = List.init n (fun i -> Printf.sprintf "req%d" i) in
      (* Disjointness: every concurrent record is attributed to exactly
         one of the N ids — nothing leaks to the ambient "" scope or to
         a foreign id. *)
      List.iter
        (fun (req, _, _, _, _, _) ->
          if not (List.mem req ids) then
            QCheck.Test.fail_reportf "event outside request scope: %S" req)
        ce;
      List.iter
        (fun (req, _, _) ->
          if not (List.mem req ids) then
            QCheck.Test.fail_reportf "span outside request scope: %S" req)
        cs;
      List.iter
        (fun (req, _, _, _, _, _, _, _, _) ->
          if not (List.mem req ids) then
            QCheck.Test.fail_reportf "ledger record outside request scope: %S" req)
        cl;
      List.iter
        (fun id ->
          if not (List.exists (fun (req, _, _, _, _, _) -> req = id) ce) then
            QCheck.Test.fail_reportf "no events for %s" id)
        ids;
      (* Union = serial multiset: both runs used the same ids for the
         same work, so the full projections must agree as multisets —
         which also pins every per-id subset to its serial twin. *)
      let sort l = List.sort compare l in
      if sort ce <> sort se then QCheck.Test.fail_reportf "event multiset differs";
      if sort cs <> sort ss then QCheck.Test.fail_reportf "span multiset differs";
      if sort cl <> sort sl then QCheck.Test.fail_reportf "ledger multiset differs";
      true)

(* Concurrent clients get byte-identical rendered reports: the answer
   does not depend on which execution slot served it. *)
let test_daemon_concurrent_identity () =
  with_daemon ~configure:(fun o -> { o with max_inflight = 4 }) @@ fun path ->
  let size = 10 and registers = 32 in
  let renders = Array.make 3 "" in
  let errors = ref [] in
  let threads =
    List.init 3 (fun i ->
        Thread.create
          (fun () ->
            match
              let client = Client.connect path in
              Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
              Client.request client
                {
                  Protocol.id = Printf.sprintf "ci%d" i;
                  timeout_s = None;
                  kind = Protocol.Suite { spec = Config.default_spec; size; registers };
                }
            with
            | Ok { Protocol.body = Protocol.Suite_report { machine; jobs; rows; _ }; _ } ->
              renders.(i) <-
                Protocol.render_suite_header ~size ~machine ~jobs
                ^ Protocol.render_suite_table_head ~registers
                ^ String.concat "" (List.map Protocol.render_suite_row rows)
            | Ok _ -> errors := "unexpected body" :: !errors
            | Stdlib.Error e -> errors := Error.to_string e :: !errors
            | exception e -> errors := Printexc.to_string e :: !errors)
          ())
  in
  List.iter Thread.join threads;
  if !errors <> [] then Alcotest.fail (String.concat "; " !errors);
  check_bool "reports non-empty" true (renders.(0) <> "");
  check_string "client 1 matches client 0" renders.(0) renders.(1);
  check_string "client 2 matches client 0" renders.(0) renders.(2)

let suite =
  [
    Alcotest.test_case "malformed frames are typed errors" `Quick test_malformed_frames;
    Alcotest.test_case "frame id recovery" `Quick test_frame_id_recovery;
    Alcotest.test_case "shared renderers" `Quick test_renderers;
    Alcotest.test_case "budget clock is monotonic" `Quick test_budget_clock_is_monotonic;
    Alcotest.test_case "deadline tokens" `Quick test_deadline_tokens;
    Alcotest.test_case "suite --timeout" `Quick test_suite_timeout;
    Alcotest.test_case "daemon roundtrip + containment" `Quick test_daemon_roundtrip;
    Alcotest.test_case "daemon contains injected faults" `Quick
      test_daemon_contains_injected_fault;
    Alcotest.test_case "daemon suite identity" `Quick test_daemon_suite_identity;
    Alcotest.test_case "concurrent clients byte-identical" `Quick
      test_daemon_concurrent_identity;
    QCheck_alcotest.to_alcotest prop_concurrent_observability;
    QCheck_alcotest.to_alcotest prop_request_roundtrip;
    QCheck_alcotest.to_alcotest prop_response_roundtrip;
    QCheck_alcotest.to_alcotest prop_parse_total;
  ]
