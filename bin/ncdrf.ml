(* ncdrf — command line driver.

   Subcommands:
     schedule  compile loops from a .loop file and print schedules,
               kernels and register requirements under a chosen model
     dot       emit the dependence graph of a loop as Graphviz
     suite     summarize register pressure over the synthetic suite
     sweep     requirement of one loop across latencies and models
     profile   analyze a --ledger run: slowest loops, cache hits,
               duration histograms
     example   walk the paper's worked example
     serve     run the compile daemon on a Unix-domain socket
     client    talk to a running daemon (schedule, suite, health)

   See `ncdrf <cmd> --help` for options. *)

open Cmdliner
open Ncdrf_ir
open Ncdrf_machine
open Ncdrf_sched
open Ncdrf_core

(* ------------------------------------------------------------------ *)
(* Shared argument converters.                                         *)
(* ------------------------------------------------------------------ *)

let model_conv =
  let parse s = Model.of_string s |> Result.map_error (fun e -> `Msg e) in
  Arg.conv (parse, fun ppf m -> Format.pp_print_string ppf (Model.to_string m))

let spec_of ?read_ports ?write_ports ~clusters ~latency () =
  {
    Config.spec_latency = latency;
    spec_clusters = clusters;
    spec_read_ports = read_ports;
    spec_write_ports = write_ports;
  }

let config_of ?read_ports ?write_ports ~clusters ~latency () =
  match Config.of_spec (spec_of ?read_ports ?write_ports ~clusters ~latency ()) with
  | Ok config -> config
  | Stdlib.Error msg -> invalid_arg msg

let latency_arg =
  let doc = "Latency of the floating-point adders and multipliers (3 or 6 in the paper)." in
  Arg.(value & opt int 3 & info [ "l"; "latency" ] ~docv:"CYCLES" ~doc)

let clusters_arg =
  let doc =
    "Number of clusters: 1 (unified machine) or $(docv) >= 2 subfiles (2 is the \
     paper's dual machine)."
  in
  Arg.(value & opt int 2 & info [ "c"; "clusters" ] ~docv:"N" ~doc)

let read_ports_arg =
  let doc =
    "Cap each cluster's register-file reads per cycle (omit for unconstrained \
     subfiles, the paper's machine)."
  in
  Arg.(value & opt (some int) None & info [ "read-ports" ] ~docv:"N" ~doc)

let write_ports_arg =
  let doc = "Cap each cluster's register-file writes per cycle (omit for unconstrained)." in
  Arg.(value & opt (some int) None & info [ "write-ports" ] ~docv:"N" ~doc)

let model_arg =
  let doc = "Register file model: ideal, unified, partitioned or swapped." in
  Arg.(value & opt model_conv Model.Swapped & info [ "m"; "model" ] ~docv:"MODEL" ~doc)

let capacity_arg =
  let doc = "Registers per (sub)file; omit for unlimited registers." in
  Arg.(value & opt (some int) None & info [ "r"; "registers" ] ~docv:"N" ~doc)

let file_arg =
  let doc = "Loop file in the ncdrf loop language (see docs in Loop_lang)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let loop_name_arg =
  let doc = "Only process the loop with this name." in
  Arg.(value & opt (some string) None & info [ "loop" ] ~docv:"NAME" ~doc)

let verbose_arg =
  let doc = "Enable debug logging." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let load_loops file name_filter =
  let loops = Loop_lang.parse_file file in
  match name_filter with
  | None -> loops
  | Some n -> List.filter (fun g -> String.equal (Ddg.name g) n) loops

module Error = Ncdrf_error.Error
module Failures = Ncdrf_error.Failures
module Fault = Ncdrf_fault.Fault
module Protocol = Ncdrf_server.Protocol
module Server = Ncdrf_server.Server
module Client = Ncdrf_server.Client
module Store = Ncdrf_cache.Store

(* ------------------------------------------------------------------ *)
(* Persistent store + sharding options shared by suite and serve.       *)
(* ------------------------------------------------------------------ *)

let shard_conv =
  let parse s =
    match String.split_on_char '/' s with
    | [ i; n ] -> (
      match (int_of_string_opt i, int_of_string_opt n) with
      | Some i, Some n when n >= 1 && i >= 0 && i < n -> Ok (i, n)
      | _ -> Stdlib.Error (`Msg "expected I/N with 0 <= I < N"))
    | _ -> Stdlib.Error (`Msg "expected I/N, e.g. 0/2")
  in
  Arg.conv (parse, fun ppf (i, n) -> Format.fprintf ppf "%d/%d" i n)

let shard_arg =
  let doc =
    "Compile only shard $(docv) (as I/N) of the point set.  Loops partition \
     deterministically by content digest — the identity the ledger sorts on — so N \
     shard processes cover the suite exactly once, and their $(b,--metrics) / \
     $(b,--ledger) outputs union back into the unsharded run with $(b,ncdrf merge)."
  in
  Arg.(value & opt (some shard_conv) None & info [ "shard" ] ~docv:"I/N" ~doc)

let cache_dir_arg =
  let doc =
    "Persist compile artifacts in a content-addressed on-disk store under $(docv), \
     shared safely between concurrent processes; a later run over the same store \
     warm-starts from disk instead of recomputing."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let cache_max_mb_arg =
  let doc =
    "Evict least-recently-used store entries once the $(b,--cache-dir) store \
     exceeds $(docv) megabytes (0 = no size budget)."
  in
  Arg.(value & opt int 0 & info [ "cache-max-mb" ] ~docv:"MB" ~doc)

let open_ambient_store ~cache_dir ~cache_max_mb =
  match cache_dir with
  | None -> ()
  | Some dir -> (
    try
      Store.set_ambient
        (Some (Store.open_store ~max_bytes:(cache_max_mb * 1024 * 1024) ~dir ()))
    with Sys_error msg ->
      Printf.eprintf "cannot open --cache-dir: %s\n" msg;
      exit 2)

let apply_shard shard loops =
  match shard with
  | None -> loops
  | Some (index, count) -> Suite_stats.shard ~index ~count loops

(* Uniform failure reporting for every subcommand: legacy front-end
   exceptions, classified pipeline errors, and policy aborts all exit 1
   with a one-line diagnosis instead of a backtrace. *)
let handle_errors f =
  try f () with
  | Loop_lang.Parse_error { file; line; message } ->
    Printf.eprintf "parse error, %sline %d: %s\n"
      (match file with None -> "" | Some p -> p ^ ", ")
      line message;
    1
  | Expr.Compile_error msg ->
    Printf.eprintf "compile error: %s\n" msg;
    1
  | Error.Error e ->
    Printf.eprintf "error: %s\n" (Error.to_string e);
    1
  | Failures.Abort { recorded; last; reason } ->
    Printf.eprintf "aborted (%s) after %d failure(s); last: %s\n" reason recorded
      (Error.to_string last);
    1

(* ------------------------------------------------------------------ *)
(* schedule                                                            *)
(* ------------------------------------------------------------------ *)

let spill_batch_arg =
  let doc =
    "Spill up to $(docv) non-interfering victims per spill round (default 1, the \
     paper's one-victim loop)."
  in
  Arg.(value & opt int 1 & info [ "spill-batch" ] ~docv:"K" ~doc)

let spill_incremental_arg =
  let doc =
    "Reschedule spill rounds incrementally, seeding the previous round's kernel and \
     placing only the new memory operations."
  in
  Arg.(value & flag & info [ "spill-incremental" ] ~doc)

let spill_policy ~batch ~incremental =
  { Ncdrf_spill.Spiller.default_policy with batch; incremental }

let schedule_cmd =
  let run verbose file name latency clusters read_ports write_ports model capacity
      spill_batch spill_incremental show_kernel =
    setup_logs verbose;
    handle_errors @@ fun () ->
    let loops = load_loops file name in
    if loops = [] then (Printf.eprintf "no matching loops\n"; exit 1);
    let config = config_of ?read_ports ?write_ports ~clusters ~latency () in
    let spill = spill_policy ~batch:spill_batch ~incremental:spill_incremental in
    (* Printed through the protocol renderers, so `ncdrf client schedule`
       against a daemon produces these exact bytes. *)
    print_string (Protocol.render_machine_line (Format.asprintf "%a" Config.pp config));
    List.iter
      (fun ddg ->
        let stats = Pipeline.run ~config ~model ?capacity ~spill ddg in
        let header = Format.asprintf "%a" Ddg.pp_stats ddg in
        let kernel =
          if show_kernel then Some (Kernel.render stats.Pipeline.schedule) else None
        in
        print_string (Protocol.render_point (Protocol.point_of_stats ~header ?kernel stats)))
      loops;
    0
  in
  let kernel_arg =
    let doc = "Also print the kernel (steady-state VLIW code)." in
    Arg.(value & flag & info [ "k"; "kernel" ] ~doc)
  in
  let doc = "Modulo-schedule loops and report register requirements." in
  Cmd.v (Cmd.info "schedule" ~doc)
    Term.(
      const run $ verbose_arg $ file_arg $ loop_name_arg $ latency_arg $ clusters_arg
      $ read_ports_arg $ write_ports_arg $ model_arg $ capacity_arg $ spill_batch_arg
      $ spill_incremental_arg $ kernel_arg)

(* ------------------------------------------------------------------ *)
(* dot                                                                 *)
(* ------------------------------------------------------------------ *)

let dot_cmd =
  let run file name =
    handle_errors @@ fun () ->
    let loops = load_loops file name in
    List.iter (fun g -> print_string (Dot.render g)) loops;
    if loops = [] then (Printf.eprintf "no matching loops\n"; 1) else 0
  in
  let doc = "Emit dependence graphs as Graphviz DOT." in
  Cmd.v (Cmd.info "dot" ~doc) Term.(const run $ file_arg $ loop_name_arg)

(* ------------------------------------------------------------------ *)
(* suite                                                               *)
(* ------------------------------------------------------------------ *)

let write_failures_csv path failures =
  Ncdrf_report.Csv.write path (Failures.to_csv_rows failures);
  Format.printf "[failures: %s]@." path

let suite_cmd =
  let run latency clusters read_ports write_ports size registers jobs timeout metrics
      fail_fast max_failures inject failures_csv no_cache trace ledger cache_dir
      cache_max_mb shard =
    let module Pool = Ncdrf_parallel.Pool in
    let module Telemetry = Ncdrf_telemetry.Telemetry in
    let module Trace = Ncdrf_telemetry.Trace in
    let module Ledger = Ncdrf_telemetry.Ledger in
    (match inject with
     | None -> ()
     | Some spec ->
       (match Fault.arm spec with
        | Ok () -> ()
        | Stdlib.Error msg ->
          Printf.eprintf "bad --inject spec: %s\n" msg;
          exit 2));
    let failures = Failures.create ~fail_fast ?max_failures () in
    handle_errors @@ fun () ->
    Fun.protect ~finally:Fault.disarm @@ fun () ->
    let config = config_of ?read_ports ?write_ports ~clusters ~latency () in
    open_ambient_store ~cache_dir ~cache_max_mb;
    let loops =
      apply_shard shard
        (List.map
           (fun e ->
             { Suite_stats.ddg = e.Ncdrf_workloads.Suite.ddg;
               weight = e.Ncdrf_workloads.Suite.iterations })
           (Ncdrf_workloads.Suite.full ~size ()))
    in
    Telemetry.enable (metrics <> None);
    Trace.enable (trace <> None);
    Ledger.enable (ledger <> None);
    Ledger.set_label "suite";
    if no_cache then Artifact.set_cache_enabled false;
    let t0 = Telemetry.now () in
    Pool.with_pool ~jobs (fun pool ->
        let n_jobs = Pool.jobs pool in
        (* Printed through the protocol renderers, so `ncdrf client
           suite` against a daemon produces these exact bytes. *)
        print_string
          (Protocol.render_suite_header ~size
             ~machine:(Format.asprintf "%a" Config.pp config)
             ~jobs:n_jobs);
        print_string (Protocol.render_suite_table_head ~registers);
        (* One scheduling pass per loop, shared by the three models. *)
        List.iter
          (fun (model, ms) ->
            let s, d = Suite_stats.allocatable ms ~r:registers in
            print_string (Protocol.render_suite_row (model, s, d)))
          (Suite_stats.measure_all ~pool ~failures ?timeout_s:timeout ~config
             ~models:[ Model.Unified; Model.Partitioned; Model.Swapped ]
             loops));
    print_string (Protocol.render_failure_summary (Failures.list failures));
    (match metrics with
     | None -> ()
     | Some path ->
       let wall = Telemetry.now () -. t0 in
       let json =
         Telemetry.Json.Obj
           ([
              ("schema", Telemetry.Json.String "ncdrf-suite-metrics/1");
              ("jobs", Telemetry.Json.Int (max 1 jobs));
              ("suite_size", Telemetry.Json.Int size);
              ("wall_s", Telemetry.Json.Float wall);
              ( "loops_per_sec",
                if wall > 0.0 then
                  Telemetry.Json.Float
                    (float_of_int (Telemetry.counter "pipeline.loops") /. wall)
                else Telemetry.Json.Null );
              ("telemetry", Telemetry.to_json ());
            ]
           @
           if Failures.count failures = 0 then []
           else [ ("failures", Failures.to_json failures) ])
       in
       Telemetry.write_json ~path json;
       Format.printf "[metrics: %s]@." path);
    (match trace with
     | None -> ()
     | Some path ->
       Trace.write_chrome ~path;
       Format.printf "[trace: %s]@." path);
    (match ledger with
     | None -> ()
     | Some path ->
       Ledger.write ~path;
       Format.printf "[ledger: %s]@." path);
    (match failures_csv with
     | None -> ()
     | Some path -> write_failures_csv path failures);
    0
  in
  let size_arg =
    let doc = "Number of loops in the synthetic suite." in
    Arg.(value & opt int 300 & info [ "size" ] ~docv:"N" ~doc)
  in
  let registers_arg =
    let doc = "Register budget to test against." in
    Arg.(value & opt int 32 & info [ "r"; "registers" ] ~docv:"N" ~doc)
  in
  let jobs_arg =
    let doc =
      "Worker domains for the per-loop pipeline (default: the recommended domain \
       count).  Results are identical whatever the value."
    in
    Arg.(value & opt int (Ncdrf_parallel.Pool.default_jobs ())
         & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let timeout_arg =
    let doc =
      "Per-point wall budget in seconds (monotonic clock): a (loop, model) point \
       over budget fails with the typed deadline_exceeded category and is recorded \
       in the failure manifest like any other failure."
    in
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECS" ~doc)
  in
  let metrics_arg =
    let doc = "Write a JSON telemetry report (timers, counters, stage spans) to $(docv)." in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let fail_fast_arg =
    let doc =
      "Abort on the first failed (loop, model) point instead of skipping and \
       recording it (the default is to keep going)."
    in
    Arg.(value & flag & info [ "fail-fast" ] ~doc)
  in
  let max_failures_arg =
    let doc = "Abort once more than $(docv) points have failed." in
    Arg.(value & opt (some int) None & info [ "max-failures" ] ~docv:"N" ~doc)
  in
  let inject_arg =
    let doc =
      "Arm a deterministic fault: stage=$(i,NAME)[,loop=$(i,REGEX)][,every=$(i,N)].  \
       Matching pipeline points raise a classified 'injected' failure; off by \
       default and zero-cost when disarmed."
    in
    Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"SPEC" ~doc)
  in
  let failures_arg =
    let doc = "Write the failure manifest as CSV to $(docv) (atomic temp+rename)." in
    Arg.(value & opt (some string) None & info [ "failures" ] ~docv:"FILE" ~doc)
  in
  let no_cache_arg =
    let doc = "Disable the compile cache (every stage recomputes)." in
    Arg.(value & flag & info [ "no-cache" ] ~doc)
  in
  let trace_arg =
    let doc =
      "Write a Chrome trace-event JSON file to $(docv): begin/end events per \
       pipeline stage on one track per worker domain, loadable in \
       chrome://tracing or Perfetto."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let ledger_arg =
    let doc =
      "Write a JSONL run ledger to $(docv): one record per (config, loop) point \
       with stage durations, cache traffic, II vs MII and error category.  \
       Analyze it with $(b,ncdrf profile)."
    in
    Arg.(value & opt (some string) None & info [ "ledger" ] ~docv:"FILE" ~doc)
  in
  let doc = "Register-pressure summary over the synthetic Perfect-Club-like suite." in
  Cmd.v (Cmd.info "suite" ~doc)
    Term.(
      const run $ latency_arg $ clusters_arg $ read_ports_arg $ write_ports_arg
      $ size_arg $ registers_arg $ jobs_arg $ timeout_arg $ metrics_arg $ fail_fast_arg
      $ max_failures_arg $ inject_arg $ failures_arg $ no_cache_arg $ trace_arg
      $ ledger_arg $ cache_dir_arg $ cache_max_mb_arg $ shard_arg)

(* ------------------------------------------------------------------ *)
(* sweep                                                               *)
(* ------------------------------------------------------------------ *)

let sweep_cmd =
  let run file name =
    handle_errors @@ fun () ->
      let loops = load_loops file name in
      if loops = [] then (Printf.eprintf "no matching loops\n"; exit 1);
      List.iter
        (fun ddg ->
          Format.printf "== %a@." Ddg.pp_stats ddg;
          Format.printf "%-10s %4s | %8s %12s %8s@." "latency" "II" "unified" "partitioned"
            "swapped";
          List.iter
            (fun latency ->
              let config = Config.dual ~latency in
              let sched = Modulo.schedule config ddg in
              let unified = Requirements.unified sched in
              let part = (Requirements.partitioned sched).Requirements.requirement in
              let swapped_sched, _ = Swap.improve sched in
              let swapped =
                (Requirements.partitioned swapped_sched).Requirements.requirement
              in
              Format.printf "%-10d %4d | %8d %12d %8d@." latency (Schedule.ii sched) unified
                part swapped)
            [ 1; 2; 3; 4; 6; 8 ])
        loops;
      0
  in
  let doc = "Sweep FP latency and compare register-file models for each loop." in
  Cmd.v (Cmd.info "sweep" ~doc) Term.(const run $ file_arg $ loop_name_arg)

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

let simulate_cmd =
  let run file name latency clusters read_ports write_ports iterations =
    handle_errors @@ fun () ->
      let loops = load_loops file name in
      if loops = [] then (Printf.eprintf "no matching loops\n"; exit 1);
      let config =
        config_of ?read_ports ?write_ports ~clusters:(max clusters 2) ~latency ()
      in
      let clustered_tag =
        if Config.num_clusters config = 2 then "dual"
        else Printf.sprintf "k%d" (Config.num_clusters config)
      in
      let failures = ref 0 in
      List.iter
        (fun ddg ->
          let sched = Modulo.schedule config ddg in
          Format.printf "== %a: II=%d@." Ddg.pp_stats ddg (Schedule.ii sched);
          print_string (Chart.render sched);
          let expected = Ncdrf_sim.Reference.run ~iterations ddg in
          let check tag outcome =
            let ok = Ncdrf_sim.Reference.equal_stores outcome.Ncdrf_sim.Executor.stores expected in
            if not ok then incr failures;
            Format.printf "  %-8s %d regs/file, %d cycles%s: %s@." tag
              outcome.Ncdrf_sim.Executor.capacity outcome.Ncdrf_sim.Executor.cycles
              (if outcome.Ncdrf_sim.Executor.port_stalls > 0 then
                 Printf.sprintf " (%d port stall(s))" outcome.Ncdrf_sim.Executor.port_stalls
               else "")
              (if ok then "matches reference" else "DIVERGES")
          in
          check "unified" (Ncdrf_sim.Executor.run_unified ~iterations sched);
          check clustered_tag (Ncdrf_sim.Executor.run_clustered ~iterations sched);
          let swapped, _ = Swap.improve sched in
          check "swapped" (Ncdrf_sim.Executor.run_clustered ~iterations swapped))
        loops;
      if !failures > 0 then 1 else 0
  in
  let iterations_arg =
    let doc = "Iterations to execute." in
    Arg.(value & opt int 24 & info [ "n"; "iterations" ] ~docv:"N" ~doc)
  in
  let doc =
    "Execute loops on the simulated machine and check against the reference interpreter."
  in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      const run $ file_arg $ loop_name_arg $ latency_arg $ clusters_arg
      $ read_ports_arg $ write_ports_arg $ iterations_arg)

(* ------------------------------------------------------------------ *)
(* kernels                                                             *)
(* ------------------------------------------------------------------ *)

let kernels_cmd =
  let run latency =
    let config = Config.dual ~latency in
    Format.printf "built-in kernels on %a:@.@." Config.pp config;
    Format.printf "%-20s %4s %4s %6s %9s %8s@." "name" "ops" "II" "unif" "partition" "swapped";
    List.iter
      (fun (ddg, _) ->
        let sched = Modulo.schedule config ddg in
        let swapped, _ = Swap.improve sched in
        Format.printf "%-20s %4d %4d %6d %9d %8d@." (Ddg.name ddg) (Ddg.num_nodes ddg)
          (Schedule.ii sched) (Requirements.unified sched)
          (Requirements.partitioned sched).Requirements.requirement
          (Requirements.partitioned swapped).Requirements.requirement)
      (Ncdrf_workloads.Kernels.all ());
    0
  in
  let doc = "List the built-in kernels with their register requirements." in
  Cmd.v (Cmd.info "kernels" ~doc) Term.(const run $ latency_arg)

(* ------------------------------------------------------------------ *)
(* profile                                                             *)
(* ------------------------------------------------------------------ *)

module Ledger = Ncdrf_telemetry.Ledger
module Stats = Ncdrf_report.Stats

(* Everything below is a pure function of the ledger file, so the
   analysis of a given ledger is deterministic; ties in the duration
   sorts break on record identity, never on insertion order. *)
let print_profile ~top ?stage:stage_filter records =
  let ms ns = float_of_int ns /. 1e6 in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 records in
  let labels =
    List.sort_uniq String.compare (List.map (fun r -> r.Ledger.label) records)
  in
  let failed = List.filter (fun r -> not r.Ledger.ok) records in
  Format.printf "ledger: %d record(s), %d label(s), %d failed@." (List.length records)
    (List.length labels) (List.length failed);
  let hit_rate h m =
    if h + m = 0 then ""
    else Printf.sprintf " (%.1f%% hit rate)" (100.0 *. float_of_int h /. float_of_int (h + m))
  in
  let hits = sum (fun r -> r.Ledger.cache_hits)
  and misses = sum (fun r -> r.Ledger.cache_misses) in
  Format.printf "cache: %d hit(s) / %d miss(es)%s@." hits misses (hit_rate hits misses);
  let dhits = sum (fun r -> r.Ledger.disk_hits)
  and dmisses = sum (fun r -> r.Ledger.disk_misses) in
  (* Runs without a --cache-dir store have all-zero disk counters; stay
     silent so pre-store ledgers profile byte-identically. *)
  if dhits + dmisses > 0 then
    Format.printf "disk:  %d hit(s) / %d miss(es)%s@." dhits dmisses
      (hit_rate dhits dmisses);
  if List.length labels > 1 then
    List.iter
      (fun label ->
        let mine = List.filter (fun r -> r.Ledger.label = label) records in
        let h = List.fold_left (fun acc r -> acc + r.Ledger.cache_hits) 0 mine
        and m = List.fold_left (fun acc r -> acc + r.Ledger.cache_misses) 0 mine in
        Format.printf "  %-20s %d / %d%s@." label h m (hit_rate h m))
      labels;
  if failed <> [] then begin
    Format.printf "@.failed points by category:@.";
    let categories =
      List.sort_uniq String.compare
        (List.filter_map (fun r -> r.Ledger.error) failed)
    in
    List.iter
      (fun cat ->
        let n = List.length (List.filter (fun r -> r.Ledger.error = Some cat) failed) in
        Format.printf "  errors.%-20s %d@." cat n)
      categories
  end;
  let describe r =
    let opt name = function None -> "" | Some v -> Printf.sprintf ", %s %d" name v in
    Printf.sprintf "%s, %s%s%s%s%s%s%s" r.Ledger.config r.Ledger.label
      (opt "cap" r.Ledger.capacity)
      (match r.Ledger.ii, r.Ledger.mii with
      | Some ii, Some mii -> Printf.sprintf ", II %d/MII %d" ii mii
      | Some ii, None -> Printf.sprintf ", II %d" ii
      | None, _ -> "")
      (opt "rounds" r.Ledger.rounds)
      (opt "spilled" r.Ledger.spilled)
      (opt "maxlive" r.Ledger.maxlive)
      (match r.Ledger.error with None -> "" | Some e -> ", error " ^ e)
  in
  Format.printf "@.slowest points (total wall time):@.";
  let by_total =
    List.stable_sort
      (fun a b ->
        match compare b.Ledger.total_ns a.Ledger.total_ns with
        | 0 -> Ledger.compare_records a b
        | c -> c)
      records
  in
  List.iteri
    (fun i r ->
      if i < top then
        Format.printf "  %2d. %10.3f ms  %-16s (%s)@." (i + 1) (ms r.Ledger.total_ns)
          r.Ledger.loop (describe r))
    by_total;
  let stages =
    List.sort_uniq String.compare
      (List.concat_map (fun r -> List.map fst r.Ledger.stages) records)
  in
  let stages =
    match stage_filter with
    | None -> stages
    | Some s -> List.filter (String.equal s) stages
  in
  (match stage_filter, stages with
  | Some s, [] -> Format.printf "@.stage %S: no records@." s
  | _ -> ());
  List.iter
    (fun stage ->
      let entries =
        List.filter_map
          (fun r ->
            Option.map (fun ns -> (ns, r)) (List.assoc_opt stage r.Ledger.stages))
          records
        |> List.stable_sort (fun (na, a) (nb, b) ->
               match compare nb na with
               | 0 -> Ledger.compare_records a b
               | c -> c)
      in
      Format.printf "@.top %d by stage %S:@." top stage;
      List.iteri
        (fun i (ns, r) ->
          if i < top then
            Format.printf "  %2d. %10.3f ms  %-16s (%s, %s)@." (i + 1) (ms ns)
              r.Ledger.loop r.Ledger.config r.Ledger.label)
        entries;
      Format.printf "@.stage %S duration histogram (ms):@." stage;
      print_string
        (Stats.render_histogram
           ~label:(fun v -> Printf.sprintf "%.3f" v)
           (Stats.auto_histogram (List.map (fun (ns, _) -> ms ns) entries))))
    stages

(* The same analysis as machine-readable JSON ("ncdrf-profile/1"), so
   CI can gate on ledger-derived stats without scraping the ASCII
   tables.  Durations are milliseconds, like the ASCII output. *)
let profile_json ~top ?stage:stage_filter records =
  let module Json = Ncdrf_telemetry.Json in
  let ms ns = float_of_int ns /. 1e6 in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 records in
  let labels =
    List.sort_uniq String.compare (List.map (fun r -> r.Ledger.label) records)
  in
  let failed = List.filter (fun r -> not r.Ledger.ok) records in
  let by_label =
    List.map
      (fun label ->
        let mine = List.filter (fun r -> r.Ledger.label = label) records in
        let lsum f = List.fold_left (fun acc r -> acc + f r) 0 mine in
        ( label,
          Json.Obj
            [
              ("records", Json.Int (List.length mine));
              ("cache_hits", Json.Int (lsum (fun r -> r.Ledger.cache_hits)));
              ("cache_misses", Json.Int (lsum (fun r -> r.Ledger.cache_misses)));
            ] ))
      labels
  in
  let errors =
    List.sort_uniq String.compare (List.filter_map (fun r -> r.Ledger.error) failed)
    |> List.map (fun cat ->
           ( cat,
             Json.Int
               (List.length (List.filter (fun r -> r.Ledger.error = Some cat) failed))
           ))
  in
  let requests =
    List.sort_uniq String.compare
      (List.filter_map
         (fun r -> if r.Ledger.request = "" then None else Some r.Ledger.request)
         records)
    |> List.map (fun id ->
           ( id,
             Json.Int
               (List.length (List.filter (fun r -> r.Ledger.request = id) records))
           ))
  in
  let point_obj extra r =
    Json.Obj
      ([
         ("loop", Json.String r.Ledger.loop);
         ("config", Json.String r.Ledger.config);
         ("label", Json.String r.Ledger.label);
       ]
      @ extra r)
  in
  let take n l = List.filteri (fun i _ -> i < n) l in
  let slowest =
    List.stable_sort
      (fun a b ->
        match compare b.Ledger.total_ns a.Ledger.total_ns with
        | 0 -> Ledger.compare_records a b
        | c -> c)
      records
    |> take top
    |> List.map
         (point_obj (fun r -> [ ("total_ms", Json.Float (ms r.Ledger.total_ns)) ]))
  in
  let stages =
    List.sort_uniq String.compare
      (List.concat_map (fun r -> List.map fst r.Ledger.stages) records)
  in
  let stages =
    match stage_filter with
    | None -> stages
    | Some s -> List.filter (String.equal s) stages
  in
  let stage_obj stage =
    let entries =
      List.filter_map
        (fun r -> Option.map (fun ns -> (ns, r)) (List.assoc_opt stage r.Ledger.stages))
        records
      |> List.stable_sort (fun (na, a) (nb, b) ->
             match compare nb na with
             | 0 -> Ledger.compare_records a b
             | c -> c)
    in
    let durations = List.map (fun (ns, _) -> ms ns) entries in
    let pct p = match durations with [] -> 0.0 | l -> Stats.percentile p l in
    ( stage,
      Json.Obj
        [
          ("count", Json.Int (List.length entries));
          ("total_ms", Json.Float (List.fold_left ( +. ) 0.0 durations));
          ("p50_ms", Json.Float (pct 50.0));
          ("p90_ms", Json.Float (pct 90.0));
          ("p99_ms", Json.Float (pct 99.0));
          ( "top",
            Json.List
              (take top entries
              |> List.map (fun (ns, r) ->
                     point_obj (fun _ -> [ ("ms", Json.Float (ms ns)) ]) r)) );
        ] )
  in
  Json.Obj
    ([
       ("schema", Json.String "ncdrf-profile/1");
       ("records", Json.Int (List.length records));
       ("labels", Json.Int (List.length labels));
       ("failed", Json.Int (List.length failed));
       ( "cache",
         Json.Obj
           [
             ("hits", Json.Int (sum (fun r -> r.Ledger.cache_hits)));
             ("misses", Json.Int (sum (fun r -> r.Ledger.cache_misses)));
             ("disk_hits", Json.Int (sum (fun r -> r.Ledger.disk_hits)));
             ("disk_misses", Json.Int (sum (fun r -> r.Ledger.disk_misses)));
           ] );
       ("by_label", Json.Obj by_label);
       ("errors", Json.Obj errors);
     ]
    @ (if requests = [] then [] else [ ("by_request", Json.Obj requests) ])
    @ [ ("slowest", Json.List slowest); ("stages", Json.Obj (List.map stage_obj stages)) ]
    )

let profile_cmd =
  let run files top stage format =
    handle_errors @@ fun () ->
    let loaded =
      List.map
        (fun file ->
          match Ledger.load ~path:file with
          | Stdlib.Error msg ->
            Printf.eprintf "profile: %s: %s\n" file msg;
            exit 1
          | Ok records -> (file, records))
        files
    in
    (* Shard ledgers merge like `ncdrf merge`: concatenate and re-sort
       by record identity, so the analysis below sees one run. *)
    let records =
      Ncdrf_telemetry.Merge.merge_ledgers (List.map snd loaded)
    in
    match records with
    | [] ->
      Printf.eprintf "profile: empty ledger\n";
      1
    | records -> (
      match format with
      | `Json ->
        print_string
          (Ncdrf_telemetry.Json.to_string (profile_json ~top ?stage records));
        print_newline ();
        0
      | `Ascii ->
        if List.length loaded > 1 then begin
          Format.printf "shards:@.";
          List.iter
            (fun (file, rs) ->
              Format.printf "  %-32s %d point(s)@." file (List.length rs))
            loaded
        end;
        print_profile ~top ?stage records;
        0)
  in
  let ledger_file_arg =
    let doc =
      "Run ledgers (JSONL) produced by $(b,--ledger) runs.  Several files — e.g. \
       the per-shard ledgers of a $(b,--shard) run — are merged by record \
       identity and analyzed as one run, with per-shard point counts reported."
    in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"LEDGER" ~doc)
  in
  let top_arg =
    let doc = "Show the $(docv) slowest entries per ranking." in
    Arg.(value & opt int 3 & info [ "top" ] ~docv:"N" ~doc)
  in
  let stage_arg =
    let doc = "Only analyze stage $(docv) (e.g. schedule, alloc, spill)." in
    Arg.(value & opt (some string) None & info [ "stage" ] ~docv:"NAME" ~doc)
  in
  let format_arg =
    let doc =
      "Output format: $(b,ascii) tables and histograms (default), or $(b,json) — \
       the same analysis as one machine-readable ncdrf-profile/1 document."
    in
    Arg.(
      value
      & opt (enum [ ("ascii", `Ascii); ("json", `Json) ]) `Ascii
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let doc =
    "Analyze a run ledger: slowest points per stage, cache-hit breakdowns and \
     ASCII duration histograms (or the same tables as JSON)."
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(const run $ ledger_file_arg $ top_arg $ stage_arg $ format_arg)

(* ------------------------------------------------------------------ *)
(* merge                                                               *)
(* ------------------------------------------------------------------ *)

module Merge = Ncdrf_telemetry.Merge
module Json = Ncdrf_telemetry.Json

let merge_cmd =
  let run files metrics_out ledger_out trace_out strip =
    handle_errors @@ fun () ->
    (* Inputs self-identify: a JSON document with a "schema" field is a
       metrics file, one with a "traceEvents" list is a Chrome trace,
       anything else must load as a JSONL ledger. *)
    let classify file =
      let content =
        try In_channel.with_open_text file In_channel.input_all
        with Sys_error msg ->
          Printf.eprintf "merge: %s\n" msg;
          exit 1
      in
      match Json.of_string content with
      | Ok (Json.Obj fields as json) when List.mem_assoc "schema" fields ->
        `Metrics json
      | Ok (Json.Obj fields as json) when List.mem_assoc "traceEvents" fields ->
        `Trace json
      | _ -> (
        match Ledger.load ~path:file with
        | Ok records -> `Ledger records
        | Stdlib.Error msg ->
          Printf.eprintf
            "merge: %s: neither a metrics JSON, a trace, nor a ledger: %s\n" file msg;
          exit 1)
    in
    let inputs = List.map classify files in
    let metrics_in = List.filter_map (function `Metrics j -> Some j | _ -> None) inputs in
    let ledgers_in = List.filter_map (function `Ledger r -> Some r | _ -> None) inputs in
    let traces_in = List.filter_map (function `Trace j -> Some j | _ -> None) inputs in
    (match (metrics_in, metrics_out) with
    | [], None -> ()
    | [], Some _ ->
      Printf.eprintf "merge: --metrics given but no metrics inputs\n";
      exit 1
    | _ :: _, None ->
      Printf.eprintf "merge: metrics inputs given but no --metrics OUT\n";
      exit 1
    | docs, Some path -> (
      match Merge.merge_metrics docs with
      | Stdlib.Error msg ->
        Printf.eprintf "merge: %s\n" msg;
        exit 1
      | Ok merged ->
        let merged = if strip then Merge.strip_timing merged else merged in
        Ncdrf_telemetry.Telemetry.write_json ~path merged;
        Format.printf "[metrics: %s]@." path));
    (match (ledgers_in, ledger_out) with
    | [], None -> ()
    | [], Some _ ->
      Printf.eprintf "merge: --ledger given but no ledger inputs\n";
      exit 1
    | _ :: _, None ->
      Printf.eprintf "merge: ledger inputs given but no --ledger OUT\n";
      exit 1
    | shards, Some path ->
      let records = Merge.merge_ledgers shards in
      let records =
        if strip then List.map Merge.strip_record_timing records else records
      in
      Json.write_file ~prefix:".ledger" ~path (Ledger.to_jsonl records);
      Format.printf "[ledger: %s]@." path);
    (match (traces_in, trace_out) with
    | [], None -> ()
    | [], Some _ ->
      Printf.eprintf "merge: --trace given but no trace inputs\n";
      exit 1
    | _ :: _, None ->
      Printf.eprintf "merge: trace inputs given but no --trace OUT\n";
      exit 1
    | docs, Some path -> (
      match Merge.merge_traces docs with
      | Stdlib.Error msg ->
        Printf.eprintf "merge: %s\n" msg;
        exit 1
      | Ok merged ->
        Json.write_file ~prefix:".trace" ~path (Json.to_string merged ^ "\n");
        Format.printf "[trace: %s]@." path));
    0
  in
  let files_arg =
    let doc =
      "Shard outputs to merge: $(b,--metrics) JSONs and/or $(b,--ledger) JSONL \
       files, classified by content.  A single input is re-rendered through the \
       same merge, which normalizes an unsharded file for comparison."
    in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc)
  in
  let metrics_out_arg =
    let doc =
      "Write the merged metrics JSON to $(docv): counters and span counts sum, \
       span maxima take the max, percentiles merge count-weighted."
    in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"OUT" ~doc)
  in
  let ledger_out_arg =
    let doc =
      "Write the merged ledger to $(docv): shard records concatenated and \
       re-sorted by record identity, the order an unsharded run writes."
    in
    Arg.(value & opt (some string) None & info [ "ledger" ] ~docv:"OUT" ~doc)
  in
  let trace_out_arg =
    let doc =
      "Write the merged Chrome trace to $(docv): each input trace re-namespaced \
       onto its own pid, thread-name metadata first, timed events stable-sorted \
       by timestamp; per-event request ids pass through."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"OUT" ~doc)
  in
  let strip_arg =
    let doc =
      "Null every timing field (wall clocks, span durations, percentiles, rates) \
       in the outputs, so a merged sharded run can be compared byte-for-byte \
       against a normalized unsharded run."
    in
    Arg.(value & flag & info [ "strip-timing" ] ~doc)
  in
  let doc = "Merge sharded --metrics / --ledger / --trace outputs into one run." in
  Cmd.v (Cmd.info "merge" ~doc)
    Term.(
      const run $ files_arg $ metrics_out_arg $ ledger_out_arg $ trace_out_arg
      $ strip_arg)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  let doc = "Unix-domain socket path of the daemon." in
  Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let run verbose socket jobs max_inflight queue timeout drain_grace metrics trace
      ledger inject cache_dir cache_max_mb =
    setup_logs verbose;
    (match inject with
     | None -> ()
     | Some spec ->
       (match Fault.arm spec with
        | Ok () -> ()
        | Stdlib.Error msg ->
          Printf.eprintf "bad --inject spec: %s\n" msg;
          exit 2));
    handle_errors @@ fun () ->
    Fun.protect ~finally:Fault.disarm @@ fun () ->
    Server.run
      {
        Server.socket_path = socket;
        jobs;
        max_inflight;
        queue_bound = queue;
        default_timeout_s = timeout;
        drain_grace_s = drain_grace;
        metrics;
        trace;
        ledger;
        cache_dir;
        cache_max_mb;
      }
  in
  let jobs_arg =
    let doc = "Worker domains of the shared compile pool." in
    Arg.(value & opt int (Ncdrf_parallel.Pool.default_jobs ())
         & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let max_inflight_arg =
    let doc =
      "Concurrent request execution slots: up to $(docv) admitted requests execute \
       at once on their connection threads (per-request observability is isolated \
       by (domain, thread)-keyed shards and request-id stamping)."
    in
    Arg.(value & opt int 4 & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let queue_arg =
    let doc =
      "Admission queue bound: requests beyond the executing ones wait in at most \
       $(docv) slots; further requests are shed with a typed overloaded response."
    in
    Arg.(value & opt int 8 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let timeout_arg =
    let doc = "Default per-request deadline in seconds (requests may carry their own)." in
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECS" ~doc)
  in
  let drain_grace_arg =
    let doc =
      "On SIGTERM/SIGINT, let in-flight requests finish for $(docv) seconds before \
       cancelling them."
    in
    Arg.(value & opt float 5.0 & info [ "drain-grace" ] ~docv:"SECS" ~doc)
  in
  let metrics_arg =
    let doc = "Publish final serving metrics JSON to $(docv) on drain (atomic temp+rename)." in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let trace_arg =
    let doc = "Publish a Chrome trace of the serving session to $(docv) on drain." in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let ledger_arg =
    let doc =
      "Publish the run ledger to $(docv) on drain: one record per request plus one \
       per compiled point."
    in
    Arg.(value & opt (some string) None & info [ "ledger" ] ~docv:"FILE" ~doc)
  in
  let inject_arg =
    let doc =
      "Arm a deterministic fault, as in $(b,ncdrf suite): matching points raise a \
       classified 'injected' failure, which the daemon must contain."
    in
    Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"SPEC" ~doc)
  in
  let doc = "Serve scheduling requests over a Unix-domain socket (JSONL protocol)." in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ verbose_arg $ socket_arg $ jobs_arg $ max_inflight_arg
      $ queue_arg $ timeout_arg $ drain_grace_arg $ metrics_arg $ trace_arg
      $ ledger_arg $ inject_arg $ cache_dir_arg $ cache_max_mb_arg)

(* ------------------------------------------------------------------ *)
(* client                                                              *)
(* ------------------------------------------------------------------ *)

let connect_timeout_arg =
  let doc = "Seconds to keep polling for the daemon's socket before giving up." in
  Arg.(value & opt float 5.0 & info [ "connect-timeout" ] ~docv:"SECS" ~doc)

let retries_arg =
  let doc =
    "Retry an overloaded answer up to $(docv) times, honoring the daemon's \
     retry-after hint with exponential backoff and jitter."
  in
  Arg.(value & opt int 5 & info [ "retries" ] ~docv:"N" ~doc)

let request_timeout_arg =
  let doc = "Per-request deadline in seconds, enforced by the daemon." in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECS" ~doc)

let req_counter = ref 0

let fresh_request_id () =
  incr req_counter;
  Printf.sprintf "cli-%d-%d" (Unix.getpid ()) !req_counter

(* Issue one request and hand the successful body to [on_body]'s exit
   code; every failure mode gets the uniform one-line diagnosis (exit 1)
   except shedding that outlasted the retry budget, which exits 3 so
   scripts can tell "daemon busy" from "request bad". *)
let with_client ~socket ~connect_timeout ~retries ~kind ~timeout_s ~on_body () =
  handle_errors @@ fun () ->
  let client = Client.connect ~connect_timeout_s:connect_timeout socket in
  Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
  let req = { Protocol.id = fresh_request_id (); timeout_s; kind } in
  match Client.request ~retries client req with
  | Stdlib.Error e ->
    Printf.eprintf "error: %s\n" (Error.to_string e);
    1
  | Ok resp -> (
    match resp.Protocol.body with
    | Protocol.Failed e ->
      Printf.eprintf "error: %s\n" (Error.to_string e);
      1
    | Protocol.Overloaded { queue_depth; _ } ->
      Printf.eprintf "overloaded: daemon queue full (depth %d), retries exhausted\n"
        queue_depth;
      3
    | body -> on_body body)

let print_health (h : Protocol.health) =
  Printf.printf "status: %s\n" h.Protocol.status;
  Printf.printf "uptime: %.1f s\n" h.Protocol.uptime_s;
  Printf.printf "requests: %d served, %d shed, %d active, %d queued (queue bound %d, max inflight %d)\n"
    h.Protocol.served h.Protocol.shed h.Protocol.active h.Protocol.queued
    h.Protocol.queue_bound h.Protocol.max_inflight;
  Printf.printf "pool: %d job(s)\n" h.Protocol.pool_jobs;
  let lookups = h.Protocol.cache_hits + h.Protocol.cache_misses in
  Printf.printf "cache: %d hit(s) / %d miss(es)%s, %d entr%s\n" h.Protocol.cache_hits
    h.Protocol.cache_misses
    (if lookups = 0 then ""
     else
       Printf.sprintf " (%.1f%% hit rate)"
         (100.0 *. float_of_int h.Protocol.cache_hits /. float_of_int lookups))
    h.Protocol.cache_entries
    (if h.Protocol.cache_entries = 1 then "y" else "ies");
  if h.Protocol.kind_counts <> [] then begin
    Printf.printf "requests by kind:\n";
    List.iter
      (fun (kind, count) -> Printf.printf "  %-12s %d\n" kind count)
      h.Protocol.kind_counts
  end;
  if h.Protocol.latency_p50_s > 0.0 then
    Printf.printf "latency: p50 %.3f s, p90 %.3f s, p99 %.3f s\n"
      h.Protocol.latency_p50_s h.Protocol.latency_p90_s h.Protocol.latency_p99_s;
  if h.Protocol.error_counts <> [] then begin
    Printf.printf "errors:\n";
    List.iter
      (fun (category, count) -> Printf.printf "  errors.%-20s %d\n" category count)
      h.Protocol.error_counts
  end

let client_health_cmd ~name ~kind =
  let run socket connect_timeout =
    with_client ~socket ~connect_timeout ~retries:0 ~kind ~timeout_s:None
      ~on_body:(function
        | Protocol.Health_report h ->
          print_health h;
          0
        | _ ->
          Printf.eprintf "error: unexpected response kind\n";
          1)
      ()
  in
  let doc = "Query the daemon's health/stats snapshot (bypasses admission)." in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ socket_arg $ connect_timeout_arg)

let client_schedule_cmd =
  let run socket connect_timeout retries timeout file name latency clusters read_ports
      write_ports model capacity spill_batch spill_incremental show_kernel =
    let source =
      try In_channel.with_open_text file In_channel.input_all
      with Sys_error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
    in
    let kind =
      Protocol.Schedule
        {
          workload = Protocol.Source source;
          only = name;
          spec = spec_of ?read_ports ?write_ports ~clusters ~latency ();
          model;
          capacity;
          spill_batch;
          spill_incremental;
          show_kernel;
        }
    in
    with_client ~socket ~connect_timeout ~retries ~kind ~timeout_s:timeout
      ~on_body:(function
        | Protocol.Scheduled { points = []; _ } ->
          Printf.eprintf "no matching loops\n";
          1
        | Protocol.Scheduled { machine; points } ->
          print_string (Protocol.render_machine_line machine);
          List.iter (fun p -> print_string (Protocol.render_point p)) points;
          0
        | _ ->
          Printf.eprintf "error: unexpected response kind\n";
          1)
      ()
  in
  let kernel_arg =
    let doc = "Also print the kernel (steady-state VLIW code)." in
    Arg.(value & flag & info [ "k"; "kernel" ] ~doc)
  in
  let doc = "Compile a loop file on the daemon; output matches $(b,ncdrf schedule)." in
  Cmd.v (Cmd.info "schedule" ~doc)
    Term.(
      const run $ socket_arg $ connect_timeout_arg $ retries_arg $ request_timeout_arg
      $ file_arg $ loop_name_arg $ latency_arg $ clusters_arg $ read_ports_arg
      $ write_ports_arg $ model_arg $ capacity_arg $ spill_batch_arg
      $ spill_incremental_arg $ kernel_arg)

let client_suite_cmd =
  let run socket connect_timeout retries timeout latency clusters read_ports write_ports
      size registers failures_csv =
    let kind =
      Protocol.Suite
        { spec = spec_of ?read_ports ?write_ports ~clusters ~latency (); size; registers }
    in
    with_client ~socket ~connect_timeout ~retries ~kind ~timeout_s:timeout
      ~on_body:(function
        | Protocol.Suite_report { machine; size; jobs; registers; rows; failures } ->
          print_string (Protocol.render_suite_header ~size ~machine ~jobs);
          print_string (Protocol.render_suite_table_head ~registers);
          List.iter (fun row -> print_string (Protocol.render_suite_row row)) rows;
          print_string (Protocol.render_failure_summary failures);
          (match failures_csv with
           | None -> ()
           | Some path ->
             Ncdrf_report.Csv.write path (Failures.csv_rows_of_list failures);
             Format.printf "[failures: %s]@." path);
          0
        | _ ->
          Printf.eprintf "error: unexpected response kind\n";
          1)
      ()
  in
  let size_arg =
    let doc = "Number of loops in the synthetic suite." in
    Arg.(value & opt int 300 & info [ "size" ] ~docv:"N" ~doc)
  in
  let registers_arg =
    let doc = "Register budget to test against." in
    Arg.(value & opt int 32 & info [ "r"; "registers" ] ~docv:"N" ~doc)
  in
  let failures_arg =
    let doc = "Write the failure manifest as CSV to $(docv) (atomic temp+rename)." in
    Arg.(value & opt (some string) None & info [ "failures" ] ~docv:"FILE" ~doc)
  in
  let doc = "Run the suite summary on the daemon; output matches $(b,ncdrf suite)." in
  Cmd.v (Cmd.info "suite" ~doc)
    Term.(
      const run $ socket_arg $ connect_timeout_arg $ retries_arg $ request_timeout_arg
      $ latency_arg $ clusters_arg $ read_ports_arg $ write_ports_arg $ size_arg
      $ registers_arg $ failures_arg)

let client_cmd =
  let doc = "Talk to a running $(b,ncdrf serve) daemon." in
  Cmd.group (Cmd.info "client" ~doc)
    [
      client_schedule_cmd;
      client_suite_cmd;
      client_health_cmd ~name:"health" ~kind:Protocol.Health;
      client_health_cmd ~name:"stats" ~kind:Protocol.Stats;
    ]

(* ------------------------------------------------------------------ *)
(* example                                                             *)
(* ------------------------------------------------------------------ *)

let example_cmd =
  let run () =
    let ddg = Ncdrf_workloads.Kernels.paper_example () in
    let config = Config.example () in
    let sched = Modulo.schedule config ddg in
    Format.printf "machine: %a@." Config.pp config;
    Format.printf "%a@." Schedule.pp sched;
    print_string (Kernel.render sched);
    let detail = Requirements.partitioned sched in
    Format.printf "unified %d, partitioned %d@." (Requirements.unified sched)
      detail.Requirements.requirement;
    let swapped, stats = Swap.improve sched in
    Format.printf "after %d swaps: %d@." stats.Swap.swaps
      (Requirements.partitioned swapped).Requirements.requirement;
    0
  in
  let doc = "Schedule the paper's worked example and print every artifact." in
  Cmd.v (Cmd.info "example" ~doc) Term.(const run $ const ())

(* One-screen usage covering every subcommand and the suite's
   accumulated flags; printed to stderr (after cmdliner's own
   diagnostic) whenever the command line does not parse, which exits 2
   instead of cmdliner's default 124. *)
let usage =
  String.concat "\n"
    [
      "usage: ncdrf COMMAND [OPTION]...";
      "";
      "commands:";
      "  schedule FILE   modulo-schedule loops; print schedules, kernels, requirements";
      "  dot FILE        emit dependence graphs as Graphviz DOT";
      "  suite           register-pressure summary over the synthetic suite";
      "  sweep FILE      requirement of each loop across FP latencies and models";
      "  simulate FILE   execute loops on the simulated machine vs the reference";
      "  kernels         list built-in kernels with their register requirements";
      "  profile LEDGER...  analyze --ledger runs (shard ledgers merge): slowest loops,";
      "                  cache hits, histograms; --format json for machine-readable";
      "  merge FILE...   union sharded --metrics/--ledger/--trace outputs into one run";
      "  example         walk the paper's worked example";
      "  serve           run the compile daemon on a Unix-domain socket";
      "                  (--max-inflight N concurrent requests, default 4)";
      "  client CMD      schedule/suite/health against a running daemon";
      "";
      "suite options:";
      "  -l, --latency N    FP add/mul latency (default 3)";
      "  -c, --clusters K   clusters/subfiles: 1 = unified, 2 = dual (default), K > 2";
      "      --read-ports N   per-subfile register-file read-port cap (default: none)";
      "      --write-ports N  per-subfile register-file write-port cap (default: none)";
      "      --size N       loops in the synthetic suite (default 300)";
      "  -r, --registers N  register budget to test against (default 32)";
      "  -j, --jobs N       worker domains (results identical for any N)";
      "      --timeout SECS per-point wall budget (typed deadline_exceeded failures)";
      "      --metrics FILE JSON telemetry: spans with p50/p90/p99, counters";
      "      --trace FILE   Chrome trace-event JSON (chrome://tracing, Perfetto)";
      "      --ledger FILE  JSONL run ledger, one record per (config, loop) point";
      "      --no-cache     disable the compile cache";
      "      --cache-dir DIR   persistent artifact store shared across processes";
      "      --cache-max-mb N  LRU-evict the store beyond N megabytes (0 = unlimited)";
      "      --shard I/N    compile only shard I of N (merge outputs with ncdrf merge)";
      "      --inject SPEC  arm a fault: stage=NAME[,loop=REGEX][,every=N]";
      "      --fail-fast    abort on the first failed point";
      "      --max-failures N  abort once more than N points have failed";
      "      --failures FILE   write the failure manifest as CSV";
      "";
      "run 'ncdrf COMMAND --help' for the full manual of one command.";
      "";
    ]

let () =
  let doc = "non-consistent dual register files for software-pipelined loops" in
  let info = Cmd.info "ncdrf" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [ schedule_cmd; dot_cmd; suite_cmd; sweep_cmd; simulate_cmd; kernels_cmd;
        profile_cmd; merge_cmd; example_cmd; serve_cmd; client_cmd ]
  in
  match Cmd.eval_value group with
  | Ok (`Ok code) -> exit code
  | Ok (`Help | `Version) -> exit 0
  | Stdlib.Error (`Parse | `Term) ->
    prerr_string usage;
    exit 2
  | Stdlib.Error `Exn -> exit 125
